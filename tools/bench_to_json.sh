#!/usr/bin/env bash
# Collects machine-readable results from every bench binary into ONE JSON
# array on stdout (formerly concatenated JSON lines — the array form is
# directly loadable by json.load / jq without line-splitting).
#
#   tools/bench_to_json.sh [build-dir]          # default: build
#   tools/bench_to_json.sh build > results.json
#
# Plain benches emit their own canonical lines
#   {"bench":...,"n":...,"ns_per_msg":...,"allocs":...,"threads":...,
#    "epochs":...}
# optionally extended with a "metrics" registry snapshot (see
# bench/bench_json.hpp); this script runs each binary, keeps only those
# lines, and merges everything into a single array. google-benchmark
# binaries are run with --benchmark_format=json and reduced to the same
# shape (allocs is not tracked there and reported as -1; threads is 1 —
# the gbench studies are all serial). The epochs column (number of
# topology epochs the run crossed) is back-filled to 1 for rows that
# predate the reconfiguration studies, so every merged row carries it.

set -euo pipefail

build_dir="${1:-build}"
bench_dir="${build_dir}/bench"

if [[ ! -d "${bench_dir}" ]]; then
    echo "error: ${bench_dir} not found (build the project first)" >&2
    exit 1
fi

lines_file="$(mktemp)"
trap 'rm -f "${lines_file}"' EXIT

# Plain benches: run, keep the JSON lines.
plain_benches=(
    bench_fig1_model bench_fig3_complete bench_fig4_tree bench_fig6_online
    bench_fig8_greedy bench_size_table bench_offline bench_events
    bench_runtime bench_related bench_wire bench_ablation bench_ordering
    bench_faults bench_arena bench_analysis bench_reconfig bench_recover
    bench_profile bench_protocol
)
for name in "${plain_benches[@]}"; do
    bin="${bench_dir}/${name}"
    if [[ ! -x "${bin}" ]]; then
        echo "warning: ${bin} missing, skipped" >&2
        continue
    fi
    "${bin}" | grep '^{"bench":' >> "${lines_file}" || {
        echo "warning: ${name} emitted no JSON line" >&2
    }
done

# google-benchmark binaries: native JSON, reduced to the canonical shape.
gbench_benches=(bench_overhead bench_precedence bench_decomp_scaling)
for name in "${gbench_benches[@]}"; do
    bin="${bench_dir}/${name}"
    if [[ ! -x "${bin}" ]]; then
        echo "warning: ${bin} missing, skipped" >&2
        continue
    fi
    "${bin}" --benchmark_format=json 2>/dev/null |
        python3 -c '
import json, sys
report = json.load(sys.stdin)
for b in report.get("benchmarks", []):
    ns = b.get("real_time", 0.0)
    unit = b.get("time_unit", "ns")
    scale = {"ns": 1.0, "us": 1e3, "ms": 1e6, "s": 1e9}.get(unit, 1.0)
    line = {
        "bench": b.get("name", "?"),
        "n": int(b.get("iterations", 0)),
        "ns_per_msg": round(ns * scale, 1),
        "allocs": -1,
        "threads": 1,
        "epochs": 1,
    }
    print(json.dumps(line))
' >> "${lines_file}"
done

# Merge the collected lines into one validated JSON array.
python3 -c '
import json, sys
results = []
with open(sys.argv[1]) as fh:
    for line in fh:
        line = line.strip()
        if line:
            row = json.loads(line)
            row.setdefault("epochs", 1)
            # Memory/SIMD columns (bench_arena, PR 7): back-filled so every
            # merged row carries them. peak_region_bytes 0 = "no region
            # churn measured"; simd_speedup 1.0 = "no vector path".
            row.setdefault("peak_region_bytes", 0)
            row.setdefault("simd_speedup", 1.0)
            # Observer-tax column (bench_profile, PR 8): 0.0 = "ran
            # uninstrumented", only bench_profile measures a real value.
            row.setdefault("profiler_overhead_pct", 0.0)
            # Wire-efficiency columns (bench_protocol, PR 9).
            # bytes_per_msg 0.0 = "wire bytes not measured";
            # batch_factor 1.0 = "one frame per packet" (the classic
            # profile — only the batched-path studies exceed it).
            row.setdefault("bytes_per_msg", 0.0)
            row.setdefault("batch_factor", 1.0)
            # Streaming columns (bench_analysis TAB-STREAM, PR 10).
            # resident_mb 0.0 = "residency not sampled";
            # stream_msgs_per_sec 0.0 = "not a streamed-ingestion row".
            row.setdefault("resident_mb", 0.0)
            row.setdefault("stream_msgs_per_sec", 0.0)
            results.append(row)
json.dump(results, sys.stdout, indent=1)
sys.stdout.write("\n")
' "${lines_file}"
