// syncts_chaos — replay recorded computations through seeded fault
// schedules and verify the rendezvous protocol realizes timestamps
// bit-identical to the direct Fig. 5 simulator's.
//
// Usage:
//   syncts_chaos [<spec>] [--schedules N] [--messages M] [--seed S]
//                [--drop P] [--dup P] [--corrupt P] [--delay P]
//                [--jitter J] [--latency LO:HI] [--quiet]
//
// <spec> is a topology spec (default cs:2:4); see syncts_topo for the
// grammar. Each schedule k in 1..N derives its own workload-independent
// fault seed, runs the protocol with drop/duplication/corruption/extra
// delay all enabled, and compares every realized message timestamp
// against OnlineTimestamper. Exit status: 0 when all schedules match,
// 1 on any mismatch or stall — so this binary is CI-able as a chaos gate.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "clocks/online_clock.hpp"
#include "decomp/cover_decomposer.hpp"
#include "runtime/synchronizer.hpp"
#include "topo_spec.hpp"
#include "trace/generator.hpp"

using namespace syncts;

namespace {

struct Config {
    std::string spec = "cs:2:4";
    std::uint64_t schedules = 1000;
    std::size_t messages = 40;
    std::uint64_t seed = 1;
    double drop = 0.05;
    double dup = 0.05;
    double corrupt = 0.04;
    double delay = 0.35;
    std::uint64_t jitter = 40;
    std::uint64_t latency_lo = 1;
    std::uint64_t latency_hi = 12;
    bool quiet = false;
};

[[noreturn]] void usage() {
    std::fprintf(stderr,
                 "usage: syncts_chaos [<spec>] [--schedules N] "
                 "[--messages M] [--seed S]\n"
                 "                    [--drop P] [--dup P] [--corrupt P] "
                 "[--delay P]\n"
                 "                    [--jitter J] [--latency LO:HI] "
                 "[--quiet]\nspecs: %s\n",
                 tools::spec_help());
    std::exit(2);
}

Config parse_args(int argc, char** argv) {
    Config config;
    int i = 1;
    if (i < argc && argv[i][0] != '-') config.spec = argv[i++];
    const auto next_value = [&](const char* flag) -> const char* {
        if (i + 1 >= argc) {
            std::fprintf(stderr, "missing value for %s\n", flag);
            usage();
        }
        return argv[++i];
    };
    for (; i < argc; ++i) {
        const std::string flag = argv[i];
        if (flag == "--schedules") {
            config.schedules = std::strtoull(next_value("--schedules"),
                                             nullptr, 10);
        } else if (flag == "--messages") {
            config.messages = std::strtoull(next_value("--messages"),
                                            nullptr, 10);
        } else if (flag == "--seed") {
            config.seed = std::strtoull(next_value("--seed"), nullptr, 10);
        } else if (flag == "--drop") {
            config.drop = std::strtod(next_value("--drop"), nullptr);
        } else if (flag == "--dup") {
            config.dup = std::strtod(next_value("--dup"), nullptr);
        } else if (flag == "--corrupt") {
            config.corrupt = std::strtod(next_value("--corrupt"), nullptr);
        } else if (flag == "--delay") {
            config.delay = std::strtod(next_value("--delay"), nullptr);
        } else if (flag == "--jitter") {
            config.jitter = std::strtoull(next_value("--jitter"), nullptr, 10);
        } else if (flag == "--latency") {
            const std::string range = next_value("--latency");
            const std::size_t colon = range.find(':');
            if (colon == std::string::npos) usage();
            config.latency_lo = std::strtoull(range.c_str(), nullptr, 10);
            config.latency_hi =
                std::strtoull(range.c_str() + colon + 1, nullptr, 10);
        } else if (flag == "--quiet") {
            config.quiet = true;
        } else {
            std::fprintf(stderr, "unknown flag %s\n", flag.c_str());
            usage();
        }
    }
    return config;
}

}  // namespace

int main(int argc, char** argv) {
    const Config config = parse_args(argc, argv);
    const Graph topology = tools::build_topology(config.spec);

    Rng workload_rng(config.seed);
    WorkloadOptions workload;
    workload.num_messages = config.messages;
    const SyncComputation script =
        random_computation(topology, workload, workload_rng);
    auto decomposition = std::make_shared<const EdgeDecomposition>(
        default_decomposition(topology));
    OnlineTimestamper direct(decomposition);
    const std::vector<VectorTimestamp> expected =
        direct.timestamp_computation(script);

    std::printf(
        "chaos: %s  d=%zu  messages=%zu  schedules=%llu\n"
        "plan:  drop=%.3f dup=%.3f corrupt=%.3f delay=%.3f jitter=%llu "
        "latency=[%llu,%llu]\n",
        config.spec.c_str(), decomposition->size(), script.num_messages(),
        static_cast<unsigned long long>(config.schedules), config.drop,
        config.dup, config.corrupt, config.delay,
        static_cast<unsigned long long>(config.jitter),
        static_cast<unsigned long long>(config.latency_lo),
        static_cast<unsigned long long>(config.latency_hi));

    std::uint64_t mismatches = 0;
    std::uint64_t stalls = 0;
    std::uint64_t packets = 0;
    ProtocolStats protocol;
    FaultStats faults;
    for (std::uint64_t schedule = 1; schedule <= config.schedules;
         ++schedule) {
        SynchronizerOptions options;
        options.seed = config.seed * 1'000'003 + schedule;
        options.latency_lo = config.latency_lo;
        options.latency_hi = config.latency_hi;
        options.faults.seed = schedule * 0x9E3779B9ull + config.seed;
        options.faults.drop_probability = config.drop;
        options.faults.duplicate_probability = config.dup;
        options.faults.corrupt_probability = config.corrupt;
        options.faults.delay_probability = config.delay;
        options.faults.max_extra_delay = config.jitter;
        SynchronizerResult result{.computation = SyncComputation(topology),
                                  .message_stamps = {},
                                  .script_message = {},
                                  .virtual_duration = 0,
                                  .packets = 0,
                                  .protocol = {},
                                  .network_faults = {}};
        try {
            result = run_rendezvous_protocol(decomposition, script, options);
        } catch (const SynchronizerStalled& stall) {
            std::fprintf(stderr, "schedule %llu stalled: %s\n",
                         static_cast<unsigned long long>(schedule),
                         stall.what());
            ++stalls;
            continue;
        }
        bool match = result.message_stamps.size() == expected.size();
        for (std::size_t i = 0; match && i < result.message_stamps.size();
             ++i) {
            match = result.message_stamps[i] ==
                    expected[result.script_message[i]];
        }
        if (!match) {
            std::fprintf(stderr, "schedule %llu: timestamp mismatch\n",
                         static_cast<unsigned long long>(schedule));
            ++mismatches;
        }
        packets += result.packets;
        protocol.retransmits += result.protocol.retransmits;
        protocol.timeouts += result.protocol.timeouts;
        protocol.dup_drops += result.protocol.dup_drops;
        protocol.ack_replays += result.protocol.ack_replays;
        protocol.corrupt_rejects += result.protocol.corrupt_rejects;
        faults.dropped += result.network_faults.dropped;
        faults.targeted_drops += result.network_faults.targeted_drops;
        faults.duplicated += result.network_faults.duplicated;
        faults.corrupted += result.network_faults.corrupted;
        faults.delayed += result.network_faults.delayed;
        if (!config.quiet && schedule % 200 == 0) {
            std::printf("  ... %llu/%llu schedules clean\n",
                        static_cast<unsigned long long>(schedule - mismatches -
                                                        stalls),
                        static_cast<unsigned long long>(schedule));
        }
    }

    const std::uint64_t total_messages =
        config.schedules * script.num_messages();
    std::printf("injected: %s\n", faults.to_string().c_str());
    std::printf("protocol: %s\n", protocol.to_string().c_str());
    std::printf(
        "packets:  %llu delivered for %llu messages "
        "(amplification %.3fx over the lossless 2/message)\n",
        static_cast<unsigned long long>(packets),
        static_cast<unsigned long long>(total_messages),
        total_messages == 0
            ? 0.0
            : static_cast<double>(packets) /
                  (2.0 * static_cast<double>(total_messages)));
    if (mismatches == 0 && stalls == 0) {
        std::printf("PASS: %llu schedules, all timestamps bit-identical\n",
                    static_cast<unsigned long long>(config.schedules));
        return 0;
    }
    std::printf("FAIL: %llu mismatches, %llu stalls\n",
                static_cast<unsigned long long>(mismatches),
                static_cast<unsigned long long>(stalls));
    return 1;
}
