// syncts_chaos — replay recorded computations through seeded fault
// schedules and verify the rendezvous protocol realizes timestamps
// bit-identical to the direct Fig. 5 simulator's.
//
// Usage:
//   syncts_chaos [<spec>] [--schedules N] [--messages M] [--seed S]
//                [--drop P] [--dup P] [--corrupt P] [--delay P]
//                [--jitter J] [--latency LO:HI] [--reconfig SCHED]
//                [--crash N] [--crash-downtime D] [--wal-flush K]
//                [--snap-every K] [--window W] [--quiet]
//
// <spec> is a topology spec (default cs:2:4); see syncts_topo for the
// grammar. Each schedule k in 1..N derives its own workload-independent
// fault seed, runs the protocol with drop/duplication/corruption/extra
// delay all enabled, and compares every realized message timestamp
// against OnlineTimestamper. Exit status: 0 when all schedules match,
// 1 on any mismatch or stall — so this binary is CI-able as a chaos gate.
//
// --crash N arms the crash-recovery layer (docs/RECOVERY.md): every
// schedule derives N whole-process crash/restart rules from its fault
// seed, each felling a random process at a random protocol step for a
// random (or --crash-downtime fixed) downtime. --wal-flush, --snap-every
// and --window tune the durability knobs (RecoveryOptions); the summary
// then reports crashes, restarts, WAL replay and rejoin traffic.
//
// --reconfig takes a topology reconfiguration schedule (grammar in
// topo/reconfig.hpp, e.g. addc:0:3,delc:1:2 or rand:2:5): each op starts
// a new epoch with its own per-epoch workload of M messages, the whole
// sequence runs through the reconfigurable driver under the same fault
// plan, and every epoch's timestamps must be bit-identical to a fresh
// Fig. 5 run on that epoch's topology (docs/TOPOLOGY.md).

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "clocks/online_clock.hpp"
#include "decomp/cover_decomposer.hpp"
#include "obs/metrics.hpp"
#include "runtime/reconfig_runtime.hpp"
#include "runtime/synchronizer.hpp"
#include "topo/reconfig.hpp"
#include "topo/topology_manager.hpp"
#include "topo_spec.hpp"
#include "trace/generator.hpp"

using namespace syncts;

namespace {

struct Config {
    std::string spec = "cs:2:4";
    std::uint64_t schedules = 1000;
    std::size_t messages = 40;
    std::uint64_t seed = 1;
    double drop = 0.05;
    double dup = 0.05;
    double corrupt = 0.04;
    double delay = 0.35;
    std::uint64_t jitter = 40;
    std::uint64_t latency_lo = 1;
    std::uint64_t latency_hi = 12;
    std::string reconfig;  // epoch schedule; empty = single epoch
    std::uint64_t crash = 0;           // crash rules per schedule
    std::uint64_t crash_downtime = 0;  // fixed downtime; 0 = random 10..79
    std::uint64_t wal_flush = 4;
    std::uint64_t snap_every = 16;
    std::size_t window = 8;
    bool batch = false;           // frame batching + ACK coalescing
    bool delta = false;           // delta-encoded vectors
    std::uint64_t bandwidth = 0;  // bytes/tick budget; 0 = unshaped
    bool quiet = false;
};

[[noreturn]] void usage() {
    std::fprintf(stderr,
                 "usage: syncts_chaos [<spec>] [--schedules N] "
                 "[--messages M] [--seed S]\n"
                 "                    [--drop P] [--dup P] [--corrupt P] "
                 "[--delay P]\n"
                 "                    [--jitter J] [--latency LO:HI] "
                 "[--reconfig SCHED]\n"
                 "                    [--crash N] [--crash-downtime D] "
                 "[--wal-flush K]\n"
                 "                    [--snap-every K] [--window W] "
                 "[--batch] [--delta]\n"
                 "                    [--bandwidth BYTES_PER_TICK] "
                 "[--quiet]\nspecs: %s\n",
                 tools::spec_help());
    std::exit(2);
}

Config parse_args(int argc, char** argv) {
    Config config;
    int i = 1;
    if (i < argc && argv[i][0] != '-') config.spec = argv[i++];
    const auto next_value = [&](const char* flag) -> const char* {
        if (i + 1 >= argc) {
            std::fprintf(stderr, "missing value for %s\n", flag);
            usage();
        }
        return argv[++i];
    };
    for (; i < argc; ++i) {
        const std::string flag = argv[i];
        if (flag == "--schedules") {
            config.schedules = std::strtoull(next_value("--schedules"),
                                             nullptr, 10);
        } else if (flag == "--messages") {
            config.messages = std::strtoull(next_value("--messages"),
                                            nullptr, 10);
        } else if (flag == "--seed") {
            config.seed = std::strtoull(next_value("--seed"), nullptr, 10);
        } else if (flag == "--drop") {
            config.drop = std::strtod(next_value("--drop"), nullptr);
        } else if (flag == "--dup") {
            config.dup = std::strtod(next_value("--dup"), nullptr);
        } else if (flag == "--corrupt") {
            config.corrupt = std::strtod(next_value("--corrupt"), nullptr);
        } else if (flag == "--delay") {
            config.delay = std::strtod(next_value("--delay"), nullptr);
        } else if (flag == "--jitter") {
            config.jitter = std::strtoull(next_value("--jitter"), nullptr, 10);
        } else if (flag == "--latency") {
            const std::string range = next_value("--latency");
            const std::size_t colon = range.find(':');
            if (colon == std::string::npos) usage();
            config.latency_lo = std::strtoull(range.c_str(), nullptr, 10);
            config.latency_hi =
                std::strtoull(range.c_str() + colon + 1, nullptr, 10);
        } else if (flag == "--reconfig") {
            config.reconfig = next_value("--reconfig");
        } else if (flag == "--crash") {
            config.crash = std::strtoull(next_value("--crash"), nullptr, 10);
        } else if (flag == "--crash-downtime") {
            config.crash_downtime =
                std::strtoull(next_value("--crash-downtime"), nullptr, 10);
        } else if (flag == "--wal-flush") {
            config.wal_flush = std::strtoull(next_value("--wal-flush"),
                                             nullptr, 10);
        } else if (flag == "--snap-every") {
            config.snap_every = std::strtoull(next_value("--snap-every"),
                                              nullptr, 10);
        } else if (flag == "--window") {
            config.window = std::strtoull(next_value("--window"), nullptr, 10);
        } else if (flag == "--batch") {
            config.batch = true;
        } else if (flag == "--delta") {
            config.delta = true;
        } else if (flag == "--bandwidth") {
            config.bandwidth = std::strtoull(next_value("--bandwidth"),
                                             nullptr, 10);
        } else if (flag == "--quiet") {
            config.quiet = true;
        } else {
            std::fprintf(stderr, "unknown flag %s\n", flag.c_str());
            usage();
        }
    }
    return config;
}

}  // namespace

int main(int argc, char** argv) {
    const Config config = parse_args(argc, argv);
    const Graph topology = tools::build_topology(config.spec);

    // Epoch sequence: one epoch without --reconfig, one extra per op
    // otherwise. The manager is immutable once built; every schedule
    // replays the same sequence.
    TopologyManager manager{Graph(topology)};
    if (!config.reconfig.empty()) {
        for (const ReconfigOp& op :
             parse_reconfig_schedule(config.reconfig, topology)) {
            apply(manager, op);
        }
    }

    // One workload per epoch plus its direct Fig. 5 expectation — the
    // bit-identical reference for that epoch's topology.
    Rng workload_rng(config.seed);
    std::vector<SyncComputation> scripts;
    std::vector<std::vector<VectorTimestamp>> expected;
    std::uint64_t script_messages = 0;
    for (EpochId e = 0; e < manager.num_epochs(); ++e) {
        WorkloadOptions workload;
        workload.num_messages = config.messages;
        scripts.push_back(
            random_computation(manager.epoch(e).graph(), workload,
                               workload_rng));
        OnlineTimestamper direct(manager.epoch(e).decomposition);
        expected.push_back(direct.timestamp_computation(scripts.back()));
        script_messages += scripts.back().num_messages();
    }

    std::printf(
        "chaos: %s  d=%zu  epochs=%zu  messages=%llu  schedules=%llu\n"
        "plan:  drop=%.3f dup=%.3f corrupt=%.3f delay=%.3f jitter=%llu "
        "latency=[%llu,%llu]\n",
        config.spec.c_str(), manager.epoch(0).width(), manager.num_epochs(),
        static_cast<unsigned long long>(script_messages),
        static_cast<unsigned long long>(config.schedules), config.drop,
        config.dup, config.corrupt, config.delay,
        static_cast<unsigned long long>(config.jitter),
        static_cast<unsigned long long>(config.latency_lo),
        static_cast<unsigned long long>(config.latency_hi));
    if (config.batch || config.delta || config.bandwidth > 0) {
        std::printf(
            "wire:  batch=%s delta=%s bandwidth=%s\n",
            config.batch ? "on" : "off", config.delta ? "on" : "off",
            config.bandwidth > 0
                ? (std::to_string(config.bandwidth) + " B/tick").c_str()
                : "unshaped");
    }
    if (config.crash > 0) {
        std::printf(
            "crash: %llu/schedule  downtime=%s  wal-flush=%llu "
            "snap-every=%llu window=%zu\n",
            static_cast<unsigned long long>(config.crash),
            config.crash_downtime > 0
                ? std::to_string(config.crash_downtime).c_str()
                : "rand[10,79]",
            static_cast<unsigned long long>(config.wal_flush),
            static_cast<unsigned long long>(config.snap_every),
            config.window);
    }

    std::uint64_t mismatches = 0;
    std::uint64_t stalls = 0;
    std::uint64_t packets = 0;
    ProtocolStats wire;
    // The sync_* counters accumulate across every schedule; the registry
    // is the aggregate the summary prints.
    obs::MetricsRegistry metrics;
    FaultStats faults;
    for (std::uint64_t schedule = 1; schedule <= config.schedules;
         ++schedule) {
        SynchronizerOptions options;
        options.seed = config.seed * 1'000'003 + schedule;
        options.latency_lo = config.latency_lo;
        options.latency_hi = config.latency_hi;
        options.faults.seed = schedule * 0x9E3779B9ull + config.seed;
        options.faults.drop_probability = config.drop;
        options.faults.duplicate_probability = config.dup;
        options.faults.corrupt_probability = config.corrupt;
        options.faults.delay_probability = config.delay;
        options.faults.max_extra_delay = config.jitter;
        if (config.crash > 0) {
            // Same derivation as the crash-chaos suite: schedule-local
            // RNG, crash points inside the busy step range.
            Rng crash_rng(options.faults.seed ^ 0xC0FFEE);
            const std::size_t processes =
                manager.epoch(0).graph().num_vertices();
            const std::size_t max_step =
                1 + 2 * config.messages / processes;
            for (std::uint64_t c = 0; c < config.crash; ++c) {
                CrashRule rule;
                rule.process =
                    static_cast<ProcessId>(crash_rng.below(processes));
                rule.at_step = 1 + crash_rng.below(max_step);
                rule.downtime = config.crash_downtime > 0
                                    ? config.crash_downtime
                                    : 10 + crash_rng.below(70);
                options.faults.crashes.push_back(rule);
            }
            options.recovery.wal_flush_interval = config.wal_flush;
            options.recovery.snapshot_interval = config.snap_every;
            options.recovery.window = config.window;
        }
        options.protocol.batching = config.batch;
        options.protocol.coalesce_acks = config.batch;
        options.protocol.delta = config.delta;
        if (config.bandwidth > 0) {
            options.protocol.bandwidth.enabled = true;
            options.protocol.bandwidth.bytes_per_tick = config.bandwidth;
        }
        options.metrics = &metrics;
        bool match = true;
        try {
            const ReconfigurableRunResult result =
                run_reconfigurable_protocol(manager, scripts, options);
            for (EpochId e = 0; e < result.segments.size(); ++e) {
                const EpochSegmentResult& segment = result.segments[e];
                if (segment.message_stamps.size() != expected[e].size()) {
                    match = false;
                    break;
                }
                for (std::size_t i = 0;
                     match && i < segment.message_stamps.size(); ++i) {
                    match = segment.message_stamps[i] ==
                            expected[e][segment.script_message[i]];
                }
                if (!match) break;
            }
            packets += result.packets;
            wire.bytes_sent += result.protocol.bytes_sent;
            wire.wire_packets += result.protocol.wire_packets;
            wire.batch_packets += result.protocol.batch_packets;
            wire.batch_frames += result.protocol.batch_frames;
            wire.acks_coalesced += result.protocol.acks_coalesced;
            wire.delta_frames += result.protocol.delta_frames;
            wire.full_frames += result.protocol.full_frames;
            wire.delta_resyncs += result.protocol.delta_resyncs;
            wire.bsched_deferrals += result.protocol.bsched_deferrals;
            faults.dropped += result.network_faults.dropped;
            faults.targeted_drops += result.network_faults.targeted_drops;
            faults.duplicated += result.network_faults.duplicated;
            faults.corrupted += result.network_faults.corrupted;
            faults.delayed += result.network_faults.delayed;
        } catch (const SynchronizerStalled& stall) {
            std::fprintf(stderr, "schedule %llu stalled: %s\n",
                         static_cast<unsigned long long>(schedule),
                         stall.what());
            ++stalls;
            continue;
        }
        if (!match) {
            std::fprintf(stderr, "schedule %llu: timestamp mismatch\n",
                         static_cast<unsigned long long>(schedule));
            ++mismatches;
        }
        if (!config.quiet && schedule % 200 == 0) {
            std::printf("  ... %llu/%llu schedules clean\n",
                        static_cast<unsigned long long>(schedule - mismatches -
                                                        stalls),
                        static_cast<unsigned long long>(schedule));
        }
    }

    const std::uint64_t total_messages = config.schedules * script_messages;
    std::printf("injected: %s\n", faults.to_string().c_str());
    std::printf(
        "protocol: retransmits=%llu timeouts=%llu req_duplicates=%llu "
        "ack_duplicates=%llu ack_replays=%llu corrupt_rejects=%llu\n",
        static_cast<unsigned long long>(
            metrics.counter("sync_retransmits").value()),
        static_cast<unsigned long long>(
            metrics.counter("sync_timeouts").value()),
        static_cast<unsigned long long>(
            metrics.counter("sync_req_duplicates").value()),
        static_cast<unsigned long long>(
            metrics.counter("sync_ack_duplicates").value()),
        static_cast<unsigned long long>(
            metrics.counter("sync_ack_replays").value()),
        static_cast<unsigned long long>(
            metrics.counter("sync_frames_corrupt_rejected").value()));
    if (manager.num_epochs() > 1) {
        std::printf(
            "epochs:   transitions=%llu epoch_rejects=%llu nacks_sent=%llu "
            "nack_drops=%llu\n",
            static_cast<unsigned long long>(
                metrics.counter("sync_epoch_transitions").value()),
            static_cast<unsigned long long>(
                metrics.counter("sync_epoch_rejects").value()),
            static_cast<unsigned long long>(
                metrics.counter("sync_nacks_sent").value()),
            static_cast<unsigned long long>(
                metrics.counter("sync_nack_drops").value()));
    }
    if (config.crash > 0) {
        const auto value = [&](const char* name) {
            return static_cast<unsigned long long>(
                metrics.counter(name).value());
        };
        std::printf(
            "recover:  crashes=%llu restarts=%llu replayed=%llu "
            "snapshots=%llu recommits=%llu\n"
            "rejoin:   hellos=%llu hello_acks=%llu ack_replays=%llu "
            "retransmits=%llu parked=%llu down_drops=%llu\n",
            value("recover_crashes"), value("recover_restarts"),
            value("recover_replayed_records"), value("recover_snapshots"),
            value("recover_recommits"), value("recover_hellos"),
            value("recover_hello_acks"), value("recover_window_ack_replays"),
            value("recover_window_retransmits"),
            value("recover_future_buffered"), value("net_down_drops"));
    }
    if (config.batch || config.delta || config.bandwidth > 0) {
        const std::uint64_t frames = wire.delta_frames + wire.full_frames;
        std::printf(
            "wire:     bytes=%llu sent_packets=%llu batch_packets=%llu "
            "coalesced=%llu\n"
            "          delta_frames=%llu/%llu resyncs=%llu deferrals=%llu "
            "bytes/msg=%.1f\n",
            static_cast<unsigned long long>(wire.bytes_sent),
            static_cast<unsigned long long>(wire.wire_packets),
            static_cast<unsigned long long>(wire.batch_packets),
            static_cast<unsigned long long>(wire.acks_coalesced),
            static_cast<unsigned long long>(wire.delta_frames),
            static_cast<unsigned long long>(frames),
            static_cast<unsigned long long>(wire.delta_resyncs),
            static_cast<unsigned long long>(wire.bsched_deferrals),
            total_messages == 0 ? 0.0
                                : static_cast<double>(wire.bytes_sent) /
                                      static_cast<double>(total_messages));
    }
    std::printf(
        "packets:  %llu delivered for %llu messages "
        "(amplification %.3fx over the lossless 2/message)\n",
        static_cast<unsigned long long>(packets),
        static_cast<unsigned long long>(total_messages),
        total_messages == 0
            ? 0.0
            : static_cast<double>(packets) /
                  (2.0 * static_cast<double>(total_messages)));
    if (mismatches == 0 && stalls == 0) {
        std::printf("PASS: %llu schedules, all timestamps bit-identical\n",
                    static_cast<unsigned long long>(config.schedules));
        return 0;
    }
    std::printf("FAIL: %llu mismatches, %llu stalls\n",
                static_cast<unsigned long long>(mismatches),
                static_cast<unsigned long long>(stalls));
    return 1;
}
