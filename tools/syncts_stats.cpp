// syncts_stats — one-stop instrumented run reporter. Replays a seeded
// random workload through the full stack (decomposition selection, the
// Fig. 5 online clock, the fault-tolerant rendezvous protocol) with the
// obs::MetricsRegistry attached to every layer, verifies the realized
// timestamps against the direct simulator, and emits a machine-readable
// report.
//
// Usage:
//   syncts_stats [--topology <spec>] [--events N[k|m]] [--seed S]
//                [--runs R] [--drop P] [--dup P] [--corrupt P] [--delay P]
//                [--jitter J] [--latency LO:HI] [--trace FILE.json]
//                [--trace-binary FILE.bin] [--trace-capacity N]
//                [--threads T] [--queries K] [--reconfig SCHED]
//                [--profile] [--crash P:STEP:DOWN] [--flight FILE.syfr]
//                [--json] [--quiet]
//   syncts_stats --postmortem FILE.syfr
//
// --profile turns on the causal profiler (docs/PROFILING.md): the last
// run's trace is profiled into the critical rendezvous path, per-process
// blocked/working/down/barrier-stall attribution, per-channel wait
// totals, and per-epoch barrier stalls, reported as a deterministic
// sorted-key "profile" JSON object (plus a human summary). With --trace,
// the exported Chrome trace gains a highlighted "critical path" track.
// Profiling clears the sink between runs so the profile (and the trace
// files) describe exactly the final run.
//
// --crash P:STEP:DOWN injects a crash rule (process P crashes at its
// STEP-th protocol step, restarts after DOWN virtual ticks) and arms the
// recovery layer; repeatable.
//
// --flight attaches the flight recorder and writes its latest SYFR
// post-mortem to the given path when a crash rule fires or a run stalls
// (no file is written on a clean run). --postmortem decodes such a file
// and prints it; the tool exits without running anything.
//
// --reconfig takes a reconfiguration schedule (grammar in
// topo/reconfig.hpp): each op starts a new topology epoch, the N events
// are split evenly across epochs, the whole sequence replays through the
// reconfigurable driver, and each epoch's timestamps are verified against
// a fresh Fig. 5 run on that epoch's topology. The analysis section then
// verifies the *stitched* order — MultiEpochTrace's barrier rule against
// the cross-epoch ground-truth closure (docs/TOPOLOGY.md).
//
// --threads/--queries turn on the offline analysis section: the
// ground-truth closure and Theorem 4 verification run sharded across a
// T-wide analysis pool, and K seeded precedence queries hammer the
// PrecedenceIndex memo (every answer re-checked against the direct
// vector compare). Query/verification disagreements fold into the exit
// status like stamp mismatches do.
//
// The report is deterministic: same seed, same flags => byte-identical
// counters (the registry snapshots in sorted name order; every random
// choice is seeded). The analysis section adds one wall-clock field
// (analysis.wall_ms) — everything else in it, memo hit counts included,
// is byte-identical across same-seed runs at a fixed --threads value.
// Exit status: 0 clean; 1 on any timestamp mismatch,
// protocol stall, or undetected frame corruption; 2 on usage errors —
// so the binary doubles as a CI smoke gate (see .github/workflows/ci.yml).

#include <chrono>
#include <cstdio>
#include <iostream>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iterator>
#include <limits>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "clocks/clock_engine.hpp"
#include "common/pool.hpp"
#include "common/scaled.hpp"
#include "common/spill_store.hpp"
#include "common/ts_kernels.hpp"
#include "core/streaming_index.hpp"
#include "poset/streaming_closure.hpp"
#include "trace/trace_io.hpp"
#include "obs/causal_profiler.hpp"
#include "obs/flight_recorder.hpp"
#include "core/causality.hpp"
#include "core/multi_epoch_trace.hpp"
#include "core/precedence_index.hpp"
#include "core/timestamped_trace.hpp"
#include "decomp/cover_decomposer.hpp"
#include "obs/metrics.hpp"
#include "obs/trace_sink.hpp"
#include "runtime/reconfig_runtime.hpp"
#include "runtime/synchronizer.hpp"
#include "topo/reconfig.hpp"
#include "topo/topology_manager.hpp"
#include "topo_spec.hpp"
#include "trace/generator.hpp"
#include "trace/ground_truth.hpp"

using namespace syncts;

namespace {

struct Config {
    std::string spec = "tri3";
    std::size_t events = 1000;  // messages pushed through the protocol
    std::uint64_t seed = 1;
    std::uint64_t runs = 1;
    double drop = 0.0;
    double dup = 0.0;
    double corrupt = 0.0;
    double delay = 0.0;
    std::uint64_t jitter = 0;
    std::uint64_t latency_lo = 1;
    std::uint64_t latency_hi = 1;
    std::string trace_json_path;
    std::string trace_binary_path;
    std::size_t trace_capacity = 1 << 16;
    std::size_t threads = 1;
    std::size_t queries = 0;
    std::string reconfig;   // epoch schedule; empty = single epoch
    bool analysis = false;  // set when --threads or --queries is passed
    bool profile = false;
    std::vector<CrashRule> crashes;
    std::string flight_path;      // SYFR dump target; empty = no recorder
    std::string postmortem_path;  // decode-and-exit mode
    bool batch = false;           // frame batching + ACK coalescing
    bool delta = false;           // delta-encoded vectors
    std::uint64_t bandwidth = 0;  // bytes/tick budget; 0 = unshaped
    bool stream = false;          // streaming out-of-core analysis section
    std::size_t max_resident_mb = 0;  // streaming memory budget; 0 = default
    std::string spill_dir;            // retired-chunk directory; empty = RAM
    std::string ingest_path;          // SYTR v2 input ('-' = stdin)
    std::string emit_sytr_path;       // SYTR v2 output ('-' = stdout)
    bool json = false;
    bool quiet = false;
};

[[noreturn]] void usage() {
    std::fprintf(
        stderr,
        "usage: syncts_stats [--topology <spec>] [--events N[k|m]] "
        "[--seed S] [--runs R]\n"
        "                    [--drop P] [--dup P] [--corrupt P] [--delay P] "
        "[--jitter J]\n"
        "                    [--latency LO:HI] [--trace FILE.json]\n"
        "                    [--trace-binary FILE.bin] [--trace-capacity N]\n"
        "                    [--threads T] [--queries K] "
        "[--reconfig SCHED] [--json]\n"
        "                    [--profile] [--crash P:STEP:DOWN] "
        "[--flight FILE.syfr]\n"
        "                    [--batch] [--delta] "
        "[--bandwidth BYTES_PER_TICK] [--quiet]\n"
        "                    [--stream] [--max-resident-mb MB] "
        "[--spill-dir DIR]\n"
        "                    [--emit-sytr FILE.sytr]\n"
        "       syncts_stats --ingest FILE.sytr|- [--stream flags] [--json]\n"
        "       syncts_stats --postmortem FILE.syfr\nspecs: %s\n",
        tools::spec_help());
    std::exit(2);
}

/// Parses a --crash rule "P:STEP:DOWN".
CrashRule parse_crash(const char* text) {
    CrashRule rule;
    char* end = nullptr;
    rule.process =
        static_cast<ProcessId>(std::strtoull(text, &end, 10));
    if (end == nullptr || *end != ':') {
        std::fprintf(stderr, "bad crash rule '%s'\n", text);
        usage();
    }
    rule.at_step = std::strtoull(end + 1, &end, 10);
    if (end == nullptr || *end != ':') {
        std::fprintf(stderr, "bad crash rule '%s'\n", text);
        usage();
    }
    rule.downtime = std::strtoull(end + 1, &end, 10);
    if (end == nullptr || *end != '\0' || rule.at_step == 0) {
        std::fprintf(stderr, "bad crash rule '%s'\n", text);
        usage();
    }
    return rule;
}

/// Parses "5000", "5k", "2m" (case-insensitive suffix) through the
/// shared overflow-checked parser (common/scaled.hpp), so a 10m-scale
/// count can never wrap on its way into the derived counters.
std::size_t parse_events(const char* text) {
    const std::optional<std::uint64_t> parsed =
        common::parse_scaled_count(text);
    if (!parsed.has_value() ||
        *parsed > std::numeric_limits<std::size_t>::max()) {
        std::fprintf(stderr, "bad event count '%s'\n", text);
        usage();
    }
    return static_cast<std::size_t>(*parsed);
}

Config parse_args(int argc, char** argv) {
    Config config;
    int i = 1;
    const auto next_value = [&](const char* flag) -> const char* {
        if (i + 1 >= argc) {
            std::fprintf(stderr, "missing value for %s\n", flag);
            usage();
        }
        return argv[++i];
    };
    for (; i < argc; ++i) {
        const std::string flag = argv[i];
        if (flag == "--topology") {
            config.spec = next_value("--topology");
        } else if (flag == "--events") {
            config.events = parse_events(next_value("--events"));
        } else if (flag == "--seed") {
            config.seed = std::strtoull(next_value("--seed"), nullptr, 10);
        } else if (flag == "--runs") {
            config.runs = std::strtoull(next_value("--runs"), nullptr, 10);
        } else if (flag == "--drop") {
            config.drop = std::strtod(next_value("--drop"), nullptr);
        } else if (flag == "--dup") {
            config.dup = std::strtod(next_value("--dup"), nullptr);
        } else if (flag == "--corrupt") {
            config.corrupt = std::strtod(next_value("--corrupt"), nullptr);
        } else if (flag == "--delay") {
            config.delay = std::strtod(next_value("--delay"), nullptr);
        } else if (flag == "--jitter") {
            config.jitter = std::strtoull(next_value("--jitter"), nullptr, 10);
        } else if (flag == "--latency") {
            const std::string range = next_value("--latency");
            const std::size_t colon = range.find(':');
            if (colon == std::string::npos) usage();
            config.latency_lo = std::strtoull(range.c_str(), nullptr, 10);
            config.latency_hi =
                std::strtoull(range.c_str() + colon + 1, nullptr, 10);
        } else if (flag == "--trace") {
            config.trace_json_path = next_value("--trace");
        } else if (flag == "--trace-binary") {
            config.trace_binary_path = next_value("--trace-binary");
        } else if (flag == "--trace-capacity") {
            config.trace_capacity =
                std::strtoull(next_value("--trace-capacity"), nullptr, 10);
        } else if (flag == "--threads") {
            config.threads =
                std::strtoull(next_value("--threads"), nullptr, 10);
            config.analysis = true;
        } else if (flag == "--queries") {
            config.queries = parse_events(next_value("--queries"));
            config.analysis = true;
        } else if (flag == "--reconfig") {
            config.reconfig = next_value("--reconfig");
        } else if (flag == "--profile") {
            config.profile = true;
        } else if (flag == "--crash") {
            config.crashes.push_back(parse_crash(next_value("--crash")));
        } else if (flag == "--flight") {
            config.flight_path = next_value("--flight");
        } else if (flag == "--postmortem") {
            config.postmortem_path = next_value("--postmortem");
        } else if (flag == "--batch") {
            config.batch = true;
        } else if (flag == "--delta") {
            config.delta = true;
        } else if (flag == "--bandwidth") {
            config.bandwidth = std::strtoull(next_value("--bandwidth"),
                                             nullptr, 10);
        } else if (flag == "--stream") {
            config.stream = true;
        } else if (flag == "--max-resident-mb") {
            config.max_resident_mb = std::strtoull(
                next_value("--max-resident-mb"), nullptr, 10);
        } else if (flag == "--spill-dir") {
            config.spill_dir = next_value("--spill-dir");
        } else if (flag == "--ingest") {
            config.ingest_path = next_value("--ingest");
        } else if (flag == "--emit-sytr") {
            config.emit_sytr_path = next_value("--emit-sytr");
        } else if (flag == "--json") {
            config.json = true;
        } else if (flag == "--quiet") {
            config.quiet = true;
        } else {
            std::fprintf(stderr, "unknown flag %s\n", flag.c_str());
            usage();
        }
    }
    if (config.runs == 0 || config.trace_capacity == 0 ||
        config.threads == 0) {
        usage();
    }
    return config;
}

bool write_file(const std::string& path, const char* data, std::size_t len) {
    std::ofstream out(path, std::ios::binary);
    out.write(data, static_cast<std::streamsize>(len));
    return static_cast<bool>(out);
}

/// --postmortem mode: decode one SYFR dump and print it, no run.
int decode_postmortem_file(const Config& config) {
    std::ifstream in(config.postmortem_path, std::ios::binary);
    if (!in) {
        std::fprintf(stderr, "cannot read %s\n",
                     config.postmortem_path.c_str());
        return 2;
    }
    const std::vector<std::uint8_t> bytes(
        (std::istreambuf_iterator<char>(in)),
        std::istreambuf_iterator<char>());
    obs::Postmortem pm;
    try {
        pm = obs::decode_postmortem(bytes);
    } catch (const obs::PostmortemError& error) {
        std::fprintf(stderr, "postmortem decode failed: %s\n", error.what());
        return 1;
    }
    if (config.json) {
        std::string out;
        out += "{\"tool\":\"syncts_stats\",\"postmortem\":{";
        out += "\"epoch\":" + std::to_string(pm.epoch);
        out += ",\"events\":" + std::to_string(pm.events.size());
        out += ",\"frontier_epoch\":" + std::to_string(pm.frontier_epoch);
        out += ",\"metrics\":{\"counters\":{";
        bool first = true;
        for (const auto& [name, value] : pm.metrics.counters) {
            if (!first) out += ',';
            first = false;
            out += "\"" + name + "\":" + std::to_string(value);
        }
        out += "},\"gauges\":{";
        first = true;
        for (const auto& [name, value] : pm.metrics.gauges) {
            if (!first) out += ',';
            first = false;
            out += "\"" + name + "\":" + std::to_string(value);
        }
        out += "}},\"process\":" + std::to_string(pm.process);
        out += ",\"rates\":{";
        first = true;
        for (const auto& [name, value] : pm.rates.counters) {
            if (!first) out += ',';
            first = false;
            out += "\"" + name + "\":" + std::to_string(value);
        }
        out += "},\"reason\":\"";
        out += obs::to_string(pm.reason);
        out += "\",\"snapshots\":" + std::to_string(pm.snapshots);
        out += ",\"step\":" + std::to_string(pm.step);
        out += ",\"virtual_time\":" + std::to_string(pm.virtual_time);
        out += ",\"wal_lsn\":" + std::to_string(pm.wal_lsn);
        out += "}}\n";
        std::fwrite(out.data(), 1, out.size(), stdout);
        return 0;
    }
    std::printf("postmortem: reason=%s process=%u step=%llu epoch=%llu "
                "frontier=%llu wal_lsn=%llu t=%llu\n",
                obs::to_string(pm.reason), pm.process,
                static_cast<unsigned long long>(pm.step),
                static_cast<unsigned long long>(pm.epoch),
                static_cast<unsigned long long>(pm.frontier_epoch),
                static_cast<unsigned long long>(pm.wal_lsn),
                static_cast<unsigned long long>(pm.virtual_time));
    std::printf("metrics: %zu counters, %zu gauges (%llu snapshots)\n",
                pm.metrics.counters.size(), pm.metrics.gauges.size(),
                static_cast<unsigned long long>(pm.snapshots));
    std::printf("events: %zu retained; tail:\n", pm.events.size());
    const std::size_t tail = pm.events.size() < 10 ? 0 : pm.events.size() - 10;
    for (std::size_t i = tail; i < pm.events.size(); ++i) {
        const obs::TraceEvent& e = pm.events[i];
        std::printf("  t=%llu %s P%u->P%u a=%llu b=%llu logical=%llu\n",
                    static_cast<unsigned long long>(e.virtual_time),
                    obs::to_string(e.kind), e.process, e.peer,
                    static_cast<unsigned long long>(e.arg_a),
                    static_cast<unsigned long long>(e.arg_b),
                    static_cast<unsigned long long>(e.logical));
    }
    return 0;
}

/// Result of the --threads/--queries analysis section. Every field but
/// wall_ms is a pure function of (seed, topology, events, queries) — the
/// thread count only changes how the work was scheduled.
struct AnalysisReport {
    std::size_t threads = 1;
    std::size_t queries = 0;
    std::size_t poset_relations = 0;
    std::uint64_t verify_mismatches = 0;
    std::uint64_t query_mismatches = 0;
    std::uint64_t memo_hits = 0;
    std::uint64_t memo_misses = 0;
    double wall_ms = 0.0;
};

/// Seeded (m1, m2) query pairs over a pool of ~K/4 distinct pairs:
/// monitoring workloads revisit hot pairs, so repeats (memo hits)
/// dominate.
std::vector<std::pair<std::size_t, std::size_t>> query_pairs(
    const Config& config, std::size_t messages) {
    Rng query_rng(config.seed * 0x9E3779B97F4A7C15ull + 7);
    const std::size_t distinct =
        config.queries / 4 == 0 ? 1 : config.queries / 4;
    std::vector<std::pair<std::size_t, std::size_t>> pairs;
    pairs.reserve(distinct);
    for (std::size_t i = 0; i < distinct; ++i) {
        pairs.emplace_back(query_rng.below(messages),
                           query_rng.below(messages));
    }
    return pairs;
}

/// Sharded ground-truth verification plus the seeded query storm. The
/// oracle arena holds the Fig. 5 stamps (slot m = message m), so the
/// direct ts::less compare is the query oracle the memoized index must
/// agree with.
AnalysisReport run_analysis(const Config& config,
                            const SyncComputation& script,
                            const TimestampArena& oracle_arena,
                            obs::MetricsRegistry& registry) {
    AnalysisReport report;
    report.threads = config.threads;
    report.queries = config.queries;

    Pool pool(config.threads);
    pool.attach_metrics(registry, "analysis");
    AnalysisOptions options;
    options.pool = &pool;
    options.threads = pool.threads();
    options.metrics = &registry;

    const auto start = std::chrono::steady_clock::now();

    // Ground truth (level-synchronous blocked closure) and the O(M²)
    // Theorem 4 sweep, both sharded across the pool.
    const Poset truth = message_poset(script, options);
    report.poset_relations = truth.relation_count();
    report.verify_mismatches =
        encoding_mismatches(truth, oracle_arena, options);

    if (config.queries > 0) {
        // The trace copies the oracle stamps; detach the copy so kernel
        // counters aren't double-counted against the oracle arena's.
        TimestampArena stamps = oracle_arena;
        stamps.detach_metrics();
        const TimestampedTrace trace(script, std::move(stamps));
        PrecedenceIndex index(trace);
        index.attach_metrics(registry, "query");

        const auto pairs = query_pairs(config, script.num_messages());
        for (std::size_t q = 0; q < config.queries; ++q) {
            const auto& [m1, m2] = pairs[q % pairs.size()];
            if (index.precedes(static_cast<MessageId>(m1),
                               static_cast<MessageId>(m2)) !=
                trace.precedes(static_cast<MessageId>(m1),
                               static_cast<MessageId>(m2))) {
                ++report.query_mismatches;
            }
        }
        report.memo_hits = index.memo_hits();
        report.memo_misses = index.memo_misses();
    }

    const auto stop = std::chrono::steady_clock::now();
    report.wall_ms =
        static_cast<double>(
            std::chrono::duration_cast<std::chrono::microseconds>(stop - start)
                .count()) /
        1000.0;
    pool.detach_metrics();
    return report;
}

/// Multi-epoch analysis: verify the barrier-stitched order against the
/// cross-epoch ground-truth closure, then hammer the per-segment memo
/// through MultiEpochPrecedenceIndex with global-id query pairs.
AnalysisReport run_multi_analysis(const Config& config,
                                  const MultiEpochTrace& trace,
                                  obs::MetricsRegistry& registry) {
    AnalysisReport report;
    report.threads = config.threads;
    report.queries = config.queries;

    Pool pool(config.threads);
    pool.attach_metrics(registry, "analysis");
    AnalysisOptions options;
    options.pool = &pool;
    options.threads = pool.threads();
    options.metrics = &registry;

    const auto start = std::chrono::steady_clock::now();
    report.poset_relations =
        trace.ground_truth_poset(options).relation_count();
    report.verify_mismatches = trace.verify_against_ground_truth(options);

    if (config.queries > 0) {
        MultiEpochPrecedenceIndex index(trace);
        index.attach_metrics(registry, "query");
        const auto pairs = query_pairs(config, trace.num_messages());
        for (std::size_t q = 0; q < config.queries; ++q) {
            const auto& [m1, m2] = pairs[q % pairs.size()];
            if (index.precedes(m1, m2) != trace.precedes(m1, m2)) {
                ++report.query_mismatches;
            }
        }
        report.memo_hits = index.memo_hits();
        report.memo_misses = index.memo_misses();
    }

    const auto stop = std::chrono::steady_clock::now();
    report.wall_ms =
        static_cast<double>(
            std::chrono::duration_cast<std::chrono::microseconds>(stop - start)
                .count()) /
        1000.0;
    pool.detach_metrics();
    return report;
}

// ---------------------------------------------------------------------------
// Streaming out-of-core analysis (--stream / --ingest; docs/STREAMING.md).

/// Result of the streaming section. Every field but wall_ms is a pure
/// function of (seed, input); the budget knobs change residency, never
/// answers.
struct StreamingReport {
    std::size_t messages = 0;
    std::size_t events = 0;  ///< all records (messages + internal)
    std::size_t window = 0;
    std::size_t chunk_rows = 0;
    std::size_t resident_rows = 0;  ///< window residency at end of ingest
    std::uint64_t relations = 0;
    std::uint64_t stamp_checks = 0;
    std::uint64_t stamp_mismatches = 0;
    std::uint64_t query_checks = 0;
    std::uint64_t query_mismatches = 0;
    std::uint64_t verify_mismatches = 0;
    std::uint64_t spill_chunks = 0;
    std::uint64_t spill_bytes_written = 0;
    std::uint64_t spill_bytes_read = 0;
    double wall_ms = 0.0;

    std::uint64_t total_mismatches() const noexcept {
        return stamp_mismatches + query_mismatches + verify_mismatches;
    }
};

/// Derives the streaming residency knobs from --max-resident-mb: half
/// the budget goes to the stamp window (width-word rows), the rest
/// bounds the closure chunk (rows of up to M/64 words). Zero budget
/// keeps the defaults.
void apply_budget(const Config& config, std::size_t width,
                  std::size_t messages, std::size_t& window,
                  std::size_t& chunk_rows) {
    window = std::size_t{1} << 16;
    chunk_rows = 4096;
    if (config.max_resident_mb == 0) return;
    const std::size_t budget = config.max_resident_mb * (1u << 20);
    const std::size_t stamp_bytes = width * 8 == 0 ? 8 : width * 8;
    window = std::max<std::size_t>(1024, budget / 2 / stamp_bytes);
    const std::size_t row_bytes = std::max<std::size_t>(8, messages / 8);
    chunk_rows = std::max<std::size_t>(64, budget / 2 / row_bytes);
}

/// Every 64th message, two deterministic mid-ingestion probes: the
/// O(width) vector fast path must agree with the spilled-closure ground
/// truth on resident pairs, and the resident stamp must equal the
/// oracle's (when one exists — generated workloads only).
struct StreamProbe {
    Rng rng;
    explicit StreamProbe(std::uint64_t seed)
        : rng(seed * 0x9E3779B97F4A7C15ull + 11) {}

    void check(const IncrementalPrecedenceIndex& index,
               const StreamingClosure& closure, MessageId latest,
               const TimestampArena* oracle, StreamingReport& report) {
        if ((latest + 1) % 64 != 0) return;
        const std::uint64_t lo = index.resident_frontier();
        const std::uint64_t span = latest + 1 - lo;
        for (int probe = 0; probe < 2; ++probe) {
            const MessageId a =
                static_cast<MessageId>(lo + rng.below(span));
            const MessageId b =
                static_cast<MessageId>(lo + rng.below(span));
            ++report.query_checks;
            if (index.precedes(a, b) != closure.less(a, b)) {
                ++report.query_mismatches;
            }
        }
        if (oracle != nullptr) {
            ++report.stamp_checks;
            const auto streamed = index.stamp_span(latest);
            const auto expected =
                oracle->span(static_cast<TsHandle>(latest));
            if (!std::equal(streamed.begin(), streamed.end(),
                            expected.begin(), expected.end())) {
                ++report.stamp_mismatches;
            }
        }
    }
};

/// --stream over the generated epoch-0 workload: online ingestion through
/// the windowed incremental index feeding the out-of-core closure, then
/// the spill-aware streamed verification of the oracle stamps.
StreamingReport run_streaming(const Config& config,
                              const SyncComputation& script,
                              std::shared_ptr<const EdgeDecomposition>
                                  decomposition,
                              const TimestampArena& oracle_arena,
                              obs::MetricsRegistry& registry) {
    StreamingReport report;
    const auto start = std::chrono::steady_clock::now();

    std::unique_ptr<SpillStore> spill;
    if (!config.spill_dir.empty()) {
        spill = std::make_unique<SpillStore>(config.spill_dir + "/closure");
        spill->attach_metrics(registry, "spill");
    }
    apply_budget(config, decomposition->size(), script.num_messages(),
                 report.window, report.chunk_rows);

    StreamingClosureOptions closure_options;
    closure_options.chunk_rows = report.chunk_rows;
    closure_options.spill = spill.get();
    StreamingClosure closure(script.num_processes(), script.num_messages(),
                             closure_options);
    closure.attach_metrics(registry, "stream_closure");

    StreamingIndexOptions index_options;
    index_options.window = report.window;
    index_options.closure = &closure;
    index_options.metrics = &registry;
    IncrementalPrecedenceIndex index(decomposition, index_options);

    StreamProbe probe(config.seed);
    for (const SyncMessage& m : script.messages()) {
        const MessageId id = index.ingest_message(m.sender, m.receiver);
        probe.check(index, closure, id, &oracle_arena, report);
    }
    closure.finish();
    report.messages = index.size();
    report.events = script.num_messages() + script.num_internal_events();
    report.resident_rows =
        std::min<std::size_t>(report.window, report.messages);
    report.relations = closure.relation_count();

    // Sharded spill-aware verification of the oracle stamps, bounded to
    // one chunk window of closure rows (its own spill namespace so chunk
    // ids cannot collide with the live ingestion closure's).
    std::unique_ptr<SpillStore> verify_spill;
    if (!config.spill_dir.empty()) {
        verify_spill = std::make_unique<SpillStore>(config.spill_dir +
                                                    "/verify");
    }
    TimestampArena stamps = oracle_arena;
    stamps.detach_metrics();
    const TimestampedTrace trace(script, std::move(stamps));
    StreamedVerifyOptions verify_options;
    verify_options.chunk_rows = report.chunk_rows;
    verify_options.spill = verify_spill.get();
    verify_options.min_streamed_messages = 0;  // --stream forces the path
    verify_options.analysis.threads = config.threads;
    report.verify_mismatches =
        trace.verify_against_ground_truth(verify_options);

    if (spill != nullptr) {
        report.spill_chunks = spill->chunk_count();
        report.spill_bytes_written = spill->bytes_written();
        report.spill_bytes_read = spill->bytes_read();
    }
    report.wall_ms =
        static_cast<double>(
            std::chrono::duration_cast<std::chrono::microseconds>(
                std::chrono::steady_clock::now() - start)
                .count()) /
        1000.0;
    return report;
}

void append_streaming_json(std::string& out, const StreamingReport& report) {
    char wall[32];
    std::snprintf(wall, sizeof(wall), "%.3f", report.wall_ms);
    out += ",\"streaming\":{\"messages\":" + std::to_string(report.messages);
    out += ",\"events\":" + std::to_string(report.events);
    out += ",\"window\":" + std::to_string(report.window);
    out += ",\"chunk_rows\":" + std::to_string(report.chunk_rows);
    out += ",\"resident_rows\":" + std::to_string(report.resident_rows);
    out += ",\"relations\":" + std::to_string(report.relations);
    out += ",\"stamp_checks\":" + std::to_string(report.stamp_checks);
    out += ",\"stamp_mismatches\":" +
           std::to_string(report.stamp_mismatches);
    out += ",\"query_checks\":" + std::to_string(report.query_checks);
    out += ",\"query_mismatches\":" +
           std::to_string(report.query_mismatches);
    out += ",\"verify_mismatches\":" +
           std::to_string(report.verify_mismatches);
    out += ",\"spill_chunks\":" + std::to_string(report.spill_chunks);
    out += ",\"spill_bytes_written\":" +
           std::to_string(report.spill_bytes_written);
    out += ",\"spill_bytes_read\":" +
           std::to_string(report.spill_bytes_read);
    out += ",\"wall_ms\":";
    out += wall;
    out += "}";
}

void print_streaming_text(const StreamingReport& report) {
    std::printf(
        "stream:  messages=%zu window=%zu chunk_rows=%zu relations=%llu "
        "resident_rows=%zu\n"
        "         checks: stamp=%llu/%llu query=%llu/%llu verify=%llu  "
        "spill: chunks=%llu bytes=%llu (%.3fms)\n",
        report.messages, report.window, report.chunk_rows,
        static_cast<unsigned long long>(report.relations),
        report.resident_rows,
        static_cast<unsigned long long>(report.stamp_mismatches),
        static_cast<unsigned long long>(report.stamp_checks),
        static_cast<unsigned long long>(report.query_mismatches),
        static_cast<unsigned long long>(report.query_checks),
        static_cast<unsigned long long>(report.verify_mismatches),
        static_cast<unsigned long long>(report.spill_chunks),
        static_cast<unsigned long long>(report.spill_bytes_written),
        report.wall_ms);
}

/// --ingest mode: pure streaming analysis of a SYTR v2 file or pipe —
/// no protocol replay, no materialized computation. The topology comes
/// from the stream header; stamps are produced online and retired
/// through the window; the closure is the ground truth the fast path is
/// probed against.
int run_ingest_mode(const Config& config) {
    std::ifstream file;
    std::istream* in = &std::cin;
    if (config.ingest_path != "-") {
        file.open(config.ingest_path, std::ios::binary);
        if (!file) {
            std::fprintf(stderr, "cannot open %s\n",
                         config.ingest_path.c_str());
            return 2;
        }
        in = &file;
    }

    obs::MetricsRegistry registry;
    StreamingReport report;
    std::string topology_name;
    std::size_t num_processes = 0;
    std::size_t width = 0;
    const auto start = std::chrono::steady_clock::now();
    try {
        StreamingTraceReader reader(*in);
        num_processes = reader.topology().num_vertices();
        const SyncSystem system(reader.topology());
        width = system.width();

        std::unique_ptr<SpillStore> spill;
        if (!config.spill_dir.empty()) {
            spill = std::make_unique<SpillStore>(config.spill_dir +
                                                 "/closure");
            spill->attach_metrics(registry, "spill");
        }
        // The stream's total is unknown up front (pipes); budget the
        // chunk for the declared --events scale.
        apply_budget(config, width, config.events, report.window,
                     report.chunk_rows);

        StreamingClosureOptions closure_options;
        closure_options.chunk_rows = report.chunk_rows;
        closure_options.spill = spill.get();
        StreamingClosure closure(num_processes, config.events,
                                 closure_options);
        closure.attach_metrics(registry, "stream_closure");

        StreamingIndexOptions index_options;
        index_options.window = report.window;
        index_options.closure = &closure;
        index_options.metrics = &registry;
        IncrementalPrecedenceIndex index(system, index_options);

        StreamProbe probe(config.seed);
        while (const std::optional<TraceRecord> record = reader.next()) {
            ++report.events;
            if (record->kind == TraceRecord::Kind::message) {
                const MessageId id =
                    index.ingest_message(record->a, record->b);
                probe.check(index, closure, id, nullptr, report);
            } else {
                index.ingest_internal(record->a);
            }
        }
        closure.finish();
        report.messages = index.size();
        report.resident_rows =
            std::min<std::size_t>(report.window, report.messages);
        report.relations = closure.relation_count();
        if (spill != nullptr) {
            report.spill_chunks = spill->chunk_count();
            report.spill_bytes_written = spill->bytes_written();
            report.spill_bytes_read = spill->bytes_read();
        }
    } catch (const std::exception& error) {
        std::fprintf(stderr, "ingest failed: %s\n", error.what());
        return 2;
    }
    report.wall_ms =
        static_cast<double>(
            std::chrono::duration_cast<std::chrono::microseconds>(
                std::chrono::steady_clock::now() - start)
                .count()) /
        1000.0;

    const bool clean = report.total_mismatches() == 0;
    if (config.json) {
        std::string out;
        out += "{\"tool\":\"syncts_stats\",\"mode\":\"ingest\"";
        out += ",\"input\":\"";
        out += config.ingest_path == "-" ? "<stdin>" : config.ingest_path;
        out += "\",\"processes\":" + std::to_string(num_processes);
        out += ",\"width\":" + std::to_string(width);
        out += ",\"seed\":" + std::to_string(config.seed);
        append_streaming_json(out, report);
        out += ",\"metrics\":";
        registry.write_json(out);
        out += ",\"ok\":";
        out += clean ? "true" : "false";
        out += "}\n";
        std::fwrite(out.data(), 1, out.size(), stdout);
    } else if (!config.quiet) {
        std::printf("syncts_stats --ingest %s: n=%zu d=%zu events=%zu\n",
                    config.ingest_path.c_str(), num_processes, width,
                    report.events);
        print_streaming_text(report);
        std::printf("%s\n", clean ? "PASS" : "FAIL");
    }
    return clean ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
    const Config config = parse_args(argc, argv);
    if (!config.postmortem_path.empty()) {
        return decode_postmortem_file(config);
    }
    if (!config.ingest_path.empty()) {
        return run_ingest_mode(config);
    }
    const Graph topology = tools::build_topology(config.spec);

    obs::MetricsRegistry registry;
    obs::TraceSink sink(config.trace_capacity);
    const bool tracing =
        !config.trace_json_path.empty() || !config.trace_binary_path.empty();
    // The profiler consumes the same sink the trace exports come from.
    const bool capture = tracing || config.profile;
    // The flight recorder is armed by an explicit dump path or by crash
    // rules (the dump is retained in memory either way; the file is only
    // written when --flight names one).
    const bool flight =
        !config.flight_path.empty() || !config.crashes.empty();
    obs::FlightRecorder recorder(config.trace_capacity, 64);
    if (!config.flight_path.empty()) {
        recorder.set_dump_path(config.flight_path);
    }

    // Epoch sequence: epoch 0 is the instrumented default decomposition;
    // each --reconfig op adds one epoch (topo_* counters land in the
    // registry like every other layer's).
    TopologyManager manager{default_decomposition(topology, &registry)};
    manager.attach_metrics(registry);
    if (!config.reconfig.empty()) {
        for (const ReconfigOp& op :
             parse_reconfig_schedule(config.reconfig, topology)) {
            apply(manager, op);
        }
    }
    const std::size_t num_epochs = manager.num_epochs();
    for (const CrashRule& rule : config.crashes) {
        if (rule.process >= manager.max_num_processes()) {
            std::fprintf(stderr, "--crash names process %u but the "
                         "topology has %zu processes\n",
                         rule.process, manager.max_num_processes());
            usage();
        }
    }
    const std::size_t events_per_epoch =
        config.events / num_epochs == 0 ? 1 : config.events / num_epochs;

    // Direct Fig. 5 stamps per epoch (the oracle), through instrumented
    // engines and arenas. expected[e][m] is script m's reference stamp.
    Rng workload_rng(config.seed);
    std::vector<SyncComputation> scripts;
    std::vector<std::unique_ptr<TimestampArena>> oracle_arenas;
    std::vector<std::vector<TsHandle>> expected;
    std::size_t total_messages = 0;
    for (EpochId e = 0; e < num_epochs; ++e) {
        WorkloadOptions workload;
        workload.num_messages = events_per_epoch;
        scripts.push_back(random_computation(manager.epoch(e).graph(),
                                             workload, workload_rng));
        const auto engine = make_clock_engine(ClockFamily::online,
                                              manager.epoch(e).decomposition);
        engine->attach_metrics(registry);
        oracle_arenas.push_back(std::make_unique<TimestampArena>(
            manager.epoch(e).width(), scripts.back().num_messages()));
        oracle_arenas.back()->attach_metrics(registry, "arena");
        expected.push_back(
            engine->stamp_messages(scripts.back(), *oracle_arenas.back()));
        total_messages += scripts.back().num_messages();
    }

    std::uint64_t mismatches = 0;
    std::uint64_t stalls = 0;
    std::uint64_t undetected_corrupt = 0;
    std::uint64_t virtual_duration = 0;
    ProtocolStats wire;
    for (std::uint64_t run = 1; run <= config.runs; ++run) {
        SynchronizerOptions options;
        options.seed = config.seed * 1'000'003 + run;
        options.latency_lo = config.latency_lo;
        options.latency_hi = config.latency_hi;
        options.faults.seed = run * 0x9E3779B9ull + config.seed;
        options.faults.drop_probability = config.drop;
        options.faults.duplicate_probability = config.dup;
        options.faults.corrupt_probability = config.corrupt;
        options.faults.delay_probability = config.delay;
        options.faults.max_extra_delay = config.jitter;
        options.faults.crashes = config.crashes;
        options.protocol.batching = config.batch;
        options.protocol.coalesce_acks = config.batch;
        options.protocol.delta = config.delta;
        if (config.bandwidth > 0) {
            options.protocol.bandwidth.enabled = true;
            options.protocol.bandwidth.bytes_per_tick = config.bandwidth;
        }
        options.metrics = &registry;
        options.trace = capture ? &sink : nullptr;
        options.recorder = flight ? &recorder : nullptr;
        // Profiling attributes one run's timeline; keep only the last.
        if (config.profile) sink.clear();
        // The registry accumulates across runs; the per-run reject count
        // is the counter's delta over this run.
        const std::uint64_t rejects_before =
            registry.counter("sync_frames_corrupt_rejected").value();
        try {
            const ReconfigurableRunResult result =
                run_reconfigurable_protocol(manager, scripts, options);
            virtual_duration += result.virtual_duration;
            wire.bytes_sent += result.protocol.bytes_sent;
            wire.wire_packets += result.protocol.wire_packets;
            wire.batch_packets += result.protocol.batch_packets;
            wire.batch_frames += result.protocol.batch_frames;
            wire.acks_coalesced += result.protocol.acks_coalesced;
            wire.delta_frames += result.protocol.delta_frames;
            wire.full_frames += result.protocol.full_frames;
            wire.delta_resyncs += result.protocol.delta_resyncs;
            wire.bsched_deferrals += result.protocol.bsched_deferrals;
            for (EpochId e = 0; e < result.segments.size(); ++e) {
                const EpochSegmentResult& segment = result.segments[e];
                for (std::size_t i = 0; i < segment.message_stamps.size();
                     ++i) {
                    const auto oracle = oracle_arenas[e]->span(
                        expected[e][segment.script_message[i]]);
                    if (!(segment.message_stamps[i] ==
                          VectorTimestamp(oracle))) {
                        ++mismatches;
                    }
                }
                if (segment.message_stamps.size() !=
                    scripts[e].num_messages()) {
                    ++mismatches;
                }
            }
            // FNV-1a catches every single-bit corruption the fault plan
            // injects, so every corrupted frame must be rejected at
            // decode (docs/FAULTS.md). A gap here is a checksum hole.
            const std::uint64_t rejects =
                registry.counter("sync_frames_corrupt_rejected").value() -
                rejects_before;
            if (result.network_faults.corrupted > rejects) {
                undetected_corrupt +=
                    result.network_faults.corrupted - rejects;
            }
        } catch (const SynchronizerStalled& stall) {
            std::fprintf(stderr, "run %llu stalled: %s\n",
                         static_cast<unsigned long long>(run), stall.what());
            ++stalls;
        }
    }
    registry.counter("stats_stamp_mismatches").inc(mismatches);
    registry.counter("stats_stalls").inc(stalls);
    registry.counter("stats_frames_corrupt_undetected")
        .inc(undetected_corrupt);

    // Causal profile of the last run's event stream (docs/PROFILING.md).
    // Everything in it is virtual-time-derived, so it is byte-identical
    // across same-seed invocations; only the build wall time is not, and
    // it is published under the wall_ms key the determinism gate strips.
    obs::Profile profile;
    double profile_wall_ms = 0.0;
    if (config.profile) {
        const auto start = std::chrono::steady_clock::now();
        const std::vector<obs::TraceEvent> events = sink.events();
        profile = obs::build_profile(events, manager.max_num_processes());
        profile_wall_ms =
            static_cast<double>(
                std::chrono::duration_cast<std::chrono::microseconds>(
                    std::chrono::steady_clock::now() - start)
                    .count()) /
            1000.0;
    }

    if (!config.emit_sytr_path.empty()) {
        // Epoch-0 workload as a SYTR v2 stream (the ingest input format;
        // '-' targets stdout for piping straight into --ingest).
        if (config.emit_sytr_path == "-") {
            write_binary_computation(std::cout, scripts[0]);
        } else {
            std::ofstream out(config.emit_sytr_path, std::ios::binary);
            if (!out) {
                std::fprintf(stderr, "cannot write %s\n",
                             config.emit_sytr_path.c_str());
                return 2;
            }
            write_binary_computation(out, scripts[0]);
        }
    }

    StreamingReport streaming;
    if (config.stream) {
        if (num_epochs != 1) {
            std::fprintf(stderr,
                         "--stream supports single-epoch runs only\n");
            return 2;
        }
        streaming = run_streaming(config, scripts[0],
                                  manager.epoch(0).decomposition,
                                  *oracle_arenas[0], registry);
        registry.counter("stats_stream_mismatches")
            .inc(streaming.total_mismatches());
    }

    AnalysisReport analysis;
    if (config.analysis && num_epochs == 1) {
        analysis =
            run_analysis(config, scripts[0], *oracle_arenas[0], registry);
    } else if (config.analysis) {
        // Stitch the per-epoch oracle stamps into one trace and verify
        // the barrier rule end to end.
        std::vector<TimestampedTrace> segments;
        for (EpochId e = 0; e < num_epochs; ++e) {
            std::vector<VectorTimestamp> stamps;
            stamps.reserve(scripts[e].num_messages());
            for (const TsHandle handle : expected[e]) {
                stamps.emplace_back(oracle_arenas[e]->span(handle));
            }
            segments.emplace_back(scripts[e], std::move(stamps));
        }
        const MultiEpochTrace trace(std::move(segments));
        analysis = run_multi_analysis(config, trace, registry);
    }
    if (config.analysis) {
        registry.counter("stats_analysis_mismatches")
            .inc(analysis.verify_mismatches);
        registry.counter("stats_query_mismatches")
            .inc(analysis.query_mismatches);
    }

    if (!config.trace_json_path.empty()) {
        std::string chrome;
        if (config.profile) {
            // Same document plus the highlighted critical-path track.
            obs::write_critical_path_trace(sink.events(), profile, chrome);
        } else {
            sink.write_chrome_trace(chrome);
        }
        if (!write_file(config.trace_json_path, chrome.data(),
                        chrome.size())) {
            std::fprintf(stderr, "cannot write %s\n",
                         config.trace_json_path.c_str());
            return 2;
        }
    }
    if (!config.trace_binary_path.empty()) {
        std::vector<std::uint8_t> frame;
        sink.write_binary(frame);
        if (!write_file(config.trace_binary_path,
                        reinterpret_cast<const char*>(frame.data()),
                        frame.size())) {
            std::fprintf(stderr, "cannot write %s\n",
                         config.trace_binary_path.c_str());
            return 2;
        }
    }

    const bool clean = mismatches == 0 && stalls == 0 &&
                       undetected_corrupt == 0 &&
                       analysis.verify_mismatches == 0 &&
                       analysis.query_mismatches == 0 &&
                       streaming.total_mismatches() == 0;
    if (config.json) {
        std::string out;
        out += "{\"tool\":\"syncts_stats\",\"topology\":\"";
        out += config.spec;
        out += "\",\"processes\":" +
               std::to_string(topology.num_vertices());
        out += ",\"width\":" + std::to_string(manager.epoch(0).width());
        out += ",\"epochs\":" + std::to_string(num_epochs);
        out += ",\"messages\":" + std::to_string(total_messages);
        out += ",\"runs\":" + std::to_string(config.runs);
        out += ",\"seed\":" + std::to_string(config.seed);
        out += ",\"stamp_mismatches\":" + std::to_string(mismatches);
        out += ",\"stalls\":" + std::to_string(stalls);
        out += ",\"frames_corrupt_undetected\":" +
               std::to_string(undetected_corrupt);
        out += ",\"virtual_duration\":" + std::to_string(virtual_duration);
        {
            // Wire-level accounting (docs/PROTOCOL.md): always present,
            // zeros when the batched path is off, so report consumers
            // can diff option stacks without key churn. The derived
            // rates make the headline savings one jq away.
            const std::uint64_t delivered =
                config.runs * total_messages;  // one ACK per message
            char rate[32];
            std::snprintf(rate, sizeof(rate), "%.4f",
                          delivered == 0
                              ? 0.0
                              : static_cast<double>(wire.acks_coalesced) /
                                    static_cast<double>(delivered));
            char per_msg[32];
            std::snprintf(per_msg, sizeof(per_msg), "%.1f",
                          delivered == 0
                              ? 0.0
                              : static_cast<double>(wire.bytes_sent) /
                                    static_cast<double>(delivered));
            out += ",\"protocol\":{\"bytes\":" +
                   std::to_string(wire.bytes_sent);
            out += ",\"bytes_per_msg\":";
            out += per_msg;
            out += ",\"sent_packets\":" + std::to_string(wire.wire_packets);
            out += ",\"batch_packets\":" +
                   std::to_string(wire.batch_packets);
            out += ",\"batch_frames\":" + std::to_string(wire.batch_frames);
            out += ",\"acks_coalesced\":" +
                   std::to_string(wire.acks_coalesced);
            out += ",\"coalesce_rate\":";
            out += rate;
            out += ",\"delta_frames\":" + std::to_string(wire.delta_frames);
            out += ",\"full_frames\":" + std::to_string(wire.full_frames);
            out += ",\"delta_resyncs\":" +
                   std::to_string(wire.delta_resyncs);
            out += ",\"bsched_deferrals\":" +
                   std::to_string(wire.bsched_deferrals) + "}";
        }
        out += ",\"trace\":{\"recorded\":" + std::to_string(sink.recorded());
        out += ",\"retained\":" + std::to_string(sink.size());
        out += ",\"dropped\":" + std::to_string(sink.dropped()) + "}";
        if (config.analysis) {
            char wall[32];
            std::snprintf(wall, sizeof(wall), "%.3f", analysis.wall_ms);
            out += ",\"analysis\":{\"threads\":" +
                   std::to_string(analysis.threads);
            out += ",\"queries\":" + std::to_string(analysis.queries);
            out += ",\"poset_relations\":" +
                   std::to_string(analysis.poset_relations);
            out += ",\"verify_mismatches\":" +
                   std::to_string(analysis.verify_mismatches);
            out += ",\"query_mismatches\":" +
                   std::to_string(analysis.query_mismatches);
            out += ",\"memo_hits\":" + std::to_string(analysis.memo_hits);
            out += ",\"memo_misses\":" + std::to_string(analysis.memo_misses);
            out += ",\"wall_ms\":";
            out += wall;
            out += "}";
        }
        if (config.stream) append_streaming_json(out, streaming);
        if (config.profile) {
            char wall[32];
            std::snprintf(wall, sizeof(wall), "%.3f", profile_wall_ms);
            std::string profile_json = obs::to_profile_json(profile);
            // Splice the one wall-clock field in as the (sorted) last
            // key; the determinism gate zeroes it like analysis.wall_ms.
            profile_json.pop_back();
            profile_json += ",\"wall_ms\":";
            profile_json += wall;
            profile_json += "}";
            out += ",\"profile\":" + profile_json;
        }
        if (flight) {
            out += ",\"flight\":{\"dumps\":" +
                   std::to_string(recorder.dumps());
            out += ",\"retained\":" + std::to_string(recorder.retained());
            out += ",\"truncated\":" + std::to_string(recorder.truncated());
            out += "}";
        }
        out += ",\"metrics\":";
        registry.write_json(out);
        out += ",\"ok\":";
        out += clean ? "true" : "false";
        out += "}\n";
        std::fwrite(out.data(), 1, out.size(), stdout);
    } else if (!config.quiet) {
        std::printf("syncts_stats: %s  n=%zu  d=%zu  epochs=%zu  "
                    "messages=%zu  runs=%llu  seed=%llu\n",
                    config.spec.c_str(), topology.num_vertices(),
                    manager.epoch(0).width(), num_epochs, total_messages,
                    static_cast<unsigned long long>(config.runs),
                    static_cast<unsigned long long>(config.seed));
        std::printf("verify:  mismatches=%llu stalls=%llu "
                    "frames_corrupt_undetected=%llu\n",
                    static_cast<unsigned long long>(mismatches),
                    static_cast<unsigned long long>(stalls),
                    static_cast<unsigned long long>(undetected_corrupt));
        if (config.batch || config.delta || config.bandwidth > 0) {
            const std::uint64_t delivered = config.runs * total_messages;
            std::printf(
                "wire:    bytes=%llu (%.1f/msg) sent_packets=%llu "
                "batch_packets=%llu coalesced=%llu delta=%llu/%llu "
                "resyncs=%llu deferrals=%llu\n",
                static_cast<unsigned long long>(wire.bytes_sent),
                delivered == 0 ? 0.0
                               : static_cast<double>(wire.bytes_sent) /
                                     static_cast<double>(delivered),
                static_cast<unsigned long long>(wire.wire_packets),
                static_cast<unsigned long long>(wire.batch_packets),
                static_cast<unsigned long long>(wire.acks_coalesced),
                static_cast<unsigned long long>(wire.delta_frames),
                static_cast<unsigned long long>(wire.delta_frames +
                                                wire.full_frames),
                static_cast<unsigned long long>(wire.delta_resyncs),
                static_cast<unsigned long long>(wire.bsched_deferrals));
        }
        if (tracing) {
            std::printf("trace:   recorded=%llu retained=%zu dropped=%llu\n",
                        static_cast<unsigned long long>(sink.recorded()),
                        sink.size(),
                        static_cast<unsigned long long>(sink.dropped()));
        }
        if (config.profile) {
            std::printf(
                "profile: rendezvous=%zu critical_length=%llu "
                "critical_span=%llu critical_slack=%llu span=%llu "
                "(%.3fms)\n",
                profile.rendezvous.size(),
                static_cast<unsigned long long>(profile.critical_length),
                static_cast<unsigned long long>(profile.critical_span),
                static_cast<unsigned long long>(profile.critical_slack),
                static_cast<unsigned long long>(profile.span),
                profile_wall_ms);
            for (std::size_t p = 0; p < profile.processes.size(); ++p) {
                const obs::ProcessBreakdown& b = profile.processes[p];
                if (b.total == 0) continue;
                std::printf(
                    "  P%zu: total=%llu working=%llu blocked=%llu "
                    "down=%llu barrier=%llu\n",
                    p, static_cast<unsigned long long>(b.total),
                    static_cast<unsigned long long>(b.working),
                    static_cast<unsigned long long>(b.blocked),
                    static_cast<unsigned long long>(b.down),
                    static_cast<unsigned long long>(b.barrier_stall));
            }
        }
        if (flight && recorder.dumps() > 0) {
            std::printf("flight:  dumps=%llu retained=%zu truncated=%llu\n",
                        static_cast<unsigned long long>(recorder.dumps()),
                        recorder.retained(),
                        static_cast<unsigned long long>(
                            recorder.truncated()));
        }
        if (config.analysis) {
            const std::uint64_t lookups =
                analysis.memo_hits + analysis.memo_misses;
            std::printf(
                "analysis: threads=%zu relations=%zu verify_mismatches=%llu "
                "wall_ms=%.3f\n",
                analysis.threads, analysis.poset_relations,
                static_cast<unsigned long long>(analysis.verify_mismatches),
                analysis.wall_ms);
            if (analysis.queries > 0) {
                std::printf(
                    "queries: %zu lookups  mismatches=%llu  memo hit-rate "
                    "%.1f%% (%llu/%llu)\n",
                    analysis.queries,
                    static_cast<unsigned long long>(
                        analysis.query_mismatches),
                    lookups == 0
                        ? 0.0
                        : 100.0 * static_cast<double>(analysis.memo_hits) /
                              static_cast<double>(lookups),
                    static_cast<unsigned long long>(analysis.memo_hits),
                    static_cast<unsigned long long>(lookups));
            }
        }
        if (config.stream) print_streaming_text(streaming);
        std::printf("metrics: %s\n", registry.to_json().c_str());
        std::printf("%s\n", clean ? "PASS" : "FAIL");
    }
    return clean ? 0 : 1;
}
