#pragma once

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "graph/generators.hpp"

/// Shared command-line topology specs for the syncts tools:
///   star:<n> | ring:<n> | path:<n> | complete:<n> | tree:<n>:<arity> |
///   cs:<servers>:<clients> | grid:<w>:<h> | triangles:<t> |
///   gnp:<n>:<p%>:<seed> | fig2b | fig4

namespace syncts::tools {

inline std::vector<std::string> split(const std::string& text, char sep) {
    std::vector<std::string> parts;
    std::size_t start = 0;
    for (;;) {
        const std::size_t pos = text.find(sep, start);
        parts.push_back(text.substr(start, pos - start));
        if (pos == std::string::npos) return parts;
        start = pos + 1;
    }
}

inline std::size_t parse_count(const std::string& token) {
    return static_cast<std::size_t>(
        std::strtoull(token.c_str(), nullptr, 10));
}

inline Graph build_topology(const std::string& spec) {
    const auto parts = split(spec, ':');
    const std::string& kind = parts[0];
    const auto arg = [&](std::size_t i) { return parse_count(parts.at(i)); };
    if (kind == "star") return topology::star(arg(1));
    if (kind == "ring") return topology::ring(arg(1));
    if (kind == "path") return topology::path(arg(1));
    if (kind == "complete") return topology::complete(arg(1));
    if (kind == "tree") return topology::kary_tree(arg(1), arg(2));
    if (kind == "cs") return topology::client_server(arg(1), arg(2));
    if (kind == "grid") return topology::grid(arg(1), arg(2));
    if (kind == "triangles") return topology::disjoint_triangles(arg(1));
    // tri<k> — compact alias for triangles:<k> (e.g. the CI smoke job's
    // `tri3`: nine processes in three disjoint triangles).
    if (kind.size() > 3 && kind.compare(0, 3, "tri") == 0 &&
        kind.find_first_not_of("0123456789", 3) == std::string::npos) {
        return topology::disjoint_triangles(parse_count(kind.substr(3)));
    }
    if (kind == "gnp") {
        Rng rng(arg(3));
        return topology::random_gnp(arg(1),
                                    static_cast<double>(arg(2)) / 100.0,
                                    rng);
    }
    if (kind == "fig2b") return topology::paper_fig2b();
    if (kind == "fig4") return topology::paper_fig4_tree();
    std::fprintf(stderr, "unknown topology spec '%s'\n", spec.c_str());
    std::exit(2);
}

inline const char* spec_help() {
    return "star:<n> ring:<n> path:<n> complete:<n> tree:<n>:<k> cs:<s>:<c> "
           "grid:<w>:<h> triangles:<t> (alias tri<t>) gnp:<n>:<p%>:<seed> "
           "fig2b fig4";
}

}  // namespace syncts::tools
