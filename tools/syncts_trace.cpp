// syncts_trace — analyze a recorded computation (the trace_io format):
// timestamps every message with the online algorithm, reports poset
// statistics and the offline width, and answers precedence queries.
//
// Usage:
//   syncts_trace <trace-file> [--stamps] [--diagram] [--query <m1> <m2>]...
//   syncts_trace --generate <topology-spec> <messages> <seed>
//
// With no trace file argument, reads the trace from stdin. --generate
// emits a random workload in the trace format (pipe it back in):
//   syncts_trace --generate cs:2:6 100 7 | syncts_trace --diagram

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "clocks/offline_timestamper.hpp"
#include "core/causality.hpp"
#include "core/sync_system.hpp"
#include "core/timestamped_trace.hpp"
#include "poset/dilworth.hpp"
#include "trace/diagram.hpp"
#include "trace/ground_truth.hpp"
#include "trace/generator.hpp"
#include "trace/trace_io.hpp"

#include "topo_spec.hpp"

using namespace syncts;

int main(int argc, char** argv) {
    if (argc >= 2 && std::string(argv[1]) == "--generate") {
        if (argc != 5) {
            std::fprintf(stderr,
                         "usage: syncts_trace --generate <spec> <messages> "
                         "<seed>\nspecs: %s\n",
                         tools::spec_help());
            return 2;
        }
        const Graph g = tools::build_topology(argv[2]);
        Rng rng(tools::parse_count(argv[4]));
        WorkloadOptions options;
        options.num_messages = tools::parse_count(argv[3]);
        const SyncComputation generated =
            random_computation(g, options, rng);
        std::printf("%s", serialize_computation(generated).c_str());
        return 0;
    }
    std::vector<std::pair<MessageId, MessageId>> queries;
    bool want_stamps = false;
    bool want_diagram = false;
    std::string path;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--stamps") {
            want_stamps = true;
        } else if (arg == "--diagram") {
            want_diagram = true;
        } else if (arg == "--query" && i + 2 < argc) {
            queries.emplace_back(
                static_cast<MessageId>(std::atoi(argv[i + 1])),
                static_cast<MessageId>(std::atoi(argv[i + 2])));
            i += 2;
        } else if (path.empty()) {
            path = arg;
        } else {
            std::fprintf(stderr,
                         "usage: syncts_trace [<trace-file>] [--stamps] "
                         "[--diagram] [--query m1 m2]...\n");
            return 2;
        }
    }

    SyncComputation computation = [&] {
        if (path.empty()) return read_computation(std::cin);
        std::ifstream file(path);
        if (!file) {
            std::fprintf(stderr, "cannot open '%s'\n", path.c_str());
            std::exit(2);
        }
        return read_computation(file);
    }();

    const SyncSystem system(computation.topology());
    const TimestampedTrace trace = system.analyze(computation);
    const Poset truth = message_poset(computation);

    std::printf("processes: %zu, channels: %zu, messages: %zu, internal "
                "events: %zu\n",
                computation.num_processes(),
                computation.topology().num_edges(),
                computation.num_messages(),
                computation.num_internal_events());
    std::printf("online width d = %zu (FM would use %zu)\n", system.width(),
                computation.num_processes());
    std::printf("concurrent pairs: %zu of %zu\n",
                trace.concurrent_pair_count(),
                computation.num_messages() *
                    (computation.num_messages() - 1) / 2);
    const OfflineResult offline =
        offline_timestamps(truth, computation.num_processes());
    std::printf("offline width: %zu (Theorem 8 bound %zu)\n", offline.width,
                offline.theorem8_bound);
    std::printf("encoding check: %zu mismatches\n",
                trace.verify_against_ground_truth());

    if (want_stamps) std::printf("\n%s", trace.to_string().c_str());
    if (want_diagram) {
        std::printf("\n%s",
                    to_diagram(computation, {}).c_str());
    }

    for (const auto& [a, b] : queries) {
        if (a >= computation.num_messages() ||
            b >= computation.num_messages()) {
            std::printf("query m%u vs m%u: out of range\n", a + 1, b + 1);
            continue;
        }
        std::printf("query m%u vs m%u: %s\n", a + 1, b + 1,
                    to_string(compare(trace.timestamp(a),
                                      trace.timestamp(b))));
    }
    return 0;
}
