// syncts_topo — inspect a communication topology: decomposition sizes by
// strategy, vertex-cover bounds, and optional Graphviz output.
//
// Usage:
//   syncts_topo <spec> [--dot] [--exact]
//
// <spec> is one of:
//   star:<n> | ring:<n> | path:<n> | complete:<n> | tree:<n>:<arity> |
//   cs:<servers>:<clients> | grid:<w>:<h> | triangles:<t> |
//   gnp:<n>:<p%>:<seed> | fig2b | fig4
//
// --dot     also print the default decomposition as Graphviz
// --export  also print the default decomposition in the decomp_io text
//           format (ship it to every process at startup)
// --exact   also run the exponential exact decomposition / vertex cover
//           (small graphs only)

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "topo_spec.hpp"
#include "decomp/cover_decomposer.hpp"
#include "decomp/decomp_io.hpp"
#include "decomp/dot_export.hpp"
#include "decomp/exact_decomposer.hpp"
#include "decomp/greedy_decomposer.hpp"
#include "graph/generators.hpp"
#include "graph/vertex_cover.hpp"

using namespace syncts;


int main(int argc, char** argv) {
    if (argc < 2) {
        std::fprintf(stderr,
                     "usage: syncts_topo <spec> [--dot] [--export] [--exact]\n"
                     "specs: %s\n",
                     tools::spec_help());
        return 2;
    }
    bool want_dot = false;
    bool want_exact = false;
    bool want_export = false;
    for (int i = 2; i < argc; ++i) {
        const std::string flag = argv[i];
        if (flag == "--dot") want_dot = true;
        if (flag == "--exact") want_exact = true;
        if (flag == "--export") want_export = true;
    }

    const Graph g = tools::build_topology(argv[1]);
    std::printf("topology: %s  (connected=%s, acyclic=%s)\n",
                g.to_string().c_str(), g.is_connected() ? "yes" : "no",
                g.is_acyclic() ? "yes" : "no");

    const auto greedy = greedy_edge_decomposition(g);
    const auto fallback = default_decomposition(g);
    std::printf("greedy (Fig. 7):      d = %zu (%zu stars, %zu triangles)\n",
                greedy.size(), greedy.star_count(), greedy.triangle_count());
    std::printf("matching-cover stars: d = %zu\n",
                approx_cover_decomposition(g).size());
    std::printf("library default:      d = %zu\n", fallback.size());
    std::printf("FM baseline width:    N = %zu\n", g.num_vertices());

    if (want_exact) {
        const std::size_t beta = exact_vertex_cover(g).size();
        std::printf("exact vertex cover:   beta = %zu  (Thm 5 bound "
                    "min(beta, N-2) = %zu)\n",
                    beta,
                    std::min(beta, g.num_vertices() > 2
                                       ? g.num_vertices() - 2
                                       : beta));
        if (const auto exact = exact_edge_decomposition(g)) {
            std::printf("exact decomposition:  alpha = %zu  (greedy ratio "
                        "%.3f)\n",
                        exact->size(),
                        exact->size() == 0
                            ? 1.0
                            : static_cast<double>(greedy.size()) /
                                  static_cast<double>(exact->size()));
        } else {
            std::printf("exact decomposition:  (node budget exhausted)\n");
        }
    }

    if (want_dot) {
        std::printf("\n%s", to_dot(fallback).c_str());
    }
    if (want_export) {
        std::printf("\n%s", serialize_decomposition(fallback).c_str());
    }
    return 0;
}
