// syncts_topo — inspect a communication topology: decomposition sizes by
// strategy, vertex-cover bounds, and optional Graphviz output.
//
// Usage:
//   syncts_topo <spec> [--dot] [--exact] [--reconfig <schedule>]
//
// <spec> is one of:
//   star:<n> | ring:<n> | path:<n> | complete:<n> | tree:<n>:<arity> |
//   cs:<servers>:<clients> | grid:<w>:<h> | triangles:<t> |
//   gnp:<n>:<p%>:<seed> | fig2b | fig4
//
// --dot       also print the default decomposition as Graphviz
// --export    also print the default decomposition in the decomp_io text
//             format (ship it to every process at startup); with
//             --reconfig the final epoch is exported, tagged with its id
// --exact     also run the exponential exact decomposition / vertex cover
//             (small graphs only)
// --reconfig  replay a reconfiguration schedule (docs/TOPOLOGY.md:
//             addc:<a>:<b> | delc:<a>:<b> | addp[:<a>] | rand:<k>:<seed>)
//             and print the per-epoch decomposition ledger

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "topo_spec.hpp"
#include "decomp/cover_decomposer.hpp"
#include "decomp/decomp_io.hpp"
#include "decomp/dot_export.hpp"
#include "decomp/exact_decomposer.hpp"
#include "decomp/greedy_decomposer.hpp"
#include "graph/generators.hpp"
#include "graph/vertex_cover.hpp"
#include "topo/reconfig.hpp"
#include "topo/topology_manager.hpp"

using namespace syncts;


int main(int argc, char** argv) {
    if (argc < 2) {
        std::fprintf(stderr,
                     "usage: syncts_topo <spec> [--dot] [--export] [--exact] "
                     "[--reconfig <schedule>]\n"
                     "specs: %s\n",
                     tools::spec_help());
        return 2;
    }
    bool want_dot = false;
    bool want_exact = false;
    bool want_export = false;
    std::string reconfig;
    for (int i = 2; i < argc; ++i) {
        const std::string flag = argv[i];
        if (flag == "--dot") want_dot = true;
        if (flag == "--exact") want_exact = true;
        if (flag == "--export") want_export = true;
        if (flag == "--reconfig" && i + 1 < argc) reconfig = argv[++i];
    }

    const Graph g = tools::build_topology(argv[1]);
    std::printf("topology: %s  (connected=%s, acyclic=%s)\n",
                g.to_string().c_str(), g.is_connected() ? "yes" : "no",
                g.is_acyclic() ? "yes" : "no");

    const auto greedy = greedy_edge_decomposition(g);
    const auto fallback = default_decomposition(g);
    std::printf("greedy (Fig. 7):      d = %zu (%zu stars, %zu triangles)\n",
                greedy.size(), greedy.star_count(), greedy.triangle_count());
    std::printf("matching-cover stars: d = %zu\n",
                approx_cover_decomposition(g).size());
    std::printf("library default:      d = %zu\n", fallback.size());
    std::printf("FM baseline width:    N = %zu\n", g.num_vertices());

    if (want_exact) {
        const std::size_t beta = exact_vertex_cover(g).size();
        std::printf("exact vertex cover:   beta = %zu  (Thm 5 bound "
                    "min(beta, N-2) = %zu)\n",
                    beta,
                    std::min(beta, g.num_vertices() > 2
                                       ? g.num_vertices() - 2
                                       : beta));
        if (const auto exact = exact_edge_decomposition(g)) {
            std::printf("exact decomposition:  alpha = %zu  (greedy ratio "
                        "%.3f)\n",
                        exact->size(),
                        exact->size() == 0
                            ? 1.0
                            : static_cast<double>(greedy.size()) /
                                  static_cast<double>(exact->size()));
        } else {
            std::printf("exact decomposition:  (node budget exhausted)\n");
        }
    }

    TopologyManager manager{EdgeDecomposition(fallback)};
    if (!reconfig.empty()) {
        std::vector<ReconfigOp> schedule;
        try {
            schedule = parse_reconfig_schedule(reconfig, g);
        } catch (const std::exception& error) {
            std::fprintf(stderr, "syncts_topo: bad --reconfig schedule: %s\n",
                         error.what());
            return 2;
        }
        std::printf("\nreconfig: %zu op(s) -> %zu epochs\n", schedule.size(),
                    schedule.size() + 1);
        std::printf("epoch 0: N=%zu channels=%zu d=%zu\n",
                    manager.current().num_processes(),
                    manager.current().graph().num_edges(),
                    manager.current().width());
        for (const ReconfigOp& op : schedule) {
            const EpochTransition& t = apply(manager, op);
            const Epoch& epoch = manager.current();
            std::printf(
                "epoch %u (%s): N=%zu channels=%zu d=%zu  preserved=%zu "
                "rebuilt=%zu%s\n",
                epoch.id, op.to_string().c_str(), epoch.num_processes(),
                epoch.graph().num_edges(), epoch.width(), t.preserved_groups,
                epoch.width() - t.preserved_groups,
                t.full_rebuild ? "  [full rebuild]" : "");
        }
    }

    if (want_dot) {
        std::printf("\n%s", to_dot(fallback).c_str());
    }
    if (want_export) {
        // With a schedule, export the topology the system ends up on —
        // tagged with its epoch so consumers can reject stale artifacts.
        std::printf("\n%s",
                    serialize_decomposition(*manager.current_decomposition(),
                                            manager.current_epoch_id())
                        .c_str());
    }
    return 0;
}
