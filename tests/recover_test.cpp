#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <vector>

#include "clocks/clock_engine.hpp"
#include "clocks/wire.hpp"
#include "decomp/cover_decomposer.hpp"
#include "graph/generators.hpp"
#include "recover/frame_window.hpp"
#include "recover/recovery_manager.hpp"
#include "recover/snapshot.hpp"
#include "recover/wal.hpp"
#include "test_util.hpp"
#include "topo/reconfig.hpp"
#include "topo/topology_manager.hpp"

/// Unit coverage of the crash-recovery building blocks (docs/
/// RECOVERY.md) — the frame window, the WAL, the snapshot codec, the
/// recovery manager's failure modes — plus the 500-seed save_state /
/// restore_state round-trip sweep across all six clock families,
/// including snapshots taken mid-epoch after topology migrations.

namespace syncts {
namespace {

std::vector<std::uint8_t> bytes_of(std::initializer_list<int> values) {
    std::vector<std::uint8_t> out;
    for (const int v : values) out.push_back(static_cast<std::uint8_t>(v));
    return out;
}

TEST(Recover, FrameWindowRetainsNewestAndOverwritesInPlace) {
    FrameWindow window(3);
    EXPECT_TRUE(window.empty());
    for (std::uint64_t s = 1; s <= 5; ++s) {
        window.put(s, bytes_of({static_cast<int>(s)}));
    }
    EXPECT_EQ(window.size(), 3u);
    EXPECT_EQ(window.find(2), nullptr);  // pruned
    ASSERT_NE(window.find(3), nullptr);
    ASSERT_NE(window.find(5), nullptr);
    EXPECT_EQ(*window.find(5), bytes_of({5}));
    // Re-putting a retained sequence overwrites in place…
    window.put(4, bytes_of({44}));
    EXPECT_EQ(*window.find(4), bytes_of({44}));
    EXPECT_EQ(window.size(), 3u);
    // …and a sequence older than the window is ignored.
    window.put(1, bytes_of({11}));
    EXPECT_EQ(window.find(1), nullptr);
    EXPECT_THROW(FrameWindow(0), std::invalid_argument);
}

WalRecord make_record(std::uint64_t sequence) {
    WalRecord record;
    record.type = WalRecordType::commit;
    record.peer = 2;
    record.sequence = sequence;
    record.message = sequence * 7;
    record.epoch = 1;
    record.frame = bytes_of({1, 2, 3});
    record.aux = bytes_of({4, 5});
    return record;
}

TEST(Recover, WalFlushTruncateAndCrashSemantics) {
    Wal wal(3);
    EXPECT_EQ(wal.append(make_record(1)), 1u);
    EXPECT_EQ(wal.append(make_record(2)), 2u);
    EXPECT_EQ(wal.buffered_records(), 2u);  // under the flush interval
    EXPECT_EQ(wal.append(make_record(3)), 3u);
    EXPECT_EQ(wal.buffered_records(), 0u);  // auto group flush
    EXPECT_EQ(wal.durable_records(), 3u);

    wal.append(make_record(4));
    wal.drop_unflushed();  // the crash loses the unflushed tail…
    EXPECT_EQ(wal.dropped_records(), 1u);
    const std::vector<WalRecord> replayed = wal.replay(1);
    ASSERT_EQ(replayed.size(), 3u);
    for (std::size_t i = 0; i < replayed.size(); ++i) {
        EXPECT_EQ(replayed[i].lsn, i + 1);
        EXPECT_EQ(replayed[i].sequence, i + 1);
        EXPECT_EQ(replayed[i].frame, bytes_of({1, 2, 3}));
    }
    // …and the next append reuses the lost LSN (contiguity preserved).
    EXPECT_EQ(wal.append(make_record(4)), 4u);
    wal.flush();
    EXPECT_EQ(wal.replay(4).size(), 1u);

    wal.truncate(4);
    EXPECT_EQ(wal.truncated_records(), 3u);
    EXPECT_EQ(wal.first_lsn(), 4u);
    EXPECT_EQ(wal.replay(4).size(), 1u);
    // Replaying from before the truncation point is a log gap.
    EXPECT_THROW(wal.replay(2), RecoveryError);
}

TEST(Recover, WalRecordCodecRejectsDamage) {
    std::vector<std::uint8_t> encoded;
    WalRecord record = make_record(9);
    record.lsn = 12;
    encode_wal_record_into(record, encoded);
    const WalRecord decoded = decode_wal_record(encoded);
    EXPECT_EQ(decoded.lsn, 12u);
    EXPECT_EQ(decoded.sequence, 9u);
    EXPECT_EQ(decoded.aux, record.aux);

    for (std::size_t at = 0; at < encoded.size(); at += 3) {
        std::vector<std::uint8_t> damaged = encoded;
        damaged[at] ^= 0x40;
        EXPECT_THROW(decode_wal_record(damaged), RecoveryError)
            << "byte " << at;
    }
    EXPECT_THROW(decode_wal_record(std::span<const std::uint8_t>(
                     encoded.data(), encoded.size() - 2)),
                 RecoveryError);
}

Snapshot make_snapshot() {
    Snapshot snapshot;
    snapshot.state.self = 1;
    snapshot.state.epoch = 2;
    snapshot.state.cursor = 5;
    snapshot.state.steps = 17;
    snapshot.state.clock = {3, 0, 9};
    OutChannelState out;
    out.peer = 0;
    out.next_sequence = 6;
    out.req_window = FrameWindow(4);
    out.req_window.put(5, bytes_of({10}));
    out.req_window.put(6, bytes_of({11, 12}));
    snapshot.state.out.push_back(out);
    InChannelState in;
    in.peer = 2;
    in.last_committed = 3;
    in.ack_window = FrameWindow(4);
    in.ack_window.put(3, bytes_of({13}));
    snapshot.state.in.push_back(in);
    snapshot.state.outstanding.active = true;
    snapshot.state.outstanding.receiver = 0;
    snapshot.state.outstanding.sequence = 6;
    snapshot.state.outstanding.message = 41;
    snapshot.state.outstanding.frame = bytes_of({11, 12});
    snapshot.wal_lsn = 23;
    return snapshot;
}

TEST(Recover, SnapshotRoundTripsAndRejectsDamage) {
    const Snapshot snapshot = make_snapshot();
    const std::vector<std::uint8_t> encoded = encode_snapshot(snapshot);
    const Snapshot decoded = decode_snapshot(encoded);
    EXPECT_EQ(decoded.wal_lsn, 23u);
    EXPECT_EQ(decoded.state.self, 1u);
    EXPECT_EQ(decoded.state.epoch, 2u);
    EXPECT_EQ(decoded.state.cursor, 5u);
    EXPECT_EQ(decoded.state.steps, 17u);
    EXPECT_EQ(decoded.state.clock, snapshot.state.clock);
    ASSERT_EQ(decoded.state.out.size(), 1u);
    EXPECT_EQ(decoded.state.out[0].next_sequence, 6u);
    EXPECT_EQ(decoded.state.out[0].req_window.capacity(), 4u);
    ASSERT_NE(decoded.state.out[0].req_window.find(6), nullptr);
    EXPECT_EQ(*decoded.state.out[0].req_window.find(6), bytes_of({11, 12}));
    ASSERT_EQ(decoded.state.in.size(), 1u);
    EXPECT_EQ(decoded.state.in[0].last_committed, 3u);
    ASSERT_TRUE(decoded.state.outstanding.active);
    EXPECT_EQ(decoded.state.outstanding.message, 41u);

    // Re-encoding the decoded snapshot is byte-identical (canonical
    // form — what makes checkpoint bytes comparable across restarts).
    EXPECT_EQ(encode_snapshot(decoded), encoded);

    for (std::size_t at = 0; at < encoded.size(); at += 5) {
        std::vector<std::uint8_t> damaged = encoded;
        damaged[at] ^= 0x10;
        EXPECT_THROW(decode_snapshot(damaged), RecoveryError)
            << "byte " << at;
    }
    EXPECT_THROW(decode_snapshot(std::span<const std::uint8_t>(
                     encoded.data(), 7)),
                 RecoveryError);
    EXPECT_THROW(decode_snapshot(std::vector<std::uint8_t>{}),
                 RecoveryError);
}

TEST(Recover, RecoveryManagerRejectsGapsAndDamage) {
    const Graph topology = topology::path(3);
    auto decomposition = std::make_shared<const EdgeDecomposition>(
        default_decomposition(topology));
    const auto provider = [&](EpochId) { return decomposition; };

    Snapshot snapshot;
    snapshot.state.self = 0;
    snapshot.state.clock.resize(decomposition->size(), 0);
    Wal wal(1);
    snapshot.wal_lsn = wal.next_lsn();
    const std::vector<std::uint8_t> good = encode_snapshot(snapshot);

    // Empty WAL + fresh snapshot recovers to the captured state.
    const RecoverOutcome outcome =
        RecoveryManager::recover(good, wal, provider);
    EXPECT_EQ(outcome.replayed_records, 0u);
    EXPECT_EQ(outcome.state.epoch, 0u);

    // A WAL whose retained suffix starts after the snapshot's stability
    // point is unusable: records the snapshot needs are gone.
    WalRecord record;
    record.type = WalRecordType::epoch;
    record.epoch = 1;
    wal.append(record);
    wal.append(record);
    wal.flush();
    wal.truncate(3);
    EXPECT_THROW(RecoveryManager::recover(good, wal, provider),
                 RecoveryError);

    std::vector<std::uint8_t> damaged = good;
    damaged[damaged.size() / 2] ^= 0x08;
    Wal empty(1);
    EXPECT_THROW(RecoveryManager::recover(damaged, empty, provider),
                 RecoveryError);
}

// ---- save_state / restore_state across all six families --------------

constexpr ClockFamily kFamilies[] = {
    ClockFamily::online,  ClockFamily::fm_sync,
    ClockFamily::fm_event, ClockFamily::lamport,
    ClockFamily::direct_dependency, ClockFamily::offline,
};

TEST(ClockEngineState, FiveHundredSeedRoundTripsAcrossAllFamilies) {
    // >= 500 snapshot/restore round trips: capture an engine mid-run,
    // restore the bytes into a fresh engine on the same topology, and
    // require both to stamp the *continuation* workload bit-identically.
    std::size_t round_trips = 0;
    for (std::uint64_t seed = 1; seed <= 84; ++seed) {
        const auto suite = testing::small_graph_suite(seed);
        const Graph& graph = suite[seed % suite.size()].graph;
        if (graph.num_edges() == 0) continue;
        auto decomposition = std::make_shared<const EdgeDecomposition>(
            default_decomposition(graph));
        const SyncComputation history =
            testing::random_workload(graph, 12, 0.2, seed * 3 + 1);
        const SyncComputation continuation =
            testing::random_workload(graph, 12, 0.2, seed * 3 + 2);
        for (const ClockFamily family : kFamilies) {
            auto engine = make_clock_engine(family, decomposition);
            engine->stamp_computation(history);
            const std::vector<std::uint8_t> state = engine->save_state();

            auto restored = make_clock_engine(family, decomposition);
            restored->restore_state(state);
            EXPECT_EQ(restored->epoch(), engine->epoch());
            const std::vector<VectorTimestamp> want =
                engine->stamp_computation(continuation)
                    .materialize_messages();
            const std::vector<VectorTimestamp> got =
                restored->stamp_computation(continuation)
                    .materialize_messages();
            ASSERT_EQ(got, want)
                << to_string(family) << " seed " << seed;
            ++round_trips;
        }
    }
    EXPECT_GE(round_trips, 500u);
}

TEST(ClockEngineState, MidEpochSnapshotsSurviveTopologyMigrations) {
    // Capture *after* epoch transitions, mid-way through a later epoch:
    // the saved floor and epoch id must restore exactly.
    for (std::uint64_t seed = 0; seed < 20; ++seed) {
        TopologyManager manager{topology::ring(5)};
        for (const ReconfigOp& op : random_reconfig_schedule(
                 topology::ring(5), 2, 4200 + seed)) {
            apply(manager, op);
        }
        if (manager.num_epochs() < 2) continue;
        const EpochId target =
            static_cast<EpochId>(manager.num_epochs() - 1);
        for (const ClockFamily family : kFamilies) {
            auto engine = make_clock_engine(family, manager.decomposition(0));
            for (EpochId e = 0; e < target; ++e) {
                engine->stamp_computation(testing::random_workload(
                    manager.epoch(e).graph(), 10, 0.1, seed * 37 + e));
                engine->on_epoch(manager.transition_into(e + 1));
            }
            // Mid-epoch: stamp part of the final epoch, then snapshot.
            engine->stamp_computation(testing::random_workload(
                manager.epoch(target).graph(), 8, 0.1, seed * 41));
            const std::vector<std::uint8_t> state = engine->save_state();

            auto restored =
                make_clock_engine(family, manager.decomposition(target));
            restored->restore_state(state);
            EXPECT_EQ(restored->epoch(), target) << to_string(family);
            ASSERT_TRUE(std::equal(restored->epoch_floor().begin(),
                                   restored->epoch_floor().end(),
                                   engine->epoch_floor().begin(),
                                   engine->epoch_floor().end()))
                << to_string(family);
            const SyncComputation rest = testing::random_workload(
                manager.epoch(target).graph(), 8, 0.1, seed * 43);
            ASSERT_EQ(
                restored->stamp_computation(rest).materialize_messages(),
                engine->stamp_computation(rest).materialize_messages())
                << to_string(family) << " seed " << seed;
        }
    }
}

TEST(ClockEngineState, RestoreRejectsDamageAndMismatch) {
    const Graph graph = topology::complete(4);
    auto decomposition = std::make_shared<const EdgeDecomposition>(
        default_decomposition(graph));
    auto engine = make_clock_engine(ClockFamily::fm_sync, decomposition);
    engine->stamp_computation(
        testing::random_workload(graph, 10, 0.0, 12));
    const std::vector<std::uint8_t> state = engine->save_state();

    // Family mismatch.
    auto other = make_clock_engine(ClockFamily::lamport, decomposition);
    EXPECT_THROW(other->restore_state(state), std::invalid_argument);

    // Shape mismatch: same family, different topology.
    const Graph small = topology::path(2);
    auto narrow = make_clock_engine(
        ClockFamily::fm_sync, std::make_shared<const EdgeDecomposition>(
                                  default_decomposition(small)));
    EXPECT_THROW(narrow->restore_state(state), std::invalid_argument);

    // Checksum damage anywhere in the frame.
    for (std::size_t at = 0; at < state.size(); at += 4) {
        std::vector<std::uint8_t> damaged = state;
        damaged[at] ^= 0x20;
        auto fresh = make_clock_engine(ClockFamily::fm_sync, decomposition);
        EXPECT_ANY_THROW(fresh->restore_state(damaged)) << "byte " << at;
    }
    EXPECT_THROW(engine->restore_state(std::span<const std::uint8_t>(
                     state.data(), 3)),
                 WireError);
}

}  // namespace
}  // namespace syncts
