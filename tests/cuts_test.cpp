#include <gtest/gtest.h>

#include <algorithm>

#include "core/cuts.hpp"
#include "core/sync_system.hpp"
#include "test_util.hpp"
#include "trace/generator.hpp"

namespace syncts {
namespace {

TimestampedTrace fig1_trace() {
    const SyncComputation c = paper_fig1_computation();
    return SyncSystem(c.topology()).analyze(c);
}

TEST(Cuts, ConsistencyOnFig1) {
    const TimestampedTrace trace = fig1_trace();
    // Recall: m1..m6 with m1||m2 and everything else chained.
    EXPECT_TRUE(is_consistent_cut(trace, {}));
    EXPECT_TRUE(is_consistent_cut(trace, {0}));
    EXPECT_TRUE(is_consistent_cut(trace, {0, 1}));
    EXPECT_TRUE(is_consistent_cut(trace, {0, 1, 2}));
    // m3 without m1 (m1 -> m3) is inconsistent.
    EXPECT_FALSE(is_consistent_cut(trace, {2}));
    EXPECT_FALSE(is_consistent_cut(trace, {1, 2}));
    // The full set is always consistent.
    EXPECT_TRUE(is_consistent_cut(trace, {0, 1, 2, 3, 4, 5}));
}

TEST(Cuts, DownwardClosure) {
    const TimestampedTrace trace = fig1_trace();
    // Past of m5: m1, m2, m3, m4, m5 (m5 needs both branches).
    EXPECT_EQ(downward_closure(trace, {4}),
              (std::vector<MessageId>{0, 1, 2, 3, 4}));
    EXPECT_EQ(downward_closure(trace, {0}), (std::vector<MessageId>{0}));
    EXPECT_EQ(downward_closure(trace, {2}),
              (std::vector<MessageId>{0, 1, 2}));
    EXPECT_TRUE(is_consistent_cut(trace, downward_closure(trace, {3})));
}

TEST(Cuts, RecoveryLineExcludesOrphans) {
    const TimestampedTrace trace = fig1_trace();
    // Losing m3 orphans m4, m5, m6; the recovery line is {m1, m2}.
    EXPECT_EQ(recovery_line(trace, {2}), (std::vector<MessageId>{0, 1}));
    // Losing m6 (a maximal message) orphans nothing else.
    EXPECT_EQ(recovery_line(trace, {5}),
              (std::vector<MessageId>{0, 1, 2, 3, 4}));
}

TEST(Cuts, Frontier) {
    const TimestampedTrace trace = fig1_trace();
    // m1 -> m3 and m2 -> m3, so only m3 is maximal in {m1, m2, m3}.
    EXPECT_EQ(cut_frontier(trace, {0, 1, 2}), (std::vector<MessageId>{2}));
    EXPECT_EQ(cut_frontier(trace, {0, 1}), (std::vector<MessageId>{0, 1}));
    EXPECT_THROW(cut_frontier(trace, {2}), std::invalid_argument);
}

TEST(Cuts, PropertiesOnRandomWorkloads) {
    for (std::uint64_t seed = 0; seed < 8; ++seed) {
        const Graph g = topology::client_server(3, 5);
        const SyncComputation c =
            testing::random_workload(g, 60, 0.0, 1100 + seed);
        const TimestampedTrace trace = SyncSystem(g).analyze(c);
        // Closure of random seeds is consistent and contains the seeds.
        Rng rng(seed);
        std::vector<MessageId> seeds;
        for (int k = 0; k < 3; ++k) {
            seeds.push_back(
                static_cast<MessageId>(rng.below(trace.num_messages())));
        }
        const auto closure = downward_closure(trace, seeds);
        EXPECT_TRUE(is_consistent_cut(trace, closure));
        for (const MessageId s : seeds) {
            EXPECT_NE(std::ranges::find(closure, s), closure.end());
        }
        // Recovery line and orphan set partition the messages.
        const auto line = recovery_line(trace, {seeds[0]});
        EXPECT_TRUE(is_consistent_cut(trace, line));
        EXPECT_EQ(std::ranges::find(line, seeds[0]), line.end());
        for (const MessageId m : line) {
            EXPECT_FALSE(trace.precedes(seeds[0], m));
        }
        // Frontier elements are pairwise concurrent or equal... pairwise
        // incomparable, in fact.
        const auto frontier = cut_frontier(trace, closure);
        for (std::size_t i = 0; i < frontier.size(); ++i) {
            for (std::size_t j = i + 1; j < frontier.size(); ++j) {
                EXPECT_FALSE(trace.precedes(frontier[i], frontier[j]));
                EXPECT_FALSE(trace.precedes(frontier[j], frontier[i]));
            }
        }
    }
}

TEST(Cuts, RejectsOutOfRange) {
    const TimestampedTrace trace = fig1_trace();
    EXPECT_THROW(is_consistent_cut(trace, {99}), std::invalid_argument);
    EXPECT_THROW(downward_closure(trace, {99}), std::invalid_argument);
    EXPECT_THROW(recovery_line(trace, {99}), std::invalid_argument);
}

}  // namespace
}  // namespace syncts
