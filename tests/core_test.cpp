#include <gtest/gtest.h>

#include "core/causality.hpp"
#include "core/monitor.hpp"
#include "core/sync_system.hpp"
#include "core/timestamped_trace.hpp"
#include "test_util.hpp"
#include "trace/generator.hpp"
#include "trace/ground_truth.hpp"

namespace syncts {
namespace {

TEST(SyncSystemTest, BasicConstruction) {
    const SyncSystem system(topology::client_server(2, 10));
    EXPECT_EQ(system.num_processes(), 12u);
    EXPECT_EQ(system.width(), 2u);
    EXPECT_EQ(system.topology().num_edges(), 20u);
    EXPECT_TRUE(system.decomposition().complete());
}

TEST(SyncSystemTest, StrategiesDiffer) {
    const Graph g = topology::complete(6);
    EXPECT_EQ(SyncSystem(g, DecompositionStrategy::automatic).width(), 4u);
    EXPECT_EQ(SyncSystem(g, DecompositionStrategy::greedy).width(), 5u);
    EXPECT_EQ(SyncSystem(g, DecompositionStrategy::exact_cover).width(), 5u);
    EXPECT_LE(SyncSystem(g, DecompositionStrategy::approx_cover).width(),
              10u);
}

TEST(SyncSystemTest, AdoptsPrebuiltDecomposition) {
    EdgeDecomposition d(topology::triangle());
    d.add_triangle(Triangle::make(0, 1, 2));
    const SyncSystem system(std::move(d));
    EXPECT_EQ(system.width(), 1u);
    EdgeDecomposition incomplete(topology::path(3));
    EXPECT_THROW(SyncSystem{std::move(incomplete)}, std::invalid_argument);
}

TEST(SyncSystemTest, AnalyzeProducesExactTrace) {
    const Graph g = topology::paper_fig4_tree();
    const SyncSystem system(g);
    const SyncComputation c = testing::random_workload(g, 100, 0.0, 101);
    const TimestampedTrace trace = system.analyze(c);
    EXPECT_EQ(trace.verify_against_ground_truth(), 0u);
    EXPECT_EQ(trace.num_messages(), 100u);
}

TEST(SyncSystemTest, AnalyzeRejectsMismatchedComputation) {
    const SyncSystem system(topology::path(3));
    SyncComputation c(topology::path(4));
    c.add_message(0, 1);
    EXPECT_THROW(system.analyze(c), std::invalid_argument);
}

TEST(TimestampedTraceTest, PaperFig1Queries) {
    const SyncComputation c = paper_fig1_computation();
    const SyncSystem system(c.topology());
    const TimestampedTrace trace = system.analyze(c);
    EXPECT_TRUE(trace.concurrent(0, 1));       // m1 || m2
    EXPECT_TRUE(trace.precedes(0, 2));         // m1 -> m3
    EXPECT_TRUE(trace.precedes(1, 5));         // m2 -> m6
    EXPECT_TRUE(trace.precedes(2, 4));         // m3 -> m5
    EXPECT_FALSE(trace.precedes(4, 2));
    EXPECT_FALSE(trace.concurrent(2, 2));

    const auto minimal = trace.minimal_messages();
    EXPECT_EQ(minimal, (std::vector<MessageId>{0, 1}));
    const auto maximal = trace.maximal_messages();
    EXPECT_EQ(maximal, (std::vector<MessageId>{5}));
    EXPECT_EQ(trace.concurrent_with(0), (std::vector<MessageId>{1}));
    EXPECT_EQ(trace.concurrent_pair_count(), 1u);
    EXPECT_EQ(trace.verify_against_ground_truth(), 0u);
}

TEST(TimestampedTraceTest, ToStringListsStamps) {
    const SyncComputation c = paper_fig6_computation();
    const SyncSystem system(c.topology());
    const std::string s = system.analyze(c).to_string();
    EXPECT_NE(s.find("m3: P2 -> P3  (1,1,1)"), std::string::npos);
}

TEST(TimestampedTraceTest, RejectsMismatchedStampCount) {
    SyncComputation c(topology::path(2));
    c.add_message(0, 1);
    EXPECT_THROW(TimestampedTrace(c, {}), std::invalid_argument);
}

TEST(CausalityTest, CompareAndToString) {
    const VectorTimestamp a(std::vector<std::uint64_t>{1, 0});
    const VectorTimestamp b(std::vector<std::uint64_t>{1, 1});
    const VectorTimestamp c(std::vector<std::uint64_t>{0, 2});
    EXPECT_EQ(compare(a, b), Order::before);
    EXPECT_EQ(compare(b, a), Order::after);
    EXPECT_EQ(compare(a, c), Order::concurrent);
    EXPECT_EQ(compare(a, a), Order::equal);
    EXPECT_STREQ(to_string(Order::concurrent), "concurrent");
}

TEST(CausalityTest, CountsAndTotals) {
    const std::vector<VectorTimestamp> stamps{
        VectorTimestamp(std::vector<std::uint64_t>{1, 0}),
        VectorTimestamp(std::vector<std::uint64_t>{0, 1}),
        VectorTimestamp(std::vector<std::uint64_t>{2, 2})};
    EXPECT_EQ(count_concurrent_pairs(stamps), 1u);
    EXPECT_EQ(total_components(stamps), 6u);
}

TEST(CausalityTest, ConsistencyVsEncoding) {
    // A clock that orders too much is consistent but not an exact encoding.
    Poset p(2);
    p.close();  // two incomparable elements
    const std::vector<VectorTimestamp> exaggerating{
        VectorTimestamp(std::vector<std::uint64_t>{1}),
        VectorTimestamp(std::vector<std::uint64_t>{2})};
    EXPECT_EQ(consistency_violations(p, exaggerating), 0u);
    EXPECT_EQ(encoding_mismatches(p, exaggerating), 1u);
}

TEST(MonitorTest, ConflictDetection) {
    // Simulate a 2-server/3-client system; feed its timestamps to the
    // monitor and ask for conflicts.
    const Graph g = topology::client_server(2, 3);
    const SyncSystem system(g);
    auto timestamper = system.make_timestamper();
    CausalMonitor monitor;
    const std::size_t w1 =
        monitor.record("write-x@c1", timestamper.timestamp_message(2, 0));
    const std::size_t w2 =
        monitor.record("write-x@c2", timestamper.timestamp_message(3, 1));
    const std::size_t r1 =
        monitor.record("read-x@c1", timestamper.timestamp_message(2, 0));
    EXPECT_EQ(monitor.order(w1, r1), Order::before);
    EXPECT_EQ(monitor.order(w1, w2), Order::concurrent);
    EXPECT_EQ(monitor.conflicts_of(w1), (std::vector<std::size_t>{w2}));
    EXPECT_EQ(monitor.conflict_pair_count(), 2u);  // w1||w2 and w2||r1
    EXPECT_EQ(monitor.latest_predecessor(r1), std::optional<std::size_t>{w1});
    EXPECT_EQ(monitor.latest_predecessor(w1), std::nullopt);
    const auto frontier = monitor.frontier();
    EXPECT_EQ(frontier, (std::vector<std::size_t>{w2, r1}));
    EXPECT_EQ(monitor.operation(w2).label, "write-x@c2");
}

TEST(MonitorTest, OutOfRangeRejected) {
    CausalMonitor monitor;
    EXPECT_THROW(monitor.operation(0), std::invalid_argument);
    monitor.record("a", VectorTimestamp(1));
    EXPECT_THROW(monitor.order(0, 1), std::invalid_argument);
}

}  // namespace
}  // namespace syncts
