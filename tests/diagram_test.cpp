#include <gtest/gtest.h>

#include "clocks/online_clock.hpp"
#include "graph/generators.hpp"
#include "trace/diagram.hpp"
#include "trace/generator.hpp"

namespace syncts {
namespace {

TEST(Diagram, Fig1Layout) {
    const std::string diagram = to_diagram(paper_fig1_computation());
    EXPECT_EQ(diagram,
              "P1 | m1 .  .  .  .  .  \n"
              "P2 | m1 .  m3 m4 .  m6 \n"
              "P3 | .  m2 m3 m4 m5 m6 \n"
              "P4 | .  m2 .  .  m5 .  \n");
}

TEST(Diagram, InternalEventsRenderAsI) {
    SyncComputation c(topology::path(2));
    c.add_internal(0);
    c.add_message(0, 1);
    c.add_internal(1);
    const std::string diagram = to_diagram(c);
    EXPECT_EQ(diagram,
              "P1 | i  m1 .  \n"
              "P2 | .  m1 i  \n");
}

TEST(Diagram, LegendListsTimestamps) {
    const SyncComputation c = paper_fig6_computation();
    const auto stamps = online_timestamps(c);
    const std::string diagram = to_diagram(c, stamps);
    EXPECT_NE(diagram.find("m3 = (1,1,1)"), std::string::npos);
    EXPECT_NE(diagram.find("P5 |"), std::string::npos);
}

TEST(Diagram, WideMessageNumbersAlign) {
    SyncComputation c(topology::path(2));
    for (int i = 0; i < 12; ++i) c.add_message(0, 1);
    const std::string diagram = to_diagram(c);
    // Labels m1..m12: cell width fits "m12" (3 chars + space).
    EXPECT_NE(diagram.find("m12 "), std::string::npos);
    // Both rows have equal length.
    const std::size_t newline = diagram.find('\n');
    EXPECT_EQ(diagram.size() % (newline + 1), 0u);
}

TEST(Diagram, MismatchedStampsRejected) {
    SyncComputation c(topology::path(2));
    c.add_message(0, 1);
    const std::vector<VectorTimestamp> wrong(3, VectorTimestamp(1));
    EXPECT_THROW(to_diagram(c, wrong), std::invalid_argument);
}

}  // namespace
}  // namespace syncts
