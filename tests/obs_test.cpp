#include <gtest/gtest.h>

#include <cctype>
#include <cstdlib>
#include <fstream>
#include <memory>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "clocks/clock_engine.hpp"
#include "common/rng.hpp"
#include "common/timestamp_arena.hpp"
#include "decomp/cover_decomposer.hpp"
#include "graph/generators.hpp"
#include "obs/metrics.hpp"
#include "obs/trace_sink.hpp"
#include "runtime/synchronizer.hpp"
#include "trace/generator.hpp"

/// The instrumentation layer: registry semantics, histogram percentiles,
/// ring-buffer wraparound, binary round-trips, Chrome trace-event export
/// (schema-checked and golden-file pinned), end-to-end synchronizer
/// metrics — including the non-overlapping ACK-replay accounting — and
/// report determinism.

namespace syncts {
namespace {

constexpr std::uint32_t kAckKind = 1;

// ---- Minimal JSON validator -----------------------------------------
// Recursive-descent structural check (no external deps): verifies the
// text is one well-formed JSON value. Returns false instead of throwing
// so tests can assert on malformed inputs too.

class JsonChecker {
public:
    explicit JsonChecker(const std::string& text) : text_(text) {}

    bool valid() {
        pos_ = 0;
        skip_ws();
        if (!value()) return false;
        skip_ws();
        return pos_ == text_.size();
    }

private:
    bool value() {
        if (pos_ >= text_.size()) return false;
        switch (text_[pos_]) {
            case '{': return object();
            case '[': return array();
            case '"': return string();
            case 't': return literal("true");
            case 'f': return literal("false");
            case 'n': return literal("null");
            default: return number();
        }
    }
    bool object() {
        ++pos_;  // '{'
        skip_ws();
        if (peek() == '}') { ++pos_; return true; }
        for (;;) {
            skip_ws();
            if (!string()) return false;
            skip_ws();
            if (peek() != ':') return false;
            ++pos_;
            skip_ws();
            if (!value()) return false;
            skip_ws();
            if (peek() == ',') { ++pos_; continue; }
            if (peek() == '}') { ++pos_; return true; }
            return false;
        }
    }
    bool array() {
        ++pos_;  // '['
        skip_ws();
        if (peek() == ']') { ++pos_; return true; }
        for (;;) {
            skip_ws();
            if (!value()) return false;
            skip_ws();
            if (peek() == ',') { ++pos_; continue; }
            if (peek() == ']') { ++pos_; return true; }
            return false;
        }
    }
    bool string() {
        if (peek() != '"') return false;
        ++pos_;
        while (pos_ < text_.size() && text_[pos_] != '"') {
            if (text_[pos_] == '\\') ++pos_;
            ++pos_;
        }
        if (pos_ >= text_.size()) return false;
        ++pos_;  // closing quote
        return true;
    }
    bool number() {
        const std::size_t start = pos_;
        if (peek() == '-') ++pos_;
        while (pos_ < text_.size() &&
               (std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0 ||
                text_[pos_] == '.' || text_[pos_] == 'e' ||
                text_[pos_] == 'E' || text_[pos_] == '+' ||
                text_[pos_] == '-')) {
            ++pos_;
        }
        return pos_ > start;
    }
    bool literal(const char* word) {
        const std::size_t len = std::string(word).size();
        if (text_.compare(pos_, len, word) != 0) return false;
        pos_ += len;
        return true;
    }
    char peek() const { return pos_ < text_.size() ? text_[pos_] : '\0'; }
    void skip_ws() {
        while (pos_ < text_.size() &&
               (text_[pos_] == ' ' || text_[pos_] == '\n' ||
                text_[pos_] == '\t' || text_[pos_] == '\r')) {
            ++pos_;
        }
    }

    const std::string& text_;
    std::size_t pos_ = 0;
};

bool is_valid_json(const std::string& text) {
    return JsonChecker(text).valid();
}

/// A tiny fixed rendezvous workload: path(2), two messages 0 -> 1,
/// reliable unit-latency network — small enough that its trace is pinned
/// byte-for-byte by the golden file.
struct SmallRun {
    std::shared_ptr<const EdgeDecomposition> decomposition;
    SyncComputation script;

    SmallRun()
        : decomposition(std::make_shared<const EdgeDecomposition>(
              trivial_complete_decomposition(topology::path(2)))),
          script(topology::path(2)) {
        script.add_message(0, 1);
        script.add_message(0, 1);
    }
};

// ---- Counters, gauges, histograms -----------------------------------

TEST(Metrics, CounterStartsAtZeroAndAccumulates) {
    obs::Counter counter;
    EXPECT_EQ(counter.value(), 0u);
    counter.inc();
    counter.inc(41);
    EXPECT_EQ(counter.value(), 42u);
    counter.reset();
    EXPECT_EQ(counter.value(), 0u);
}

TEST(Metrics, GaugeSetAndAdd) {
    obs::Gauge gauge;
    gauge.set(-7);
    EXPECT_EQ(gauge.value(), -7);
    gauge.add(10);
    EXPECT_EQ(gauge.value(), 3);
}

TEST(Metrics, HistogramSummaryPercentiles) {
    const std::vector<std::uint64_t> bounds{1, 2, 4, 8, 16};
    obs::Histogram histogram{std::span<const std::uint64_t>(bounds)};
    for (std::uint64_t v = 1; v <= 100; ++v) histogram.record(v % 10 + 1);
    const obs::Histogram::Summary summary = histogram.summary();
    EXPECT_EQ(summary.count, 100u);
    EXPECT_EQ(summary.min, 1u);
    EXPECT_EQ(summary.max, 10u);
    // Values are 1..10 uniform; the p50 bucket bound is 8 (values 5..8),
    // p95/p99 land in the 16-bucket but are clamped to the observed max.
    EXPECT_EQ(summary.p50, 8u);
    EXPECT_EQ(summary.p95, 10u);
    EXPECT_EQ(summary.p99, 10u);
}

TEST(Metrics, HistogramOverflowClampsToObservedMax) {
    const std::vector<std::uint64_t> bounds{10};
    obs::Histogram histogram{std::span<const std::uint64_t>(bounds)};
    histogram.record(1'000'000);
    const obs::Histogram::Summary summary = histogram.summary();
    EXPECT_EQ(summary.count, 1u);
    EXPECT_EQ(summary.p50, 1'000'000u);
    EXPECT_EQ(summary.max, 1'000'000u);
}

TEST(Metrics, HistogramSingleObservationQuantiles) {
    const std::vector<std::uint64_t> bounds{1, 2, 4, 8, 16};
    obs::Histogram histogram{std::span<const std::uint64_t>(bounds)};
    histogram.record(3);
    const obs::Histogram::Summary summary = histogram.summary();
    EXPECT_EQ(summary.count, 1u);
    EXPECT_EQ(summary.min, 3u);
    EXPECT_EQ(summary.max, 3u);
    // Every quantile lands in the one occupied bucket (bound 4) and is
    // clamped to the observed maximum — a single sample reports itself.
    EXPECT_EQ(summary.p50, 3u);
    EXPECT_EQ(summary.p95, 3u);
    EXPECT_EQ(summary.p99, 3u);
}

TEST(Metrics, HistogramP99ClampsInsideAWideTopBucket) {
    // Nine values 2..10 all land in the [2, 1000] bucket; the p99 bound
    // must report the observed max (10), never the bucket bound (1000).
    const std::vector<std::uint64_t> bounds{1, 1000};
    obs::Histogram histogram{std::span<const std::uint64_t>(bounds)};
    for (std::uint64_t v = 2; v <= 10; ++v) histogram.record(v);
    const obs::Histogram::Summary summary = histogram.summary();
    EXPECT_EQ(summary.p50, 10u);
    EXPECT_EQ(summary.p99, 10u);
    EXPECT_EQ(summary.max, 10u);
}

TEST(Metrics, HistogramRejectsNonIncreasingBounds) {
    const std::vector<std::uint64_t> bad{4, 4};
    EXPECT_THROW(
        obs::Histogram{std::span<const std::uint64_t>(bad)},
        std::invalid_argument);
}

// ---- Registry --------------------------------------------------------

TEST(MetricsRegistry, CreateOrReturnKeepsStableAddresses) {
    obs::MetricsRegistry registry;
    obs::Counter& a = registry.counter("hits");
    a.inc();
    obs::Counter& b = registry.counter("hits");
    EXPECT_EQ(&a, &b);
    EXPECT_EQ(b.value(), 1u);
    EXPECT_EQ(registry.size(), 1u);
}

TEST(MetricsRegistry, CrossKindNameCollisionThrows) {
    obs::MetricsRegistry registry;
    registry.counter("x");
    EXPECT_THROW(registry.gauge("x"), std::invalid_argument);
    EXPECT_THROW(registry.histogram("x"), std::invalid_argument);
}

TEST(MetricsRegistry, JsonIsValidSortedAndDeterministic) {
    obs::MetricsRegistry registry;
    registry.counter("zeta").inc(3);
    registry.counter("alpha").inc(1);
    registry.gauge("width").set(-2);
    registry.histogram("lat").record(7);
    const std::string json = registry.to_json();
    EXPECT_TRUE(is_valid_json(json)) << json;
    // Sorted name order within each section.
    EXPECT_LT(json.find("\"alpha\""), json.find("\"zeta\""));
    EXPECT_NE(json.find("\"width\":-2"), std::string::npos);
    EXPECT_NE(json.find("\"p99\""), std::string::npos);
    EXPECT_EQ(json, registry.to_json());  // byte-stable
}

TEST(MetricsRegistry, ResetZeroesButKeepsRegistrations) {
    obs::MetricsRegistry registry;
    registry.counter("c").inc(5);
    registry.gauge("g").set(5);
    registry.histogram("h").record(5);
    registry.reset();
    EXPECT_EQ(registry.counter("c").value(), 0u);
    EXPECT_EQ(registry.gauge("g").value(), 0);
    EXPECT_EQ(registry.histogram("h").count(), 0u);
    EXPECT_EQ(registry.size(), 3u);
}

// ---- Snapshots and deltas --------------------------------------------

TEST(MetricsSnapshot, SnapshotCopiesCountersAndGaugesInNameOrder) {
    obs::MetricsRegistry registry;
    registry.counter("zeta").inc(2);
    registry.counter("alpha").inc(7);
    registry.gauge("level").set(-4);
    registry.histogram("lat").record(1);  // histograms are not snapshotted
    const obs::MetricsSnapshot snap = registry.snapshot();
    EXPECT_EQ(snap.counters.size(), 2u);
    EXPECT_EQ(snap.counters.at("alpha"), 7u);
    EXPECT_EQ(snap.counters.at("zeta"), 2u);
    EXPECT_EQ(snap.gauges.at("level"), -4);
}

TEST(MetricsSnapshot, DeltaReportsCounterIncrementsAndGaugeLevels) {
    obs::MetricsRegistry registry;
    registry.counter("commits").inc(10);
    registry.gauge("width").set(3);
    const obs::MetricsSnapshot before = registry.snapshot();
    registry.counter("commits").inc(4);
    registry.gauge("width").set(9);
    const obs::MetricsSnapshot after = registry.snapshot();
    const obs::MetricsDelta delta = obs::snapshot_delta(before, after);
    // Counters are monotonic: the delta is the interval increment.
    EXPECT_EQ(delta.counters.at("commits"), 4u);
    // Gauges are instantaneous levels and pass through unchanged.
    EXPECT_EQ(delta.gauges.at("width"), 9);
}

TEST(MetricsSnapshot, DeltaAppliesTheCounterResetRule) {
    obs::MetricsRegistry registry;
    registry.counter("commits").inc(10);
    const obs::MetricsSnapshot before = registry.snapshot();
    registry.reset();
    registry.counter("commits").inc(3);
    const obs::MetricsDelta delta =
        obs::snapshot_delta(before, registry.snapshot());
    // A counter that moved backwards restarts the interval at its new
    // value instead of underflowing.
    EXPECT_EQ(delta.counters.at("commits"), 3u);
}

TEST(MetricsSnapshot, DeltaCountsMidIntervalRegistrationsFromZero) {
    obs::MetricsRegistry registry;
    registry.counter("old").inc(1);
    const obs::MetricsSnapshot before = registry.snapshot();
    registry.counter("fresh").inc(6);
    const obs::MetricsDelta delta =
        obs::snapshot_delta(before, registry.snapshot());
    EXPECT_EQ(delta.counters.at("fresh"), 6u);
    EXPECT_EQ(delta.counters.at("old"), 0u);
}

// ---- Trace ring ------------------------------------------------------

obs::TraceEvent make_event(std::uint64_t i) {
    obs::TraceEvent event;
    event.virtual_time = i;
    event.logical = i * 2;
    event.arg_a = i + 100;
    event.arg_b = i + 200;
    event.process = static_cast<std::uint32_t>(i % 3);
    event.peer = static_cast<std::uint32_t>((i + 1) % 3);
    event.kind = obs::TraceEventKind::send;
    return event;
}

TEST(TraceSink, RingWrapsAroundKeepingNewestOldestFirst) {
    obs::TraceSink sink(4);
    for (std::uint64_t i = 0; i < 10; ++i) sink.record(make_event(i));
    EXPECT_EQ(sink.capacity(), 4u);
    EXPECT_EQ(sink.size(), 4u);
    EXPECT_EQ(sink.recorded(), 10u);
    EXPECT_EQ(sink.dropped(), 6u);
    const std::vector<obs::TraceEvent> events = sink.events();
    ASSERT_EQ(events.size(), 4u);
    for (std::uint64_t i = 0; i < 4; ++i) {
        EXPECT_EQ(events[i], make_event(6 + i)) << "slot " << i;
    }
}

TEST(TraceSink, ClearEmptiesButKeepsCapacity) {
    obs::TraceSink sink(2);
    sink.record(make_event(1));
    sink.clear();
    EXPECT_EQ(sink.size(), 0u);
    EXPECT_EQ(sink.recorded(), 0u);
    EXPECT_EQ(sink.capacity(), 2u);
}

TEST(TraceSink, BinaryRoundTripsExactly) {
    obs::TraceSink sink(16);
    for (std::uint64_t i = 0; i < 5; ++i) {
        obs::TraceEvent event = make_event(i);
        event.kind = static_cast<obs::TraceEventKind>(i % 5);
        sink.record(event);
    }
    std::vector<std::uint8_t> bytes;
    sink.write_binary(bytes);
    EXPECT_EQ(sink.events(), obs::TraceSink::read_binary(bytes));
}

TEST(TraceSink, BinaryRejectsMalformedBuffers) {
    obs::TraceSink sink(4);
    sink.record(make_event(0));
    std::vector<std::uint8_t> bytes;
    sink.write_binary(bytes);

    std::vector<std::uint8_t> bad_magic = bytes;
    bad_magic[0] ^= 0xFF;
    EXPECT_THROW(obs::TraceSink::read_binary(bad_magic),
                 std::invalid_argument);

    std::vector<std::uint8_t> truncated = bytes;
    truncated.pop_back();
    EXPECT_THROW(obs::TraceSink::read_binary(truncated),
                 std::invalid_argument);
}

TEST(TraceSink, ChromeTraceIsValidJsonWithRequiredFields) {
    obs::TraceSink sink(8);
    sink.record(make_event(3));
    obs::TraceEvent span = make_event(4);
    span.kind = obs::TraceEventKind::phase;
    span.arg_a = 12;  // duration
    sink.record(span);
    const std::string json = sink.to_chrome_trace();
    EXPECT_TRUE(is_valid_json(json)) << json;
    for (const char* field :
         {"\"name\"", "\"ph\"", "\"ts\"", "\"pid\"", "\"tid\"",
          "\"traceEvents\"", "\"displayTimeUnit\""}) {
        EXPECT_NE(json.find(field), std::string::npos) << field;
    }
    // The phase event must be a complete span with a duration.
    EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
    EXPECT_NE(json.find("\"dur\":12"), std::string::npos);
    // Instants carry the required scope field.
    EXPECT_NE(json.find("\"ph\":\"i\""), std::string::npos);
    EXPECT_NE(json.find("\"s\":\"t\""), std::string::npos);
}

// ---- Golden file -----------------------------------------------------

std::string golden_path() {
    return std::string(SYNCTS_GOLDEN_DIR) + "/fig5_small_trace.json";
}

std::string read_file(const std::string& path) {
    std::ifstream in(path, std::ios::binary);
    std::ostringstream buffer;
    buffer << in.rdbuf();
    return buffer.str();
}

/// Byte-exact pin of the trace a small deterministic Fig. 5 run emits.
/// Regenerate (after an intentional schema change) with:
///   SYNCTS_REGOLD=1 ./obs_test --gtest_filter='*GoldenFile*'
TEST(TraceSink, GoldenFileChromeTraceOfSmallFig5Run) {
    const SmallRun fx;
    obs::TraceSink sink(64);
    SynchronizerOptions options;
    options.seed = 1;
    options.trace = &sink;
    const SynchronizerResult result =
        run_rendezvous_protocol(fx.decomposition, fx.script, options);
    ASSERT_EQ(result.message_stamps.size(), 2u);
    const std::string json = sink.to_chrome_trace();
    ASSERT_TRUE(is_valid_json(json)) << json;

    if (std::getenv("SYNCTS_REGOLD") != nullptr) {
        std::ofstream out(golden_path(), std::ios::binary);
        out << json;
        ASSERT_TRUE(out.good()) << "cannot write " << golden_path();
        GTEST_SKIP() << "golden file regenerated";
    }
    const std::string golden = read_file(golden_path());
    ASSERT_FALSE(golden.empty())
        << "missing golden file " << golden_path()
        << " (regenerate with SYNCTS_REGOLD=1)";
    EXPECT_EQ(json, golden);
}

// ---- End-to-end instrumentation -------------------------------------

TEST(Instrumentation, SynchronizerPublishesNonOverlappingCounters) {
    const SmallRun fx;
    obs::MetricsRegistry registry;
    SynchronizerOptions options;
    options.metrics = &registry;
    // Drop m0's ACK once: the retransmitted REQ hits the committed
    // channel and replays the cached ACK.
    options.faults.targeted_drops.push_back(
        {.source = 1, .destination = 0, .kind = kAckKind, .occurrence = 1});
    const SynchronizerResult result =
        run_rendezvous_protocol(fx.decomposition, fx.script, options);

    // Registry counters are non-overlapping: the replay is exactly one
    // ack_replay, not also a duplicate.
    EXPECT_EQ(registry.counter("sync_ack_replays").value(), 1u);
    EXPECT_EQ(registry.counter("sync_req_duplicates").value(), 0u);
    EXPECT_EQ(registry.counter("sync_commits").value(), 2u);
    EXPECT_EQ(registry.counter("sync_req_sent").value(), 2u);
    EXPECT_GE(registry.counter("sync_retransmits").value(), 1u);
    EXPECT_EQ(registry.counter("sync_ack_duplicates").value(), 0u);
    // The run's region bookkeeping is published too: one epoch-0 region
    // opened, closed when the run materialized its results.
    EXPECT_EQ(registry.counter("region_opens").value(), 1u);
    EXPECT_EQ(registry.counter("region_closes").value(), 1u);
    EXPECT_EQ(registry.gauge("region_live").value(), 0);
    EXPECT_GE(registry.counter("slabpool_acquires").value(), 1u);
    // Latency histograms cover every rendezvous.
    EXPECT_EQ(registry.histogram("sync_rendezvous_ticks").count(), 2u);
    EXPECT_EQ(registry.histogram("sync_attempts_per_message").count(), 2u);
}

TEST(Instrumentation, SynchronizerTraceCoversTheReplayPath) {
    const SmallRun fx;
    obs::TraceSink sink(256);
    SynchronizerOptions options;
    options.trace = &sink;
    options.faults.targeted_drops.push_back(
        {.source = 1, .destination = 0, .kind = kAckKind, .occurrence = 1});
    (void)run_rendezvous_protocol(fx.decomposition, fx.script, options);
    std::size_t sends = 0, commits = 0, replays = 0, timeouts = 0;
    sink.for_each([&](const obs::TraceEvent& event) {
        switch (event.kind) {
            case obs::TraceEventKind::send: ++sends; break;
            case obs::TraceEventKind::commit: ++commits; break;
            case obs::TraceEventKind::ack_replay: ++replays; break;
            case obs::TraceEventKind::timeout: ++timeouts; break;
            default: break;
        }
    });
    EXPECT_EQ(sends, 2u);
    EXPECT_EQ(commits, 2u);
    EXPECT_EQ(replays, 1u);
    EXPECT_GE(timeouts, 1u);
}

TEST(Instrumentation, ClockEngineCountsStampsPerFamily) {
    const Graph topology = topology::path(3);
    auto decomposition = std::make_shared<const EdgeDecomposition>(
        default_decomposition(topology));
    SyncComputation script(topology);
    script.add_message(0, 1);
    script.add_internal(1);
    script.add_message(1, 2);

    obs::MetricsRegistry registry;
    const auto engine =
        make_clock_engine(ClockFamily::online, decomposition);
    engine->attach_metrics(registry);
    TimestampArena arena(engine->width());
    (void)engine->stamp_messages(script, arena);
    EXPECT_EQ(registry.counter("clock_online_stamps").value(), 2u);
    EXPECT_EQ(registry.counter("clock_online_internal_ticks").value(), 1u);
    EXPECT_EQ(registry.gauge("clock_width").value(),
              static_cast<std::int64_t>(engine->width()));

    engine->detach_metrics();
    engine->reset();
    TimestampArena arena2(engine->width());
    (void)engine->stamp_messages(script, arena2);
    EXPECT_EQ(registry.counter("clock_online_stamps").value(), 2u);
}

TEST(Instrumentation, ArenaCountsSlotsGrowthAndKernelTraffic) {
    obs::MetricsRegistry registry;
    TimestampArena arena(2);
    arena.attach_metrics(registry, "arena");
    const TsHandle a = arena.allocate();
    arena.span(a)[0] = 3;
    (void)arena.allocate();
    EXPECT_EQ(registry.counter("arena_slots").value(), 2u);
    EXPECT_GE(registry.counter("arena_slab_growths").value(), 1u);
    EXPECT_GE(registry.gauge("arena_slab_bytes").value(),
              static_cast<std::int64_t>(2 * 2 * sizeof(std::uint64_t)));

    const std::vector<std::uint64_t> probe{1, 0};
    std::vector<std::uint8_t> out(arena.size());
    leq_many(arena, probe, out);
    EXPECT_EQ(registry.counter("arena_kernel_calls").value(), 1u);
    EXPECT_EQ(registry.counter("arena_kernel_rows").value(), 2u);

    arena.clear();
    EXPECT_EQ(registry.counter("arena_clears").value(), 1u);
}

TEST(Instrumentation, DecompositionSelectionPublishesGauges) {
    obs::MetricsRegistry registry;
    const Graph topology = topology::client_server(2, 4);
    const EdgeDecomposition chosen =
        default_decomposition(topology, &registry);
    EXPECT_EQ(registry.gauge("decomp_groups").value(),
              static_cast<std::int64_t>(chosen.size()));
    EXPECT_GT(registry.gauge("decomp_greedy_groups").value(), 0);
    EXPECT_GT(registry.gauge("decomp_cover_groups").value(), 0);
    EXPECT_GE(registry.gauge("decomp_gap").value(), 0);
    EXPECT_EQ(registry.gauge("decomp_groups").value(),
              registry.gauge("decomp_lower_bound").value() +
                  registry.gauge("decomp_gap").value());
}

TEST(Instrumentation, SameSeedRunsProduceIdenticalReports) {
    const auto run_once = [](obs::MetricsRegistry& registry) {
        const Graph topology = topology::disjoint_triangles(2);
        auto decomposition = std::make_shared<const EdgeDecomposition>(
            default_decomposition(topology, &registry));
        Rng rng(7);
        WorkloadOptions workload;
        workload.num_messages = 60;
        const SyncComputation script =
            random_computation(topology, workload, rng);
        SynchronizerOptions options;
        options.seed = 7;
        options.latency_hi = 5;
        options.faults.drop_probability = 0.1;
        options.faults.corrupt_probability = 0.05;
        options.metrics = &registry;
        (void)run_rendezvous_protocol(decomposition, script, options);
    };
    obs::MetricsRegistry first;
    obs::MetricsRegistry second;
    run_once(first);
    run_once(second);
    EXPECT_EQ(first.to_json(), second.to_json());
}

}  // namespace
}  // namespace syncts
