#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "poset/dilworth.hpp"

namespace syncts {
namespace {

Poset chain_poset(std::size_t n) {
    Poset p(n);
    for (std::size_t i = 0; i + 1 < n; ++i) p.add_relation(i, i + 1);
    p.close();
    return p;
}

Poset antichain_poset(std::size_t n) {
    Poset p(n);
    p.close();
    return p;
}

/// Product order on an a×b grid: (x1,y1) < (x2,y2) iff both coordinates
/// are ≤ and one is <. Width = min(a, b).
Poset grid_poset(std::size_t a, std::size_t b) {
    Poset p(a * b);
    for (std::size_t x = 0; x < a; ++x) {
        for (std::size_t y = 0; y < b; ++y) {
            if (x + 1 < a) p.add_relation(x * b + y, (x + 1) * b + y);
            if (y + 1 < b) p.add_relation(x * b + y, x * b + y + 1);
        }
    }
    p.close();
    return p;
}

Poset random_poset(std::size_t n, Rng& rng) {
    // Random DAG respecting index order, then closed.
    Poset p(n);
    for (std::size_t a = 0; a < n; ++a) {
        for (std::size_t b = a + 1; b < n; ++b) {
            if (rng.chance(1, 4)) p.add_relation(a, b);
        }
    }
    p.close();
    return p;
}

/// Largest antichain by exhaustive subset search (n <= ~18).
std::size_t brute_force_width(const Poset& p) {
    const std::size_t n = p.size();
    std::size_t best = 0;
    for (std::size_t mask = 1; mask < (std::size_t{1} << n); ++mask) {
        const auto size =
            static_cast<std::size_t>(__builtin_popcountll(mask));
        if (size <= best) continue;
        bool antichain = true;
        for (std::size_t a = 0; a < n && antichain; ++a) {
            if (!((mask >> a) & 1)) continue;
            for (std::size_t b = a + 1; b < n && antichain; ++b) {
                if (!((mask >> b) & 1)) continue;
                if (!p.incomparable(a, b)) antichain = false;
            }
        }
        if (antichain) best = size;
    }
    return best;
}

TEST(Width, ChainIsOne) { EXPECT_EQ(poset_width(chain_poset(7)), 1u); }

TEST(Width, AntichainIsN) { EXPECT_EQ(poset_width(antichain_poset(6)), 6u); }

TEST(Width, GridIsMinSide) {
    EXPECT_EQ(poset_width(grid_poset(3, 5)), 3u);
    EXPECT_EQ(poset_width(grid_poset(4, 4)), 4u);
    EXPECT_EQ(poset_width(grid_poset(1, 9)), 1u);
}

TEST(Width, MatchesBruteForceOnRandomPosets) {
    Rng rng(51);
    for (int trial = 0; trial < 20; ++trial) {
        const Poset p = random_poset(12, rng);
        EXPECT_EQ(poset_width(p), brute_force_width(p)) << "trial " << trial;
    }
}

TEST(ChainPartitionTest, ValidAndMinimal) {
    Rng rng(52);
    for (int trial = 0; trial < 15; ++trial) {
        const Poset p = random_poset(14, rng);
        const ChainPartition partition = dilworth_chain_partition(p);
        EXPECT_TRUE(is_chain_partition(p, partition));
        EXPECT_EQ(partition.width(), poset_width(p));
        // chain_of is consistent.
        for (std::size_t c = 0; c < partition.chains.size(); ++c) {
            for (const std::size_t x : partition.chains[c]) {
                EXPECT_EQ(partition.chain_of[x], c);
            }
        }
    }
}

TEST(ChainPartitionTest, ChainAndAntichainExtremes) {
    const ChainPartition one = dilworth_chain_partition(chain_poset(9));
    EXPECT_EQ(one.width(), 1u);
    EXPECT_EQ(one.chains[0].size(), 9u);
    const ChainPartition many = dilworth_chain_partition(antichain_poset(5));
    EXPECT_EQ(many.width(), 5u);
}

TEST(MaximumAntichainTest, SizeEqualsWidthAndValid) {
    Rng rng(53);
    for (int trial = 0; trial < 15; ++trial) {
        const Poset p = random_poset(13, rng);
        const auto antichain = maximum_antichain(p);
        EXPECT_TRUE(is_antichain(p, antichain));
        EXPECT_EQ(antichain.size(), poset_width(p)) << "trial " << trial;
    }
}

TEST(IsAntichainTest, DetectsComparablePairs) {
    const Poset p = chain_poset(4);
    EXPECT_TRUE(is_antichain(p, {2}));
    EXPECT_TRUE(is_antichain(p, {}));
    EXPECT_FALSE(is_antichain(p, {0, 3}));
}

TEST(IsChainPartitionTest, RejectsBadPartitions) {
    const Poset p = chain_poset(4);
    ChainPartition bad;
    bad.chains = {{0, 1}, {2}};  // element 3 missing
    bad.chain_of = {0, 0, 1, 0};
    EXPECT_FALSE(is_chain_partition(p, bad));
    ChainPartition wrong_order;
    wrong_order.chains = {{1, 0}, {2}, {3}};  // 1 < 0 is false
    wrong_order.chain_of = {0, 0, 1, 2};
    EXPECT_FALSE(is_chain_partition(p, wrong_order));
}

}  // namespace
}  // namespace syncts
