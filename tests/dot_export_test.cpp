#include <gtest/gtest.h>

#include <string>

#include "decomp/cover_decomposer.hpp"
#include "decomp/dot_export.hpp"
#include "decomp/greedy_decomposer.hpp"
#include "graph/generators.hpp"

namespace syncts {
namespace {

std::size_t count_occurrences(const std::string& haystack,
                              const std::string& needle) {
    std::size_t count = 0;
    for (std::size_t pos = haystack.find(needle); pos != std::string::npos;
         pos = haystack.find(needle, pos + needle.size())) {
        ++count;
    }
    return count;
}

TEST(DotExport, PlainGraphListsAllVerticesAndEdges) {
    const Graph g = topology::path(4);
    const std::string dot = to_dot(g);
    EXPECT_NE(dot.find("graph topology {"), std::string::npos);
    EXPECT_EQ(count_occurrences(dot, " -- "), 3u);
    EXPECT_NE(dot.find("P1 -- P2"), std::string::npos);
    EXPECT_NE(dot.find("P4;"), std::string::npos);
}

TEST(DotExport, DecompositionLabelsGroups) {
    const auto d = trivial_complete_decomposition(topology::complete(5));
    const std::string dot = to_dot(d);
    EXPECT_NE(dot.find("graph decomposition {"), std::string::npos);
    // 10 edges, every one labeled with its group.
    EXPECT_EQ(count_occurrences(dot, "label=\"E"), 10u);
    EXPECT_NE(dot.find("label=\"E3\""), std::string::npos);
    // Star roots P1 and P2 drawn bold; triangle corners are not.
    EXPECT_NE(dot.find("P1 [penwidth=2"), std::string::npos);
    EXPECT_NE(dot.find("P2 [penwidth=2"), std::string::npos);
    EXPECT_EQ(dot.find("P5 [penwidth=2"), std::string::npos);
}

TEST(DotExport, EveryGroupGetsAColor) {
    const auto d = greedy_edge_decomposition(topology::paper_fig2b());
    const std::string dot = to_dot(d);
    EXPECT_GE(count_occurrences(dot, "color="), d.graph().num_edges());
}

}  // namespace
}  // namespace syncts
