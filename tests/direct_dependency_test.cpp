#include <gtest/gtest.h>

#include "clocks/direct_dependency.hpp"
#include "test_util.hpp"
#include "trace/generator.hpp"
#include "trace/ground_truth.hpp"

namespace syncts {
namespace {

TEST(DirectDependency, RecordsImmediatePredecessors) {
    DirectDependencyTracker tracker(4);
    const MessageId m0 = tracker.record_message(0, 1);
    const MessageId m1 = tracker.record_message(2, 3);
    const MessageId m2 = tracker.record_message(1, 2);
    EXPECT_EQ(tracker.records()[m0].prev_sender, kNoMessage);
    EXPECT_EQ(tracker.records()[m0].prev_receiver, kNoMessage);
    EXPECT_EQ(tracker.records()[m1].prev_sender, kNoMessage);
    EXPECT_EQ(tracker.records()[m2].prev_sender, m0);   // P1's last
    EXPECT_EQ(tracker.records()[m2].prev_receiver, m1); // P2's last
}

TEST(DirectDependency, RejectsBadArguments) {
    DirectDependencyTracker tracker(2);
    EXPECT_THROW(tracker.record_message(0, 0), std::invalid_argument);
    EXPECT_THROW(tracker.record_message(0, 5), std::invalid_argument);
    const std::vector<DirectDeps> empty;
    EXPECT_THROW(direct_precedes(0, 0, empty), std::invalid_argument);
}

TEST(DirectDependency, PrecedenceMatchesGroundTruthOnFig1) {
    const SyncComputation c = paper_fig1_computation();
    const auto records = DirectDependencyTracker::record_computation(c);
    const Poset truth = message_poset(c);
    for (MessageId a = 0; a < c.num_messages(); ++a) {
        for (MessageId b = 0; b < c.num_messages(); ++b) {
            EXPECT_EQ(direct_precedes(a, b, records),
                      a != b && truth.less(a, b))
                << 'm' << a + 1 << " vs m" << b + 1;
        }
    }
}

TEST(DirectDependency, PrecedenceMatchesGroundTruthAcrossFamilies) {
    std::vector<char> scratch;
    for (const auto& [name, graph] : testing::topology_suite(8, 501)) {
        const SyncComputation c = testing::random_workload(graph, 60, 0.0, 502);
        const auto records = DirectDependencyTracker::record_computation(c);
        const Poset truth = message_poset(c);
        for (MessageId a = 0; a < c.num_messages(); ++a) {
            for (MessageId b = 0; b < c.num_messages(); ++b) {
                if (a == b) continue;
                ASSERT_EQ(direct_precedes(a, b, records, scratch),
                          truth.less(a, b))
                    << name << ' ' << a << "->" << b;
            }
        }
    }
}

TEST(DirectDependency, SelfAndReverseQueries) {
    SyncComputation c(topology::path(3));
    c.add_message(0, 1);
    c.add_message(1, 2);
    const auto records = DirectDependencyTracker::record_computation(c);
    EXPECT_FALSE(direct_precedes(0, 0, records));
    EXPECT_TRUE(direct_precedes(0, 1, records));
    EXPECT_FALSE(direct_precedes(1, 0, records));
}

}  // namespace
}  // namespace syncts
