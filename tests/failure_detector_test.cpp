#include <gtest/gtest.h>

#include <chrono>
#include <optional>
#include <thread>
#include <vector>

#include "graph/generators.hpp"
#include "obs/metrics.hpp"
#include "runtime/failure_detector.hpp"
#include "runtime/network.hpp"

namespace syncts {
namespace {

using namespace std::chrono_literals;

// ---------------------------------------------------------------------------
// FailureDetector unit behaviour: phi-accrual under the exponential model.
// ---------------------------------------------------------------------------

TEST(FailureDetector, PhiGrowsWithSilenceAndResetsOnSuccess) {
    FailureDetector detector(3.0);
    EXPECT_DOUBLE_EQ(detector.phi(0), 0.0);
    EXPECT_FALSE(detector.suspected(0));

    // Establish a ~10ms heartbeat cadence.
    for (int i = 0; i < 8; ++i) detector.record_success(0, 10.0);
    EXPECT_DOUBLE_EQ(detector.phi(0), 0.0);

    // Under the exponential model phi = silence / (mean * ln 10): 100ms
    // of silence over a 10ms cadence is phi ~= 4.34 — past threshold 3.
    detector.record_timeout(0, 100.0);
    EXPECT_GT(detector.phi(0), 4.0);
    EXPECT_LT(detector.phi(0), 5.0);
    EXPECT_TRUE(detector.suspected(0));
    EXPECT_EQ(detector.suspects(), std::vector<ProcessId>{0});

    // One heartbeat clears the silence: suspicion is never sticky.
    detector.record_success(0, 10.0);
    EXPECT_DOUBLE_EQ(detector.phi(0), 0.0);
    EXPECT_FALSE(detector.suspected(0));
    EXPECT_TRUE(detector.suspects().empty());
}

TEST(FailureDetector, SilenceAccumulatesAcrossTimeouts) {
    FailureDetector detector(3.0);
    for (int i = 0; i < 4; ++i) detector.record_success(2, 20.0);
    detector.record_timeout(2, 50.0);
    const double one = detector.phi(2);
    detector.record_timeout(2, 50.0);
    EXPECT_NEAR(detector.phi(2), 2 * one, 1e-9);
    EXPECT_EQ(detector.timeouts(), 2u);
    EXPECT_EQ(detector.successes(), 4u);

    detector.clear(2);
    EXPECT_DOUBLE_EQ(detector.phi(2), 0.0);
}

TEST(FailureDetector, NeverHeardFromPeerUsesFloorCadence) {
    // A peer with no successful rendezvous ever still accrues suspicion
    // once a timeout is observed (the interval floor avoids divide-by-
    // zero rather than masking the silence).
    FailureDetector detector(3.0);
    detector.record_timeout(7, 10.0);
    EXPECT_TRUE(detector.suspected(7));
}

TEST(FailureDetector, RejectsNonPositiveThreshold) {
    EXPECT_THROW(FailureDetector(0.0), std::invalid_argument);
    EXPECT_THROW(FailureDetector(-1.0), std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Timed mailbox primitives.
// ---------------------------------------------------------------------------

TEST(MailboxTimeout, OfferWithdrawnWhenNobodyAccepts) {
    Mailbox box;
    const auto result =
        box.offer_and_wait_for(0, "ping", VectorTimestamp(1), 20ms);
    EXPECT_FALSE(result.has_value());
    // The withdrawn offer must not linger for a late receiver.
    EXPECT_FALSE(box.has_offer(std::nullopt));
}

TEST(MailboxTimeout, CompletesNormallyWhenAcceptedInTime) {
    Mailbox box;
    std::thread receiver([&] {
        Mailbox::Accepted accepted = box.accept(std::nullopt);
        accepted.complete(VectorTimestamp(std::vector<std::uint64_t>{9}), 4);
    });
    const auto result =
        box.offer_and_wait_for(1, "ping", VectorTimestamp(1), 5000ms);
    receiver.join();
    ASSERT_TRUE(result.has_value());
    EXPECT_EQ(result->first[0], 9u);
    EXPECT_EQ(result->second, 4u);
}

TEST(MailboxTimeout, AcceptForTimesOutWithoutOffer) {
    Mailbox box;
    EXPECT_FALSE(box.accept_for(std::nullopt, 20ms).has_value());
}

TEST(MailboxTimeout, AcceptForReturnsQueuedOffer) {
    Mailbox box;
    std::thread sender([&] {
        const auto ack = box.offer_and_wait(5, "x", VectorTimestamp(1));
        EXPECT_EQ(ack.second, 11u);
    });
    std::optional<Mailbox::Accepted> accepted;
    while (!accepted.has_value()) {
        accepted = box.accept_for(5, 100ms);
    }
    accepted->complete(VectorTimestamp(1), 11);
    sender.join();
}

// ---------------------------------------------------------------------------
// TimestampedNetwork integration: typed timeout error, per-channel rules,
// metrics, and detector composition.
// ---------------------------------------------------------------------------

TEST(ChannelWatchdog, ExpirySurfacesAsTypedErrorWithMetrics) {
    obs::MetricsRegistry metrics;
    FailureDetector detector(1.0);
    TimestampedNetworkOptions options;
    options.send_timeout = 30ms;
    options.metrics = &metrics;
    options.detector = &detector;
    TimestampedNetwork network(topology::complete(2), options);

    std::vector<ProcessProgram> programs(2);
    programs[0] = [](ProcessContext& self) { self.send(1, "hello?"); };
    programs[1] = [](ProcessContext&) { /* never accepts */ };

    try {
        network.run(programs);
        FAIL() << "expected ChannelTimeoutError";
    } catch (const ChannelTimeoutError& error) {
        EXPECT_EQ(error.sender(), 0u);
        EXPECT_EQ(error.receiver(), 1u);
        EXPECT_EQ(error.timeout(), 30ms);
    }
    EXPECT_EQ(metrics.counter("net_channel_timeouts").value(), 1u);
    // A peer that never completed a rendezvous is suspected after one
    // expiry, and the suspicion is published.
    EXPECT_TRUE(detector.suspected(1));
    EXPECT_EQ(metrics.counter("net_suspicions").value(), 1u);
    EXPECT_EQ(detector.timeouts(), 1u);
}

TEST(ChannelWatchdog, PerChannelRuleOverridesDefault) {
    // Default waits forever; only the P0 -> P1 channel is policed, so
    // the typed error must name exactly that channel.
    TimestampedNetworkOptions options;
    options.channel_timeouts.push_back({0, 1, 25ms});
    TimestampedNetwork network(topology::complete(3), options);

    std::vector<ProcessProgram> programs(3);
    programs[0] = [](ProcessContext& self) { self.send(1, "hello?"); };
    programs[1] = [](ProcessContext&) {};
    programs[2] = [](ProcessContext&) {};

    EXPECT_THROW(network.run(programs), ChannelTimeoutError);
}

TEST(ChannelWatchdog, HealthyRunRecordsHeartbeatsNotTimeouts) {
    obs::MetricsRegistry metrics;
    FailureDetector detector(1.0);
    TimestampedNetworkOptions options;
    options.send_timeout = 5000ms;
    options.metrics = &metrics;
    options.detector = &detector;
    TimestampedNetwork network(topology::complete(2), options);

    std::vector<ProcessProgram> programs(2);
    programs[0] = [](ProcessContext& self) {
        self.send(1, "a");
        self.send(1, "b");
    };
    programs[1] = [](ProcessContext& self) {
        self.receive();
        self.receive();
    };

    const RunRecord record = network.run(programs);
    EXPECT_EQ(record.messages.size(), 2u);
    EXPECT_EQ(metrics.counter("net_channel_timeouts").value(), 0u);
    EXPECT_EQ(detector.successes(), 2u);
    EXPECT_EQ(detector.timeouts(), 0u);
    EXPECT_FALSE(detector.suspected(1));
}

TEST(ChannelWatchdog, RejectsInvalidRules) {
    TimestampedNetworkOptions options;
    options.channel_timeouts.push_back({0, 9, 10ms});
    EXPECT_THROW(TimestampedNetwork(topology::complete(2), options),
                 std::invalid_argument);
}

}  // namespace
}  // namespace syncts
