#include <gtest/gtest.h>

#include <vector>

#include "core/causality.hpp"
#include "core/sync_system.hpp"
#include "core/timestamped_trace.hpp"
#include "test_util.hpp"
#include "trace/ground_truth.hpp"

namespace syncts {
namespace {

TEST(GraphGrowth, AddVertexExtendsTheGraph) {
    Graph g = topology::path(3);
    const ProcessId v = g.add_vertex();
    EXPECT_EQ(v, 3u);
    EXPECT_EQ(g.num_vertices(), 4u);
    EXPECT_EQ(g.degree(v), 0u);
    g.add_edge(2, v);
    EXPECT_TRUE(g.has_edge(2, 3));
}

TEST(DecompositionGrowth, LeafJoinKeepsWidth) {
    const SyncSystem base(topology::client_server(2, 3));
    ASSERT_EQ(base.width(), 2u);
    // The two groups are the server stars.
    const std::vector<GroupId> all_groups{0, 1};
    const auto [grown, newcomer] = base.with_leaf_process(all_groups);
    EXPECT_EQ(newcomer, 5u);
    EXPECT_EQ(grown.num_processes(), 6u);
    EXPECT_EQ(grown.width(), 2u);  // unchanged — the Section 3.3 claim
    EXPECT_TRUE(grown.decomposition().complete());
    // The new channels belong to the server stars.
    const EdgeGroup& g0 = grown.decomposition().group(0);
    EXPECT_EQ(grown.decomposition().group_of(g0.root, newcomer), 0u);
}

TEST(DecompositionGrowth, RepeatedGrowthStaysConstantWidth) {
    SyncSystem system(topology::client_server(3, 2));
    ASSERT_EQ(system.width(), 3u);
    for (int i = 0; i < 20; ++i) {
        const std::vector<GroupId> groups{0, 1, 2};
        auto [grown, newcomer] = system.with_leaf_process(groups);
        EXPECT_EQ(grown.width(), 3u);
        EXPECT_EQ(newcomer, system.num_processes());
        system = std::move(grown);
    }
    EXPECT_EQ(system.num_processes(), 25u);
    EXPECT_EQ(system.width(), 3u);
}

TEST(DecompositionGrowth, TimestampsStayExactAfterGrowth) {
    SyncSystem system(topology::client_server(2, 2));
    const std::vector<GroupId> groups{0, 1};
    for (int round = 0; round < 3; ++round) {
        system = system.with_leaf_process(groups).first;
    }
    const SyncComputation c = testing::random_workload(
        system.topology(), 120, 0.0, 555 );
    const TimestampedTrace trace = system.analyze(c);
    EXPECT_EQ(trace.verify_against_ground_truth(), 0u);
    EXPECT_EQ(trace.timestamp(0).width(), 2u);
}

TEST(DecompositionGrowth, PreGrowthTimestampsRemainComparable) {
    // Stamps minted before the growth use the same components as stamps
    // minted after, so cross-era precedence tests stay meaningful.
    const SyncSystem before(topology::client_server(2, 2));
    auto timestamper = before.make_timestamper();
    const VectorTimestamp old_stamp = timestamper.timestamp_message(2, 0);

    const auto [after, newcomer] =
        before.with_leaf_process(std::vector<GroupId>{0, 1});
    auto grown_timestamper = after.make_timestamper();
    grown_timestamper.timestamp_message(2, 0);  // replay history
    const VectorTimestamp new_stamp =
        grown_timestamper.timestamp_message(newcomer, 0);
    EXPECT_EQ(old_stamp.width(), new_stamp.width());
    EXPECT_TRUE(old_stamp.less(new_stamp));
}

TEST(DecompositionGrowth, RejectsBadGroups) {
    const SyncSystem system(topology::client_server(2, 2));
    EXPECT_THROW(system.with_leaf_process(std::vector<GroupId>{7}),
                 std::invalid_argument);
    EXPECT_THROW(system.with_leaf_process(std::vector<GroupId>{0, 0}),
                 std::invalid_argument);
    // Triangle groups cannot absorb a new leaf.
    SyncSystem triangle(topology::triangle(), DecompositionStrategy::greedy);
    EXPECT_THROW(triangle.with_leaf_process(std::vector<GroupId>{0}),
                 std::invalid_argument);
}

TEST(DecompositionGrowth, GrowthIsValueSemantics) {
    const SyncSystem base(topology::client_server(2, 2));
    const auto [grown, newcomer] =
        base.with_leaf_process(std::vector<GroupId>{0});
    (void)newcomer;
    // The base system is untouched.
    EXPECT_EQ(base.num_processes(), 4u);
    EXPECT_EQ(grown.num_processes(), 5u);
    EXPECT_EQ(base.topology().num_edges(), 4u);
    EXPECT_EQ(grown.topology().num_edges(), 5u);
}

}  // namespace
}  // namespace syncts
