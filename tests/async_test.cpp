#include <gtest/gtest.h>

#include <algorithm>

#include "clocks/online_clock.hpp"
#include "core/causality.hpp"
#include "trace/async_computation.hpp"
#include "trace/ground_truth.hpp"

namespace syncts {
namespace {

TEST(AsyncComputation, BuildAndQuery) {
    AsyncComputation c(3);
    const MessageId m = c.new_message();
    EXPECT_FALSE(c.complete());
    c.record_send(0, m);
    EXPECT_FALSE(c.complete());
    c.record_receive(1, m);
    EXPECT_TRUE(c.complete());
    EXPECT_EQ(c.sender_of(m), 0u);
    EXPECT_EQ(c.receiver_of(m), 1u);
    EXPECT_EQ(c.process_events(0).size(), 1u);
    EXPECT_EQ(c.process_events(2).size(), 0u);
}

TEST(AsyncComputation, RejectsBadRecords) {
    AsyncComputation c(2);
    const MessageId m = c.new_message();
    c.record_send(0, m);
    EXPECT_THROW(c.record_send(1, m), std::invalid_argument);
    EXPECT_THROW(c.record_receive(0, m), std::invalid_argument);  // self
    EXPECT_THROW(c.record_send(0, 99), std::invalid_argument);
    EXPECT_THROW(c.record_send(5, m), std::invalid_argument);
}

TEST(CheckSynchronous, InstantMessagesAreSynchronous) {
    AsyncComputation c(4);
    c.add_instant_message(0, 1);
    c.add_instant_message(2, 3);
    c.add_instant_message(1, 2);
    const SynchronyResult result = check_synchronous(c);
    EXPECT_TRUE(result.synchronous);
    EXPECT_EQ(result.instant_order.size(), 3u);
    EXPECT_TRUE(result.violation_cycle.empty());
}

TEST(CheckSynchronous, IntegerTimestampsSatisfySection2) {
    // The witness timestamps must increase within each process and give
    // both endpoints of a message the same value — the paper's
    // characterization of synchronous computations.
    AsyncComputation c(4);
    c.add_instant_message(0, 1);
    c.add_instant_message(2, 3);
    c.add_instant_message(1, 2);
    c.add_instant_message(0, 1);
    const SynchronyResult result = check_synchronous(c);
    ASSERT_TRUE(result.synchronous);
    for (ProcessId p = 0; p < 4; ++p) {
        const auto events = c.process_events(p);
        for (std::size_t i = 0; i + 1 < events.size(); ++i) {
            EXPECT_LT(result.integer_timestamps[events[i].message],
                      result.integer_timestamps[events[i + 1].message]);
        }
    }
}

TEST(CheckSynchronous, CrossedMessagesAreNotSynchronous) {
    // The classic crown: P0 sends m0 then receives m1; P1 sends m1 then
    // receives m0. No vertical-arrow drawing exists.
    AsyncComputation c(2);
    const MessageId m0 = c.new_message();
    const MessageId m1 = c.new_message();
    c.record_send(0, m0);
    c.record_send(1, m1);
    c.record_receive(0, m1);
    c.record_receive(1, m0);
    const SynchronyResult result = check_synchronous(c);
    EXPECT_FALSE(result.synchronous);
    ASSERT_GE(result.violation_cycle.size(), 2u);
    // The cycle names both crossing messages.
    EXPECT_NE(std::ranges::find(result.violation_cycle, m0),
              result.violation_cycle.end());
    EXPECT_NE(std::ranges::find(result.violation_cycle, m1),
              result.violation_cycle.end());
}

TEST(CheckSynchronous, ViolationCycleEdgesAreReal) {
    // Larger crown through three processes.
    AsyncComputation c(3);
    const MessageId a = c.new_message();
    const MessageId b = c.new_message();
    const MessageId d = c.new_message();
    c.record_send(0, a);
    c.record_send(1, b);
    c.record_send(2, d);
    c.record_receive(1, a);
    c.record_receive(2, b);
    c.record_receive(0, d);
    const SynchronyResult result = check_synchronous(c);
    ASSERT_FALSE(result.synchronous);
    // Verify each consecutive pair in the cycle is a real per-process
    // precedence between distinct messages.
    const auto precedes_somewhere = [&](MessageId x, MessageId y) {
        for (ProcessId p = 0; p < 3; ++p) {
            const auto events = c.process_events(p);
            for (std::size_t i = 0; i + 1 < events.size(); ++i) {
                if (events[i].message == x && events[i + 1].message == y) {
                    return true;
                }
            }
        }
        return false;
    };
    const auto& cycle = result.violation_cycle;
    for (std::size_t i = 0; i < cycle.size(); ++i) {
        EXPECT_TRUE(
            precedes_somewhere(cycle[i], cycle[(i + 1) % cycle.size()]))
            << "edge " << i;
    }
}

TEST(CheckSynchronous, DelayedDeliveryCanStillBeSynchronous) {
    // P0 sends m0 to P1, P1 does other work (receives m1 from P2) before
    // taking m0 — still RSC because an instant order exists: m1 then m0.
    AsyncComputation c(3);
    const MessageId m0 = c.new_message();
    const MessageId m1 = c.new_message();
    c.record_send(0, m0);
    c.record_send(2, m1);
    c.record_receive(1, m1);
    c.record_receive(1, m0);
    const SynchronyResult result = check_synchronous(c);
    EXPECT_TRUE(result.synchronous);
    // m1 must come before m0 in the witness order (P1's order demands it).
    const auto pos = [&](MessageId m) {
        return std::ranges::find(result.instant_order, m) -
               result.instant_order.begin();
    };
    EXPECT_LT(pos(m1), pos(m0));
}

TEST(CheckSynchronous, RequiresCompleteComputation) {
    AsyncComputation c(2);
    const MessageId m = c.new_message();
    c.record_send(0, m);
    EXPECT_THROW(check_synchronous(c), std::invalid_argument);
}

TEST(ToSyncComputation, RoundTripsAndTimestamps) {
    AsyncComputation async(4);
    async.add_instant_message(0, 1);
    async.add_instant_message(2, 3);
    async.add_instant_message(1, 2);
    async.add_instant_message(3, 0);

    const SyncComputation sync = to_sync_computation(async);
    EXPECT_EQ(sync.num_messages(), 4u);
    EXPECT_EQ(sync.topology().num_edges(), 4u);
    // Full pipeline: timestamps on the converted computation are exact.
    const auto stamps = online_timestamps(sync);
    EXPECT_EQ(encoding_mismatches(message_poset(sync), stamps), 0u);
}

TEST(ToSyncComputation, RejectsNonSynchronous) {
    AsyncComputation async(2);
    const MessageId m0 = async.new_message();
    const MessageId m1 = async.new_message();
    async.record_send(0, m0);
    async.record_send(1, m1);
    async.record_receive(0, m1);
    async.record_receive(1, m0);
    EXPECT_THROW(to_sync_computation(async), std::invalid_argument);
}

TEST(ToSyncComputation, HonorsProvidedTopology) {
    AsyncComputation async(3);
    async.add_instant_message(0, 1);
    Graph topology(3);
    topology.add_edge(0, 1);
    topology.add_edge(1, 2);
    const SyncComputation sync =
        to_sync_computation(async, std::move(topology));
    EXPECT_EQ(sync.topology().num_edges(), 2u);
    // A used channel missing from the supplied topology is an error.
    AsyncComputation bad(3);
    bad.add_instant_message(0, 2);
    Graph narrow(3);
    narrow.add_edge(0, 1);
    EXPECT_THROW(to_sync_computation(bad, std::move(narrow)),
                 std::invalid_argument);
}

}  // namespace
}  // namespace syncts
