#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "clocks/online_clock.hpp"
#include "decomp/cover_decomposer.hpp"
#include "graph/generators.hpp"
#include "obs/metrics.hpp"
#include "runtime/synchronizer.hpp"
#include "test_util.hpp"

/// Chaos harness (acceptance gate of the fault-tolerance work): recorded
/// computations replayed through >= 1000 seeded fault schedules with
/// drop, duplication, reordering, and corruption all enabled at once.
/// Every schedule must realize message timestamps bit-identical to the
/// direct Fig. 5 simulator's, terminate (the discrete-event loop is
/// budget-guarded, so a hang would fail as an exception rather than
/// wedge CI), and the aggregated stats must prove the recovery machinery
/// actually fired — a chaos suite whose faults never bite tests nothing.

namespace syncts {
namespace {

struct ChaosTotals {
    std::uint64_t schedules = 0;
    std::uint64_t messages = 0;
    std::uint64_t packets = 0;
    /// Every run publishes into the shared registry; the `sync_*`
    /// counters accumulate across the sweep, so the registry *is* the
    /// protocol aggregate.
    obs::MetricsRegistry metrics;
    FaultStats faults;

    void absorb(const SynchronizerResult& result) {
        ++schedules;
        messages += result.message_stamps.size();
        packets += result.packets;
        faults.dropped += result.network_faults.dropped;
        faults.targeted_drops += result.network_faults.targeted_drops;
        faults.duplicated += result.network_faults.duplicated;
        faults.corrupted += result.network_faults.corrupted;
        faults.delayed += result.network_faults.delayed;
    }
};

/// One workload replayed through `schedules` distinct fault schedules.
void run_chaos_sweep(const Graph& topology, std::size_t messages,
                     std::uint64_t workload_seed, std::uint64_t schedules,
                     ChaosTotals& totals) {
    const SyncComputation script =
        testing::random_workload(topology, messages, 0.0, workload_seed);
    auto decomposition = std::make_shared<const EdgeDecomposition>(
        default_decomposition(topology));
    OnlineTimestamper direct(decomposition);
    const std::vector<VectorTimestamp> expected =
        direct.timestamp_computation(script);

    for (std::uint64_t schedule = 1; schedule <= schedules; ++schedule) {
        SynchronizerOptions options;
        options.seed = workload_seed * 1'000'003 + schedule;
        options.latency_lo = 1;
        options.latency_hi = 12;
        options.faults.seed = schedule * 0x9E3779B9ull + workload_seed;
        options.faults.drop_probability = 0.05;
        options.faults.duplicate_probability = 0.05;
        options.faults.corrupt_probability = 0.04;
        options.faults.delay_probability = 0.35;
        options.faults.max_extra_delay = 40;
        options.metrics = &totals.metrics;
        const SynchronizerResult result =
            run_rendezvous_protocol(decomposition, script, options);
        ASSERT_EQ(result.message_stamps.size(), expected.size());
        for (std::size_t i = 0; i < result.message_stamps.size(); ++i) {
            ASSERT_EQ(result.message_stamps[i],
                      expected[result.script_message[i]])
                << "schedule " << schedule << " realized message " << i;
        }
        totals.absorb(result);
    }
}

TEST(Chaos, ThousandFaultSchedulesBitIdenticalTimestamps) {
    ChaosTotals totals;
    run_chaos_sweep(topology::path(3), 24, 41, 350, totals);
    run_chaos_sweep(topology::client_server(2, 3), 30, 42, 350, totals);
    run_chaos_sweep(topology::complete(4), 30, 43, 350, totals);

    ASSERT_GE(totals.schedules, 1000u);
    // The sweep must have actually exercised every recovery path.
    EXPECT_GT(totals.faults.dropped, 0u);
    EXPECT_GT(totals.faults.duplicated, 0u);
    EXPECT_GT(totals.faults.corrupted, 0u);
    EXPECT_GT(totals.faults.delayed, 0u);
    EXPECT_GT(totals.metrics.counter("sync_retransmits").value(), 0u);
    EXPECT_GT(totals.metrics.counter("sync_timeouts").value(), 0u);
    EXPECT_GT(totals.metrics.counter("sync_req_duplicates").value(), 0u);
    EXPECT_GT(totals.metrics.counter("sync_ack_replays").value(), 0u);
    EXPECT_GT(totals.metrics.counter("sync_frames_corrupt_rejected").value(),
              0u);
    // Lossless baseline is 2 packets per message; faults must cost extra.
    EXPECT_GT(totals.packets, 2 * totals.messages);
}

TEST(Chaos, HeavyLossStillConverges) {
    // 20% drop + dup + corruption on a ring: brutal but recoverable.
    const Graph topology = topology::ring(4);
    const SyncComputation script =
        testing::random_workload(topology, 20, 0.0, 99);
    auto decomposition = std::make_shared<const EdgeDecomposition>(
        default_decomposition(topology));
    OnlineTimestamper direct(decomposition);
    const std::vector<VectorTimestamp> expected =
        direct.timestamp_computation(script);
    for (std::uint64_t seed = 1; seed <= 50; ++seed) {
        SynchronizerOptions options;
        options.seed = seed;
        options.latency_lo = 1;
        options.latency_hi = 6;
        options.faults.seed = seed;
        options.faults.drop_probability = 0.20;
        options.faults.duplicate_probability = 0.10;
        options.faults.corrupt_probability = 0.10;
        options.faults.delay_probability = 0.25;
        options.faults.max_extra_delay = 30;
        const SynchronizerResult result =
            run_rendezvous_protocol(decomposition, script, options);
        for (std::size_t i = 0; i < result.message_stamps.size(); ++i) {
            ASSERT_EQ(result.message_stamps[i],
                      expected[result.script_message[i]])
                << "seed " << seed;
        }
    }
}

TEST(Chaos, FaultyRunsRealizeTheSamePoset) {
    // Under faults the commit order can differ from the script's instant
    // order, but it must remain a valid instant order: per-process
    // projections equal the script's.
    const Graph topology = topology::client_server(2, 2);
    const SyncComputation script =
        testing::random_workload(topology, 26, 0.0, 7);
    auto decomposition = std::make_shared<const EdgeDecomposition>(
        default_decomposition(topology));
    for (std::uint64_t seed = 1; seed <= 25; ++seed) {
        SynchronizerOptions options;
        options.seed = seed;
        options.latency_lo = 1;
        options.latency_hi = 15;
        options.faults.seed = seed * 13;
        options.faults.drop_probability = 0.08;
        options.faults.duplicate_probability = 0.08;
        options.faults.delay_probability = 0.4;
        options.faults.max_extra_delay = 60;
        const SynchronizerResult result =
            run_rendezvous_protocol(decomposition, script, options);
        for (ProcessId p = 0; p < topology.num_vertices(); ++p) {
            const auto realized = result.computation.process_messages(p);
            const auto scripted = script.process_messages(p);
            ASSERT_EQ(realized.size(), scripted.size());
            for (std::size_t i = 0; i < realized.size(); ++i) {
                EXPECT_EQ(result.script_message[realized[i]], scripted[i]);
            }
        }
    }
}

}  // namespace
}  // namespace syncts
