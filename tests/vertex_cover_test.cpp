#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "common/rng.hpp"
#include "graph/generators.hpp"
#include "graph/vertex_cover.hpp"

namespace syncts {
namespace {

/// Exhaustive minimum vertex cover by subset enumeration (n <= ~16).
std::size_t brute_force_cover_size(const Graph& g) {
    const std::size_t n = g.num_vertices();
    std::size_t best = n;
    for (std::size_t mask = 0; mask < (std::size_t{1} << n); ++mask) {
        const auto size =
            static_cast<std::size_t>(__builtin_popcountll(mask));
        if (size >= best) continue;
        const bool covers = std::ranges::all_of(g.edges(), [&](const Edge& e) {
            return ((mask >> e.u) & 1) || ((mask >> e.v) & 1);
        });
        if (covers) best = size;
    }
    return best;
}

TEST(IsVertexCover, Basics) {
    const Graph g = topology::path(4);  // edges 01, 12, 23
    EXPECT_TRUE(is_vertex_cover(g, {1, 2}));
    EXPECT_TRUE(is_vertex_cover(g, {0, 1, 2, 3}));
    EXPECT_FALSE(is_vertex_cover(g, {0, 3}));
    EXPECT_FALSE(is_vertex_cover(g, {}));
    EXPECT_TRUE(is_vertex_cover(Graph(3), {}));
    EXPECT_FALSE(is_vertex_cover(g, {9}));  // out of range
}

TEST(ApproxCover, IsAlwaysACover) {
    Rng rng(42);
    for (int trial = 0; trial < 25; ++trial) {
        const Graph g = topology::random_gnp(20, 0.25, rng);
        EXPECT_TRUE(is_vertex_cover(g, approx_vertex_cover(g)));
    }
}

TEST(ApproxCover, WithinTwiceOptimal) {
    Rng rng(43);
    for (int trial = 0; trial < 15; ++trial) {
        const Graph g = topology::random_gnp(12, 0.3, rng);
        const std::size_t optimal = brute_force_cover_size(g);
        EXPECT_LE(approx_vertex_cover(g).size(), 2 * optimal);
    }
}

TEST(ExactCover, KnownSizes) {
    EXPECT_EQ(exact_vertex_cover(topology::star(10)).size(), 1u);
    EXPECT_EQ(exact_vertex_cover(topology::path(2)).size(), 1u);
    EXPECT_EQ(exact_vertex_cover(topology::path(5)).size(), 2u);
    EXPECT_EQ(exact_vertex_cover(topology::triangle()).size(), 2u);
    // β(K_n) = n−1; β(C_n) = ⌈n/2⌉.
    EXPECT_EQ(exact_vertex_cover(topology::complete(6)).size(), 5u);
    EXPECT_EQ(exact_vertex_cover(topology::ring(6)).size(), 3u);
    EXPECT_EQ(exact_vertex_cover(topology::ring(7)).size(), 4u);
    // Client-server: the servers cover everything.
    EXPECT_EQ(exact_vertex_cover(topology::client_server(3, 20)).size(), 3u);
    // Disjoint triangles: 2 per triangle.
    EXPECT_EQ(exact_vertex_cover(topology::disjoint_triangles(4)).size(), 8u);
    EXPECT_TRUE(exact_vertex_cover(Graph(5)).empty());
}

TEST(ExactCover, MatchesBruteForceOnRandomGraphs) {
    Rng rng(44);
    for (int trial = 0; trial < 20; ++trial) {
        const Graph g = topology::random_gnp(13, 0.35, rng);
        const auto cover = exact_vertex_cover(g);
        EXPECT_TRUE(is_vertex_cover(g, cover));
        EXPECT_EQ(cover.size(), brute_force_cover_size(g))
            << "trial " << trial;
    }
}

TEST(ExactCover, TreeCoversAreSmall) {
    Rng rng(45);
    const Graph tree = topology::random_tree(18, rng);
    const auto cover = exact_vertex_cover(tree);
    EXPECT_TRUE(is_vertex_cover(tree, cover));
    EXPECT_EQ(cover.size(), brute_force_cover_size(tree));
}

TEST(ExactCover, PaperFig4TreeNeedsThreeHubs) {
    const auto cover = exact_vertex_cover(topology::paper_fig4_tree());
    EXPECT_EQ(cover.size(), 3u);
    EXPECT_EQ(cover, (std::vector<ProcessId>{0, 1, 2}));
}

}  // namespace
}  // namespace syncts
