#include <gtest/gtest.h>

#include <algorithm>

#include <stdexcept>
#include <vector>

#include "decomp/cover_decomposer.hpp"
#include "decomp/edge_decomposition.hpp"
#include "graph/generators.hpp"
#include "graph/vertex_cover.hpp"
#include "test_util.hpp"

namespace syncts {
namespace {

/// Structural validity per Definition 2: all groups disjoint (enforced by
/// construction), every group a star or triangle, every edge assigned.
void expect_valid_decomposition(const EdgeDecomposition& d) {
    EXPECT_TRUE(d.complete());
    std::size_t total_edges = 0;
    for (const EdgeGroup& g : d.groups()) {
        total_edges += g.edges.size();
        if (g.kind == GroupKind::star) {
            EXPECT_FALSE(g.edges.empty());
            for (const Edge& e : g.edges) EXPECT_TRUE(e.touches(g.root));
        } else {
            ASSERT_EQ(g.edges.size(), 3u);
            const auto [x, y, z] = g.triangle.corners;
            EXPECT_TRUE(d.graph().has_edge(x, y));
            EXPECT_TRUE(d.graph().has_edge(y, z));
            EXPECT_TRUE(d.graph().has_edge(x, z));
        }
    }
    EXPECT_EQ(total_edges, d.graph().num_edges());
    // Every edge maps to the group that owns it.
    for (const Edge& e : d.graph().edges()) {
        const GroupId gid = d.group_of(e.u, e.v);
        const EdgeGroup& group = d.group(gid);
        EXPECT_NE(std::ranges::find(group.edges, e), group.edges.end());
    }
}

TEST(EdgeDecomposition, ManualStarBuild) {
    EdgeDecomposition d(topology::star(4));
    EXPECT_EQ(d.size(), 0u);
    EXPECT_FALSE(d.complete());
    const std::vector<Edge> edges{Edge::make(0, 1), Edge::make(0, 2),
                                  Edge::make(0, 3)};
    const GroupId id = d.add_star(0, edges);
    EXPECT_EQ(id, 0u);
    EXPECT_TRUE(d.complete());
    EXPECT_EQ(d.size(), 1u);
    EXPECT_EQ(d.star_count(), 1u);
    EXPECT_EQ(d.triangle_count(), 0u);
    EXPECT_EQ(d.group_of(0, 2), 0u);
    EXPECT_EQ(d.group_of(2, 0), 0u);
}

TEST(EdgeDecomposition, ManualTriangleBuild) {
    EdgeDecomposition d(topology::triangle());
    d.add_triangle(Triangle::make(0, 1, 2));
    EXPECT_TRUE(d.complete());
    EXPECT_EQ(d.triangle_count(), 1u);
    expect_valid_decomposition(d);
}

TEST(EdgeDecomposition, RejectsDoubleAssignment) {
    EdgeDecomposition d(topology::triangle());
    d.add_star(0, std::vector<Edge>{Edge::make(0, 1)});
    EXPECT_THROW(d.add_star(1, std::vector<Edge>{Edge::make(1, 0)}),
                 std::invalid_argument);
    EXPECT_THROW(d.add_triangle(Triangle::make(0, 1, 2)),
                 std::invalid_argument);
}

TEST(EdgeDecomposition, RejectsNonIncidentStarEdge) {
    EdgeDecomposition d(topology::path(3));
    EXPECT_THROW(d.add_star(0, std::vector<Edge>{Edge::make(1, 2)}),
                 std::invalid_argument);
}

TEST(EdgeDecomposition, RejectsAbsentEdges) {
    EdgeDecomposition d(topology::path(3));
    EXPECT_THROW(d.add_star(0, std::vector<Edge>{Edge::make(0, 2)}),
                 std::invalid_argument);
    EXPECT_THROW(d.add_triangle(Triangle::make(0, 1, 2)),
                 std::invalid_argument);
    EXPECT_THROW(d.add_star(1, std::vector<Edge>{}), std::invalid_argument);
}

TEST(EdgeDecomposition, GroupOfUnassignedThrows) {
    EdgeDecomposition d(topology::path(3));
    EXPECT_THROW(d.group_of(0, 1), std::invalid_argument);
    EXPECT_THROW(d.group_of(0, 2), std::invalid_argument);  // not an edge
    EXPECT_EQ(d.group_of_edge_index(0), kNoGroup);
}

TEST(EdgeDecomposition, ToStringMentionsGroups) {
    EdgeDecomposition d(topology::triangle());
    d.add_triangle(Triangle::make(0, 1, 2));
    const std::string s = d.to_string();
    EXPECT_NE(s.find("triangle(0,1,2)"), std::string::npos);
}

TEST(CoverDecomposition, FromExplicitCover) {
    const Graph g = topology::path(4);
    const EdgeDecomposition d =
        decomposition_from_cover(g, std::vector<ProcessId>{1, 2});
    expect_valid_decomposition(d);
    EXPECT_EQ(d.size(), 2u);
    EXPECT_EQ(d.star_count(), 2u);
}

TEST(CoverDecomposition, RejectsNonCover) {
    const Graph g = topology::path(4);
    EXPECT_THROW(
        decomposition_from_cover(g, std::vector<ProcessId>{0, 3}),
        std::invalid_argument);
}

TEST(CoverDecomposition, UnusedCoverVerticesDropOut) {
    // Cover {0,1} of a single edge 0-1: edge goes to vertex 0, vertex 1
    // contributes no group.
    const Graph g = topology::path(2);
    const EdgeDecomposition d =
        decomposition_from_cover(g, std::vector<ProcessId>{0, 1});
    EXPECT_EQ(d.size(), 1u);
}

TEST(CoverDecomposition, ExactCoverMeetsTheorem5) {
    for (const auto& [name, graph] : testing::small_graph_suite(7)) {
        if (graph.num_edges() == 0) continue;
        const std::size_t beta = exact_vertex_cover(graph).size();
        const EdgeDecomposition d = exact_cover_decomposition(graph);
        expect_valid_decomposition(d);
        EXPECT_LE(d.size(), beta) << name;
    }
}

TEST(CoverDecomposition, ClientServerUsesOneStarPerServer) {
    const Graph g = topology::client_server(4, 40);
    const EdgeDecomposition d = exact_cover_decomposition(g);
    expect_valid_decomposition(d);
    EXPECT_EQ(d.size(), 4u);
}

TEST(TrivialComplete, SizesAreNMinus2) {
    for (std::size_t n : {3u, 4u, 5u, 8u, 12u}) {
        const EdgeDecomposition d =
            trivial_complete_decomposition(topology::complete(n));
        expect_valid_decomposition(d);
        EXPECT_EQ(d.size(), n - 2) << "K" << n;
        EXPECT_EQ(d.triangle_count(), 1u);
        EXPECT_EQ(d.star_count(), n - 3);
    }
}

TEST(TrivialComplete, SmallCases) {
    EXPECT_EQ(trivial_complete_decomposition(topology::complete(2)).size(),
              1u);
    EXPECT_EQ(trivial_complete_decomposition(topology::complete(1)).size(),
              0u);
    EXPECT_THROW(trivial_complete_decomposition(topology::path(4)),
                 std::invalid_argument);
}

TEST(DefaultDecomposition, PicksTrivialOnCompleteGraphs) {
    const EdgeDecomposition d = default_decomposition(topology::complete(6));
    EXPECT_EQ(d.size(), 4u);  // N−2, beats greedy's N−1 on even N
    expect_valid_decomposition(d);
}

TEST(DefaultDecomposition, ValidAcrossSuite) {
    for (const auto& [name, graph] : testing::small_graph_suite(11)) {
        const EdgeDecomposition d = default_decomposition(graph);
        expect_valid_decomposition(d);
    }
}

}  // namespace
}  // namespace syncts
