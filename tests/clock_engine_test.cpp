#include <gtest/gtest.h>

#include <limits>
#include <memory>
#include <vector>

#include "clocks/clock_engine.hpp"
#include "clocks/direct_dependency.hpp"
#include "clocks/engine_stock.hpp"
#include "clocks/fm_event_clock.hpp"
#include "clocks/fm_sync_clock.hpp"
#include "clocks/lamport_clock.hpp"
#include "clocks/offline_timestamper.hpp"
#include "clocks/online_clock.hpp"
#include "common/rng.hpp"
#include "decomp/cover_decomposer.hpp"
#include "graph/generators.hpp"
#include "trace/generator.hpp"

/// Satellite acceptance test: the arena-backed ClockEngine replay must
/// produce timestamps *bit-identical* to the legacy per-family
/// implementations, for every clock family, across hundreds of seeded
/// random computations (varying topology, size, and internal-event rate).

namespace syncts {
namespace {

constexpr std::size_t kSeeds = 500;

struct Scenario {
    std::shared_ptr<const EdgeDecomposition> decomposition;
    SyncComputation computation;
};

Scenario make_scenario(std::uint64_t seed) {
    Rng rng(seed);
    const std::size_t n = 2 + rng.below(7);  // 2..8 processes
    Graph topology = [&]() {
        switch (seed % 5) {
            case 0: return topology::complete(n);
            case 1: return n >= 3 ? topology::ring(n) : topology::path(n);
            case 2: return topology::star(n);
            case 3: return topology::path(n);
            default:
                return topology::random_connected(n, rng.below(n + 1), rng);
        }
    }();
    WorkloadOptions options;
    options.num_messages = 5 + rng.below(40);
    options.internal_rate = (seed % 3 == 0) ? 0.5 : 0.0;
    Scenario scenario{
        std::make_shared<const EdgeDecomposition>(
            default_decomposition(topology)),
        random_computation(topology, options, rng)};
    return scenario;
}

void expect_same_stamps(const EngineStamps& engine,
                        const std::vector<VectorTimestamp>& legacy,
                        std::uint64_t seed, const char* family) {
    ASSERT_EQ(engine.message_stamps.size(), legacy.size())
        << family << " seed " << seed;
    for (std::size_t m = 0; m < legacy.size(); ++m) {
        const auto row = engine.arena.span(engine.message_stamps[m]);
        ASSERT_EQ(VectorTimestamp(row), legacy[m])
            << family << " seed " << seed << " message " << m;
    }
}

TEST(ClockEngineEquivalence, OnlineFamilyMatchesLegacyTimestamper) {
    for (std::uint64_t seed = 0; seed < kSeeds; ++seed) {
        const Scenario s = make_scenario(seed);
        OnlineTimestamper legacy(s.decomposition);
        const std::vector<VectorTimestamp> expected =
            legacy.timestamp_computation(s.computation);

        const auto engine =
            make_clock_engine(ClockFamily::online, s.decomposition);
        expect_same_stamps(engine->stamp_computation(s.computation), expected,
                           seed, "online");
    }
}

TEST(ClockEngineEquivalence, FmSyncFamilyMatchesLegacy) {
    for (std::uint64_t seed = 0; seed < kSeeds; ++seed) {
        const Scenario s = make_scenario(seed);
        const std::vector<VectorTimestamp> expected =
            fm_sync_timestamps(s.computation);
        const auto engine =
            make_clock_engine(ClockFamily::fm_sync, s.decomposition);
        expect_same_stamps(engine->stamp_computation(s.computation), expected,
                           seed, "fm_sync");
    }
}

TEST(ClockEngineEquivalence, FmEventFamilyMatchesLegacy) {
    for (std::uint64_t seed = 0; seed < kSeeds; ++seed) {
        const Scenario s = make_scenario(seed);
        const FmEventTimestamps expected = fm_event_timestamps(s.computation);
        const auto engine =
            make_clock_engine(ClockFamily::fm_event, s.decomposition);
        const EngineStamps stamps = engine->stamp_computation(s.computation);
        expect_same_stamps(stamps, expected.message_stamps, seed, "fm_event");
        ASSERT_EQ(stamps.internal_stamps.size(),
                  expected.internal_stamps.size())
            << "seed " << seed;
        for (std::size_t i = 0; i < expected.internal_stamps.size(); ++i) {
            ASSERT_EQ(VectorTimestamp(
                          stamps.arena.span(stamps.internal_stamps[i])),
                      expected.internal_stamps[i])
                << "fm_event seed " << seed << " internal event " << i;
        }
    }
}

TEST(ClockEngineEquivalence, LamportFamilyMatchesLegacy) {
    for (std::uint64_t seed = 0; seed < kSeeds; ++seed) {
        const Scenario s = make_scenario(seed);
        const LamportTimestamps expected = lamport_timestamps(s.computation);
        const auto engine =
            make_clock_engine(ClockFamily::lamport, s.decomposition);
        const EngineStamps stamps = engine->stamp_computation(s.computation);
        ASSERT_EQ(stamps.message_stamps.size(),
                  expected.message_stamps.size());
        for (std::size_t m = 0; m < expected.message_stamps.size(); ++m) {
            const auto row = stamps.arena.span(stamps.message_stamps[m]);
            ASSERT_EQ(row.size(), 1u);
            ASSERT_EQ(row[0], expected.message_stamps[m])
                << "lamport seed " << seed << " message " << m;
        }
        ASSERT_EQ(stamps.internal_stamps.size(),
                  expected.internal_stamps.size());
        for (std::size_t i = 0; i < expected.internal_stamps.size(); ++i) {
            ASSERT_EQ(stamps.arena.span(stamps.internal_stamps[i])[0],
                      expected.internal_stamps[i])
                << "lamport seed " << seed << " internal event " << i;
        }
    }
}

TEST(ClockEngineEquivalence, DirectDependencyFamilyMatchesLegacy) {
    constexpr std::uint64_t kNone64 =
        std::numeric_limits<std::uint64_t>::max();
    const auto encode = [](MessageId id) {
        return id == kNoMessage ? kNone64 : static_cast<std::uint64_t>(id);
    };
    for (std::uint64_t seed = 0; seed < kSeeds; ++seed) {
        const Scenario s = make_scenario(seed);
        const std::vector<DirectDeps> expected =
            DirectDependencyTracker::record_computation(s.computation);
        const auto engine = make_clock_engine(ClockFamily::direct_dependency,
                                              s.decomposition);
        const EngineStamps stamps = engine->stamp_computation(s.computation);
        ASSERT_EQ(stamps.message_stamps.size(), expected.size());
        for (std::size_t m = 0; m < expected.size(); ++m) {
            const auto row = stamps.arena.span(stamps.message_stamps[m]);
            ASSERT_EQ(row.size(), 2u);
            ASSERT_EQ(row[0], encode(expected[m].prev_sender))
                << "direct_dependency seed " << seed << " message " << m;
            ASSERT_EQ(row[1], encode(expected[m].prev_receiver))
                << "direct_dependency seed " << seed << " message " << m;
        }
    }
}

TEST(ClockEngineEquivalence, OfflineFamilyMatchesLegacy) {
    // The offline engine is batch-only; it must pack Fig. 9's stamps into
    // the arena unchanged and report the realizer width afterwards.
    for (std::uint64_t seed = 0; seed < kSeeds; seed += 10) {
        const Scenario s = make_scenario(seed);
        const OfflineResult expected = offline_timestamps(s.computation);
        const auto engine =
            make_clock_engine(ClockFamily::offline, s.decomposition);
        EXPECT_FALSE(engine->online());
        EXPECT_EQ(engine->width(), 0u) << "width is unknown before a run";
        expect_same_stamps(engine->stamp_computation(s.computation),
                           expected.timestamps, seed, "offline");
        EXPECT_EQ(engine->width(), expected.width);
    }
}

// ---- Driver-level behavior --------------------------------------------

TEST(ClockEngine, IncrementalDriverMatchesLegacyRendezvous) {
    const Scenario s = make_scenario(7);
    OnlineTimestamper legacy(s.decomposition);
    const auto engine = make_clock_engine(ClockFamily::online,
                                          s.decomposition);
    auto* online = dynamic_cast<OnlineTimestamper*>(engine.get());
    ASSERT_NE(online, nullptr);
    TimestampArena arena(engine->width(),
                         s.computation.num_messages());
    for (const SyncMessage& m : s.computation.messages()) {
        const VectorTimestamp expected =
            legacy.timestamp_message(m.sender, m.receiver);
        const TsHandle h =
            online->timestamp_message(m.sender, m.receiver, arena);
        ASSERT_EQ(VectorTimestamp(arena.span(h)), expected)
            << "message " << m.id;
    }
}

TEST(ClockEngine, ResetRestoresInitialState) {
    const Scenario s = make_scenario(11);
    for (const ClockFamily family :
         {ClockFamily::online, ClockFamily::fm_sync, ClockFamily::fm_event,
          ClockFamily::lamport, ClockFamily::direct_dependency}) {
        const auto engine = make_clock_engine(family, s.decomposition);
        const EngineStamps first = engine->stamp_computation(s.computation);
        engine->reset();
        const EngineStamps second = engine->stamp_computation(s.computation);
        ASSERT_EQ(first.arena, second.arena) << to_string(family);
        ASSERT_EQ(first.message_stamps, second.message_stamps)
            << to_string(family);
    }
}

TEST(ClockEngine, StampMessagesFillsCallerArena) {
    const Scenario s = make_scenario(13);
    const auto engine = make_clock_engine(ClockFamily::fm_sync,
                                          s.decomposition);
    TimestampArena arena(engine->width(), s.computation.num_messages());
    const std::vector<TsHandle> handles =
        engine->stamp_messages(s.computation, arena);
    ASSERT_EQ(handles.size(), s.computation.num_messages());
    ASSERT_EQ(arena.size(), s.computation.num_messages());
    engine->reset();
    const std::vector<VectorTimestamp> expected =
        engine->timestamp_computation_legacy(s.computation);
    for (std::size_t m = 0; m < handles.size(); ++m) {
        ASSERT_EQ(VectorTimestamp(arena.span(handles[m])), expected[m]);
    }
}

TEST(ClockEngine, RejectsMismatchedArenaWidth) {
    const Scenario s = make_scenario(17);
    const auto engine = make_clock_engine(ClockFamily::fm_sync,
                                          s.decomposition);
    TimestampArena narrow(engine->width() + 1);
    EXPECT_THROW(engine->stamp_messages(s.computation, narrow),
                 std::invalid_argument);
}

TEST(ClockEngine, OfflineHooksThrow) {
    const Scenario s = make_scenario(19);
    const auto engine = make_clock_engine(ClockFamily::offline,
                                          s.decomposition);
    std::vector<std::uint64_t> buffer(4);
    EXPECT_THROW(engine->prepare_send(0, buffer), std::invalid_argument);
}

TEST(ClockEngine, FamilyNamesRoundTrip) {
    EXPECT_STREQ(to_string(ClockFamily::online), "online");
    EXPECT_STREQ(to_string(ClockFamily::fm_sync), "fm_sync");
    EXPECT_STREQ(to_string(ClockFamily::fm_event), "fm_event");
    EXPECT_STREQ(to_string(ClockFamily::lamport), "lamport");
    EXPECT_STREQ(to_string(ClockFamily::direct_dependency),
                 "direct_dependency");
    EXPECT_STREQ(to_string(ClockFamily::offline), "offline");
}

TEST(ClockEngine, MaterializeMessagesMatchesArenaRows) {
    const Scenario s = make_scenario(23);
    const auto engine = make_clock_engine(ClockFamily::online,
                                          s.decomposition);
    const EngineStamps stamps = engine->stamp_computation(s.computation);
    const std::vector<VectorTimestamp> materialized =
        stamps.materialize_messages();
    ASSERT_EQ(materialized.size(), stamps.message_stamps.size());
    for (std::size_t m = 0; m < materialized.size(); ++m) {
        ASSERT_EQ(materialized[m].components().size(),
                  stamps.arena.width());
        ASSERT_EQ(materialized[m],
                  VectorTimestamp(
                      stamps.arena.span(stamps.message_stamps[m])));
    }
}

// ---- Stock/lease recycling (docs/MEMORY.md) ---------------------------

constexpr ClockFamily kAllFamilies[] = {
    ClockFamily::online,   ClockFamily::fm_sync,
    ClockFamily::fm_event, ClockFamily::lamport,
    ClockFamily::direct_dependency, ClockFamily::offline};

TEST(EngineStock, RebindBehavesLikeFreshConstruction) {
    // The rebind contract directly: stamp on one decomposition, rebind
    // onto a different one (different width, process count, groups), and
    // the recycled engine must match a fresh engine bit for bit.
    const Scenario a = make_scenario(31);
    const Scenario b = make_scenario(132);
    for (const ClockFamily family : kAllFamilies) {
        const auto engine = make_clock_engine(family, a.decomposition);
        (void)engine->stamp_computation(a.computation);
        engine->rebind(b.decomposition);
        const EngineStamps got = engine->stamp_computation(b.computation);
        const auto fresh = make_clock_engine(family, b.decomposition);
        const EngineStamps want = fresh->stamp_computation(b.computation);
        ASSERT_EQ(got.arena, want.arena) << to_string(family);
        ASSERT_EQ(got.message_stamps, want.message_stamps)
            << to_string(family);
        ASSERT_EQ(got.internal_stamps, want.internal_stamps)
            << to_string(family);
    }
}

TEST(EngineStock, LeasedEnginesStampBitIdenticalToFresh) {
    EngineStock stock;
    for (std::uint64_t seed = 40; seed < 60; ++seed) {
        const Scenario dirty = make_scenario(seed);
        const Scenario target = make_scenario(seed + 500);
        for (const ClockFamily family : kAllFamilies) {
            // Dirty an engine on one topology, park it, lease it back for
            // another.
            auto first = stock.lease(family, dirty.decomposition);
            (void)first->stamp_computation(dirty.computation);
            stock.restock(std::move(first));

            const std::uint64_t reuses_before = stock.reuses();
            auto second = stock.lease(family, target.decomposition);
            ASSERT_EQ(stock.reuses(), reuses_before + 1)
                << to_string(family) << ": lease did not recycle";
            const EngineStamps got =
                second->stamp_computation(target.computation);

            const auto fresh = make_clock_engine(family,
                                                 target.decomposition);
            const EngineStamps want =
                fresh->stamp_computation(target.computation);
            ASSERT_EQ(got.arena, want.arena)
                << to_string(family) << " seed " << seed;
            ASSERT_EQ(got.message_stamps, want.message_stamps)
                << to_string(family) << " seed " << seed;
            ASSERT_EQ(got.internal_stamps, want.internal_stamps)
                << to_string(family) << " seed " << seed;
            stock.restock(std::move(second));
        }
    }
    EXPECT_EQ(stock.stocked_engines(), 6u);
    stock.trim();
    EXPECT_EQ(stock.stocked_engines(), 0u);
}

TEST(EngineStock, LeasedProcessClocksMatchFreshOnes) {
    const Scenario dirty = make_scenario(47);
    const Scenario target = make_scenario(151);
    const std::size_t n = target.computation.num_processes();

    EngineStock stock;
    // Dirty a clock with real Fig. 5 traffic so its vector and peer
    // tables are far from the initial state.
    {
        auto clock = stock.lease_clock(0, dirty.decomposition);
        OnlineProcessClock peer(1, dirty.decomposition);
        const auto exchange = peer.on_receive(0, clock->prepare_send());
        (void)clock->on_acknowledgement(1, exchange.acknowledgement);
        stock.restock_clock(std::move(clock));
    }

    // Recycled clocks must replay a whole computation identically to
    // fresh ones: run the same script through a leased fleet and a fresh
    // fleet, comparing every message stamp.
    std::vector<std::unique_ptr<OnlineProcessClock>> leased;
    std::vector<std::unique_ptr<OnlineProcessClock>> fresh;
    for (ProcessId p = 0; p < n; ++p) {
        leased.push_back(stock.lease_clock(p, target.decomposition));
        fresh.push_back(
            std::make_unique<OnlineProcessClock>(p, target.decomposition));
    }
    EXPECT_GT(stock.reuses(), 0u);
    for (const SyncMessage& m : target.computation.messages()) {
        const auto run = [&](auto& fleet) {
            const auto exchange = fleet[m.receiver]->on_receive(
                m.sender, fleet[m.sender]->prepare_send());
            return fleet[m.sender]->on_acknowledgement(
                m.receiver, exchange.acknowledgement);
        };
        const VectorTimestamp a = run(leased);
        const VectorTimestamp b = run(fresh);
        ASSERT_EQ(a, b) << "message " << m.id;
    }
    for (ProcessId p = 0; p < n; ++p) {
        ASSERT_EQ(VectorTimestamp(leased[p]->current_span()),
                  VectorTimestamp(fresh[p]->current_span()))
            << "process " << p;
    }
}

}  // namespace
}  // namespace syncts
