#include <gtest/gtest.h>

#include <string>

#include "clocks/fm_sync_clock.hpp"
#include "clocks/offline_timestamper.hpp"
#include "core/causality.hpp"
#include "core/monitor.hpp"
#include "core/sync_system.hpp"
#include "core/timestamped_trace.hpp"
#include "test_util.hpp"
#include "trace/ground_truth.hpp"

namespace syncts {
namespace {

/// End-to-end: threaded client-server run -> record -> every analysis
/// layer agrees (online stamps, FM baseline, offline restamping, monitor).
TEST(Integration, ClientServerPipelineEndToEnd) {
    constexpr std::size_t kServers = 2;
    constexpr std::size_t kClients = 4;
    constexpr int kRounds = 24;  // even: uniform load across both servers
    const SyncSystem system(topology::client_server(kServers, kClients));
    EXPECT_EQ(system.width(), kServers);

    TimestampedNetwork network = system.make_network();
    std::vector<ProcessProgram> programs(kServers + kClients);
    for (ProcessId s = 0; s < kServers; ++s) {
        programs[s] = [](ProcessContext& context) {
            const int expected =
                kClients * kRounds / kServers;
            for (int i = 0; i < expected; ++i) {
                const ReceivedMessage request = context.receive();
                context.internal_event("served");
                context.send(request.sender, "ok");
            }
        };
    }
    for (std::size_t c = 0; c < kClients; ++c) {
        const auto client = static_cast<ProcessId>(kServers + c);
        programs[client] = [](ProcessContext& context) {
            for (int i = 0; i < kRounds; ++i) {
                const auto server = static_cast<ProcessId>(
                    static_cast<std::size_t>(i) % kServers);
                context.send(server, "req:" + std::to_string(i));
                context.receive_from(server);
            }
        };
    }
    const RunRecord record = network.run(programs);
    ASSERT_EQ(record.messages.size(), 2u * kClients * kRounds);

    // (1) Recorded online stamps encode the reconstructed poset exactly.
    const Poset truth = message_poset(record.computation);
    EXPECT_EQ(encoding_mismatches(truth, record.message_stamps), 0u);

    // (2) FM baseline over the same computation orders identically, at
    // width N instead of width kServers.
    const auto fm = fm_sync_timestamps(record.computation);
    EXPECT_EQ(encoding_mismatches(truth, fm), 0u);
    EXPECT_EQ(fm[0].width(), kServers + kClients);
    EXPECT_EQ(record.message_stamps[0].width(), kServers);

    // (3) Offline restamping compresses to the poset's true width.
    const OfflineResult offline =
        offline_timestamps(truth, record.computation.num_processes());
    EXPECT_EQ(encoding_mismatches(truth, offline.timestamps), 0u);
    EXPECT_LE(offline.width, (kServers + kClients) / 2);

    // (4) Internal "served" events on the same server are totally ordered;
    // Theorem 9 stamps agree with the event poset.
    const Poset events = event_poset(record.computation);
    for (InternalId e = 0; e < record.computation.num_internal_events();
         ++e) {
        for (InternalId f = 0; f < record.computation.num_internal_events();
             ++f) {
            if (e == f) continue;
            EXPECT_EQ(
                happened_before(record.internal_stamps[e],
                                record.internal_stamps[f]),
                events.less(internal_element(record.computation, e),
                            internal_element(record.computation, f)));
        }
    }

    // (5) The monitor sees exactly the concurrency the poset has.
    CausalMonitor monitor;
    for (const MessageRecord& m : record.messages) {
        monitor.record(m.payload, m.timestamp);
    }
    std::size_t truth_concurrent = 0;
    for (std::size_t a = 0; a < truth.size(); ++a) {
        for (std::size_t b = a + 1; b < truth.size(); ++b) {
            truth_concurrent += truth.incomparable(a, b) ? 1 : 0;
        }
    }
    // Monitor ids follow record order = instant order, and timestamps are
    // unique, so pair counts line up one-to-one.
    EXPECT_EQ(monitor.conflict_pair_count(), truth_concurrent);
}

/// Simulator and threaded runtime agree on an arbitrary recorded workload
/// over the Fig. 4 tree, and the analysis facade verifies it.
TEST(Integration, TreeWorkloadSimulatorVsThreads) {
    const Graph g = topology::paper_fig4_tree();
    const SyncSystem system(g);
    EXPECT_EQ(system.width(), 3u);
    const SyncComputation computation =
        testing::random_workload(g, 150, 0.0, 202);
    const TimestampedTrace trace = system.analyze(computation);
    EXPECT_EQ(trace.verify_against_ground_truth(), 0u);

    // Drive the same schedule through threads.
    TimestampedNetwork network = system.make_network();
    std::vector<ProcessProgram> programs(g.num_vertices());
    for (ProcessId p = 0; p < g.num_vertices(); ++p) {
        std::vector<SyncMessage> schedule;
        for (const MessageId id : computation.process_messages(p)) {
            schedule.push_back(computation.message(id));
        }
        programs[p] = [p, schedule](ProcessContext& context) {
            for (const SyncMessage& m : schedule) {
                if (m.sender == p) {
                    context.send(m.receiver, std::to_string(m.id));
                } else {
                    context.receive_from(m.sender);
                }
            }
        };
    }
    const RunRecord record = network.run(programs);
    ASSERT_EQ(record.messages.size(), computation.num_messages());
    for (const MessageRecord& m : record.messages) {
        const auto original =
            static_cast<MessageId>(std::stoul(m.payload));
        EXPECT_EQ(m.timestamp, trace.timestamp(original));
    }
}

/// The three decomposition strategies all yield exact encodings; only the
/// width differs. (Ablation: star-only vs star+triangle.)
TEST(Integration, StrategyAblationOnTriangleRichTopology) {
    const Graph g = topology::disjoint_triangles(3);
    const SyncComputation computation =
        testing::random_workload(g, 90, 0.0, 203);
    const Poset truth = message_poset(computation);

    const SyncSystem with_triangles(g, DecompositionStrategy::greedy);
    const SyncSystem stars_only(g, DecompositionStrategy::exact_cover);
    EXPECT_EQ(with_triangles.width(), 3u);  // α = t
    EXPECT_EQ(stars_only.width(), 6u);      // β = 2t — the tight bound
    for (const SyncSystem* system : {&with_triangles, &stars_only}) {
        const TimestampedTrace trace = system->analyze(computation);
        EXPECT_EQ(trace.verify_against_ground_truth(), 0u);
    }
    (void)truth;
}

}  // namespace
}  // namespace syncts
