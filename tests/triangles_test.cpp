#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "common/rng.hpp"
#include "graph/generators.hpp"
#include "graph/triangles.hpp"

namespace syncts {
namespace {

std::vector<Triangle> brute_force_triangles(const Graph& g) {
    std::vector<Triangle> result;
    const auto n = static_cast<ProcessId>(g.num_vertices());
    for (ProcessId a = 0; a < n; ++a) {
        for (ProcessId b = a + 1; b < n; ++b) {
            for (ProcessId c = b + 1; c < n; ++c) {
                if (g.has_edge(a, b) && g.has_edge(b, c) && g.has_edge(a, c)) {
                    result.push_back(Triangle::make(a, b, c));
                }
            }
        }
    }
    return result;
}

TEST(Triangle, MakeSortsCorners) {
    const Triangle t = Triangle::make(5, 1, 3);
    EXPECT_EQ(t.corners[0], 1u);
    EXPECT_EQ(t.corners[1], 3u);
    EXPECT_EQ(t.corners[2], 5u);
    EXPECT_EQ(t, Triangle::make(3, 5, 1));
    EXPECT_THROW(Triangle::make(1, 1, 2), std::invalid_argument);
}

TEST(Triangles, NoneInForestsOrBipartite) {
    EXPECT_TRUE(all_triangles(topology::path(8)).empty());
    EXPECT_TRUE(all_triangles(topology::star(8)).empty());
    EXPECT_TRUE(all_triangles(topology::grid(4, 4)).empty());
    EXPECT_TRUE(all_triangles(topology::client_server(3, 5)).empty());
    EXPECT_TRUE(all_triangles(topology::ring(6)).empty());
    EXPECT_EQ(all_triangles(topology::ring(3)).size(), 1u);
}

TEST(Triangles, CompleteGraphCount) {
    // C(n,3) triangles in K_n.
    EXPECT_EQ(all_triangles(topology::complete(4)).size(), 4u);
    EXPECT_EQ(all_triangles(topology::complete(5)).size(), 10u);
    EXPECT_EQ(all_triangles(topology::complete(7)).size(), 35u);
}

TEST(Triangles, DisjointTriangles) {
    const auto triangles = all_triangles(topology::disjoint_triangles(5));
    EXPECT_EQ(triangles.size(), 5u);
}

TEST(Triangles, EachListedOnceAndSorted) {
    const auto triangles = all_triangles(topology::complete(6));
    auto copy = triangles;
    std::ranges::sort(copy);
    EXPECT_EQ(copy, triangles);
    EXPECT_EQ(std::ranges::adjacent_find(copy), copy.end());
}

TEST(Triangles, MatchesBruteForceOnRandomGraphs) {
    Rng rng(123);
    for (int trial = 0; trial < 20; ++trial) {
        const Graph g = topology::random_gnp(14, 0.4, rng);
        EXPECT_EQ(all_triangles(g), brute_force_triangles(g))
            << "trial " << trial;
    }
}

TEST(TrianglesContaining, KnownEdges) {
    const Graph k4 = topology::complete(4);
    const auto ts = triangles_containing(k4, 0, 1);
    ASSERT_EQ(ts.size(), 2u);
    EXPECT_EQ(ts[0], Triangle::make(0, 1, 2));
    EXPECT_EQ(ts[1], Triangle::make(0, 1, 3));
    EXPECT_TRUE(triangles_containing(topology::path(4), 0, 1).empty());
}

TEST(TrianglesContaining, AbsentEdgeGivesNothing) {
    const Graph g = topology::path(4);
    EXPECT_TRUE(triangles_containing(g, 0, 3).empty());
}

TEST(TrianglesContaining, ConsistentWithAllTriangles) {
    Rng rng(321);
    const Graph g = topology::random_gnp(12, 0.5, rng);
    const auto all = all_triangles(g);
    for (const Edge& e : g.edges()) {
        const auto expected_count = static_cast<std::size_t>(
            std::ranges::count_if(all, [&](const Triangle& t) {
                return std::ranges::count(t.corners, e.u) == 1 &&
                       std::ranges::count(t.corners, e.v) == 1;
            }));
        EXPECT_EQ(triangles_containing(g, e.u, e.v).size(), expected_count);
    }
}

}  // namespace
}  // namespace syncts
