#include <gtest/gtest.h>

#include "graph/generators.hpp"
#include "trace/computation.hpp"
#include "trace/generator.hpp"
#include "trace/ground_truth.hpp"

namespace syncts {
namespace {

TEST(SyncComputation, BuildAndProject) {
    SyncComputation c(topology::path(3));
    const MessageId m0 = c.add_message(0, 1);
    const InternalId i0 = c.add_internal(1);
    const MessageId m1 = c.add_message(2, 1);
    EXPECT_EQ(m0, 0u);
    EXPECT_EQ(i0, 0u);
    EXPECT_EQ(m1, 1u);
    EXPECT_EQ(c.num_messages(), 2u);
    EXPECT_EQ(c.num_internal_events(), 1u);

    const auto p1_events = c.process_events(1);
    ASSERT_EQ(p1_events.size(), 3u);
    EXPECT_EQ(p1_events[0].kind, ProcessEvent::Kind::message);
    EXPECT_EQ(p1_events[1].kind, ProcessEvent::Kind::internal);
    EXPECT_EQ(p1_events[2].kind, ProcessEvent::Kind::message);

    EXPECT_EQ(c.process_messages(0).size(), 1u);
    EXPECT_EQ(c.process_messages(1).size(), 2u);
    EXPECT_TRUE(c.process_messages(2).size() == 1u);
    EXPECT_TRUE(c.message(0).involves(0));
    EXPECT_FALSE(c.message(0).involves(2));
}

TEST(SyncComputation, RejectsNonTopologyChannels) {
    SyncComputation c(topology::path(3));
    EXPECT_THROW(c.add_message(0, 2), std::invalid_argument);
    EXPECT_THROW(c.add_message(0, 0), std::invalid_argument);
    EXPECT_THROW(c.add_internal(7), std::invalid_argument);
}

TEST(MessagePoset, PaperFig1Facts) {
    // The paper's running example: m1 ‖ m2, m1 ▷ m3, m2 ↦ m6, m3 ↦ m5,
    // and a synchronous chain of size 4 from m1 to m5.
    const SyncComputation c = paper_fig1_computation();
    const Poset p = message_poset(c);
    ASSERT_EQ(p.size(), 6u);
    // (0-based ids: m1 = 0, ..., m6 = 5.)
    EXPECT_TRUE(p.incomparable(0, 1));  // m1 || m2
    EXPECT_TRUE(p.less(0, 2));          // m1 -> m3
    EXPECT_TRUE(p.less(1, 5));          // m2 -> m6
    EXPECT_TRUE(p.less(2, 4));          // m3 -> m5
    // Chain m1 -> m3 -> m4 -> m5 of size 4.
    EXPECT_TRUE(p.less(0, 2) && p.less(2, 3) && p.less(3, 4));
}

TEST(MessagePoset, TotalOrderOnStarTopology) {
    // Lemma 1 (forward direction): star topologies totally order messages.
    Rng rng(61);
    WorkloadOptions options;
    options.num_messages = 60;
    const Graph g = topology::star(8);
    for (int trial = 0; trial < 5; ++trial) {
        Rng local(rng());
        const SyncComputation c = random_computation(g, options, local);
        EXPECT_TRUE(messages_totally_ordered(message_poset(c)));
    }
}

TEST(MessagePoset, TotalOrderOnTriangleTopology) {
    Rng rng(62);
    WorkloadOptions options;
    options.num_messages = 60;
    const Graph g = topology::triangle();
    for (int trial = 0; trial < 5; ++trial) {
        Rng local(rng());
        const SyncComputation c = random_computation(g, options, local);
        EXPECT_TRUE(messages_totally_ordered(message_poset(c)));
    }
}

TEST(MessagePoset, ConcurrencyExistsOffStarTriangle) {
    // Lemma 1 (converse): two disjoint edges admit concurrent messages.
    SyncComputation c(topology::path(4));
    c.add_message(0, 1);
    c.add_message(2, 3);
    const Poset p = message_poset(c);
    EXPECT_TRUE(p.incomparable(0, 1));
}

TEST(MessagePoset, InstantOrderIsALinearExtension) {
    Rng rng(63);
    WorkloadOptions options;
    options.num_messages = 80;
    const SyncComputation c =
        random_computation(topology::complete(6), options, rng);
    const Poset p = message_poset(c);
    std::vector<std::size_t> instant_order(c.num_messages());
    for (std::size_t i = 0; i < instant_order.size(); ++i) {
        instant_order[i] = i;
    }
    EXPECT_TRUE(p.is_linear_extension(instant_order));
}

TEST(EventPoset, MessagesAndInternalsInterleave) {
    SyncComputation c(topology::path(2));
    const InternalId before = c.add_internal(0);   // element 2+0 = 2
    const MessageId m = c.add_message(0, 1);       // element 0
    const InternalId after0 = c.add_internal(0);   // element 3
    const InternalId after1 = c.add_internal(1);   // element 4
    (void)m;
    const Poset p = event_poset(c);
    ASSERT_EQ(p.size(), 1u + 3u);
    const std::size_t e_before = internal_element(c, before);
    const std::size_t e_after0 = internal_element(c, after0);
    const std::size_t e_after1 = internal_element(c, after1);
    EXPECT_TRUE(p.less(e_before, 0));        // before < message
    EXPECT_TRUE(p.less(0, e_after0));        // message < after on P0
    EXPECT_TRUE(p.less(0, e_after1));        // message < after on P1
    EXPECT_TRUE(p.less(e_before, e_after1));  // across processes via m
    EXPECT_TRUE(p.incomparable(e_after0, e_after1));
}

TEST(EventPoset, InternalEventsOnIsolatedProcessesAreConcurrent) {
    SyncComputation c(topology::path(3));
    const InternalId a = c.add_internal(0);
    const InternalId b = c.add_internal(2);
    const Poset p = event_poset(c);
    EXPECT_TRUE(
        p.incomparable(internal_element(c, a), internal_element(c, b)));
}

TEST(Generator, MessageCountHonored) {
    Rng rng(64);
    WorkloadOptions options;
    options.num_messages = 123;
    const SyncComputation c =
        random_computation(topology::ring(6), options, rng);
    EXPECT_EQ(c.num_messages(), 123u);
    EXPECT_EQ(c.num_internal_events(), 0u);
}

TEST(Generator, InternalRateProducesEvents) {
    Rng rng(65);
    WorkloadOptions options;
    options.num_messages = 200;
    options.internal_rate = 1.0;
    const SyncComputation c =
        random_computation(topology::ring(6), options, rng);
    EXPECT_GT(c.num_internal_events(), 100u);
    EXPECT_LT(c.num_internal_events(), 400u);
}

TEST(Generator, ProcessBiasedEndpoints) {
    Rng rng(66);
    WorkloadOptions options;
    options.num_messages = 150;
    options.edge_uniform = false;
    const SyncComputation c =
        random_computation(topology::star(10), options, rng);
    EXPECT_EQ(c.num_messages(), 150u);
    // Every message must still use a topology edge (the star's center).
    for (const SyncMessage& m : c.messages()) {
        EXPECT_TRUE(m.sender == 0 || m.receiver == 0);
    }
}

TEST(Generator, Fig6ComputationShape) {
    const SyncComputation c = paper_fig6_computation();
    EXPECT_EQ(c.num_processes(), 5u);
    EXPECT_EQ(c.num_messages(), 5u);
    EXPECT_EQ(c.message(2).sender, 1u);    // m3: P2 -> P3
    EXPECT_EQ(c.message(2).receiver, 2u);
    // Width 2, per the paper's offline remark.
    EXPECT_EQ(message_poset(c).size(), 5u);
}

TEST(Generator, RejectsEdgelessTopology) {
    Rng rng(67);
    WorkloadOptions options;
    EXPECT_THROW(random_computation(Graph(4), options, rng),
                 std::invalid_argument);
}

TEST(SyncComputation, ToStringFormat) {
    const SyncComputation c = paper_fig1_computation();
    const std::string s = c.to_string();
    EXPECT_NE(s.find("m1: P1 -> P2"), std::string::npos);
    EXPECT_NE(s.find("m6: P2 -> P3"), std::string::npos);
}

}  // namespace
}  // namespace syncts
