#include <gtest/gtest.h>

#include <vector>

#include "clocks/offline_timestamper.hpp"
#include "clocks/online_clock.hpp"
#include "core/causality.hpp"
#include "decomp/cover_decomposer.hpp"
#include "graph/generators.hpp"
#include "trace/ground_truth.hpp"

/// Exhaustive small-case verification: enumerate EVERY synchronous
/// computation up to a message-count bound on small topologies (each
/// instant chooses any directed channel) and check the paper's central
/// equivalences on all of them. Random sweeps sample the space; these
/// tests cover it.

namespace syncts {
namespace {

/// All directed channels of g.
std::vector<std::pair<ProcessId, ProcessId>> directed_channels(
    const Graph& g) {
    std::vector<std::pair<ProcessId, ProcessId>> result;
    for (const Edge& e : g.edges()) {
        result.emplace_back(e.u, e.v);
        result.emplace_back(e.v, e.u);
    }
    return result;
}

/// Calls fn(computation) for every message sequence of exactly `length`.
template <typename Fn>
void for_each_computation(const Graph& g, std::size_t length, Fn&& fn) {
    const auto channels = directed_channels(g);
    std::vector<std::size_t> choice(length, 0);
    for (;;) {
        SyncComputation c(g);
        for (const std::size_t k : choice) {
            c.add_message(channels[k].first, channels[k].second);
        }
        fn(c);
        // Odometer increment.
        std::size_t position = 0;
        while (position < length && ++choice[position] == channels.size()) {
            choice[position] = 0;
            ++position;
        }
        if (position == length) return;
    }
}

TEST(Exhaustive, Theorem4OnPath3UpToFourMessages) {
    const Graph g = topology::path(3);  // 4 directed channels
    auto decomposition = std::make_shared<const EdgeDecomposition>(
        default_decomposition(g));
    std::size_t checked = 0;
    for (std::size_t length = 1; length <= 4; ++length) {
        for_each_computation(g, length, [&](const SyncComputation& c) {
            OnlineTimestamper timestamper(decomposition);
            const auto stamps = timestamper.timestamp_computation(c);
            ASSERT_EQ(encoding_mismatches(message_poset(c), stamps), 0u)
                << c.to_string();
            ++checked;
        });
    }
    EXPECT_EQ(checked, 4u + 16u + 64u + 256u);
}

TEST(Exhaustive, Theorem4OnPath4UpToThreeMessages) {
    // Path of 4 processes: the smallest topology with concurrency.
    const Graph g = topology::path(4);  // 6 directed channels
    auto decomposition = std::make_shared<const EdgeDecomposition>(
        default_decomposition(g));
    std::size_t checked = 0;
    for (std::size_t length = 1; length <= 3; ++length) {
        for_each_computation(g, length, [&](const SyncComputation& c) {
            OnlineTimestamper timestamper(decomposition);
            const auto stamps = timestamper.timestamp_computation(c);
            ASSERT_EQ(encoding_mismatches(message_poset(c), stamps), 0u)
                << c.to_string();
            ++checked;
        });
    }
    EXPECT_EQ(checked, 6u + 36u + 216u);
}

TEST(Exhaustive, Theorem4OnTriangleUpToFourMessages) {
    // Triangle: one component, totally ordered (Lemma 1) — and the
    // decomposition really uses a triangle group.
    const Graph g = topology::triangle();
    auto decomposition = std::make_shared<const EdgeDecomposition>(
        default_decomposition(g));
    ASSERT_EQ(decomposition->size(), 1u);
    for (std::size_t length = 1; length <= 4; ++length) {
        for_each_computation(g, length, [&](const SyncComputation& c) {
            OnlineTimestamper timestamper(decomposition);
            const auto stamps = timestamper.timestamp_computation(c);
            const Poset truth = message_poset(c);
            ASSERT_EQ(encoding_mismatches(truth, stamps), 0u);
            ASSERT_TRUE(messages_totally_ordered(truth));
        });
    }
}

TEST(Exhaustive, OfflineAlgorithmOnPath4UpToThreeMessages) {
    const Graph g = topology::path(4);
    for (std::size_t length = 1; length <= 3; ++length) {
        for_each_computation(g, length, [&](const SyncComputation& c) {
            const OfflineResult offline = offline_timestamps(c);
            const Poset truth = message_poset(c);
            ASSERT_EQ(encoding_mismatches(truth, offline.timestamps), 0u)
                << c.to_string();
            ASSERT_LE(offline.width, c.num_processes() / 2);
            ASSERT_TRUE(realizes(truth, offline.realizer));
        });
    }
}

TEST(Exhaustive, K4WithTriangleDecompositionUpToThreeMessages) {
    // K4's default decomposition is 1 star + 1 triangle: both group kinds
    // exercised in one exhaustive space (12 directed channels).
    const Graph g = topology::complete(4);
    auto decomposition = std::make_shared<const EdgeDecomposition>(
        default_decomposition(g));
    ASSERT_EQ(decomposition->triangle_count(), 1u);
    for (std::size_t length = 1; length <= 3; ++length) {
        for_each_computation(g, length, [&](const SyncComputation& c) {
            OnlineTimestamper timestamper(decomposition);
            const auto stamps = timestamper.timestamp_computation(c);
            ASSERT_EQ(encoding_mismatches(message_poset(c), stamps), 0u)
                << c.to_string();
        });
    }
}

}  // namespace
}  // namespace syncts
