#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "clocks/online_clock.hpp"
#include "obs/metrics.hpp"
#include "decomp/cover_decomposer.hpp"
#include "decomp/edge_decomposition.hpp"
#include "graph/generators.hpp"
#include "runtime/async_sim.hpp"
#include "runtime/fault_plan.hpp"
#include "runtime/synchronizer.hpp"
#include "test_util.hpp"

/// Targeted fault scenarios for the rendezvous protocol, each small enough
/// to state exact expected vectors. The direction of every recovery path
/// is pinned: lost REQ (receiver never saw it → retransmit processed
/// fresh), lost ACK (receiver committed → cached ACK replayed, no second
/// merge+increment), duplicated delivery (sequence dedup), reordering
/// (extra delays), and corruption (checksum reject + retransmit).

namespace syncts {
namespace {

constexpr std::uint32_t kReqKind = 0;
constexpr std::uint32_t kAckKind = 1;

/// Two processes, one channel, two messages 0 -> 1. With the single-edge
/// decomposition d = 1 and the exact stamps are (1) then (2).
struct PairFixture {
    std::shared_ptr<const EdgeDecomposition> decomposition;
    SyncComputation script;

    PairFixture()
        : decomposition(std::make_shared<const EdgeDecomposition>(
              trivial_complete_decomposition(topology::path(2)))),
          script(topology::path(2)) {
        script.add_message(0, 1);
        script.add_message(0, 1);
    }
};

/// Three processes on a path, groups fixed by hand so the expected
/// vectors are stable: group 0 = edge {0,1}, group 1 = edge {1,2}.
/// Script: m0: 0->1, m1: 1->2, m2: 0->1, m3: 2->1.
/// Fig. 5 by hand: (1,0), (1,1), (2,1), (2,2).
struct TriFixture {
    std::shared_ptr<const EdgeDecomposition> decomposition;
    SyncComputation script;

    TriFixture()
        : decomposition(make_decomposition()), script(topology::path(3)) {
        script.add_message(0, 1);
        script.add_message(1, 2);
        script.add_message(0, 1);
        script.add_message(2, 1);
    }

    static std::shared_ptr<const EdgeDecomposition> make_decomposition() {
        EdgeDecomposition decomposition(topology::path(3));
        const Edge lo = Edge::make(0, 1);
        const Edge hi = Edge::make(1, 2);
        decomposition.add_star(0, {&lo, 1});
        decomposition.add_star(2, {&hi, 1});
        return std::make_shared<const EdgeDecomposition>(
            std::move(decomposition));
    }

    static std::vector<VectorTimestamp> expected() {
        return {VectorTimestamp({1, 0}), VectorTimestamp({1, 1}),
                VectorTimestamp({2, 1}), VectorTimestamp({2, 2})};
    }
};

/// One run plus its protocol counters, read back from a fresh metrics
/// registry (the runtime no longer returns a stats struct; the `sync_*`
/// counters are the interface — docs/OBSERVABILITY.md).
struct CountedRun {
    SynchronizerResult result;
    std::uint64_t retransmits = 0;
    std::uint64_t timeouts = 0;
    std::uint64_t req_duplicates = 0;
    std::uint64_t ack_duplicates = 0;
    std::uint64_t ack_replays = 0;
    std::uint64_t corrupt_rejects = 0;

    /// Every event where a duplicate frame was absorbed (dropped or
    /// answered from the ACK cache) — the legacy dup_drops aggregation.
    std::uint64_t duplicate_suppressions() const {
        return req_duplicates + ack_duplicates + ack_replays;
    }
};

CountedRun run_with_counters(
    const std::shared_ptr<const EdgeDecomposition>& decomposition,
    const SyncComputation& script, SynchronizerOptions options) {
    obs::MetricsRegistry metrics;
    options.metrics = &metrics;
    CountedRun run{run_rendezvous_protocol(decomposition, script, options)};
    run.retransmits = metrics.counter("sync_retransmits").value();
    run.timeouts = metrics.counter("sync_timeouts").value();
    run.req_duplicates = metrics.counter("sync_req_duplicates").value();
    run.ack_duplicates = metrics.counter("sync_ack_duplicates").value();
    run.ack_replays = metrics.counter("sync_ack_replays").value();
    run.corrupt_rejects =
        metrics.counter("sync_frames_corrupt_rejected").value();
    return run;
}

void expect_script_stamps(const SynchronizerResult& result,
                          const std::vector<VectorTimestamp>& expected) {
    ASSERT_EQ(result.message_stamps.size(), expected.size());
    for (std::size_t i = 0; i < result.message_stamps.size(); ++i) {
        EXPECT_EQ(result.message_stamps[i],
                  expected[result.script_message[i]])
            << "realized message " << i;
    }
}

TEST(FaultInjection, LosslessRunStaysTwoPacketsPerMessage) {
    const PairFixture fx;
    const CountedRun run = run_with_counters(fx.decomposition, fx.script,
                                             SynchronizerOptions{});
    expect_script_stamps(run.result,
                         {VectorTimestamp(std::vector<std::uint64_t>{1}),
                          VectorTimestamp(std::vector<std::uint64_t>{2})});
    EXPECT_EQ(run.result.packets, 4u);
    EXPECT_EQ(run.retransmits, 0u);
    EXPECT_EQ(run.timeouts, 0u);
    EXPECT_EQ(run.duplicate_suppressions(), 0u);
    EXPECT_EQ(run.corrupt_rejects, 0u);
    EXPECT_EQ(run.result.network_faults.total_faults(), 0u);
}

TEST(FaultInjection, LostReqIsRetransmitted) {
    const PairFixture fx;
    SynchronizerOptions options;
    options.faults.targeted_drops.push_back(
        {.source = 0, .destination = 1, .kind = kReqKind, .occurrence = 1});
    const CountedRun run =
        run_with_counters(fx.decomposition, fx.script, options);
    expect_script_stamps(run.result,
                         {VectorTimestamp(std::vector<std::uint64_t>{1}),
                          VectorTimestamp(std::vector<std::uint64_t>{2})});
    // The dropped REQ never reached P1: recovery is a fresh retransmit,
    // not an ACK replay.
    EXPECT_EQ(run.result.network_faults.targeted_drops, 1u);
    EXPECT_GE(run.retransmits, 1u);
    EXPECT_GE(run.timeouts, 1u);
    EXPECT_EQ(run.ack_replays, 0u);
    EXPECT_EQ(run.result.packets, 4u);  // drop + resend: still 4 delivered
}

TEST(FaultInjection, LostAckReplaysCachedAckWithoutDoubleIncrement) {
    const PairFixture fx;
    SynchronizerOptions options;
    options.faults.targeted_drops.push_back(
        {.source = 1, .destination = 0, .kind = kAckKind, .occurrence = 1});
    const CountedRun run =
        run_with_counters(fx.decomposition, fx.script, options);
    // P1 committed m0 before its ACK was lost; the retransmitted REQ must
    // hit the duplicate path and replay the cached ACK. A second
    // merge+increment would stamp the messages (2) and (3) instead.
    expect_script_stamps(run.result,
                         {VectorTimestamp(std::vector<std::uint64_t>{1}),
                          VectorTimestamp(std::vector<std::uint64_t>{2})});
    EXPECT_EQ(run.result.network_faults.targeted_drops, 1u);
    EXPECT_GE(run.retransmits, 1u);
    EXPECT_GE(run.ack_replays, 1u);
    EXPECT_GE(run.duplicate_suppressions(), 1u);
}

TEST(FaultInjection, TargetedNthPacketRuleCounts) {
    const PairFixture fx;
    SynchronizerOptions options;
    // Drop the *second* REQ on the channel: m0 completes untouched, m1's
    // first attempt vanishes.
    options.faults.targeted_drops.push_back(
        {.source = 0, .destination = 1, .kind = kReqKind, .occurrence = 2});
    const CountedRun run =
        run_with_counters(fx.decomposition, fx.script, options);
    expect_script_stamps(run.result,
                         {VectorTimestamp(std::vector<std::uint64_t>{1}),
                          VectorTimestamp(std::vector<std::uint64_t>{2})});
    EXPECT_EQ(run.result.network_faults.targeted_drops, 1u);
    EXPECT_GE(run.retransmits, 1u);
}

TEST(FaultInjection, DuplicatedPacketsAreDeduplicated) {
    const TriFixture fx;
    SynchronizerOptions options;
    options.faults.duplicate_probability = 1.0;  // every packet twice
    const CountedRun run =
        run_with_counters(fx.decomposition, fx.script, options);
    // Sequence-number dedup must make the duplicate REQ a no-op on the
    // receiver clock and the duplicate ACK a no-op on the sender clock;
    // any double merge+increment shifts the hand-computed vectors.
    expect_script_stamps(run.result, TriFixture::expected());
    EXPECT_GT(run.result.network_faults.duplicated, 0u);
    EXPECT_GT(run.duplicate_suppressions(), 0u);
}

TEST(FaultInjection, ReorderedDeliveryStampsExactly) {
    const TriFixture fx;
    for (std::uint64_t seed = 1; seed <= 8; ++seed) {
        SynchronizerOptions options;
        options.seed = seed;
        options.latency_lo = 1;
        options.latency_hi = 10;
        options.faults.seed = seed * 31;
        options.faults.delay_probability = 0.6;
        options.faults.max_extra_delay = 80;
        const SynchronizerResult result =
            run_rendezvous_protocol(fx.decomposition, fx.script, options);
        expect_script_stamps(result, TriFixture::expected());
    }
}

TEST(FaultInjection, CorruptedFramesAreRejectedAndRecovered) {
    const TriFixture fx;
    std::uint64_t rejects = 0;
    std::uint64_t corrupted = 0;
    for (std::uint64_t seed = 1; seed <= 12; ++seed) {
        SynchronizerOptions options;
        options.seed = seed;
        options.faults.seed = seed * 77;
        options.faults.corrupt_probability = 0.35;
        const CountedRun run =
            run_with_counters(fx.decomposition, fx.script, options);
        expect_script_stamps(run.result, TriFixture::expected());
        // Every corrupted payload must be caught at the wire layer —
        // garbage never reaches a clock.
        EXPECT_EQ(run.corrupt_rejects, run.result.network_faults.corrupted);
        rejects += run.corrupt_rejects;
        corrupted += run.result.network_faults.corrupted;
    }
    EXPECT_GT(corrupted, 0u);
    EXPECT_EQ(rejects, corrupted);
}

TEST(FaultInjection, FullyDeadChannelThrowsSynchronizerStalled) {
    const PairFixture fx;
    SynchronizerOptions options;
    options.faults.drop_probability = 1.0;  // the network eats everything
    options.max_retransmits = 5;
    EXPECT_THROW(run_rendezvous_protocol(fx.decomposition, fx.script, options),
                 SynchronizerStalled);
}

TEST(FaultInjection, ExplicitTimeoutEnablesRetransmissionWithoutFaults) {
    // A reliable network with an aggressive explicit RTO: spurious
    // retransmits occur (the receiver is slow to reach its receive) and
    // must all be absorbed by dedup.
    const TriFixture fx;
    SynchronizerOptions options;
    options.latency_lo = 1;
    options.latency_hi = 30;
    options.retransmit_timeout = 2;  // far below the RTT
    const CountedRun run =
        run_with_counters(fx.decomposition, fx.script, options);
    expect_script_stamps(run.result, TriFixture::expected());
    EXPECT_GT(run.retransmits, 0u);
}

TEST(FaultInjection, InvalidPlansAreRejected) {
    const PairFixture fx;
    SynchronizerOptions options;
    options.faults.drop_probability = 1.5;
    EXPECT_THROW(run_rendezvous_protocol(fx.decomposition, fx.script, options),
                 std::invalid_argument);
    options.faults.drop_probability = 0.0;
    options.faults.targeted_drops.push_back(
        {.source = 0, .destination = 1, .kind = kReqKind, .occurrence = 0});
    EXPECT_THROW(run_rendezvous_protocol(fx.decomposition, fx.script, options),
                 std::invalid_argument);
}

TEST(FaultInjection, InjectorStatsCountEachFaultKind) {
    FaultPlan plan;
    plan.seed = 7;
    plan.drop_probability = 0.3;
    plan.duplicate_probability = 0.3;
    plan.corrupt_probability = 0.3;
    plan.delay_probability = 0.3;
    plan.max_extra_delay = 9;
    FaultInjector injector(plan);
    std::uint64_t deliveries = 0;
    for (int i = 0; i < 2000; ++i) {
        deliveries += injector.disposition(0, 1, kReqKind).size();
    }
    const FaultStats& stats = injector.stats();
    EXPECT_GT(stats.dropped, 0u);
    EXPECT_GT(stats.duplicated, 0u);
    EXPECT_GT(stats.corrupted, 0u);
    EXPECT_GT(stats.delayed, 0u);
    EXPECT_EQ(deliveries, 2000 - stats.dropped + stats.duplicated);
}

TEST(FaultInjection, CorruptBodyAlwaysChangesBytes) {
    FaultPlan plan;
    plan.corrupt_probability = 1.0;
    FaultInjector injector(plan);
    Rng rng(404);
    for (int trial = 0; trial < 500; ++trial) {
        std::vector<std::uint8_t> body(1 + rng.below(40));
        for (auto& byte : body) {
            byte = static_cast<std::uint8_t>(rng.below(256));
        }
        const std::vector<std::uint8_t> original = body;
        injector.corrupt_body(body);
        EXPECT_NE(body, original);
    }
}

}  // namespace
}  // namespace syncts
