#include <gtest/gtest.h>

// The allocating encode_frame is deprecated (encode_frame_into is the
// supported form) but stays covered here until it is removed.
#if defined(__GNUC__) || defined(__clang__)
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"
#endif

#include "clocks/online_clock.hpp"
#include "clocks/wire.hpp"
#include "common/rng.hpp"
#include "core/sync_system.hpp"
#include "graph/generators.hpp"
#include "trace/generator.hpp"

namespace syncts {
namespace {

TEST(Varint, SmallValuesAreOneByte) {
    std::vector<std::uint8_t> out;
    encode_varint(0, out);
    encode_varint(1, out);
    encode_varint(127, out);
    EXPECT_EQ(out.size(), 3u);
    std::size_t offset = 0;
    EXPECT_EQ(decode_varint(out, offset), 0u);
    EXPECT_EQ(decode_varint(out, offset), 1u);
    EXPECT_EQ(decode_varint(out, offset), 127u);
    EXPECT_EQ(offset, out.size());
}

TEST(Varint, BoundaryValuesRoundTrip) {
    for (const std::uint64_t value :
         {0ull, 127ull, 128ull, 16383ull, 16384ull, 0xFFFFFFFFull,
          0xFFFFFFFFFFFFFFFFull}) {
        std::vector<std::uint8_t> out;
        encode_varint(value, out);
        std::size_t offset = 0;
        EXPECT_EQ(decode_varint(out, offset), value);
        EXPECT_EQ(offset, out.size());
    }
}

TEST(Varint, TruncatedInputRejected) {
    std::vector<std::uint8_t> out;
    encode_varint(300, out);
    out.pop_back();
    std::size_t offset = 0;
    EXPECT_THROW(decode_varint(out, offset), std::invalid_argument);
}

TEST(Varint, OverlongInputRejected) {
    const std::vector<std::uint8_t> bytes(11, 0x80);
    std::size_t offset = 0;
    EXPECT_THROW(decode_varint(bytes, offset), std::invalid_argument);
}

TEST(TimestampWire, RoundTrip) {
    const VectorTimestamp stamp(
        std::vector<std::uint64_t>{0, 1, 127, 128, 1'000'000});
    const auto bytes = encode_timestamp(stamp);
    EXPECT_EQ(bytes.size(), encoded_size(stamp));
    EXPECT_EQ(decode_timestamp(bytes), stamp);
}

TEST(TimestampWire, EmptyTimestamp) {
    const VectorTimestamp stamp(0);
    const auto bytes = encode_timestamp(stamp);
    EXPECT_EQ(bytes.size(), 1u);
    EXPECT_EQ(decode_timestamp(bytes), stamp);
}

TEST(TimestampWire, MalformedInputs) {
    EXPECT_THROW(decode_timestamp({}), std::invalid_argument);
    // Claims width 5 with no component bytes.
    const std::vector<std::uint8_t> lying{5};
    EXPECT_THROW(decode_timestamp(lying), std::invalid_argument);
    // Trailing garbage after a valid stamp.
    auto bytes = encode_timestamp(VectorTimestamp(2));
    bytes.push_back(0);
    EXPECT_THROW(decode_timestamp(bytes), std::invalid_argument);
}

TEST(TimestampWire, FreshClocksCostWidthPlusOneBytes) {
    // The practical O(d) claim: a fresh width-4 clock costs 5 bytes.
    EXPECT_EQ(encoded_size(VectorTimestamp(4)), 5u);
    EXPECT_EQ(encoded_size(VectorTimestamp(64)), 65u);
}

TEST(TimestampWire, ExpectedWidthOverloadRejectsWrongWidth) {
    const VectorTimestamp stamp(std::vector<std::uint64_t>{3, 1, 4});
    const auto bytes = encode_timestamp(stamp);
    EXPECT_EQ(decode_timestamp(bytes, 3), stamp);
    // Width is validated against the decomposition size d before any
    // component is decoded or allocated.
    for (const std::size_t wrong : {0u, 2u, 4u, 1'000'000u}) {
        try {
            decode_timestamp(bytes, wrong);
            FAIL() << "width " << wrong << " accepted";
        } catch (const WireError& e) {
            EXPECT_EQ(e.kind(), WireError::Kind::width_mismatch);
        }
    }
}

TEST(TimestampWire, TypedErrorsCarryTheirKind) {
    try {
        decode_timestamp({});
        FAIL();
    } catch (const WireError& e) {
        EXPECT_EQ(e.kind(), WireError::Kind::truncated);
    }
    const std::vector<std::uint8_t> lying{5};
    try {
        decode_timestamp(lying);
        FAIL();
    } catch (const WireError& e) {
        EXPECT_EQ(e.kind(), WireError::Kind::length_mismatch);
    }
    auto trailing = encode_timestamp(VectorTimestamp(2));
    trailing.push_back(0);
    try {
        decode_timestamp(trailing);
        FAIL();
    } catch (const WireError& e) {
        EXPECT_EQ(e.kind(), WireError::Kind::trailing_bytes);
    }
}

TEST(Checksum, Fnv1a64KnownVectors) {
    EXPECT_EQ(fnv1a64({}), 0xCBF29CE484222325ull);
    const std::vector<std::uint8_t> a{'a'};
    EXPECT_EQ(fnv1a64(a), 0xAF63DC4C8601EC8Cull);
}

TEST(SyncFrameWire, RoundTrip) {
    const SyncFrame frame{
        .sequence = 1234,
        .message = 9,
        .stamp = VectorTimestamp(std::vector<std::uint64_t>{7, 0, 300})};
    const auto bytes = encode_frame(frame);
    EXPECT_EQ(decode_frame(bytes, 3), frame);
}

TEST(SyncFrameWire, EveryByteFlipIsDetected) {
    const SyncFrame frame{
        .sequence = 2,
        .message = 5,
        .stamp = VectorTimestamp(std::vector<std::uint64_t>{1, 130})};
    const auto bytes = encode_frame(frame);
    for (std::size_t byte = 0; byte < bytes.size(); ++byte) {
        for (int bit = 0; bit < 8; ++bit) {
            auto corrupted = bytes;
            corrupted[byte] ^= static_cast<std::uint8_t>(1u << bit);
            EXPECT_THROW(decode_frame(corrupted, 2), WireError)
                << "byte " << byte << " bit " << bit;
        }
    }
}

TEST(SyncFrameWire, TruncationAndExtensionAreDetected) {
    const SyncFrame frame{
        .sequence = 3,
        .message = 1,
        .stamp = VectorTimestamp(std::vector<std::uint64_t>{42})};
    const auto bytes = encode_frame(frame);
    for (std::size_t keep = 0; keep < bytes.size(); ++keep) {
        const std::vector<std::uint8_t> cut(bytes.begin(),
                                            bytes.begin() + static_cast<std::ptrdiff_t>(keep));
        EXPECT_THROW(decode_frame(cut, 1), WireError) << "kept " << keep;
    }
    auto extended = bytes;
    extended.push_back(0x00);
    EXPECT_THROW(decode_frame(extended, 1), WireError);
}

TEST(SyncFrameWire, WidthMismatchRejectedBeforeComponents) {
    const SyncFrame frame{
        .sequence = 1,
        .message = 0,
        .stamp = VectorTimestamp(std::vector<std::uint64_t>{5, 6})};
    const auto bytes = encode_frame(frame);
    try {
        decode_frame(bytes, 3);
        FAIL();
    } catch (const WireError& e) {
        EXPECT_EQ(e.kind(), WireError::Kind::width_mismatch);
    }
}

TEST(SyncFrameWire, RealWorkloadFramesRoundTrip) {
    const Graph g = topology::client_server(2, 5);
    const SyncSystem system{Graph(g)};
    Rng rng(4242);
    WorkloadOptions options;
    options.num_messages = 150;
    const SyncComputation c = random_computation(g, options, rng);
    auto timestamper = system.make_timestamper();
    std::uint64_t sequence = 0;
    for (const SyncMessage& m : c.messages()) {
        const SyncFrame frame{
            .sequence = ++sequence,
            .message = m.id,
            .stamp = timestamper.timestamp_message(m.sender, m.receiver)};
        const auto bytes = encode_frame(frame);
        EXPECT_EQ(decode_frame(bytes, frame.stamp.width()), frame);
    }
}

TEST(TimestampWire, RealWorkloadRoundTrips) {
    const Graph g = topology::client_server(3, 9);
    const SyncSystem system{Graph(g)};
    Rng rng(909);
    WorkloadOptions options;
    options.num_messages = 300;
    const SyncComputation c = random_computation(g, options, rng);
    auto timestamper = system.make_timestamper();
    std::size_t total_bytes = 0;
    for (const SyncMessage& m : c.messages()) {
        const VectorTimestamp stamp =
            timestamper.timestamp_message(m.sender, m.receiver);
        const auto bytes = encode_timestamp(stamp);
        total_bytes += bytes.size();
        EXPECT_EQ(decode_timestamp(bytes), stamp);
    }
    // 300 messages over d=3: varints keep the piggyback close to d+1
    // bytes even as counters grow into the hundreds (2-byte varints).
    EXPECT_LT(total_bytes, 300u * (2 * 3 + 1));
}

}  // namespace
}  // namespace syncts
