#include <gtest/gtest.h>

#include "clocks/online_clock.hpp"
#include "core/causality.hpp"
#include "test_util.hpp"
#include "trace/ground_truth.hpp"

/// Sensitivity ("mutation") tests: the verification harness itself must be
/// able to notice broken timestamps. Each test corrupts correct output in
/// a specific way and asserts the checkers flag it — guarding against the
/// failure mode where property tests pass because the oracle is blind.

namespace syncts {
namespace {

struct Fixture {
    SyncComputation computation;
    Poset truth;
    std::vector<VectorTimestamp> stamps;
};

Fixture make_fixture() {
    SyncComputation c = testing::random_workload(
        topology::client_server(2, 4), 60, 0.0, 1300);
    Poset truth = message_poset(c);
    auto stamps = online_timestamps(c);
    return {std::move(c), std::move(truth), std::move(stamps)};
}

TEST(Mutation, CorrectStampsPass) {
    const Fixture f = make_fixture();
    EXPECT_EQ(encoding_mismatches(f.truth, f.stamps), 0u);
}

TEST(Mutation, IncrementedComponentIsDetected) {
    Fixture f = make_fixture();
    f.stamps[10].increment(0);
    EXPECT_GT(encoding_mismatches(f.truth, f.stamps), 0u);
}

TEST(Mutation, SwappedStampsAreDetected) {
    Fixture f = make_fixture();
    // Find a comparable pair and swap their stamps.
    for (MessageId a = 0; a < f.stamps.size(); ++a) {
        for (MessageId b = a + 1; b < f.stamps.size(); ++b) {
            if (f.truth.less(a, b)) {
                std::swap(f.stamps[a], f.stamps[b]);
                EXPECT_GT(encoding_mismatches(f.truth, f.stamps), 0u);
                return;
            }
        }
    }
    FAIL() << "no comparable pair in fixture";
}

TEST(Mutation, ZeroedStampIsDetected) {
    Fixture f = make_fixture();
    f.stamps[20] = VectorTimestamp(f.stamps[20].width());
    EXPECT_GT(encoding_mismatches(f.truth, f.stamps), 0u);
}

TEST(Mutation, DuplicatedStampIsDetected) {
    Fixture f = make_fixture();
    // Two distinct messages with identical stamps cannot encode a poset
    // in which one precedes the other or in which they're concurrent —
    // find a pair where the duplicate breaks something.
    f.stamps[5] = f.stamps[6];
    EXPECT_GT(encoding_mismatches(f.truth, f.stamps), 0u);
}

TEST(Mutation, SkippedIncrementIsDetected) {
    // Re-run the protocol but drop one increment: emulate by decrementing
    // a component of one stamp (and all later stamps keep the real
    // values, so dominance breaks somewhere).
    Fixture f = make_fixture();
    auto components = std::vector<std::uint64_t>(
        f.stamps[30].components().begin(), f.stamps[30].components().end());
    for (auto& value : components) {
        if (value > 0) {
            --value;
            break;
        }
    }
    f.stamps[30] = VectorTimestamp(components);
    EXPECT_GT(encoding_mismatches(f.truth, f.stamps), 0u);
}

TEST(Mutation, ConsistencyCheckerIsWeakerThanEncoding) {
    // Lamport-style over-ordering passes consistency but fails encoding —
    // the two checkers must actually differ in strength.
    Fixture f = make_fixture();
    std::vector<VectorTimestamp> scalarized;
    std::uint64_t counter = 0;
    for (std::size_t i = 0; i < f.stamps.size(); ++i) {
        scalarized.emplace_back(std::vector<std::uint64_t>{++counter});
    }
    EXPECT_EQ(consistency_violations(f.truth, scalarized), 0u);
    EXPECT_GT(encoding_mismatches(f.truth, scalarized), 0u);
}

}  // namespace
}  // namespace syncts
