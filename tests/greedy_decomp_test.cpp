#include <gtest/gtest.h>

#include <algorithm>

#include <vector>

#include "decomp/greedy_decomposer.hpp"
#include "graph/generators.hpp"
#include "graph/vertex_cover.hpp"
#include "test_util.hpp"

namespace syncts {
namespace {

TEST(GreedyDecomposition, EmptyAndTinyGraphs) {
    EXPECT_EQ(greedy_edge_decomposition(Graph(5)).size(), 0u);
    EXPECT_EQ(greedy_edge_decomposition(topology::path(2)).size(), 1u);
    EXPECT_EQ(greedy_edge_decomposition(topology::triangle()).size(), 1u);
}

TEST(GreedyDecomposition, StarTopologyIsOneGroup) {
    const auto d = greedy_edge_decomposition(topology::star(30));
    EXPECT_EQ(d.size(), 1u);
    EXPECT_EQ(d.group(0).root, 0u);
}

TEST(GreedyDecomposition, LoneTriangleIsOneTriangleGroup) {
    const auto d = greedy_edge_decomposition(topology::triangle());
    EXPECT_EQ(d.size(), 1u);
    EXPECT_EQ(d.group(0).kind, GroupKind::triangle);
}

TEST(GreedyDecomposition, DisjointTrianglesOptimal) {
    // α = t and the triangles have degree-2 corners, so step 2 finds all.
    const auto d = greedy_edge_decomposition(topology::disjoint_triangles(6));
    EXPECT_EQ(d.size(), 6u);
    EXPECT_EQ(d.triangle_count(), 6u);
}

TEST(GreedyDecomposition, PathDecomposition) {
    // A path of 2k (or 2k+1) edges needs k (or k+1) stars.
    EXPECT_EQ(greedy_edge_decomposition(topology::path(3)).size(), 1u);
    EXPECT_EQ(greedy_edge_decomposition(topology::path(5)).size(), 2u);
    EXPECT_EQ(greedy_edge_decomposition(topology::path(9)).size(), 4u);
}

TEST(GreedyDecomposition, PaperFig4TreeGivesThreeStars) {
    const auto d = greedy_edge_decomposition(topology::paper_fig4_tree());
    EXPECT_EQ(d.size(), 3u);
    EXPECT_EQ(d.star_count(), 3u);
    std::vector<ProcessId> roots;
    for (const EdgeGroup& g : d.groups()) roots.push_back(g.root);
    std::ranges::sort(roots);
    EXPECT_EQ(roots, (std::vector<ProcessId>{0, 1, 2}));
}

TEST(GreedyDecomposition, K5MatchesFig3a) {
    // Greedy on K5: heavy edge spawns two stars, the remaining K3 is a
    // triangle — 2 stars + 1 triangle, exactly Fig. 3(a).
    const auto d = greedy_edge_decomposition(topology::complete(5));
    EXPECT_EQ(d.size(), 3u);
    EXPECT_EQ(d.star_count(), 2u);
    EXPECT_EQ(d.triangle_count(), 1u);
}

TEST(GreedyDecomposition, CompleteGraphSizes) {
    // Odd N: (N−3)/2 rounds of two stars + final triangle = N−2 groups.
    // Even N: N/2−1 rounds of two stars + final lone edge = N−1 groups.
    EXPECT_EQ(greedy_edge_decomposition(topology::complete(7)).size(), 5u);
    EXPECT_EQ(greedy_edge_decomposition(topology::complete(9)).size(), 7u);
    EXPECT_EQ(greedy_edge_decomposition(topology::complete(4)).size(), 3u);
    EXPECT_EQ(greedy_edge_decomposition(topology::complete(6)).size(), 5u);
}

TEST(GreedyDecomposition, PaperFig8TraceReproduced) {
    // Section 3.3's sample run on the Fig. 2(b) topology:
    //   step 1: one pendant star; step 2: the triangle (e,f,g);
    //   step 3: two stars from the heaviest edge; loop back to step 1:
    //   the leftover edge (j,k) as a star. Total: 4 stars + 1 triangle.
    std::vector<GreedyTraceEntry> trace;
    const auto d =
        greedy_edge_decomposition_traced(topology::paper_fig2b(), trace);
    EXPECT_EQ(d.size(), 5u);
    EXPECT_EQ(d.star_count(), 4u);
    EXPECT_EQ(d.triangle_count(), 1u);

    ASSERT_EQ(trace.size(), 5u);
    EXPECT_EQ(trace[0].step, GreedyStep::pendant_star);
    EXPECT_EQ(d.group(trace[0].group).root, 1u);  // star at b
    EXPECT_EQ(trace[1].step, GreedyStep::degree2_triangle);
    EXPECT_EQ(d.group(trace[1].group).triangle, Triangle::make(4, 5, 6));
    EXPECT_EQ(trace[2].step, GreedyStep::heavy_edge_stars);
    EXPECT_EQ(trace[3].step, GreedyStep::heavy_edge_stars);
    EXPECT_EQ(trace[4].step, GreedyStep::pendant_star);
    // The final star holds exactly the (j,k) edge.
    const EdgeGroup& last = d.group(trace[4].group);
    ASSERT_EQ(last.edges.size(), 1u);
    EXPECT_EQ(last.edges[0], Edge::make(9, 10));
}

TEST(GreedyDecomposition, OptimalOnForests) {
    // Theorem 7: on acyclic graphs greedy is optimal; for forests the
    // optimum is the minimum vertex cover (only stars are possible).
    Rng rng(7);
    for (int trial = 0; trial < 15; ++trial) {
        const Graph tree = topology::random_tree(16, rng);
        const auto d = greedy_edge_decomposition(tree);
        EXPECT_EQ(d.size(), exact_vertex_cover(tree).size())
            << "trial " << trial;
        EXPECT_EQ(d.triangle_count(), 0u);
    }
}

TEST(GreedyDecomposition, CompleteAcrossSuite) {
    for (const auto& [name, graph] : testing::small_graph_suite(3)) {
        const auto d = greedy_edge_decomposition(graph);
        EXPECT_TRUE(d.complete()) << name;
    }
    for (const auto& [name, graph] : testing::topology_suite(12, 5)) {
        const auto d = greedy_edge_decomposition(graph);
        EXPECT_TRUE(d.complete()) << name;
    }
}

TEST(GreedyDecomposition, BoundedByVertexCoverPlusTrivial) {
    // The paper's Theorem 6 ratio plus Theorem 5's alternatives: greedy is
    // within 2x of optimal, and the optimal is at most min(β, N−2) — so
    // greedy is at most 2·min(β, N−2). Spot-check the weaker bound.
    for (const auto& [name, graph] : testing::small_graph_suite(9)) {
        if (graph.num_edges() == 0) continue;
        const auto d = greedy_edge_decomposition(graph);
        const std::size_t beta = exact_vertex_cover(graph).size();
        EXPECT_LE(d.size(), 2 * beta) << name;
    }
}

TEST(GreedyDecomposition, TraceCoversEveryGroup) {
    Rng rng(11);
    std::vector<GreedyTraceEntry> trace;
    const auto d = greedy_edge_decomposition_traced(
        topology::random_gnp(10, 0.4, rng), trace);
    EXPECT_EQ(trace.size(), d.size());
    for (std::size_t i = 0; i < trace.size(); ++i) {
        EXPECT_EQ(trace[i].group, i);
    }
}


TEST(GreedyDecomposition, AblationRuleStaysValidAndBounded) {
    // The step-3 rule affects only quality, never validity or the ratio
    // bound (the paper's remark after Theorem 6).
    for (const auto& [name, graph] : testing::small_graph_suite(13)) {
        const auto first =
            greedy_edge_decomposition(graph, HeavyEdgeRule::first_live);
        EXPECT_TRUE(first.complete()) << name;
        if (graph.num_edges() > 0) {
            const std::size_t beta = exact_vertex_cover(graph).size();
            EXPECT_LE(first.size(), 2 * beta) << name;
        }
    }
}

TEST(GreedyDecomposition, HeuristicNeverWorseOnSuite) {
    // Not a theorem, but expected: the most-adjacent rule should not lose
    // to first-live on this fixed suite (documents measured behaviour).
    for (const auto& [name, graph] : testing::small_graph_suite(14)) {
        const auto heavy =
            greedy_edge_decomposition(graph, HeavyEdgeRule::most_adjacent);
        const auto first =
            greedy_edge_decomposition(graph, HeavyEdgeRule::first_live);
        EXPECT_LE(heavy.size(), first.size() + 1) << name;
    }
}

}  // namespace
}  // namespace syncts
