#include <gtest/gtest.h>

#include "graph/generators.hpp"
#include "trace/ordering_classes.hpp"

namespace syncts {
namespace {

TEST(OrderingClasses, InstantMessagesAreRsc) {
    AsyncComputation c(3);
    c.add_instant_message(0, 1);
    c.add_instant_message(1, 2);
    const OrderingClasses classes = classify_ordering(c);
    EXPECT_TRUE(classes.rsc);
    EXPECT_TRUE(classes.causally_ordered);
    EXPECT_TRUE(classes.fifo);
}

TEST(OrderingClasses, CrossedMessagesAreCausalButNotRsc) {
    // The size-2 crown: FIFO and causally ordered (the sends are
    // concurrent), but no vertical-arrow drawing exists.
    AsyncComputation c(2);
    const MessageId m0 = c.new_message();
    const MessageId m1 = c.new_message();
    c.record_send(0, m0);
    c.record_send(1, m1);
    c.record_receive(0, m1);
    c.record_receive(1, m0);
    const OrderingClasses classes = classify_ordering(c);
    EXPECT_TRUE(classes.fifo);
    EXPECT_TRUE(classes.causally_ordered);
    EXPECT_FALSE(classes.rsc);
}

TEST(OrderingClasses, TriangleRaceIsFifoButNotCausal) {
    // P0 sends m1 to P2, then m2 to P1; P1 forwards (m3 to P2); P2
    // receives the forwarded m3 before the direct m1: violates causal
    // delivery, but every individual channel carries one message (FIFO).
    AsyncComputation c(3);
    const MessageId m1 = c.new_message();
    const MessageId m2 = c.new_message();
    const MessageId m3 = c.new_message();
    c.record_send(0, m1);
    c.record_send(0, m2);
    c.record_receive(1, m2);
    c.record_send(1, m3);
    c.record_receive(2, m3);
    c.record_receive(2, m1);
    const OrderingClasses classes = classify_ordering(c);
    EXPECT_TRUE(classes.fifo);
    EXPECT_FALSE(classes.causally_ordered);
    EXPECT_FALSE(classes.rsc);
}

TEST(OrderingClasses, OvertakingOnOneChannelIsNotFifo) {
    AsyncComputation c(2);
    const MessageId m1 = c.new_message();
    const MessageId m2 = c.new_message();
    c.record_send(0, m1);
    c.record_send(0, m2);
    c.record_receive(1, m2);  // m2 overtakes m1
    c.record_receive(1, m1);
    const OrderingClasses classes = classify_ordering(c);
    EXPECT_FALSE(classes.fifo);
    EXPECT_FALSE(classes.causally_ordered);
    EXPECT_FALSE(classes.rsc);
}

TEST(OrderingClasses, AsyncEventPosetShape) {
    AsyncComputation c(2);
    const MessageId m = c.add_instant_message(0, 1);
    (void)m;
    const Poset p = async_event_poset(c);
    ASSERT_EQ(p.size(), 2u);
    EXPECT_TRUE(p.less(0, 1));  // send -> receive
}

TEST(OrderingClasses, HierarchyHoldsOnRandomExecutions) {
    Rng rng(321);
    const Graph g = topology::complete(5);
    int rsc_count = 0;
    int causal_count = 0;
    int fifo_count = 0;
    for (int trial = 0; trial < 40; ++trial) {
        const double bias = trial % 2 == 0 ? 0.9 : 0.3;
        const AsyncComputation c =
            random_async_computation(g, 20, bias, rng);
        const OrderingClasses classes = classify_ordering(c);
        // The classifier itself SYNCTS_ENSUREs rsc ⟹ causal ⟹ fifo;
        // double-check from the outside.
        EXPECT_TRUE(!classes.rsc || classes.causally_ordered);
        EXPECT_TRUE(!classes.causally_ordered || classes.fifo);
        rsc_count += classes.rsc ? 1 : 0;
        causal_count += classes.causally_ordered ? 1 : 0;
        fifo_count += classes.fifo ? 1 : 0;
    }
    // With lazy delivery most executions fall out of the stricter classes;
    // the generator must produce a genuine spread.
    EXPECT_LT(rsc_count, 40);
    EXPECT_GT(fifo_count + causal_count + rsc_count, 0);
    EXPECT_LE(rsc_count, causal_count);
    EXPECT_LE(causal_count, fifo_count);
}

TEST(OrderingClasses, EagerDeliveryIsAlwaysRsc) {
    // delivery_bias = 1.0 delivers whenever possible: at most one message
    // is ever in flight, so the execution is realizably synchronous.
    Rng rng(654);
    for (int trial = 0; trial < 10; ++trial) {
        const AsyncComputation c = random_async_computation(
            topology::ring(6), 30, 1.0, rng);
        EXPECT_TRUE(classify_ordering(c).rsc) << trial;
    }
}

TEST(OrderingClasses, RequiresCompleteComputation) {
    AsyncComputation c(2);
    const MessageId m = c.new_message();
    c.record_send(0, m);
    EXPECT_THROW(classify_ordering(c), std::invalid_argument);
    EXPECT_THROW(async_event_poset(c), std::invalid_argument);
}

}  // namespace
}  // namespace syncts
