#include <gtest/gtest.h>

#include <vector>

#include "common/rng.hpp"
#include "poset/hopcroft_karp.hpp"

namespace syncts {
namespace {

/// Exhaustive maximum matching by recursion (tiny instances only).
std::size_t brute_force_matching(
    std::size_t lefts, std::size_t rights,
    const std::vector<std::pair<std::size_t, std::size_t>>& edges) {
    std::vector<char> used_right(rights, 0);
    const auto recurse = [&](auto&& self, std::size_t l) -> std::size_t {
        if (l == lefts) return 0;
        std::size_t best = self(self, l + 1);  // skip l
        for (const auto& [a, b] : edges) {
            if (a != l || used_right[b]) continue;
            used_right[b] = 1;
            best = std::max(best, 1 + self(self, l + 1));
            used_right[b] = 0;
        }
        return best;
    };
    return recurse(recurse, 0);
}

TEST(Matching, EmptyGraph) {
    BipartiteMatcher m(3, 3);
    EXPECT_EQ(m.solve(), 0u);
    EXPECT_EQ(m.match_of_left(0), BipartiteMatcher::npos);
}

TEST(Matching, PerfectMatching) {
    BipartiteMatcher m(3, 3);
    for (std::size_t i = 0; i < 3; ++i) m.add_edge(i, i);
    EXPECT_EQ(m.solve(), 3u);
    for (std::size_t i = 0; i < 3; ++i) {
        EXPECT_EQ(m.match_of_left(i), i);
        EXPECT_EQ(m.match_of_right(i), i);
    }
}

TEST(Matching, RequiresAugmentingPaths) {
    // Classic instance where greedy fails but augmenting succeeds:
    // L0-{R0,R1}, L1-{R0}.
    BipartiteMatcher m(2, 2);
    m.add_edge(0, 0);
    m.add_edge(0, 1);
    m.add_edge(1, 0);
    EXPECT_EQ(m.solve(), 2u);
}

TEST(Matching, SolveIsIdempotent) {
    BipartiteMatcher m(2, 2);
    m.add_edge(0, 0);
    m.add_edge(1, 1);
    EXPECT_EQ(m.solve(), 2u);
    EXPECT_EQ(m.solve(), 2u);
}

TEST(Matching, EdgeAfterSolveRejected) {
    BipartiteMatcher m(2, 2);
    m.solve();
    EXPECT_THROW(m.add_edge(0, 0), std::invalid_argument);
}

TEST(Matching, MatchesBruteForceOnRandomInstances) {
    Rng rng(31);
    for (int trial = 0; trial < 30; ++trial) {
        const std::size_t lefts = 2 + rng.below(6);
        const std::size_t rights = 2 + rng.below(6);
        std::vector<std::pair<std::size_t, std::size_t>> edges;
        BipartiteMatcher m(lefts, rights);
        for (std::size_t l = 0; l < lefts; ++l) {
            for (std::size_t r = 0; r < rights; ++r) {
                if (rng.chance(2, 5)) {
                    edges.emplace_back(l, r);
                    m.add_edge(l, r);
                }
            }
        }
        EXPECT_EQ(m.solve(), brute_force_matching(lefts, rights, edges))
            << "trial " << trial;
    }
}

TEST(Matching, MatchingIsConsistent) {
    Rng rng(32);
    BipartiteMatcher m(20, 20);
    for (std::size_t l = 0; l < 20; ++l) {
        for (std::size_t r = 0; r < 20; ++r) {
            if (rng.chance(1, 4)) m.add_edge(l, r);
        }
    }
    const std::size_t size = m.solve();
    std::size_t observed = 0;
    for (std::size_t l = 0; l < 20; ++l) {
        const std::size_t r = m.match_of_left(l);
        if (r == BipartiteMatcher::npos) continue;
        EXPECT_EQ(m.match_of_right(r), l);
        ++observed;
    }
    EXPECT_EQ(observed, size);
}

TEST(Matching, KoenigCoverIsValidAndTight) {
    Rng rng(33);
    for (int trial = 0; trial < 20; ++trial) {
        const std::size_t lefts = 3 + rng.below(8);
        const std::size_t rights = 3 + rng.below(8);
        BipartiteMatcher m(lefts, rights);
        std::vector<std::pair<std::size_t, std::size_t>> edges;
        for (std::size_t l = 0; l < lefts; ++l) {
            for (std::size_t r = 0; r < rights; ++r) {
                if (rng.chance(1, 3)) {
                    m.add_edge(l, r);
                    edges.emplace_back(l, r);
                }
            }
        }
        const std::size_t matched = m.solve();
        const auto [cover_left, cover_right] = m.minimum_vertex_cover();
        std::size_t cover_size = 0;
        for (const char c : cover_left) cover_size += c ? 1 : 0;
        for (const char c : cover_right) cover_size += c ? 1 : 0;
        // König: |min cover| == |max matching|, and it covers every edge.
        EXPECT_EQ(cover_size, matched) << "trial " << trial;
        for (const auto& [l, r] : edges) {
            EXPECT_TRUE(cover_left[l] || cover_right[r]);
        }
    }
}

TEST(Matching, CoverBeforeSolveRejected) {
    BipartiteMatcher m(2, 2);
    EXPECT_THROW(m.minimum_vertex_cover(), std::invalid_argument);
}

}  // namespace
}  // namespace syncts
