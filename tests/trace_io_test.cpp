#include <gtest/gtest.h>

#include <sstream>

#include "clocks/online_clock.hpp"
#include "core/causality.hpp"
#include "test_util.hpp"
#include "trace/ground_truth.hpp"
#include "trace/trace_io.hpp"

namespace syncts {
namespace {

void expect_equivalent(const SyncComputation& a, const SyncComputation& b) {
    ASSERT_EQ(a.num_processes(), b.num_processes());
    ASSERT_EQ(a.num_messages(), b.num_messages());
    ASSERT_EQ(a.num_internal_events(), b.num_internal_events());
    ASSERT_EQ(a.topology().num_edges(), b.topology().num_edges());
    for (MessageId m = 0; m < a.num_messages(); ++m) {
        EXPECT_EQ(a.message(m).sender, b.message(m).sender);
        EXPECT_EQ(a.message(m).receiver, b.message(m).receiver);
    }
    // Per-process event sequences must match kind-for-kind.
    for (ProcessId p = 0; p < a.num_processes(); ++p) {
        const auto ea = a.process_events(p);
        const auto eb = b.process_events(p);
        ASSERT_EQ(ea.size(), eb.size()) << "process " << p;
        for (std::size_t i = 0; i < ea.size(); ++i) {
            EXPECT_EQ(ea[i].kind, eb[i].kind);
            if (ea[i].kind == ProcessEvent::Kind::message) {
                EXPECT_EQ(ea[i].index, eb[i].index);
            }
        }
    }
}

TEST(TraceIo, RoundTripPlainMessages) {
    const SyncComputation original = paper_fig1_computation();
    const std::string text = serialize_computation(original);
    const SyncComputation parsed = parse_computation(text);
    expect_equivalent(original, parsed);
}

TEST(TraceIo, RoundTripWithInternalEvents) {
    const SyncComputation original = testing::random_workload(
        topology::client_server(2, 4), 60, 0.7, 1234);
    const SyncComputation parsed =
        parse_computation(serialize_computation(original));
    expect_equivalent(original, parsed);
    // Semantics preserved: identical posets and identical timestamps.
    const auto original_stamps = online_timestamps(original);
    const auto parsed_stamps = online_timestamps(parsed);
    ASSERT_EQ(original_stamps.size(), parsed_stamps.size());
    for (std::size_t i = 0; i < original_stamps.size(); ++i) {
        EXPECT_EQ(original_stamps[i], parsed_stamps[i]);
    }
    EXPECT_EQ(encoding_mismatches(message_poset(parsed), parsed_stamps), 0u);
}

TEST(TraceIo, FormatIsStableAndReadable) {
    SyncComputation c(topology::path(2));
    c.add_internal(0);
    c.add_message(0, 1);
    const std::string text = serialize_computation(c);
    EXPECT_EQ(text,
              "syncts-trace 1\n"
              "processes 2\n"
              "edges 1\n"
              "e 0 1\n"
              "events 2\n"
              "i 0\n"
              "m 0 1\n");
}

TEST(TraceIo, StreamOverloads) {
    const SyncComputation original =
        testing::random_workload(topology::ring(5), 30, 0.0, 77);
    std::stringstream stream;
    write_computation(stream, original);
    const SyncComputation parsed = read_computation(stream);
    expect_equivalent(original, parsed);
}

TEST(TraceIo, RejectsMalformedInput) {
    EXPECT_THROW(parse_computation(""), std::invalid_argument);
    EXPECT_THROW(parse_computation("not-a-trace 1"), std::invalid_argument);
    EXPECT_THROW(parse_computation("syncts-trace 2\n"),
                 std::invalid_argument);
    EXPECT_THROW(parse_computation("syncts-trace 1\nprocesses banana\n"),
                 std::invalid_argument);
    // Message on a non-edge.
    EXPECT_THROW(parse_computation("syncts-trace 1\nprocesses 3\nedges 1\n"
                                   "e 0 1\nevents 1\nm 0 2\n"),
                 std::invalid_argument);
    // Unknown record kind.
    EXPECT_THROW(parse_computation("syncts-trace 1\nprocesses 2\nedges 1\n"
                                   "e 0 1\nevents 1\nx 0 1\n"),
                 std::invalid_argument);
    // Truncated event list.
    EXPECT_THROW(parse_computation("syncts-trace 1\nprocesses 2\nedges 1\n"
                                   "e 0 1\nevents 3\nm 0 1\n"),
                 std::invalid_argument);
    // Out-of-range process in internal event.
    EXPECT_THROW(parse_computation("syncts-trace 1\nprocesses 2\nedges 1\n"
                                   "e 0 1\nevents 1\ni 9\n"),
                 std::invalid_argument);
}

}  // namespace
}  // namespace syncts
