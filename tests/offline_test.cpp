#include <gtest/gtest.h>

#include "clocks/offline_timestamper.hpp"
#include "clocks/online_clock.hpp"
#include "core/causality.hpp"
#include "poset/dilworth.hpp"
#include "test_util.hpp"
#include "trace/generator.hpp"
#include "trace/ground_truth.hpp"

namespace syncts {
namespace {

TEST(OfflineAlgorithm, Fig6NeedsTwoDimensions) {
    // Section 4's remark: the Fig. 6 computation is encodable with
    // 2-dimensional vectors because its message poset has width 2.
    const SyncComputation c = paper_fig6_computation();
    const OfflineResult result = offline_timestamps(c);
    EXPECT_EQ(result.width, 2u);
    EXPECT_EQ(result.theorem8_bound, 2u);
    EXPECT_EQ(encoding_mismatches(message_poset(c), result.timestamps), 0u);
}

TEST(OfflineAlgorithm, Theorem8BoundHolds) {
    for (const auto& [name, graph] : testing::topology_suite(9, 81)) {
        const SyncComputation c = testing::random_workload(graph, 90, 0.0, 82);
        const OfflineResult result = offline_timestamps(c);
        EXPECT_LE(result.width, c.num_processes() / 2) << name;
        EXPECT_EQ(result.theorem8_bound, c.num_processes() / 2) << name;
    }
}

TEST(OfflineAlgorithm, EncodesPrecedenceExactly) {
    for (const auto& [name, graph] : testing::topology_suite(8, 83)) {
        const SyncComputation c = testing::random_workload(graph, 70, 0.0, 84);
        const OfflineResult result = offline_timestamps(c);
        EXPECT_EQ(encoding_mismatches(message_poset(c), result.timestamps),
                  0u)
            << name;
        EXPECT_TRUE(realizes(message_poset(c), result.realizer)) << name;
    }
}

TEST(OfflineAlgorithm, WidthEqualsRealizerSizeAndStampWidth) {
    const SyncComputation c =
        testing::random_workload(topology::complete(10), 120, 0.0, 85);
    const OfflineResult result = offline_timestamps(c);
    EXPECT_EQ(result.width, result.realizer.size());
    ASSERT_FALSE(result.timestamps.empty());
    EXPECT_EQ(result.timestamps[0].width(), result.width);
    EXPECT_EQ(result.width, poset_width(message_poset(c)));
}

TEST(OfflineAlgorithm, ChainComputationNeedsOneDimension) {
    // All messages through one star center: total order, width 1.
    const SyncComputation c =
        testing::random_workload(topology::star(8), 50, 0.0, 86);
    const OfflineResult result = offline_timestamps(c);
    EXPECT_EQ(result.width, 1u);
    EXPECT_EQ(encoding_mismatches(message_poset(c), result.timestamps), 0u);
}

TEST(OfflineAlgorithm, EmptyComputation) {
    SyncComputation c(topology::path(4));
    const OfflineResult result = offline_timestamps(c);
    EXPECT_EQ(result.width, 0u);
    EXPECT_TRUE(result.timestamps.empty());
}

TEST(OfflineAlgorithm, OftenBeatsOnlineWidthOnSparseTraffic) {
    // The offline width is bounded by the actual parallelism in the trace,
    // not by the topology; with serialized traffic it collapses to 1.
    SyncComputation c(topology::complete(8));
    // A causal chain: every message shares a process with the previous one.
    c.add_message(0, 1);
    c.add_message(1, 2);
    c.add_message(2, 3);
    c.add_message(3, 4);
    c.add_message(4, 5);
    const OfflineResult offline = offline_timestamps(c);
    EXPECT_EQ(offline.width, 1u);
    const auto online = online_timestamps(c);
    EXPECT_EQ(online[0].width(), 6u);  // K8 -> N-2 components
    EXPECT_LT(offline.width, online[0].width());
}

TEST(OfflineAlgorithm, PosetOverloadAgreesWithComputationOverload) {
    const SyncComputation c =
        testing::random_workload(topology::ring(7), 60, 0.0, 87);
    const OfflineResult via_computation = offline_timestamps(c);
    const OfflineResult via_poset =
        offline_timestamps(message_poset(c), c.num_processes());
    EXPECT_EQ(via_computation.width, via_poset.width);
    EXPECT_EQ(via_computation.timestamps.size(),
              via_poset.timestamps.size());
    for (std::size_t i = 0; i < via_poset.timestamps.size(); ++i) {
        EXPECT_EQ(via_computation.timestamps[i], via_poset.timestamps[i]);
    }
}


TEST(OfflineAlgorithm, DimensionMinimizationShrinksOrMatches) {
    // The minimize_dimension extension: never wider, still exact.
    for (const auto& [name, graph] : testing::topology_suite(8, 88)) {
        const SyncComputation c = testing::random_workload(graph, 50, 0.0, 89);
        const OfflineResult plain = offline_timestamps(c);
        const OfflineResult minimized =
            offline_timestamps(c, /*minimize_dimension=*/true);
        EXPECT_LE(minimized.width, plain.width) << name;
        EXPECT_EQ(
            encoding_mismatches(message_poset(c), minimized.timestamps), 0u)
            << name;
    }
}

}  // namespace
}  // namespace syncts
