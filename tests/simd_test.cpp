#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "common/region.hpp"
#include "common/rng.hpp"
#include "common/timestamp_arena.hpp"
#include "common/ts_kernels.hpp"
#include "common/ts_simd.hpp"

/// Satellite acceptance sweep for the SIMD backends (docs/MEMORY.md):
/// every batch-kernel entry point — row-major and stripe layout, scalar
/// and AVX2 — must be *bit-identical* across 500 seeded random slabs
/// covering every width 1..64. Kernel outputs are small integers (0/1
/// flags, relate bits, handle lists), so equality is exact, not a
/// tolerance. On hosts without AVX2 the _avx2 symbols alias the scalar
/// bodies and the sweep degenerates to a self-check; on AVX2 hosts it
/// pins the vector paths (including the unsigned sign-flip compare and
/// the scalar tail) against the portable kernels.

namespace syncts {
namespace {

constexpr std::uint64_t kSeeds = 500;

struct Case {
    std::size_t width = 0;
    std::size_t rows = 0;
    std::vector<std::uint64_t> slab;
    std::vector<std::uint64_t> probe;
};

/// Adversarial value mix: dense small values for heavy leq/equality
/// ties, occasional full-range 64-bit values to cross the 2^63 signed
/// boundary the AVX2 compare works around, and occasional copies of the
/// probe for exact-equality rows.
Case make_case(std::uint64_t seed) {
    Rng rng(seed);
    Case c;
    c.width = 1 + static_cast<std::size_t>(seed % 64);  // every width 1..64
    // Include rows == 0, partial stripes, and multi-stripe slabs; go past
    // 4x the AVX2 block so the vector main loop and tail both run.
    c.rows = static_cast<std::size_t>(rng.below(41));
    const auto draw = [&]() -> std::uint64_t {
        if (rng.chance(1, 10)) return rng();  // full range, straddles 2^63
        return rng.below(4);
    };
    c.probe.resize(c.width);
    for (auto& v : c.probe) v = draw();
    c.slab.resize(c.rows * c.width);
    for (std::size_t i = 0; i < c.rows; ++i) {
        if (rng.chance(1, 8)) {
            std::copy(c.probe.begin(), c.probe.end(),
                      c.slab.begin() + static_cast<std::ptrdiff_t>(
                                           i * c.width));
        } else {
            for (std::size_t k = 0; k < c.width; ++k) {
                c.slab[i * c.width + k] = draw();
            }
        }
    }
    return c;
}

/// Reference semantics, written independently of both backends.
std::uint8_t ref_leq(const Case& c, std::size_t row) {
    for (std::size_t k = 0; k < c.width; ++k) {
        if (c.probe[k] > c.slab[row * c.width + k]) return 0;
    }
    return 1;
}

TEST(SimdDifferential, LeqManyBackendsAreBitIdentical) {
    for (std::uint64_t seed = 0; seed < kSeeds; ++seed) {
        const Case c = make_case(seed);
        std::vector<std::uint8_t> scalar(c.rows, 0xAA);
        std::vector<std::uint8_t> vec(c.rows, 0x55);
        simd::leq_many_scalar(c.slab.data(), c.rows, c.width,
                              c.probe.data(), scalar.data());
        simd::leq_many_avx2(c.slab.data(), c.rows, c.width, c.probe.data(),
                            vec.data());
        ASSERT_EQ(scalar, vec) << "seed " << seed << " width " << c.width;
        for (std::size_t i = 0; i < c.rows; ++i) {
            ASSERT_EQ(scalar[i], ref_leq(c, i))
                << "seed " << seed << " row " << i;
        }
    }
}

TEST(SimdDifferential, RelateManyBackendsAreBitIdentical) {
    for (std::uint64_t seed = 0; seed < kSeeds; ++seed) {
        const Case c = make_case(seed);
        std::vector<std::uint8_t> scalar(c.rows, 0xAA);
        std::vector<std::uint8_t> vec(c.rows, 0x55);
        simd::relate_many_scalar(c.slab.data(), c.rows, c.width,
                                 c.probe.data(), scalar.data());
        simd::relate_many_avx2(c.slab.data(), c.rows, c.width,
                               c.probe.data(), vec.data());
        ASSERT_EQ(scalar, vec) << "seed " << seed << " width " << c.width;
        for (std::size_t i = 0; i < c.rows; ++i) {
            ASSERT_EQ(scalar[i],
                      ts::relate({c.slab.data() + i * c.width, c.width},
                                 c.probe))
                << "seed " << seed << " row " << i;
        }
    }
}

TEST(SimdDifferential, DominatorsOfBackendsAreBitIdentical) {
    for (std::uint64_t seed = 0; seed < kSeeds; ++seed) {
        const Case c = make_case(seed);
        std::vector<std::uint32_t> scalar;
        std::vector<std::uint32_t> vec;
        simd::dominators_of_scalar(c.slab.data(), c.rows, c.width,
                                   c.probe.data(), scalar);
        simd::dominators_of_avx2(c.slab.data(), c.rows, c.width,
                                 c.probe.data(), vec);
        ASSERT_EQ(scalar, vec) << "seed " << seed << " width " << c.width;
        for (const std::uint32_t h : scalar) {
            ASSERT_TRUE(
                ts::less(c.probe, {c.slab.data() + h * c.width, c.width}))
                << "seed " << seed << " handle " << h;
        }
    }
}

TEST(SimdDifferential, StripeBackendsMatchRowMajorScalar) {
    for (std::uint64_t seed = 0; seed < kSeeds; ++seed) {
        const Case c = make_case(seed);

        // Build the stripe mirror through the public SoA type so the
        // layout under test is the one production scans use.
        TimestampArena arena(c.width, c.rows);
        for (std::size_t i = 0; i < c.rows; ++i) {
            arena.allocate(
                std::span<const std::uint64_t>{c.slab.data() + i * c.width,
                                               c.width});
        }
        const SoaStripes stripes(arena);
        ASSERT_EQ(stripes.rows(), c.rows);

        std::vector<std::uint8_t> row_major(c.rows, 0xAA);
        std::vector<std::uint8_t> stripe_scalar(c.rows, 0x55);
        std::vector<std::uint8_t> stripe_vec(c.rows, 0x11);

        simd::leq_many_scalar(c.slab.data(), c.rows, c.width,
                              c.probe.data(), row_major.data());
        simd::leq_many_stripes_scalar(stripes.stripes().data(), c.rows,
                                      c.width, c.probe.data(),
                                      stripe_scalar.data());
        simd::leq_many_stripes_avx2(stripes.stripes().data(), c.rows,
                                    c.width, c.probe.data(),
                                    stripe_vec.data());
        ASSERT_EQ(row_major, stripe_scalar)
            << "leq seed " << seed << " width " << c.width;
        ASSERT_EQ(stripe_scalar, stripe_vec)
            << "leq seed " << seed << " width " << c.width;

        simd::relate_many_scalar(c.slab.data(), c.rows, c.width,
                                 c.probe.data(), row_major.data());
        simd::relate_many_stripes_scalar(stripes.stripes().data(), c.rows,
                                         c.width, c.probe.data(),
                                         stripe_scalar.data());
        simd::relate_many_stripes_avx2(stripes.stripes().data(), c.rows,
                                       c.width, c.probe.data(),
                                       stripe_vec.data());
        ASSERT_EQ(row_major, stripe_scalar)
            << "relate seed " << seed << " width " << c.width;
        ASSERT_EQ(stripe_scalar, stripe_vec)
            << "relate seed " << seed << " width " << c.width;
    }
}

TEST(SimdDifferential, DispatchedArenaKernelsMatchScalarBackend) {
    // The public arena entry points pick a backend at runtime; whatever
    // they picked must agree with the scalar reference on this host.
    for (std::uint64_t seed = 0; seed < kSeeds; seed += 5) {
        const Case c = make_case(seed);
        TimestampArena arena(c.width, c.rows);
        for (std::size_t i = 0; i < c.rows; ++i) {
            arena.allocate(
                std::span<const std::uint64_t>{c.slab.data() + i * c.width,
                                               c.width});
        }

        std::vector<std::uint8_t> got(c.rows, 0xAA);
        std::vector<std::uint8_t> want(c.rows, 0x55);
        leq_many(arena, c.probe, got);
        simd::leq_many_scalar(c.slab.data(), c.rows, c.width,
                              c.probe.data(), want.data());
        ASSERT_EQ(got, want) << "leq seed " << seed;

        relate_many(arena, c.probe, got);
        simd::relate_many_scalar(c.slab.data(), c.rows, c.width,
                                 c.probe.data(), want.data());
        ASSERT_EQ(got, want) << "relate seed " << seed;

        std::vector<std::uint32_t> want_doms;
        simd::dominators_of_scalar(c.slab.data(), c.rows, c.width,
                                   c.probe.data(), want_doms);
        const std::vector<TsHandle> got_doms = dominators_of(arena, c.probe);
        ASSERT_EQ(got_doms.size(), want_doms.size()) << "seed " << seed;
        for (std::size_t i = 0; i < want_doms.size(); ++i) {
            ASSERT_EQ(got_doms[i], want_doms[i]) << "seed " << seed;
        }

        const SoaStripes stripes(arena);
        stripes.leq_many(c.probe, got);
        simd::leq_many_stripes_scalar(stripes.stripes().data(), c.rows,
                                      c.width, c.probe.data(), want.data());
        ASSERT_EQ(got, want) << "stripes leq seed " << seed;
        stripes.relate_many(c.probe, got);
        simd::relate_many_stripes_scalar(stripes.stripes().data(), c.rows,
                                         c.width, c.probe.data(),
                                         want.data());
        ASSERT_EQ(got, want) << "stripes relate seed " << seed;
        const std::vector<TsHandle> stripe_doms =
            stripes.dominators_of(c.probe);
        ASSERT_EQ(stripe_doms, got_doms) << "stripes dominators seed "
                                         << seed;
    }
}

TEST(SimdDifferential, PartialStripePadLanesAreInert) {
    // Rows not divisible by kSoaLane leave pad lanes in the last stripe;
    // the scans must neither read garbage from them (they are zeroed)
    // nor write outputs past `rows`.
    for (std::size_t rows = 1; rows <= 2 * kSoaLane + 1; ++rows) {
        Case c = make_case(900 + rows);
        c.rows = rows;
        c.slab.assign(rows * c.width, 1);
        TimestampArena arena(c.width, rows);
        for (std::size_t i = 0; i < rows; ++i) {
            arena.allocate(
                std::span<const std::uint64_t>{c.slab.data() + i * c.width,
                                               c.width});
        }
        const SoaStripes stripes(arena);
        // Zero probe ≤ every all-ones row; the canary byte after the
        // output range must survive.
        const std::vector<std::uint64_t> probe(c.width, 0);
        std::vector<std::uint8_t> out(rows + 1, 0x7F);
        stripes.leq_many(probe, {out.data(), rows});
        for (std::size_t i = 0; i < rows; ++i) {
            ASSERT_EQ(out[i], 1) << "rows " << rows << " i " << i;
        }
        ASSERT_EQ(out[rows], 0x7F) << "canary clobbered at rows " << rows;
    }
}

}  // namespace
}  // namespace syncts
