#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "graph/generators.hpp"
#include "graph/graph.hpp"
#include "trace/computation.hpp"
#include "trace/generator.hpp"

/// Shared fixtures for the property-test sweeps: named topology families
/// instantiated across sizes, and random computations over them.

namespace syncts::testing {

struct TopologyCase {
    std::string name;
    Graph graph;
};

/// A representative spread of connected topologies of roughly `n`
/// processes (exact vertex counts vary by family shape).
inline std::vector<TopologyCase> topology_suite(std::size_t n,
                                                std::uint64_t seed) {
    Rng rng(seed);
    std::vector<TopologyCase> cases;
    cases.push_back({"star", topology::star(n)});
    cases.push_back({"path", topology::path(n)});
    cases.push_back({"ring", topology::ring(n < 3 ? 3 : n)});
    cases.push_back({"complete", topology::complete(n)});
    cases.push_back({"random_tree", topology::random_tree(n, rng)});
    cases.push_back({"kary_tree", topology::kary_tree(n, 3)});
    cases.push_back(
        {"client_server", topology::client_server(3, n > 3 ? n - 3 : 1)});
    cases.push_back({"grid", topology::grid(4, (n + 3) / 4)});
    cases.push_back({"sparse_random",
                     topology::random_connected(n, n / 2, rng)});
    cases.push_back({"dense_random",
                     topology::random_connected(n, n * 2, rng)});
    return cases;
}

/// Small graphs (including disconnected and degenerate ones) for
/// decomposition stress tests.
inline std::vector<TopologyCase> small_graph_suite(std::uint64_t seed) {
    Rng rng(seed);
    std::vector<TopologyCase> cases;
    cases.push_back({"single_edge", topology::path(2)});
    cases.push_back({"triangle", topology::triangle()});
    cases.push_back({"k4", topology::complete(4)});
    cases.push_back({"k5", topology::complete(5)});
    cases.push_back({"k6", topology::complete(6)});
    cases.push_back({"two_triangles", topology::disjoint_triangles(2)});
    cases.push_back({"three_triangles", topology::disjoint_triangles(3)});
    cases.push_back({"paper_fig2b", topology::paper_fig2b()});
    cases.push_back({"paper_fig4", topology::paper_fig4_tree()});
    cases.push_back({"path7", topology::path(7)});
    cases.push_back({"ring8", topology::ring(8)});
    cases.push_back({"grid3x3", topology::grid(3, 3)});
    cases.push_back({"hypercube3", topology::hypercube(3)});
    cases.push_back({"cs_2x4", topology::client_server(2, 4)});
    for (int i = 0; i < 6; ++i) {
        cases.push_back({"gnp10_" + std::to_string(i),
                         topology::random_gnp(10, 0.35, rng)});
    }
    return cases;
}

inline SyncComputation random_workload(const Graph& g, std::size_t messages,
                                       double internal_rate,
                                       std::uint64_t seed) {
    Rng rng(seed);
    WorkloadOptions options;
    options.num_messages = messages;
    options.internal_rate = internal_rate;
    return random_computation(g, options, rng);
}

}  // namespace syncts::testing
