#include <gtest/gtest.h>

#include "clocks/fm_sync_clock.hpp"
#include "clocks/plausible_clock.hpp"
#include "core/causality.hpp"
#include "test_util.hpp"
#include "trace/ground_truth.hpp"

namespace syncts {
namespace {

TEST(PlausibleClock, AlwaysConsistent) {
    // m1 ↦ m2 ⟹ v(m1) < v(m2), at every folded width.
    for (const auto& [name, graph] : testing::topology_suite(8, 401)) {
        const SyncComputation c = testing::random_workload(graph, 70, 0.0, 402);
        const Poset truth = message_poset(c);
        for (const std::size_t width : {1u, 2u, 3u, 5u}) {
            PlausibleTimestamper timestamper(c.num_processes(), width);
            const auto stamps = timestamper.timestamp_computation(c);
            EXPECT_EQ(consistency_violations(truth, stamps), 0u)
                << name << " R=" << width;
        }
    }
}

TEST(PlausibleClock, FullWidthIsExact) {
    // With one component per process the fold is injective and the clock
    // degenerates to the FM-sync baseline.
    const SyncComputation c =
        testing::random_workload(topology::complete(6), 80, 0.0, 403);
    PlausibleTimestamper plausible(6, 6);
    const auto stamps = plausible.timestamp_computation(c);
    EXPECT_EQ(encoding_mismatches(message_poset(c), stamps), 0u);
    const auto fm = fm_sync_timestamps(c);
    for (std::size_t i = 0; i < stamps.size(); ++i) {
        EXPECT_EQ(stamps[i], fm[i]);
    }
}

TEST(PlausibleClock, NarrowWidthsLoseConcurrency) {
    // Two concurrent messages on disjoint edges, width 1: both stamps live
    // on one component, so one is falsely ordered after the other.
    SyncComputation c(topology::path(4));
    c.add_message(0, 1);
    c.add_message(2, 3);
    PlausibleTimestamper timestamper(4, 1);
    const auto stamps = timestamper.timestamp_computation(c);
    EXPECT_TRUE(message_poset(c).incomparable(0, 1));
    EXPECT_FALSE(stamps[0].concurrent_with(stamps[1]));
}

TEST(PlausibleClock, AccuracyImprovesWithWidth) {
    const SyncComputation c =
        testing::random_workload(topology::complete(10), 150, 0.0, 404);
    const Poset truth = message_poset(c);
    double previous = -1.0;
    for (const std::size_t width : {1u, 2u, 5u, 10u}) {
        PlausibleTimestamper timestamper(10, width);
        const auto stamps = timestamper.timestamp_computation(c);
        const double accuracy = concurrency_accuracy(truth, stamps);
        EXPECT_GE(accuracy + 1e-9, previous) << "R=" << width;
        previous = accuracy;
    }
    EXPECT_DOUBLE_EQ(previous, 1.0);  // R = N is exact
}

TEST(PlausibleClock, AccuracyHelperEdgeCases) {
    // Totally ordered computation: accuracy is trivially 1.
    SyncComputation c(topology::star(4));
    c.add_message(1, 0);
    c.add_message(0, 2);
    PlausibleTimestamper timestamper(4, 1);
    const auto stamps = timestamper.timestamp_computation(c);
    EXPECT_DOUBLE_EQ(concurrency_accuracy(message_poset(c), stamps), 1.0);
}

TEST(PlausibleClock, RejectsBadArguments) {
    EXPECT_THROW(PlausibleTimestamper(4, 0), std::invalid_argument);
    PlausibleTimestamper t(3, 2);
    EXPECT_THROW(t.timestamp_message(0, 0), std::invalid_argument);
    EXPECT_THROW(t.timestamp_message(0, 9), std::invalid_argument);
}

}  // namespace
}  // namespace syncts
