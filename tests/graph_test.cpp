#include <gtest/gtest.h>

#include <stdexcept>

#include "common/rng.hpp"
#include "graph/generators.hpp"
#include "graph/graph.hpp"

namespace syncts {
namespace {

TEST(Edge, NormalizesEndpoints) {
    const Edge e = Edge::make(5, 2);
    EXPECT_EQ(e.u, 2u);
    EXPECT_EQ(e.v, 5u);
    EXPECT_EQ(e, Edge::make(2, 5));
}

TEST(Edge, RejectsSelfLoop) {
    EXPECT_THROW(Edge::make(3, 3), std::invalid_argument);
}

TEST(Edge, TouchesAndOther) {
    const Edge e = Edge::make(1, 4);
    EXPECT_TRUE(e.touches(1));
    EXPECT_TRUE(e.touches(4));
    EXPECT_FALSE(e.touches(2));
    EXPECT_EQ(e.other(1), 4u);
    EXPECT_EQ(e.other(4), 1u);
    EXPECT_THROW(e.other(2), std::invalid_argument);
}

TEST(Graph, BasicAddAndQuery) {
    Graph g(4);
    EXPECT_EQ(g.num_vertices(), 4u);
    EXPECT_EQ(g.num_edges(), 0u);
    const std::size_t index = g.add_edge(0, 1);
    EXPECT_EQ(index, 0u);
    EXPECT_TRUE(g.has_edge(0, 1));
    EXPECT_TRUE(g.has_edge(1, 0));
    EXPECT_FALSE(g.has_edge(0, 2));
    EXPECT_EQ(g.edge_index(1, 0), std::optional<std::size_t>{0});
    EXPECT_EQ(g.edge_index(2, 3), std::nullopt);
    EXPECT_EQ(g.degree(0), 1u);
    EXPECT_EQ(g.degree(3), 0u);
}

TEST(Graph, RejectsDuplicatesSelfLoopsOutOfRange) {
    Graph g(3);
    g.add_edge(0, 1);
    EXPECT_THROW(g.add_edge(1, 0), std::invalid_argument);
    EXPECT_THROW(g.add_edge(2, 2), std::invalid_argument);
    EXPECT_THROW(g.add_edge(0, 3), std::invalid_argument);
}

TEST(Graph, HasEdgeToleratesBadArguments) {
    Graph g(3);
    g.add_edge(0, 1);
    EXPECT_FALSE(g.has_edge(0, 7));
    EXPECT_FALSE(g.has_edge(1, 1));
}

TEST(Graph, NeighborsFollowInsertion) {
    Graph g(4);
    g.add_edge(1, 0);
    g.add_edge(1, 3);
    g.add_edge(2, 1);
    const auto nbrs = g.neighbors(1);
    ASSERT_EQ(nbrs.size(), 3u);
    EXPECT_EQ(nbrs[0], 0u);
    EXPECT_EQ(nbrs[1], 3u);
    EXPECT_EQ(nbrs[2], 2u);
}

TEST(Graph, AcyclicDetection) {
    EXPECT_TRUE(topology::path(6).is_acyclic());
    EXPECT_TRUE(topology::star(6).is_acyclic());
    EXPECT_FALSE(topology::ring(5).is_acyclic());
    EXPECT_FALSE(topology::triangle().is_acyclic());
    Rng rng(3);
    EXPECT_TRUE(topology::random_tree(40, rng).is_acyclic());
    EXPECT_FALSE(topology::complete(4).is_acyclic());
    // Forest: two disjoint paths.
    Graph forest(6);
    forest.add_edge(0, 1);
    forest.add_edge(1, 2);
    forest.add_edge(3, 4);
    forest.add_edge(4, 5);
    EXPECT_TRUE(forest.is_acyclic());
    forest.add_edge(5, 3);
    EXPECT_FALSE(forest.is_acyclic());
}

TEST(Graph, ConnectivityDetection) {
    EXPECT_TRUE(topology::path(5).is_connected());
    EXPECT_TRUE(Graph(1).is_connected());
    EXPECT_TRUE(Graph(0).is_connected());
    Graph g(4);
    g.add_edge(0, 1);
    EXPECT_FALSE(g.is_connected());
    g.add_edge(2, 3);
    EXPECT_FALSE(g.is_connected());
    g.add_edge(1, 2);
    EXPECT_TRUE(g.is_connected());
}

TEST(Graph, StarPredicate) {
    EXPECT_TRUE(topology::star(1).is_star());
    EXPECT_TRUE(topology::star(2).is_star());
    EXPECT_TRUE(topology::star(8).is_star());
    EXPECT_TRUE(Graph(5).is_star());  // vacuous
    EXPECT_FALSE(topology::path(4).is_star());
    EXPECT_TRUE(topology::path(3).is_star());  // center is the middle vertex
    EXPECT_FALSE(topology::triangle().is_star());
    EXPECT_FALSE(topology::complete(4).is_star());
}

TEST(Graph, TrianglePredicate) {
    EXPECT_TRUE(topology::triangle().is_triangle());
    EXPECT_FALSE(topology::path(4).is_triangle());
    EXPECT_FALSE(topology::star(4).is_triangle());
    EXPECT_FALSE(topology::complete(4).is_triangle());
    // Three edges sharing a vertex are a star, not a triangle.
    Graph g(4);
    g.add_edge(0, 1);
    g.add_edge(0, 2);
    g.add_edge(0, 3);
    EXPECT_FALSE(g.is_triangle());
    EXPECT_TRUE(g.is_star());
}

TEST(Generators, CompleteGraphCounts) {
    for (std::size_t n : {0u, 1u, 2u, 3u, 5u, 10u}) {
        const Graph g = topology::complete(n);
        EXPECT_EQ(g.num_vertices(), n);
        EXPECT_EQ(g.num_edges(), n * (n - (n > 0 ? 1 : 0)) / 2);
    }
}

TEST(Generators, StarShape) {
    const Graph g = topology::star(7);
    EXPECT_EQ(g.num_edges(), 6u);
    EXPECT_EQ(g.degree(0), 6u);
    for (ProcessId leaf = 1; leaf < 7; ++leaf) EXPECT_EQ(g.degree(leaf), 1u);
}

TEST(Generators, RingAndPath) {
    EXPECT_EQ(topology::path(5).num_edges(), 4u);
    EXPECT_EQ(topology::ring(5).num_edges(), 5u);
    EXPECT_THROW(topology::ring(2), std::invalid_argument);
}

TEST(Generators, RandomTreeIsSpanningTree) {
    Rng rng(99);
    for (std::size_t n : {2u, 5u, 33u, 100u}) {
        const Graph g = topology::random_tree(n, rng);
        EXPECT_EQ(g.num_edges(), n - 1);
        EXPECT_TRUE(g.is_acyclic());
        EXPECT_TRUE(g.is_connected());
    }
}

TEST(Generators, KaryTreeShape) {
    const Graph g = topology::kary_tree(13, 3);
    EXPECT_EQ(g.num_edges(), 12u);
    EXPECT_TRUE(g.is_acyclic());
    EXPECT_TRUE(g.is_connected());
    EXPECT_EQ(g.degree(0), 3u);
}

TEST(Generators, ClientServerShape) {
    const Graph g = topology::client_server(3, 10);
    EXPECT_EQ(g.num_vertices(), 13u);
    EXPECT_EQ(g.num_edges(), 30u);
    for (ProcessId c = 3; c < 13; ++c) EXPECT_EQ(g.degree(c), 3u);
    for (ProcessId s = 0; s < 3; ++s) EXPECT_EQ(g.degree(s), 10u);
    EXPECT_FALSE(g.has_edge(0, 1));
    const Graph connected = topology::client_server(3, 10, true);
    EXPECT_TRUE(connected.has_edge(0, 1));
    EXPECT_EQ(connected.num_edges(), 33u);
}

TEST(Generators, GridShape) {
    const Graph g = topology::grid(3, 4);
    EXPECT_EQ(g.num_vertices(), 12u);
    EXPECT_EQ(g.num_edges(), 2u * 4u + 3u * 3u);  // 17
    EXPECT_TRUE(g.is_connected());
}

TEST(Generators, HypercubeShape) {
    const Graph g = topology::hypercube(4);
    EXPECT_EQ(g.num_vertices(), 16u);
    EXPECT_EQ(g.num_edges(), 32u);
    for (ProcessId v = 0; v < 16; ++v) EXPECT_EQ(g.degree(v), 4u);
}

TEST(Generators, GnpEdgeCountPlausible) {
    Rng rng(5);
    const Graph g = topology::random_gnp(40, 0.5, rng);
    const double expected = 0.5 * 40 * 39 / 2;
    EXPECT_GT(static_cast<double>(g.num_edges()), expected * 0.7);
    EXPECT_LT(static_cast<double>(g.num_edges()), expected * 1.3);
    const Graph empty = topology::random_gnp(10, 0.0, rng);
    EXPECT_EQ(empty.num_edges(), 0u);
    const Graph full = topology::random_gnp(10, 1.0, rng);
    EXPECT_EQ(full.num_edges(), 45u);
}

TEST(Generators, GnmExactCount) {
    Rng rng(6);
    const Graph g = topology::random_gnm(12, 20, rng);
    EXPECT_EQ(g.num_edges(), 20u);
    EXPECT_THROW(topology::random_gnm(4, 10, rng), std::invalid_argument);
}

TEST(Generators, RandomConnectedIsConnected) {
    Rng rng(7);
    for (int i = 0; i < 5; ++i) {
        const Graph g = topology::random_connected(30, 15, rng);
        EXPECT_TRUE(g.is_connected());
        EXPECT_EQ(g.num_edges(), 29u + 15u);
    }
}

TEST(Generators, DisjointTriangles) {
    const Graph g = topology::disjoint_triangles(4);
    EXPECT_EQ(g.num_vertices(), 12u);
    EXPECT_EQ(g.num_edges(), 12u);
    EXPECT_FALSE(g.is_connected());
    EXPECT_FALSE(g.is_acyclic());
}

TEST(Generators, PaperFig2bShape) {
    const Graph g = topology::paper_fig2b();
    EXPECT_EQ(g.num_vertices(), 11u);
    EXPECT_EQ(g.num_edges(), 12u);
    EXPECT_TRUE(g.has_edge(9, 10));  // the (j,k) edge of the Fig. 8 trace
    // Pendant a, and the triangle (e,f,g) with degree-2 corners e, f.
    EXPECT_EQ(g.degree(0), 1u);
    EXPECT_EQ(g.degree(4), 2u);
    EXPECT_EQ(g.degree(5), 2u);
    EXPECT_TRUE(g.has_edge(4, 5));
    EXPECT_TRUE(g.has_edge(5, 6));
    EXPECT_TRUE(g.has_edge(4, 6));
}

TEST(Generators, PaperFig4TreeShape) {
    const Graph g = topology::paper_fig4_tree();
    EXPECT_EQ(g.num_vertices(), 20u);
    EXPECT_EQ(g.num_edges(), 19u);
    EXPECT_TRUE(g.is_acyclic());
    EXPECT_TRUE(g.is_connected());
}

}  // namespace
}  // namespace syncts
