#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "clocks/online_clock.hpp"
#include "clocks/wire.hpp"
#include "common/rng.hpp"
#include "decomp/cover_decomposer.hpp"
#include "graph/generators.hpp"
#include "obs/metrics.hpp"
#include "obs/trace_sink.hpp"
#include "runtime/reconfig_runtime.hpp"
#include "runtime/synchronizer.hpp"
#include "test_util.hpp"
#include "topo/reconfig.hpp"

/// Protocol-extension harness (acceptance gate of the batching work,
/// docs/PROTOCOL.md): the v3 delta codec and v4 batch container are
/// exercised directly, and then the full extension stack — frame
/// batching, ACK coalescing, delta-encoded vectors, and the bandwidth
/// scheduler — is replayed through >= 500 seeded schedules spanning
/// faults, crashes, and reconfiguration. Every schedule must realize
/// message timestamps bit-identical to the plain-wire Fig. 5 oracle:
/// the extensions change when and how bytes move, never what the
/// timestamps say.

namespace syncts {
namespace {

// ---------------------------------------------------------------------------
// Delta codec (v3)

TEST(DeltaWire, RoundTripAgainstShadow) {
    const std::vector<std::uint64_t> base{4, 0, 9, 2};
    const std::vector<std::uint64_t> stamp{5, 0, 9, 7};
    std::vector<std::uint8_t> bytes;
    ASSERT_TRUE(encode_delta_frame_into(3, 12, 40, base, stamp, bytes));

    const FrameInfo info = peek_frame_info(bytes);
    EXPECT_TRUE(info.delta);
    EXPECT_EQ(info.version, kDeltaFrameVersion);
    EXPECT_EQ(info.header.epoch, 3u);
    EXPECT_EQ(info.header.sequence, 12u);
    EXPECT_EQ(info.header.message, 40u);

    std::vector<std::uint64_t> out(4);
    const FrameHeader header = decode_delta_frame_into(bytes, base, out);
    EXPECT_EQ(header.sequence, 12u);
    EXPECT_EQ(header.message, 40u);
    EXPECT_EQ(out, stamp);
}

TEST(DeltaWire, EpochZeroIsLegalUnlikeVersionTwo) {
    // The 0x00 marker plus explicit version already disambiguates from
    // v1, so delta frames may carry epoch 0 (v2 reserves that for the
    // bare v1 layout).
    const std::vector<std::uint64_t> base{1, 1};
    const std::vector<std::uint64_t> stamp{2, 1};
    std::vector<std::uint8_t> bytes;
    ASSERT_TRUE(encode_delta_frame_into(0, 1, 0, base, stamp, bytes));
    std::vector<std::uint64_t> out(2);
    EXPECT_EQ(decode_delta_frame_into(bytes, base, out).epoch, 0u);
    EXPECT_EQ(out, stamp);
}

TEST(DeltaWire, EncoderRefusesNonMonotoneAndWidthMismatch) {
    std::vector<std::uint8_t> bytes{0xAA};
    // Component 1 regressed: the shadow is stale, caller must resync.
    EXPECT_FALSE(encode_delta_frame_into(
        1, 5, 7, std::vector<std::uint64_t>{3, 4},
        std::vector<std::uint64_t>{3, 3}, bytes));
    EXPECT_TRUE(bytes.empty());  // refusal leaves out cleared
    EXPECT_FALSE(encode_delta_frame_into(
        1, 5, 7, std::vector<std::uint64_t>{3, 4},
        std::vector<std::uint64_t>{3, 4, 5}, bytes));
}

TEST(DeltaWire, DifferentialFiveHundredSeeds) {
    // Random monotone (base, stamp) pairs across widths: the delta
    // decode must reproduce the stamp exactly, and a full v2 frame of
    // the same rendezvous must agree on the header — the two encodings
    // are interchangeable on the wire.
    std::uint64_t delta_bytes = 0;
    std::uint64_t full_bytes = 0;
    for (std::uint64_t seed = 1; seed <= 500; ++seed) {
        Rng rng(0xD11A'0000 + seed);
        const std::size_t width = 1 + rng.below(48);
        std::vector<std::uint64_t> base(width);
        std::vector<std::uint64_t> stamp(width);
        for (std::size_t i = 0; i < width; ++i) {
            base[i] = rng.below(1'000'000);
            // Mostly unchanged components with a few small increments —
            // the shape a synchronous channel actually produces.
            stamp[i] = base[i] + (rng.below(4) == 0 ? rng.below(9) : 0);
        }
        const EpochId epoch = static_cast<EpochId>(rng.below(5));
        const std::uint64_t sequence = 1 + rng.below(1'000);
        const std::uint64_t message = rng.below(10'000);

        std::vector<std::uint8_t> delta;
        ASSERT_TRUE(encode_delta_frame_into(epoch, sequence, message, base,
                                            stamp, delta))
            << "seed " << seed;
        std::vector<std::uint64_t> out(width);
        const FrameHeader got = decode_delta_frame_into(delta, base, out);
        ASSERT_EQ(out, stamp) << "seed " << seed;
        ASSERT_EQ(got.epoch, epoch);
        ASSERT_EQ(got.sequence, sequence);
        ASSERT_EQ(got.message, message);

        std::vector<std::uint8_t> full;
        encode_epoch_frame_into(epoch, sequence, message, stamp, full);
        delta_bytes += delta.size();
        full_bytes += full.size();
    }
    // The codec's reason to exist: deltas are much smaller than full
    // vectors on realistic channel traffic.
    EXPECT_LT(delta_bytes * 3, full_bytes);
}

TEST(DeltaWire, DecoderRejectsCorruptionAndForeignVersions) {
    const std::vector<std::uint64_t> base{7, 8, 9};
    const std::vector<std::uint64_t> stamp{9, 8, 11};
    std::vector<std::uint8_t> bytes;
    ASSERT_TRUE(encode_delta_frame_into(2, 3, 4, base, stamp, bytes));
    std::vector<std::uint64_t> out(3);
    for (std::size_t i = 0; i < bytes.size(); ++i) {
        std::vector<std::uint8_t> mutated = bytes;
        mutated[i] ^= 0x40;
        EXPECT_THROW(decode_delta_frame_into(mutated, base, out), WireError)
            << "byte " << i;
    }
    // Full frames must be routed through decode_epoch_frame_into.
    std::vector<std::uint8_t> full;
    encode_epoch_frame_into(2, 3, 4, stamp, full);
    EXPECT_THROW(decode_delta_frame_into(full, base, out), WireError);
}

// ---------------------------------------------------------------------------
// Batch container (v4)

TEST(BatchWire, RoundTripPreservesOrderKindsAndTags) {
    BatchFrame batch;
    const std::vector<std::uint8_t> a{1, 2, 3};
    const std::vector<std::uint8_t> b{9};
    const std::vector<std::uint8_t> c{5, 5, 5, 5};
    batch.add(0, 10, a);
    batch.add(1, 11, b);
    batch.add(1, 12, c);
    ASSERT_EQ(batch.size(), 3u);
    EXPECT_EQ(batch.pending_bytes(), a.size() + b.size() + c.size());

    std::vector<std::uint8_t> wire;
    batch.encode_batch_into(wire);
    BatchReader reader(wire);
    EXPECT_TRUE(reader.intact());
    EXPECT_EQ(reader.declared_count(), 3u);
    BatchFrame::Entry entry;
    ASSERT_TRUE(reader.next(entry));
    EXPECT_EQ(entry.kind, 0u);
    EXPECT_EQ(entry.tag, 10u);
    EXPECT_EQ(std::vector<std::uint8_t>(entry.body.begin(), entry.body.end()),
              a);
    ASSERT_TRUE(reader.next(entry));
    EXPECT_EQ(entry.tag, 11u);
    ASSERT_TRUE(reader.next(entry));
    EXPECT_EQ(entry.tag, 12u);
    EXPECT_EQ(std::vector<std::uint8_t>(entry.body.begin(), entry.body.end()),
              c);
    EXPECT_FALSE(reader.next(entry));
}

TEST(BatchWire, SupersedeRetiresQueuedAckAndFrontSkipsIt) {
    BatchFrame batch;
    const std::vector<std::uint8_t> old_ack{1};
    const std::vector<std::uint8_t> req{2};
    const std::vector<std::uint8_t> new_ack{3};
    batch.add(1, 77, old_ack);  // kAck for rendezvous 77
    batch.add(0, 40, req);
    // The cumulative-ACK rule: a newer ACK for the *same* rendezvous
    // subsumes the queued one...
    EXPECT_TRUE(batch.supersede(1, 77));
    batch.add(1, 77, new_ack);
    // ...but never one for a different rendezvous or kind.
    EXPECT_FALSE(batch.supersede(1, 78));
    EXPECT_FALSE(batch.supersede(0, 77));
    batch.supersede(0, 40);  // retire the REQ too; front() must skip it
    batch.add(0, 40, req);

    ASSERT_EQ(batch.size(), 2u);
    EXPECT_EQ(batch.front().tag, 77u);
    std::vector<std::uint8_t> wire;
    batch.encode_batch_into(wire);
    BatchReader reader(wire);
    BatchFrame::Entry entry;
    ASSERT_TRUE(reader.next(entry));
    EXPECT_EQ(std::vector<std::uint8_t>(entry.body.begin(), entry.body.end()),
              new_ack);
    ASSERT_TRUE(reader.next(entry));
    EXPECT_EQ(entry.kind, 0u);
    EXPECT_FALSE(reader.next(entry));

    batch.clear();
    EXPECT_TRUE(batch.empty());
    EXPECT_EQ(batch.pending_bytes(), 0u);
}

TEST(BatchWire, OuterChecksumIsAdvisoryEntriesCarryTheirOwn) {
    // Flip a bit inside one entry's body: intact() reports the damage,
    // but the reader still yields every entry — the inner frame
    // checksums decide which entries survive.
    BatchFrame batch;
    const std::vector<std::uint64_t> stamp{3, 1, 4};
    std::vector<std::uint8_t> frame_a;
    std::vector<std::uint8_t> frame_b;
    encode_epoch_frame_into(1, 2, 5, stamp, frame_a);
    encode_epoch_frame_into(1, 3, 6, stamp, frame_b);
    batch.add(0, 5, frame_a);
    batch.add(0, 6, frame_b);
    std::vector<std::uint8_t> wire;
    batch.encode_batch_into(wire);

    // Locate frame_a's bytes inside the container and damage one.
    const auto it = std::search(wire.begin(), wire.end(), frame_a.begin(),
                                frame_a.end());
    ASSERT_NE(it, wire.end());
    *(it + 2) ^= 0x01;

    BatchReader reader(wire);
    EXPECT_FALSE(reader.intact());
    BatchFrame::Entry entry;
    std::vector<std::uint64_t> out(3);
    ASSERT_TRUE(reader.next(entry));
    EXPECT_THROW(decode_epoch_frame_into(entry.body, out), WireError);
    ASSERT_TRUE(reader.next(entry));  // second entry is unharmed
    EXPECT_EQ(decode_epoch_frame_into(entry.body, out).sequence, 3u);
    EXPECT_EQ(out, stamp);
}

// ---------------------------------------------------------------------------
// Runtime: bit-identity sweeps

/// The option stacks the chaos sweep rotates through. Every schedule in
/// the sweep runs one of these; the plain run is the oracle.
std::vector<ProtocolOptions> option_stacks() {
    std::vector<ProtocolOptions> stacks(5);
    stacks[0].batching = true;
    stacks[1].coalesce_acks = true;
    stacks[2].delta = true;
    stacks[3].batching = true;
    stacks[3].coalesce_acks = true;
    stacks[3].delta = true;
    stacks[4] = stacks[3];
    stacks[4].bandwidth.enabled = true;
    // Tighter than one frame per round trip — stop-and-wait senders
    // only feel shaping when the refill over an RTT is below a frame
    // (and the auto burst of 4096, starting full, would never drain on
    // workloads this short).
    stacks[4].bandwidth.bytes_per_tick = 4;
    stacks[4].bandwidth.burst = 24;
    stacks[4].bandwidth.quantum = 64;
    return stacks;
}

struct ProtocolTotals {
    std::uint64_t schedules = 0;
    ProtocolStats stats;
    std::uint64_t crashes = 0;

    void absorb(const ProtocolStats& s) {
        stats.bytes_sent += s.bytes_sent;
        stats.wire_packets += s.wire_packets;
        stats.batch_packets += s.batch_packets;
        stats.batch_frames += s.batch_frames;
        stats.acks_coalesced += s.acks_coalesced;
        stats.delta_frames += s.delta_frames;
        stats.full_frames += s.full_frames;
        stats.delta_resyncs += s.delta_resyncs;
        stats.bsched_deferrals += s.bsched_deferrals;
    }
};

/// One workload replayed through `schedules` seeded schedules, cycling
/// the option stacks; a third of the schedules add message faults and a
/// sixth add crashes. Asserts bit-identity to the plain oracle always.
void run_protocol_sweep(const Graph& topology, std::size_t messages,
                        std::uint64_t workload_seed, std::uint64_t schedules,
                        ProtocolTotals& totals) {
    const SyncComputation script =
        testing::random_workload(topology, messages, 0.0, workload_seed);
    auto decomposition = std::make_shared<const EdgeDecomposition>(
        default_decomposition(topology));
    OnlineTimestamper direct(decomposition);
    const std::vector<VectorTimestamp> expected =
        direct.timestamp_computation(script);
    const std::vector<ProtocolOptions> stacks = option_stacks();
    const std::size_t max_step =
        1 + 2 * messages / topology.num_vertices();

    for (std::uint64_t schedule = 1; schedule <= schedules; ++schedule) {
        SynchronizerOptions options;
        options.seed = workload_seed * 1'000'003 + schedule;
        options.latency_lo = 1;
        options.latency_hi = 8;
        options.protocol = stacks[schedule % stacks.size()];
        Rng rng(options.seed ^ 0xBA7C4);
        if (schedule % 3 == 0) {
            options.faults.seed = schedule * 0x9E3779B9ull + workload_seed;
            options.faults.drop_probability = 0.04;
            options.faults.duplicate_probability = 0.04;
            options.faults.delay_probability = 0.2;
            options.faults.max_extra_delay = 15;
        }
        if (schedule % 6 == 0) {
            const std::size_t crashes = 1 + rng.below(2);
            for (std::size_t i = 0; i < crashes; ++i) {
                options.faults.crashes.push_back(CrashRule{
                    static_cast<ProcessId>(
                        rng.below(topology.num_vertices())),
                    1 + rng.below(max_step), 10 + rng.below(60)});
            }
        }
        const SynchronizerResult result = [&] {
            try {
                return run_rendezvous_protocol(decomposition, script,
                                               options);
            } catch (const std::exception& e) {
                ADD_FAILURE()
                    << "schedule " << schedule << " seed " << workload_seed
                    << " stack " << schedule % 5 << " threw: " << e.what();
                throw;
            }
        }();
        ASSERT_EQ(result.message_stamps.size(), expected.size());
        for (std::size_t i = 0; i < result.message_stamps.size(); ++i) {
            ASSERT_EQ(result.message_stamps[i],
                      expected[result.script_message[i]])
                << "schedule " << schedule << " realized message " << i;
        }
        ++totals.schedules;
        totals.absorb(result.protocol);
        totals.crashes += result.network_faults.crashes;
    }
}

/// Bit-identity helper: realized commit order may differ between runs
/// (batching and coalescing reshuffle delivery timing), so runs are
/// compared per *script* message against the Fig. 5 oracle.
void expect_oracle_stamps(const SynchronizerResult& result,
                          const std::vector<VectorTimestamp>& expected) {
    ASSERT_EQ(result.message_stamps.size(), expected.size());
    for (std::size_t i = 0; i < result.message_stamps.size(); ++i) {
        ASSERT_EQ(result.message_stamps[i],
                  expected[result.script_message[i]])
            << "realized message " << i;
    }
}

TEST(ProtocolChaos, BatchingChangesBytesNotTimestamps) {
    const Graph topology = topology::client_server(2, 4);
    const SyncComputation script =
        testing::random_workload(topology, 40, 0.0, 21);
    auto decomposition = std::make_shared<const EdgeDecomposition>(
        default_decomposition(topology));
    OnlineTimestamper direct(decomposition);
    const std::vector<VectorTimestamp> expected =
        direct.timestamp_computation(script);

    SynchronizerOptions plain;
    plain.seed = 9;
    plain.latency_hi = 4;
    const SynchronizerResult a =
        run_rendezvous_protocol(decomposition, script, plain);
    expect_oracle_stamps(a, expected);
    EXPECT_EQ(a.protocol.batch_packets, 0u);
    EXPECT_EQ(a.protocol.delta_frames, 0u);
    EXPECT_GT(a.protocol.wire_packets, 0u);  // byte accounting is always on
    EXPECT_GT(a.protocol.bytes_sent, 0u);

    SynchronizerOptions batched = plain;
    batched.protocol.batching = true;
    batched.protocol.coalesce_acks = true;
    const SynchronizerResult b =
        run_rendezvous_protocol(decomposition, script, batched);
    expect_oracle_stamps(b, expected);
    // Coalescing + batching must actually shrink the packet stream.
    EXPECT_LT(b.protocol.wire_packets, a.protocol.wire_packets);
    EXPECT_GT(b.protocol.batch_packets, 0u);
    EXPECT_GE(b.protocol.batch_frames, 2 * b.protocol.batch_packets);
}

TEST(ProtocolChaos, DeltaCutsBytesOnWideTopologies) {
    // Width plus channel locality is what the delta codec monetizes:
    // the 8x8 grid decomposes into 44 stars, so a full vector is 44
    // components — but between two rendezvous on the *same* channel
    // only the few components near that edge move. Bursty per-channel
    // traffic (each edge carries a run of consecutive rendezvous) is
    // the shape where deltas collapse to a handful of increments;
    // uniformly random traffic revisits a channel only after most of
    // the vector has moved, and there deltas merely break even.
    const Graph topology = topology::grid(8, 8);
    SyncComputation script(topology);
    for (const Edge& edge : topology.edges()) {
        for (std::size_t burst = 0; burst < 8; ++burst) {
            script.add_message(edge.u, edge.v);
        }
    }
    auto decomposition = std::make_shared<const EdgeDecomposition>(
        default_decomposition(topology));
    OnlineTimestamper direct(decomposition);
    const std::vector<VectorTimestamp> expected =
        direct.timestamp_computation(script);

    SynchronizerOptions plain;
    plain.seed = 13;
    const SynchronizerResult a =
        run_rendezvous_protocol(decomposition, script, plain);

    SynchronizerOptions deltas = plain;
    deltas.protocol.delta = true;
    const SynchronizerResult b =
        run_rendezvous_protocol(decomposition, script, deltas);
    expect_oracle_stamps(a, expected);
    expect_oracle_stamps(b, expected);
    EXPECT_GT(b.protocol.delta_frames, b.protocol.full_frames);
    EXPECT_EQ(b.protocol.delta_resyncs, 0u);  // reliable network: no gaps
    // The headline number: frame bytes shrink by well over half.
    EXPECT_LT(2 * b.protocol.bytes_sent, a.protocol.bytes_sent);
}

TEST(ProtocolChaos, FiveHundredSchedulesBitIdenticalTimestamps) {
    ProtocolTotals totals;
    run_protocol_sweep(topology::path(3), 24, 81, 170, totals);
    run_protocol_sweep(topology::client_server(2, 3), 30, 82, 170, totals);
    run_protocol_sweep(topology::complete(4), 30, 83, 170, totals);

    ASSERT_GE(totals.schedules, 500u);
    // The sweep must have exercised every extension path: batches flew,
    // ACKs were superseded in queue, deltas were sent and occasionally
    // rejected against stale shadows (faulty schedules), full-frame
    // resyncs recovered, crashes bit, and the bandwidth scheduler
    // deferred flushes. A chaos suite whose extensions never fire tests
    // nothing.
    EXPECT_GT(totals.crashes, 0u);
    EXPECT_GT(totals.stats.batch_packets, 0u);
    EXPECT_GT(totals.stats.batch_frames, 0u);
    EXPECT_GT(totals.stats.acks_coalesced, 0u);
    EXPECT_GT(totals.stats.delta_frames, 0u);
    EXPECT_GT(totals.stats.full_frames, 0u);
    EXPECT_GT(totals.stats.delta_resyncs, 0u);
    EXPECT_GT(totals.stats.bsched_deferrals, 0u);
}

TEST(ProtocolChaos, FullStackSurvivesReconfiguration) {
    // Epoch barriers are shadow graveyards: every delta shadow carries
    // its epoch tag, so cross-epoch deltas are structurally impossible
    // and the first frame of each epoch goes out full. The stack must
    // stay bit-identical across multi-epoch runs.
    for (std::uint64_t seed = 0; seed < 25; ++seed) {
        TopologyManager manager{topology::ring(5)};
        for (const ReconfigOp& op : random_reconfig_schedule(
                 topology::ring(5), 2, 8100 + seed)) {
            apply(manager, op);
        }
        std::vector<SyncComputation> scripts;
        std::vector<std::vector<VectorTimestamp>> expected;
        for (EpochId e = 0; e < manager.num_epochs(); ++e) {
            scripts.push_back(testing::random_workload(
                manager.epoch(e).graph(), 16, 0.0, seed * 151 + e));
            OnlineTimestamper direct(manager.decomposition(e));
            expected.push_back(direct.timestamp_computation(scripts[e]));
        }

        SynchronizerOptions options;
        options.seed = 8200 + seed;
        options.latency_lo = 1;
        options.latency_hi = 5;
        options.protocol.batching = true;
        options.protocol.coalesce_acks = true;
        options.protocol.delta = true;
        if (seed % 2 == 0) {
            options.faults.seed = 17 + seed;
            options.faults.drop_probability = 0.03;
            options.faults.delay_probability = 0.2;
            options.faults.max_extra_delay = 12;
        }
        const ReconfigurableRunResult run =
            run_reconfigurable_protocol(manager, scripts, options);
        ASSERT_EQ(run.segments.size(), manager.num_epochs());
        for (EpochId e = 0; e < manager.num_epochs(); ++e) {
            const EpochSegmentResult& segment = run.segments[e];
            ASSERT_EQ(segment.message_stamps.size(), expected[e].size());
            for (std::size_t i = 0; i < segment.message_stamps.size();
                 ++i) {
                ASSERT_EQ(segment.message_stamps[i],
                          expected[e][segment.script_message[i]])
                    << "seed " << seed << " epoch " << e << " message "
                    << i;
            }
        }
        EXPECT_GT(run.protocol.delta_frames, 0u) << "seed " << seed;
    }
}

TEST(ProtocolChaos, BandwidthShapingDelaysButNeverChangesStamps) {
    const Graph topology = topology::complete(4);
    const SyncComputation script =
        testing::random_workload(topology, 36, 0.0, 55);
    auto decomposition = std::make_shared<const EdgeDecomposition>(
        default_decomposition(topology));

    OnlineTimestamper direct(decomposition);
    const std::vector<VectorTimestamp> expected =
        direct.timestamp_computation(script);
    SynchronizerOptions plain;
    plain.seed = 31;
    const SynchronizerResult a =
        run_rendezvous_protocol(decomposition, script, plain);
    expect_oracle_stamps(a, expected);

    SynchronizerOptions shaped = plain;
    shaped.protocol.batching = true;
    shaped.protocol.bandwidth.enabled = true;
    // Tight enough that a stop-and-wait sender outruns the refill: a
    // frame costs ~burst tokens and the RTT earns back less than that.
    shaped.protocol.bandwidth.bytes_per_tick = 4;
    shaped.protocol.bandwidth.burst = 24;
    shaped.protocol.bandwidth.quantum = 64;
    obs::MetricsRegistry metrics;
    shaped.metrics = &metrics;
    const SynchronizerResult b =
        run_rendezvous_protocol(decomposition, script, shaped);
    expect_oracle_stamps(b, expected);
    // Shaping slows the run down; it must not distort the result.
    EXPECT_GE(b.virtual_duration, a.virtual_duration);
    EXPECT_GT(b.protocol.bsched_deferrals, 0u);
    EXPECT_GT(metrics.counter("bsched_refused").value(), 0u);
    EXPECT_GT(metrics.counter("bsched_admitted").value(), 0u);
    EXPECT_EQ(metrics.counter("bsched_deferrals").value(),
              b.protocol.bsched_deferrals);
}

TEST(ProtocolChaos, MetricsAndTraceRecordExtensionActivity) {
    const Graph topology = topology::client_server(1, 4);
    const SyncComputation script =
        testing::random_workload(topology, 40, 0.0, 71);
    auto decomposition = std::make_shared<const EdgeDecomposition>(
        default_decomposition(topology));
    SynchronizerOptions options;
    options.seed = 3;
    options.latency_hi = 4;
    options.protocol.batching = true;
    options.protocol.coalesce_acks = true;
    options.protocol.delta = true;
    obs::MetricsRegistry metrics;
    obs::TraceSink trace(1 << 14);
    options.metrics = &metrics;
    options.trace = &trace;
    const SynchronizerResult result =
        run_rendezvous_protocol(decomposition, script, options);

    EXPECT_EQ(metrics.counter("sync_bytes_sent").value(),
              result.protocol.bytes_sent);
    EXPECT_EQ(metrics.counter("sync_wire_packets").value(),
              result.protocol.wire_packets);
    EXPECT_EQ(metrics.counter("sync_batch_packets").value(),
              result.protocol.batch_packets);
    EXPECT_EQ(metrics.counter("sync_acks_coalesced").value(),
              result.protocol.acks_coalesced);
    EXPECT_EQ(metrics.counter("wire_delta_frames").value(),
              result.protocol.delta_frames);
    EXPECT_EQ(metrics.counter("wire_full_frames").value(),
              result.protocol.full_frames);

    bool saw_batch = false;
    bool saw_coalesce = false;
    trace.for_each([&](const obs::TraceEvent& e) {
        saw_batch |= e.kind == obs::TraceEventKind::batch;
        saw_coalesce |= e.kind == obs::TraceEventKind::coalesce;
    });
    EXPECT_EQ(saw_batch, result.protocol.batch_packets > 0);
    EXPECT_EQ(saw_coalesce, result.protocol.acks_coalesced > 0);
}

TEST(ProtocolChaos, OptionsAreValidated) {
    const Graph topology = topology::path(2);
    const SyncComputation script =
        testing::random_workload(topology, 4, 0.0, 3);
    auto decomposition = std::make_shared<const EdgeDecomposition>(
        default_decomposition(topology));
    SynchronizerOptions options;
    options.protocol.bandwidth.enabled = true;
    options.protocol.bandwidth.bytes_per_tick = 0;  // infinite ready_time
    EXPECT_THROW(run_rendezvous_protocol(decomposition, script, options),
                 std::invalid_argument);
}

}  // namespace
}  // namespace syncts
