#include <gtest/gtest.h>

#include "clocks/online_clock.hpp"
#include "core/predicate_detection.hpp"
#include "test_util.hpp"
#include "trace/ground_truth.hpp"

namespace syncts {
namespace {

/// Stamps all internal events of `c` and groups them per process, keeping
/// only those whose InternalId is in `chosen` (the "predicate held" set).
std::vector<std::vector<EventTimestamp>> candidates_for(
    const SyncComputation& c, const std::vector<ProcessId>& processes,
    const std::vector<char>& chosen) {
    const auto message_stamps = online_timestamps(c);
    const std::size_t width =
        message_stamps.empty() ? 1 : message_stamps[0].width();
    const auto stamps = timestamp_internal_events(c, message_stamps, width);
    std::vector<std::vector<EventTimestamp>> result(processes.size());
    for (InternalId e = 0; e < c.num_internal_events(); ++e) {
        if (!chosen[e]) continue;
        for (std::size_t slot = 0; slot < processes.size(); ++slot) {
            if (c.internal_event(e).process == processes[slot]) {
                result[slot].push_back(stamps[e]);
            }
        }
    }
    return result;
}

/// Brute-force possibly(φ): try every combination of one candidate per
/// process and test pairwise concurrency.
bool brute_force_detect(
    const std::vector<std::vector<EventTimestamp>>& candidates) {
    const std::size_t k = candidates.size();
    std::vector<std::size_t> pick(k, 0);
    for (;;) {
        bool all_concurrent = true;
        for (std::size_t i = 0; i < k && all_concurrent; ++i) {
            for (std::size_t j = i + 1; j < k && all_concurrent; ++j) {
                if (!concurrent(candidates[i][pick[i]],
                                candidates[j][pick[j]])) {
                    all_concurrent = false;
                }
            }
        }
        if (all_concurrent) return true;
        std::size_t slot = 0;
        while (slot < k && ++pick[slot] >= candidates[slot].size()) {
            pick[slot] = 0;
            ++slot;
        }
        if (slot == k) return false;
    }
}

TEST(WeakConjunctive, TrivialCases) {
    EXPECT_TRUE(detect_weak_conjunctive({}).detected);
    EXPECT_FALSE(detect_weak_conjunctive({{}}).detected);
    // Single process with any candidate: detected at index 0.
    SyncComputation c(topology::path(2));
    c.add_internal(0);
    const auto cands = candidates_for(c, {0}, {1});
    const auto result = detect_weak_conjunctive(cands);
    EXPECT_TRUE(result.detected);
    EXPECT_EQ(result.witness, (std::vector<std::size_t>{0}));
}

TEST(WeakConjunctive, PlantedConcurrentCutIsFound) {
    // P0 and P2 both raise their predicate with no communication between
    // the raising intervals: detectable.
    SyncComputation c(topology::path(3));
    const InternalId a = c.add_internal(0);
    const InternalId b = c.add_internal(2);
    c.add_message(0, 1);
    std::vector<char> chosen(c.num_internal_events(), 0);
    chosen[a] = chosen[b] = 1;
    const auto result =
        detect_weak_conjunctive(candidates_for(c, {0, 2}, chosen));
    EXPECT_TRUE(result.detected);
}

TEST(WeakConjunctive, SequentialPredicatesAreNotDetected) {
    // P0's predicate holds only before the sync, P1's only after: every
    // candidate pair is ordered through the message.
    SyncComputation c(topology::path(2));
    const InternalId a = c.add_internal(0);
    c.add_message(0, 1);
    const InternalId b = c.add_internal(1);
    std::vector<char> chosen(c.num_internal_events(), 0);
    chosen[a] = chosen[b] = 1;
    const auto result =
        detect_weak_conjunctive(candidates_for(c, {0, 1}, chosen));
    EXPECT_FALSE(result.detected);
    EXPECT_TRUE(result.witness.empty());
}

TEST(WeakConjunctive, AdvancesPastOrderedPrefix) {
    // P0 raises early (ordered before P1's candidate) and raises again
    // later, concurrently: the detector must skip the first candidate.
    SyncComputation c(topology::path(2));
    const InternalId early = c.add_internal(0);
    c.add_message(0, 1);
    const InternalId target = c.add_internal(1);
    const InternalId late = c.add_internal(0);
    std::vector<char> chosen(c.num_internal_events(), 0);
    chosen[early] = chosen[target] = chosen[late] = 1;
    const auto result =
        detect_weak_conjunctive(candidates_for(c, {0, 1}, chosen));
    ASSERT_TRUE(result.detected);
    EXPECT_EQ(result.witness[0], 1u);  // skipped `early`
    EXPECT_EQ(result.witness[1], 0u);
}

TEST(WeakConjunctive, ThreeWayCut) {
    SyncComputation c(topology::star(4));
    const InternalId a = c.add_internal(1);
    const InternalId b = c.add_internal(2);
    const InternalId d = c.add_internal(3);
    c.add_message(1, 0);
    std::vector<char> chosen(c.num_internal_events(), 0);
    chosen[a] = chosen[b] = chosen[d] = 1;
    const auto result =
        detect_weak_conjunctive(candidates_for(c, {1, 2, 3}, chosen));
    EXPECT_TRUE(result.detected);
}

TEST(WeakConjunctive, MatchesBruteForceOnRandomWorkloads) {
    for (std::uint64_t seed = 0; seed < 15; ++seed) {
        const Graph g = topology::client_server(2, 3);
        const SyncComputation c =
            testing::random_workload(g, 25, 1.5, 700 + seed);
        if (c.num_internal_events() == 0) continue;
        std::vector<char> chosen(c.num_internal_events(), 1);
        // Observe the two busiest client processes.
        const std::vector<ProcessId> observed{2, 3};
        const auto cands = candidates_for(c, observed, chosen);
        if (cands[0].empty() || cands[1].empty()) continue;
        const auto result = detect_weak_conjunctive(cands);
        EXPECT_EQ(result.detected, brute_force_detect(cands))
            << "seed " << seed;
        if (result.detected) {
            // The witness really is pairwise concurrent.
            EXPECT_TRUE(concurrent(cands[0][result.witness[0]],
                                   cands[1][result.witness[1]]));
        }
    }
}

TEST(WeakConjunctive, WitnessIsEarliest) {
    // The elimination strategy yields the least witness indices among all
    // valid cuts (standard WCP property): verify against brute force on a
    // fixed scenario.
    SyncComputation c(topology::path(3));
    const InternalId a0 = c.add_internal(0);
    c.add_message(0, 1);
    c.add_message(1, 2);
    const InternalId b0 = c.add_internal(2);  // after the chain: a0 -> b0
    const InternalId a1 = c.add_internal(0);  // concurrent with b0
    std::vector<char> chosen(c.num_internal_events(), 0);
    chosen[a0] = chosen[b0] = chosen[a1] = 1;
    const auto result =
        detect_weak_conjunctive(candidates_for(c, {0, 2}, chosen));
    ASSERT_TRUE(result.detected);
    EXPECT_EQ(result.witness[0], 1u);  // a1, not a0
    EXPECT_EQ(result.witness[1], 0u);  // b0
}

}  // namespace
}  // namespace syncts
