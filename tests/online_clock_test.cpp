#include <gtest/gtest.h>

#include <memory>
#include <ostream>

#include "clocks/online_clock.hpp"
#include "core/causality.hpp"
#include "decomp/cover_decomposer.hpp"
#include "decomp/greedy_decomposer.hpp"
#include "test_util.hpp"
#include "trace/ground_truth.hpp"

namespace syncts {
namespace {

TEST(VectorTimestampTest, VectorOrderBasics) {
    const VectorTimestamp a(std::vector<std::uint64_t>{1, 0, 0});
    const VectorTimestamp b(std::vector<std::uint64_t>{1, 1, 1});
    const VectorTimestamp c(std::vector<std::uint64_t>{0, 0, 2});
    EXPECT_TRUE(a.less(b));
    EXPECT_FALSE(b.less(a));
    EXPECT_TRUE(a.leq(a));
    EXPECT_FALSE(a.less(a));
    EXPECT_TRUE(a.concurrent_with(c));
    EXPECT_FALSE(a.concurrent_with(b));
    EXPECT_EQ(b.total(), 3u);
    EXPECT_EQ(b.to_string(), "(1,1,1)");
}

TEST(VectorTimestampTest, JoinAndIncrement) {
    VectorTimestamp a(std::vector<std::uint64_t>{1, 0, 5});
    const VectorTimestamp b(std::vector<std::uint64_t>{0, 3, 2});
    a.join(b);
    EXPECT_EQ(a, VectorTimestamp(std::vector<std::uint64_t>{1, 3, 5}));
    a.increment(1);
    EXPECT_EQ(a[1], 4u);
    EXPECT_THROW(a.increment(9), std::invalid_argument);
    VectorTimestamp narrow(2);
    EXPECT_THROW(a.join(narrow), std::invalid_argument);
    EXPECT_THROW(a.leq(narrow), std::invalid_argument);
}

TEST(OnlineClock, PaperFig6SampleRun) {
    // Reproduces the worked example: with E1 = star@P1, E2 = star@P2,
    // E3 = triangle(P3,P4,P5), the message P2 -> P3 is stamped (1,1,1)
    // from local vectors (1,0,0) and (0,0,1).
    auto decomposition = std::make_shared<const EdgeDecomposition>(
        trivial_complete_decomposition(paper_fig6_topology()));
    ASSERT_EQ(decomposition->size(), 3u);
    OnlineTimestamper timestamper(decomposition);
    const auto stamps =
        timestamper.timestamp_computation(paper_fig6_computation());
    ASSERT_EQ(stamps.size(), 5u);
    EXPECT_EQ(stamps[0], VectorTimestamp(std::vector<std::uint64_t>{1, 0, 0}));
    EXPECT_EQ(stamps[1], VectorTimestamp(std::vector<std::uint64_t>{0, 0, 1}));
    EXPECT_EQ(stamps[2], VectorTimestamp(std::vector<std::uint64_t>{1, 1, 1}));
    EXPECT_EQ(stamps[3], VectorTimestamp(std::vector<std::uint64_t>{0, 0, 2}));
    EXPECT_EQ(stamps[4], VectorTimestamp(std::vector<std::uint64_t>{2, 0, 2}));
}

TEST(OnlineClock, SenderAndReceiverAgree) {
    auto decomposition = std::make_shared<const EdgeDecomposition>(
        default_decomposition(topology::path(3)));
    OnlineProcessClock p0(0, decomposition);
    OnlineProcessClock p1(1, decomposition);
    const VectorTimestamp piggyback = p0.prepare_send();
    const auto [ack, receiver_stamp] = p1.on_receive(0, piggyback);
    const VectorTimestamp sender_stamp = p0.on_acknowledgement(1, ack);
    EXPECT_EQ(sender_stamp, receiver_stamp);
    EXPECT_EQ(p0.current(), p1.current());
}

TEST(OnlineClock, ProtocolHooksMatchDrivenTimestamper) {
    auto decomposition = std::make_shared<const EdgeDecomposition>(
        default_decomposition(topology::complete(4)));
    OnlineTimestamper timestamper(decomposition);
    const VectorTimestamp t1 = timestamper.timestamp_message(0, 1);
    const VectorTimestamp t2 = timestamper.timestamp_message(1, 2);
    EXPECT_TRUE(t1.less(t2));
    const VectorTimestamp t3 = timestamper.timestamp_message(3, 0);
    EXPECT_TRUE(t1.less(t3));  // P0 participated in m1
    EXPECT_EQ(timestamper.clock(2).current(), t2);
}

TEST(OnlineClock, RejectsForeignChannels) {
    auto decomposition = std::make_shared<const EdgeDecomposition>(
        default_decomposition(topology::path(3)));
    OnlineTimestamper timestamper(decomposition);
    EXPECT_THROW(timestamper.timestamp_message(0, 2), std::invalid_argument);
    EXPECT_THROW(timestamper.timestamp_message(1, 1), std::invalid_argument);
}

TEST(OnlineClock, RejectsIncompleteDecomposition) {
    auto incomplete =
        std::make_shared<const EdgeDecomposition>(topology::path(3));
    EXPECT_THROW(OnlineTimestamper{incomplete}, std::invalid_argument);
}

// ---------------------------------------------------------------------
// Theorem 4 property sweep: on every topology family, for every
// decomposition strategy, online timestamps encode ↦ exactly.
// ---------------------------------------------------------------------

struct Theorem4Param {
    std::size_t family_index;
    std::size_t n;
    std::size_t messages;
    std::uint64_t seed;

    friend std::ostream& operator<<(std::ostream& os,
                                    const Theorem4Param& p) {
        return os << "family" << p.family_index << "_n" << p.n << "_m"
                  << p.messages << "_s" << p.seed;
    }
};

class Theorem4Test : public ::testing::TestWithParam<Theorem4Param> {};

TEST_P(Theorem4Test, OnlineTimestampsEncodeSynchronousPrecedence) {
    const auto& param = GetParam();
    const auto suite = testing::topology_suite(param.n, param.seed);
    ASSERT_LT(param.family_index, suite.size());
    const auto& [name, graph] = suite[param.family_index];

    const SyncComputation computation =
        testing::random_workload(graph, param.messages, 0.0, param.seed + 1);
    const Poset truth = message_poset(computation);

    using Decomposer = EdgeDecomposition (*)(const Graph&);
    const Decomposer decomposers[] = {
        [](const Graph& g) { return default_decomposition(g); },
        [](const Graph& g) { return greedy_edge_decomposition(g); },
        [](const Graph& g) { return approx_cover_decomposition(g); }};
    for (const Decomposer decompose : decomposers) {
        auto decomposition =
            std::make_shared<const EdgeDecomposition>(decompose(graph));
        OnlineTimestamper timestamper(decomposition);
        const auto stamps = timestamper.timestamp_computation(computation);
        EXPECT_EQ(encoding_mismatches(truth, stamps), 0u)
            << name << " width=" << decomposition->size();
    }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, Theorem4Test,
    ::testing::Values(
        Theorem4Param{0, 6, 60, 1}, Theorem4Param{1, 6, 60, 2},
        Theorem4Param{2, 6, 60, 3}, Theorem4Param{3, 6, 60, 4},
        Theorem4Param{4, 6, 60, 5}, Theorem4Param{5, 6, 60, 6},
        Theorem4Param{6, 6, 60, 7}, Theorem4Param{7, 6, 60, 8},
        Theorem4Param{8, 6, 60, 9}, Theorem4Param{9, 6, 60, 10},
        Theorem4Param{0, 10, 90, 11}, Theorem4Param{1, 10, 90, 12},
        Theorem4Param{2, 10, 90, 13}, Theorem4Param{3, 10, 90, 14},
        Theorem4Param{4, 10, 90, 15}, Theorem4Param{5, 10, 90, 16},
        Theorem4Param{6, 10, 90, 17}, Theorem4Param{7, 10, 90, 18},
        Theorem4Param{8, 10, 90, 19}, Theorem4Param{9, 10, 90, 20},
        Theorem4Param{3, 4, 40, 21}, Theorem4Param{3, 14, 120, 22},
        Theorem4Param{6, 20, 150, 23}, Theorem4Param{4, 24, 150, 24}));

TEST(OnlineClock, ConvenienceWrapperMatchesGroundTruth) {
    const SyncComputation c =
        testing::random_workload(topology::paper_fig4_tree(), 120, 0.0, 42);
    const auto stamps = online_timestamps(c);
    EXPECT_EQ(encoding_mismatches(message_poset(c), stamps), 0u);
    // Width should be 3 for the Fig. 4 tree.
    ASSERT_FALSE(stamps.empty());
    EXPECT_EQ(stamps[0].width(), 3u);
}

TEST(OnlineClock, TimestampsAreUniquePerMessage) {
    const SyncComputation c =
        testing::random_workload(topology::complete(7), 150, 0.0, 43);
    const auto stamps = online_timestamps(c);
    for (std::size_t a = 0; a < stamps.size(); ++a) {
        for (std::size_t b = a + 1; b < stamps.size(); ++b) {
            EXPECT_NE(stamps[a], stamps[b]);
        }
    }
}

TEST(OnlineClock, WidthOneSufficesOnStarAndTriangle) {
    // Lemma 1 + Theorem 4: an integer timestamps a star or triangle system.
    for (const Graph& g : {topology::star(9), topology::triangle()}) {
        const SyncComputation c = testing::random_workload(g, 80, 0.0, 44);
        auto decomposition = std::make_shared<const EdgeDecomposition>(
            default_decomposition(g));
        EXPECT_EQ(decomposition->size(), 1u);
        OnlineTimestamper timestamper(decomposition);
        const auto stamps = timestamper.timestamp_computation(c);
        EXPECT_EQ(encoding_mismatches(message_poset(c), stamps), 0u);
    }
}

}  // namespace
}  // namespace syncts
