#include <gtest/gtest.h>

#include "clocks/fm_differential.hpp"
#include "clocks/fm_sync_clock.hpp"
#include "clocks/online_clock.hpp"
#include "clocks/wire.hpp"
#include "core/sync_system.hpp"
#include "test_util.hpp"

namespace syncts {
namespace {

TEST(FmDifferential, StampsMatchFmSyncExactly) {
    for (const auto& [name, graph] : testing::topology_suite(8, 601)) {
        const SyncComputation c = testing::random_workload(graph, 80, 0.0, 602);
        FmDifferentialTimestamper differential(c.num_processes());
        const auto diff_stamps = differential.timestamp_computation(c);
        const auto fm_stamps = fm_sync_timestamps(c);
        ASSERT_EQ(diff_stamps.size(), fm_stamps.size());
        for (std::size_t i = 0; i < diff_stamps.size(); ++i) {
            EXPECT_EQ(diff_stamps[i], fm_stamps[i]) << name << " m" << i;
        }
    }
}

TEST(FmDifferential, FirstExchangeShipsOnlyNonZeroEntries) {
    FmDifferentialTimestamper t(8);
    t.timestamp_message(0, 1);
    // Fresh clocks differ from the zero snapshot in no entry at all: both
    // directions ship empty diffs (count header only).
    EXPECT_EQ(t.stats().entries_sent, 0u);
    EXPECT_EQ(t.stats().wire_bytes, 2u);  // one 1-byte zero count each way
}

TEST(FmDifferential, RepeatChannelShipsSmallDiffs) {
    FmDifferentialTimestamper t(16);
    // A long conversation between 0 and 1 only ever touches entries 0, 1:
    // after the first exchange every diff has at most 2 entries per side.
    for (int i = 0; i < 20; ++i) t.timestamp_message(0, 1);
    EXPECT_LE(t.stats().entries_sent, 2u * 2u * 20u);
    EXPECT_EQ(t.stats().messages, 20u);
    EXPECT_LT(t.stats().mean_entries_per_message(), 4.5);
}

TEST(FmDifferential, ColdChannelsShipBigDiffs) {
    // A chain 0->1->2->...->k accumulates history, so each first-contact
    // hop ships a growing diff — the technique saves nothing without
    // channel reuse.
    constexpr std::size_t n = 10;
    FmDifferentialTimestamper t(n);
    for (ProcessId p = 0; p + 1 < n; ++p) t.timestamp_message(p, p + 1);
    // Hop i ships about i entries; total Θ(n²/2) entries.
    EXPECT_GT(t.stats().entries_sent, n * (n - 1) / 4);
}

TEST(FmDifferential, PaperClockBeatsDifferentialOnClientServer) {
    // The concrete Section 6 comparison: with d = 2 servers the paper's
    // whole piggyback is smaller than even the differential FM updates
    // once many clients interleave (every client's first contact ships the
    // full history; later contacts still ship every recently-touched
    // component).
    const Graph g = topology::client_server(2, 16);
    const SyncComputation c = testing::random_workload(g, 400, 0.0, 603);
    FmDifferentialTimestamper differential(c.num_processes());
    differential.timestamp_computation(c);

    const SyncSystem system{Graph(g)};
    auto timestamper = system.make_timestamper();
    std::size_t paper_bytes = 0;
    for (const SyncMessage& m : c.messages()) {
        // Message + acknowledgement each carry one d-wide vector.
        paper_bytes +=
            2 * encoded_size(timestamper.timestamp_message(m.sender,
                                                           m.receiver));
    }
    EXPECT_LT(paper_bytes, differential.stats().wire_bytes);
}

TEST(FmDifferential, RejectsBadArguments) {
    FmDifferentialTimestamper t(3);
    EXPECT_THROW(t.timestamp_message(1, 1), std::invalid_argument);
    EXPECT_THROW(t.timestamp_message(0, 7), std::invalid_argument);
    SyncComputation c(topology::path(2));
    c.add_message(0, 1);
    EXPECT_THROW(t.timestamp_computation(c), std::invalid_argument);
}

}  // namespace
}  // namespace syncts
