#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "clocks/online_clock.hpp"
#include "clocks/wire.hpp"
#include "common/rng.hpp"
#include "decomp/cover_decomposer.hpp"
#include "decomp/decomp_io.hpp"
#include "test_util.hpp"
#include "trace/trace_io.hpp"

/// Robustness fuzzing for every parser: random byte soup and mutated valid
/// inputs must either parse or throw std::invalid_argument — never crash,
/// hang, or corrupt. (Deterministic seeds; these run in milliseconds.)

namespace syncts {
namespace {

std::string random_text(Rng& rng, std::size_t length) {
    static constexpr char kAlphabet[] =
        "abcdefghijklmnopqrstuvwxyz0123456789 \n-e.smt";
    std::string text;
    text.reserve(length);
    for (std::size_t i = 0; i < length; ++i) {
        text.push_back(
            kAlphabet[rng.below(sizeof(kAlphabet) - 1)]);
    }
    return text;
}

template <typename Parser>
void expect_no_crash(Parser&& parser, const std::string& input) {
    try {
        parser(input);
    } catch (const std::invalid_argument&) {
        // expected for malformed input
    }
}

TEST(FuzzParsers, TraceRandomSoup) {
    Rng rng(5001);
    for (int trial = 0; trial < 300; ++trial) {
        expect_no_crash([](const std::string& s) { parse_computation(s); },
                        random_text(rng, 10 + rng.below(150)));
    }
    // Random soup behind a valid header.
    for (int trial = 0; trial < 300; ++trial) {
        expect_no_crash([](const std::string& s) { parse_computation(s); },
                        "syncts-trace 1\n" + random_text(rng, 120));
    }
}

TEST(FuzzParsers, TraceMutatedValidInput) {
    const SyncComputation original = testing::random_workload(
        topology::client_server(2, 3), 40, 0.5, 5002);
    const std::string valid = serialize_computation(original);
    Rng rng(5003);
    for (int trial = 0; trial < 400; ++trial) {
        std::string mutated = valid;
        const std::size_t edits = 1 + rng.below(4);
        for (std::size_t e = 0; e < edits; ++e) {
            const std::size_t pos = rng.below(mutated.size());
            switch (rng.below(3)) {
                case 0:
                    mutated[pos] = static_cast<char>('0' + rng.below(10));
                    break;
                case 1: mutated.erase(pos, 1); break;
                default: mutated.insert(pos, 1, 'x'); break;
            }
        }
        expect_no_crash(
            [](const std::string& s) { parse_computation(s); }, mutated);
    }
}

TEST(FuzzParsers, DecompositionRandomSoupAndMutations) {
    Rng rng(5004);
    for (int trial = 0; trial < 300; ++trial) {
        expect_no_crash(
            [](const std::string& s) { parse_decomposition(s); },
            "syncts-decomp 1\n" + random_text(rng, 120));
    }
    const std::string valid = serialize_decomposition(
        default_decomposition(topology::complete(5)));
    for (int trial = 0; trial < 400; ++trial) {
        std::string mutated = valid;
        const std::size_t pos = rng.below(mutated.size());
        mutated[pos] = static_cast<char>('0' + rng.below(10));
        expect_no_crash(
            [](const std::string& s) { parse_decomposition(s); }, mutated);
    }
}

TEST(FuzzParsers, TimestampWireRandomBytes) {
    Rng rng(5005);
    for (int trial = 0; trial < 1000; ++trial) {
        std::vector<std::uint8_t> bytes(rng.below(40));
        for (auto& b : bytes) b = static_cast<std::uint8_t>(rng.below(256));
        try {
            const VectorTimestamp decoded = decode_timestamp(bytes);
            // If it decoded (possibly from a non-canonical varint), the
            // canonical re-encoding must round-trip to the same value.
            EXPECT_EQ(decode_timestamp(encode_timestamp(decoded)), decoded);
        } catch (const std::invalid_argument&) {
            // expected for malformed input
        }
    }
}

TEST(FuzzParsers, SyncFrameRandomBytes) {
    // decode_frame is the parser the synchronizer feeds with anything the
    // faulty network delivers: random soup must either fail with a typed
    // WireError or (checksum-collision odds aside) decode — never crash.
    Rng rng(5008);
    std::uint64_t rejects = 0;
    for (int trial = 0; trial < 2000; ++trial) {
        std::vector<std::uint8_t> bytes(rng.below(64));
        for (auto& b : bytes) b = static_cast<std::uint8_t>(rng.below(256));
        try {
            (void)decode_frame(bytes, 1 + rng.below(8));
        } catch (const WireError&) {
            ++rejects;
        }
    }
    // An 8-byte checksum makes accidental acceptance of soup implausible.
    EXPECT_EQ(rejects, 2000u);
}

TEST(FuzzParsers, SyncFrameMutatedValidFrames) {
    Rng rng(5009);
    const SyncFrame valid{
        .sequence = 77,
        .message = 12,
        .stamp = VectorTimestamp(std::vector<std::uint64_t>{9, 200, 0, 3})};
    const auto bytes = encode_frame(valid);
    for (int trial = 0; trial < 1000; ++trial) {
        auto mutated = bytes;
        const std::size_t edits = 1 + rng.below(4);
        for (std::size_t e = 0; e < edits; ++e) {
            const std::size_t pos = rng.below(mutated.size());
            switch (rng.below(3)) {
                case 0:
                    mutated[pos] ^=
                        static_cast<std::uint8_t>(1u << rng.below(8));
                    break;
                case 1: mutated.erase(mutated.begin() +
                                      static_cast<long>(pos)); break;
                default:
                    mutated.insert(mutated.begin() + static_cast<long>(pos),
                                   static_cast<std::uint8_t>(rng.below(256)));
                    break;
            }
        }
        try {
            const SyncFrame decoded = decode_frame(mutated, 4);
            // Only possible when the edits cancelled out exactly.
            EXPECT_EQ(decoded, valid);
        } catch (const WireError&) {
            // expected for nearly every mutation
        }
    }
}

TEST(FuzzParsers, TimestampWireExpectedWidthRandomBytes) {
    // The satellite fix: the expected-width overload must reject any
    // width disagreement before decoding components, so random soup can
    // never materialize a wrong-width vector.
    Rng rng(5010);
    for (int trial = 0; trial < 1000; ++trial) {
        std::vector<std::uint8_t> bytes(rng.below(40));
        for (auto& b : bytes) b = static_cast<std::uint8_t>(rng.below(256));
        const std::size_t d = 1 + rng.below(6);
        try {
            const VectorTimestamp decoded = decode_timestamp(bytes, d);
            EXPECT_EQ(decoded.width(), d);
        } catch (const std::invalid_argument&) {
            // expected for malformed input
        }
    }
}

TEST(FuzzParsers, TimestampWireTruncations) {
    Rng rng(5006);
    const Graph g = topology::client_server(2, 4);
    const SyncComputation c = testing::random_workload(g, 60, 0.0, 5007);
    const auto stamps = online_timestamps(c);
    for (const auto& stamp : stamps) {
        auto bytes = encode_timestamp(stamp);
        // Every strict prefix must be rejected.
        for (std::size_t cut = 0; cut < bytes.size(); ++cut) {
            const std::vector<std::uint8_t> prefix(bytes.begin(),
                                                   bytes.begin() +
                                                       static_cast<long>(cut));
            EXPECT_THROW(decode_timestamp(prefix), std::invalid_argument);
        }
    }
}

}  // namespace
}  // namespace syncts
