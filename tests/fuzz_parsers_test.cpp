#include <gtest/gtest.h>

// The allocating encode_frame is deprecated (encode_frame_into is the
// supported form) but stays under fuzz coverage until it is removed.
#if defined(__GNUC__) || defined(__clang__)
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"
#endif

#include <cstdint>
#include <span>
#include <sstream>
#include <string>
#include <vector>

#include "clocks/online_clock.hpp"
#include "clocks/wire.hpp"
#include "common/checksum.hpp"
#include "common/rng.hpp"
#include "common/spill_store.hpp"
#include "decomp/cover_decomposer.hpp"
#include "decomp/decomp_io.hpp"
#include "obs/flight_recorder.hpp"
#include "recover/snapshot.hpp"
#include "recover/wal.hpp"
#include "test_util.hpp"
#include "trace/trace_io.hpp"

/// Robustness fuzzing for every parser: random byte soup and mutated valid
/// inputs must either parse or throw std::invalid_argument — never crash,
/// hang, or corrupt. (Deterministic seeds; these run in milliseconds.)

namespace syncts {
namespace {

std::string random_text(Rng& rng, std::size_t length) {
    static constexpr char kAlphabet[] =
        "abcdefghijklmnopqrstuvwxyz0123456789 \n-e.smt";
    std::string text;
    text.reserve(length);
    for (std::size_t i = 0; i < length; ++i) {
        text.push_back(
            kAlphabet[rng.below(sizeof(kAlphabet) - 1)]);
    }
    return text;
}

template <typename Parser>
void expect_no_crash(Parser&& parser, const std::string& input) {
    try {
        parser(input);
    } catch (const std::invalid_argument&) {
        // expected for malformed input
    }
}

TEST(FuzzParsers, TraceRandomSoup) {
    Rng rng(5001);
    for (int trial = 0; trial < 300; ++trial) {
        expect_no_crash([](const std::string& s) { parse_computation(s); },
                        random_text(rng, 10 + rng.below(150)));
    }
    // Random soup behind a valid header.
    for (int trial = 0; trial < 300; ++trial) {
        expect_no_crash([](const std::string& s) { parse_computation(s); },
                        "syncts-trace 1\n" + random_text(rng, 120));
    }
}

TEST(FuzzParsers, TraceMutatedValidInput) {
    const SyncComputation original = testing::random_workload(
        topology::client_server(2, 3), 40, 0.5, 5002);
    const std::string valid = serialize_computation(original);
    Rng rng(5003);
    for (int trial = 0; trial < 400; ++trial) {
        std::string mutated = valid;
        const std::size_t edits = 1 + rng.below(4);
        for (std::size_t e = 0; e < edits; ++e) {
            const std::size_t pos = rng.below(mutated.size());
            switch (rng.below(3)) {
                case 0:
                    mutated[pos] = static_cast<char>('0' + rng.below(10));
                    break;
                case 1: mutated.erase(pos, 1); break;
                default: mutated.insert(pos, 1, 'x'); break;
            }
        }
        expect_no_crash(
            [](const std::string& s) { parse_computation(s); }, mutated);
    }
}

TEST(FuzzParsers, DecompositionRandomSoupAndMutations) {
    Rng rng(5004);
    for (int trial = 0; trial < 300; ++trial) {
        expect_no_crash(
            [](const std::string& s) { parse_decomposition(s); },
            "syncts-decomp 1\n" + random_text(rng, 120));
    }
    const std::string valid = serialize_decomposition(
        default_decomposition(topology::complete(5)));
    for (int trial = 0; trial < 400; ++trial) {
        std::string mutated = valid;
        const std::size_t pos = rng.below(mutated.size());
        mutated[pos] = static_cast<char>('0' + rng.below(10));
        expect_no_crash(
            [](const std::string& s) { parse_decomposition(s); }, mutated);
    }
}

TEST(FuzzParsers, TimestampWireRandomBytes) {
    Rng rng(5005);
    for (int trial = 0; trial < 1000; ++trial) {
        std::vector<std::uint8_t> bytes(rng.below(40));
        for (auto& b : bytes) b = static_cast<std::uint8_t>(rng.below(256));
        try {
            const VectorTimestamp decoded = decode_timestamp(bytes);
            // If it decoded (possibly from a non-canonical varint), the
            // canonical re-encoding must round-trip to the same value.
            EXPECT_EQ(decode_timestamp(encode_timestamp(decoded)), decoded);
        } catch (const std::invalid_argument&) {
            // expected for malformed input
        }
    }
}

TEST(FuzzParsers, SyncFrameRandomBytes) {
    // decode_frame is the parser the synchronizer feeds with anything the
    // faulty network delivers: random soup must either fail with a typed
    // WireError or (checksum-collision odds aside) decode — never crash.
    Rng rng(5008);
    std::uint64_t rejects = 0;
    for (int trial = 0; trial < 2000; ++trial) {
        std::vector<std::uint8_t> bytes(rng.below(64));
        for (auto& b : bytes) b = static_cast<std::uint8_t>(rng.below(256));
        try {
            (void)decode_frame(bytes, 1 + rng.below(8));
        } catch (const WireError&) {
            ++rejects;
        }
    }
    // An 8-byte checksum makes accidental acceptance of soup implausible.
    EXPECT_EQ(rejects, 2000u);
}

TEST(FuzzParsers, SyncFrameMutatedValidFrames) {
    Rng rng(5009);
    const SyncFrame valid{
        .sequence = 77,
        .message = 12,
        .stamp = VectorTimestamp(std::vector<std::uint64_t>{9, 200, 0, 3})};
    const auto bytes = encode_frame(valid);
    for (int trial = 0; trial < 1000; ++trial) {
        auto mutated = bytes;
        const std::size_t edits = 1 + rng.below(4);
        for (std::size_t e = 0; e < edits; ++e) {
            const std::size_t pos = rng.below(mutated.size());
            switch (rng.below(3)) {
                case 0:
                    mutated[pos] ^=
                        static_cast<std::uint8_t>(1u << rng.below(8));
                    break;
                case 1: mutated.erase(mutated.begin() +
                                      static_cast<long>(pos)); break;
                default:
                    mutated.insert(mutated.begin() + static_cast<long>(pos),
                                   static_cast<std::uint8_t>(rng.below(256)));
                    break;
            }
        }
        try {
            const SyncFrame decoded = decode_frame(mutated, 4);
            // Only possible when the edits cancelled out exactly.
            EXPECT_EQ(decoded, valid);
        } catch (const WireError&) {
            // expected for nearly every mutation
        }
    }
}

TEST(FuzzParsers, TimestampWireExpectedWidthRandomBytes) {
    // The satellite fix: the expected-width overload must reject any
    // width disagreement before decoding components, so random soup can
    // never materialize a wrong-width vector.
    Rng rng(5010);
    for (int trial = 0; trial < 1000; ++trial) {
        std::vector<std::uint8_t> bytes(rng.below(40));
        for (auto& b : bytes) b = static_cast<std::uint8_t>(rng.below(256));
        const std::size_t d = 1 + rng.below(6);
        try {
            const VectorTimestamp decoded = decode_timestamp(bytes, d);
            EXPECT_EQ(decoded.width(), d);
        } catch (const std::invalid_argument&) {
            // expected for malformed input
        }
    }
}

TEST(FuzzParsers, TimestampWireTruncations) {
    Rng rng(5006);
    const Graph g = topology::client_server(2, 4);
    const SyncComputation c = testing::random_workload(g, 60, 0.0, 5007);
    const auto stamps = online_timestamps(c);
    for (const auto& stamp : stamps) {
        auto bytes = encode_timestamp(stamp);
        // Every strict prefix must be rejected.
        for (std::size_t cut = 0; cut < bytes.size(); ++cut) {
            const std::vector<std::uint8_t> prefix(bytes.begin(),
                                                   bytes.begin() +
                                                       static_cast<long>(cut));
            EXPECT_THROW(decode_timestamp(prefix), std::invalid_argument);
        }
    }
}

TEST(FuzzParsers, EpochFrameRandomBytes) {
    // The wire-v2 readers sit directly on the faulty network: random soup
    // must always fail with a typed WireError, through both the header
    // peek and the full decode.
    Rng rng(5011);
    std::uint64_t rejects = 0;
    std::vector<std::uint64_t> stamp(4);
    for (int trial = 0; trial < 2000; ++trial) {
        std::vector<std::uint8_t> bytes(rng.below(64));
        for (auto& b : bytes) b = static_cast<std::uint8_t>(rng.below(256));
        try {
            (void)peek_epoch_frame_header(bytes);
        } catch (const WireError&) {
            ++rejects;
        }
        try {
            (void)decode_epoch_frame_into(bytes, stamp);
        } catch (const WireError&) {
            ++rejects;
        }
    }
    EXPECT_EQ(rejects, 4000u);
}

TEST(FuzzParsers, EpochFrameTruncationsAndTrailingBytes) {
    std::vector<std::uint8_t> bytes;
    const std::vector<std::uint64_t> stamp{9, 200, 0, 3};
    std::vector<std::uint64_t> out(stamp.size());
    // Both layouts: epoch 0 emits the v1 frame, any later epoch the
    // marker-escaped v2 frame. Every strict prefix and every oversized
    // extension must be rejected by both readers.
    for (const EpochId epoch : {EpochId{0}, EpochId{3}}) {
        encode_epoch_frame_into(epoch, 77, 12, stamp, bytes);
        const FrameHeader header = peek_epoch_frame_header(bytes);
        EXPECT_EQ(header.epoch, epoch);
        EXPECT_EQ(header.sequence, 77u);
        for (std::size_t cut = 0; cut < bytes.size(); ++cut) {
            const std::span<const std::uint8_t> prefix(bytes.data(), cut);
            EXPECT_THROW((void)peek_epoch_frame_header(prefix), WireError);
            EXPECT_THROW((void)decode_epoch_frame_into(prefix, out),
                         WireError);
        }
        auto oversized = bytes;
        oversized.push_back(0x5A);
        EXPECT_THROW((void)peek_epoch_frame_header(oversized), WireError);
        EXPECT_THROW((void)decode_epoch_frame_into(oversized, out), WireError);
    }
}

TEST(FuzzParsers, EpochFrameOversizedVarints) {
    // A v2 marker followed by endless continuation bits must terminate
    // with a WireError — the varint reader bounds itself, never running
    // off the buffer or shifting past 64 bits.
    std::vector<std::uint8_t> bytes{kEpochFrameMarker};
    bytes.insert(bytes.end(), 32, 0xFF);
    std::vector<std::uint64_t> out(2);
    EXPECT_THROW((void)peek_epoch_frame_header(bytes), WireError);
    EXPECT_THROW((void)decode_epoch_frame_into(bytes, out), WireError);
}

TEST(FuzzParsers, EpochFrameMutatedValidFrames) {
    Rng rng(5012);
    const std::vector<std::uint64_t> stamp{4, 0, 31, 7, 1};
    std::vector<std::uint8_t> bytes;
    encode_epoch_frame_into(5, 42, 9, stamp, bytes);
    std::vector<std::uint64_t> out(stamp.size());
    for (int trial = 0; trial < 1000; ++trial) {
        auto mutated = bytes;
        const std::size_t edits = 1 + rng.below(4);
        for (std::size_t e = 0; e < edits; ++e) {
            const std::size_t pos = rng.below(mutated.size());
            switch (rng.below(3)) {
                case 0:
                    mutated[pos] ^=
                        static_cast<std::uint8_t>(1u << rng.below(8));
                    break;
                case 1: mutated.erase(mutated.begin() +
                                      static_cast<long>(pos)); break;
                default:
                    mutated.insert(mutated.begin() + static_cast<long>(pos),
                                   static_cast<std::uint8_t>(rng.below(256)));
                    break;
            }
        }
        try {
            const FrameHeader header = decode_epoch_frame_into(mutated, out);
            // Only possible when the edits cancelled out exactly.
            EXPECT_EQ(header.epoch, 5u);
            EXPECT_EQ(header.sequence, 42u);
            EXPECT_EQ(header.message, 9u);
            EXPECT_EQ(out, stamp);
        } catch (const WireError&) {
            // expected for nearly every mutation
        }
    }
}

TEST(FuzzParsers, WalRecordRandomSoupAndTruncations) {
    Rng rng(5013);
    std::uint64_t rejects = 0;
    for (int trial = 0; trial < 2000; ++trial) {
        std::vector<std::uint8_t> bytes(rng.below(64));
        for (auto& b : bytes) b = static_cast<std::uint8_t>(rng.below(256));
        try {
            (void)decode_wal_record(bytes);
        } catch (const RecoveryError&) {
            ++rejects;
        }
    }
    EXPECT_EQ(rejects, 2000u);

    WalRecord record;
    record.type = WalRecordType::commit;
    record.lsn = 5;
    record.peer = 2;
    record.sequence = 9;
    record.message = 4;
    record.epoch = 1;
    record.frame = {0x10, 0x20, 0x30};
    record.aux = {0x7F};
    std::vector<std::uint8_t> bytes;
    encode_wal_record_into(record, bytes);
    for (std::size_t cut = 0; cut < bytes.size(); ++cut) {
        const std::span<const std::uint8_t> prefix(bytes.data(), cut);
        EXPECT_THROW((void)decode_wal_record(prefix), RecoveryError);
    }
}

TEST(FuzzParsers, WalRecordMutatedValidRecords) {
    Rng rng(5014);
    WalRecord record;
    record.type = WalRecordType::ack;
    record.lsn = 118;
    record.peer = 3;
    record.sequence = 64;
    record.message = 1000;
    record.epoch = 2;
    record.aux = {1, 2, 3, 4, 5, 6};
    std::vector<std::uint8_t> bytes;
    encode_wal_record_into(record, bytes);
    for (int trial = 0; trial < 1000; ++trial) {
        auto mutated = bytes;
        const std::size_t edits = 1 + rng.below(4);
        for (std::size_t e = 0; e < edits; ++e) {
            const std::size_t pos = rng.below(mutated.size());
            switch (rng.below(3)) {
                case 0:
                    mutated[pos] ^=
                        static_cast<std::uint8_t>(1u << rng.below(8));
                    break;
                case 1: mutated.erase(mutated.begin() +
                                      static_cast<long>(pos)); break;
                default:
                    mutated.insert(mutated.begin() + static_cast<long>(pos),
                                   static_cast<std::uint8_t>(rng.below(256)));
                    break;
            }
        }
        try {
            const WalRecord decoded = decode_wal_record(mutated);
            EXPECT_EQ(decoded.type, record.type);
            EXPECT_EQ(decoded.lsn, record.lsn);
            EXPECT_EQ(decoded.sequence, record.sequence);
            EXPECT_EQ(decoded.aux, record.aux);
        } catch (const RecoveryError&) {
            // expected for nearly every mutation
        }
    }
}

TEST(FuzzParsers, SnapshotRandomSoupAndMutations) {
    Rng rng(5015);
    std::uint64_t rejects = 0;
    for (int trial = 0; trial < 1000; ++trial) {
        std::vector<std::uint8_t> bytes(rng.below(96));
        for (auto& b : bytes) b = static_cast<std::uint8_t>(rng.below(256));
        try {
            (void)decode_snapshot(bytes);
        } catch (const RecoveryError&) {
            ++rejects;
        }
    }
    EXPECT_EQ(rejects, 1000u);

    Snapshot snapshot;
    snapshot.state.self = 1;
    snapshot.state.epoch = 2;
    snapshot.state.cursor = 7;
    snapshot.state.steps = 19;
    snapshot.state.clock = {3, 0, 11};
    snapshot.state.out.push_back({2, 4, FrameWindow(2)});
    snapshot.state.in.push_back({0, 6, FrameWindow(2)});
    snapshot.wal_lsn = 12;
    const std::vector<std::uint8_t> bytes = encode_snapshot(snapshot);
    for (std::size_t cut = 0; cut < bytes.size(); ++cut) {
        const std::span<const std::uint8_t> prefix(bytes.data(), cut);
        EXPECT_THROW((void)decode_snapshot(prefix), RecoveryError);
    }
    for (int trial = 0; trial < 1000; ++trial) {
        auto mutated = bytes;
        const std::size_t pos = rng.below(mutated.size());
        mutated[pos] ^= static_cast<std::uint8_t>(1u << rng.below(8));
        try {
            const Snapshot decoded = decode_snapshot(mutated);
            // A single bit flip can only decode if it collided with the
            // checksum — implausible, but correctness still demands the
            // original value.
            EXPECT_EQ(decoded.state.self, snapshot.state.self);
            EXPECT_EQ(decoded.wal_lsn, snapshot.wal_lsn);
        } catch (const RecoveryError&) {
            // expected for every realistic mutation
        }
    }
}

obs::Postmortem fuzz_postmortem() {
    obs::Postmortem post;
    post.reason = obs::PostmortemReason::error;
    post.process = 2;
    post.step = 31;
    post.epoch = 1;
    post.frontier_epoch = 1;
    post.wal_lsn = 77;
    post.virtual_time = 4242;
    post.snapshots = 3;
    post.metrics.counters["sync_commits"] = 31;
    post.metrics.counters["sync_retransmits"] = 2;
    post.metrics.gauges["arena_bytes"] = 4096;
    post.rates.counters["sync_commits"] = 8;
    post.rates.gauges["arena_bytes"] = 4096;
    for (std::uint64_t i = 0; i < 12; ++i) {
        obs::TraceEvent event;
        event.virtual_time = 50 + i;
        event.logical = i;
        event.arg_a = i % 5;
        event.arg_b = i;
        event.process = static_cast<std::uint32_t>(i % 3);
        event.peer = static_cast<std::uint32_t>((i + 1) % 3);
        event.kind = static_cast<obs::TraceEventKind>(i % 4);
        post.events.push_back(event);
    }
    return post;
}

TEST(FuzzParsers, PostmortemRandomSoup) {
    Rng rng(5016);
    std::uint64_t rejects = 0;
    for (int trial = 0; trial < 2000; ++trial) {
        std::vector<std::uint8_t> bytes(rng.below(256));
        for (auto& b : bytes) b = static_cast<std::uint8_t>(rng.below(256));
        try {
            (void)obs::decode_postmortem(bytes);
        } catch (const obs::PostmortemError&) {
            ++rejects;
        }
    }
    // A random buffer cannot carry a valid FNV-1a trailer.
    EXPECT_EQ(rejects, 2000u);

    // Random soup behind the valid magic + version header still has to
    // clear the checksum, so every trial must reject cleanly too.
    rejects = 0;
    for (int trial = 0; trial < 2000; ++trial) {
        std::vector<std::uint8_t> bytes{'S', 'Y', 'F', 'R', 1, 0, 0, 0};
        const std::size_t body = rng.below(200);
        for (std::size_t i = 0; i < body; ++i) {
            bytes.push_back(static_cast<std::uint8_t>(rng.below(256)));
        }
        try {
            (void)obs::decode_postmortem(bytes);
        } catch (const obs::PostmortemError&) {
            ++rejects;
        }
    }
    EXPECT_EQ(rejects, 2000u);
}

TEST(FuzzParsers, PostmortemTruncationsAndTrailingBytes) {
    std::vector<std::uint8_t> bytes;
    obs::encode_postmortem_into(fuzz_postmortem(), bytes);
    for (std::size_t cut = 0; cut < bytes.size(); ++cut) {
        const std::vector<std::uint8_t> prefix(bytes.begin(),
                                               bytes.begin() +
                                                   static_cast<long>(cut));
        EXPECT_THROW((void)obs::decode_postmortem(prefix),
                     obs::PostmortemError)
            << "cut " << cut;
    }
    auto padded = bytes;
    padded.push_back(0);
    EXPECT_THROW((void)obs::decode_postmortem(padded),
                 obs::PostmortemError);
}

TEST(FuzzParsers, PostmortemMutatedValidDumps) {
    Rng rng(5017);
    const obs::Postmortem original = fuzz_postmortem();
    std::vector<std::uint8_t> bytes;
    obs::encode_postmortem_into(original, bytes);
    for (int trial = 0; trial < 1500; ++trial) {
        auto mutated = bytes;
        const std::size_t edits = 1 + rng.below(4);
        for (std::size_t e = 0; e < edits; ++e) {
            const std::size_t pos = rng.below(mutated.size());
            switch (rng.below(3)) {
                case 0:
                    mutated[pos] ^=
                        static_cast<std::uint8_t>(1u << rng.below(8));
                    break;
                case 1:
                    mutated.erase(mutated.begin() + static_cast<long>(pos));
                    break;
                default:
                    mutated.insert(mutated.begin() + static_cast<long>(pos),
                                   static_cast<std::uint8_t>(rng.below(256)));
                    break;
            }
        }
        try {
            const obs::Postmortem decoded =
                obs::decode_postmortem(mutated);
            // Decoding can only succeed when the mutations cancelled out
            // to a checksum collision; the content must still match.
            EXPECT_EQ(decoded, original);
        } catch (const obs::PostmortemError&) {
            // expected for nearly every mutation
        }
    }
}

std::vector<std::uint8_t> handcrafted_v3_frame(
    std::span<const std::uint64_t> header_and_pairs) {
    // marker, version 3, then caller-chosen varints, then a *valid*
    // FNV-1a trailer — so the structural validators (indices, counts,
    // widths), not the checksum, are what reject the frame.
    std::vector<std::uint8_t> bytes{kEpochFrameMarker};
    encode_varint(kDeltaFrameVersion, bytes);
    for (const std::uint64_t value : header_and_pairs) {
        encode_varint(value, bytes);
    }
    std::uint64_t checksum = fnv1a64(bytes);
    for (int i = 0; i < 8; ++i) {
        bytes.push_back(static_cast<std::uint8_t>(checksum));
        checksum >>= 8;
    }
    return bytes;
}

TEST(FuzzParsers, DeltaFrameRandomBytes) {
    // The delta reader sits on the same faulty network as the full-frame
    // readers: random soup must always fail with a typed WireError.
    Rng rng(5018);
    std::uint64_t rejects = 0;
    std::vector<std::uint64_t> base{3, 1, 4, 1};
    std::vector<std::uint64_t> out(base.size());
    for (int trial = 0; trial < 2000; ++trial) {
        std::vector<std::uint8_t> bytes(rng.below(64));
        for (auto& b : bytes) b = static_cast<std::uint8_t>(rng.below(256));
        try {
            (void)decode_delta_frame_into(bytes, base, out);
        } catch (const WireError&) {
            ++rejects;
        }
        try {
            (void)peek_frame_info(bytes);
        } catch (const WireError&) {
            ++rejects;
        }
    }
    EXPECT_EQ(rejects, 4000u);
}

TEST(FuzzParsers, DeltaFrameTruncationsAndMutations) {
    Rng rng(5019);
    const std::vector<std::uint64_t> base{9, 200, 0, 3, 15};
    const std::vector<std::uint64_t> stamp{9, 214, 0, 4, 15};
    std::vector<std::uint8_t> bytes;
    ASSERT_TRUE(encode_delta_frame_into(2, 40, 7, base, stamp, bytes));
    std::vector<std::uint64_t> out(base.size());
    for (std::size_t cut = 0; cut < bytes.size(); ++cut) {
        const std::span<const std::uint8_t> prefix(bytes.data(), cut);
        EXPECT_THROW((void)decode_delta_frame_into(prefix, base, out),
                     WireError);
        EXPECT_THROW((void)peek_frame_info(prefix), WireError);
    }
    for (int trial = 0; trial < 1000; ++trial) {
        auto mutated = bytes;
        const std::size_t edits = 1 + rng.below(4);
        for (std::size_t e = 0; e < edits; ++e) {
            const std::size_t pos = rng.below(mutated.size());
            switch (rng.below(3)) {
                case 0:
                    mutated[pos] ^=
                        static_cast<std::uint8_t>(1u << rng.below(8));
                    break;
                case 1: mutated.erase(mutated.begin() +
                                      static_cast<long>(pos)); break;
                default:
                    mutated.insert(mutated.begin() + static_cast<long>(pos),
                                   static_cast<std::uint8_t>(rng.below(256)));
                    break;
            }
        }
        try {
            const FrameHeader header =
                decode_delta_frame_into(mutated, base, out);
            // Only possible when the edits cancelled out exactly.
            EXPECT_EQ(header.epoch, 2u);
            EXPECT_EQ(header.sequence, 40u);
            EXPECT_EQ(out, stamp);
        } catch (const WireError&) {
            // expected for nearly every mutation
        }
    }
}

TEST(FuzzParsers, DeltaFrameHostileIndicesAndCounts) {
    // Checksum-valid v3 frames whose structure lies: each must be
    // rejected before it can write outside `out` or loop on a hostile
    // count. Header varints are epoch, sequence, message, count, then
    // count x (index, increment) pairs.
    const std::vector<std::uint64_t> base{5, 6, 7, 8};
    std::vector<std::uint64_t> out(base.size());
    const std::vector<std::vector<std::uint64_t>> hostile = {
        {0, 3, 1, 1, 4, 2},          // index 4 out of range for width 4
        {0, 3, 1, 2, 2, 1, 1, 1},    // indices not strictly increasing
        {0, 3, 1, 2, 1, 1, 1, 1},    // repeated index
        {0, 3, 1, 5, 0, 1, 1, 1, 2, 1, 3, 1},  // count 5 > width, 4 pairs
        {0, 3, 1, 1},                // count 1 but no pairs follow
        {0, 3, 1, 2, 0, 1},          // count 2 but only one pair
    };
    for (const auto& fields : hostile) {
        const auto bytes = handcrafted_v3_frame(fields);
        EXPECT_THROW((void)decode_delta_frame_into(bytes, base, out),
                     WireError)
            << "hostile frame with " << fields.size() << " fields decoded";
    }
    // Endless continuation bits after the version escape must terminate.
    std::vector<std::uint8_t> overlong{kEpochFrameMarker, 3};
    overlong.insert(overlong.end(), 32, 0xFF);
    EXPECT_THROW((void)decode_delta_frame_into(overlong, base, out),
                 WireError);
    EXPECT_THROW((void)peek_frame_info(overlong), WireError);
}

TEST(FuzzParsers, BatchContainerRandomBytes) {
    // BatchReader's constructor validates structure, not the advisory
    // outer checksum — so random soup may occasionally construct; the
    // entry iteration must then either yield spans or throw WireError,
    // never crash or loop.
    Rng rng(5020);
    for (int trial = 0; trial < 2000; ++trial) {
        std::vector<std::uint8_t> bytes(rng.below(96));
        for (auto& b : bytes) b = static_cast<std::uint8_t>(rng.below(256));
        try {
            BatchReader reader(bytes);
            BatchFrame::Entry entry;
            std::size_t yielded = 0;
            while (reader.next(entry)) {
                ++yielded;
                ASSERT_LE(yielded, reader.declared_count());
            }
        } catch (const WireError&) {
            // expected for nearly every buffer
        }
    }
}

TEST(FuzzParsers, BatchContainerTruncationsAndHostileCounts) {
    BatchFrame builder;
    const std::vector<std::uint8_t> body_a{0x11, 0x22, 0x33};
    const std::vector<std::uint8_t> body_b{0x44};
    const std::vector<std::uint8_t> body_c{0x55, 0x66};
    builder.add(0, 7, body_a);
    builder.add(1, 9, body_b);
    builder.add(0, 8, body_c);
    std::vector<std::uint8_t> bytes;
    builder.encode_batch_into(bytes);
    // Every strict prefix either fails construction or breaks
    // structurally during iteration; entries yielded before the break
    // must be bitwise prefixes of the originals.
    const std::vector<std::vector<std::uint8_t>> bodies{body_a, body_b,
                                                        body_c};
    for (std::size_t cut = 0; cut < bytes.size(); ++cut) {
        const std::span<const std::uint8_t> prefix(bytes.data(), cut);
        try {
            BatchReader reader(prefix);
            EXPECT_FALSE(reader.intact()) << "cut " << cut;
            BatchFrame::Entry entry;
            std::size_t yielded = 0;
            while (reader.next(entry)) {
                ASSERT_LT(yielded, bodies.size());
                EXPECT_TRUE(std::equal(entry.body.begin(), entry.body.end(),
                                       bodies[yielded].begin(),
                                       bodies[yielded].end()))
                    << "cut " << cut << " entry " << yielded;
                ++yielded;
            }
        } catch (const WireError&) {
            // expected once the cut lands mid-entry
        }
    }
    // A hostile declared count cannot make next() run past the payload:
    // the reader throws truncated once the entries run out early.
    std::vector<std::uint8_t> hostile{kEpochFrameMarker};
    encode_varint(kBatchFrameVersion, hostile);
    encode_varint(1000000, hostile);  // declared count, no entries follow
    std::uint64_t checksum = fnv1a64(hostile);
    for (int i = 0; i < 8; ++i) {
        hostile.push_back(static_cast<std::uint8_t>(checksum));
        checksum >>= 8;
    }
    BatchReader reader(hostile);
    EXPECT_TRUE(reader.intact());
    EXPECT_EQ(reader.declared_count(), 1000000u);
    BatchFrame::Entry entry;
    EXPECT_THROW((void)reader.next(entry), WireError);
}

TEST(FuzzParsers, BatchContainerMutatedRealTraffic) {
    // Containers of real checksummed frames, mutated: the reader either
    // throws on a structural break or yields entries whose bodies the
    // per-entry frame decode then accepts or rejects — end to end, a
    // flipped bit can never produce a frame that differs from an
    // original yet decodes.
    Rng rng(5021);
    const std::vector<std::uint64_t> stamp_a{4, 0, 31};
    const std::vector<std::uint64_t> stamp_b{5, 2, 31};
    std::vector<std::uint8_t> frame_a;
    std::vector<std::uint8_t> frame_b;
    encode_epoch_frame_into(1, 6, 2, stamp_a, frame_a);
    encode_epoch_frame_into(1, 7, 3, stamp_b, frame_b);
    BatchFrame builder;
    builder.add(0, 2, frame_a);
    builder.add(1, 3, frame_b);
    std::vector<std::uint8_t> bytes;
    builder.encode_batch_into(bytes);
    std::vector<std::uint64_t> out(stamp_a.size());
    for (int trial = 0; trial < 1500; ++trial) {
        auto mutated = bytes;
        const std::size_t edits = 1 + rng.below(4);
        for (std::size_t e = 0; e < edits; ++e) {
            const std::size_t pos = rng.below(mutated.size());
            switch (rng.below(3)) {
                case 0:
                    mutated[pos] ^=
                        static_cast<std::uint8_t>(1u << rng.below(8));
                    break;
                case 1: mutated.erase(mutated.begin() +
                                      static_cast<long>(pos)); break;
                default:
                    mutated.insert(mutated.begin() + static_cast<long>(pos),
                                   static_cast<std::uint8_t>(rng.below(256)));
                    break;
            }
        }
        try {
            BatchReader reader(mutated);
            BatchFrame::Entry entry;
            while (reader.next(entry)) {
                try {
                    const FrameHeader header =
                        decode_epoch_frame_into(entry.body, out);
                    EXPECT_EQ(header.epoch, 1u);
                    EXPECT_TRUE(out == stamp_a || out == stamp_b);
                } catch (const WireError&) {
                    // damaged entry — rejected by its own checksum
                }
            }
        } catch (const WireError&) {
            // structural break — remainder of the container is lost
        }
    }
}

// ---- SYTR streaming trace format (trace/trace_io.hpp) ------------------

// Small chunks so truncation cuts land inside chunk frames, between
// frames, and inside the end frame.
std::string valid_sytr_stream(std::size_t chunk_events) {
    const SyncComputation c = testing::random_workload(
        topology::client_server(2, 3), 50, 0.4, 5022);
    std::stringstream out;
    StreamingTraceWriter writer(out, c.topology(), chunk_events);
    for (const SyncMessage& m : c.messages()) {
        writer.add_message(m.sender, m.receiver);
        if (m.id % 3 == 0) writer.add_internal(m.sender);
    }
    writer.finish();
    return out.str();
}

void append_test_varint(std::vector<std::uint8_t>& out, std::uint64_t v) {
    while (v >= 0x80) {
        out.push_back(static_cast<std::uint8_t>(v) | 0x80);
        v >>= 7;
    }
    out.push_back(static_cast<std::uint8_t>(v));
}

// Seals `payload` behind `prefix` (magic+version or a frame tag) with
// the u32le length + FNV trailer framing the SYTR reader validates.
std::string sytr_frame(std::vector<std::uint8_t> prefix,
                       const std::vector<std::uint8_t>& payload) {
    prefix.push_back(static_cast<std::uint8_t>(payload.size()));
    prefix.push_back(static_cast<std::uint8_t>(payload.size() >> 8));
    prefix.push_back(static_cast<std::uint8_t>(payload.size() >> 16));
    prefix.push_back(static_cast<std::uint8_t>(payload.size() >> 24));
    prefix.insert(prefix.end(), payload.begin(), payload.end());
    common::append_checksum_trailer(prefix, 0);
    return std::string(reinterpret_cast<const char*>(prefix.data()),
                       prefix.size());
}

void expect_sytr_no_crash(const std::string& bytes) {
    try {
        std::istringstream in(bytes);
        StreamingTraceReader reader(in);
        while (reader.next().has_value()) {
        }
    } catch (const std::invalid_argument&) {
        // expected for malformed input
    }
}

TEST(FuzzParsers, SytrRandomSoup) {
    Rng rng(5023);
    for (int trial = 0; trial < 500; ++trial) {
        std::string soup(10 + rng.below(200), '\0');
        for (auto& ch : soup) ch = static_cast<char>(rng.below(256));
        expect_sytr_no_crash(soup);
    }
    // Soup behind a valid magic + version prefix still has to clear the
    // length guard and the frame checksum.
    for (int trial = 0; trial < 500; ++trial) {
        std::string prefixed("SYTR\x02", 5);
        const std::size_t body = rng.below(160);
        for (std::size_t i = 0; i < body; ++i) {
            prefixed.push_back(static_cast<char>(rng.below(256)));
        }
        expect_sytr_no_crash(prefixed);
    }
}

TEST(FuzzParsers, SytrTruncationMidChunk) {
    // Every strict prefix of a valid multi-frame stream must throw: the
    // header, chunk, and end frames each seal with a checksum trailer,
    // and a missing end frame is itself a truncation.
    const std::string valid = valid_sytr_stream(4);
    for (std::size_t cut = 0; cut < valid.size(); ++cut) {
        std::istringstream in(valid.substr(0, cut));
        EXPECT_THROW(
            {
                StreamingTraceReader reader(in);
                while (reader.next().has_value()) {
                }
            },
            std::invalid_argument)
            << "cut " << cut;
    }
    // The unmutilated stream parses to completion.
    std::istringstream in(valid);
    StreamingTraceReader reader(in);
    std::uint64_t events = 0;
    while (reader.next().has_value()) ++events;
    EXPECT_TRUE(reader.finished());
    EXPECT_GT(events, 50u);
}

TEST(FuzzParsers, SytrBitFlipSoup) {
    Rng rng(5024);
    const std::string valid = valid_sytr_stream(7);
    std::istringstream reference_in(valid);
    StreamingTraceReader reference(reference_in);
    std::uint64_t total = 0;
    while (reference.next().has_value()) ++total;

    for (int trial = 0; trial < 600; ++trial) {
        std::string mutated = valid;
        const std::size_t edits = 1 + rng.below(4);
        for (std::size_t e = 0; e < edits; ++e) {
            const std::size_t pos = rng.below(mutated.size());
            switch (rng.below(3)) {
                case 0:
                    mutated[pos] = static_cast<char>(
                        static_cast<std::uint8_t>(mutated[pos]) ^
                        (1u << rng.below(8)));
                    break;
                case 1: mutated.erase(pos, 1); break;
                default:
                    mutated.insert(pos, 1,
                                   static_cast<char>(rng.below(256)));
                    break;
            }
        }
        try {
            std::istringstream in(mutated);
            StreamingTraceReader reader(in);
            std::uint64_t events = 0;
            while (reader.next().has_value()) ++events;
            // Completing the stream requires every touched frame's
            // checksum to have collided — then the totals still agree.
            if (reader.finished()) {
                EXPECT_EQ(events, total);
            }
        } catch (const std::invalid_argument&) {
            // expected for nearly every mutation
        }
    }
}

TEST(FuzzParsers, SytrHostileCountsBehindValidChecksums) {
    // Checksum-valid header frames whose varints lie: a hostile process
    // or edge count must be rejected by the structural guards, not by
    // attempting a four-billion-entry allocation.
    const auto hostile_header =
        [](std::uint64_t n, std::uint64_t e,
           const std::vector<std::uint64_t>& edge_fields) {
            std::vector<std::uint8_t> payload;
            append_test_varint(payload, n);
            append_test_varint(payload, e);
            for (const std::uint64_t v : edge_fields) {
                append_test_varint(payload, v);
            }
            return sytr_frame({'S', 'Y', 'T', 'R', 2}, payload);
        };

    const std::vector<std::pair<std::string, std::string>> cases = {
        {"hostile process count", hostile_header(UINT64_MAX, 0, {})},
        {"hostile edge count", hostile_header(3, UINT64_MAX, {})},
        {"edge endpoint out of range", hostile_header(2, 1, {5, 1})},
        {"trailing payload garbage", hostile_header(2, 1, {0, 1, 99})},
    };
    for (const auto& [what, bytes] : cases) {
        std::istringstream in(bytes);
        EXPECT_THROW(StreamingTraceReader reader(in), std::invalid_argument)
            << what;
    }

    // Behind a genuinely valid header, hostile chunk frames: a lying
    // record count, an out-of-range endpoint, a self-message, and an
    // unknown record kind must each throw before any record is yielded.
    const std::string header = hostile_header(2, 1, {0, 1});
    const auto hostile_chunk =
        [&](const std::vector<std::uint8_t>& payload) {
            return header + sytr_frame({'C'}, payload);
        };
    const auto record = [](std::uint8_t kind,
                           const std::vector<std::uint64_t>& fields) {
        std::vector<std::uint8_t> bytes{kind};
        for (const std::uint64_t v : fields) append_test_varint(bytes, v);
        return bytes;
    };
    std::vector<std::pair<std::string, std::vector<std::uint8_t>>> chunks;
    {
        std::vector<std::uint8_t> lying_count;
        append_test_varint(lying_count, UINT64_MAX);
        chunks.emplace_back("hostile record count", lying_count);

        std::vector<std::uint8_t> bad_endpoint;
        append_test_varint(bad_endpoint, 1);
        const auto r1 = record(0, {0, 7});
        bad_endpoint.insert(bad_endpoint.end(), r1.begin(), r1.end());
        chunks.emplace_back("endpoint out of range", bad_endpoint);

        std::vector<std::uint8_t> self_message;
        append_test_varint(self_message, 1);
        const auto r2 = record(0, {1, 1});
        self_message.insert(self_message.end(), r2.begin(), r2.end());
        chunks.emplace_back("self-message", self_message);

        std::vector<std::uint8_t> bad_kind;
        append_test_varint(bad_kind, 1);
        const auto r3 = record(9, {0});
        bad_kind.insert(bad_kind.end(), r3.begin(), r3.end());
        chunks.emplace_back("unknown record kind", bad_kind);
    }
    for (const auto& [what, payload] : chunks) {
        std::istringstream in(hostile_chunk(payload));
        StreamingTraceReader reader(in);
        EXPECT_THROW((void)reader.next(), std::invalid_argument) << what;
    }

    // Sanity: the same header followed by a well-formed chunk and end
    // frame parses cleanly — the rejections above are the guards, not
    // an over-strict reader.
    std::vector<std::uint8_t> good_payload;
    append_test_varint(good_payload, 1);
    const auto good_record = record(0, {0, 1});
    good_payload.insert(good_payload.end(), good_record.begin(),
                        good_record.end());
    std::vector<std::uint8_t> end_payload;
    append_test_varint(end_payload, 1);
    std::istringstream in(header + sytr_frame({'C'}, good_payload) +
                          sytr_frame({'E'}, end_payload));
    StreamingTraceReader reader(in);
    std::uint64_t events = 0;
    while (reader.next().has_value()) ++events;
    EXPECT_EQ(events, 1u);
    EXPECT_TRUE(reader.finished());
}

// ---- SpillStore chunk codec (common/spill_store.hpp) -------------------

TEST(FuzzParsers, SpillChunkRandomSoup) {
    Rng rng(5025);
    std::uint64_t rejects = 0;
    for (int trial = 0; trial < 2000; ++trial) {
        std::vector<std::uint8_t> bytes(rng.below(96));
        for (auto& b : bytes) b = static_cast<std::uint8_t>(rng.below(256));
        try {
            (void)SpillStore::decode_chunk(bytes, rng.below(4));
        } catch (const SpillError&) {
            ++rejects;
        }
    }
    // The magic + checksum make accidental acceptance implausible.
    EXPECT_EQ(rejects, 2000u);
}

TEST(FuzzParsers, SpillChunkTruncationsAndTrailingBytes) {
    std::vector<std::uint8_t> payload(100);
    for (std::size_t i = 0; i < payload.size(); ++i) {
        payload[i] = static_cast<std::uint8_t>(i * 3);
    }
    std::vector<std::uint8_t> frame;
    SpillStore::encode_chunk(11, payload, frame);
    for (std::size_t cut = 0; cut < frame.size(); ++cut) {
        const std::span<const std::uint8_t> prefix(frame.data(), cut);
        EXPECT_THROW((void)SpillStore::decode_chunk(prefix, 11), SpillError)
            << "cut " << cut;
    }
    auto padded = frame;
    padded.push_back(0);
    EXPECT_THROW((void)SpillStore::decode_chunk(padded, 11), SpillError);
}

TEST(FuzzParsers, SpillChunkMutatedValidFrames) {
    Rng rng(5026);
    std::vector<std::uint8_t> payload(64);
    for (std::size_t i = 0; i < payload.size(); ++i) {
        payload[i] = static_cast<std::uint8_t>(0xA0 + i);
    }
    std::vector<std::uint8_t> frame;
    SpillStore::encode_chunk(3, payload, frame);
    for (int trial = 0; trial < 1500; ++trial) {
        auto mutated = frame;
        const std::size_t edits = 1 + rng.below(4);
        for (std::size_t e = 0; e < edits; ++e) {
            const std::size_t pos = rng.below(mutated.size());
            switch (rng.below(3)) {
                case 0:
                    mutated[pos] ^=
                        static_cast<std::uint8_t>(1u << rng.below(8));
                    break;
                case 1: mutated.erase(mutated.begin() +
                                      static_cast<long>(pos)); break;
                default:
                    mutated.insert(mutated.begin() + static_cast<long>(pos),
                                   static_cast<std::uint8_t>(rng.below(256)));
                    break;
            }
        }
        try {
            const auto decoded = SpillStore::decode_chunk(mutated, 3);
            // Only a checksum collision decodes — content must match.
            EXPECT_TRUE(std::equal(decoded.begin(), decoded.end(),
                                   payload.begin(), payload.end()));
        } catch (const SpillError&) {
            // expected for nearly every mutation
        }
    }
}

TEST(FuzzParsers, SpillChunkHostileLengthAndWrongId) {
    std::vector<std::uint8_t> payload{1, 2, 3, 4};
    std::vector<std::uint8_t> frame;
    SpillStore::encode_chunk(6, payload, frame);

    // Reading under the wrong id is a format error even though every
    // byte is intact — chunk identity is part of the contract.
    EXPECT_THROW((void)SpillStore::decode_chunk(frame, 7), SpillError);

    // A hostile length field (huge u64 at offset 13) must be caught by
    // the length-consistency check before any allocation-sized trust.
    auto hostile = frame;
    for (std::size_t i = 0; i < 8; ++i) {
        hostile[13 + i] = 0xFF;
    }
    try {
        (void)SpillStore::decode_chunk(hostile, 6);
        FAIL() << "expected SpillError";
    } catch (const SpillError& e) {
        EXPECT_NE(e.kind(), SpillError::Kind::io);
    }
}

}  // namespace
}  // namespace syncts
