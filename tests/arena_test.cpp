#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <new>
#include <vector>

#include "clocks/online_clock.hpp"
#include "clocks/vector_timestamp.hpp"
#include "common/timestamp_arena.hpp"
#include "common/ts_kernels.hpp"
#include "decomp/cover_decomposer.hpp"
#include "graph/generators.hpp"

// ---- Counting allocator -----------------------------------------------
// Global operator new/delete replacements let the steady-state tests
// assert "zero heap allocations" directly instead of inferring it from
// capacity bookkeeping.
//
// GCC pairs the replacement operator new (which delegates to malloc) with
// the free() in the replacement delete and reports a mismatched-new-delete
// pair; replacing the global operators this way is well-defined, so
// silence the false positive for this translation unit.
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"
#endif

namespace {

std::atomic<std::size_t> g_allocations{0};

}  // namespace

void* operator new(std::size_t size) {
    ++g_allocations;
    if (void* p = std::malloc(size ? size : 1)) return p;
    throw std::bad_alloc();
}

void* operator new[](std::size_t size) {
    ++g_allocations;
    if (void* p = std::malloc(size ? size : 1)) return p;
    throw std::bad_alloc();
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace syncts {
namespace {

TEST(TimestampArena, AllocateZeroInitializesSlots) {
    TimestampArena arena(3);
    const TsHandle h = arena.allocate();
    EXPECT_EQ(h, 0u);
    EXPECT_EQ(arena.size(), 1u);
    for (const std::uint64_t component : arena.span(h)) {
        EXPECT_EQ(component, 0u);
    }
}

TEST(TimestampArena, AllocateCopiesComponents) {
    TimestampArena arena(3);
    const std::vector<std::uint64_t> components{1, 2, 3};
    const TsHandle h = arena.allocate(components);
    ASSERT_EQ(arena.span(h).size(), 3u);
    EXPECT_EQ(arena.span(h)[0], 1u);
    EXPECT_EQ(arena.span(h)[1], 2u);
    EXPECT_EQ(arena.span(h)[2], 3u);
}

TEST(TimestampArena, AllocateRejectsWidthMismatch) {
    TimestampArena arena(3);
    const std::vector<std::uint64_t> wrong{1, 2};
    EXPECT_THROW(arena.allocate(wrong), std::invalid_argument);
}

TEST(TimestampArena, SpanRejectsOutOfRangeHandle) {
    TimestampArena arena(2);
    arena.allocate();
    EXPECT_THROW(arena.span(1), std::invalid_argument);
    EXPECT_THROW(arena.span(kNoTimestamp), std::invalid_argument);
}

TEST(TimestampArena, HandlesStayValidAcrossGrowth) {
    // Start with no reserve so the slab reallocates many times; handles
    // must keep addressing the same logical rows with their values intact.
    TimestampArena arena(4);
    constexpr std::size_t kSlots = 1000;
    for (std::size_t i = 0; i < kSlots; ++i) {
        const TsHandle h = arena.allocate();
        auto row = arena.span(h);
        for (std::size_t k = 0; k < row.size(); ++k) {
            row[k] = i * 10 + k;
        }
    }
    ASSERT_EQ(arena.size(), kSlots);
    for (std::size_t i = 0; i < kSlots; ++i) {
        const auto row = arena.span(static_cast<TsHandle>(i));
        for (std::size_t k = 0; k < row.size(); ++k) {
            ASSERT_EQ(row[k], i * 10 + k) << "slot " << i;
        }
    }
}

TEST(TimestampArena, ClearKeepsCapacityForReuse) {
    TimestampArena arena(8, 64);
    for (int i = 0; i < 64; ++i) arena.allocate();
    const std::size_t capacity = arena.capacity();
    arena.clear();
    EXPECT_EQ(arena.size(), 0u);
    EXPECT_EQ(arena.capacity(), capacity);

    const std::size_t before = g_allocations.load();
    for (int round = 0; round < 10; ++round) {
        arena.clear();
        for (int i = 0; i < 64; ++i) arena.allocate();
    }
    EXPECT_EQ(g_allocations.load(), before)
        << "clear+allocate within capacity must not touch the heap";
}

TEST(TimestampArena, ZeroWidthArenaTracksSlots) {
    TimestampArena arena(0);
    const TsHandle a = arena.allocate();
    const TsHandle b = arena.allocate();
    EXPECT_EQ(a, 0u);
    EXPECT_EQ(b, 1u);
    EXPECT_EQ(arena.size(), 2u);
    EXPECT_TRUE(arena.span(a).empty());
    arena.clear();
    EXPECT_EQ(arena.size(), 0u);
}

// ---- Batch kernels ----------------------------------------------------

TimestampArena sample_arena() {
    TimestampArena arena(3, 5);
    arena.allocate(std::vector<std::uint64_t>{0, 0, 0});
    arena.allocate(std::vector<std::uint64_t>{1, 2, 3});
    arena.allocate(std::vector<std::uint64_t>{2, 2, 3});
    arena.allocate(std::vector<std::uint64_t>{3, 0, 0});
    arena.allocate(std::vector<std::uint64_t>{1, 2, 3});
    return arena;
}

TEST(TimestampArena, LeqManyMatchesScalarKernel) {
    const TimestampArena arena = sample_arena();
    const std::vector<std::uint64_t> probe{1, 2, 3};
    std::vector<std::uint8_t> out(arena.size());
    leq_many(arena, probe, out);
    for (std::size_t i = 0; i < arena.size(); ++i) {
        EXPECT_EQ(out[i] != 0,
                  ts::leq(probe, arena.span(static_cast<TsHandle>(i))))
            << "slot " << i;
    }
}

TEST(TimestampArena, RelateManyMatchesScalarKernel) {
    const TimestampArena arena = sample_arena();
    const std::vector<std::uint64_t> probe{1, 2, 3};
    std::vector<std::uint8_t> out(arena.size());
    relate_many(arena, probe, out);
    for (std::size_t i = 0; i < arena.size(); ++i) {
        EXPECT_EQ(out[i],
                  ts::relate(arena.span(static_cast<TsHandle>(i)), probe))
            << "slot " << i;
    }
}

TEST(TimestampArena, DominatorsOfFindsStrictDominators) {
    const TimestampArena arena = sample_arena();
    const std::vector<std::uint64_t> probe{1, 2, 3};
    const std::vector<TsHandle> dominators = dominators_of(arena, probe);
    // Only slot 2 = (2,2,3) strictly dominates (1,2,3); the two equal
    // slots (1 and 4) do not.
    ASSERT_EQ(dominators.size(), 1u);
    EXPECT_EQ(dominators[0], 2u);
}

TEST(TimestampArena, BatchKernelsRejectMismatchedSizes) {
    const TimestampArena arena = sample_arena();
    const std::vector<std::uint64_t> narrow{1, 2};
    std::vector<std::uint8_t> out(arena.size());
    EXPECT_THROW(leq_many(arena, narrow, out), std::invalid_argument);
    const std::vector<std::uint64_t> probe{1, 2, 3};
    std::vector<std::uint8_t> short_out(arena.size() - 1);
    EXPECT_THROW(relate_many(arena, probe, short_out),
                 std::invalid_argument);
}

// ---- Span kernels agree with the VectorTimestamp compat shims ---------

TEST(TsKernels, KernelsMatchVectorTimestampMethods) {
    const VectorTimestamp u(std::vector<std::uint64_t>{1, 2, 3});
    const VectorTimestamp v(std::vector<std::uint64_t>{2, 2, 4});
    const VectorTimestamp w(std::vector<std::uint64_t>{0, 5, 0});

    EXPECT_EQ(ts::leq(u.components(), v.components()), u.leq(v));
    EXPECT_EQ(ts::less(u.components(), v.components()), u.less(v));
    EXPECT_EQ(ts::concurrent(u.components(), w.components()),
              u.concurrent_with(w));
    EXPECT_EQ(ts::total(u.components()), u.total());

    VectorTimestamp joined = u;
    joined.join(v);
    std::vector<std::uint64_t> raw{1, 2, 3};
    ts::join(raw, v.components());
    EXPECT_EQ(joined, VectorTimestamp(raw));
}

TEST(TsKernels, RelateEncodesAllFourOutcomes) {
    const std::vector<std::uint64_t> low{1, 1};
    const std::vector<std::uint64_t> high{2, 2};
    const std::vector<std::uint64_t> cross{0, 3};
    EXPECT_EQ(ts::relate(low, high), ts::kRowLeq);
    EXPECT_EQ(ts::relate(high, low), ts::kProbeLeq);
    EXPECT_EQ(ts::relate(low, low), ts::kRowLeq | ts::kProbeLeq);
    EXPECT_EQ(ts::relate(low, cross), 0);
}

// ---- Zero-allocation steady state -------------------------------------

TEST(TimestampArena, OnlineHotPathIsAllocationFreeInSteadyState) {
    const Graph topology = topology::star(6);
    auto decomposition = std::make_shared<const EdgeDecomposition>(
        default_decomposition(topology));
    OnlineTimestamper engine(decomposition);

    TimestampArena arena(engine.width(), 256);
    // Warm-up: sizes the engine's internal scratch and fills the arena
    // once so every later round runs inside reserved capacity.
    for (ProcessId client = 1; client < 6; ++client) {
        engine.timestamp_message(0, client, arena);
    }
    arena.clear();

    const std::size_t before = g_allocations.load();
    for (int round = 0; round < 16; ++round) {
        arena.clear();
        for (int i = 0; i < 16; ++i) {
            for (ProcessId client = 1; client < 6; ++client) {
                engine.timestamp_message(0, client, arena);
            }
        }
    }
    EXPECT_EQ(g_allocations.load(), before)
        << "the Fig. 5 rendezvous hot path must not allocate per message";
}

TEST(TimestampArena, MetricsHotPathIsAllocationFreeInSteadyState) {
    const Graph topology = topology::star(6);
    auto decomposition = std::make_shared<const EdgeDecomposition>(
        default_decomposition(topology));
    OnlineTimestamper engine(decomposition);

    // Registration (counter/gauge/histogram creation) is allowed to
    // allocate; it happens once, before the measured region.
    obs::MetricsRegistry registry;
    TimestampArena arena(engine.width(), 256);
    arena.attach_metrics(registry, "arena");
    engine.attach_metrics(registry);
    obs::Histogram& latency = registry.histogram("probe_latency");
    obs::Counter& probes = registry.counter("probes");

    for (ProcessId client = 1; client < 6; ++client) {
        engine.timestamp_message(0, client, arena);
    }
    arena.clear();
    std::vector<std::uint8_t> out(16 * 5);
    const std::vector<std::uint64_t> probe(engine.width(), 1);

    const std::size_t before = g_allocations.load();
    for (int round = 0; round < 16; ++round) {
        arena.clear();
        for (int i = 0; i < 16; ++i) {
            for (ProcessId client = 1; client < 6; ++client) {
                engine.timestamp_message(0, client, arena);
                probes.inc();
                latency.record(static_cast<std::uint64_t>(i));
            }
        }
        // The instrumented batch kernel (note_kernel) is on the same
        // guarantee.
        out.resize(arena.size());
        leq_many(arena, probe, out);
    }
    EXPECT_EQ(g_allocations.load(), before)
        << "counter inc + histogram record on the arena hot path must not "
           "touch the heap";
    EXPECT_EQ(registry.counter("arena_slots").value(),
              registry.counter("clock_online_stamps").value());
    EXPECT_EQ(probes.value(), 16u * 16u * 5u);
    EXPECT_EQ(latency.count(), 16u * 16u * 5u);
    EXPECT_EQ(registry.counter("arena_kernel_calls").value(), 16u);
}

}  // namespace
}  // namespace syncts
