#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <new>
#include <vector>

#include "clocks/online_clock.hpp"
#include "clocks/vector_timestamp.hpp"
#include "common/region.hpp"
#include "common/timestamp_arena.hpp"
#include "common/ts_kernels.hpp"
#include "decomp/cover_decomposer.hpp"
#include "graph/generators.hpp"

// ---- Counting allocator -----------------------------------------------
// Global operator new/delete replacements let the steady-state tests
// assert "zero heap allocations" directly instead of inferring it from
// capacity bookkeeping.
//
// GCC pairs the replacement operator new (which delegates to malloc) with
// the free() in the replacement delete and reports a mismatched-new-delete
// pair; replacing the global operators this way is well-defined, so
// silence the false positive for this translation unit.
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"
#endif

namespace {

std::atomic<std::size_t> g_allocations{0};

}  // namespace

void* operator new(std::size_t size) {
    ++g_allocations;
    if (void* p = std::malloc(size ? size : 1)) return p;
    throw std::bad_alloc();
}

void* operator new[](std::size_t size) {
    ++g_allocations;
    if (void* p = std::malloc(size ? size : 1)) return p;
    throw std::bad_alloc();
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace syncts {
namespace {

TEST(TimestampArena, AllocateZeroInitializesSlots) {
    TimestampArena arena(3);
    const TsHandle h = arena.allocate();
    EXPECT_EQ(h, 0u);
    EXPECT_EQ(arena.size(), 1u);
    for (const std::uint64_t component : arena.span(h)) {
        EXPECT_EQ(component, 0u);
    }
}

TEST(TimestampArena, AllocateCopiesComponents) {
    TimestampArena arena(3);
    const std::vector<std::uint64_t> components{1, 2, 3};
    const TsHandle h = arena.allocate(components);
    ASSERT_EQ(arena.span(h).size(), 3u);
    EXPECT_EQ(arena.span(h)[0], 1u);
    EXPECT_EQ(arena.span(h)[1], 2u);
    EXPECT_EQ(arena.span(h)[2], 3u);
}

TEST(TimestampArena, AllocateRejectsWidthMismatch) {
    TimestampArena arena(3);
    const std::vector<std::uint64_t> wrong{1, 2};
    EXPECT_THROW(arena.allocate(wrong), std::invalid_argument);
}

TEST(TimestampArena, SpanRejectsOutOfRangeHandle) {
    TimestampArena arena(2);
    arena.allocate();
    EXPECT_THROW(arena.span(1), std::invalid_argument);
    EXPECT_THROW(arena.span(kNoTimestamp), std::invalid_argument);
}

TEST(TimestampArena, HandlesStayValidAcrossGrowth) {
    // Start with no reserve so the slab reallocates many times; handles
    // must keep addressing the same logical rows with their values intact.
    TimestampArena arena(4);
    constexpr std::size_t kSlots = 1000;
    for (std::size_t i = 0; i < kSlots; ++i) {
        const TsHandle h = arena.allocate();
        auto row = arena.span(h);
        for (std::size_t k = 0; k < row.size(); ++k) {
            row[k] = i * 10 + k;
        }
    }
    ASSERT_EQ(arena.size(), kSlots);
    for (std::size_t i = 0; i < kSlots; ++i) {
        const auto row = arena.span(static_cast<TsHandle>(i));
        for (std::size_t k = 0; k < row.size(); ++k) {
            ASSERT_EQ(row[k], i * 10 + k) << "slot " << i;
        }
    }
}

TEST(TimestampArena, ClearKeepsCapacityForReuse) {
    TimestampArena arena(8, 64);
    for (int i = 0; i < 64; ++i) arena.allocate();
    const std::size_t capacity = arena.capacity();
    arena.clear();
    EXPECT_EQ(arena.size(), 0u);
    EXPECT_EQ(arena.capacity(), capacity);

    const std::size_t before = g_allocations.load();
    for (int round = 0; round < 10; ++round) {
        arena.clear();
        for (int i = 0; i < 64; ++i) arena.allocate();
    }
    EXPECT_EQ(g_allocations.load(), before)
        << "clear+allocate within capacity must not touch the heap";
}

TEST(TimestampArena, ZeroWidthArenaTracksSlots) {
    TimestampArena arena(0);
    const TsHandle a = arena.allocate();
    const TsHandle b = arena.allocate();
    EXPECT_EQ(a, 0u);
    EXPECT_EQ(b, 1u);
    EXPECT_EQ(arena.size(), 2u);
    EXPECT_TRUE(arena.span(a).empty());
    arena.clear();
    EXPECT_EQ(arena.size(), 0u);
}

// ---- Handle-space ceiling ---------------------------------------------

TEST(TimestampArena, AllocateThrowsTypedErrorAtSlotCeiling) {
    TimestampArena arena(2, 0, nullptr, 4);
    for (int i = 0; i < 4; ++i) arena.allocate();
    try {
        arena.allocate();
        FAIL() << "expected ArenaFullError";
    } catch (const ArenaFullError& e) {
        EXPECT_EQ(e.requested_slots(), 5u);
        EXPECT_EQ(e.max_slots(), 4u);
    }
    // A refused allocation leaves the arena usable at the ceiling, and
    // the typed error still reads as the standard length_error family.
    EXPECT_EQ(arena.size(), 4u);
    EXPECT_THROW(arena.allocate(), std::length_error);
    EXPECT_EQ(arena.span(3).size(), 2u);
}

TEST(TimestampArena, ReserveThrowsPastSlotCeiling) {
    TimestampArena arena(3, 0, nullptr, 16);
    EXPECT_NO_THROW(arena.reserve(16));
    EXPECT_EQ(arena.max_slots(), 16u);
    EXPECT_THROW(arena.reserve(17), ArenaFullError);
}

TEST(TimestampArena, ZeroWidthArenaHonorsSlotCeiling) {
    TimestampArena arena(0, 0, nullptr, 2);
    arena.allocate();
    arena.allocate();
    EXPECT_THROW(arena.allocate(), ArenaFullError);
    EXPECT_EQ(arena.size(), 2u);
}

TEST(TimestampArena, DefaultCeilingIsTheHandleSpace) {
    const TimestampArena arena(4);
    EXPECT_EQ(arena.max_slots(), static_cast<std::size_t>(kNoTimestamp));
}

TEST(TimestampArena, FourBillionSlotReserveThrowsInsteadOfWrapping) {
    // A streamed ingestion that tried to keep every stamp resident would
    // eventually ask for more slots than the 32-bit handle space. The
    // guard must refuse with the typed error BEFORE touching the slab —
    // a wrapped TsHandle would silently alias slot 0.
    TimestampArena arena(2);
    EXPECT_THROW(arena.reserve(5'000'000'000ull), ArenaFullError);
    EXPECT_EQ(arena.size(), 0u);
    EXPECT_EQ(arena.capacity(), 0u);
    // Ceiling refusal is not sticky: normal use continues.
    EXPECT_NO_THROW(arena.allocate());
}

// ---- WindowedTimestampArena (docs/STREAMING.md) ------------------------

TEST(WindowedArena, RingRetiresOldestAndKeepsResidencyBounded) {
    WindowedTimestampArena window(2, 4);
    for (std::uint64_t i = 0; i < 10; ++i) {
        const std::vector<std::uint64_t> stamp{i, i + 100};
        EXPECT_EQ(window.push(stamp), i);
        EXPECT_LE(window.resident(), 4u);
    }
    EXPECT_EQ(window.frontier(), 6u);
    EXPECT_EQ(window.next(), 10u);
    for (std::uint64_t id = 6; id < 10; ++id) {
        ASSERT_TRUE(window.is_resident(id));
        EXPECT_EQ(window.span(id)[0], id);
        EXPECT_EQ(window.span(id)[1], id + 100);
    }
}

TEST(WindowedArena, RetiredReadThrowsTypedError) {
    WindowedTimestampArena window(1, 2);
    const std::vector<std::uint64_t> stamp{7};
    window.push(stamp);
    window.push(stamp);
    window.push(stamp);  // retires id 0
    try {
        (void)window.span(0);
        FAIL() << "expected RetiredStampError";
    } catch (const RetiredStampError& e) {
        EXPECT_EQ(e.id(), 0u);
    }
    EXPECT_THROW((void)window.span(99), RetiredStampError);
    EXPECT_FALSE(window.is_resident(0));
    EXPECT_TRUE(window.is_resident(2));
}

TEST(WindowedArena, LogicalIdsCrossTheHandleSpaceWithoutWrapping) {
    // Seed the id stream just below 2^32: pushes walk logical ids past
    // the 32-bit slot ceiling a plain arena would refuse, while the ring
    // keeps recycling the same `window` physical slots.
    const std::uint64_t boundary = (std::uint64_t{1} << 32) - 2;
    WindowedTimestampArena window(1, 3, nullptr, boundary);
    for (std::uint64_t i = 0; i < 6; ++i) {
        const std::vector<std::uint64_t> stamp{i};
        EXPECT_EQ(window.push(stamp), boundary + i);
    }
    EXPECT_EQ(window.frontier(), boundary + 3);
    EXPECT_EQ(window.next(), boundary + 6);
    EXPECT_FALSE(window.is_resident(boundary + 2));
    EXPECT_THROW((void)window.span(boundary + 2), RetiredStampError);
    for (std::uint64_t i = 3; i < 6; ++i) {
        EXPECT_EQ(window.span(boundary + i)[0], i);
    }
}

TEST(WindowedArena, SteadyStatePushIsAllocationFree) {
    WindowedTimestampArena window(8, 16);
    const std::vector<std::uint64_t> stamp(8, 42);
    window.push(stamp);  // warm
    const std::size_t before = g_allocations.load();
    for (int i = 0; i < 1000; ++i) (void)window.push(stamp);
    EXPECT_EQ(g_allocations.load(), before)
        << "the ring must recycle slots, never grow";
}

// ---- SlabPool ----------------------------------------------------------

TEST(SlabPool, RecyclesWithinASizeClass) {
    SlabPool pool;
    Slab a = pool.acquire(100);  // rounds up to the 128-word class
    ASSERT_GE(a.capacity_words, 100u);
    const std::uint64_t* raw = a.words.get();
    pool.release(std::move(a));
    EXPECT_GT(pool.cached_bytes(), 0u);
    EXPECT_EQ(pool.leased_bytes(), 0u);

    // Any request rounding to the same class gets the cached chunk back.
    Slab b = pool.acquire(65);
    EXPECT_EQ(b.words.get(), raw);
    EXPECT_EQ(pool.acquires(), 2u);
    EXPECT_EQ(pool.reuses(), 1u);
    pool.release(std::move(b));
}

TEST(SlabPool, PeakBytesIsAHighWaterMark) {
    SlabPool pool;
    Slab a = pool.acquire(64);
    Slab b = pool.acquire(64);
    const std::size_t peak = pool.peak_bytes();
    EXPECT_EQ(peak, 2u * 64u * sizeof(std::uint64_t));
    pool.release(std::move(a));
    pool.release(std::move(b));
    // Releasing moves bytes from leased to cached; the footprint (and so
    // the high-water mark) is unchanged, as is re-leasing from cache.
    EXPECT_EQ(pool.peak_bytes(), peak);
    Slab c = pool.acquire(64);
    EXPECT_EQ(pool.peak_bytes(), peak);
    pool.release(std::move(c));
}

TEST(SlabPool, TrimFreesCachedSlabsOnly) {
    SlabPool pool;
    Slab held = pool.acquire(32);
    pool.release(pool.acquire(32));
    EXPECT_GT(pool.cached_bytes(), 0u);
    pool.trim();
    EXPECT_EQ(pool.cached_bytes(), 0u);
    EXPECT_GT(pool.leased_bytes(), 0u);  // the held lease is untouched
    pool.release(std::move(held));
}

TEST(SlabPool, SteadyStateChurnIsAllocationFree) {
    SlabPool pool;
    // Warm the class once; afterwards acquire/release ping-pong must be
    // pure pointer moves.
    pool.release(pool.acquire(256));
    const std::size_t before = g_allocations.load();
    for (int i = 0; i < 1000; ++i) {
        pool.release(pool.acquire(256));
    }
    EXPECT_EQ(g_allocations.load(), before);
    EXPECT_EQ(pool.reuses(), 1000u);
}

// ---- RegionStore -------------------------------------------------------

TEST(RegionStore, SpanValidatesHandlesAgainstLiveRegions) {
    SlabPool pool;
    RegionStore store(pool);
    TimestampArena& arena = store.open(3, 2);
    const TsHandle h = arena.allocate(std::vector<std::uint64_t>{7, 9});
    ASSERT_TRUE(store.live(3));
    const auto row = store.span(RegionHandle{3, h});
    ASSERT_EQ(row.size(), 2u);
    EXPECT_EQ(row[0], 7u);
    EXPECT_EQ(row[1], 9u);

    // Unknown epoch, retired epoch, and out-of-range index are all typed
    // failures, never dangling spans.
    EXPECT_THROW(store.span(RegionHandle{4, 0}), RegionError);
    EXPECT_THROW(store.span(RegionHandle{3, h + 1}), std::invalid_argument);
    store.close(3);
    EXPECT_FALSE(store.live(3));
    EXPECT_THROW(store.span(RegionHandle{3, h}), RegionError);
    EXPECT_THROW(store.arena(3), RegionError);
    EXPECT_THROW(store.close(3), RegionError);
}

TEST(RegionStore, OpenRejectsAlreadyLiveEpoch) {
    SlabPool pool;
    RegionStore store(pool);
    store.open(0, 3);
    EXPECT_THROW(store.open(0, 3), std::logic_error);
    store.close(0);
}

TEST(RegionStore, PinDefersCloseUntilLastUnpin) {
    SlabPool pool;
    RegionStore store(pool);
    TimestampArena& arena = store.open(5, 1, 4);
    const TsHandle h = arena.allocate(std::vector<std::uint64_t>{42});
    store.pin(5);
    store.pin(5);
    store.close(5);
    // The close is deferred: the region stays live and readable for the
    // pin holders (recovery replay reading a stability-retired epoch).
    ASSERT_TRUE(store.live(5));
    EXPECT_EQ(store.span(RegionHandle{5, h})[0], 42u);
    store.unpin(5);
    ASSERT_TRUE(store.live(5));
    store.unpin(5);
    EXPECT_FALSE(store.live(5));
    EXPECT_EQ(store.live_regions(), 0u);
    // Unpinned-but-never-closed regions survive their pins.
    store.open(6, 1);
    store.pin(6);
    store.unpin(6);
    ASSERT_TRUE(store.live(6));
    store.close(6);
}

TEST(RegionStore, FrontierIsTheLowestLiveEpoch) {
    SlabPool pool;
    RegionStore store(pool);
    EXPECT_EQ(store.frontier(99), 99u);
    store.open(7, 2);
    store.open(4, 2);
    store.open(9, 2);
    EXPECT_EQ(store.frontier(), 4u);
    store.close(4);
    EXPECT_EQ(store.frontier(), 7u);
    store.close(7);
    store.close(9);
    EXPECT_EQ(store.frontier(0), 0u);
}

TEST(RegionStore, CloseReturnsSlabsToThePool) {
    SlabPool pool;
    RegionStore store(pool);
    TimestampArena& arena = store.open(0, 4, 32);
    for (int i = 0; i < 32; ++i) arena.allocate();
    EXPECT_GT(pool.leased_bytes(), 0u);
    store.close(0);
    EXPECT_EQ(pool.leased_bytes(), 0u);
    EXPECT_GT(pool.cached_bytes(), 0u);
    // The next epoch of the same shape is served from the returned slab.
    store.open(1, 4, 32);
    EXPECT_GT(pool.reuses(), 0u);
    store.close(1);
}

// ---- Epoch-churn soak (docs/MEMORY.md acceptance) ----------------------

TEST(RegionStore, ThousandEpochArenaChurnIsAllocationFree) {
    // The pure data plane: one pool-backed arena per epoch, opened and
    // retired in sequence. After one warm-up epoch the remaining 999 must
    // perform ZERO heap allocations — every slab is a recycled lease.
    SlabPool pool;
    constexpr std::size_t kWidth = 6;
    constexpr std::size_t kSlots = 64;
    const auto churn_epoch = [&]() {
        TimestampArena arena(kWidth, kSlots, &pool);
        for (std::size_t i = 0; i < kSlots; ++i) arena.allocate();
    };
    churn_epoch();
    const std::size_t heap_before = g_allocations.load();
    const std::size_t peak_before = pool.peak_bytes();
    for (int epoch = 1; epoch < 1000; ++epoch) churn_epoch();
    EXPECT_EQ(g_allocations.load(), heap_before)
        << "epoch-scoped arenas over a warm pool must not touch the heap";
    EXPECT_EQ(pool.peak_bytes(), peak_before)
        << "the pool footprint must be O(live width), not O(epochs)";
    EXPECT_EQ(pool.reuses(), 999u);
}

TEST(RegionStore, ThousandEpochStoreChurnHoldsPeakBytesFlat) {
    // The full store with a stability lag: up to kLag+1 regions live at
    // once, 1000 epochs total. Slab traffic must be fully recycled (the
    // acquire-minus-reuse gap stops growing after warm-up), the pool
    // high-water mark must stay at the warm-up level, and the per-epoch
    // heap allocation rate (the map node + arena header control plane)
    // must be constant — measured, not assumed.
    SlabPool pool;
    RegionStore store(pool);
    constexpr EpochId kEpochs = 1000;
    constexpr EpochId kLag = 3;
    constexpr std::size_t kWidth = 6;
    constexpr std::size_t kSlots = 64;
    const auto churn = [&](EpochId e) {
        TimestampArena& arena = store.open(e, kWidth, kSlots);
        for (std::size_t i = 0; i < kSlots; ++i) arena.allocate();
        if (e >= kLag) store.close(e - kLag);
    };

    EpochId e = 0;
    for (; e < 16; ++e) churn(e);
    const std::uint64_t fresh_before = pool.acquires() - pool.reuses();
    const std::size_t peak_before = pool.peak_bytes();

    const std::size_t heap_mid_start = g_allocations.load();
    for (; e < kEpochs / 2; ++e) churn(e);
    const std::size_t first_half = g_allocations.load() - heap_mid_start;

    const std::size_t heap_tail_start = g_allocations.load();
    const EpochId tail_begin = e;
    for (; e < kEpochs; ++e) churn(e);
    const std::size_t second_half = g_allocations.load() - heap_tail_start;

    EXPECT_EQ(pool.acquires() - pool.reuses(), fresh_before)
        << "every steady-state slab must come from the pool";
    EXPECT_EQ(pool.peak_bytes(), peak_before)
        << "peak slab bytes grew with epoch count";
    EXPECT_LE(pool.peak_bytes(),
              (kLag + 2) * 2 * kWidth * kSlots * sizeof(std::uint64_t))
        << "peak slab bytes exceed the live-region working set";
    // Constant control-plane rate: the same epochs-per-allocation ratio
    // in both halves (each epoch is one map node + one arena header).
    const std::size_t per_epoch_first =
        first_half / (kEpochs / 2 - 16);
    const std::size_t per_epoch_second =
        second_half / (kEpochs - tail_begin);
    EXPECT_EQ(per_epoch_first, per_epoch_second);
    EXPECT_LE(per_epoch_second, 4u);

    for (EpochId tail = kEpochs - kLag; tail < kEpochs; ++tail) {
        store.close(tail);
    }
    EXPECT_EQ(store.live_regions(), 0u);
}

// ---- Batch kernels ----------------------------------------------------

TimestampArena sample_arena() {
    TimestampArena arena(3, 5);
    arena.allocate(std::vector<std::uint64_t>{0, 0, 0});
    arena.allocate(std::vector<std::uint64_t>{1, 2, 3});
    arena.allocate(std::vector<std::uint64_t>{2, 2, 3});
    arena.allocate(std::vector<std::uint64_t>{3, 0, 0});
    arena.allocate(std::vector<std::uint64_t>{1, 2, 3});
    return arena;
}

TEST(TimestampArena, LeqManyMatchesScalarKernel) {
    const TimestampArena arena = sample_arena();
    const std::vector<std::uint64_t> probe{1, 2, 3};
    std::vector<std::uint8_t> out(arena.size());
    leq_many(arena, probe, out);
    for (std::size_t i = 0; i < arena.size(); ++i) {
        EXPECT_EQ(out[i] != 0,
                  ts::leq(probe, arena.span(static_cast<TsHandle>(i))))
            << "slot " << i;
    }
}

TEST(TimestampArena, RelateManyMatchesScalarKernel) {
    const TimestampArena arena = sample_arena();
    const std::vector<std::uint64_t> probe{1, 2, 3};
    std::vector<std::uint8_t> out(arena.size());
    relate_many(arena, probe, out);
    for (std::size_t i = 0; i < arena.size(); ++i) {
        EXPECT_EQ(out[i],
                  ts::relate(arena.span(static_cast<TsHandle>(i)), probe))
            << "slot " << i;
    }
}

TEST(TimestampArena, DominatorsOfFindsStrictDominators) {
    const TimestampArena arena = sample_arena();
    const std::vector<std::uint64_t> probe{1, 2, 3};
    const std::vector<TsHandle> dominators = dominators_of(arena, probe);
    // Only slot 2 = (2,2,3) strictly dominates (1,2,3); the two equal
    // slots (1 and 4) do not.
    ASSERT_EQ(dominators.size(), 1u);
    EXPECT_EQ(dominators[0], 2u);
}

TEST(TimestampArena, BatchKernelsRejectMismatchedSizes) {
    const TimestampArena arena = sample_arena();
    const std::vector<std::uint64_t> narrow{1, 2};
    std::vector<std::uint8_t> out(arena.size());
    EXPECT_THROW(leq_many(arena, narrow, out), std::invalid_argument);
    const std::vector<std::uint64_t> probe{1, 2, 3};
    std::vector<std::uint8_t> short_out(arena.size() - 1);
    EXPECT_THROW(relate_many(arena, probe, short_out),
                 std::invalid_argument);
}

// ---- Span kernels agree with the VectorTimestamp compat shims ---------

TEST(TsKernels, KernelsMatchVectorTimestampMethods) {
    const VectorTimestamp u(std::vector<std::uint64_t>{1, 2, 3});
    const VectorTimestamp v(std::vector<std::uint64_t>{2, 2, 4});
    const VectorTimestamp w(std::vector<std::uint64_t>{0, 5, 0});

    EXPECT_EQ(ts::leq(u.components(), v.components()), u.leq(v));
    EXPECT_EQ(ts::less(u.components(), v.components()), u.less(v));
    EXPECT_EQ(ts::concurrent(u.components(), w.components()),
              u.concurrent_with(w));
    EXPECT_EQ(ts::total(u.components()), u.total());

    VectorTimestamp joined = u;
    joined.join(v);
    std::vector<std::uint64_t> raw{1, 2, 3};
    ts::join(raw, v.components());
    EXPECT_EQ(joined, VectorTimestamp(raw));
}

TEST(TsKernels, RelateEncodesAllFourOutcomes) {
    const std::vector<std::uint64_t> low{1, 1};
    const std::vector<std::uint64_t> high{2, 2};
    const std::vector<std::uint64_t> cross{0, 3};
    EXPECT_EQ(ts::relate(low, high), ts::kRowLeq);
    EXPECT_EQ(ts::relate(high, low), ts::kProbeLeq);
    EXPECT_EQ(ts::relate(low, low), ts::kRowLeq | ts::kProbeLeq);
    EXPECT_EQ(ts::relate(low, cross), 0);
}

// ---- Zero-allocation steady state -------------------------------------

TEST(TimestampArena, OnlineHotPathIsAllocationFreeInSteadyState) {
    const Graph topology = topology::star(6);
    auto decomposition = std::make_shared<const EdgeDecomposition>(
        default_decomposition(topology));
    OnlineTimestamper engine(decomposition);

    TimestampArena arena(engine.width(), 256);
    // Warm-up: sizes the engine's internal scratch and fills the arena
    // once so every later round runs inside reserved capacity.
    for (ProcessId client = 1; client < 6; ++client) {
        engine.timestamp_message(0, client, arena);
    }
    arena.clear();

    const std::size_t before = g_allocations.load();
    for (int round = 0; round < 16; ++round) {
        arena.clear();
        for (int i = 0; i < 16; ++i) {
            for (ProcessId client = 1; client < 6; ++client) {
                engine.timestamp_message(0, client, arena);
            }
        }
    }
    EXPECT_EQ(g_allocations.load(), before)
        << "the Fig. 5 rendezvous hot path must not allocate per message";
}

TEST(TimestampArena, MetricsHotPathIsAllocationFreeInSteadyState) {
    const Graph topology = topology::star(6);
    auto decomposition = std::make_shared<const EdgeDecomposition>(
        default_decomposition(topology));
    OnlineTimestamper engine(decomposition);

    // Registration (counter/gauge/histogram creation) is allowed to
    // allocate; it happens once, before the measured region.
    obs::MetricsRegistry registry;
    TimestampArena arena(engine.width(), 256);
    arena.attach_metrics(registry, "arena");
    engine.attach_metrics(registry);
    obs::Histogram& latency = registry.histogram("probe_latency");
    obs::Counter& probes = registry.counter("probes");

    for (ProcessId client = 1; client < 6; ++client) {
        engine.timestamp_message(0, client, arena);
    }
    arena.clear();
    std::vector<std::uint8_t> out(16 * 5);
    const std::vector<std::uint64_t> probe(engine.width(), 1);

    const std::size_t before = g_allocations.load();
    for (int round = 0; round < 16; ++round) {
        arena.clear();
        for (int i = 0; i < 16; ++i) {
            for (ProcessId client = 1; client < 6; ++client) {
                engine.timestamp_message(0, client, arena);
                probes.inc();
                latency.record(static_cast<std::uint64_t>(i));
            }
        }
        // The instrumented batch kernel (note_kernel) is on the same
        // guarantee.
        out.resize(arena.size());
        leq_many(arena, probe, out);
    }
    EXPECT_EQ(g_allocations.load(), before)
        << "counter inc + histogram record on the arena hot path must not "
           "touch the heap";
    EXPECT_EQ(registry.counter("arena_slots").value(),
              registry.counter("clock_online_stamps").value());
    EXPECT_EQ(probes.value(), 16u * 16u * 5u);
    EXPECT_EQ(latency.count(), 16u * 16u * 5u);
    EXPECT_EQ(registry.counter("arena_kernel_calls").value(), 16u);
}

}  // namespace
}  // namespace syncts
