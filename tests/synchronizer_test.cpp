#include <gtest/gtest.h>

#include <memory>

#include "clocks/online_clock.hpp"
#include "core/causality.hpp"
#include "decomp/cover_decomposer.hpp"
#include "runtime/async_sim.hpp"
#include "runtime/synchronizer.hpp"
#include "test_util.hpp"
#include "trace/ground_truth.hpp"

namespace syncts {
namespace {

TEST(AsyncSimulator, DeliversInTimeOrder) {
    AsyncSimulator sim(2, 1);
    sim.set_latency_model([](const Packet& p, Rng&) {
        return p.tag;  // latency encoded in the tag for the test
    });
    std::vector<std::uint64_t> delivered;
    sim.on_deliver(1, [&](std::uint64_t, const Packet& p) {
        delivered.push_back(p.tag);
    });
    sim.on_deliver(0, [](std::uint64_t, const Packet&) {});
    for (const std::uint64_t latency : {30u, 10u, 20u}) {
        Packet p;
        p.source = 0;
        p.destination = 1;
        p.tag = latency;
        sim.send(0, std::move(p));
    }
    const std::uint64_t end = sim.run();
    EXPECT_EQ(delivered, (std::vector<std::uint64_t>{10, 20, 30}));
    EXPECT_EQ(end, 30u);
    EXPECT_EQ(sim.packets_delivered(), 3u);
}

TEST(AsyncSimulator, TiesBreakBySendOrder) {
    AsyncSimulator sim(2, 1);
    sim.set_fixed_latency(5);
    std::vector<std::uint64_t> delivered;
    sim.on_deliver(1, [&](std::uint64_t, const Packet& p) {
        delivered.push_back(p.tag);
    });
    for (std::uint64_t i = 0; i < 4; ++i) {
        Packet p;
        p.destination = 1;
        p.tag = i;
        sim.send(0, std::move(p));
    }
    sim.run();
    EXPECT_EQ(delivered, (std::vector<std::uint64_t>{0, 1, 2, 3}));
}

TEST(AsyncSimulator, EventBudgetGuard) {
    AsyncSimulator sim(1, 1);
    // A handler that re-sends forever must trip the budget, not hang.
    sim.on_deliver(0, [&](std::uint64_t now, const Packet& p) {
        Packet again = p;
        sim.send(now, std::move(again));
    });
    Packet p;
    p.destination = 0;
    sim.send(0, std::move(p));
    EXPECT_THROW(sim.run(/*max_events=*/100), std::invalid_argument);
}

TEST(AsyncSimulator, RejectsBadConfiguration) {
    AsyncSimulator sim(2, 1);
    EXPECT_THROW(sim.set_fixed_latency(0), std::invalid_argument);
    EXPECT_THROW(sim.set_uniform_latency(0, 3), std::invalid_argument);
    EXPECT_THROW(sim.set_uniform_latency(5, 3), std::invalid_argument);
    Packet p;
    p.destination = 9;
    EXPECT_THROW(sim.send(0, std::move(p)), std::invalid_argument);
}

// ---------------------------------------------------------------------

TEST(Synchronizer, MatchesDirectSimulatorOnFixedLatency) {
    const SyncComputation script = paper_fig6_computation();
    auto decomposition = std::make_shared<const EdgeDecomposition>(
        trivial_complete_decomposition(script.topology()));
    SynchronizerOptions options;
    const SynchronizerResult result =
        run_rendezvous_protocol(decomposition, script, options);

    OnlineTimestamper direct(decomposition);
    const auto expected = direct.timestamp_computation(script);
    ASSERT_EQ(result.message_stamps.size(), expected.size());
    for (std::size_t i = 0; i < result.message_stamps.size(); ++i) {
        EXPECT_EQ(result.message_stamps[i],
                  expected[result.script_message[i]]);
    }
    EXPECT_EQ(result.packets, 2 * script.num_messages());
}

TEST(Synchronizer, LatencyInvarianceAcrossSeeds) {
    // The whole point of the protocol: timestamps are a function of the
    // schedule, not of network timing. Random latencies across seeds must
    // reproduce the direct simulator's stamps exactly.
    for (const auto& [name, graph] : testing::topology_suite(6, 971)) {
        const SyncComputation script =
            testing::random_workload(graph, 50, 0.0, 972);
        auto decomposition = std::make_shared<const EdgeDecomposition>(
            default_decomposition(graph));
        OnlineTimestamper direct(decomposition);
        const auto expected = direct.timestamp_computation(script);
        for (std::uint64_t seed = 1; seed <= 3; ++seed) {
            SynchronizerOptions options;
            options.seed = seed;
            options.latency_lo = 1;
            options.latency_hi = 50;
            const SynchronizerResult result =
                run_rendezvous_protocol(decomposition, script, options);
            for (std::size_t i = 0; i < result.message_stamps.size(); ++i) {
                ASSERT_EQ(result.message_stamps[i],
                          expected[result.script_message[i]])
                    << name << " seed " << seed;
            }
        }
    }
}

TEST(Synchronizer, RealizedComputationEncodesItsOwnPoset) {
    const Graph graph = topology::client_server(2, 4);
    const SyncComputation script =
        testing::random_workload(graph, 80, 0.0, 973);
    auto decomposition = std::make_shared<const EdgeDecomposition>(
        default_decomposition(graph));
    SynchronizerOptions options;
    options.seed = 9;
    options.latency_lo = 1;
    options.latency_hi = 20;
    const SynchronizerResult result =
        run_rendezvous_protocol(decomposition, script, options);
    // Commit order is a valid instant order of the same computation, so
    // the recorded stamps encode the realized poset exactly.
    EXPECT_EQ(encoding_mismatches(message_poset(result.computation),
                                  result.message_stamps),
              0u);
    // And the realized per-process orders equal the script's.
    for (ProcessId p = 0; p < graph.num_vertices(); ++p) {
        const auto realized = result.computation.process_messages(p);
        const auto scripted = script.process_messages(p);
        ASSERT_EQ(realized.size(), scripted.size());
        for (std::size_t i = 0; i < realized.size(); ++i) {
            EXPECT_EQ(result.script_message[realized[i]], scripted[i]);
        }
    }
}

TEST(Synchronizer, VirtualDurationScalesWithLatency) {
    const SyncComputation script = paper_fig1_computation();
    auto decomposition = std::make_shared<const EdgeDecomposition>(
        default_decomposition(script.topology()));
    SynchronizerOptions fast;
    fast.latency_lo = fast.latency_hi = 1;
    SynchronizerOptions slow;
    slow.latency_lo = slow.latency_hi = 100;
    const auto fast_run =
        run_rendezvous_protocol(decomposition, script, fast);
    const auto slow_run =
        run_rendezvous_protocol(decomposition, script, slow);
    EXPECT_EQ(slow_run.virtual_duration, 100 * fast_run.virtual_duration);
}

TEST(Synchronizer, RejectsMismatchedTopology) {
    SyncComputation script(topology::path(3));
    script.add_message(0, 1);
    auto decomposition = std::make_shared<const EdgeDecomposition>(
        default_decomposition(topology::path(4)));
    EXPECT_THROW(
        run_rendezvous_protocol(decomposition, script, SynchronizerOptions{}),
        std::invalid_argument);
}

}  // namespace
}  // namespace syncts
