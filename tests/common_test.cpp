#include <gtest/gtest.h>

#include <set>
#include <stdexcept>
#include <vector>

#include "common/check.hpp"
#include "common/dyn_bitset.hpp"
#include "common/rng.hpp"

namespace syncts {
namespace {

TEST(Check, RequireThrowsInvalidArgument) {
    EXPECT_THROW(SYNCTS_REQUIRE(false, "boom"), std::invalid_argument);
    EXPECT_NO_THROW(SYNCTS_REQUIRE(true, "fine"));
}

TEST(Check, EnsureThrowsLogicError) {
    EXPECT_THROW(SYNCTS_ENSURE(false, "bug"), std::logic_error);
    EXPECT_NO_THROW(SYNCTS_ENSURE(true, "fine"));
}

TEST(Check, MessagesCarryContext) {
    try {
        SYNCTS_REQUIRE(1 == 2, "the context string");
        FAIL() << "should have thrown";
    } catch (const std::invalid_argument& e) {
        EXPECT_NE(std::string(e.what()).find("the context string"),
                  std::string::npos);
        EXPECT_NE(std::string(e.what()).find("1 == 2"), std::string::npos);
    }
}

TEST(Rng, DeterministicForSameSeed) {
    Rng a(42);
    Rng b(42);
    for (int i = 0; i < 1000; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiverge) {
    Rng a(1);
    Rng b(2);
    int equal = 0;
    for (int i = 0; i < 100; ++i) equal += a() == b() ? 1 : 0;
    EXPECT_LT(equal, 5);
}

TEST(Rng, BelowStaysInRange) {
    Rng rng(7);
    for (std::uint64_t bound : {1ull, 2ull, 3ull, 10ull, 1000ull}) {
        for (int i = 0; i < 500; ++i) EXPECT_LT(rng.below(bound), bound);
    }
}

TEST(Rng, BelowOneAlwaysZero) {
    Rng rng(9);
    for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.below(1), 0u);
}

TEST(Rng, BelowCoversAllResidues) {
    Rng rng(11);
    std::set<std::uint64_t> seen;
    for (int i = 0; i < 2000; ++i) seen.insert(rng.below(7));
    EXPECT_EQ(seen.size(), 7u);
}

TEST(Rng, BetweenInclusive) {
    Rng rng(13);
    std::set<std::uint64_t> seen;
    for (int i = 0; i < 2000; ++i) {
        const auto v = rng.between(5, 9);
        EXPECT_GE(v, 5u);
        EXPECT_LE(v, 9u);
        seen.insert(v);
    }
    EXPECT_EQ(seen.size(), 5u);
}

TEST(Rng, Uniform01InRange) {
    Rng rng(17);
    for (int i = 0; i < 1000; ++i) {
        const double v = rng.uniform01();
        EXPECT_GE(v, 0.0);
        EXPECT_LT(v, 1.0);
    }
}

TEST(Rng, ChanceExtremes) {
    Rng rng(19);
    for (int i = 0; i < 100; ++i) {
        EXPECT_TRUE(rng.chance(1, 1));
        EXPECT_FALSE(rng.chance(0, 1));
    }
}

TEST(DynBitset, SetTestReset) {
    DynBitset bits(130);
    EXPECT_EQ(bits.size(), 130u);
    EXPECT_FALSE(bits.test(0));
    bits.set(0);
    bits.set(64);
    bits.set(129);
    EXPECT_TRUE(bits.test(0));
    EXPECT_TRUE(bits.test(64));
    EXPECT_TRUE(bits.test(129));
    EXPECT_FALSE(bits.test(1));
    bits.reset(64);
    EXPECT_FALSE(bits.test(64));
    EXPECT_EQ(bits.count(), 2u);
}

TEST(DynBitset, OrAssign) {
    DynBitset a(100);
    DynBitset b(100);
    a.set(3);
    b.set(70);
    a |= b;
    EXPECT_TRUE(a.test(3));
    EXPECT_TRUE(a.test(70));
    EXPECT_EQ(a.count(), 2u);
}

TEST(DynBitset, AndAssign) {
    DynBitset a(100);
    DynBitset b(100);
    a.set(3);
    a.set(70);
    b.set(70);
    a &= b;
    EXPECT_FALSE(a.test(3));
    EXPECT_TRUE(a.test(70));
}

TEST(DynBitset, SubsetAndIntersect) {
    DynBitset a(80);
    DynBitset b(80);
    a.set(5);
    b.set(5);
    b.set(77);
    EXPECT_TRUE(a.is_subset_of(b));
    EXPECT_FALSE(b.is_subset_of(a));
    EXPECT_TRUE(a.intersects(b));
    DynBitset c(80);
    c.set(6);
    EXPECT_FALSE(a.intersects(c));
    EXPECT_TRUE(DynBitset(80).is_subset_of(a));
}

TEST(DynBitset, FindNextAndForEach) {
    DynBitset bits(200);
    bits.set(10);
    bits.set(63);
    bits.set(64);
    bits.set(199);
    EXPECT_EQ(bits.find_next(0), 10u);
    EXPECT_EQ(bits.find_next(11), 63u);
    EXPECT_EQ(bits.find_next(64), 64u);
    EXPECT_EQ(bits.find_next(65), 199u);
    EXPECT_EQ(bits.find_next(200), 200u);
    std::vector<std::size_t> seen;
    bits.for_each([&](std::size_t i) { seen.push_back(i); });
    EXPECT_EQ(seen, (std::vector<std::size_t>{10, 63, 64, 199}));
}

TEST(DynBitset, ClearAndEquality) {
    DynBitset a(50);
    a.set(20);
    DynBitset b(50);
    EXPECT_NE(a, b);
    a.clear();
    EXPECT_EQ(a, b);
    EXPECT_EQ(a.count(), 0u);
}

TEST(DynBitset, WordAccessors) {
    DynBitset bits(130);
    EXPECT_EQ(bits.num_words(), 3u);
    EXPECT_EQ(DynBitset(64).num_words(), 1u);
    EXPECT_EQ(DynBitset(65).num_words(), 2u);
    EXPECT_EQ(DynBitset().num_words(), 0u);
    bits.set(0);
    bits.set(63);
    bits.set(64);
    bits.set(129);
    EXPECT_EQ(bits.word(0), (std::uint64_t{1} << 63) | 1u);
    EXPECT_EQ(bits.word(1), 1u);
    EXPECT_EQ(bits.word(2), std::uint64_t{1} << 1);
    bits.or_word(1, 0xF0u);
    EXPECT_EQ(bits.word(1), 0xF1u);
    EXPECT_TRUE(bits.test(64 + 4));
}

TEST(DynBitset, OrWithFullRange) {
    DynBitset a(200);
    DynBitset b(200);
    a.set(3);
    b.set(64);
    b.set(199);
    EXPECT_EQ(a.or_with(b), a.num_words());
    EXPECT_TRUE(a.test(3));
    EXPECT_TRUE(a.test(64));
    EXPECT_TRUE(a.test(199));
    EXPECT_EQ(a.count(), 3u);
}

TEST(DynBitset, OrWithWordRange) {
    DynBitset a(200);
    DynBitset b(200);
    b.set(10);    // word 0
    b.set(70);    // word 1
    b.set(199);   // word 3
    // Only word 1 is in range: bits 10 and 199 must not leak in.
    EXPECT_EQ(a.or_with(b, 1, 2), 1u);
    EXPECT_FALSE(a.test(10));
    EXPECT_TRUE(a.test(70));
    EXPECT_FALSE(a.test(199));
    // word_end defaults clamp to num_words(); an empty range is a no-op.
    EXPECT_EQ(a.or_with(b, 2, 2), 0u);
    EXPECT_EQ(a.or_with(b, 3), 1u);
    EXPECT_TRUE(a.test(199));
}

TEST(DynBitset, CountAnd) {
    DynBitset a(150);
    DynBitset b(150);
    a.set(0);
    a.set(64);
    a.set(149);
    b.set(64);
    b.set(149);
    b.set(100);
    EXPECT_EQ(a.count_and(b), 2u);
    EXPECT_EQ(a.count_and(DynBitset(150)), 0u);
    // count_and must not mutate either operand.
    EXPECT_EQ(a.count(), 3u);
    EXPECT_EQ(b.count(), 3u);
}

}  // namespace
}  // namespace syncts
