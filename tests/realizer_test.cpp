#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "poset/dilworth.hpp"
#include "poset/realizer.hpp"

namespace syncts {
namespace {

Poset random_poset(std::size_t n, std::uint64_t seed, int denom = 4) {
    Rng rng(seed);
    Poset p(n);
    for (std::size_t a = 0; a < n; ++a) {
        for (std::size_t b = a + 1; b < n; ++b) {
            if (rng.chance(1, static_cast<std::uint64_t>(denom))) {
                p.add_relation(a, b);
            }
        }
    }
    p.close();
    return p;
}

TEST(ChainRealizer, RealizesRandomPosets) {
    for (std::uint64_t seed = 0; seed < 20; ++seed) {
        const Poset p = random_poset(15, seed);
        const Realizer r = chain_realizer(p);
        EXPECT_EQ(r.size(), poset_width(p)) << "seed " << seed;
        EXPECT_TRUE(realizes(p, r)) << "seed " << seed;
    }
}

TEST(ChainRealizer, ChainNeedsOneExtension) {
    Poset p(6);
    for (std::size_t i = 0; i + 1 < 6; ++i) p.add_relation(i, i + 1);
    p.close();
    const Realizer r = chain_realizer(p);
    EXPECT_EQ(r.size(), 1u);
    EXPECT_TRUE(realizes(p, r));
}

TEST(ChainRealizer, AntichainNeedsOnePerElementViaChains) {
    // Dilworth chains of an antichain are singletons: n extensions. (The
    // true dimension of an antichain is 2, but Fig. 9 uses the chain bound.)
    Poset p(4);
    p.close();
    const Realizer r = chain_realizer(p);
    EXPECT_EQ(r.size(), 4u);
    EXPECT_TRUE(realizes(p, r));
}

TEST(ChainRealizer, EmptyPoset) {
    Poset p(0);
    p.close();
    const Realizer r = chain_realizer(p);
    EXPECT_EQ(r.size(), 0u);
    EXPECT_TRUE(realizes(p, r));
}

TEST(Realizes, DetectsNonExtension) {
    Poset p(3);
    p.add_relation(0, 1);
    p.close();
    Realizer bad;
    bad.extensions = {{1, 0, 2}};
    EXPECT_FALSE(realizes(p, bad));
}

TEST(Realizes, DetectsMissingReversal) {
    // 0 and 1 incomparable, but the single extension orders them 0 < 1
    // everywhere — the intersection would add 0 < 1.
    Poset p(2);
    p.close();
    Realizer bad;
    bad.extensions = {{0, 1}};
    EXPECT_FALSE(realizes(p, bad));
    Realizer good;
    good.extensions = {{0, 1}, {1, 0}};
    EXPECT_TRUE(realizes(p, good));
}

TEST(RealizerTimestamps, RanksEncodeThePoset) {
    for (std::uint64_t seed = 100; seed < 112; ++seed) {
        const Poset p = random_poset(12, seed, 3);
        const Realizer r = chain_realizer(p);
        const auto stamps = realizer_timestamps(r);
        ASSERT_EQ(stamps.size(), p.size());
        for (std::size_t a = 0; a < p.size(); ++a) {
            for (std::size_t b = 0; b < p.size(); ++b) {
                if (a == b) continue;
                // a < b in P  ⟺  rank vector of a is strictly below b's in
                // every coordinate (ranks in one extension never tie).
                bool all_less = true;
                for (std::size_t i = 0; i < r.size(); ++i) {
                    if (stamps[a][i] >= stamps[b][i]) all_less = false;
                }
                EXPECT_EQ(p.less(a, b), all_less)
                    << "seed " << seed << " pair " << a << ',' << b;
            }
        }
    }
}

TEST(RealizerTimestamps, RejectsEmptyRealizer) {
    EXPECT_THROW(realizer_timestamps(Realizer{}), std::invalid_argument);
}


TEST(MinimizeRealizer, DropsRedundantExtensions) {
    // Take a valid realizer and pad it with extra linear extensions: the
    // minimizer must shed padding and still realize the poset.
    Poset p(2);
    p.close();
    Realizer padded;
    padded.extensions = {{0, 1}, {1, 0}, {0, 1}, {1, 0}};
    const Realizer minimal = minimize_realizer(p, padded);
    EXPECT_EQ(minimal.size(), 2u);
    EXPECT_TRUE(realizes(p, minimal));
}

TEST(MinimizeRealizer, NeverGrowsAlwaysRealizes) {
    for (std::uint64_t seed = 300; seed < 312; ++seed) {
        const Poset p = random_poset(13, seed);
        const Realizer chain = chain_realizer(p);
        const Realizer minimal = minimize_realizer(p, chain);
        EXPECT_LE(minimal.size(), chain.size()) << seed;
        EXPECT_TRUE(realizes(p, minimal)) << seed;
        EXPECT_GE(minimal.size(), 1u);
    }
}

TEST(MinimizeRealizer, ChainStaysAtOne) {
    Poset p(5);
    for (std::size_t i = 0; i + 1 < 5; ++i) p.add_relation(i, i + 1);
    p.close();
    const Realizer minimal = minimize_realizer(p, chain_realizer(p));
    EXPECT_EQ(minimal.size(), 1u);
}

TEST(MinimizeRealizer, RejectsInvalidInput) {
    Poset p(3);
    p.add_relation(0, 1);
    p.close();
    Realizer bad;
    bad.extensions = {{1, 0, 2}};
    EXPECT_THROW(minimize_realizer(p, bad), std::invalid_argument);
}

}  // namespace
}  // namespace syncts
