#include <gtest/gtest.h>

#include <stdexcept>

#include "poset/linear_extension.hpp"
#include "poset/poset.hpp"

namespace syncts {
namespace {

Poset diamond() {
    // 0 < 1, 0 < 2, 1 < 3, 2 < 3.
    Poset p(4);
    p.add_relation(0, 1);
    p.add_relation(0, 2);
    p.add_relation(1, 3);
    p.add_relation(2, 3);
    p.close();
    return p;
}

TEST(Poset, TransitiveClosure) {
    Poset p(4);
    p.add_relation(0, 1);
    p.add_relation(1, 2);
    p.add_relation(2, 3);
    p.close();
    EXPECT_TRUE(p.less(0, 3));
    EXPECT_TRUE(p.less(0, 2));
    EXPECT_TRUE(p.less(1, 3));
    EXPECT_FALSE(p.less(3, 0));
    EXPECT_FALSE(p.less(0, 0));
    EXPECT_EQ(p.relation_count(), 6u);
}

TEST(Poset, DiamondShape) {
    const Poset p = diamond();
    EXPECT_TRUE(p.less(0, 3));
    EXPECT_TRUE(p.incomparable(1, 2));
    EXPECT_FALSE(p.incomparable(0, 3));
    EXPECT_FALSE(p.incomparable(1, 1));
    EXPECT_EQ(p.minimal_elements(), (std::vector<std::size_t>{0}));
    EXPECT_EQ(p.maximal_elements(), (std::vector<std::size_t>{3}));
}

TEST(Poset, UpAndDownSets) {
    const Poset p = diamond();
    EXPECT_EQ(p.down_set(3).count(), 3u);
    EXPECT_EQ(p.up_set(0).count(), 3u);
    EXPECT_TRUE(p.down_set(1).test(0));
    EXPECT_FALSE(p.down_set(1).test(2));
}

TEST(Poset, CycleDetection) {
    Poset p(3);
    p.add_relation(0, 1);
    p.add_relation(1, 2);
    p.add_relation(2, 0);
    EXPECT_THROW(p.close(), std::invalid_argument);
}

TEST(Poset, SelfRelationRejected) {
    Poset p(3);
    EXPECT_THROW(p.add_relation(1, 1), std::invalid_argument);
    EXPECT_THROW(p.add_relation(0, 5), std::invalid_argument);
}

TEST(Poset, QueriesBeforeCloseRejected) {
    Poset p(3);
    p.add_relation(0, 1);
    EXPECT_THROW(p.less(0, 1), std::invalid_argument);
    p.close();
    EXPECT_THROW(p.add_relation(1, 2), std::invalid_argument);
    EXPECT_THROW(p.close(), std::invalid_argument);
}

TEST(Poset, DuplicateGeneratorsAreHarmless) {
    Poset p(3);
    p.add_relation(0, 1);
    p.add_relation(0, 1);
    p.add_relation(1, 2);
    p.close();
    EXPECT_TRUE(p.less(0, 2));
    EXPECT_EQ(p.relation_count(), 3u);
}

TEST(Poset, EmptyAndAntichain) {
    Poset p(5);
    p.close();
    EXPECT_EQ(p.relation_count(), 0u);
    EXPECT_EQ(p.minimal_elements().size(), 5u);
    EXPECT_EQ(p.maximal_elements().size(), 5u);
    EXPECT_TRUE(p.incomparable(0, 4));
}

TEST(Poset, IsLinearExtension) {
    const Poset p = diamond();
    EXPECT_TRUE(p.is_linear_extension({0, 1, 2, 3}));
    EXPECT_TRUE(p.is_linear_extension({0, 2, 1, 3}));
    EXPECT_FALSE(p.is_linear_extension({1, 0, 2, 3}));
    EXPECT_FALSE(p.is_linear_extension({0, 1, 2}));      // wrong size
    EXPECT_FALSE(p.is_linear_extension({0, 1, 1, 3}));   // not a permutation
}

TEST(LinearExtension, ProducesValidExtension) {
    const Poset p = diamond();
    EXPECT_TRUE(p.is_linear_extension(linear_extension(p)));
}

TEST(LinearExtension, DeterministicSmallestFirst) {
    Poset p(4);
    p.add_relation(2, 0);
    p.close();
    // Ready set initially {1,2,3}; smallest-index rule gives 1,2,0,3.
    EXPECT_EQ(linear_extension(p), (std::vector<std::size_t>{1, 2, 0, 3}));
}

TEST(ChainLowExtension, PlacesChainBelowIncomparables) {
    const Poset p = diamond();
    const std::vector<std::size_t> chain{0, 1, 3};
    const auto ext = chain_low_extension(p, chain);
    EXPECT_TRUE(p.is_linear_extension(ext));
    const auto pos = positions_of(ext);
    // 1 is in the chain and incomparable to 2, so 1 must precede 2.
    EXPECT_LT(pos[1], pos[2]);
}

TEST(ChainLowExtension, RejectsNonChain) {
    const Poset p = diamond();
    EXPECT_THROW(chain_low_extension(p, {1, 2}), std::invalid_argument);
    EXPECT_THROW(chain_low_extension(p, {3, 0}), std::invalid_argument);
    EXPECT_THROW(chain_low_extension(p, {0, 0}), std::invalid_argument);
}

TEST(ChainLowExtension, EmptyChainIsPlainExtension) {
    const Poset p = diamond();
    const auto ext = chain_low_extension(p, {});
    EXPECT_TRUE(p.is_linear_extension(ext));
}

TEST(PositionsOf, InvertsPermutation) {
    const std::vector<std::size_t> order{2, 0, 3, 1};
    const auto pos = positions_of(order);
    EXPECT_EQ(pos[2], 0u);
    EXPECT_EQ(pos[0], 1u);
    EXPECT_EQ(pos[3], 2u);
    EXPECT_EQ(pos[1], 3u);
}

}  // namespace
}  // namespace syncts
