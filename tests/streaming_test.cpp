#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "clocks/online_clock.hpp"
#include "common/pool.hpp"
#include "common/scaled.hpp"
#include "common/spill_store.hpp"
#include "core/causality.hpp"
#include "core/streaming_index.hpp"
#include "core/sync_system.hpp"
#include "core/timestamped_trace.hpp"
#include "poset/streaming_closure.hpp"
#include "test_util.hpp"
#include "trace/ground_truth.hpp"
#include "trace/trace_io.hpp"

// The streaming/out-of-core acceptance suite (docs/STREAMING.md): the
// frontier-retiring closure, the incremental precedence index, and the
// spill-aware streamed verification must each be bit-identical to their
// in-memory counterparts across 500 seeded schedules, with the batch
// legs exercised at 1, 2 and 8 threads.

namespace syncts {
namespace {

// ---- parse_scaled_count (tools/syncts_stats --events) ------------------

TEST(ScaledCount, ParsesPlainAndSuffixedValues) {
    EXPECT_EQ(common::parse_scaled_count("0"), 0u);
    EXPECT_EQ(common::parse_scaled_count("200"), 200u);
    EXPECT_EQ(common::parse_scaled_count("5k"), 5'000u);
    EXPECT_EQ(common::parse_scaled_count("5K"), 5'000u);
    EXPECT_EQ(common::parse_scaled_count("2m"), 2'000'000u);
    EXPECT_EQ(common::parse_scaled_count("2M"), 2'000'000u);
}

TEST(ScaledCount, TenMillionDoesNotOverflow) {
    // The regression: "--events 10m" must come back as exactly 10^7,
    // not a wrapped 32-bit value.
    EXPECT_EQ(common::parse_scaled_count("10m"), 10'000'000u);
    EXPECT_EQ(common::parse_scaled_count("4000m"), 4'000'000'000u);
    EXPECT_EQ(common::parse_scaled_count("18446744073709551615"),
              UINT64_MAX);
}

TEST(ScaledCount, RejectsOverflowAndGarbage) {
    EXPECT_FALSE(common::parse_scaled_count("18446744073709551616"));
    EXPECT_FALSE(common::parse_scaled_count("18446744073709551615k"));
    EXPECT_FALSE(common::parse_scaled_count("99999999999999999999m"));
    EXPECT_FALSE(common::parse_scaled_count(""));
    EXPECT_FALSE(common::parse_scaled_count("k"));
    EXPECT_FALSE(common::parse_scaled_count("12x"));
    EXPECT_FALSE(common::parse_scaled_count("12kk"));
    EXPECT_FALSE(common::parse_scaled_count("12k3"));
    EXPECT_FALSE(common::parse_scaled_count("-5"));
    EXPECT_FALSE(common::parse_scaled_count(" 5"));
}

// ---- SpillStore --------------------------------------------------------

std::string spill_dir(const char* name) {
    return ::testing::TempDir() + "syncts_streaming_" + name;
}

TEST(SpillStore, RoundTripsChunksThroughDisk) {
    SpillStore store(spill_dir("roundtrip"));
    const std::vector<std::uint8_t> a{1, 2, 3, 4, 5};
    const std::vector<std::uint8_t> b(1000, 0xAB);
    store.put(0, a);
    store.put(7, b);
    EXPECT_TRUE(store.contains(0));
    EXPECT_TRUE(store.contains(7));
    EXPECT_FALSE(store.contains(3));
    EXPECT_EQ(store.chunk_count(), 2u);

    std::vector<std::uint8_t> out;
    store.get(7, out);
    EXPECT_EQ(out, b);
    store.get(0, out);
    EXPECT_EQ(out, a);
    EXPECT_EQ(store.bytes_written(), 1005u);  // payload bytes, not framing
    EXPECT_EQ(store.bytes_read(), 1005u);

    store.remove(7);
    EXPECT_FALSE(store.contains(7));
    EXPECT_THROW(store.get(7, out), SpillError);
}

TEST(SpillStore, OverwriteReplacesPayload) {
    SpillStore store(spill_dir("overwrite"));
    store.put(3, std::vector<std::uint8_t>{9, 9, 9});
    store.put(3, std::vector<std::uint8_t>{1});
    std::vector<std::uint8_t> out;
    store.get(3, out);
    EXPECT_EQ(out, (std::vector<std::uint8_t>{1}));
    EXPECT_EQ(store.chunk_count(), 1u);
}

TEST(SpillStore, MissingChunkIsTypedIoError) {
    SpillStore store(spill_dir("missing"));
    std::vector<std::uint8_t> out;
    try {
        store.get(42, out);
        FAIL() << "expected SpillError";
    } catch (const SpillError& e) {
        EXPECT_EQ(e.kind(), SpillError::Kind::io);
        EXPECT_EQ(e.chunk_id(), 42u);
    }
}

TEST(SpillStore, FlippedBitOnDiskIsDetected) {
    const std::string dir = spill_dir("bitflip");
    SpillStore store(dir);
    std::vector<std::uint8_t> payload(256);
    for (std::size_t i = 0; i < payload.size(); ++i) {
        payload[i] = static_cast<std::uint8_t>(i);
    }
    store.put(5, payload);

    // Flip one payload bit behind the store's back.
    const std::string path = dir + "/chunk-5.spill";
    std::FILE* f = std::fopen(path.c_str(), "r+b");
    ASSERT_NE(f, nullptr);
    ASSERT_EQ(std::fseek(f, static_cast<long>(kSpillHeaderBytes + 100),
                         SEEK_SET),
              0);
    ASSERT_EQ(std::fputc(100 ^ 0x20, f), 100 ^ 0x20);
    std::fclose(f);

    std::vector<std::uint8_t> out;
    try {
        store.get(5, out);
        FAIL() << "expected SpillError";
    } catch (const SpillError& e) {
        EXPECT_EQ(e.kind(), SpillError::Kind::checksum);
        EXPECT_EQ(e.chunk_id(), 5u);
    }
}

TEST(SpillStore, CodecRejectsTamperedFrames) {
    std::vector<std::uint8_t> frame;
    const std::vector<std::uint8_t> payload{10, 20, 30};
    SpillStore::encode_chunk(9, payload, frame);

    const auto decoded = SpillStore::decode_chunk(frame, 9);
    EXPECT_TRUE(std::equal(decoded.begin(), decoded.end(),
                           payload.begin(), payload.end()));

    // Wrong id, truncation, and a flipped byte each throw typed errors.
    EXPECT_THROW((void)SpillStore::decode_chunk(frame, 8), SpillError);
    EXPECT_THROW((void)SpillStore::decode_chunk(
                     std::span<const std::uint8_t>(frame.data(),
                                                   frame.size() - 1),
                     9),
                 SpillError);
    std::vector<std::uint8_t> bad = frame;
    bad[kSpillHeaderBytes + 1] ^= 0x01;
    EXPECT_THROW((void)SpillStore::decode_chunk(bad, 9), SpillError);
}

// ---- 500-seed equivalence sweeps ---------------------------------------

// Same workload family as tests/parallel_test.cpp: five topology shapes,
// 20-79 messages, seeded deterministically.
Graph sweep_topology(std::uint64_t seed, Rng& rng) {
    switch (seed % 5) {
        case 0: return topology::complete(6);
        case 1: return topology::ring(9);
        case 2: return topology::star(8);
        case 3: return topology::disjoint_triangles(3);
        default: return topology::random_tree(10, rng);
    }
}

SyncComputation sweep_computation(std::uint64_t seed) {
    Rng rng(seed * 0x9E3779B97F4A7C15ull + 1);
    const Graph g = sweep_topology(seed, rng);
    WorkloadOptions options;
    options.num_messages = 20 + seed % 60;
    return random_computation(g, options, rng);
}

// Long-lived pools shared across seeds (the parallel_test discipline) so
// 500 iterations don't pay 500 thread-team spawns.
struct SweepPools : ::testing::Test {
    Pool two{2};
    Pool eight{8};

    std::vector<AnalysisOptions> all_options() {
        AnalysisOptions serial;
        AnalysisOptions at_two;
        at_two.pool = &two;
        at_two.threads = 2;
        AnalysisOptions at_eight;
        at_eight.pool = &eight;
        at_eight.threads = 8;
        return {serial, at_two, at_eight};
    }
};

using StreamingEquivalence = SweepPools;

// Streamed closure rows must equal the batch Poset rows bit-for-bit —
// checked via for_each_row against Poset::less for every ordered pair,
// with a chunk size small enough that every schedule crosses several
// retired chunks, and every fifth seed spilling through a real store.
TEST_F(StreamingEquivalence, ClosureBitIdenticalOver500Seeds) {
    const std::string dir = spill_dir("closure_sweep");
    for (std::uint64_t seed = 0; seed < 500; ++seed) {
        const SyncComputation c = sweep_computation(seed);
        const std::size_t n = c.num_messages();

        std::optional<SpillStore> store;
        StreamingClosureOptions options;
        options.chunk_rows = 8;
        if (seed % 5 == 0) {
            store.emplace(dir);
            options.spill = &*store;
            options.cached_chunks = 1;
        }
        StreamingClosure closure(c.num_processes(), n, options);
        for (const SyncMessage& m : c.messages()) {
            closure.ingest(m.sender, m.receiver);
        }
        closure.finish();

        for (const AnalysisOptions& analysis : all_options()) {
            const Poset truth = message_poset(c, analysis);
            ASSERT_EQ(closure.relation_count(), truth.relation_count())
                << "seed " << seed;
            closure.for_each_row(
                0, static_cast<MessageId>(n),
                [&](MessageId b, std::span<const std::uint64_t> row) {
                    for (MessageId a = 0; a < b; ++a) {
                        const bool streamed =
                            (row[a / 64] >> (a % 64)) & 1;
                        ASSERT_EQ(streamed, truth.less(a, b))
                            << "seed " << seed << " pair (" << a << ", "
                            << b << ")";
                    }
                });
            // Random-access queries agree too (exercises the LRU chunk
            // cache path rather than the sequential walk).
            Rng probes(seed ^ 0xCAFE);
            for (int q = 0; q < 64; ++q) {
                const auto a = static_cast<MessageId>(probes.below(n));
                const auto b = static_cast<MessageId>(probes.below(n));
                ASSERT_EQ(closure.less(a, b), a < b && truth.less(a, b))
                    << "seed " << seed;
            }
        }
    }
}

// The incremental index must answer every query exactly as the batch
// TimestampedTrace: the vector fast path while both stamps are resident,
// the spilled-closure fallback after retirement.
TEST_F(StreamingEquivalence, IndexMatchesBatchTraceOver500Seeds) {
    for (std::uint64_t seed = 0; seed < 500; ++seed) {
        const SyncComputation c = sweep_computation(seed);
        const std::size_t n = c.num_messages();
        const SyncSystem system{Graph(c.topology())};
        const TimestampedTrace trace = system.analyze(c);

        StreamingClosureOptions closure_options;
        closure_options.chunk_rows = 8;
        StreamingClosure closure(c.num_processes(), n, closure_options);

        StreamingIndexOptions options;
        options.window = 16;  // < n: forces retirement mid-ingestion
        options.closure = &closure;
        IncrementalPrecedenceIndex index(system, options);

        Rng probes(seed ^ 0xF00D);
        for (const SyncMessage& m : c.messages()) {
            const MessageId id = index.ingest_message(m.sender, m.receiver);
            // Mid-ingestion probes over everything seen so far.
            for (int q = 0; q < 4; ++q) {
                const auto a = static_cast<MessageId>(probes.below(id + 1));
                const auto b = static_cast<MessageId>(probes.below(id + 1));
                ASSERT_EQ(index.precedes(a, b), trace.precedes(a, b))
                    << "seed " << seed << " mid-ingestion (" << a << ", "
                    << b << ")";
            }
        }
        closure.finish();
        ASSERT_EQ(index.size(), n);

        for (MessageId a = 0; a < n; ++a) {
            for (MessageId b = 0; b < n; ++b) {
                ASSERT_EQ(index.precedes(a, b), trace.precedes(a, b))
                    << "seed " << seed << " pair (" << a << ", " << b
                    << ")";
            }
        }
    }
}

// Without a closure attached, a query against a retired stamp must be a
// typed refusal — never a wrong answer.
TEST_F(StreamingEquivalence, RetiredQueryWithoutClosureThrows) {
    const SyncComputation c = sweep_computation(1);
    const SyncSystem system{Graph(c.topology())};
    StreamingIndexOptions options;
    options.window = 4;
    IncrementalPrecedenceIndex index(system, options);
    for (const SyncMessage& m : c.messages()) {
        index.ingest_message(m.sender, m.receiver);
    }
    EXPECT_FALSE(index.is_resident(0));
    EXPECT_THROW((void)index.precedes(0, static_cast<MessageId>(
                                             c.num_messages() - 1)),
                 RetiredStampError);
}

// Streamed sharded verification must return the batch verdict exactly,
// at every thread count and chunk size, clean or corrupted.
TEST_F(StreamingEquivalence, VerifyStreamedMatchesBatchOver500Seeds) {
    const std::string dir = spill_dir("verify_sweep");
    for (std::uint64_t seed = 0; seed < 500; ++seed) {
        const SyncComputation c = sweep_computation(seed);
        const SyncSystem system{Graph(c.topology())};
        const TimestampedTrace trace = system.analyze(c);
        const std::size_t batch = trace.verify_against_ground_truth();

        std::optional<SpillStore> store;
        if (seed % 5 == 0) store.emplace(dir);
        for (const AnalysisOptions& analysis : all_options()) {
            StreamedVerifyOptions options;
            options.chunk_rows = 1 + seed % 17;
            options.min_streamed_messages = 0;  // force the streamed path
            options.analysis = analysis;
            options.spill = store ? &*store : nullptr;
            ASSERT_EQ(trace.verify_against_ground_truth(options), batch)
                << "seed " << seed << " threads " << analysis.threads;
            if (store) {
                // The sweep's closure chunks are scratch; clear them so
                // the next leg starts from an empty store.
                store.emplace(dir);
            }
        }
        ASSERT_EQ(batch, 0u) << "seed " << seed;
    }
}

TEST_F(StreamingEquivalence, VerifyAgreesOnCorruptedStamps) {
    for (std::uint64_t seed = 0; seed < 50; ++seed) {
        const SyncComputation c = sweep_computation(seed);
        const SyncSystem system{Graph(c.topology())};
        const TimestampedTrace good = system.analyze(c);

        // Wreck the first message's stamp: every component pinned to
        // max, so pairs that truly order against message 0 misreport.
        TimestampArena stamps = good.stamps();
        for (auto& word : stamps.span(0)) word = ~std::uint64_t{0};
        const TimestampedTrace corrupted(SyncComputation(c),
                                         std::move(stamps));

        const std::size_t batch = corrupted.verify_against_ground_truth();
        EXPECT_GT(batch, 0u) << "seed " << seed;
        for (const AnalysisOptions& analysis : all_options()) {
            StreamedVerifyOptions options;
            options.chunk_rows = 4;
            options.min_streamed_messages = 0;
            options.analysis = analysis;
            ASSERT_EQ(corrupted.verify_against_ground_truth(options), batch)
                << "seed " << seed << " threads " << analysis.threads;
        }
    }
}

// ---- SYTR binary stream format -----------------------------------------

void expect_equivalent(const SyncComputation& a, const SyncComputation& b) {
    ASSERT_EQ(a.num_processes(), b.num_processes());
    ASSERT_EQ(a.num_messages(), b.num_messages());
    ASSERT_EQ(a.num_internal_events(), b.num_internal_events());
    for (MessageId m = 0; m < a.num_messages(); ++m) {
        EXPECT_EQ(a.message(m).sender, b.message(m).sender);
        EXPECT_EQ(a.message(m).receiver, b.message(m).receiver);
    }
    for (ProcessId p = 0; p < a.num_processes(); ++p) {
        const auto ea = a.process_events(p);
        const auto eb = b.process_events(p);
        ASSERT_EQ(ea.size(), eb.size()) << "process " << p;
        for (std::size_t i = 0; i < ea.size(); ++i) {
            EXPECT_EQ(ea[i].kind, eb[i].kind);
            if (ea[i].kind == ProcessEvent::Kind::message) {
                EXPECT_EQ(ea[i].index, eb[i].index);
            }
        }
    }
}

TEST(SytrFormat, RoundTripsComputationsWithInternalEvents) {
    for (std::uint64_t seed = 0; seed < 20; ++seed) {
        const SyncComputation original = testing::random_workload(
            topology::client_server(2, 4), 40 + seed, 0.5, 9000 + seed);
        std::stringstream buffer;
        write_binary_computation(buffer, original);
        const SyncComputation parsed = read_binary_computation(buffer);
        expect_equivalent(original, parsed);
        // Semantics preserved: same stamps on both sides.
        const auto a = online_timestamps(original);
        const auto b = online_timestamps(parsed);
        ASSERT_EQ(a.size(), b.size());
        for (std::size_t i = 0; i < a.size(); ++i) EXPECT_EQ(a[i], b[i]);
    }
}

TEST(SytrFormat, SmallChunksForceManyFrames) {
    std::stringstream buffer;
    // chunk_events = 3: 100 events become ~34 frames, exercising every
    // chunk boundary plus the end-frame total cross-check.
    StreamingTraceWriter writer(buffer, topology::ring(5), 3);
    Rng rng(777);
    for (int i = 0; i < 100; ++i) {
        const auto p = static_cast<ProcessId>(rng.below(5));
        if (i % 4 == 3) {
            writer.add_internal(p);
        } else {
            writer.add_message(p, static_cast<ProcessId>((p + 1) % 5));
        }
    }
    writer.finish();
    EXPECT_EQ(writer.events_written(), 100u);

    StreamingTraceReader reader(buffer);
    std::size_t messages = 0;
    std::size_t internals = 0;
    while (const auto record = reader.next()) {
        if (record->kind == TraceRecord::Kind::message) {
            ++messages;
        } else {
            ++internals;
        }
    }
    EXPECT_TRUE(reader.finished());
    EXPECT_EQ(messages, 75u);
    EXPECT_EQ(internals, 25u);
    EXPECT_EQ(reader.events_read(), 100u);
}

TEST(SytrFormat, ReaderFeedsIncrementalIndexMidStream) {
    const SyncComputation c = sweep_computation(12);
    const SyncSystem system{Graph(c.topology())};
    const TimestampedTrace trace = system.analyze(c);

    std::stringstream buffer;
    write_binary_computation(buffer, c);

    StreamingTraceReader reader(buffer);
    EXPECT_EQ(reader.topology().num_edges(), c.topology().num_edges());
    IncrementalPrecedenceIndex index(system);

    // Ingest in two halves, querying between them: answers must already
    // be exact mid-stream.
    const std::uint64_t half =
        (c.num_messages() + c.num_internal_events()) / 2;
    index.ingest(reader, half);
    if (index.size() >= 2) {
        const auto last = static_cast<MessageId>(index.size() - 1);
        EXPECT_EQ(index.precedes(0, last), trace.precedes(0, last));
    }
    index.ingest(reader);
    EXPECT_TRUE(reader.finished());
    ASSERT_EQ(index.size(), c.num_messages());
    for (MessageId m = 0; m < c.num_messages(); ++m) {
        const auto streamed = index.stamp_span(m);
        const auto batch = trace.stamps().span(static_cast<TsHandle>(m));
        ASSERT_TRUE(std::equal(streamed.begin(), streamed.end(),
                               batch.begin(), batch.end()))
            << "stamp " << m;
    }
}

TEST(SytrFormat, WriterRejectsUseAfterFinish) {
    std::stringstream buffer;
    StreamingTraceWriter writer(buffer, topology::triangle());
    writer.add_message(0, 1);
    writer.finish();
    EXPECT_THROW(writer.add_message(1, 2), std::invalid_argument);
}

}  // namespace
}  // namespace syncts
