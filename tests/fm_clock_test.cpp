#include <gtest/gtest.h>

#include "clocks/fm_event_clock.hpp"
#include "clocks/fm_sync_clock.hpp"
#include "clocks/lamport_clock.hpp"
#include "core/causality.hpp"
#include "test_util.hpp"
#include "trace/ground_truth.hpp"

namespace syncts {
namespace {

TEST(FmSyncClock, WidthIsN) {
    FmSyncTimestamper t(7);
    EXPECT_EQ(t.width(), 7u);
    EXPECT_EQ(t.timestamp_message(0, 1).width(), 7u);
}

TEST(FmSyncClock, RendezvousMergesBothSides) {
    FmSyncTimestamper t(3);
    const auto m1 = t.timestamp_message(0, 1);
    EXPECT_EQ(m1, VectorTimestamp(std::vector<std::uint64_t>{1, 1, 0}));
    const auto m2 = t.timestamp_message(1, 2);
    EXPECT_EQ(m2, VectorTimestamp(std::vector<std::uint64_t>{1, 2, 1}));
    EXPECT_TRUE(m1.less(m2));
    EXPECT_EQ(t.clock(0), m1);
    EXPECT_EQ(t.clock(2), m2);
}

TEST(FmSyncClock, RejectsBadArguments) {
    FmSyncTimestamper t(3);
    EXPECT_THROW(t.timestamp_message(0, 0), std::invalid_argument);
    EXPECT_THROW(t.timestamp_message(0, 9), std::invalid_argument);
}

TEST(FmSyncClock, EncodesPrecedenceAcrossFamilies) {
    for (const auto& [name, graph] : testing::topology_suite(8, 71)) {
        const SyncComputation c = testing::random_workload(graph, 80, 0.0, 72);
        const auto stamps = fm_sync_timestamps(c);
        EXPECT_EQ(encoding_mismatches(message_poset(c), stamps), 0u) << name;
    }
}

TEST(FmEventClock, EncodesHappenedBefore) {
    for (const auto& [name, graph] : testing::topology_suite(7, 73)) {
        const SyncComputation c = testing::random_workload(graph, 50, 0.8, 74);
        const FmEventTimestamps stamps = fm_event_timestamps(c);
        const Poset truth = event_poset(c);

        // Assemble event stamps in event_poset element order: messages
        // first, then internal events.
        std::vector<VectorTimestamp> all = stamps.message_stamps;
        all.insert(all.end(), stamps.internal_stamps.begin(),
                   stamps.internal_stamps.end());
        EXPECT_EQ(encoding_mismatches(truth, all), 0u) << name;
    }
}

TEST(FmEventClock, InternalEventTicksOwnComponent) {
    SyncComputation c(topology::path(2));
    c.add_internal(0);
    c.add_message(0, 1);
    c.add_internal(1);
    const FmEventTimestamps stamps = fm_event_timestamps(c);
    EXPECT_EQ(stamps.internal_stamps[0],
              VectorTimestamp(std::vector<std::uint64_t>{1, 0}));
    EXPECT_EQ(stamps.message_stamps[0],
              VectorTimestamp(std::vector<std::uint64_t>{2, 1}));
    EXPECT_EQ(stamps.internal_stamps[1],
              VectorTimestamp(std::vector<std::uint64_t>{2, 2}));
}

TEST(LamportClock, ConsistentWithPrecedence) {
    for (const auto& [name, graph] : testing::topology_suite(8, 75)) {
        const SyncComputation c = testing::random_workload(graph, 70, 0.5, 76);
        const LamportTimestamps stamps = lamport_timestamps(c);
        const Poset truth = event_poset(c);
        const std::size_t messages = c.num_messages();
        const auto stamp_of = [&](std::size_t element) {
            return element < messages
                       ? stamps.message_stamps[element]
                       : stamps.internal_stamps[element - messages];
        };
        for (std::size_t a = 0; a < truth.size(); ++a) {
            for (std::size_t b = 0; b < truth.size(); ++b) {
                if (a != b && truth.less(a, b)) {
                    EXPECT_LT(stamp_of(a), stamp_of(b)) << name;
                }
            }
        }
    }
}

TEST(LamportClock, MessageEndpointsShareOneValue) {
    // The Section 2 characterization of synchronous computations: both
    // endpoints of every message carry the same integer, increasing within
    // each process — i.e., the arrows can be drawn vertically.
    const SyncComputation c =
        testing::random_workload(topology::complete(5), 100, 0.0, 77);
    const LamportTimestamps stamps = lamport_timestamps(c);
    for (ProcessId p = 0; p < c.num_processes(); ++p) {
        const auto msgs = c.process_messages(p);
        for (std::size_t i = 0; i + 1 < msgs.size(); ++i) {
            EXPECT_LT(stamps.message_stamps[msgs[i]],
                      stamps.message_stamps[msgs[i + 1]]);
        }
    }
}

TEST(LamportClock, CannotWitnessConcurrency) {
    // Scalar clocks order everything, so some concurrent pair must be
    // falsely ordered on a topology with disjoint edges.
    SyncComputation c(topology::path(4));
    c.add_message(0, 1);
    c.add_message(2, 3);
    const LamportTimestamps stamps = lamport_timestamps(c);
    const Poset truth = message_poset(c);
    EXPECT_TRUE(truth.incomparable(0, 1));
    // Both get stamp 1 here — equal, hence indistinguishable from ordered.
    EXPECT_EQ(stamps.message_stamps[0], stamps.message_stamps[1]);
}

}  // namespace
}  // namespace syncts
