#include <gtest/gtest.h>

#include "decomp/exact_decomposer.hpp"
#include "decomp/greedy_decomposer.hpp"
#include "graph/generators.hpp"
#include "graph/vertex_cover.hpp"
#include "test_util.hpp"

namespace syncts {
namespace {

TEST(ExactDecomposition, KnownOptima) {
    ASSERT_TRUE(exact_edge_decomposition(Graph(4)).has_value());
    EXPECT_EQ(exact_edge_decomposition(Graph(4))->size(), 0u);
    EXPECT_EQ(exact_edge_decomposition(topology::path(2))->size(), 1u);
    EXPECT_EQ(exact_edge_decomposition(topology::triangle())->size(), 1u);
    EXPECT_EQ(exact_edge_decomposition(topology::star(12))->size(), 1u);
    // K4: one star + one triangle beats any pure-star decomposition.
    EXPECT_EQ(exact_edge_decomposition(topology::complete(4))->size(), 2u);
    EXPECT_EQ(exact_edge_decomposition(topology::complete(5))->size(), 3u);
    EXPECT_EQ(exact_edge_decomposition(topology::complete(6))->size(), 4u);
    EXPECT_EQ(exact_edge_decomposition(topology::path(7))->size(), 3u);
    EXPECT_EQ(exact_edge_decomposition(topology::ring(6))->size(), 3u);
}

TEST(ExactDecomposition, DisjointTrianglesShowTightBound) {
    // α(G) = t but β(G) = 2t: the family that makes β ≤ 2α tight
    // (Section 3.3).
    for (std::size_t t : {2u, 3u, 4u}) {
        const Graph g = topology::disjoint_triangles(t);
        const auto alpha = exact_edge_decomposition(g);
        ASSERT_TRUE(alpha.has_value());
        EXPECT_EQ(alpha->size(), t);
        EXPECT_EQ(exact_vertex_cover(g).size(), 2 * t);
    }
}

TEST(ExactDecomposition, PaperFig2bOptimumIsFiveGroups) {
    // Fig. 8(f): the optimal decomposition is 4 stars + 1 triangle.
    const auto d = exact_edge_decomposition(topology::paper_fig2b());
    ASSERT_TRUE(d.has_value());
    EXPECT_EQ(d->size(), 5u);
    // And greedy achieves it on this instance.
    EXPECT_EQ(greedy_edge_decomposition(topology::paper_fig2b()).size(), 5u);
}

TEST(ExactDecomposition, NeverWorseThanGreedyOrCover) {
    for (const auto& [name, graph] : testing::small_graph_suite(21)) {
        const auto exact = exact_edge_decomposition(graph);
        ASSERT_TRUE(exact.has_value()) << name;
        EXPECT_TRUE(exact->complete()) << name;
        EXPECT_LE(exact->size(), greedy_edge_decomposition(graph).size())
            << name;
        if (graph.num_edges() > 0) {
            EXPECT_LE(exact->size(), exact_vertex_cover(graph).size())
                << name;
        }
    }
}

TEST(ExactDecomposition, MatchingLowerBoundHolds) {
    for (const auto& [name, graph] : testing::small_graph_suite(22)) {
        const auto exact = exact_edge_decomposition(graph);
        ASSERT_TRUE(exact.has_value()) << name;
        EXPECT_GE(exact->size(), decomposition_lower_bound(graph)) << name;
    }
}

TEST(ExactDecomposition, GreedyRatioWithinTwo) {
    // Theorem 6 on a batch of random instances.
    Rng rng(77);
    for (int trial = 0; trial < 12; ++trial) {
        const Graph g = topology::random_gnp(11, 0.35, rng);
        const auto exact = exact_edge_decomposition(g);
        ASSERT_TRUE(exact.has_value());
        const auto greedy = greedy_edge_decomposition(g);
        if (exact->size() > 0) {
            EXPECT_LE(greedy.size(), 2 * exact->size()) << "trial " << trial;
        }
    }
}

TEST(ExactDecomposition, GreedyOptimalOnForests) {
    Rng rng(78);
    for (int trial = 0; trial < 10; ++trial) {
        const Graph tree = topology::random_tree(14, rng);
        const auto exact = exact_edge_decomposition(tree);
        ASSERT_TRUE(exact.has_value());
        EXPECT_EQ(greedy_edge_decomposition(tree).size(), exact->size())
            << "trial " << trial;
    }
}

TEST(ExactDecomposition, BudgetExhaustionReturnsNullopt) {
    const auto result =
        exact_edge_decomposition(topology::complete(9), /*node_budget=*/5);
    EXPECT_FALSE(result.has_value());
}

}  // namespace
}  // namespace syncts
