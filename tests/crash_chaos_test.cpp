#include <gtest/gtest.h>

#include <limits>
#include <memory>
#include <vector>

#include "clocks/clock_engine.hpp"
#include "clocks/offline_timestamper.hpp"
#include "clocks/online_clock.hpp"
#include "common/rng.hpp"
#include "core/causality.hpp"
#include "trace/ground_truth.hpp"
#include "decomp/cover_decomposer.hpp"
#include "graph/generators.hpp"
#include "obs/metrics.hpp"
#include "obs/trace_sink.hpp"
#include "runtime/reconfig_runtime.hpp"
#include "runtime/synchronizer.hpp"
#include "test_util.hpp"
#include "topo/reconfig.hpp"

/// Crash-chaos harness (acceptance gate of the crash-recovery work,
/// docs/RECOVERY.md): recorded computations replayed through >= 500
/// seeded schedules in which processes crash mid-protocol — losing all
/// volatile state plus the WAL's unflushed tail — and restart from
/// snapshot + log replay after a downtime. Every schedule must realize
/// message timestamps bit-identical to the crash-free Fig. 5 oracle,
/// with WAL truncation active, and the aggregated `recover_*` counters
/// must prove each recovery path actually fired. The other five clock
/// families are validated on crash-realized computations, and one sweep
/// combines crashes with a multi-epoch reconfiguration schedule.

namespace syncts {
namespace {

struct CrashTotals {
    std::uint64_t schedules = 0;
    std::uint64_t messages = 0;
    obs::MetricsRegistry metrics;
    std::uint64_t crashes = 0;
    std::uint64_t down_drops = 0;
};

/// Derives a random crash schedule: `count` crashes spread over the
/// processes, at 1-based protocol steps within the workload's span.
std::vector<CrashRule> random_crashes(Rng& rng, std::size_t processes,
                                      std::size_t max_step,
                                      std::size_t count) {
    std::vector<CrashRule> rules;
    for (std::size_t i = 0; i < count; ++i) {
        CrashRule rule;
        rule.process = static_cast<ProcessId>(rng.below(processes));
        rule.at_step = 1 + rng.below(max_step);
        rule.downtime = 10 + rng.below(70);
        rules.push_back(rule);
    }
    return rules;
}

/// One workload replayed through `schedules` distinct crash schedules
/// (half of them also under network faults). Asserts bit-identity to the
/// crash-free oracle for every schedule.
void run_crash_sweep(const Graph& topology, std::size_t messages,
                     std::uint64_t workload_seed, std::uint64_t schedules,
                     CrashTotals& totals) {
    const SyncComputation script =
        testing::random_workload(topology, messages, 0.0, workload_seed);
    auto decomposition = std::make_shared<const EdgeDecomposition>(
        default_decomposition(topology));
    OnlineTimestamper direct(decomposition);
    const std::vector<VectorTimestamp> expected =
        direct.timestamp_computation(script);

    // Steps per process are bounded by its script length; crash points
    // beyond it simply never fire, so aim inside the busy range.
    const std::size_t max_step =
        1 + 2 * messages / topology.num_vertices();

    for (std::uint64_t schedule = 1; schedule <= schedules; ++schedule) {
        SynchronizerOptions options;
        options.seed = workload_seed * 1'000'003 + schedule;
        options.latency_lo = 1;
        options.latency_hi = 8;
        options.faults.seed = schedule * 0x9E3779B9ull + workload_seed;
        Rng rng(options.faults.seed ^ 0xC0FFEE);
        options.faults.crashes = random_crashes(
            rng, topology.num_vertices(), max_step, 1 + rng.below(3));
        if (schedule % 2 == 0) {
            options.faults.drop_probability = 0.03;
            options.faults.duplicate_probability = 0.05;
            options.faults.delay_probability = 0.25;
            options.faults.max_extra_delay = 20;
        }
        options.recovery.wal_flush_interval = 1 + rng.below(4);
        options.recovery.snapshot_interval = 2 + rng.below(12);
        options.recovery.window =
            options.recovery.wal_flush_interval + rng.below(5);
        options.metrics = &totals.metrics;
        const SynchronizerResult result =
            run_rendezvous_protocol(decomposition, script, options);
        ASSERT_EQ(result.message_stamps.size(), expected.size());
        for (std::size_t i = 0; i < result.message_stamps.size(); ++i) {
            ASSERT_EQ(result.message_stamps[i],
                      expected[result.script_message[i]])
                << "schedule " << schedule << " realized message " << i;
        }
        ++totals.schedules;
        totals.messages += result.message_stamps.size();
        totals.crashes += result.network_faults.crashes;
        totals.down_drops += result.network_faults.down_drops;
    }
}

TEST(CrashChaos, SingleDeterministicCrashRecoversBitIdentical) {
    const Graph topology = topology::path(3);
    const SyncComputation script =
        testing::random_workload(topology, 24, 0.0, 7);
    auto decomposition = std::make_shared<const EdgeDecomposition>(
        default_decomposition(topology));
    OnlineTimestamper direct(decomposition);
    const std::vector<VectorTimestamp> expected =
        direct.timestamp_computation(script);

    obs::MetricsRegistry metrics;
    obs::TraceSink trace(4096);
    SynchronizerOptions options;
    options.seed = 11;
    options.faults.crashes.push_back(CrashRule{1, 3, 40});
    options.recovery.wal_flush_interval = 2;
    options.recovery.snapshot_interval = 5;
    options.recovery.window = 4;
    options.metrics = &metrics;
    options.trace = &trace;
    const SynchronizerResult result =
        run_rendezvous_protocol(decomposition, script, options);

    ASSERT_EQ(result.message_stamps.size(), expected.size());
    for (std::size_t i = 0; i < result.message_stamps.size(); ++i) {
        EXPECT_EQ(result.message_stamps[i],
                  expected[result.script_message[i]]);
    }
    EXPECT_EQ(result.network_faults.crashes, 1u);
    EXPECT_EQ(metrics.counter("recover_restarts").value(), 1u);
    EXPECT_GT(metrics.counter("recover_snapshots").value(), 0u);
    EXPECT_GT(metrics.counter("recover_wal_appends").value(), 0u);
    // The crash and restart must be visible in the causal trace.
    bool saw_crash = false;
    bool saw_restart = false;
    trace.for_each([&](const obs::TraceEvent& e) {
        saw_crash |= e.kind == obs::TraceEventKind::crash;
        saw_restart |= e.kind == obs::TraceEventKind::restart;
    });
    EXPECT_TRUE(saw_crash);
    EXPECT_TRUE(saw_restart);
}

TEST(CrashChaos, FiveHundredCrashSchedulesBitIdenticalTimestamps) {
    CrashTotals totals;
    run_crash_sweep(topology::path(3), 24, 51, 180, totals);
    run_crash_sweep(topology::client_server(2, 3), 30, 52, 180, totals);
    run_crash_sweep(topology::complete(4), 30, 53, 180, totals);

    ASSERT_GE(totals.schedules, 500u);
    // The sweep must have exercised every recovery path: crashes fired,
    // deliveries hit dead NICs, snapshots and WAL flushes happened, logs
    // were replayed and truncated, the rejoin handshake ran, and both
    // window paths (ACK replay for re-executed sends, REQ replay for
    // lost frames) were taken. A crash suite whose crashes never bite
    // tests nothing.
    EXPECT_GT(totals.crashes, 0u);
    EXPECT_GT(totals.down_drops, 0u);
    const auto counter = [&](const char* name) {
        return totals.metrics.counter(name).value();
    };
    EXPECT_GT(counter("recover_restarts"), 0u);
    EXPECT_GT(counter("recover_snapshots"), 0u);
    EXPECT_GT(counter("recover_replayed_records"), 0u);
    EXPECT_GT(counter("recover_wal_appends"), 0u);
    EXPECT_GT(counter("recover_wal_flushes"), 0u);
    EXPECT_GT(counter("recover_wal_truncated"), 0u);  // truncation active
    EXPECT_GT(counter("recover_hellos"), 0u);
    EXPECT_GT(counter("recover_hello_acks"), 0u);
    EXPECT_GT(counter("recover_recommits"), 0u);
    EXPECT_GT(counter("recover_window_retransmits"), 0u);
    EXPECT_GT(counter("recover_window_ack_replays"), 0u);
}

TEST(CrashChaos, AllSixFamiliesValidateOnCrashRealizedComputations) {
    constexpr ClockFamily kVectorFamilies[] = {
        ClockFamily::online, ClockFamily::fm_sync, ClockFamily::fm_event,
        ClockFamily::lamport,
    };
    for (std::uint64_t seed = 1; seed <= 12; ++seed) {
        const Graph topology = topology::complete(4);
        const SyncComputation script =
            testing::random_workload(topology, 28, 0.0, 60 + seed);
        auto decomposition = std::make_shared<const EdgeDecomposition>(
            default_decomposition(topology));
        SynchronizerOptions options;
        options.seed = 600 + seed;
        Rng rng(seed * 77);
        options.faults.crashes =
            random_crashes(rng, topology.num_vertices(), 10, 2);
        options.recovery.wal_flush_interval = 2;
        options.recovery.snapshot_interval = 4;
        options.recovery.window = 6;
        const SynchronizerResult result =
            run_rendezvous_protocol(decomposition, script, options);
        ASSERT_GT(result.network_faults.crashes, 0u);

        // The realized computation has the script's messages and
        // per-process orders (instants renumbered to commit order), so
        // every family must stamp it exactly as it stamps the script —
        // message i of the realized run maps to script_message[i].
        for (const ClockFamily family : kVectorFamilies) {
            auto on_script = make_clock_engine(family, decomposition);
            auto on_realized = make_clock_engine(family, decomposition);
            const std::vector<VectorTimestamp> want =
                on_script->stamp_computation(script).materialize_messages();
            const std::vector<VectorTimestamp> got =
                on_realized->stamp_computation(result.computation)
                    .materialize_messages();
            ASSERT_EQ(got.size(), want.size()) << to_string(family);
            for (std::size_t i = 0; i < got.size(); ++i) {
                ASSERT_EQ(got[i], want[result.script_message[i]])
                    << to_string(family) << " seed " << seed
                    << " realized message " << i;
            }
        }
        // Direct dependency (Fowler–Zwaenepoel): stamp components are
        // message *ids* in the stamping run's own dense numbering, so
        // realized-run components must be translated through
        // script_message before comparing with the script run's stamps.
        {
            auto on_script = make_clock_engine(
                ClockFamily::direct_dependency, decomposition);
            auto on_realized = make_clock_engine(
                ClockFamily::direct_dependency, decomposition);
            const std::vector<VectorTimestamp> want =
                on_script->stamp_computation(script).materialize_messages();
            const std::vector<VectorTimestamp> got =
                on_realized->stamp_computation(result.computation)
                    .materialize_messages();
            ASSERT_EQ(got.size(), want.size());
            for (std::size_t i = 0; i < got.size(); ++i) {
                const VectorTimestamp& expect = want[result.script_message[i]];
                ASSERT_EQ(got[i].width(), expect.width());
                // The engine's "no previous message" sentinel.
                constexpr std::uint64_t kNone =
                    std::numeric_limits<std::uint64_t>::max();
                for (std::size_t c = 0; c < got[i].width(); ++c) {
                    const std::uint64_t raw = got[i][c];
                    const std::uint64_t translated =
                        raw == kNone
                            ? kNone
                            : result.script_message[static_cast<std::size_t>(
                                  raw)];
                    ASSERT_EQ(translated, expect[c])
                        << "direct_dependency seed " << seed << " message "
                        << i << " component " << c;
                }
            }
        }
        // Offline (Fig. 9): the realizer on the crash-realized
        // computation must still encode its precedence exactly.
        const OfflineResult offline =
            offline_timestamps(result.computation);
        EXPECT_EQ(encoding_mismatches(message_poset(result.computation),
                                      offline.timestamps),
                  0u)
            << "seed " << seed;
    }
}

TEST(CrashChaos, CrashesUnderReconfigurationStayBitIdentical) {
    obs::MetricsRegistry metrics;
    std::uint64_t crashed_runs = 0;
    for (std::uint64_t seed = 0; seed < 40; ++seed) {
        TopologyManager manager{topology::ring(5)};
        for (const ReconfigOp& op : random_reconfig_schedule(
                 topology::ring(5), 2, 7000 + seed)) {
            apply(manager, op);
        }
        std::vector<SyncComputation> scripts;
        std::vector<std::vector<VectorTimestamp>> expected;
        for (EpochId e = 0; e < manager.num_epochs(); ++e) {
            scripts.push_back(testing::random_workload(
                manager.epoch(e).graph(), 16, 0.0, seed * 131 + e));
            OnlineTimestamper direct(manager.decomposition(e));
            expected.push_back(direct.timestamp_computation(scripts[e]));
        }

        SynchronizerOptions options;
        options.seed = 9000 + seed;
        options.latency_lo = 1;
        options.latency_hi = 5;
        Rng rng(seed * 0x9E3779B9ull + 5);
        options.faults.crashes = random_crashes(
            rng, manager.epoch(0).graph().num_vertices(),
            8 * manager.num_epochs(), 1 + rng.below(2));
        options.recovery.wal_flush_interval = 2;
        options.recovery.snapshot_interval = 6;
        options.recovery.window = 6;
        options.metrics = &metrics;

        const ReconfigurableRunResult run =
            run_reconfigurable_protocol(manager, scripts, options);
        crashed_runs += run.network_faults.crashes > 0 ? 1 : 0;
        ASSERT_EQ(run.segments.size(), manager.num_epochs());
        for (EpochId e = 0; e < manager.num_epochs(); ++e) {
            const EpochSegmentResult& segment = run.segments[e];
            ASSERT_EQ(segment.message_stamps.size(), expected[e].size());
            for (std::size_t i = 0; i < segment.message_stamps.size();
                 ++i) {
                ASSERT_EQ(segment.message_stamps[i],
                          expected[e][segment.script_message[i]])
                    << "seed " << seed << " epoch " << e << " message "
                    << i;
            }
        }
    }
    // Crash rules must actually have fired across the sweep, including
    // restarts that had to catch up through epoch barriers.
    EXPECT_GT(crashed_runs, 10u);
    EXPECT_GT(metrics.counter("recover_restarts").value(), 0u);
    EXPECT_GT(metrics.counter("recover_fast_forwards").value(), 0u);
}

TEST(CrashChaos, RecoveryOptionsAreValidated) {
    const Graph topology = topology::path(2);
    const SyncComputation script =
        testing::random_workload(topology, 4, 0.0, 3);
    auto decomposition = std::make_shared<const EdgeDecomposition>(
        default_decomposition(topology));
    {
        SynchronizerOptions options;
        options.recovery.enabled = true;
        options.recovery.wal_flush_interval = 8;
        options.recovery.window = 4;  // window < flush interval
        EXPECT_THROW(
            run_rendezvous_protocol(decomposition, script, options),
            std::invalid_argument);
    }
    {
        SynchronizerOptions options;
        options.faults.crashes.push_back(CrashRule{9, 1, 10});  // no P9
        EXPECT_THROW(
            run_rendezvous_protocol(decomposition, script, options),
            std::invalid_argument);
    }
    {
        SynchronizerOptions options;
        options.faults.crashes.push_back(CrashRule{0, 0, 10});  // step 0
        EXPECT_THROW(
            run_rendezvous_protocol(decomposition, script, options),
            std::invalid_argument);
    }
}

TEST(CrashChaos, EnabledRecoveryWithoutCrashesChangesNothing) {
    // Checkpointing overhead only: stamps, packets, and virtual time are
    // identical with and without the recovery layer armed.
    const Graph topology = topology::complete(4);
    const SyncComputation script =
        testing::random_workload(topology, 30, 0.0, 77);
    auto decomposition = std::make_shared<const EdgeDecomposition>(
        default_decomposition(topology));
    SynchronizerOptions plain;
    plain.seed = 5;
    plain.latency_hi = 6;
    const SynchronizerResult a =
        run_rendezvous_protocol(decomposition, script, plain);
    SynchronizerOptions armed = plain;
    armed.recovery.enabled = true;
    obs::MetricsRegistry metrics;
    armed.metrics = &metrics;
    const SynchronizerResult b =
        run_rendezvous_protocol(decomposition, script, armed);
    ASSERT_EQ(a.message_stamps, b.message_stamps);
    EXPECT_EQ(a.packets, b.packets);
    EXPECT_EQ(a.virtual_duration, b.virtual_duration);
    EXPECT_GT(metrics.counter("recover_snapshots").value(), 0u);
    EXPECT_EQ(metrics.counter("recover_restarts").value(), 0u);
}

}  // namespace
}  // namespace syncts
