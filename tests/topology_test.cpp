#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <memory>
#include <vector>

#include "clocks/clock_engine.hpp"
#include "clocks/engine_stock.hpp"
#include "clocks/online_clock.hpp"
#include "clocks/wire.hpp"
#include "common/pool.hpp"
#include "common/region.hpp"
#include "core/multi_epoch_trace.hpp"
#include "decomp/greedy_decomposer.hpp"
#include "obs/metrics.hpp"
#include "runtime/reconfig_runtime.hpp"
#include "runtime/synchronizer.hpp"
#include "test_util.hpp"
#include "topo/reconfig.hpp"
#include "topo/topology_manager.hpp"

/// The epoch-versioned topology acceptance sweep (docs/TOPOLOGY.md):
///   (a) per-epoch timestamps are bit-identical to fresh runs on that
///       epoch's topology, for every clock family;
///   (b) cross-epoch precedence matches the offline ground-truth closure
///       at every thread count;
///   (c) pre-epoch (v1) wire frames interoperate as epoch 0;
/// plus the incremental-decomposition quality bound (Theorems 5-7) over
/// 500 random reconfiguration schedules.

namespace syncts {
namespace {

/// Exact β(G) by exhaustive subset sweep — only called on graphs small
/// enough (n ≤ 16) for 2^n to be trivial.
std::size_t exact_vertex_cover_size(const Graph& g) {
    const std::size_t n = g.num_vertices();
    std::size_t best = n;
    for (std::uint32_t mask = 0; mask < (1u << n); ++mask) {
        const auto covered = [mask](const Edge& e) {
            return ((mask >> e.u) & 1u) || ((mask >> e.v) & 1u);
        };
        bool covers = true;
        for (const Edge& e : g.edges()) {
            if (!covered(e)) {
                covers = false;
                break;
            }
        }
        if (covers) {
            best = std::min(
                best, static_cast<std::size_t>(__builtin_popcount(mask)));
        }
    }
    return best;
}

/// Theorem 5's cap on the optimal decomposition: min(β(G), N−2), the
/// N−2 term applying once N ≥ 3.
std::size_t theorem5_bound(const Graph& g) {
    const std::size_t beta = exact_vertex_cover_size(g);
    if (g.num_vertices() >= 3) {
        return std::min(beta, g.num_vertices() - 2);
    }
    return beta;
}

void expect_transition_consistent(const EpochTransition& t) {
    ASSERT_EQ(t.from_epoch + 1, t.to_epoch);
    ASSERT_TRUE(t.from && t.to);
    ASSERT_EQ(t.group_source.size(), t.to->size());
    ASSERT_EQ(t.group_target.size(), t.from->size());
    ASSERT_LE(t.old_num_processes, t.new_num_processes);

    std::size_t preserved = 0;
    for (GroupId g = 0; g < t.group_source.size(); ++g) {
        const GroupId src = t.group_source[g];
        if (src == kNoGroup) continue;
        ++preserved;
        ASSERT_LT(src, t.group_target.size());
        EXPECT_EQ(t.group_target[src], g);
        // A preserved component keeps its exact edge set.
        const EdgeGroup& now = t.to->group(g);
        const EdgeGroup& was = t.from->group(src);
        ASSERT_EQ(now.edges.size(), was.edges.size());
        for (const Edge& e : now.edges) {
            EXPECT_EQ(was.kind, now.kind);
            EXPECT_TRUE(std::find(was.edges.begin(), was.edges.end(), e) !=
                        was.edges.end());
        }
    }
    EXPECT_EQ(t.preserved_groups, preserved);
    for (GroupId g = 0; g < t.group_target.size(); ++g) {
        if (t.group_target[g] == kNoGroup) continue;
        EXPECT_EQ(t.group_source[t.group_target[g]], g);
    }
}

/// Small-graph pool for the schedule sweeps: every case with at least one
/// channel and few enough vertices that β(G) stays exactly computable
/// after a handful of addp ops.
std::vector<Graph> schedule_pool(std::uint64_t seed) {
    std::vector<Graph> pool;
    for (const auto& [name, graph] : testing::small_graph_suite(seed)) {
        if (graph.num_edges() == 0) continue;
        if (graph.num_vertices() > 9) continue;
        pool.push_back(graph);
    }
    return pool;
}

TEST(Topology, ManagerBuildsImmutableEpochsWithConsistentRemaps) {
    TopologyManager manager{topology::ring(5)};
    const std::shared_ptr<const EdgeDecomposition> epoch0 =
        manager.current_decomposition();
    ASSERT_EQ(manager.num_epochs(), 1u);
    EXPECT_EQ(manager.current_epoch_id(), 0u);

    const EpochTransition& t1 = manager.add_channel(0, 2);
    expect_transition_consistent(t1);
    EXPECT_EQ(manager.num_epochs(), 2u);
    EXPECT_TRUE(manager.epoch(1).graph().has_edge(0, 2));

    const EpochTransition& t2 = manager.remove_channel(3, 4);
    expect_transition_consistent(t2);
    EXPECT_FALSE(manager.current().graph().has_edge(3, 4));

    // A pure process add keeps the decomposition: every group survives.
    const EpochTransition& t3 = manager.add_process();
    expect_transition_consistent(t3);
    EXPECT_EQ(t3.preserved_groups, t3.from->size());
    EXPECT_EQ(t3.new_num_processes, t3.old_num_processes + 1);
    EXPECT_EQ(manager.current().width(), manager.epoch(2).width());

    const EpochTransition& t4 = manager.add_process(0);
    expect_transition_consistent(t4);
    EXPECT_TRUE(manager.current().graph().has_edge(
        0, static_cast<ProcessId>(t4.new_num_processes - 1)));

    // Handed-out snapshots are never mutated by later reconfigurations.
    EXPECT_EQ(manager.decomposition(0).get(), epoch0.get());
    EXPECT_EQ(epoch0->graph().num_vertices(), 5u);
    EXPECT_EQ(manager.transitions().size(), manager.num_epochs() - 1);
    for (EpochId e = 1; e < manager.num_epochs(); ++e) {
        EXPECT_EQ(manager.transition_into(e).to_epoch, e);
        EXPECT_EQ(manager.epoch(e).id, e);
    }

    EXPECT_THROW(manager.add_channel(0, 1), std::invalid_argument);
    EXPECT_THROW(manager.add_channel(0, 99), std::invalid_argument);
    EXPECT_THROW(manager.remove_channel(3, 4), std::invalid_argument);
}

TEST(Topology, IncrementalStaysWithinTheoremBoundAcross500Schedules) {
    const std::vector<Graph> pool = schedule_pool(41);
    ASSERT_FALSE(pool.empty());
    std::size_t incremental_epochs = 0;
    for (std::uint64_t seed = 0; seed < 500; ++seed) {
        const Graph& initial = pool[seed % pool.size()];
        TopologyManager manager{Graph(initial)};
        const std::vector<ReconfigOp> schedule =
            random_reconfig_schedule(initial, 3, seed);
        for (const ReconfigOp& op : schedule) {
            const EpochTransition& t = apply(manager, op);
            expect_transition_consistent(t);
            if (!t.full_rebuild) ++incremental_epochs;

            const Epoch& epoch = manager.current();
            ASSERT_TRUE(epoch.decomposition->complete());
            if (epoch.graph().num_edges() == 0) continue;

            // Theorem 6's 2-approximation, preserved incrementally: the
            // patched decomposition never exceeds twice the Theorem 5 cap.
            EXPECT_LE(epoch.width(), 2 * theorem5_bound(epoch.graph()))
                << "seed " << seed << " op " << op.to_string();

            // Theorem 7: Fig. 7 is optimal on acyclic graphs, and the
            // incremental path must match the full greedy run there.
            if (epoch.graph().is_acyclic()) {
                EXPECT_EQ(epoch.width(),
                          greedy_edge_decomposition(epoch.graph()).size())
                    << "seed " << seed << " op " << op.to_string();
            }
        }
    }
    // The sweep must actually exercise the incremental path, not just the
    // acyclic / quality-guard full rebuilds.
    EXPECT_GT(incremental_epochs, 100u);
}

TEST(Topology, AllFamiliesStampBitIdenticalToFreshEnginesPerEpoch) {
    constexpr ClockFamily kFamilies[] = {
        ClockFamily::online,  ClockFamily::fm_sync,
        ClockFamily::fm_event, ClockFamily::lamport,
        ClockFamily::direct_dependency, ClockFamily::offline,
    };
    const std::vector<Graph> pool = schedule_pool(42);
    for (std::uint64_t seed = 0; seed < 40; ++seed) {
        const Graph& initial = pool[seed % pool.size()];
        TopologyManager manager{Graph(initial)};
        for (const ReconfigOp& op :
             random_reconfig_schedule(initial, 3, 1000 + seed)) {
            apply(manager, op);
        }
        std::vector<SyncComputation> scripts;
        for (EpochId e = 0; e < manager.num_epochs(); ++e) {
            scripts.push_back(testing::random_workload(
                manager.epoch(e).graph(), 20, 0.25, seed * 31 + e));
        }

        for (const ClockFamily family : kFamilies) {
            auto migrated = make_clock_engine(family,
                                              manager.decomposition(0));
            for (EpochId e = 0; e < manager.num_epochs(); ++e) {
                if (e > 0) migrated->on_epoch(manager.transition_into(e));
                ASSERT_EQ(migrated->epoch(), e);

                auto fresh = make_clock_engine(family,
                                               manager.decomposition(e));
                const std::vector<VectorTimestamp> got =
                    migrated->stamp_computation(scripts[e])
                        .materialize_messages();
                const std::vector<VectorTimestamp> want =
                    fresh->stamp_computation(scripts[e])
                        .materialize_messages();
                ASSERT_EQ(got.size(), want.size());
                for (std::size_t m = 0; m < got.size(); ++m) {
                    ASSERT_EQ(got[m], want[m])
                        << to_string(family) << " seed " << seed
                        << " epoch " << e << " message " << m;
                }
                EXPECT_EQ(migrated->width(), fresh->width())
                    << to_string(family);
            }
        }
    }
}

TEST(Topology, OnlineFloorFoldsHighWaterThroughTheMigrationRule) {
    const std::vector<Graph> pool = schedule_pool(43);
    for (std::uint64_t seed = 0; seed < 25; ++seed) {
        const Graph& initial = pool[seed % pool.size()];
        TopologyManager manager{Graph(initial)};
        for (const ReconfigOp& op :
             random_reconfig_schedule(initial, 3, 2000 + seed)) {
            apply(manager, op);
        }
        auto engine =
            make_clock_engine(ClockFamily::online, manager.decomposition(0));
        for (EpochId e = 0; e + 1 < manager.num_epochs(); ++e) {
            const SyncComputation script = testing::random_workload(
                manager.epoch(e).graph(), 18, 0.2, seed * 97 + e);
            const std::vector<VectorTimestamp> stamps =
                engine->stamp_computation(script).materialize_messages();

            // This epoch's high-water mark, reconstructed from the stamps:
            // every component tick lands on some message stamp.
            std::vector<std::uint64_t> high_water(engine->width(), 0);
            for (const VectorTimestamp& ts : stamps) {
                for (std::size_t c = 0; c < high_water.size(); ++c) {
                    high_water[c] = std::max(high_water[c], ts[c]);
                }
            }
            std::vector<std::uint64_t> floor_before(
                engine->epoch_floor().begin(), engine->epoch_floor().end());
            floor_before.resize(engine->width(), 0);

            const EpochTransition& t = manager.transition_into(e + 1);
            engine->on_epoch(t);
            ASSERT_EQ(engine->epoch_floor().size(), t.new_width());
            for (GroupId g = 0; g < t.new_width(); ++g) {
                const GroupId src = t.group_source[g];
                const std::uint64_t want =
                    src == kNoGroup ? 0
                                    : floor_before[src] + high_water[src];
                EXPECT_EQ(engine->epoch_floor()[g], want)
                    << "seed " << seed << " epoch " << e + 1 << " comp "
                    << g;
            }
        }
    }
}

TEST(Topology, ReconfigurableRunsMatchFreshSingleEpochStamps) {
    const std::vector<Graph> pool = schedule_pool(44);
    obs::MetricsRegistry metrics;
    std::uint64_t expected_transitions = 0;
    for (std::uint64_t seed = 0; seed < 60; ++seed) {
        const Graph& initial = pool[seed % pool.size()];
        TopologyManager manager{Graph(initial)};
        for (const ReconfigOp& op :
             random_reconfig_schedule(initial, 2, 3000 + seed)) {
            apply(manager, op);
        }
        expected_transitions += manager.num_epochs() - 1;

        std::vector<SyncComputation> scripts;
        std::vector<std::vector<VectorTimestamp>> expected;
        for (EpochId e = 0; e < manager.num_epochs(); ++e) {
            scripts.push_back(testing::random_workload(
                manager.epoch(e).graph(), 18, 0.2, seed * 131 + e));
            OnlineTimestamper direct(manager.decomposition(e));
            expected.push_back(direct.timestamp_computation(scripts[e]));
        }

        SynchronizerOptions options;
        options.seed = 5000 + seed;
        options.latency_lo = 1;
        options.latency_hi = 4;
        options.metrics = &metrics;
        if (seed % 2 == 1) {
            // Duplicates and reordering delays are what push stale-epoch
            // frames across the barrier; no drops or corruption, so every
            // NACK is actually delivered.
            options.faults.duplicate_probability = 0.2;
            options.faults.delay_probability = 0.25;
            options.faults.max_extra_delay = 12;
        }

        const ReconfigurableRunResult run =
            run_reconfigurable_protocol(manager, scripts, options);
        ASSERT_EQ(run.segments.size(), manager.num_epochs());
        for (EpochId e = 0; e < manager.num_epochs(); ++e) {
            const EpochSegmentResult& segment = run.segments[e];
            ASSERT_EQ(segment.epoch, e);
            ASSERT_EQ(segment.message_stamps.size(), expected[e].size());
            for (std::size_t i = 0; i < segment.message_stamps.size(); ++i) {
                // Headline property: the committed stamp equals the direct
                // Fig. 5 simulation on this epoch's topology, bit for bit.
                ASSERT_EQ(segment.message_stamps[i],
                          expected[e][segment.script_message[i]])
                    << "seed " << seed << " epoch " << e;
            }
        }
    }

    EXPECT_EQ(metrics.counter("sync_epoch_transitions").value(),
              expected_transitions);
    // The faulty half of the sweep must exercise the stale-epoch path:
    // late REQs get NACKed, and (under the barrier model) every NACK
    // arrives at a sender with nothing outstanding and is dropped.
    EXPECT_GT(metrics.counter("sync_epoch_rejects").value(), 0u);
    EXPECT_GT(metrics.counter("sync_nacks_sent").value(), 0u);
    EXPECT_GE(metrics.counter("sync_nack_drops").value(),
              metrics.counter("sync_nacks_sent").value());
    EXPECT_GE(metrics.counter("sync_epoch_rejects").value(),
              metrics.counter("sync_nacks_sent").value());
}

TEST(Topology, ExternalPoolAndStockRecycleAcrossRuns) {
    // The server recycling contract (docs/MEMORY.md): a caller-owned
    // SlabPool and EngineStock survive across protocol runs, so run k+1
    // leases run k's slabs and engines instead of heap-constructing, and
    // the recycling is invisible — both runs stamp bit-identically.
    TopologyManager manager{topology::ring(5)};
    for (const ReconfigOp& op :
         random_reconfig_schedule(topology::ring(5), 3, 97)) {
        apply(manager, op);
    }
    std::vector<SyncComputation> scripts;
    for (EpochId e = 0; e < manager.num_epochs(); ++e) {
        scripts.push_back(testing::random_workload(
            manager.epoch(e).graph(), 20, 0.1, 700 + e));
    }

    SlabPool pool;
    EngineStock stock;
    obs::MetricsRegistry metrics;
    pool.attach_metrics(metrics);
    stock.attach_metrics(metrics);
    SynchronizerOptions options;
    options.seed = 4242;
    options.latency_lo = 1;
    options.latency_hi = 4;
    options.slab_pool = &pool;
    options.engine_stock = &stock;

    const ReconfigurableRunResult first =
        run_reconfigurable_protocol(manager, scripts, options);
    const std::uint64_t pool_reuses_after_first = pool.reuses();
    const std::uint64_t stock_reuses_after_first = stock.reuses();
    EXPECT_GT(stock.stocked_clocks(), 0u)
        << "retired process clocks must park in the caller's stock";

    const ReconfigurableRunResult second =
        run_reconfigurable_protocol(manager, scripts, options);

    // The second run is served from the first run's retired resources.
    EXPECT_GT(pool.reuses(), pool_reuses_after_first);
    EXPECT_GT(stock.reuses(), stock_reuses_after_first);
    EXPECT_EQ(pool.leased_bytes(), 0u)
        << "every region slab must be back in the pool after the run";

    ASSERT_EQ(first.segments.size(), second.segments.size());
    for (std::size_t e = 0; e < first.segments.size(); ++e) {
        ASSERT_EQ(first.segments[e].message_stamps,
                  second.segments[e].message_stamps)
            << "epoch " << e << ": recycling changed the stamps";
        ASSERT_EQ(first.segments[e].script_message,
                  second.segments[e].script_message)
            << "epoch " << e;
    }
    // Caller-owned pool/stock attach their own metrics; the runtime must
    // not have double-registered them.
    EXPECT_EQ(metrics.counter("slabpool_reuses").value(), pool.reuses());
    EXPECT_EQ(metrics.counter("stock_reuses").value(), stock.reuses());
}

TEST(Topology, CrossEpochPrecedenceMatchesGroundTruthAtEveryThreadCount) {
    const std::vector<Graph> pool = schedule_pool(45);
    for (std::uint64_t seed = 0; seed < 10; ++seed) {
        const Graph& initial = pool[seed % pool.size()];
        TopologyManager manager{Graph(initial)};
        for (const ReconfigOp& op :
             random_reconfig_schedule(initial, 3, 4000 + seed)) {
            apply(manager, op);
        }
        std::vector<SyncComputation> scripts;
        for (EpochId e = 0; e < manager.num_epochs(); ++e) {
            scripts.push_back(testing::random_workload(
                manager.epoch(e).graph(), 14, 0.2, seed * 211 + e));
        }
        SynchronizerOptions options;
        options.seed = 6000 + seed;
        const MultiEpochTrace trace = MultiEpochTrace::from_run(
            run_reconfigurable_protocol(manager, scripts, options));
        ASSERT_EQ(trace.num_epochs(), manager.num_epochs());

        std::size_t relations = 0;
        for (const std::size_t threads : {1u, 2u, 8u}) {
            AnalysisOptions analysis;
            analysis.threads = threads;
            EXPECT_EQ(trace.verify_against_ground_truth(analysis), 0u)
                << "seed " << seed << " threads " << threads;
            const std::size_t count =
                trace.ground_truth_poset(analysis).relation_count();
            if (threads == 1) {
                relations = count;
            } else {
                EXPECT_EQ(count, relations) << "threads " << threads;
            }
        }

        // The repeated-query index answers exactly like the trace, with
        // cross-epoch pairs short-circuited by the barrier rule.
        const MultiEpochPrecedenceIndex index(trace);
        const std::size_t n = trace.num_messages();
        bool saw_cross_epoch = false;
        for (GlobalMessageId a = 0; a < n; ++a) {
            for (GlobalMessageId b = 0; b < n; b += 3) {
                EXPECT_EQ(index.precedes(a, b), trace.precedes(a, b));
                if (trace.epoch_of(a) != trace.epoch_of(b)) {
                    saw_cross_epoch = true;
                    // Barrier rule: earlier epoch always precedes, and
                    // cross-epoch concurrency is impossible.
                    EXPECT_EQ(trace.precedes(a, b),
                              trace.epoch_of(a) < trace.epoch_of(b));
                    EXPECT_FALSE(trace.concurrent(a, b));
                }
                EXPECT_EQ(trace.global_of(trace.epoch_of(b),
                                          trace.local_of(b)),
                          b);
            }
        }
        if (trace.num_epochs() > 1 && saw_cross_epoch) {
            EXPECT_GT(index.cross_epoch_queries(), 0u);
        }
    }
}

TEST(Topology, VersionOneFramesInteroperateAsEpochZero) {
    const std::vector<std::uint64_t> stamp = {3, 0, 7, 1};

    std::vector<std::uint8_t> v1;
    encode_frame_into(5, 2, stamp, v1);
    std::vector<std::uint8_t> epoch0;
    encode_epoch_frame_into(0, 5, 2, stamp, epoch0);
    // Back-compat rule (docs/FORMATS.md): epoch 0 is spelled in the v1
    // layout, byte for byte.
    EXPECT_EQ(v1, epoch0);

    // A pre-epoch frame decodes through the epoch-aware reader as epoch 0.
    std::vector<std::uint64_t> decoded(stamp.size(), 0);
    const FrameHeader h1 = decode_epoch_frame_into(v1, decoded);
    EXPECT_EQ(h1.sequence, 5u);
    EXPECT_EQ(h1.message, 2u);
    EXPECT_EQ(h1.epoch, 0u);
    EXPECT_EQ(decoded, stamp);

    // And the header-only peek classifies it without knowing the width.
    const FrameHeader p1 = peek_epoch_frame_header(v1);
    EXPECT_EQ(p1.epoch, 0u);
    EXPECT_EQ(p1.sequence, 5u);

    // Epoch ≥ 1 takes the v2 escape; the epoch-aware readers round-trip
    // it and the peek still works against a foreign width.
    std::vector<std::uint8_t> v2;
    encode_epoch_frame_into(9, 5, 2, stamp, v2);
    EXPECT_NE(v2, v1);
    EXPECT_EQ(v2.front(), kEpochFrameMarker);
    std::fill(decoded.begin(), decoded.end(), 0);
    const FrameHeader h2 = decode_epoch_frame_into(v2, decoded);
    EXPECT_EQ(h2.epoch, 9u);
    EXPECT_EQ(decoded, stamp);
    EXPECT_EQ(peek_epoch_frame_header(v2).epoch, 9u);

    // Runtime interop: a single-epoch manager run (all traffic epoch 0,
    // v1 bytes on the wire) produces the same stamps as the pre-epoch
    // single-topology entry point.
    const Graph g = topology::client_server(2, 3);
    const SyncComputation script = testing::random_workload(g, 20, 0.2, 7);
    TopologyManager manager{Graph(g)};
    SynchronizerOptions options;
    options.seed = 77;
    const SynchronizerResult flat = run_rendezvous_protocol(
        manager.decomposition(0), script, options);
    const ReconfigurableRunResult epoched = run_reconfigurable_protocol(
        manager, std::span<const SyncComputation>(&script, 1), options);
    ASSERT_EQ(epoched.segments.size(), 1u);
    ASSERT_EQ(epoched.segments[0].message_stamps.size(),
              flat.message_stamps.size());
    for (std::size_t i = 0; i < flat.message_stamps.size(); ++i) {
        EXPECT_EQ(epoched.segments[0].message_stamps[i],
                  flat.message_stamps[i]);
        EXPECT_EQ(epoched.segments[0].script_message[i],
                  flat.script_message[i]);
    }
}

TEST(Topology, ScheduleGrammarParsesAppliesAndRejects) {
    const Graph star = topology::star(4);  // channels 0-1, 0-2, 0-3

    const std::vector<ReconfigOp> ops =
        parse_reconfig_schedule("addc:1:2,delc:0:3,addp:1,addp", star);
    ASSERT_EQ(ops.size(), 4u);
    EXPECT_EQ(ops[0].kind, ReconfigOp::Kind::add_channel);
    EXPECT_EQ(ops[1].kind, ReconfigOp::Kind::remove_channel);
    EXPECT_EQ(ops[2].kind, ReconfigOp::Kind::add_process);
    EXPECT_EQ(ops[2].a, 1u);
    EXPECT_EQ(ops[3].kind, ReconfigOp::Kind::add_process);
    EXPECT_EQ(ops[3].a, kNoProcess);

    TopologyManager manager{Graph(star)};
    for (const ReconfigOp& op : ops) apply(manager, op);
    EXPECT_EQ(manager.num_epochs(), 5u);
    EXPECT_TRUE(manager.current().graph().has_edge(1, 2));
    EXPECT_FALSE(manager.current().graph().has_edge(0, 3));
    EXPECT_EQ(manager.current().num_processes(), 6u);

    // rand: tokens expand deterministically, to the same ops the direct
    // generator produces, and only ever to feasible ones.
    const std::vector<ReconfigOp> expanded =
        parse_reconfig_schedule("rand:5:99", star);
    const std::vector<ReconfigOp> direct =
        random_reconfig_schedule(star, 5, 99);
    ASSERT_EQ(expanded.size(), direct.size());
    for (std::size_t i = 0; i < expanded.size(); ++i) {
        EXPECT_EQ(expanded[i].kind, direct[i].kind);
        EXPECT_EQ(expanded[i].a, direct[i].a);
        EXPECT_EQ(expanded[i].b, direct[i].b);
    }
    TopologyManager replay{Graph(star)};
    for (const ReconfigOp& op : expanded) {
        apply(replay, op);
        EXPECT_GE(replay.current().graph().num_edges(), 1u);
    }

    EXPECT_THROW(parse_reconfig_schedule("bogus", star),
                 std::invalid_argument);
    EXPECT_THROW(parse_reconfig_schedule("addc:0", star),
                 std::invalid_argument);
    EXPECT_THROW(parse_reconfig_schedule("addc:0:9", star),
                 std::invalid_argument);
    EXPECT_THROW(parse_reconfig_schedule("addc:0:1", star),
                 std::invalid_argument);  // already open
    EXPECT_THROW(parse_reconfig_schedule("delc:1:2", star),
                 std::invalid_argument);  // not open
}

}  // namespace
}  // namespace syncts
