// The parallel analysis engine's two promises, tested head-on:
//   1. Pool runs every index exactly once, propagates exceptions, and
//      hands map_chunks results back in chunk order.
//   2. Every sharded analysis (Poset::close, offline_timestamps with
//      dimension minimization, ground-truth verification, the
//      PrecedenceIndex memo) is bit-identical to its serial path — over
//      500 seeded workloads, at 1, 2 and 8 threads.
// The equivalence sweeps share two long-lived pools so 500 seeds don't
// spawn 1000 thread teams.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <stdexcept>
#include <utility>
#include <vector>

#include "clocks/offline_timestamper.hpp"
#include "common/pool.hpp"
#include "common/rng.hpp"
#include "core/causality.hpp"
#include "core/precedence_index.hpp"
#include "core/sync_system.hpp"
#include "graph/generators.hpp"
#include "obs/metrics.hpp"
#include "poset/poset.hpp"
#include "trace/generator.hpp"
#include "trace/ground_truth.hpp"

namespace syncts {
namespace {

// ---------------------------------------------------------------- Pool --

TEST(Pool, CoversEveryIndexExactlyOnce) {
    Pool pool(4);
    for (const std::size_t n : {0u, 1u, 7u, 64u, 1000u}) {
        for (const std::size_t grain : {0u, 1u, 3u, 64u, 5000u}) {
            // Chunks cover disjoint ranges, so plain bytes need no atomics.
            std::vector<std::uint8_t> hits(n, 0);
            pool.parallel_for(n, grain,
                              [&](std::size_t begin, std::size_t end) {
                                  for (std::size_t i = begin; i < end; ++i) {
                                      ++hits[i];
                                  }
                              });
            for (std::size_t i = 0; i < n; ++i) {
                ASSERT_EQ(hits[i], 1u) << "n=" << n << " grain=" << grain
                                       << " index " << i;
            }
        }
    }
}

TEST(Pool, CallerOnlyPoolStillRuns) {
    Pool pool(1);
    EXPECT_EQ(pool.threads(), 1u);
    std::size_t sum = 0;
    pool.parallel_for(100, 7, [&](std::size_t begin, std::size_t end) {
        for (std::size_t i = begin; i < end; ++i) sum += i;
    });
    EXPECT_EQ(sum, 99u * 100u / 2u);
}

TEST(Pool, MapChunksReturnsChunkOrder) {
    Pool pool(3);
    const std::size_t n = 1000;
    const std::size_t grain = 13;
    const std::vector<std::size_t> firsts =
        pool.map_chunks<std::size_t>(
            n, grain, [](std::size_t begin, std::size_t) { return begin; });
    ASSERT_EQ(firsts.size(), Pool::num_chunks(n, grain));
    for (std::size_t chunk = 0; chunk < firsts.size(); ++chunk) {
        EXPECT_EQ(firsts[chunk], chunk * grain);
    }
}

TEST(Pool, ChunkIndicesAreDense) {
    Pool pool(4);
    const std::size_t n = 512;
    const std::size_t grain = 9;
    const std::size_t chunks = Pool::num_chunks(n, grain);
    std::vector<std::uint8_t> seen(chunks, 0);
    pool.parallel_for_chunks(
        n, grain, [&](std::size_t chunk, std::size_t begin, std::size_t end) {
            ASSERT_LT(chunk, chunks);
            EXPECT_EQ(begin, chunk * grain);
            EXPECT_EQ(end, std::min(n, begin + grain));
            ++seen[chunk];
        });
    for (std::size_t chunk = 0; chunk < chunks; ++chunk) {
        EXPECT_EQ(seen[chunk], 1u);
    }
}

TEST(Pool, ExceptionPropagatesToCaller) {
    Pool pool(4);
    const auto boom = [](std::size_t begin, std::size_t end) {
        if (begin <= 37 && 37 < end) throw std::runtime_error("chunk 37");
    };
    EXPECT_THROW(pool.parallel_for(100, 5, boom), std::runtime_error);
    // The pool must stay usable after a throwing job.
    std::size_t covered = 0;
    pool.parallel_for(64, 8, [&](std::size_t begin, std::size_t end) {
        covered += end - begin;
    });
    EXPECT_EQ(covered, 64u);
}

TEST(Pool, ResolveThreads) {
    EXPECT_EQ(Pool::resolve_threads(5), 5u);
    EXPECT_GE(Pool::resolve_threads(0), 1u);
}

TEST(Pool, TasksCounterCountsChunks) {
    obs::MetricsRegistry registry;
    Pool pool(2);
    pool.attach_metrics(registry);
    pool.parallel_for(100, 10,
                      [](std::size_t, std::size_t) { /* no-op */ });
    EXPECT_EQ(registry.counter("analysis_tasks").value(), 10u);
    pool.detach_metrics();
    pool.parallel_for(100, 10,
                      [](std::size_t, std::size_t) { /* no-op */ });
    EXPECT_EQ(registry.counter("analysis_tasks").value(), 10u);
}

// ------------------------------------------- serial/parallel equivalence --

/// The equivalence sweeps reuse these pools; AnalysisOptions::pool wins
/// over AnalysisOptions::threads, so each options value below really runs
/// at the named width.
struct SweepPools {
    Pool two{2};
    Pool eight{8};

    std::vector<AnalysisOptions> parallel_options() {
        AnalysisOptions at_two;
        at_two.pool = &two;
        AnalysisOptions at_eight;
        at_eight.pool = &eight;
        return {at_two, at_eight};
    }
};

Graph sweep_topology(std::uint64_t seed, Rng& rng) {
    switch (seed % 5) {
        case 0: return topology::complete(6);
        case 1: return topology::ring(9);
        case 2: return topology::star(8);
        case 3: return topology::disjoint_triangles(3);
        default: return topology::random_tree(10, rng);
    }
}

SyncComputation sweep_computation(std::uint64_t seed) {
    Rng rng(seed * 0x9E3779B97F4A7C15ull + 1);
    const Graph g = sweep_topology(seed, rng);
    WorkloadOptions options;
    options.num_messages = 20 + seed % 60;
    return random_computation(g, options, rng);
}

void expect_same_poset(const Poset& serial, const Poset& parallel,
                       std::uint64_t seed) {
    ASSERT_EQ(serial.size(), parallel.size()) << "seed " << seed;
    ASSERT_EQ(serial.relation_count(), parallel.relation_count())
        << "seed " << seed;
    for (std::size_t v = 0; v < serial.size(); ++v) {
        ASSERT_EQ(serial.down_set(v), parallel.down_set(v))
            << "seed " << seed << " down set of " << v;
        ASSERT_EQ(serial.up_set(v), parallel.up_set(v))
            << "seed " << seed << " up set of " << v;
    }
}

TEST(ParallelEquivalence, ClosureBitIdenticalOver500Seeds) {
    SweepPools pools;
    for (std::uint64_t seed = 0; seed < 500; ++seed) {
        const SyncComputation c = sweep_computation(seed);
        const Poset serial = message_poset(c);
        for (AnalysisOptions options : pools.parallel_options()) {
            const Poset parallel = message_poset(c, options);
            expect_same_poset(serial, parallel, seed);
        }
    }
}

TEST(ParallelEquivalence, ClosureWordOpsMatchSerialCount) {
    SweepPools pools;
    for (std::uint64_t seed = 0; seed < 50; ++seed) {
        const SyncComputation c = sweep_computation(seed);
        obs::MetricsRegistry serial_registry;
        AnalysisOptions serial;
        serial.metrics = &serial_registry;
        (void)message_poset(c, serial);
        for (AnalysisOptions options : pools.parallel_options()) {
            obs::MetricsRegistry registry;
            options.metrics = &registry;
            (void)message_poset(c, options);
            // The word-OR total is a property of the poset, not of the
            // schedule: same value at every thread count.
            EXPECT_EQ(registry.counter("closure_word_ops").value(),
                      serial_registry.counter("closure_word_ops").value())
                << "seed " << seed;
        }
    }
}

TEST(ParallelEquivalence, OfflineTimestampsBitIdentical) {
    SweepPools pools;
    for (std::uint64_t seed = 0; seed < 500; seed += 5) {
        const SyncComputation c = sweep_computation(seed);
        // Minimization exercises the sharded realizer-validation sweep.
        const bool minimize = seed % 2 == 0;
        const OfflineResult serial = offline_timestamps(c, minimize);
        for (AnalysisOptions options : pools.parallel_options()) {
            const OfflineResult parallel =
                offline_timestamps(c, minimize, options);
            ASSERT_EQ(serial.width, parallel.width) << "seed " << seed;
            ASSERT_EQ(serial.timestamps.size(), parallel.timestamps.size());
            for (std::size_t m = 0; m < serial.timestamps.size(); ++m) {
                ASSERT_EQ(serial.timestamps[m], parallel.timestamps[m])
                    << "seed " << seed << " message " << m;
            }
        }
    }
}

TEST(ParallelEquivalence, GroundTruthVerificationIdentical) {
    SweepPools pools;
    for (std::uint64_t seed = 1; seed < 100; seed += 7) {
        Rng rng(seed);
        const Graph g = sweep_topology(seed, rng);
        WorkloadOptions workload;
        workload.num_messages = 80;
        const SyncComputation c = random_computation(g, workload, rng);
        const SyncSystem system{Graph(g)};
        const TimestampedTrace trace = system.analyze(c);
        const std::size_t serial = trace.verify_against_ground_truth();
        EXPECT_EQ(serial, 0u) << "seed " << seed;
        for (const AnalysisOptions& options : pools.parallel_options()) {
            EXPECT_EQ(trace.verify_against_ground_truth(options), serial)
                << "seed " << seed;
        }
    }
}

TEST(ParallelEquivalence, MismatchPairsKeepSerialOrder) {
    SweepPools pools;
    // A three-element antichain stamped as a chain: every ordered pair
    // (a < b numerically) disagrees with the poset, so the expected list
    // is exactly the serial sweep's visit order.
    Poset poset(3);
    poset.close();
    TimestampArena stamps(1);
    stamps.allocate(std::vector<std::uint64_t>{1});
    stamps.allocate(std::vector<std::uint64_t>{2});
    stamps.allocate(std::vector<std::uint64_t>{3});
    const std::vector<std::pair<std::size_t, std::size_t>> expected = {
        {0, 1}, {0, 2}, {1, 2}};
    EXPECT_EQ(encoding_mismatch_pairs(poset, stamps), expected);
    for (const AnalysisOptions& options : pools.parallel_options()) {
        EXPECT_EQ(encoding_mismatch_pairs(poset, stamps, options), expected);
    }
    EXPECT_EQ(encoding_mismatches(poset, stamps), expected.size());
}

TEST(ParallelEquivalence, ShardedBatchKernelsMatchSerial) {
    SweepPools pools;
    Rng rng(77);
    WorkloadOptions workload;
    workload.num_messages = 300;
    const SyncComputation c =
        random_computation(topology::complete(8), workload, rng);
    const SyncSystem system{topology::complete(8)};
    const TimestampedTrace trace = system.analyze(c);
    const TimestampArena& arena = trace.stamps();
    std::vector<std::uint8_t> serial_flags(arena.size());
    std::vector<std::uint8_t> parallel_flags(arena.size());
    for (MessageId probe = 0; probe < 20; ++probe) {
        relate_many(arena, arena.span(probe), serial_flags);
        leq_many(arena, arena.span(probe), parallel_flags);
        for (const AnalysisOptions& options : pools.parallel_options()) {
            std::vector<std::uint8_t> sharded(arena.size());
            relate_many(arena, arena.span(probe), sharded, options);
            EXPECT_EQ(sharded, serial_flags) << "probe " << probe;
            leq_many(arena, arena.span(probe), sharded, options);
            EXPECT_EQ(sharded, parallel_flags) << "probe " << probe;
        }
    }
}

// ------------------------------------------------------ PrecedenceIndex --

TEST(PrecedenceIndexTest, AgreesWithDirectCompare) {
    for (std::uint64_t seed = 3; seed < 250; seed += 5) {
        const SyncComputation c = sweep_computation(seed);
        const SyncSystem system{Graph(c.topology())};
        const TimestampedTrace trace = system.analyze(c);
        const PrecedenceIndex index = system.make_precedence_index(trace);
        Rng rng(seed ^ 0xD1CEu);
        const std::size_t n = trace.num_messages();
        for (int q = 0; q < 60; ++q) {
            const auto m1 = static_cast<MessageId>(rng.below(n));
            const auto m2 = static_cast<MessageId>(rng.below(n));
            ASSERT_EQ(index.precedes(m1, m2), trace.precedes(m1, m2))
                << "seed " << seed << " pair (" << m1 << "," << m2 << ")";
            ASSERT_EQ(index.concurrent(m1, m2), trace.concurrent(m1, m2))
                << "seed " << seed << " pair (" << m1 << "," << m2 << ")";
        }
    }
}

TEST(PrecedenceIndexTest, MemoizesRepeatedPairs) {
    const SyncComputation c = sweep_computation(11);
    const SyncSystem system{Graph(c.topology())};
    const TimestampedTrace trace = system.analyze(c);
    PrecedenceIndex index(trace, 4);
    EXPECT_EQ(index.num_shards(), 4u);
    EXPECT_EQ(index.memo_entries(), 0u);
    const bool first = index.precedes(0, 1);
    EXPECT_EQ(index.memo_hits(), 0u);
    EXPECT_EQ(index.memo_misses(), 1u);
    EXPECT_EQ(index.memo_entries(), 1u);
    for (int i = 0; i < 9; ++i) EXPECT_EQ(index.precedes(0, 1), first);
    EXPECT_EQ(index.memo_hits(), 9u);
    EXPECT_EQ(index.memo_misses(), 1u);
    EXPECT_EQ(index.memo_entries(), 1u);
    // The reverse direction is its own key.
    (void)index.precedes(1, 0);
    EXPECT_EQ(index.memo_misses(), 2u);
    EXPECT_EQ(index.memo_entries(), 2u);
}

TEST(PrecedenceIndexTest, MetricsMirrorMemoCounts) {
    const SyncComputation c = sweep_computation(12);
    const SyncSystem system{Graph(c.topology())};
    const TimestampedTrace trace = system.analyze(c);
    PrecedenceIndex index(trace);
    obs::MetricsRegistry registry;
    index.attach_metrics(registry);
    Rng rng(99);
    const std::size_t n = trace.num_messages();
    for (int q = 0; q < 200; ++q) {
        (void)index.precedes(static_cast<MessageId>(rng.below(n)),
                             static_cast<MessageId>(rng.below(n)));
    }
    EXPECT_EQ(registry.counter("query_memo_hits").value(),
              index.memo_hits());
    EXPECT_EQ(registry.counter("query_memo_misses").value(),
              index.memo_misses());
    EXPECT_EQ(index.memo_hits() + index.memo_misses(), 200u);
    EXPECT_GT(index.memo_hits(), 0u);
}

TEST(PrecedenceIndexTest, AnswersAreStableUnderConcurrentQueries) {
    // Hammer one index from the pool's workers: answers must stay equal
    // to the oracle, and hits + misses must equal the lookup count.
    const SyncComputation c = sweep_computation(21);
    const SyncSystem system{Graph(c.topology())};
    const TimestampedTrace trace = system.analyze(c);
    const PrecedenceIndex index = system.make_precedence_index(trace);
    const std::size_t n = trace.num_messages();
    Pool pool(8);
    std::atomic<std::size_t> disagreements{0};
    pool.parallel_for(4000, 100, [&](std::size_t begin, std::size_t end) {
        for (std::size_t q = begin; q < end; ++q) {
            const auto m1 = static_cast<MessageId>(q % n);
            const auto m2 = static_cast<MessageId>((q * 7 + 3) % n);
            if (index.precedes(m1, m2) != trace.precedes(m1, m2)) {
                disagreements.fetch_add(1, std::memory_order_relaxed);
            }
        }
    });
    EXPECT_EQ(disagreements.load(), 0u);
    EXPECT_EQ(index.memo_hits() + index.memo_misses(), 4000u);
}

TEST(PrecedenceIndexTest, SystemFactoryChecksWidth) {
    const SyncComputation c = sweep_computation(2);
    const SyncSystem system{Graph(c.topology())};
    const TimestampedTrace trace = system.analyze(c);
    EXPECT_NO_THROW((void)system.make_precedence_index(trace));
    const SyncSystem other{topology::complete(12)};
    EXPECT_THROW((void)other.make_precedence_index(trace),
                 std::invalid_argument);
}

}  // namespace
}  // namespace syncts
