#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "decomp/cover_decomposer.hpp"
#include "graph/generators.hpp"
#include "obs/causal_profiler.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/metrics.hpp"
#include "obs/trace_sink.hpp"
#include "poset/poset.hpp"
#include "runtime/network.hpp"
#include "runtime/synchronizer.hpp"
#include "test_util.hpp"
#include "trace/generator.hpp"
#include "trace/ground_truth.hpp"

/// The causal profiler and the flight recorder: the streaming PERT
/// critical path against an O(M²) transitive-closure oracle across 500
/// seeded schedules, byte-stable profile JSON under the same seed, SYFR
/// round-trips, the crash-dump-equals-crash-free-prefix determinism
/// property, frontier truncation, and the threaded runtime's trace feed.

namespace syncts {
namespace {

/// Longest chain ending at each element of the closed message poset,
/// O(M²) by definition: depth(j) = 1 + max over all i < j in the order.
/// The commit order (element order) is a linear extension, so one
/// forward pass suffices.
std::vector<std::uint64_t> closure_depths(const Poset& order) {
    std::vector<std::uint64_t> depth(order.size(), 1);
    for (std::size_t j = 0; j < order.size(); ++j) {
        for (std::size_t i = 0; i < j; ++i) {
            if (order.less(i, j)) {
                depth[j] = std::max(depth[j], depth[i] + 1);
            }
        }
    }
    return depth;
}

Graph oracle_topology(std::uint64_t seed) {
    switch (seed % 5) {
        case 0: return topology::star(5);
        case 1: return topology::ring(5);
        case 2: return topology::complete(4);
        case 3: return topology::client_server(2, 4);
        default: return topology::path(6);
    }
}

// ---- Critical path vs. the closure oracle ----------------------------

TEST(CausalProfiler, CriticalPathMatchesClosureOracleOn500Schedules) {
    for (std::uint64_t seed = 1; seed <= 500; ++seed) {
        const Graph graph = oracle_topology(seed);
        const SyncComputation script =
            testing::random_workload(graph, 30, 0.0, 1000 + seed);
        auto decomposition = std::make_shared<const EdgeDecomposition>(
            default_decomposition(graph));
        obs::TraceSink sink(1 << 12);
        SynchronizerOptions options;
        options.seed = seed;
        options.latency_lo = 1;
        options.latency_hi = 1 + seed % 9;
        options.trace = &sink;
        const SynchronizerResult result =
            run_rendezvous_protocol(decomposition, script, options);

        const obs::Profile profile =
            obs::build_profile(sink.events(), graph.num_vertices());
        ASSERT_EQ(profile.rendezvous.size(), script.num_messages())
            << "seed " << seed;

        // The realized computation is renumbered to commit order, the
        // same order the profiler lists its rendezvous in, so element j
        // of the oracle poset is profile.rendezvous[j].
        Poset order = message_poset(result.computation);
        const std::vector<std::uint64_t> oracle = closure_depths(order);
        std::uint64_t longest = 0;
        for (std::size_t j = 0; j < oracle.size(); ++j) {
            EXPECT_EQ(profile.rendezvous[j].depth, oracle[j])
                << "seed " << seed << " rendezvous " << j;
            longest = std::max(longest, oracle[j]);
        }
        EXPECT_EQ(profile.critical_length, longest) << "seed " << seed;
        EXPECT_EQ(profile.critical_path.size(), longest) << "seed " << seed;

        // The reported path must itself be a chain of that length.
        for (std::size_t k = 1; k < profile.critical_path.size(); ++k) {
            EXPECT_TRUE(order.less(profile.critical_path[k - 1],
                                   profile.critical_path[k]))
                << "seed " << seed << " link " << k;
        }
    }
}

// ---- Determinism ------------------------------------------------------

TEST(CausalProfiler, SameSeedProfileJsonIsByteIdentical) {
    const Graph graph = topology::client_server(2, 5);
    const SyncComputation script =
        testing::random_workload(graph, 80, 0.0, 42);
    auto decomposition = std::make_shared<const EdgeDecomposition>(
        default_decomposition(graph));
    const auto profile_json = [&] {
        obs::TraceSink sink(1 << 12);
        SynchronizerOptions options;
        options.seed = 7;
        options.latency_lo = 1;
        options.latency_hi = 6;
        options.trace = &sink;
        (void)run_rendezvous_protocol(decomposition, script, options);
        return obs::to_profile_json(
            obs::build_profile(sink.events(), graph.num_vertices()));
    };
    const std::string first = profile_json();
    const std::string second = profile_json();
    EXPECT_EQ(first, second);
    // Sorted-key shape and no wall-clock fields of its own.
    EXPECT_LT(first.find("\"channels\""), first.find("\"critical_path\""));
    EXPECT_LT(first.find("\"critical_path\""), first.find("\"processes\""));
    EXPECT_EQ(first.find("wall"), std::string::npos);
}

TEST(CausalProfiler, BreakdownPartitionsEachProcessTimeline) {
    const Graph graph = topology::star(6);
    const SyncComputation script =
        testing::random_workload(graph, 120, 0.0, 9);
    auto decomposition = std::make_shared<const EdgeDecomposition>(
        default_decomposition(graph));
    obs::TraceSink sink(1 << 12);
    SynchronizerOptions options;
    options.latency_lo = 1;
    options.latency_hi = 9;
    options.trace = &sink;
    (void)run_rendezvous_protocol(decomposition, script, options);
    const obs::Profile profile =
        obs::build_profile(sink.events(), graph.num_vertices());
    ASSERT_EQ(profile.processes.size(), graph.num_vertices());
    for (const obs::ProcessBreakdown& p : profile.processes) {
        EXPECT_EQ(p.total,
                  p.working + p.blocked + p.down + p.barrier_stall);
        EXPECT_LE(p.total, profile.span);
    }
    // The hub of a star participates in every rendezvous; some blocked
    // time must have been attributed to its channels.
    std::uint64_t channel_wait = 0;
    std::uint64_t channel_rendezvous = 0;
    for (const obs::ChannelWait& c : profile.channels) {
        EXPECT_LT(c.a, c.b);
        channel_wait += c.wait;
        channel_rendezvous += c.rendezvous;
    }
    EXPECT_EQ(channel_rendezvous, script.num_messages());
    EXPECT_GT(channel_wait, 0u);
}

// ---- Flight recorder ---------------------------------------------------

obs::Postmortem sample_postmortem() {
    obs::Postmortem post;
    post.reason = obs::PostmortemReason::crash;
    post.process = 3;
    post.step = 17;
    post.epoch = 2;
    post.frontier_epoch = 1;
    post.wal_lsn = 99;
    post.virtual_time = 12345;
    post.snapshots = 4;
    post.metrics.counters["sync_commits"] = 40;
    post.metrics.gauges["arena_bytes"] = -8;
    post.rates.counters["sync_commits"] = 5;
    post.rates.gauges["arena_bytes"] = -8;
    for (std::uint64_t i = 0; i < 7; ++i) {
        obs::TraceEvent event;
        event.virtual_time = 100 + i;
        event.logical = i;
        event.arg_a = i;
        event.arg_b = i * 3;
        event.process = static_cast<std::uint32_t>(i % 4);
        event.peer = static_cast<std::uint32_t>((i + 1) % 4);
        event.kind = i == 6 ? obs::TraceEventKind::crash
                            : obs::TraceEventKind::commit;
        post.events.push_back(event);
    }
    return post;
}

TEST(FlightRecorder, SyfrRoundTripsExactly) {
    const obs::Postmortem post = sample_postmortem();
    std::vector<std::uint8_t> bytes;
    obs::encode_postmortem_into(post, bytes);
    EXPECT_EQ(obs::decode_postmortem(bytes), post);
}

TEST(FlightRecorder, SyfrRejectsBitFlipsTruncationAndTrailingBytes) {
    std::vector<std::uint8_t> bytes;
    obs::encode_postmortem_into(sample_postmortem(), bytes);
    for (const std::size_t at :
         {std::size_t{4}, bytes.size() / 2, bytes.size() - 1}) {
        std::vector<std::uint8_t> flipped = bytes;
        flipped[at] ^= 0x40;
        EXPECT_THROW((void)obs::decode_postmortem(flipped),
                     obs::PostmortemError)
            << "bit flip at " << at;
    }
    std::vector<std::uint8_t> truncated = bytes;
    truncated.pop_back();
    EXPECT_THROW((void)obs::decode_postmortem(truncated),
                 obs::PostmortemError);
    std::vector<std::uint8_t> padded = bytes;
    padded.push_back(0);
    EXPECT_THROW((void)obs::decode_postmortem(padded), obs::PostmortemError);
}

TEST(FlightRecorder, FrontierTruncationFollowsEpochEntry) {
    obs::FlightRecorder recorder(64, 8);
    const auto event = [](std::uint64_t time, obs::TraceEventKind kind,
                          std::uint64_t epoch_id) {
        obs::TraceEvent e;
        e.virtual_time = time;
        e.kind = kind;
        e.arg_a = epoch_id;
        return e;
    };
    for (std::uint64_t t = 0; t < 10; ++t) {
        recorder.record(event(t, obs::TraceEventKind::commit, 0));
    }
    recorder.record(event(10, obs::TraceEventKind::epoch, 1));
    for (std::uint64_t t = 11; t < 16; ++t) {
        recorder.record(event(t, obs::TraceEventKind::commit, 0));
    }
    ASSERT_EQ(recorder.retained(), 16u);

    // Frontier at epoch 1: everything before its entry instant (t=10)
    // can no longer matter to any surviving rewind.
    recorder.note_frontier(1);
    EXPECT_EQ(recorder.frontier(), 1u);
    EXPECT_EQ(recorder.truncated(), 10u);
    ASSERT_EQ(recorder.retained(), 6u);
    EXPECT_EQ(recorder.events().front().virtual_time, 10u);

    // A frontier the recorder never saw an entry for truncates nothing;
    // regressions are ignored.
    recorder.note_frontier(5);
    recorder.note_frontier(1);
    EXPECT_EQ(recorder.frontier(), 5u);
    EXPECT_EQ(recorder.retained(), 6u);
}

TEST(FlightRecorder, PeriodicSnapshotsCarryIntervalRates) {
    obs::MetricsRegistry registry;
    obs::FlightRecorder recorder(16, 4);
    registry.counter("steps").inc(3);
    registry.gauge("level").set(11);
    for (int i = 0; i < 4; ++i) recorder.tick(registry);
    EXPECT_EQ(recorder.snapshots(), 1u);
    EXPECT_EQ(recorder.last_snapshot().counters.at("steps"), 3u);
    // First interval counts from the empty snapshot.
    EXPECT_EQ(recorder.last_rates().counters.at("steps"), 3u);

    registry.counter("steps").inc(5);
    registry.gauge("level").set(-2);
    for (int i = 0; i < 4; ++i) recorder.tick(registry);
    EXPECT_EQ(recorder.snapshots(), 2u);
    EXPECT_EQ(recorder.last_rates().counters.at("steps"), 5u);
    EXPECT_EQ(recorder.last_rates().gauges.at("level"), -2);
}

// ---- Crash dump vs. crash-free prefix --------------------------------

TEST(FlightRecorder, CrashDumpEventsAreACrashFreeTracePrefixSlice) {
    const Graph graph = topology::client_server(2, 5);
    const SyncComputation script =
        testing::random_workload(graph, 150, 0.0, 77);
    auto decomposition = std::make_shared<const EdgeDecomposition>(
        default_decomposition(graph));
    SynchronizerOptions base;
    base.seed = 5;
    base.latency_lo = 1;
    base.latency_hi = 7;
    // Crash rules arm recovery and retransmission implicitly; pin both
    // explicitly so the crash-free control run schedules the identical
    // timer stream and the traces stay comparable event for event.
    base.retransmit_timeout = 64;
    base.recovery.enabled = true;
    base.recovery.wal_flush_interval = 2;
    base.recovery.snapshot_interval = 8;
    base.recovery.window = 8;

    obs::TraceSink control_sink(1 << 14);
    SynchronizerOptions control = base;
    control.trace = &control_sink;
    (void)run_rendezvous_protocol(decomposition, script, control);
    const std::vector<obs::TraceEvent> control_events =
        control_sink.events();

    obs::MetricsRegistry metrics;
    obs::FlightRecorder recorder(1 << 14, 16);
    SynchronizerOptions crashing = base;
    crashing.metrics = &metrics;
    crashing.recorder = &recorder;
    crashing.faults.crashes.push_back(CrashRule{1, 9, 60});
    (void)run_rendezvous_protocol(decomposition, script, crashing);

    const obs::Postmortem post =
        obs::decode_postmortem(recorder.last_dump());
    EXPECT_EQ(post.reason, obs::PostmortemReason::crash);
    EXPECT_EQ(post.process, 1u);
    EXPECT_EQ(post.step, 9u);
    ASSERT_FALSE(post.events.empty());

    // The dump's ring ends at the crash instant: the final event is the
    // crash itself (absent from the control run), and everything before
    // it must be bit-identical to a contiguous slice of the crash-free
    // trace prefix — the recorder is deterministic and the simulation
    // cannot diverge before the rule fires.
    EXPECT_EQ(post.events.back().kind, obs::TraceEventKind::crash);
    const std::vector<obs::TraceEvent> prefix(post.events.begin(),
                                              post.events.end() - 1);
    ASSERT_FALSE(prefix.empty());
    const auto found = std::search(control_events.begin(),
                                   control_events.end(), prefix.begin(),
                                   prefix.end());
    ASSERT_NE(found, control_events.end());
    EXPECT_EQ(found, control_events.begin());
    std::vector<std::uint8_t> dumped_bytes;
    std::vector<std::uint8_t> control_bytes;
    for (std::size_t i = 0; i < prefix.size(); ++i) {
        obs::encode_trace_event_into(prefix[i], dumped_bytes);
        obs::encode_trace_event_into(*(found + static_cast<long>(i)),
                                     control_bytes);
    }
    EXPECT_EQ(dumped_bytes, control_bytes);

    // The dump's WAL position is what recovery actually replayed from —
    // the runtime ENSUREs the replayed stream lands exactly there.
    EXPECT_GE(post.wal_lsn, 1u);
    EXPECT_EQ(metrics.counter("flight_dumps").value(), 1u);
}

TEST(FlightRecorder, StalledRunDumpsAnErrorPostmortem) {
    const Graph graph = topology::path(2);
    SyncComputation script(graph);
    for (int i = 0; i < 6; ++i) script.add_message(0, 1);
    auto decomposition = std::make_shared<const EdgeDecomposition>(
        default_decomposition(graph));
    obs::FlightRecorder recorder(256, 8);
    SynchronizerOptions options;
    options.trace = nullptr;
    options.recorder = &recorder;
    options.retransmit_timeout = 4;
    options.max_retransmits = 2;
    // Swallow every REQ on the only channel: the sender must exhaust its
    // retransmission budget and stall.
    options.faults.drop_probability = 1.0;
    EXPECT_THROW((void)run_rendezvous_protocol(decomposition, script,
                                               options),
                 SynchronizerStalled);
    ASSERT_EQ(recorder.dumps(), 1u);
    const obs::Postmortem post =
        obs::decode_postmortem(recorder.last_dump());
    EXPECT_EQ(post.reason, obs::PostmortemReason::error);
    EXPECT_EQ(post.process, 0u);
}

// ---- Trace-pressure metrics ------------------------------------------

TEST(TraceMetrics, RunPublishesDroppedAndPeakEventCounts) {
    const Graph graph = topology::star(4);
    const SyncComputation script =
        testing::random_workload(graph, 60, 0.0, 21);
    auto decomposition = std::make_shared<const EdgeDecomposition>(
        default_decomposition(graph));
    // A deliberately tiny ring: the run must wrap, and the wraparound
    // pressure must be visible in the registry as a per-run delta.
    obs::TraceSink sink(8);
    obs::MetricsRegistry metrics;
    SynchronizerOptions options;
    options.trace = &sink;
    options.metrics = &metrics;
    (void)run_rendezvous_protocol(decomposition, script, options);
    EXPECT_GT(metrics.counter("trace_dropped").value(), 0u);
    EXPECT_EQ(metrics.counter("trace_dropped").value(), sink.dropped());
    EXPECT_EQ(metrics.gauge("trace_peak_events").value(), 8);

    // Reusing the sink across runs publishes only the new run's losses.
    obs::MetricsRegistry second;
    SynchronizerOptions again = options;
    again.metrics = &second;
    const std::uint64_t dropped_before = sink.dropped();
    (void)run_rendezvous_protocol(decomposition, script, again);
    EXPECT_EQ(second.counter("trace_dropped").value(),
              sink.dropped() - dropped_before);
}

// ---- Threaded runtime feed -------------------------------------------

TEST(ThreadedRuntime, TraceFeedsTheSameProfiler) {
    const Graph graph = topology::star(4);
    const SyncComputation script =
        testing::random_workload(graph, 40, 0.0, 13);
    std::vector<ProcessProgram> programs(script.num_processes());
    for (ProcessId p = 0; p < script.num_processes(); ++p) {
        std::vector<SyncMessage> schedule;
        for (const MessageId id : script.process_messages(p)) {
            schedule.push_back(script.message(id));
        }
        programs[p] = [p, schedule](ProcessContext& context) {
            for (const SyncMessage& m : schedule) {
                if (m.sender == p) {
                    context.send(m.receiver, "x");
                } else {
                    context.receive_from(m.sender);
                }
            }
        };
    }
    obs::TraceSink sink(1 << 12);
    TimestampedNetworkOptions options;
    options.trace = &sink;
    TimestampedNetwork network(graph, options);
    (void)network.run(programs);

    // One send + one commit + one ack per rendezvous, and the profiler
    // reconstructs every rendezvous from the wall-timed stream.
    const std::vector<obs::TraceEvent> events = sink.events();
    EXPECT_EQ(events.size(), 3 * script.num_messages());
    const obs::Profile profile =
        obs::build_profile(events, graph.num_vertices());
    EXPECT_EQ(profile.rendezvous.size(), script.num_messages());
    EXPECT_GE(profile.critical_length, 1u);
    EXPECT_EQ(profile.critical_path.size(), profile.critical_length);
    for (const obs::RendezvousSpan& r : profile.rendezvous) {
        EXPECT_GE(r.depth, 1u);
        EXPECT_LE(r.send_time, r.commit_time);
    }
}

}  // namespace
}  // namespace syncts
