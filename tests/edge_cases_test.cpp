#include <gtest/gtest.h>

#include "clocks/offline_timestamper.hpp"
#include "clocks/online_clock.hpp"
#include "core/sync_system.hpp"
#include "core/timestamped_trace.hpp"
#include "decomp/decomp_io.hpp"
#include "graph/generators.hpp"
#include "trace/diagram.hpp"
#include "trace/trace_io.hpp"

/// Degenerate inputs that production code meets in practice: empty
/// systems, empty computations, single processes, isolated vertices.

namespace syncts {
namespace {

TEST(EdgeCases, EmptyComputationRoundTrips) {
    SyncComputation empty(topology::path(3));
    const SyncComputation parsed =
        parse_computation(serialize_computation(empty));
    EXPECT_EQ(parsed.num_messages(), 0u);
    EXPECT_EQ(parsed.num_processes(), 3u);
    EXPECT_EQ(parsed.topology().num_edges(), 2u);
}

TEST(EdgeCases, EdgelessDecompositionRoundTrips) {
    const EdgeDecomposition empty{Graph(4)};
    const EdgeDecomposition parsed =
        parse_decomposition(serialize_decomposition(empty));
    EXPECT_EQ(parsed.size(), 0u);
    EXPECT_TRUE(parsed.complete());
}

TEST(EdgeCases, AnalyzeEmptyComputation) {
    const SyncSystem system(topology::client_server(2, 2));
    SyncComputation empty(system.topology());
    const TimestampedTrace trace = system.analyze(empty);
    EXPECT_EQ(trace.num_messages(), 0u);
    EXPECT_EQ(trace.concurrent_pair_count(), 0u);
    EXPECT_EQ(trace.verify_against_ground_truth(), 0u);
    EXPECT_TRUE(trace.minimal_messages().empty());
}

TEST(EdgeCases, DiagramOfEmptyComputation) {
    SyncComputation empty(topology::path(2));
    const std::string diagram = to_diagram(empty);
    EXPECT_EQ(diagram, "P1 | \nP2 | \n");
}

TEST(EdgeCases, IsolatedVerticesNeverBlockDecomposition) {
    Graph g(6);
    g.add_edge(0, 1);  // vertices 2..5 isolated
    const SyncSystem system{std::move(g)};
    EXPECT_EQ(system.width(), 1u);
    SyncComputation c(system.topology());
    c.add_message(0, 1);
    EXPECT_EQ(system.analyze(c).verify_against_ground_truth(), 0u);
}

TEST(EdgeCases, SingleProcessSystem) {
    const SyncSystem system{Graph(1)};
    EXPECT_EQ(system.width(), 0u);
    SyncComputation c(system.topology());
    c.add_internal(0);
    // No messages possible; analysis still works.
    EXPECT_EQ(system.analyze(c).num_messages(), 0u);
}

TEST(EdgeCases, OfflineOnSingletonMessage) {
    SyncComputation c(topology::path(2));
    c.add_message(0, 1);
    const OfflineResult offline = offline_timestamps(c);
    EXPECT_EQ(offline.width, 1u);
    EXPECT_EQ(offline.timestamps.size(), 1u);
}

TEST(EdgeCases, ZeroWidthTimestampsCompare) {
    const VectorTimestamp a(0);
    const VectorTimestamp b(0);
    EXPECT_EQ(a, b);
    EXPECT_TRUE(a.leq(b));
    EXPECT_FALSE(a.less(b));
    EXPECT_FALSE(a.concurrent_with(b));
}

TEST(EdgeCases, SelfCycleTopologiesRejectedEverywhere) {
    Graph g(3);
    EXPECT_THROW(g.add_edge(1, 1), std::invalid_argument);
    SyncComputation c(topology::path(3));
    EXPECT_THROW(c.add_message(1, 1), std::invalid_argument);
}

}  // namespace
}  // namespace syncts
