#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/causality.hpp"
#include "decomp/cover_decomposer.hpp"
#include "runtime/network.hpp"
#include "test_util.hpp"
#include "trace/ground_truth.hpp"

namespace syncts {
namespace {

TEST(Mailbox, RendezvousRoundTrip) {
    Mailbox box;
    VectorTimestamp piggyback(std::vector<std::uint64_t>{1, 2});
    std::thread receiver([&] {
        Mailbox::Accepted accepted = box.accept(std::nullopt);
        EXPECT_EQ(accepted.sender(), 3u);
        EXPECT_EQ(accepted.payload(), "hello");
        EXPECT_EQ(accepted.piggyback()[1], 2u);
        accepted.complete(VectorTimestamp(std::vector<std::uint64_t>{5, 5}),
                          17);
    });
    const auto [ack, seq] = box.offer_and_wait(3, "hello", piggyback);
    receiver.join();
    EXPECT_EQ(ack[0], 5u);
    EXPECT_EQ(seq, 17u);
}

TEST(Mailbox, AcceptFromSpecificSenderSkipsOthers) {
    Mailbox box;
    std::atomic<int> acked{0};
    std::thread sender_a([&] {
        box.offer_and_wait(1, "from1", VectorTimestamp(1));
        ++acked;
    });
    // Ensure sender 1's offer is queued first.
    while (!box.has_offer(1)) std::this_thread::yield();
    std::thread sender_b([&] {
        box.offer_and_wait(2, "from2", VectorTimestamp(1));
        ++acked;
    });
    while (!box.has_offer(2)) std::this_thread::yield();

    Mailbox::Accepted from2 = box.accept(2);
    EXPECT_EQ(from2.sender(), 2u);
    from2.complete(VectorTimestamp(1), 1);
    Mailbox::Accepted from1 = box.accept(std::nullopt);
    EXPECT_EQ(from1.sender(), 1u);
    from1.complete(VectorTimestamp(1), 2);
    sender_a.join();
    sender_b.join();
    EXPECT_EQ(acked.load(), 2);
}

TEST(Mailbox, CloseUnblocksEveryone) {
    // Separate mailboxes: were they shared, the receiver would simply
    // accept the sender's offer instead of staying blocked.
    Mailbox no_senders;
    Mailbox no_receivers;
    std::thread blocked_receiver([&] {
        EXPECT_THROW(no_senders.accept(std::nullopt), MailboxClosed);
    });
    std::thread blocked_sender([&] {
        EXPECT_THROW(no_receivers.offer_and_wait(0, "x", VectorTimestamp(1)),
                     MailboxClosed);
    });
    // Give both a moment to block, then close.
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    no_senders.close();
    no_receivers.close();
    blocked_receiver.join();
    blocked_sender.join();
    EXPECT_THROW(no_receivers.offer_and_wait(0, "y", VectorTimestamp(1)),
                 MailboxClosed);
}

TEST(Mailbox, DroppedAcceptReleasesSenderWithError) {
    // RAII guarantee: a receiver that unwinds between accept() and
    // complete() must not strand the sender.
    Mailbox box;
    std::thread sender([&] {
        EXPECT_THROW(box.offer_and_wait(1, "x", VectorTimestamp(1)),
                     MailboxClosed);
    });
    {
        Mailbox::Accepted accepted = box.accept(std::nullopt);
        EXPECT_EQ(accepted.sender(), 1u);
        // Dropped without complete().
    }
    sender.join();
}

TEST(Mailbox, MovedAcceptedCompletesOnce) {
    Mailbox box;
    std::thread sender([&] {
        const auto [ack, seq] =
            box.offer_and_wait(2, "y", VectorTimestamp(1));
        EXPECT_EQ(seq, 5u);
    });
    Mailbox::Accepted accepted = box.accept(std::nullopt);
    Mailbox::Accepted moved = std::move(accepted);
    moved.complete(VectorTimestamp(1), 5);
    EXPECT_THROW(moved.complete(VectorTimestamp(1), 6),
                 std::invalid_argument);
    sender.join();
}

// ---------------------------------------------------------------------

/// Drives a recorded computation through the threaded network: each
/// process replays its local schedule (send / receive-from pairs).
std::vector<ProcessProgram> programs_for(const SyncComputation& computation) {
    std::vector<ProcessProgram> programs(computation.num_processes());
    for (ProcessId p = 0; p < computation.num_processes(); ++p) {
        std::vector<SyncMessage> schedule;
        for (const MessageId id : computation.process_messages(p)) {
            schedule.push_back(computation.message(id));
        }
        programs[p] = [p, schedule](ProcessContext& context) {
            for (const SyncMessage& m : schedule) {
                if (m.sender == p) {
                    context.send(m.receiver, "m" + std::to_string(m.id));
                } else {
                    context.receive_from(m.sender);
                }
            }
        };
    }
    return programs;
}

TEST(TimestampedNetwork, ScriptedRunMatchesSimulator) {
    // The threaded run must produce exactly the simulator's timestamps:
    // clock evolution depends only on the per-process rendezvous sequence,
    // not on real-time interleaving.
    for (const auto& [name, graph] : testing::topology_suite(6, 95)) {
        const SyncComputation computation =
            testing::random_workload(graph, 40, 0.0, 96);
        auto decomposition = std::make_shared<const EdgeDecomposition>(
            default_decomposition(graph));
        TimestampedNetwork network(decomposition);
        const RunRecord record = network.run(programs_for(computation));

        ASSERT_EQ(record.messages.size(), computation.num_messages()) << name;
        OnlineTimestamper simulator(decomposition);
        // Compare per message identity (sender, receiver, id payload), not
        // record order: concurrent rendezvous may serialize differently,
        // but each message's timestamp is schedule-determined.
        std::vector<VectorTimestamp> by_original(computation.num_messages());
        for (const MessageRecord& m : record.messages) {
            ASSERT_EQ(m.payload[0], 'm');
            const auto original = static_cast<std::size_t>(
                std::stoul(m.payload.substr(1)));
            by_original[original] = m.timestamp;
        }
        const auto expected = simulator.timestamp_computation(computation);
        for (std::size_t i = 0; i < expected.size(); ++i) {
            EXPECT_EQ(by_original[i], expected[i]) << name << " m" << i;
        }
    }
}

TEST(TimestampedNetwork, RecordReconstructionIsGroundTruthConsistent) {
    const Graph graph = topology::client_server(2, 5);
    const SyncComputation computation =
        testing::random_workload(graph, 60, 0.0, 97);
    TimestampedNetwork network(graph);
    const RunRecord record = network.run(programs_for(computation));
    // The reconstructed computation's poset must agree with the recorded
    // timestamps (Theorem 4 end-to-end over real threads).
    EXPECT_EQ(encoding_mismatches(message_poset(record.computation),
                                  record.message_stamps),
              0u);
}

TEST(TimestampedNetwork, ReceiveAnyPipeline) {
    // 1 sink, 3 sources, receive-any at the sink.
    const Graph graph = topology::star(4);
    TimestampedNetwork network(graph);
    std::vector<ProcessProgram> programs(4);
    programs[0] = [](ProcessContext& context) {
        std::size_t total = 0;
        for (int i = 0; i < 30; ++i) {
            total += context.receive().payload.size();
        }
        EXPECT_GT(total, 0u);
    };
    for (ProcessId source : {1u, 2u, 3u}) {
        programs[source] = [](ProcessContext& context) {
            for (int i = 0; i < 10; ++i) {
                context.send(0, "work:" + std::to_string(i));
            }
        };
    }
    const RunRecord record = network.run(programs);
    EXPECT_EQ(record.messages.size(), 30u);
    EXPECT_EQ(network.width(), 1u);  // star topology: scalar clock
    // Star topology: all messages totally ordered (Lemma 1).
    EXPECT_EQ(count_concurrent_pairs(record.message_stamps), 0u);
}

TEST(TimestampedNetwork, InternalEventsAreStamped) {
    const Graph graph = topology::path(2);
    TimestampedNetwork network(graph);
    std::vector<ProcessProgram> programs(2);
    programs[0] = [](ProcessContext& context) {
        context.internal_event("setup");
        context.send(1, "ping");
        context.internal_event("sent");
    };
    programs[1] = [](ProcessContext& context) {
        context.receive_from(0);
        context.internal_event("handled");
    };
    const RunRecord record = network.run(programs);
    ASSERT_EQ(record.internal_stamps.size(), 3u);
    ASSERT_EQ(record.internal_notes.size(), 3u);
    // Identify events by note.
    std::size_t setup = 99, sent = 99, handled = 99;
    for (std::size_t i = 0; i < record.internal_notes.size(); ++i) {
        if (record.internal_notes[i] == "setup") setup = i;
        if (record.internal_notes[i] == "sent") sent = i;
        if (record.internal_notes[i] == "handled") handled = i;
    }
    ASSERT_LT(setup, 3u);
    ASSERT_LT(sent, 3u);
    ASSERT_LT(handled, 3u);
    EXPECT_TRUE(happened_before(record.internal_stamps[setup],
                                record.internal_stamps[handled]));
    EXPECT_TRUE(happened_before(record.internal_stamps[setup],
                                record.internal_stamps[sent]));
    EXPECT_TRUE(concurrent(record.internal_stamps[sent],
                           record.internal_stamps[handled]));
}

TEST(TimestampedNetwork, UserExceptionPropagates) {
    const Graph graph = topology::path(2);
    TimestampedNetwork network(graph);
    std::vector<ProcessProgram> programs(2);
    programs[0] = [](ProcessContext&) {
        throw std::runtime_error("application failure");
    };
    programs[1] = [](ProcessContext& context) {
        // Blocks forever; must be unwound by the teardown.
        context.receive();
    };
    EXPECT_THROW(
        {
            try {
                network.run(programs);
            } catch (const std::runtime_error& e) {
                EXPECT_STREQ(e.what(), "application failure");
                throw;
            }
        },
        std::runtime_error);
}

TEST(TimestampedNetwork, DeadlockDetected) {
    // Both processes wait to receive; nobody sends.
    const Graph graph = topology::path(2);
    TimestampedNetwork network(graph);
    std::vector<ProcessProgram> programs(2);
    programs[0] = [](ProcessContext& context) { context.receive(); };
    programs[1] = [](ProcessContext& context) { context.receive(); };
    EXPECT_THROW(network.run(programs), NetworkDeadlock);
}

TEST(TimestampedNetwork, WatchdogGracePeriodIsConfigurable) {
    // A deliberately deadlocked program (a 3-cycle of receives) must
    // raise NetworkDeadlock instead of hanging, and a shortened grace
    // period must trip well inside the default's ~200ms.
    const Graph graph = topology::ring(3);
    TimestampedNetworkOptions options;
    options.watchdog_poll = std::chrono::milliseconds(2);
    options.watchdog_grace_polls = 5;
    TimestampedNetwork network(graph, options);
    std::vector<ProcessProgram> programs(3);
    for (auto& program : programs) {
        program = [](ProcessContext& context) { context.receive(); };
    }
    const auto start = std::chrono::steady_clock::now();
    EXPECT_THROW(network.run(programs), NetworkDeadlock);
    const auto elapsed = std::chrono::steady_clock::now() - start;
    // Generous bound (scheduling noise) that still proves the knob works:
    // 5 polls x 2ms is ~10ms; the default 20 x 10ms would need >= 200ms.
    EXPECT_LT(elapsed, std::chrono::milliseconds(150));
}

TEST(TimestampedNetwork, RejectsInvalidWatchdogOptions) {
    const Graph graph = topology::path(2);
    TimestampedNetworkOptions zero_poll;
    zero_poll.watchdog_poll = std::chrono::milliseconds(0);
    EXPECT_THROW(TimestampedNetwork(graph, zero_poll),
                 std::invalid_argument);
    TimestampedNetworkOptions zero_grace;
    zero_grace.watchdog_grace_polls = 0;
    EXPECT_THROW(TimestampedNetwork(graph, zero_grace),
                 std::invalid_argument);
}

TEST(TimestampedNetwork, RejectsForeignChannelAtSend) {
    const Graph graph = topology::path(3);
    TimestampedNetwork network(graph);
    std::vector<ProcessProgram> programs(3);
    programs[0] = [](ProcessContext& context) {
        context.send(2, "illegal");  // 0-2 is not an edge
    };
    programs[1] = [](ProcessContext&) {};
    programs[2] = [](ProcessContext&) {};
    EXPECT_THROW(network.run(programs), std::invalid_argument);
}

TEST(TimestampedNetwork, StressManyMessages) {
    const Graph graph = topology::client_server(3, 6);
    TimestampedNetwork network(graph);
    constexpr int kRequests = 201;  // divisible by 3: uniform server load
    constexpr int kPerServer = 6 * kRequests / 3;
    std::vector<ProcessProgram> programs(9);
    for (ProcessId server = 0; server < 3; ++server) {
        programs[server] = [](ProcessContext& context) {
            for (int i = 0; i < kPerServer; ++i) {
                const ReceivedMessage request = context.receive();
                context.send(request.sender, "reply");
            }
        };
    }
    for (ProcessId client = 3; client < 9; ++client) {
        programs[client] = [](ProcessContext& context) {
            for (int i = 0; i < kRequests; ++i) {
                const auto server =
                    static_cast<ProcessId>(i % 3);
                context.send(server, "request");
                context.receive_from(server);
            }
        };
    }
    const RunRecord record = network.run(programs);
    EXPECT_EQ(record.messages.size(), 6u * 2u * kRequests);
    EXPECT_EQ(network.width(), 3u);
    EXPECT_EQ(encoding_mismatches(message_poset(record.computation),
                                  record.message_stamps),
              0u);
}

TEST(TimestampedNetwork, RunRequiresOneProgramPerProcess) {
    TimestampedNetwork network(topology::path(3));
    EXPECT_THROW(network.run(std::vector<ProcessProgram>(2)),
                 std::invalid_argument);
}

}  // namespace
}  // namespace syncts
