#include <gtest/gtest.h>

#include "clocks/event_timestamp.hpp"
#include "clocks/offline_timestamper.hpp"
#include "clocks/online_clock.hpp"
#include "test_util.hpp"
#include "trace/ground_truth.hpp"

namespace syncts {
namespace {

/// Builds Section 5 stamps for `c` using online message timestamps.
std::vector<EventTimestamp> stamp_events(const SyncComputation& c) {
    const auto message_stamps = online_timestamps(c);
    const std::size_t width =
        message_stamps.empty() ? 1 : message_stamps[0].width();
    return timestamp_internal_events(c, message_stamps, width);
}

TEST(EventTimestampTest, Theorem9OnRandomComputations) {
    for (const auto& [name, graph] : testing::topology_suite(7, 91)) {
        const SyncComputation c = testing::random_workload(graph, 45, 1.2, 92);
        const auto stamps = stamp_events(c);
        const Poset truth = event_poset(c);
        for (InternalId e = 0; e < c.num_internal_events(); ++e) {
            for (InternalId f = 0; f < c.num_internal_events(); ++f) {
                if (e == f) continue;
                const bool expected = truth.less(internal_element(c, e),
                                                 internal_element(c, f));
                EXPECT_EQ(happened_before(stamps[e], stamps[f]), expected)
                    << name << " e=" << e << " (" << stamps[e].to_string()
                    << ") f=" << f << " (" << stamps[f].to_string() << ")";
            }
        }
    }
}

TEST(EventTimestampTest, Theorem9WithOfflineMessageStamps) {
    // Section 5 composes with any exact message timestamps, including the
    // offline Fig. 9 vectors.
    const SyncComputation c =
        testing::random_workload(topology::complete(6), 40, 1.0, 93);
    const OfflineResult offline = offline_timestamps(c);
    const auto stamps =
        timestamp_internal_events(c, offline.timestamps, offline.width);
    const Poset truth = event_poset(c);
    for (InternalId e = 0; e < c.num_internal_events(); ++e) {
        for (InternalId f = 0; f < c.num_internal_events(); ++f) {
            if (e == f) continue;
            EXPECT_EQ(happened_before(stamps[e], stamps[f]),
                      truth.less(internal_element(c, e),
                                 internal_element(c, f)));
        }
    }
}

TEST(EventTimestampTest, CounterOrdersWithinInterval) {
    SyncComputation c(topology::path(2));
    c.add_message(0, 1);
    const InternalId a = c.add_internal(0);
    const InternalId b = c.add_internal(0);
    c.add_message(0, 1);
    const auto stamps = stamp_events(c);
    EXPECT_EQ(stamps[a].counter, 0u);
    EXPECT_EQ(stamps[b].counter, 1u);
    EXPECT_EQ(stamps[a].prev, stamps[b].prev);
    EXPECT_EQ(stamps[a].succ, stamps[b].succ);
    EXPECT_TRUE(happened_before(stamps[a], stamps[b]));
    EXPECT_FALSE(happened_before(stamps[b], stamps[a]));
}

TEST(EventTimestampTest, CounterResetsAtExternalEvents) {
    SyncComputation c(topology::path(2));
    const InternalId a = c.add_internal(0);
    c.add_message(0, 1);
    const InternalId b = c.add_internal(0);
    const auto stamps = stamp_events(c);
    EXPECT_EQ(stamps[a].counter, 0u);
    EXPECT_EQ(stamps[b].counter, 0u);
    EXPECT_TRUE(happened_before(stamps[a], stamps[b]));
}

TEST(EventTimestampTest, ZeroPrevAndInfiniteSucc) {
    SyncComputation c(topology::path(2));
    const InternalId before = c.add_internal(0);
    c.add_message(0, 1);
    const InternalId after = c.add_internal(1);
    const auto stamps = stamp_events(c);
    EXPECT_EQ(stamps[before].prev.total(), 0u);
    EXPECT_TRUE(stamps[before].succ.has_value());
    EXPECT_FALSE(stamps[after].succ.has_value());
    EXPECT_TRUE(happened_before(stamps[before], stamps[after]));
    EXPECT_FALSE(happened_before(stamps[after], stamps[before]));
}

TEST(EventTimestampTest, CrossProcessTieBreakCorner) {
    // The corner the paper's triple misses (documented in DESIGN.md): two
    // internal events on different processes with identical prev and succ
    // message timestamps. They are concurrent, and the process id in the
    // tuple keeps the counter tie-break from misfiring.
    SyncComputation c(topology::path(2));
    c.add_message(0, 1);
    const InternalId on_p0 = c.add_internal(0);
    const InternalId on_p1 = c.add_internal(1);
    c.add_message(0, 1);
    const auto stamps = stamp_events(c);
    ASSERT_EQ(stamps[on_p0].prev, stamps[on_p1].prev);
    ASSERT_EQ(stamps[on_p0].succ, stamps[on_p1].succ);
    EXPECT_TRUE(concurrent(stamps[on_p0], stamps[on_p1]));
    // Ground truth agrees.
    const Poset truth = event_poset(c);
    EXPECT_TRUE(truth.incomparable(internal_element(c, on_p0),
                                   internal_element(c, on_p1)));
}

TEST(EventTimestampTest, EventsWithNoMessagesAtAll) {
    SyncComputation c(topology::path(3));
    const InternalId a = c.add_internal(0);
    const InternalId b = c.add_internal(0);
    const InternalId other = c.add_internal(2);
    const auto stamps = timestamp_internal_events(c, {}, 2);
    EXPECT_TRUE(happened_before(stamps[a], stamps[b]));
    EXPECT_TRUE(concurrent(stamps[a], stamps[other]));
    EXPECT_FALSE(stamps[a].succ.has_value());
}

TEST(EventTimestampTest, SameProcessAcrossManyIntervals) {
    SyncComputation c(topology::path(2));
    const InternalId e0 = c.add_internal(0);
    c.add_message(0, 1);
    c.add_message(1, 0);
    const InternalId e1 = c.add_internal(0);
    c.add_message(0, 1);
    const InternalId e2 = c.add_internal(0);
    const auto stamps = stamp_events(c);
    EXPECT_TRUE(happened_before(stamps[e0], stamps[e1]));
    EXPECT_TRUE(happened_before(stamps[e1], stamps[e2]));
    EXPECT_TRUE(happened_before(stamps[e0], stamps[e2]));
    EXPECT_FALSE(happened_before(stamps[e2], stamps[e0]));
}

TEST(EventTimestampTest, ToStringMentionsAllParts) {
    SyncComputation c(topology::path(2));
    c.add_message(0, 1);
    const InternalId e = c.add_internal(0);
    const auto stamps = stamp_events(c);
    const std::string s = stamps[e].to_string();
    EXPECT_NE(s.find("prev="), std::string::npos);
    EXPECT_NE(s.find("succ=inf"), std::string::npos);
    EXPECT_NE(s.find("c=0"), std::string::npos);
}

TEST(EventTimestampTest, RequiresMatchingStampCount) {
    SyncComputation c(topology::path(2));
    c.add_message(0, 1);
    EXPECT_THROW(timestamp_internal_events(c, {}, 1), std::invalid_argument);
}

}  // namespace
}  // namespace syncts
