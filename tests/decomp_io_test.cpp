#include <gtest/gtest.h>

#include <sstream>

#include "decomp/cover_decomposer.hpp"
#include "decomp/decomp_io.hpp"
#include "decomp/greedy_decomposer.hpp"
#include "test_util.hpp"

namespace syncts {
namespace {

void expect_same_assignment(const EdgeDecomposition& a,
                            const EdgeDecomposition& b) {
    ASSERT_EQ(a.size(), b.size());
    ASSERT_EQ(a.graph().num_vertices(), b.graph().num_vertices());
    ASSERT_EQ(a.graph().num_edges(), b.graph().num_edges());
    ASSERT_EQ(a.star_count(), b.star_count());
    for (const Edge& e : a.graph().edges()) {
        EXPECT_EQ(a.group_of(e.u, e.v), b.group_of(e.u, e.v));
    }
    for (GroupId id = 0; id < a.size(); ++id) {
        EXPECT_EQ(a.group(id).kind, b.group(id).kind);
        if (a.group(id).kind == GroupKind::star) {
            EXPECT_EQ(a.group(id).root, b.group(id).root);
        } else {
            EXPECT_EQ(a.group(id).triangle, b.group(id).triangle);
        }
    }
}

TEST(DecompIo, RoundTripAcrossSuite) {
    for (const auto& [name, graph] : testing::small_graph_suite(33)) {
        if (graph.num_edges() == 0) continue;
        const EdgeDecomposition original = default_decomposition(graph);
        const EdgeDecomposition parsed =
            parse_decomposition(serialize_decomposition(original));
        expect_same_assignment(original, parsed);
    }
}

TEST(DecompIo, FormatIsStableAndReadable) {
    const EdgeDecomposition d =
        trivial_complete_decomposition(topology::complete(4));
    EXPECT_EQ(serialize_decomposition(d),
              "syncts-decomp 1\n"
              "processes 4\n"
              "edges 6\n"
              "e 0 1\ne 0 2\ne 0 3\ne 1 2\ne 1 3\ne 2 3\n"
              "groups 2\n"
              "s 0 3 0 1 0 2 0 3\n"
              "t 1 2 3\n");
}

TEST(DecompIo, StreamOverloads) {
    const EdgeDecomposition original =
        greedy_edge_decomposition(topology::paper_fig2b());
    std::stringstream stream;
    write_decomposition(stream, original);
    expect_same_assignment(original, read_decomposition(stream));
}

TEST(DecompIo, EpochTagRoundTripsAtVersion2) {
    for (const auto& [name, graph] : testing::small_graph_suite(34)) {
        if (graph.num_edges() == 0) continue;
        const EdgeDecomposition original = default_decomposition(graph);
        for (const EpochId epoch : {EpochId{1}, EpochId{7}}) {
            const TaggedDecomposition parsed = parse_tagged_decomposition(
                serialize_decomposition(original, epoch));
            EXPECT_EQ(parsed.epoch, epoch) << name;
            expect_same_assignment(original, parsed.decomposition);
        }
    }
}

TEST(DecompIo, EpochZeroSerializesAsVersionOneBytes) {
    // The back-compat rule (docs/FORMATS.md): epoch 0 is spelled in the
    // pre-epoch layout, so old readers keep working on the common case.
    const EdgeDecomposition d =
        default_decomposition(topology::paper_fig2b());
    EXPECT_EQ(serialize_decomposition(d, 0), serialize_decomposition(d));
    EXPECT_EQ(serialize_decomposition(d, 0).substr(0, 15),
              "syncts-decomp 1");
}

TEST(DecompIo, VersionOneParsesAsEpochZero) {
    const EdgeDecomposition original =
        default_decomposition(topology::complete(4));
    const TaggedDecomposition parsed =
        parse_tagged_decomposition(serialize_decomposition(original));
    EXPECT_EQ(parsed.epoch, 0u);
    expect_same_assignment(original, parsed.decomposition);
}

TEST(DecompIo, Version2FormatIsStableAndReadable) {
    const EdgeDecomposition d =
        trivial_complete_decomposition(topology::complete(4));
    EXPECT_EQ(serialize_decomposition(d, 3),
              "syncts-decomp 2\n"
              "epoch 3\n"
              "processes 4\n"
              "edges 6\n"
              "e 0 1\ne 0 2\ne 0 3\ne 1 2\ne 1 3\ne 2 3\n"
              "groups 2\n"
              "s 0 3 0 1 0 2 0 3\n"
              "t 1 2 3\n");
}

TEST(DecompIo, ErrorsCarryTypedKinds) {
    const auto kind_of = [](const std::string& text) {
        try {
            (void)parse_tagged_decomposition(text);
        } catch (const DecompIoError& error) {
            return error.kind();
        }
        ADD_FAILURE() << "no DecompIoError for: " << text;
        return DecompIoError::Kind::bad_magic;
    };
    EXPECT_EQ(kind_of(""), DecompIoError::Kind::truncated);
    EXPECT_EQ(kind_of("wrong-magic 1"), DecompIoError::Kind::bad_magic);
    EXPECT_EQ(kind_of("syncts-decomp 9\n"), DecompIoError::Kind::bad_version);
    EXPECT_EQ(kind_of("syncts-decomp 1\nprocesses two\n"),
              DecompIoError::Kind::bad_number);
    EXPECT_EQ(kind_of("syncts-decomp 1\nprocesses 2\nedges 1\ne 0 5\n"),
              DecompIoError::Kind::out_of_range);
    EXPECT_EQ(kind_of("syncts-decomp 2\nepoch 0\nprocesses 1\nedges 0\n"
                      "groups 0\n"),
              DecompIoError::Kind::out_of_range);
    EXPECT_EQ(kind_of("syncts-decomp 1\nprocesses 2\nedges 1\ne 0 1\n"
                      "groups 1\nq 0\n"),
              DecompIoError::Kind::bad_record);
    // The historical gap: a groupless file over a non-empty graph used to
    // surface as the generic completeness check; it is now its own kind,
    // caught at the `groups 0` declaration.
    EXPECT_EQ(kind_of("syncts-decomp 1\nprocesses 2\nedges 1\ne 0 1\n"
                      "groups 0\n"),
              DecompIoError::Kind::empty_groups);
    EXPECT_EQ(kind_of("syncts-decomp 1\nprocesses 3\nedges 2\n"
                      "e 0 1\ne 1 2\ngroups 1\ns 0 1 0 1\n"),
              DecompIoError::Kind::incomplete);
}

TEST(DecompIo, RejectsMalformedInput) {
    EXPECT_THROW(parse_decomposition(""), std::invalid_argument);
    EXPECT_THROW(parse_decomposition("wrong-magic 1"),
                 std::invalid_argument);
    EXPECT_THROW(parse_decomposition("syncts-decomp 9\n"),
                 std::invalid_argument);
    // Incomplete: one edge, zero groups.
    EXPECT_THROW(parse_decomposition("syncts-decomp 1\nprocesses 2\n"
                                     "edges 1\ne 0 1\ngroups 0\n"),
                 std::invalid_argument);
    // Star edge not incident to root.
    EXPECT_THROW(parse_decomposition("syncts-decomp 1\nprocesses 3\n"
                                     "edges 2\ne 0 1\ne 1 2\ngroups 2\n"
                                     "s 0 1 1 2\ns 1 1 0 1\n"),
                 std::invalid_argument);
    // Triangle over missing edges.
    EXPECT_THROW(parse_decomposition("syncts-decomp 1\nprocesses 3\n"
                                     "edges 2\ne 0 1\ne 1 2\ngroups 1\n"
                                     "t 0 1 2\n"),
                 std::invalid_argument);
    // Vertex out of range.
    EXPECT_THROW(parse_decomposition("syncts-decomp 1\nprocesses 2\n"
                                     "edges 1\ne 0 5\n"),
                 std::invalid_argument);
}

}  // namespace
}  // namespace syncts
