#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <thread>
#include <vector>

#include "core/causality.hpp"
#include "decomp/cover_decomposer.hpp"
#include "core/sync_system.hpp"
#include "core/timestamped_trace.hpp"
#include "poset/realizer.hpp"
#include "runtime/network.hpp"
#include "test_util.hpp"
#include "trace/ground_truth.hpp"

namespace syncts {
namespace {

TEST(Stress, MailboxManySendersManyReceivers) {
    // One shared mailbox, 8 senders x 50 offers, 4 receive-any consumers.
    Mailbox box;
    constexpr int kSenders = 8;
    constexpr int kPerSender = 50;
    constexpr int kReceivers = 4;
    std::atomic<int> consumed{0};
    std::vector<std::thread> threads;
    for (int r = 0; r < kReceivers; ++r) {
        threads.emplace_back([&] {
            for (;;) {
                try {
                    Mailbox::Accepted accepted = box.accept(std::nullopt);
                    accepted.complete(VectorTimestamp(1), 1);
                    consumed.fetch_add(1);
                } catch (const MailboxClosed&) {
                    return;
                }
            }
        });
    }
    std::vector<std::thread> senders;
    for (int s = 0; s < kSenders; ++s) {
        senders.emplace_back([&, s] {
            for (int i = 0; i < kPerSender; ++i) {
                box.offer_and_wait(static_cast<ProcessId>(s), "x",
                                   VectorTimestamp(1));
            }
        });
    }
    for (auto& t : senders) t.join();
    box.close();
    for (auto& t : threads) t.join();
    EXPECT_EQ(consumed.load(), kSenders * kPerSender);
}

TEST(Stress, RandomScheduledRunsAcrossTopologies) {
    // Random valid schedules driven through real threads, five rounds over
    // varied topologies; every record must encode its poset exactly.
    for (std::uint64_t round = 0; round < 5; ++round) {
        const auto suite = testing::topology_suite(6, 900 + round);
        const auto& [name, graph] = suite[round % suite.size()];
        const SyncComputation computation =
            testing::random_workload(graph, 60, 0.0, 910 + round);
        auto decomposition = std::make_shared<const EdgeDecomposition>(
            default_decomposition(graph));
        TimestampedNetwork network(decomposition);
        std::vector<ProcessProgram> programs(graph.num_vertices());
        for (ProcessId p = 0; p < graph.num_vertices(); ++p) {
            std::vector<SyncMessage> schedule;
            for (const MessageId id : computation.process_messages(p)) {
                schedule.push_back(computation.message(id));
            }
            programs[p] = [p, schedule](ProcessContext& context) {
                for (const SyncMessage& m : schedule) {
                    if (m.sender == p) {
                        context.send(m.receiver, {});
                    } else {
                        context.receive_from(m.sender);
                    }
                }
            };
        }
        const RunRecord record = network.run(programs);
        EXPECT_EQ(encoding_mismatches(message_poset(record.computation),
                                      record.message_stamps),
                  0u)
            << name << " round " << round;
    }
}

TEST(Stress, PartialDeadlockDetected) {
    // One process finishes instantly; the other two wait on each other.
    TimestampedNetwork network(topology::complete(3));
    std::vector<ProcessProgram> programs(3);
    programs[0] = [](ProcessContext&) {};
    programs[1] = [](ProcessContext& context) { context.receive_from(2); };
    programs[2] = [](ProcessContext& context) { context.receive_from(1); };
    EXPECT_THROW(network.run(programs), NetworkDeadlock);
}

TEST(Stress, NetworkReusableAfterDeadlock) {
    TimestampedNetwork network(topology::path(2));
    std::vector<ProcessProgram> deadlocked(2);
    deadlocked[0] = [](ProcessContext& context) { context.receive(); };
    deadlocked[1] = [](ProcessContext& context) { context.receive(); };
    EXPECT_THROW(network.run(deadlocked), NetworkDeadlock);
    // Mailboxes were closed by the watchdog; a fresh network must be used.
    TimestampedNetwork fresh(topology::path(2));
    std::vector<ProcessProgram> fine(2);
    fine[0] = [](ProcessContext& context) { context.send(1, "ok"); };
    fine[1] = [](ProcessContext& context) { context.receive(); };
    const RunRecord record = fresh.run(fine);
    EXPECT_EQ(record.messages.size(), 1u);
}

TEST(Stress, RandomGrowthSequences) {
    Rng rng(77);
    for (int trial = 0; trial < 6; ++trial) {
        SyncSystem system(topology::client_server(3, 2));
        const std::size_t width = system.width();
        for (int step = 0; step < 8; ++step) {
            // Join a random non-empty subset of star groups.
            std::vector<GroupId> groups;
            for (GroupId id = 0; id < system.width(); ++id) {
                if (system.decomposition().group(id).kind !=
                    GroupKind::star) {
                    continue;
                }
                if (rng.chance(2, 3)) groups.push_back(id);
            }
            if (groups.empty()) groups.push_back(0);
            system = system.with_leaf_process(groups).first;
            EXPECT_EQ(system.width(), width);
            EXPECT_TRUE(system.decomposition().complete());
        }
        const SyncComputation c = testing::random_workload(
            system.topology(), 80, 0.0, 950 + static_cast<std::uint64_t>(trial));
        EXPECT_EQ(system.analyze(c).verify_against_ground_truth(), 0u);
    }
}

TEST(Stress, LargeClientServerTheorem4) {
    const Graph g = topology::client_server(6, 40);
    const SyncSystem system{Graph(g)};
    EXPECT_EQ(system.width(), 6u);
    const SyncComputation c = testing::random_workload(g, 500, 0.0, 961);
    const TimestampedTrace trace = system.analyze(c);
    EXPECT_EQ(trace.verify_against_ground_truth(), 0u);
}

TEST(Stress, LargePosetRealizer) {
    // 300-element poset from a real computation; realizer must be exact.
    const Graph g = topology::complete(12);
    const SyncComputation c = testing::random_workload(g, 300, 0.0, 962);
    const Poset poset = message_poset(c);
    const Realizer realizer = chain_realizer(poset);
    EXPECT_LE(realizer.size(), 6u);  // width <= N/2 = 6
    EXPECT_TRUE(realizes(poset, realizer));
}

TEST(Stress, ManyProcessesThreadedRun) {
    // 64 threads: one hub star, everyone pings the hub twice.
    constexpr std::size_t kProcesses = 64;
    TimestampedNetwork network(topology::star(kProcesses));
    std::vector<ProcessProgram> programs(kProcesses);
    programs[0] = [](ProcessContext& context) {
        for (std::size_t i = 0; i < 2 * (kProcesses - 1); ++i) {
            context.receive();
        }
    };
    for (ProcessId p = 1; p < kProcesses; ++p) {
        programs[p] = [](ProcessContext& context) {
            context.send(0, "a");
            context.send(0, "b");
        };
    }
    const RunRecord record = network.run(programs);
    EXPECT_EQ(record.messages.size(), 2 * (kProcesses - 1));
    // Star topology: scalar timestamps, totally ordered (Lemma 1).
    EXPECT_EQ(network.width(), 1u);
    EXPECT_EQ(count_concurrent_pairs(record.message_stamps), 0u);
}

}  // namespace
}  // namespace syncts
