#pragma once

#include <cstddef>
#include <optional>
#include <string>
#include <vector>

#include "clocks/vector_timestamp.hpp"
#include "common/ids.hpp"
#include "core/causality.hpp"

/// \file monitor.hpp
/// An online causal monitor — the "distributed monitoring systems" use
/// case from the paper's introduction. A central observer ingests
/// timestamped operations (message timestamps piggybacked to it by the
/// system under observation) and answers causal queries immediately:
/// which operations are concurrent with a new one (potential races /
/// conflicts), and what the current causal frontier is.
///
/// Because the paper's timestamps characterize ↦ exactly, the monitor
/// never reports a false concurrency or a false ordering — unlike
/// plausible-clock monitors (Section 6).

namespace syncts {

class CausalMonitor {
public:
    struct Operation {
        std::size_t id = 0;
        std::string label;
        VectorTimestamp timestamp;
    };

    /// Ingests an operation; returns its monitor-assigned id.
    std::size_t record(std::string label, VectorTimestamp timestamp);

    std::size_t size() const noexcept { return operations_.size(); }
    const Operation& operation(std::size_t id) const;

    /// Order between two recorded operations.
    Order order(std::size_t a, std::size_t b) const;

    /// Ids of recorded operations concurrent with operation `id` —
    /// the conflict candidates for `id`.
    std::vector<std::size_t> conflicts_of(std::size_t id) const;

    /// Ids of currently maximal operations (the causal frontier).
    std::vector<std::size_t> frontier() const;

    /// Latest recorded operation causally before `id`, if any (useful for
    /// "which write does this read depend on" queries).
    std::optional<std::size_t> latest_predecessor(std::size_t id) const;

    /// Total unordered concurrent pairs seen so far.
    std::size_t conflict_pair_count() const;

private:
    std::vector<Operation> operations_;
};

}  // namespace syncts
