#pragma once

#include <vector>

#include "core/timestamped_trace.hpp"

/// \file cuts.hpp
/// Consistent cuts over timestamped traces. A cut (a set of messages) is
/// consistent when it is downward closed under ↦ — it could have been "the
/// past" at some global instant. Checkpointing and optimistic recovery
/// reason entirely in these terms: the recovery line after losing message
/// m is the largest consistent cut that excludes m, and everything outside
/// it is an orphan. With exact timestamps every operation here is a vector
/// comparison.

namespace syncts {

/// True when `cut` (a set of message ids, any order) is downward closed:
/// no message outside the cut precedes a message inside it.
bool is_consistent_cut(const TimestampedTrace& trace,
                       const std::vector<MessageId>& cut);

/// Smallest consistent cut containing `seeds`: the union of their causal
/// pasts. Returned sorted ascending.
std::vector<MessageId> downward_closure(const TimestampedTrace& trace,
                                        const std::vector<MessageId>& seeds);

/// Largest consistent cut that excludes every seed: everything not
/// causally at-or-after a seed. Returned sorted ascending. This is the
/// recovery line when the seeds are lost messages; its complement is the
/// orphan set.
std::vector<MessageId> recovery_line(const TimestampedTrace& trace,
                                     const std::vector<MessageId>& lost);

/// Maximal messages of a cut — the per-checkpoint frontier a recovery
/// protocol would persist. `cut` must be consistent.
std::vector<MessageId> cut_frontier(const TimestampedTrace& trace,
                                    const std::vector<MessageId>& cut);

}  // namespace syncts
