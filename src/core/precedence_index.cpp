#include "core/precedence_index.hpp"

#include "common/check.hpp"
#include "common/ts_kernels.hpp"

namespace syncts {

namespace {

/// SplitMix64 finalizer — spreads the (m1, m2) pair key across shards so
/// hot pairs on nearby message ids don't pile onto one lock.
std::uint64_t mix(std::uint64_t key) noexcept {
    key ^= key >> 30;
    key *= 0xBF58476D1CE4E5B9ull;
    key ^= key >> 27;
    key *= 0x94D049BB133111EBull;
    key ^= key >> 31;
    return key;
}

}  // namespace

PrecedenceIndex::PrecedenceIndex(const TimestampedTrace& trace,
                                 std::size_t shards)
    : trace_(&trace), shards_count_(shards == 0 ? 16 : shards) {
    SYNCTS_REQUIRE((shards_count_ & (shards_count_ - 1)) == 0,
                   "shard count must be a power of two");
    shards_ = std::make_unique<Shard[]>(shards_count_);
}

bool PrecedenceIndex::precedes(MessageId m1, MessageId m2) const {
    const std::size_t n = trace_->num_messages();
    SYNCTS_REQUIRE(m1 < n && m2 < n, "message id out of range");
    const std::uint64_t key =
        static_cast<std::uint64_t>(m1) * static_cast<std::uint64_t>(n) +
        static_cast<std::uint64_t>(m2);
    Shard& shard = shards_[mix(key) & (shards_count_ - 1)];
    {
        std::lock_guard<std::mutex> lock(shard.mu);
        const auto it = shard.memo.find(key);
        if (it != shard.memo.end()) {
            hits_.fetch_add(1, std::memory_order_relaxed);
            if (metric_hits_ != nullptr) metric_hits_->inc();
            return it->second;
        }
    }
    // Compute outside the lock: the O(width) compare is the expensive
    // part and its answer is immutable.
    const bool result =
        ts::less(trace_->stamp_span(m1), trace_->stamp_span(m2));
    {
        std::lock_guard<std::mutex> lock(shard.mu);
        shard.memo.emplace(key, result);
    }
    misses_.fetch_add(1, std::memory_order_relaxed);
    if (metric_misses_ != nullptr) metric_misses_->inc();
    return result;
}

std::size_t PrecedenceIndex::memo_entries() const {
    std::size_t total = 0;
    for (std::size_t s = 0; s < shards_count_; ++s) {
        std::lock_guard<std::mutex> lock(shards_[s].mu);
        total += shards_[s].memo.size();
    }
    return total;
}

void PrecedenceIndex::attach_metrics(obs::MetricsRegistry& registry,
                                     std::string_view prefix) {
    const std::string p(prefix);
    metric_hits_ = &registry.counter(p + "_memo_hits");
    metric_misses_ = &registry.counter(p + "_memo_misses");
}

}  // namespace syncts
