#include "core/monitor.hpp"

#include <utility>

#include "common/check.hpp"

namespace syncts {

std::size_t CausalMonitor::record(std::string label,
                                  VectorTimestamp timestamp) {
    const std::size_t id = operations_.size();
    operations_.push_back({id, std::move(label), std::move(timestamp)});
    return id;
}

const CausalMonitor::Operation& CausalMonitor::operation(
    std::size_t id) const {
    SYNCTS_REQUIRE(id < operations_.size(), "operation id out of range");
    return operations_[id];
}

Order CausalMonitor::order(std::size_t a, std::size_t b) const {
    return compare(operation(a).timestamp, operation(b).timestamp);
}

std::vector<std::size_t> CausalMonitor::conflicts_of(std::size_t id) const {
    const Operation& op = operation(id);
    std::vector<std::size_t> result;
    for (const Operation& other : operations_) {
        if (other.id != id &&
            op.timestamp.concurrent_with(other.timestamp)) {
            result.push_back(other.id);
        }
    }
    return result;
}

std::vector<std::size_t> CausalMonitor::frontier() const {
    std::vector<std::size_t> result;
    for (const Operation& candidate : operations_) {
        bool maximal = true;
        for (const Operation& other : operations_) {
            if (other.id != candidate.id &&
                candidate.timestamp.less(other.timestamp)) {
                maximal = false;
                break;
            }
        }
        if (maximal) result.push_back(candidate.id);
    }
    return result;
}

std::optional<std::size_t> CausalMonitor::latest_predecessor(
    std::size_t id) const {
    const Operation& op = operation(id);
    std::optional<std::size_t> best;
    for (const Operation& other : operations_) {
        if (other.id == id || !other.timestamp.less(op.timestamp)) continue;
        if (!best ||
            operations_[*best].timestamp.less(other.timestamp)) {
            best = other.id;
        }
    }
    return best;
}

std::size_t CausalMonitor::conflict_pair_count() const {
    std::size_t count = 0;
    for (std::size_t a = 0; a < operations_.size(); ++a) {
        for (std::size_t b = a + 1; b < operations_.size(); ++b) {
            if (operations_[a].timestamp.concurrent_with(
                    operations_[b].timestamp)) {
                ++count;
            }
        }
    }
    return count;
}

}  // namespace syncts
