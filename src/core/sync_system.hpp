#pragma once

#include <memory>
#include <span>
#include <utility>

#include "clocks/online_clock.hpp"
#include "decomp/edge_decomposition.hpp"
#include "graph/graph.hpp"
#include "runtime/network.hpp"

/// \file sync_system.hpp
/// The library's front door. A SyncSystem bundles a communication topology
/// with an edge decomposition and hands out the pieces a user needs:
/// simulators (OnlineTimestamper), real networks (TimestampedNetwork) and
/// post-hoc analysis (TimestampedTrace via analyze()).
///
/// Typical use:
///     auto system = SyncSystem(topology::client_server(2, 100));
///     auto network = system.make_network();
///     ... run programs ...
/// or, for recorded computations:
///     auto trace = system.analyze(computation);
///     trace.precedes(m1, m2);

namespace syncts {

class TimestampedTrace;
class PrecedenceIndex;

/// Strategy for picking the edge decomposition.
enum class DecompositionStrategy {
    /// Fig. 7 greedy; trivial N−2 decomposition on complete graphs.
    automatic,
    /// Fig. 7 greedy always.
    greedy,
    /// Star-only via the 2-approximate vertex cover.
    approx_cover,
    /// Star-only via the exact minimum vertex cover (exponential; small
    /// graphs only).
    exact_cover,
};

class SyncSystem {
public:
    /// Builds the system, computing a decomposition of `topology`.
    explicit SyncSystem(
        Graph topology,
        DecompositionStrategy strategy = DecompositionStrategy::automatic);

    /// Adopts a precomputed decomposition.
    explicit SyncSystem(EdgeDecomposition decomposition);

    std::size_t num_processes() const noexcept;

    /// Timestamp width d — the paper's headline metric.
    std::size_t width() const noexcept { return decomposition_->size(); }

    const Graph& topology() const noexcept {
        return decomposition_->graph();
    }
    const EdgeDecomposition& decomposition() const noexcept {
        return *decomposition_;
    }
    std::shared_ptr<const EdgeDecomposition> decomposition_ptr()
        const noexcept {
        return decomposition_;
    }

    /// Fresh simulator-facing timestamper (Fig. 5 over recorded messages).
    OnlineTimestamper make_timestamper() const;

    /// Fresh clock engine of any family over this system's topology; the
    /// online family uses this system's decomposition.
    std::unique_ptr<ClockEngine> make_engine(
        ClockFamily family = ClockFamily::online) const;

    /// Fresh threaded rendezvous network sharing this decomposition.
    TimestampedNetwork make_network() const;

    /// Timestamps a recorded computation and packages it for queries.
    /// The computation's topology must equal this system's.
    TimestampedTrace analyze(const SyncComputation& computation) const;

    /// Memoizing m1 ↦ m2 query front end over an analyzed trace (O(width)
    /// first sight, O(1) repeats; thread-safe). The trace must outlive
    /// the returned index.
    PrecedenceIndex make_precedence_index(const TimestampedTrace& trace) const;

    /// Grown copy: a new process joins the listed star groups (e.g. a new
    /// client connecting to every server's star). The timestamp width is
    /// unchanged — the paper's Section 3.3 scaling claim — so timestamps
    /// from before and after the growth remain directly comparable.
    /// Returns the new system and the newcomer's process id.
    std::pair<SyncSystem, ProcessId> with_leaf_process(
        std::span<const GroupId> star_groups) const;

private:
    std::shared_ptr<const EdgeDecomposition> decomposition_;
};

}  // namespace syncts
