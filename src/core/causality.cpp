#include "core/causality.hpp"

#include <numeric>

#include "common/check.hpp"
#include "common/ts_kernels.hpp"

namespace syncts {

namespace {

/// Shards rows [0, n) across the analysis pool, sums the per-shard counts
/// in shard order. count_rows(begin, end) must be a pure function of its
/// range — every sweep below is — so the reduction equals the serial scan.
template <typename CountRows>
std::size_t sharded_count(std::size_t n, const AnalysisOptions& options,
                          CountRows&& count_rows) {
    if (n == 0) return 0;
    if (!options.parallel()) return count_rows(std::size_t{0}, n);
    PoolLease lease(options);
    const std::vector<std::size_t> partial =
        lease.pool().map_chunks<std::size_t>(
            n, 0,
            [&](std::size_t begin, std::size_t end) {
                return count_rows(begin, end);
            });
    return std::accumulate(partial.begin(), partial.end(), std::size_t{0});
}

}  // namespace

Order compare(const VectorTimestamp& a, const VectorTimestamp& b) {
    return compare(a.components(), b.components());
}

Order compare(std::span<const std::uint64_t> a,
              std::span<const std::uint64_t> b) {
    SYNCTS_REQUIRE(a.size() == b.size(),
                   "comparing timestamps of different widths");
    switch (ts::relate(a, b)) {
        case ts::kRowLeq | ts::kProbeLeq: return Order::equal;
        case ts::kRowLeq: return Order::before;
        case ts::kProbeLeq: return Order::after;
        default: return Order::concurrent;
    }
}

const char* to_string(Order order) {
    switch (order) {
        case Order::before: return "before";
        case Order::after: return "after";
        case Order::concurrent: return "concurrent";
        case Order::equal: return "equal";
    }
    return "unknown";
}

std::size_t count_concurrent_pairs(std::span<const VectorTimestamp> stamps) {
    std::size_t count = 0;
    for (std::size_t i = 0; i < stamps.size(); ++i) {
        for (std::size_t j = i + 1; j < stamps.size(); ++j) {
            if (stamps[i].concurrent_with(stamps[j])) ++count;
        }
    }
    return count;
}

std::size_t count_concurrent_pairs(const TimestampArena& stamps,
                                   const AnalysisOptions& options) {
    return sharded_count(
        stamps.size(), options, [&](std::size_t begin, std::size_t end) {
            std::size_t count = 0;
            for (std::size_t i = begin; i < end; ++i) {
                const auto row = stamps.span(static_cast<TsHandle>(i));
                for (std::size_t j = i + 1; j < stamps.size(); ++j) {
                    if (ts::concurrent(row,
                                       stamps.span(static_cast<TsHandle>(j)))) {
                        ++count;
                    }
                }
            }
            return count;
        });
}

std::size_t encoding_mismatches(const Poset& poset,
                                std::span<const VectorTimestamp> stamps) {
    std::size_t mismatches = 0;
    for (std::size_t a = 0; a < stamps.size(); ++a) {
        for (std::size_t b = 0; b < stamps.size(); ++b) {
            if (a == b) continue;
            if (poset.less(a, b) != stamps[a].less(stamps[b])) ++mismatches;
        }
    }
    return mismatches;
}

std::size_t encoding_mismatches(const Poset& poset,
                                const TimestampArena& stamps,
                                const AnalysisOptions& options) {
    return sharded_count(
        stamps.size(), options, [&](std::size_t begin, std::size_t end) {
            std::size_t mismatches = 0;
            for (std::size_t a = begin; a < end; ++a) {
                const auto row = stamps.span(static_cast<TsHandle>(a));
                for (std::size_t b = 0; b < stamps.size(); ++b) {
                    if (a == b) continue;
                    const bool stamp_less =
                        ts::less(row, stamps.span(static_cast<TsHandle>(b)));
                    if (poset.less(a, b) != stamp_less) ++mismatches;
                }
            }
            return mismatches;
        });
}

std::vector<std::pair<std::size_t, std::size_t>> encoding_mismatch_pairs(
    const Poset& poset, const TimestampArena& stamps,
    const AnalysisOptions& options) {
    using Pairs = std::vector<std::pair<std::size_t, std::size_t>>;
    const std::size_t n = stamps.size();
    const auto scan = [&](std::size_t begin, std::size_t end) {
        Pairs found;
        for (std::size_t a = begin; a < end; ++a) {
            const auto row = stamps.span(static_cast<TsHandle>(a));
            for (std::size_t b = 0; b < n; ++b) {
                if (a == b) continue;
                const bool stamp_less =
                    ts::less(row, stamps.span(static_cast<TsHandle>(b)));
                if (poset.less(a, b) != stamp_less) found.emplace_back(a, b);
            }
        }
        return found;
    };
    if (!options.parallel() || n == 0) return scan(0, n);
    PoolLease lease(options);
    // Per-shard lists concatenate in shard order: shard s covers a-range
    // [s·grain, (s+1)·grain), so the merged list is exactly the serial
    // visit order.
    std::vector<Pairs> shards =
        lease.pool().map_chunks<Pairs>(n, 0, scan);
    Pairs merged;
    for (Pairs& shard : shards) {
        merged.insert(merged.end(), shard.begin(), shard.end());
    }
    return merged;
}

std::size_t consistency_violations(const Poset& poset,
                                   std::span<const VectorTimestamp> stamps) {
    std::size_t violations = 0;
    for (std::size_t a = 0; a < stamps.size(); ++a) {
        for (std::size_t b = 0; b < stamps.size(); ++b) {
            if (a == b) continue;
            if (poset.less(a, b) && !stamps[a].less(stamps[b])) ++violations;
        }
    }
    return violations;
}

std::size_t consistency_violations(const Poset& poset,
                                   const TimestampArena& stamps,
                                   const AnalysisOptions& options) {
    return sharded_count(
        stamps.size(), options, [&](std::size_t begin, std::size_t end) {
            std::size_t violations = 0;
            for (std::size_t a = begin; a < end; ++a) {
                const auto row = stamps.span(static_cast<TsHandle>(a));
                for (std::size_t b = 0; b < stamps.size(); ++b) {
                    if (a == b) continue;
                    if (poset.less(a, b) &&
                        !ts::less(row, stamps.span(static_cast<TsHandle>(b)))) {
                        ++violations;
                    }
                }
            }
            return violations;
        });
}

std::size_t total_components(std::span<const VectorTimestamp> stamps) {
    std::size_t total = 0;
    for (const auto& s : stamps) total += s.width();
    return total;
}

std::size_t total_components(const TimestampArena& stamps) {
    return stamps.size() * stamps.width();
}

}  // namespace syncts
