#include "core/causality.hpp"

#include "common/check.hpp"
#include "common/ts_kernels.hpp"

namespace syncts {

Order compare(const VectorTimestamp& a, const VectorTimestamp& b) {
    return compare(a.components(), b.components());
}

Order compare(std::span<const std::uint64_t> a,
              std::span<const std::uint64_t> b) {
    SYNCTS_REQUIRE(a.size() == b.size(),
                   "comparing timestamps of different widths");
    switch (ts::relate(a, b)) {
        case ts::kRowLeq | ts::kProbeLeq: return Order::equal;
        case ts::kRowLeq: return Order::before;
        case ts::kProbeLeq: return Order::after;
        default: return Order::concurrent;
    }
}

const char* to_string(Order order) {
    switch (order) {
        case Order::before: return "before";
        case Order::after: return "after";
        case Order::concurrent: return "concurrent";
        case Order::equal: return "equal";
    }
    return "unknown";
}

std::size_t count_concurrent_pairs(std::span<const VectorTimestamp> stamps) {
    std::size_t count = 0;
    for (std::size_t i = 0; i < stamps.size(); ++i) {
        for (std::size_t j = i + 1; j < stamps.size(); ++j) {
            if (stamps[i].concurrent_with(stamps[j])) ++count;
        }
    }
    return count;
}

std::size_t count_concurrent_pairs(const TimestampArena& stamps) {
    std::size_t count = 0;
    for (std::size_t i = 0; i < stamps.size(); ++i) {
        const auto row = stamps.span(static_cast<TsHandle>(i));
        for (std::size_t j = i + 1; j < stamps.size(); ++j) {
            if (ts::concurrent(row, stamps.span(static_cast<TsHandle>(j)))) {
                ++count;
            }
        }
    }
    return count;
}

std::size_t encoding_mismatches(const Poset& poset,
                                std::span<const VectorTimestamp> stamps) {
    std::size_t mismatches = 0;
    for (std::size_t a = 0; a < stamps.size(); ++a) {
        for (std::size_t b = 0; b < stamps.size(); ++b) {
            if (a == b) continue;
            if (poset.less(a, b) != stamps[a].less(stamps[b])) ++mismatches;
        }
    }
    return mismatches;
}

std::size_t encoding_mismatches(const Poset& poset,
                                const TimestampArena& stamps) {
    std::size_t mismatches = 0;
    for (std::size_t a = 0; a < stamps.size(); ++a) {
        const auto row = stamps.span(static_cast<TsHandle>(a));
        for (std::size_t b = 0; b < stamps.size(); ++b) {
            if (a == b) continue;
            const bool stamp_less =
                ts::less(row, stamps.span(static_cast<TsHandle>(b)));
            if (poset.less(a, b) != stamp_less) ++mismatches;
        }
    }
    return mismatches;
}

std::size_t consistency_violations(const Poset& poset,
                                   std::span<const VectorTimestamp> stamps) {
    std::size_t violations = 0;
    for (std::size_t a = 0; a < stamps.size(); ++a) {
        for (std::size_t b = 0; b < stamps.size(); ++b) {
            if (a == b) continue;
            if (poset.less(a, b) && !stamps[a].less(stamps[b])) ++violations;
        }
    }
    return violations;
}

std::size_t consistency_violations(const Poset& poset,
                                   const TimestampArena& stamps) {
    std::size_t violations = 0;
    for (std::size_t a = 0; a < stamps.size(); ++a) {
        const auto row = stamps.span(static_cast<TsHandle>(a));
        for (std::size_t b = 0; b < stamps.size(); ++b) {
            if (a == b) continue;
            if (poset.less(a, b) &&
                !ts::less(row, stamps.span(static_cast<TsHandle>(b)))) {
                ++violations;
            }
        }
    }
    return violations;
}

std::size_t total_components(std::span<const VectorTimestamp> stamps) {
    std::size_t total = 0;
    for (const auto& s : stamps) total += s.width();
    return total;
}

std::size_t total_components(const TimestampArena& stamps) {
    return stamps.size() * stamps.width();
}

}  // namespace syncts
