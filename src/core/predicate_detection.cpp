#include "core/predicate_detection.hpp"

namespace syncts {

WeakConjunctiveResult detect_weak_conjunctive(
    const std::vector<std::vector<EventTimestamp>>& candidates) {
    const std::size_t k = candidates.size();
    WeakConjunctiveResult result;
    result.witness.assign(k, 0);
    if (k == 0) {
        result.detected = true;
        return result;
    }
    for (const auto& list : candidates) {
        if (list.empty()) return result;  // impossible
    }

    // Cursor elimination: an event that happened-before another process's
    // cursor event can never join a pairwise-concurrent cut with it or
    // with anything later on that process, so it is discarded.
    for (;;) {
        bool advanced = false;
        std::vector<char> eliminate(k, 0);
        for (std::size_t i = 0; i < k; ++i) {
            for (std::size_t j = 0; j < k; ++j) {
                if (i == j || eliminate[i]) continue;
                if (happened_before(candidates[i][result.witness[i]],
                                    candidates[j][result.witness[j]])) {
                    eliminate[i] = 1;
                }
            }
        }
        for (std::size_t i = 0; i < k; ++i) {
            if (!eliminate[i]) continue;
            if (++result.witness[i] >= candidates[i].size()) {
                result.witness.clear();
                return result;  // list exhausted: not detected
            }
            advanced = true;
        }
        if (!advanced) {
            result.detected = true;
            return result;
        }
    }
}

}  // namespace syncts
