#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <string_view>
#include <vector>

#include "common/ids.hpp"
#include "common/pool.hpp"
#include "core/precedence_index.hpp"
#include "core/timestamped_trace.hpp"
#include "obs/metrics.hpp"
#include "poset/poset.hpp"
#include "runtime/reconfig_runtime.hpp"

/// \file multi_epoch_trace.hpp
/// Analysis over a reconfigurable run: one TimestampedTrace per topology
/// epoch, stitched into a single precedence order by the barrier rule.
///
/// Epoch transitions are global barriers (docs/TOPOLOGY.md): every
/// message of epoch e completes before any message of epoch e+1 starts.
/// The cross-epoch order is therefore trivial — earlier epoch precedes —
/// and the within-epoch order is exactly Theorem 4 on that epoch's
/// timestamps (which are relative to the barrier; the epoch's vectors
/// are bit-identical to a fresh run on its topology). A message is
/// addressed globally by `GlobalMessageId` = segment offset + its
/// per-epoch MessageId.
///
/// ground_truth_poset() rebuilds the whole order from first principles:
/// the per-process ▷ chains of each epoch's realized computation, plus
/// barrier generators from the maximal messages of one non-empty epoch
/// to the minimal messages of the next (transitive closure then yields
/// all-of-e ↦ all-of-e'). verify_against_ground_truth() sweeps every
/// ordered pair against it — the multi-epoch analogue of
/// TimestampedTrace::verify_against_ground_truth, sharded the same way
/// across the analysis pool and bit-identical at every thread count.

namespace syncts {

/// Index of a message across the whole run: segment offsets are summed
/// in epoch order, so ids are dense and commit-ordered within an epoch.
using GlobalMessageId = std::size_t;

class MultiEpochTrace {
public:
    /// Adopts one trace per epoch, in epoch order. Segments may be empty
    /// (an epoch whose script had no messages).
    explicit MultiEpochTrace(std::vector<TimestampedTrace> segments);

    /// Builds directly from a reconfigurable run: segment e's trace is
    /// the realized computation plus the committed stamps of epoch e.
    static MultiEpochTrace from_run(const ReconfigurableRunResult& run);

    std::size_t num_epochs() const noexcept { return segments_.size(); }

    /// Total messages across every epoch.
    std::size_t num_messages() const noexcept { return offsets_.back(); }

    const TimestampedTrace& segment(EpochId epoch) const;

    /// Epoch containing global message `m`.
    EpochId epoch_of(GlobalMessageId m) const;

    /// Per-epoch MessageId of global message `m`.
    MessageId local_of(GlobalMessageId m) const;

    GlobalMessageId global_of(EpochId epoch, MessageId local) const;

    /// m1 ↦ m2 across the whole run: epoch order decides cross-epoch
    /// pairs (the barrier rule); Theorem 4 on the segment's timestamps
    /// decides same-epoch pairs.
    bool precedes(GlobalMessageId m1, GlobalMessageId m2) const;

    /// m1 ‖ m2 — only possible within one epoch.
    bool concurrent(GlobalMessageId m1, GlobalMessageId m2) const;

    /// The reference order over global ids, built from the realized
    /// computations alone (no timestamps): per-process ▷ chains within
    /// each epoch plus maximal×minimal barrier generators between
    /// consecutive non-empty epochs, transitively closed through
    /// `options`.
    Poset ground_truth_poset(const AnalysisOptions& options = {}) const;

    /// Number of ordered pairs on which precedes() disagrees with the
    /// ground-truth closure (0 ⟺ the per-epoch timestamps plus the
    /// barrier rule encode the run's order exactly). Sharded across the
    /// analysis pool; bit-identical at every thread count.
    std::size_t verify_against_ground_truth(
        const AnalysisOptions& options = {}) const;

private:
    std::vector<TimestampedTrace> segments_;
    /// offsets_[e] — global id of epoch e's first message; the last
    /// entry is the total message count.
    std::vector<std::size_t> offsets_;
};

/// Repeated-query front end over a MultiEpochTrace: cross-epoch pairs
/// answer in O(1) from the barrier rule; same-epoch pairs go through a
/// per-segment PrecedenceIndex (sharded memo, thread-safe). The
/// multi-epoch analogue of PrecedenceIndex.
class MultiEpochPrecedenceIndex {
public:
    /// Builds one per-segment index (`shards` forwarded; 0 picks 16).
    /// `trace` must outlive the index.
    explicit MultiEpochPrecedenceIndex(const MultiEpochTrace& trace,
                                       std::size_t shards = 0);

    /// m1 ↦ m2, memoized per segment. Thread-safe.
    bool precedes(GlobalMessageId m1, GlobalMessageId m2) const;

    bool concurrent(GlobalMessageId m1, GlobalMessageId m2) const {
        return m1 != m2 && !precedes(m1, m2) && !precedes(m2, m1);
    }

    const MultiEpochTrace& trace() const noexcept { return *trace_; }
    std::size_t num_messages() const noexcept {
        return trace_->num_messages();
    }

    /// Queries answered by the barrier rule alone (no memo involved).
    std::uint64_t cross_epoch_queries() const noexcept {
        return cross_epoch_.load(std::memory_order_relaxed);
    }

    /// Aggregate memo stats over every segment index.
    std::uint64_t memo_hits() const noexcept;
    std::uint64_t memo_misses() const noexcept;

    /// Forwards to every segment index (they share the registry's
    /// `<prefix>_memo_*` counters) and registers
    /// `<prefix>_cross_epoch` for the barrier fast path. The registry
    /// must outlive the index.
    void attach_metrics(obs::MetricsRegistry& registry,
                        std::string_view prefix = "query");
    void detach_metrics() noexcept;

private:
    const MultiEpochTrace* trace_;
    /// One index per segment (heap-held: PrecedenceIndex owns
    /// atomics and is neither copyable nor movable).
    std::vector<std::unique_ptr<PrecedenceIndex>> indexes_;
    mutable std::atomic<std::uint64_t> cross_epoch_{0};
    obs::Counter* metric_cross_epoch_ = nullptr;
};

}  // namespace syncts
