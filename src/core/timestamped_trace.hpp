#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "clocks/vector_timestamp.hpp"
#include "common/pool.hpp"
#include "common/timestamp_arena.hpp"
#include "trace/computation.hpp"

/// \file timestamped_trace.hpp
/// A computation plus per-message timestamps, with the precedence queries
/// the paper motivates (Section 1: monitoring, debugging visualization,
/// orphan detection). All queries are O(d) vector comparisons — no graph
/// search at query time, which is the whole point of timestamping.
///
/// Stamps live in one TimestampArena (slot m = message m's timestamp), so
/// the whole-trace scans (concurrent_with, minimal/maximal fronts,
/// concurrent_pair_count) stream the flat slab through the batch kernels
/// instead of chasing one heap vector per message.

namespace syncts {

class SpillStore;

/// Tuning for the spill-aware streamed verification path
/// (docs/STREAMING.md). Defaults keep the batch sweep for small traces —
/// below `min_streamed_messages` the full bit matrix is cheaper than any
/// chunking — and bound closure-row residency to one `chunk_rows` window
/// above it.
struct StreamedVerifyOptions {
    /// Closure rows per retired chunk (and per verification window).
    std::size_t chunk_rows = 4096;

    /// Destination for retired chunks; nullptr retains them in memory
    /// (still chunked — useful when no spill directory is available).
    SpillStore* spill = nullptr;

    /// Below this message count, delegate to the batch in-memory sweep
    /// (bit-identical either way; the batch path is faster).
    std::size_t min_streamed_messages = 16384;

    /// Sharding for the per-window pair sweep; the count is bit-identical
    /// to the serial sweep at every thread count.
    AnalysisOptions analysis = {};

    obs::MetricsRegistry* metrics = nullptr;
};

class TimestampedTrace {
public:
    /// Adopts an arena whose slot m holds message m's timestamp.
    TimestampedTrace(SyncComputation computation, TimestampArena stamps);

    /// Compat shim: packs materialized stamps (one per message, uniform
    /// width) into a fresh arena.
    TimestampedTrace(SyncComputation computation,
                     std::vector<VectorTimestamp> message_stamps);

    const SyncComputation& computation() const noexcept {
        return computation_;
    }
    std::size_t num_messages() const noexcept {
        return computation_.num_messages();
    }

    /// Components per timestamp.
    std::size_t width() const noexcept { return stamps_.width(); }

    /// The arena holding every stamp (slot m = message m).
    const TimestampArena& stamps() const noexcept { return stamps_; }

    /// Message m's components, zero-copy.
    std::span<const std::uint64_t> stamp_span(MessageId m) const {
        return stamps_.span(m);
    }

    /// Message m's timestamp as an owning value (compat shim).
    VectorTimestamp timestamp(MessageId m) const;

    /// m1 ↦ m2, answered from the timestamps.
    bool precedes(MessageId m1, MessageId m2) const;

    /// m1 ‖ m2 (distinct, neither precedes the other).
    bool concurrent(MessageId m1, MessageId m2) const;

    /// All messages concurrent with m. One batch relate_many pass.
    std::vector<MessageId> concurrent_with(MessageId m) const;

    /// All messages strictly after m (m ↦ m') — the paper's "orphan"
    /// query direction. One batch pass.
    std::vector<MessageId> successors_of(MessageId m) const;

    /// Messages m with no m' ↦ m (the computation's first wave).
    std::vector<MessageId> minimal_messages() const;

    /// Messages m with no m ↦ m' (the current frontier).
    std::vector<MessageId> maximal_messages() const;

    /// Count of unordered concurrent pairs — a measure of how much
    /// parallelism the timestamps must preserve.
    std::size_t concurrent_pair_count() const;

    /// Checks Theorem 4 against ground truth (the transitively closed ▷
    /// relation): returns the number of disagreeing pairs, 0 when the
    /// timestamps encode the poset exactly. O(M²) — verification tool.
    /// The ground-truth closure and the pair sweep both shard across the
    /// analysis pool when `options` asks for threads; the count is
    /// bit-identical to the serial sweep at every thread count.
    std::size_t verify_against_ground_truth(
        const AnalysisOptions& options = {}) const;

    /// Spill-aware streamed verification: the ground truth is built by
    /// the out-of-core `StreamingClosure` (chunks retired to
    /// `options.spill` when set) and the pair sweep walks it one
    /// chunk-window of rows at a time, so closure residency stays
    /// O(chunk_rows · M/64) words instead of O(M²/64). The returned
    /// count is bit-identical to the batch overload at every thread
    /// count and chunk size.
    std::size_t verify_against_ground_truth(
        const StreamedVerifyOptions& options) const;

    /// "m3 = (1,1,1)"-style listing, 1-based like the paper's figures.
    std::string to_string() const;

private:
    /// relate_many of message m's stamp vs every slot, into scratch;
    /// returns the flag view.
    std::span<const std::uint8_t> relate_row(MessageId m) const;

    SyncComputation computation_;
    TimestampArena stamps_;
    /// Reusable flag buffer for the batch scans (one byte per message).
    mutable std::vector<std::uint8_t> relate_scratch_;
};

}  // namespace syncts
