#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "clocks/vector_timestamp.hpp"
#include "trace/computation.hpp"

/// \file timestamped_trace.hpp
/// A computation plus per-message timestamps, with the precedence queries
/// the paper motivates (Section 1: monitoring, debugging visualization,
/// orphan detection). All queries are O(d) vector comparisons — no graph
/// search at query time, which is the whole point of timestamping.

namespace syncts {

class TimestampedTrace {
public:
    TimestampedTrace(SyncComputation computation,
                     std::vector<VectorTimestamp> message_stamps);

    const SyncComputation& computation() const noexcept {
        return computation_;
    }
    std::size_t num_messages() const noexcept {
        return computation_.num_messages();
    }

    const VectorTimestamp& timestamp(MessageId m) const;

    /// m1 ↦ m2, answered from the timestamps.
    bool precedes(MessageId m1, MessageId m2) const;

    /// m1 ‖ m2 (distinct, neither precedes the other).
    bool concurrent(MessageId m1, MessageId m2) const;

    /// All messages concurrent with m.
    std::vector<MessageId> concurrent_with(MessageId m) const;

    /// Messages m with no m' ↦ m (the computation's first wave).
    std::vector<MessageId> minimal_messages() const;

    /// Messages m with no m ↦ m' (the current frontier).
    std::vector<MessageId> maximal_messages() const;

    /// Count of unordered concurrent pairs — a measure of how much
    /// parallelism the timestamps must preserve.
    std::size_t concurrent_pair_count() const;

    /// Checks Theorem 4 against ground truth (the transitively closed ▷
    /// relation): returns the number of disagreeing pairs, 0 when the
    /// timestamps encode the poset exactly. O(M²) — verification tool.
    std::size_t verify_against_ground_truth() const;

    /// "m3 = (1,1,1)"-style listing, 1-based like the paper's figures.
    std::string to_string() const;

private:
    SyncComputation computation_;
    std::vector<VectorTimestamp> stamps_;
};

}  // namespace syncts
