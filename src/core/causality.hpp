#pragma once

#include <cstddef>
#include <span>
#include <utility>
#include <vector>

#include "clocks/vector_timestamp.hpp"
#include "common/pool.hpp"
#include "common/timestamp_arena.hpp"
#include "poset/poset.hpp"

/// \file causality.hpp
/// Free-standing causality utilities over collections of vector
/// timestamps: the O(d) precedence test of Section 2 plus bulk validation
/// helpers used by the test suite and the benchmark harness. Every helper
/// has an arena form (flat slab, batch kernels) and a materialized
/// std::span<const VectorTimestamp> compat form.

namespace syncts {

/// Outcome of comparing two timestamps.
enum class Order { before, after, concurrent, equal };

Order compare(const VectorTimestamp& a, const VectorTimestamp& b);

/// Span form; widths must match.
Order compare(std::span<const std::uint64_t> a,
              std::span<const std::uint64_t> b);

const char* to_string(Order order);

/// Number of unordered pairs {i, j} whose stamps are concurrent.
std::size_t count_concurrent_pairs(std::span<const VectorTimestamp> stamps);
std::size_t count_concurrent_pairs(const TimestampArena& stamps,
                                   const AnalysisOptions& options = {});

/// Checks that the timestamps encode the poset exactly
/// (poset.less(a,b) ⟺ stamps[a] < stamps[b] for all pairs). Returns the
/// number of disagreeing ordered pairs; 0 means the encoding is exact.
/// The arena form shards rows of the O(M²) sweep across the analysis
/// pool; per-shard counts reduce in shard (= row) order, so the result is
/// identical to the serial sweep at every thread count.
std::size_t encoding_mismatches(const Poset& poset,
                                std::span<const VectorTimestamp> stamps);
std::size_t encoding_mismatches(const Poset& poset,
                                const TimestampArena& stamps,
                                const AnalysisOptions& options = {});

/// The disagreeing ordered pairs themselves, ascending (a, then b) —
/// exactly the order the serial sweep visits them in, regardless of how
/// the shards were scheduled (per-shard lists concatenate in shard
/// order). For diagnostics; prefer encoding_mismatches for gating.
std::vector<std::pair<std::size_t, std::size_t>> encoding_mismatch_pairs(
    const Poset& poset, const TimestampArena& stamps,
    const AnalysisOptions& options = {});

/// Like encoding_mismatches but only checks soundness of the ⟸ direction
/// plausible for one-way clocks (Lamport): poset.less(a,b) ⟹
/// stamps[a] < stamps[b]. Returns violations.
std::size_t consistency_violations(const Poset& poset,
                                   std::span<const VectorTimestamp> stamps);
std::size_t consistency_violations(const Poset& poset,
                                   const TimestampArena& stamps,
                                   const AnalysisOptions& options = {});

/// Total piggyback cost in components (width × message count) — the
/// overhead metric of Section 3.2 (O(d) per message vs FM's O(N)).
std::size_t total_components(std::span<const VectorTimestamp> stamps);
std::size_t total_components(const TimestampArena& stamps);

}  // namespace syncts
