#pragma once

#include <cstdint>
#include <optional>

#include "clocks/online_clock.hpp"
#include "common/timestamp_arena.hpp"
#include "core/sync_system.hpp"
#include "obs/metrics.hpp"
#include "poset/streaming_closure.hpp"
#include "trace/trace_io.hpp"

/// \file streaming_index.hpp
/// Incremental precedence queries over a trace still being ingested
/// (docs/STREAMING.md).
///
/// `PrecedenceIndex` (precedence_index.hpp) answers a ≺ b against a
/// fully materialized `TimestampedTrace` — every stamp resident forever.
/// `IncrementalPrecedenceIndex` is its streaming refactor: events arrive
/// one at a time (from a `StreamingTraceReader`, a live protocol, or a
/// generator), each message is stamped on arrival by the online Fig. 5
/// engine into a `WindowedTimestampArena`, and queries are answered
/// mid-ingestion:
///
///  - both stamps resident in the window → the O(width) `ts::less`
///    vector fast path, bit-identical to `TimestampedTrace::precedes`
///    (same engine, same replay order, same slots);
///  - either stamp retired → fall back to the spilled closure chunks of
///    an attached `StreamingClosure`, which never forgets a row;
///  - no closure attached → a typed `RetiredStampError`, never a wrong
///    answer.
///
/// The window bounds stamp residency to `window` rows of width() words —
/// the resident-rows gauge tracks it — so a 10M-message ingestion runs
/// in flat memory.

namespace syncts {

struct StreamingIndexOptions {
    /// Resident stamps (ring slots) — the memory/retirement knob.
    std::size_t window = 1 << 16;

    /// Optional out-of-core closure fed one ingest per message; answers
    /// queries the window no longer can. Owned by the caller.
    StreamingClosure* closure = nullptr;

    /// Optional slab recycling for the window's backing arena.
    SlabPool* pool = nullptr;

    obs::MetricsRegistry* metrics = nullptr;
};

class IncrementalPrecedenceIndex {
public:
    explicit IncrementalPrecedenceIndex(
        std::shared_ptr<const EdgeDecomposition> decomposition,
        StreamingIndexOptions options = {});

    explicit IncrementalPrecedenceIndex(const SyncSystem& system,
                                        StreamingIndexOptions options = {});

    /// Stamps the next message (commit order) and returns its id.
    MessageId ingest_message(ProcessId sender, ProcessId receiver);

    /// Replays an internal event (keeps engine replay parity with the
    /// batch `stamp_messages` driver; the online family ignores it).
    void ingest_internal(ProcessId process);

    /// Pulls `reader` to exhaustion (or `max_events`), ingesting every
    /// record. Returns the number of events consumed.
    std::uint64_t ingest(StreamingTraceReader& reader,
                         std::uint64_t max_events = UINT64_MAX);

    /// Messages ingested so far.
    std::size_t size() const noexcept { return ingested_; }
    std::size_t width() const noexcept { return window_.width(); }

    /// Oldest message id still answerable by the vector fast path.
    std::uint64_t resident_frontier() const noexcept {
        return window_.frontier();
    }
    bool is_resident(MessageId m) const noexcept {
        return window_.is_resident(m);
    }

    /// a ≺ b in the message poset, answerable mid-ingestion. Fast path
    /// when both stamps are resident; closure fallback when retired;
    /// RetiredStampError when neither can answer.
    bool precedes(MessageId a, MessageId b) const;

    /// Stamp of a resident message (RetiredStampError otherwise).
    std::span<const std::uint64_t> stamp_span(MessageId m) const {
        return window_.span(m);
    }

    /// Registers metric families (docs/OBSERVABILITY.md):
    ///   stream_ingested        messages stamped
    ///   stream_fastpath_queries / stream_spill_queries
    ///   window_resident_rows   gauge (via the windowed arena)
    void attach_metrics(obs::MetricsRegistry& registry);

private:
    OnlineTimestamper engine_;
    /// One-slot scratch arena the engine stamps into; the slot is then
    /// pushed into the window (the engine API allocates arena slots, the
    /// window recycles them).
    TimestampArena scratch_;
    WindowedTimestampArena window_;
    StreamingClosure* closure_ = nullptr;
    std::size_t ingested_ = 0;

    obs::Counter* metric_ingested_ = nullptr;
    mutable obs::Counter* metric_fastpath_ = nullptr;
    mutable obs::Counter* metric_spill_ = nullptr;
};

}  // namespace syncts
