#include "core/multi_epoch_trace.hpp"

#include <algorithm>
#include <numeric>
#include <string>
#include <utility>

#include "common/check.hpp"
#include "common/ts_kernels.hpp"
#include "trace/ground_truth.hpp"

namespace syncts {

MultiEpochTrace::MultiEpochTrace(std::vector<TimestampedTrace> segments)
    : segments_(std::move(segments)) {
    SYNCTS_REQUIRE(!segments_.empty(), "need at least one epoch segment");
    offsets_.reserve(segments_.size() + 1);
    offsets_.push_back(0);
    for (const TimestampedTrace& segment : segments_) {
        offsets_.push_back(offsets_.back() + segment.num_messages());
    }
}

MultiEpochTrace MultiEpochTrace::from_run(const ReconfigurableRunResult& run) {
    std::vector<TimestampedTrace> segments;
    segments.reserve(run.segments.size());
    for (const EpochSegmentResult& segment : run.segments) {
        segments.emplace_back(segment.computation, segment.message_stamps);
    }
    return MultiEpochTrace(std::move(segments));
}

const TimestampedTrace& MultiEpochTrace::segment(EpochId epoch) const {
    SYNCTS_REQUIRE(epoch < segments_.size(), "epoch out of range");
    return segments_[epoch];
}

EpochId MultiEpochTrace::epoch_of(GlobalMessageId m) const {
    SYNCTS_REQUIRE(m < num_messages(), "message id out of range");
    // First offset strictly above m belongs to the next epoch.
    const auto it = std::upper_bound(offsets_.begin(), offsets_.end(), m);
    return static_cast<EpochId>(it - offsets_.begin() - 1);
}

MessageId MultiEpochTrace::local_of(GlobalMessageId m) const {
    return static_cast<MessageId>(m - offsets_[epoch_of(m)]);
}

GlobalMessageId MultiEpochTrace::global_of(EpochId epoch,
                                           MessageId local) const {
    SYNCTS_REQUIRE(epoch < segments_.size(), "epoch out of range");
    SYNCTS_REQUIRE(local < segments_[epoch].num_messages(),
                   "message id out of range for its epoch");
    return offsets_[epoch] + local;
}

bool MultiEpochTrace::precedes(GlobalMessageId m1, GlobalMessageId m2) const {
    const EpochId e1 = epoch_of(m1);
    const EpochId e2 = epoch_of(m2);
    if (e1 != e2) return e1 < e2;  // barrier rule
    return segments_[e1].precedes(static_cast<MessageId>(m1 - offsets_[e1]),
                                  static_cast<MessageId>(m2 - offsets_[e1]));
}

bool MultiEpochTrace::concurrent(GlobalMessageId m1,
                                 GlobalMessageId m2) const {
    const EpochId e1 = epoch_of(m1);
    if (e1 != epoch_of(m2)) return false;  // cross-epoch is always ordered
    return segments_[e1].concurrent(static_cast<MessageId>(m1 - offsets_[e1]),
                                    static_cast<MessageId>(m2 - offsets_[e1]));
}

Poset MultiEpochTrace::ground_truth_poset(
    const AnalysisOptions& options) const {
    Poset truth(num_messages());
    bool have_previous = false;
    std::vector<std::size_t> previous_maximal;  // global ids
    for (EpochId e = 0; e < segments_.size(); ++e) {
        const SyncComputation& computation = segments_[e].computation();
        const std::size_t offset = offsets_[e];
        // Per-process ▷ chains — the same generators message_poset uses,
        // shifted into the global id space.
        for (ProcessId p = 0; p < computation.num_processes(); ++p) {
            const auto messages = computation.process_messages(p);
            for (std::size_t i = 0; i + 1 < messages.size(); ++i) {
                truth.add_relation(offset + messages[i],
                                   offset + messages[i + 1]);
            }
        }
        if (computation.num_messages() == 0) continue;
        // Barrier generators: maximal(previous non-empty epoch) ×
        // minimal(this epoch). Closure extends them to all-times-all —
        // every message sits below some maximal and above some minimal.
        const Poset local = message_poset(computation, options);
        if (have_previous) {
            for (const std::size_t from : previous_maximal) {
                for (const std::size_t to : local.minimal_elements()) {
                    truth.add_relation(from, offset + to);
                }
            }
        }
        previous_maximal.clear();
        for (const std::size_t m : local.maximal_elements()) {
            previous_maximal.push_back(offset + m);
        }
        have_previous = true;
    }
    truth.close(options);
    return truth;
}

std::size_t MultiEpochTrace::verify_against_ground_truth(
    const AnalysisOptions& options) const {
    const Poset truth = ground_truth_poset(options);
    const std::size_t n = num_messages();
    // Pure per-row sweep, reduced in chunk order — bit-identical to the
    // serial scan at any thread count (docs/PARALLELISM.md).
    const auto count_rows = [&](std::size_t begin, std::size_t end) {
        std::size_t mismatches = 0;
        for (std::size_t a = begin; a < end; ++a) {
            for (std::size_t b = 0; b < n; ++b) {
                if (a == b) continue;
                if (truth.less(a, b) != precedes(a, b)) ++mismatches;
            }
        }
        return mismatches;
    };
    if (n == 0) return 0;
    if (!options.parallel()) return count_rows(std::size_t{0}, n);
    PoolLease lease(options);
    const std::vector<std::size_t> partial =
        lease.pool().map_chunks<std::size_t>(
            n, 0, [&](std::size_t begin, std::size_t end) {
                return count_rows(begin, end);
            });
    return std::accumulate(partial.begin(), partial.end(), std::size_t{0});
}

MultiEpochPrecedenceIndex::MultiEpochPrecedenceIndex(
    const MultiEpochTrace& trace, std::size_t shards)
    : trace_(&trace) {
    indexes_.reserve(trace.num_epochs());
    for (EpochId e = 0; e < trace.num_epochs(); ++e) {
        indexes_.push_back(
            std::make_unique<PrecedenceIndex>(trace.segment(e), shards));
    }
}

bool MultiEpochPrecedenceIndex::precedes(GlobalMessageId m1,
                                         GlobalMessageId m2) const {
    const EpochId e1 = trace_->epoch_of(m1);
    const EpochId e2 = trace_->epoch_of(m2);
    if (e1 != e2) {
        cross_epoch_.fetch_add(1, std::memory_order_relaxed);
        if (metric_cross_epoch_ != nullptr) metric_cross_epoch_->inc();
        return e1 < e2;
    }
    return indexes_[e1]->precedes(trace_->local_of(m1),
                                 trace_->local_of(m2));
}

std::uint64_t MultiEpochPrecedenceIndex::memo_hits() const noexcept {
    std::uint64_t total = 0;
    for (const auto& index : indexes_) total += index->memo_hits();
    return total;
}

std::uint64_t MultiEpochPrecedenceIndex::memo_misses() const noexcept {
    std::uint64_t total = 0;
    for (const auto& index : indexes_) total += index->memo_misses();
    return total;
}

void MultiEpochPrecedenceIndex::attach_metrics(obs::MetricsRegistry& registry,
                                               std::string_view prefix) {
    for (const auto& index : indexes_) {
        index->attach_metrics(registry, prefix);
    }
    metric_cross_epoch_ =
        &registry.counter(std::string(prefix) + "_cross_epoch");
}

void MultiEpochPrecedenceIndex::detach_metrics() noexcept {
    for (const auto& index : indexes_) index->detach_metrics();
    metric_cross_epoch_ = nullptr;
}

}  // namespace syncts
