#include "core/cuts.hpp"

#include <algorithm>

#include "common/check.hpp"

namespace syncts {

bool is_consistent_cut(const TimestampedTrace& trace,
                       const std::vector<MessageId>& cut) {
    std::vector<char> inside(trace.num_messages(), 0);
    for (const MessageId m : cut) {
        SYNCTS_REQUIRE(m < trace.num_messages(), "message id out of range");
        inside[m] = 1;
    }
    for (const MessageId member : cut) {
        for (MessageId other = 0; other < trace.num_messages(); ++other) {
            if (!inside[other] && trace.precedes(other, member)) {
                return false;
            }
        }
    }
    return true;
}

std::vector<MessageId> downward_closure(const TimestampedTrace& trace,
                                        const std::vector<MessageId>& seeds) {
    std::vector<char> inside(trace.num_messages(), 0);
    for (const MessageId seed : seeds) {
        SYNCTS_REQUIRE(seed < trace.num_messages(),
                       "message id out of range");
        inside[seed] = 1;
        for (MessageId m = 0; m < trace.num_messages(); ++m) {
            if (trace.precedes(m, seed)) inside[m] = 1;
        }
    }
    std::vector<MessageId> result;
    for (MessageId m = 0; m < trace.num_messages(); ++m) {
        if (inside[m]) result.push_back(m);
    }
    return result;
}

std::vector<MessageId> recovery_line(const TimestampedTrace& trace,
                                     const std::vector<MessageId>& lost) {
    std::vector<char> excluded(trace.num_messages(), 0);
    for (const MessageId seed : lost) {
        SYNCTS_REQUIRE(seed < trace.num_messages(),
                       "message id out of range");
        excluded[seed] = 1;
        for (MessageId m = 0; m < trace.num_messages(); ++m) {
            if (trace.precedes(seed, m)) excluded[m] = 1;
        }
    }
    std::vector<MessageId> result;
    for (MessageId m = 0; m < trace.num_messages(); ++m) {
        if (!excluded[m]) result.push_back(m);
    }
    // The complement of an upward-closed set is downward closed, so this
    // is consistent by construction; assert the invariant anyway.
    SYNCTS_ENSURE(is_consistent_cut(trace, result),
                  "recovery line is not a consistent cut");
    return result;
}

std::vector<MessageId> cut_frontier(const TimestampedTrace& trace,
                                    const std::vector<MessageId>& cut) {
    SYNCTS_REQUIRE(is_consistent_cut(trace, cut),
                   "frontier of an inconsistent cut is meaningless");
    std::vector<MessageId> result;
    for (const MessageId candidate : cut) {
        const bool maximal = std::ranges::none_of(cut, [&](MessageId other) {
            return other != candidate && trace.precedes(candidate, other);
        });
        if (maximal) result.push_back(candidate);
    }
    std::ranges::sort(result);
    return result;
}

}  // namespace syncts
