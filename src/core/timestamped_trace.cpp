#include "core/timestamped_trace.hpp"

#include <sstream>
#include <utility>

#include "common/check.hpp"
#include "trace/ground_truth.hpp"

namespace syncts {

TimestampedTrace::TimestampedTrace(SyncComputation computation,
                                   std::vector<VectorTimestamp> message_stamps)
    : computation_(std::move(computation)), stamps_(std::move(message_stamps)) {
    SYNCTS_REQUIRE(stamps_.size() == computation_.num_messages(),
                   "one timestamp per message required");
}

const VectorTimestamp& TimestampedTrace::timestamp(MessageId m) const {
    SYNCTS_REQUIRE(m < stamps_.size(), "message id out of range");
    return stamps_[m];
}

bool TimestampedTrace::precedes(MessageId m1, MessageId m2) const {
    return timestamp(m1).less(timestamp(m2));
}

bool TimestampedTrace::concurrent(MessageId m1, MessageId m2) const {
    return m1 != m2 && timestamp(m1).concurrent_with(timestamp(m2));
}

std::vector<MessageId> TimestampedTrace::concurrent_with(MessageId m) const {
    std::vector<MessageId> result;
    for (MessageId other = 0; other < stamps_.size(); ++other) {
        if (other != m && concurrent(m, other)) result.push_back(other);
    }
    return result;
}

std::vector<MessageId> TimestampedTrace::minimal_messages() const {
    std::vector<MessageId> result;
    for (MessageId m = 0; m < stamps_.size(); ++m) {
        bool minimal = true;
        for (MessageId other = 0; other < stamps_.size() && minimal; ++other) {
            if (other != m && precedes(other, m)) minimal = false;
        }
        if (minimal) result.push_back(m);
    }
    return result;
}

std::vector<MessageId> TimestampedTrace::maximal_messages() const {
    std::vector<MessageId> result;
    for (MessageId m = 0; m < stamps_.size(); ++m) {
        bool maximal = true;
        for (MessageId other = 0; other < stamps_.size() && maximal; ++other) {
            if (other != m && precedes(m, other)) maximal = false;
        }
        if (maximal) result.push_back(m);
    }
    return result;
}

std::size_t TimestampedTrace::concurrent_pair_count() const {
    std::size_t count = 0;
    for (MessageId a = 0; a < stamps_.size(); ++a) {
        for (MessageId b = a + 1; b < stamps_.size(); ++b) {
            if (concurrent(a, b)) ++count;
        }
    }
    return count;
}

std::size_t TimestampedTrace::verify_against_ground_truth() const {
    const Poset truth = message_poset(computation_);
    std::size_t mismatches = 0;
    for (MessageId a = 0; a < stamps_.size(); ++a) {
        for (MessageId b = 0; b < stamps_.size(); ++b) {
            if (a == b) continue;
            if (truth.less(a, b) != precedes(a, b)) ++mismatches;
        }
    }
    return mismatches;
}

std::string TimestampedTrace::to_string() const {
    std::ostringstream os;
    for (MessageId m = 0; m < stamps_.size(); ++m) {
        const SyncMessage& msg = computation_.message(m);
        os << 'm' << (m + 1) << ": P" << (msg.sender + 1) << " -> P"
           << (msg.receiver + 1) << "  " << stamps_[m].to_string() << '\n';
    }
    return os.str();
}

}  // namespace syncts
