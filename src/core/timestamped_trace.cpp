#include "core/timestamped_trace.hpp"

#include <numeric>
#include <optional>
#include <sstream>
#include <utility>

#include "common/check.hpp"
#include "common/ts_kernels.hpp"
#include "core/causality.hpp"
#include "poset/streaming_closure.hpp"
#include "trace/ground_truth.hpp"

namespace syncts {

namespace {

TimestampArena pack_stamps(const std::vector<VectorTimestamp>& stamps) {
    const std::size_t width = stamps.empty() ? 0 : stamps.front().width();
    TimestampArena arena(width, stamps.size());
    for (const VectorTimestamp& stamp : stamps) {
        SYNCTS_REQUIRE(stamp.width() == width,
                       "all message timestamps must share one width");
        arena.allocate(stamp.components());
    }
    return arena;
}

}  // namespace

TimestampedTrace::TimestampedTrace(SyncComputation computation,
                                   TimestampArena stamps)
    : computation_(std::move(computation)), stamps_(std::move(stamps)) {
    SYNCTS_REQUIRE(stamps_.size() == computation_.num_messages(),
                   "one timestamp per message required");
}

TimestampedTrace::TimestampedTrace(SyncComputation computation,
                                   std::vector<VectorTimestamp> message_stamps)
    : TimestampedTrace(std::move(computation), pack_stamps(message_stamps)) {}

VectorTimestamp TimestampedTrace::timestamp(MessageId m) const {
    return VectorTimestamp(stamps_.span(m));
}

bool TimestampedTrace::precedes(MessageId m1, MessageId m2) const {
    return ts::less(stamps_.span(m1), stamps_.span(m2));
}

bool TimestampedTrace::concurrent(MessageId m1, MessageId m2) const {
    return m1 != m2 && ts::concurrent(stamps_.span(m1), stamps_.span(m2));
}

std::span<const std::uint8_t> TimestampedTrace::relate_row(
    MessageId m) const {
    relate_scratch_.resize(stamps_.size());
    relate_many(stamps_, stamps_.span(m), relate_scratch_);
    return relate_scratch_;
}

std::vector<MessageId> TimestampedTrace::concurrent_with(MessageId m) const {
    const std::span<const std::uint8_t> flags = relate_row(m);
    std::vector<MessageId> result;
    for (MessageId other = 0; other < flags.size(); ++other) {
        if (other != m && flags[other] == 0) result.push_back(other);
    }
    return result;
}

std::vector<MessageId> TimestampedTrace::successors_of(MessageId m) const {
    // probe = stamp(m); kProbeLeq alone ⇒ stamp(m) < stamp(other).
    const std::span<const std::uint8_t> flags = relate_row(m);
    std::vector<MessageId> result;
    for (MessageId other = 0; other < flags.size(); ++other) {
        if (flags[other] == ts::kProbeLeq) result.push_back(other);
    }
    return result;
}

std::vector<MessageId> TimestampedTrace::minimal_messages() const {
    std::vector<MessageId> result;
    for (MessageId m = 0; m < stamps_.size(); ++m) {
        // Minimal ⇔ no other stamp is strictly below m's (flag kRowLeq
        // alone).
        const std::span<const std::uint8_t> flags = relate_row(m);
        bool minimal = true;
        for (MessageId other = 0; other < flags.size() && minimal; ++other) {
            if (other != m && flags[other] == ts::kRowLeq) minimal = false;
        }
        if (minimal) result.push_back(m);
    }
    return result;
}

std::vector<MessageId> TimestampedTrace::maximal_messages() const {
    std::vector<MessageId> result;
    for (MessageId m = 0; m < stamps_.size(); ++m) {
        const std::span<const std::uint8_t> flags = relate_row(m);
        bool maximal = true;
        for (MessageId other = 0; other < flags.size() && maximal; ++other) {
            if (other != m && flags[other] == ts::kProbeLeq) maximal = false;
        }
        if (maximal) result.push_back(m);
    }
    return result;
}

std::size_t TimestampedTrace::concurrent_pair_count() const {
    std::size_t count = 0;
    for (MessageId m = 0; m < stamps_.size(); ++m) {
        const std::span<const std::uint8_t> flags = relate_row(m);
        for (MessageId other = m + 1; other < flags.size(); ++other) {
            if (flags[other] == 0) ++count;
        }
    }
    return count;
}

std::size_t TimestampedTrace::verify_against_ground_truth(
    const AnalysisOptions& options) const {
    // Ground-truth closure and the O(M²) pair sweep both run through the
    // analysis options (serial by default). encoding_mismatches compares
    // truth.less(a, b) against ts::less of the arena rows — exactly the
    // precedes() predicate — with sharded row ranges reduced in order.
    const Poset truth = message_poset(computation_, options);
    return encoding_mismatches(truth, stamps_, options);
}

std::size_t TimestampedTrace::verify_against_ground_truth(
    const StreamedVerifyOptions& options) const {
    const std::size_t n = num_messages();
    if (n < options.min_streamed_messages) {
        // Small trace: the batch bit matrix is cheaper than chunking and
        // bit-identical, so it stays the default below the threshold.
        return verify_against_ground_truth(options.analysis);
    }
    SYNCTS_REQUIRE(options.chunk_rows > 0, "chunk_rows must be positive");

    StreamingClosureOptions closure_options;
    closure_options.chunk_rows = options.chunk_rows;
    closure_options.cached_chunks = 1;
    closure_options.spill = options.spill;
    closure_options.metrics = options.metrics;
    StreamingClosure closure(computation_.num_processes(), n, closure_options);
    for (const SyncMessage& m : computation_.messages()) {
        closure.ingest(m.sender, m.receiver);
    }
    closure.finish();

    // Row-major sweep, one chunk window at a time. Window row b settles
    // every ordered pair touching b and a smaller id: (a, b) against the
    // truth bit, and (b, a) — impossible in commit order, so any
    // ts::less hit is a mismatch. Each ordered pair is counted exactly
    // once, so the total equals the batch a-outer/b-inner sweep; the sum
    // is independent of grouping, so it is also thread-count invariant.
    std::size_t mismatches = 0;
    std::optional<PoolLease> lease;
    if (options.analysis.parallel()) lease.emplace(options.analysis);
    std::vector<std::pair<MessageId, std::span<const std::uint64_t>>> window;
    window.reserve(options.chunk_rows);
    const auto flush = [&]() {
        if (window.empty()) return;
        const auto count_rows = [&](std::size_t begin, std::size_t end) {
            std::size_t count = 0;
            for (std::size_t i = begin; i < end; ++i) {
                const MessageId b = window[i].first;
                const std::span<const std::uint64_t> words = window[i].second;
                const auto stamp_b = stamps_.span(b);
                for (MessageId a = 0; a < b; ++a) {
                    const bool truth = (words[a / 64] >> (a % 64)) & 1;
                    const auto stamp_a = stamps_.span(a);
                    if (truth != ts::less(stamp_a, stamp_b)) ++count;
                    if (ts::less(stamp_b, stamp_a)) ++count;
                }
            }
            return count;
        };
        if (!lease.has_value()) {
            mismatches += count_rows(0, window.size());
        } else {
            const std::vector<std::size_t> partial =
                lease->pool().map_chunks<std::size_t>(window.size(), 0,
                                                      count_rows);
            mismatches += std::accumulate(partial.begin(), partial.end(),
                                          std::size_t{0});
        }
        window.clear();
    };
    // The window flushes exactly at chunk boundaries (same chunk_rows),
    // so every collected span points into the currently loaded chunk;
    // the tail flush runs before any further closure access, while the
    // last chunk is still cached.
    closure.for_each_row(
        0, static_cast<MessageId>(n),
        [&](MessageId m, std::span<const std::uint64_t> words) {
            window.emplace_back(m, words);
            if (window.size() == options.chunk_rows) flush();
        });
    flush();
    return mismatches;
}

std::string TimestampedTrace::to_string() const {
    std::ostringstream os;
    for (MessageId m = 0; m < stamps_.size(); ++m) {
        const SyncMessage& msg = computation_.message(m);
        os << 'm' << (m + 1) << ": P" << (msg.sender + 1) << " -> P"
           << (msg.receiver + 1) << "  " << timestamp(m).to_string() << '\n';
    }
    return os.str();
}

}  // namespace syncts
