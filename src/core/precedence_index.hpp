#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string_view>
#include <unordered_map>

#include "core/timestamped_trace.hpp"
#include "obs/metrics.hpp"

/// \file precedence_index.hpp
/// Repeated-query front end over a TimestampedTrace: answers m1 ↦ m2 in
/// O(width) vector-compare on first sight and O(1) from a memo on every
/// repeat. Monitoring workloads (orphan tracking, predicate watchers,
/// debugger round-trips) hammer the same hot pairs — the memo turns the
/// per-query cost from O(width) into a hash probe.
///
/// The memo is sharded: pair keys hash onto independently locked shards,
/// so pool workers (sharded verification, syncts_stats --queries) can
/// query concurrently with at most 1/shards expected contention. Answers
/// are pure functions of the trace, so cache races are benign — two
/// threads may both miss and both insert the same value.

namespace syncts {

class PrecedenceIndex {
public:
    /// Builds the index over `trace`, which must outlive it. `shards`
    /// must be a power of two; 0 picks 16.
    explicit PrecedenceIndex(const TimestampedTrace& trace,
                             std::size_t shards = 0);

    /// m1 ↦ m2, memoized. Thread-safe.
    bool precedes(MessageId m1, MessageId m2) const;

    /// m1 ‖ m2 (distinct, neither precedes the other), via two memoized
    /// lookups.
    bool concurrent(MessageId m1, MessageId m2) const {
        return m1 != m2 && !precedes(m1, m2) && !precedes(m2, m1);
    }

    const TimestampedTrace& trace() const noexcept { return *trace_; }
    std::size_t num_messages() const noexcept {
        return trace_->num_messages();
    }
    std::size_t num_shards() const noexcept { return shards_count_; }

    /// Memoized pairs currently cached (sums shard sizes; takes the shard
    /// locks, so don't call it on a hot path).
    std::size_t memo_entries() const;

    std::uint64_t memo_hits() const noexcept {
        return hits_.load(std::memory_order_relaxed);
    }
    std::uint64_t memo_misses() const noexcept {
        return misses_.load(std::memory_order_relaxed);
    }

    /// Registers `<prefix>_memo_hits` / `<prefix>_memo_misses` and starts
    /// mirroring every lookup into them. The registry must outlive the
    /// index.
    void attach_metrics(obs::MetricsRegistry& registry,
                        std::string_view prefix = "query");
    void detach_metrics() noexcept {
        metric_hits_ = nullptr;
        metric_misses_ = nullptr;
    }

private:
    struct Shard {
        mutable std::mutex mu;
        std::unordered_map<std::uint64_t, bool> memo;
    };

    const TimestampedTrace* trace_;
    std::size_t shards_count_;
    std::unique_ptr<Shard[]> shards_;
    mutable std::atomic<std::uint64_t> hits_{0};
    mutable std::atomic<std::uint64_t> misses_{0};
    obs::Counter* metric_hits_ = nullptr;
    obs::Counter* metric_misses_ = nullptr;
};

}  // namespace syncts
