#include "core/sync_system.hpp"

#include <utility>

#include "common/check.hpp"
#include "core/precedence_index.hpp"
#include "core/timestamped_trace.hpp"
#include "decomp/cover_decomposer.hpp"
#include "decomp/greedy_decomposer.hpp"

namespace syncts {

namespace {

EdgeDecomposition make_decomposition(const Graph& topology,
                                     DecompositionStrategy strategy) {
    switch (strategy) {
        case DecompositionStrategy::automatic:
            return default_decomposition(topology);
        case DecompositionStrategy::greedy:
            return greedy_edge_decomposition(topology);
        case DecompositionStrategy::approx_cover:
            return approx_cover_decomposition(topology);
        case DecompositionStrategy::exact_cover:
            return exact_cover_decomposition(topology);
    }
    throw std::invalid_argument("unknown decomposition strategy");
}

}  // namespace

SyncSystem::SyncSystem(Graph topology, DecompositionStrategy strategy)
    : decomposition_(std::make_shared<const EdgeDecomposition>(
          make_decomposition(topology, strategy))) {}

SyncSystem::SyncSystem(EdgeDecomposition decomposition)
    : decomposition_(std::make_shared<const EdgeDecomposition>(
          std::move(decomposition))) {
    SYNCTS_REQUIRE(decomposition_->complete(),
                   "decomposition must cover every channel");
}

std::size_t SyncSystem::num_processes() const noexcept {
    return decomposition_->graph().num_vertices();
}

OnlineTimestamper SyncSystem::make_timestamper() const {
    return OnlineTimestamper(decomposition_);
}

std::unique_ptr<ClockEngine> SyncSystem::make_engine(
    ClockFamily family) const {
    return make_clock_engine(family, decomposition_);
}

TimestampedNetwork SyncSystem::make_network() const {
    return TimestampedNetwork(decomposition_);
}

std::pair<SyncSystem, ProcessId> SyncSystem::with_leaf_process(
    std::span<const GroupId> star_groups) const {
    EdgeDecomposition grown = *decomposition_;
    const ProcessId newcomer = grown.add_leaf_process(star_groups);
    return {SyncSystem(std::move(grown)), newcomer};
}

TimestampedTrace SyncSystem::analyze(const SyncComputation& computation) const {
    SYNCTS_REQUIRE(
        computation.num_processes() == num_processes(),
        "computation and system disagree on the number of processes");
    OnlineTimestamper timestamper = make_timestamper();
    // Replay straight into the trace's arena: slot m = message m (the
    // online family stamps messages only, in message order).
    TimestampArena arena(timestamper.width(), computation.num_messages());
    timestamper.stamp_messages(computation, arena);
    return TimestampedTrace(computation, std::move(arena));
}

PrecedenceIndex SyncSystem::make_precedence_index(
    const TimestampedTrace& trace) const {
    SYNCTS_REQUIRE(trace.width() == width(),
                   "trace and system disagree on the timestamp width");
    return PrecedenceIndex(trace);
}

}  // namespace syncts
