#pragma once

#include <cstddef>
#include <optional>
#include <vector>

#include "clocks/event_timestamp.hpp"

/// \file predicate_detection.hpp
/// Weak conjunctive predicate detection (Garg & Waldecker) over Section 5
/// event timestamps — the "global property evaluation" application from
/// the paper's introduction.
///
/// Each observed process contributes the ordered list of its events at
/// which its local predicate held (e.g. "sensor in alarm state"). The
/// question *possibly(φ1 ∧ ... ∧ φk)* — could all local predicates have
/// held simultaneously in some consistent global state? — is equivalent to
/// finding one candidate event per process such that the chosen events are
/// pairwise concurrent.
///
/// Algorithm: keep a cursor per process; while some pair (i, j) has
/// cursor_i's event happened-before cursor_j's, advance cursor i (its
/// event can never pair with cursor_j's or any later event of j... it can
/// never be part of a pairwise-concurrent selection that includes j's
/// cursor or anything after it — the classic argument). Terminates with
/// the first (earliest) witness cut or with an exhausted list. All order
/// tests are O(d) tuple comparisons.

namespace syncts {

struct WeakConjunctiveResult {
    /// True when a pairwise-concurrent selection exists.
    bool detected = false;

    /// When detected: for each candidate list, the index of the chosen
    /// event (the earliest witness cut).
    std::vector<std::size_t> witness;
};

/// Detects possibly(φ) given per-process candidate event lists. Each inner
/// list must be in process order (as produced by a per-process journal).
/// Empty candidate lists make detection trivially impossible; an empty
/// outer list detects trivially (empty conjunction).
WeakConjunctiveResult detect_weak_conjunctive(
    const std::vector<std::vector<EventTimestamp>>& candidates);

}  // namespace syncts
