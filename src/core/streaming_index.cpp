#include "core/streaming_index.hpp"

#include "common/check.hpp"
#include "common/ts_kernels.hpp"

namespace syncts {

IncrementalPrecedenceIndex::IncrementalPrecedenceIndex(
    std::shared_ptr<const EdgeDecomposition> decomposition,
    StreamingIndexOptions options)
    : engine_(decomposition),
      scratch_(engine_.width(), 1),
      window_(engine_.width(), options.window == 0 ? 1 : options.window,
              options.pool),
      closure_(options.closure) {
    if (options.metrics != nullptr) attach_metrics(*options.metrics);
}

IncrementalPrecedenceIndex::IncrementalPrecedenceIndex(
    const SyncSystem& system, StreamingIndexOptions options)
    : IncrementalPrecedenceIndex(system.decomposition_ptr(),
                                 std::move(options)) {}

void IncrementalPrecedenceIndex::attach_metrics(
    obs::MetricsRegistry& registry) {
    metric_ingested_ = &registry.counter("stream_ingested");
    metric_fastpath_ = &registry.counter("stream_fastpath_queries");
    metric_spill_ = &registry.counter("stream_spill_queries");
    window_.attach_metrics(registry, "window");
}

MessageId IncrementalPrecedenceIndex::ingest_message(ProcessId sender,
                                                     ProcessId receiver) {
    SYNCTS_REQUIRE(ingested_ < kNoMessage, "MessageId space exhausted");
    scratch_.clear();
    const TsHandle h = engine_.timestamp_message(sender, receiver, scratch_);
    const std::uint64_t id = window_.push(scratch_.span(h));
    SYNCTS_ENSURE(id == ingested_, "window ids must track message ids");
    if (closure_ != nullptr) {
        const MessageId closure_id = closure_->ingest(sender, receiver);
        SYNCTS_ENSURE(closure_id == id, "closure ids must track message ids");
    }
    ++ingested_;
    if (metric_ingested_ != nullptr) metric_ingested_->inc();
    return static_cast<MessageId>(id);
}

void IncrementalPrecedenceIndex::ingest_internal(ProcessId process) {
    engine_.on_internal(process, {});
}

std::uint64_t IncrementalPrecedenceIndex::ingest(StreamingTraceReader& reader,
                                                 std::uint64_t max_events) {
    std::uint64_t consumed = 0;
    while (consumed < max_events) {
        const std::optional<TraceRecord> record = reader.next();
        if (!record.has_value()) break;
        if (record->kind == TraceRecord::Kind::message) {
            ingest_message(record->a, record->b);
        } else {
            ingest_internal(record->a);
        }
        ++consumed;
    }
    return consumed;
}

bool IncrementalPrecedenceIndex::precedes(MessageId a, MessageId b) const {
    SYNCTS_REQUIRE(a < ingested_ && b < ingested_,
                   "message id not ingested yet");
    if (a == b) return false;
    if (window_.is_resident(a) && window_.is_resident(b)) {
        if (metric_fastpath_ != nullptr) metric_fastpath_->inc();
        return ts::less(window_.span(a), window_.span(b));
    }
    if (closure_ != nullptr) {
        if (metric_spill_ != nullptr) metric_spill_->inc();
        return closure_->less(a, b);
    }
    throw RetiredStampError(window_.is_resident(a) ? b : a,
                            window_.frontier(), window_.next());
}

}  // namespace syncts
