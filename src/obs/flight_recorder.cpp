#include "obs/flight_recorder.hpp"

#include <cstdio>
#include <stdexcept>
#include <utility>

#include "common/checksum.hpp"

namespace syncts::obs {

const char* to_string(PostmortemReason reason) noexcept {
    switch (reason) {
        case PostmortemReason::crash: return "crash";
        case PostmortemReason::error: return "error";
        case PostmortemReason::manual: return "manual";
    }
    return "unknown";
}

namespace {

constexpr std::uint8_t kMagic[4] = {'S', 'Y', 'F', 'R'};
constexpr std::uint32_t kVersion = 1;
/// Bound on metric-name lengths: generous for real registries, small
/// enough that a fuzzed length prefix cannot force a giant allocation.
constexpr std::uint32_t kMaxNameBytes = 1u << 12;
constexpr std::uint64_t kMaxTableEntries = 1u << 20;

std::uint64_t fnv1a(const std::uint8_t* data, std::size_t size) {
    return common::fnv1a64({data, size});
}

void put_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
    for (int i = 0; i < 4; ++i) {
        out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
    }
}

void put_u64(std::vector<std::uint8_t>& out, std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
        out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
    }
}

void put_string(std::vector<std::uint8_t>& out, const std::string& s) {
    put_u32(out, static_cast<std::uint32_t>(s.size()));
    out.insert(out.end(), s.begin(), s.end());
}

/// Strict bounds-checked little-endian cursor; every read throws
/// PostmortemError::truncated instead of walking off the buffer.
class Cursor {
public:
    explicit Cursor(std::span<const std::uint8_t> bytes) : bytes_(bytes) {}

    std::size_t at() const noexcept { return at_; }
    std::size_t remaining() const noexcept { return bytes_.size() - at_; }

    const std::uint8_t* take(std::size_t n) {
        if (remaining() < n) {
            throw PostmortemError(PostmortemError::Code::truncated,
                                  "postmortem truncated");
        }
        const std::uint8_t* p = bytes_.data() + at_;
        at_ += n;
        return p;
    }

    std::uint8_t u8() { return *take(1); }

    std::uint32_t u32() {
        const std::uint8_t* p = take(4);
        std::uint32_t v = 0;
        for (int i = 0; i < 4; ++i) {
            v |= static_cast<std::uint32_t>(p[i]) << (8 * i);
        }
        return v;
    }

    std::uint64_t u64() {
        const std::uint8_t* p = take(8);
        std::uint64_t v = 0;
        for (int i = 0; i < 8; ++i) {
            v |= static_cast<std::uint64_t>(p[i]) << (8 * i);
        }
        return v;
    }

    std::string name() {
        const std::uint32_t len = u32();
        if (len > kMaxNameBytes) {
            throw PostmortemError(PostmortemError::Code::malformed,
                                  "postmortem metric name too long");
        }
        const std::uint8_t* p = take(len);
        return std::string(reinterpret_cast<const char*>(p), len);
    }

private:
    std::span<const std::uint8_t> bytes_;
    std::size_t at_ = 0;
};

std::uint64_t table_count(Cursor& cursor) {
    const std::uint64_t count = cursor.u64();
    // Minimum 12 bytes per entry (empty name + value): a huge forged
    // count cannot pass, so decode never reserves unbounded memory.
    if (count > kMaxTableEntries || count * 12 > cursor.remaining()) {
        throw PostmortemError(PostmortemError::Code::malformed,
                              "postmortem table count implausible");
    }
    return count;
}

}  // namespace

void encode_postmortem_into(const Postmortem& postmortem,
                            std::vector<std::uint8_t>& out) {
    const std::size_t start = out.size();
    out.insert(out.end(), std::begin(kMagic), std::end(kMagic));
    put_u32(out, kVersion);
    out.push_back(static_cast<std::uint8_t>(postmortem.reason));
    put_u32(out, postmortem.process);
    put_u64(out, postmortem.step);
    put_u64(out, postmortem.epoch);
    put_u64(out, postmortem.frontier_epoch);
    put_u64(out, postmortem.wal_lsn);
    put_u64(out, postmortem.virtual_time);
    put_u64(out, postmortem.snapshots);

    put_u64(out, postmortem.metrics.counters.size());
    for (const auto& [name, value] : postmortem.metrics.counters) {
        put_string(out, name);
        put_u64(out, value);
    }
    put_u64(out, postmortem.metrics.gauges.size());
    for (const auto& [name, value] : postmortem.metrics.gauges) {
        put_string(out, name);
        put_u64(out, static_cast<std::uint64_t>(value));
    }
    put_u64(out, postmortem.rates.counters.size());
    for (const auto& [name, value] : postmortem.rates.counters) {
        put_string(out, name);
        put_u64(out, value);
    }
    put_u64(out, postmortem.rates.gauges.size());
    for (const auto& [name, value] : postmortem.rates.gauges) {
        put_string(out, name);
        put_u64(out, static_cast<std::uint64_t>(value));
    }

    put_u64(out, postmortem.events.size());
    for (const TraceEvent& event : postmortem.events) {
        encode_trace_event_into(event, out);
    }

    put_u64(out, fnv1a(out.data() + start, out.size() - start));
}

Postmortem decode_postmortem(std::span<const std::uint8_t> bytes) {
    if (bytes.size() < 4 + 4 + 8) {
        throw PostmortemError(PostmortemError::Code::truncated,
                              "postmortem shorter than its envelope");
    }
    for (std::size_t i = 0; i < 4; ++i) {
        if (bytes[i] != kMagic[i]) {
            throw PostmortemError(PostmortemError::Code::bad_magic,
                                  "not a SYFR postmortem");
        }
    }
    // The checksum covers everything before the trailing 8 bytes; verify
    // first so every later "malformed" is a structural claim about bytes
    // the producer really wrote, not about transit damage.
    const std::size_t body = bytes.size() - 8;
    std::uint64_t stored = 0;
    for (int i = 0; i < 8; ++i) {
        stored |= static_cast<std::uint64_t>(bytes[body + static_cast<std::size_t>(i)])
                  << (8 * i);
    }
    if (fnv1a(bytes.data(), body) != stored) {
        throw PostmortemError(PostmortemError::Code::bad_checksum,
                              "postmortem checksum mismatch");
    }

    Cursor cursor(bytes.subspan(0, body));
    cursor.take(4);  // magic, already checked
    if (cursor.u32() != kVersion) {
        throw PostmortemError(PostmortemError::Code::bad_version,
                              "unsupported postmortem version");
    }

    Postmortem pm;
    const std::uint8_t reason = cursor.u8();
    if (reason < static_cast<std::uint8_t>(PostmortemReason::crash) ||
        reason > static_cast<std::uint8_t>(PostmortemReason::manual)) {
        throw PostmortemError(PostmortemError::Code::malformed,
                              "postmortem reason out of range");
    }
    pm.reason = static_cast<PostmortemReason>(reason);
    pm.process = cursor.u32();
    pm.step = cursor.u64();
    pm.epoch = cursor.u64();
    pm.frontier_epoch = cursor.u64();
    pm.wal_lsn = cursor.u64();
    pm.virtual_time = cursor.u64();
    pm.snapshots = cursor.u64();

    const auto read_counter_table = [&](auto& table) {
        const std::uint64_t count = table_count(cursor);
        for (std::uint64_t i = 0; i < count; ++i) {
            std::string name = cursor.name();
            const std::uint64_t value = cursor.u64();
            if (!table.emplace(std::move(name), value).second) {
                throw PostmortemError(PostmortemError::Code::malformed,
                                      "postmortem duplicate metric name");
            }
        }
    };
    const auto read_gauge_table = [&](auto& table) {
        const std::uint64_t count = table_count(cursor);
        for (std::uint64_t i = 0; i < count; ++i) {
            std::string name = cursor.name();
            const auto value = static_cast<std::int64_t>(cursor.u64());
            if (!table.emplace(std::move(name), value).second) {
                throw PostmortemError(PostmortemError::Code::malformed,
                                      "postmortem duplicate metric name");
            }
        }
    };
    read_counter_table(pm.metrics.counters);
    read_gauge_table(pm.metrics.gauges);
    read_counter_table(pm.rates.counters);
    read_gauge_table(pm.rates.gauges);

    const std::uint64_t events = cursor.u64();
    if (events * kTraceEventBytes != cursor.remaining()) {
        throw PostmortemError(PostmortemError::Code::malformed,
                              "postmortem event count mismatch");
    }
    pm.events.reserve(static_cast<std::size_t>(events));
    for (std::uint64_t i = 0; i < events; ++i) {
        TraceEvent event = decode_trace_event(cursor.take(kTraceEventBytes));
        if (static_cast<std::uint8_t>(event.kind) >
            static_cast<std::uint8_t>(TraceEventKind::bsched_defer)) {
            throw PostmortemError(PostmortemError::Code::malformed,
                                  "postmortem event kind out of range");
        }
        pm.events.push_back(event);
    }
    if (cursor.remaining() != 0) {
        throw PostmortemError(PostmortemError::Code::trailing_bytes,
                              "postmortem has trailing bytes");
    }
    return pm;
}

FlightRecorder::FlightRecorder(std::size_t capacity,
                               std::uint64_t snapshot_interval)
    : interval_(snapshot_interval) {
    if (capacity == 0) {
        throw std::invalid_argument("flight recorder capacity must be >= 1");
    }
    if (snapshot_interval == 0) {
        throw std::invalid_argument(
            "flight recorder snapshot interval must be >= 1");
    }
    ring_.resize(capacity);
}


void FlightRecorder::refresh_snapshot(const MetricsRegistry& registry) {
    // The interval refresh runs inside the protocol's throughput gate,
    // so it is pure value loads against the cached positional layout —
    // no string compares, no map nodes, no allocations. The name-keyed
    // snapshot/rates maps are rebuilt lazily when actually read.
    if (source_ != &registry ||
        layout_version_ != registry.layout_version()) {
        rekey(registry);
    }
    prev_counters_ = counter_values_;
    registry.read_values(counter_values_, gauge_values_);
    ++snapshots_;
    materialized_ = false;
}

void FlightRecorder::rekey(const MetricsRegistry& registry) {
    // Layout changed (or first use with this registry): re-pull the
    // names and carry previous counter values across by name, so
    // counters registered earlier keep their interval baseline while
    // new names start at zero — the counts-from-zero rule.
    std::map<std::string, std::uint64_t, std::less<>> carried;
    for (std::size_t i = 0; i < counter_names_.size(); ++i) {
        carried.emplace(std::move(counter_names_[i]), counter_values_[i]);
    }
    registry.value_layout(counter_names_, gauge_names_);
    counter_values_.assign(counter_names_.size(), 0);
    for (std::size_t i = 0; i < counter_names_.size(); ++i) {
        if (const auto it = carried.find(counter_names_[i]);
            it != carried.end()) {
            counter_values_[i] = it->second;
        }
    }
    prev_counters_.resize(counter_names_.size());
    gauge_values_.assign(gauge_names_.size(), 0);
    source_ = &registry;
    layout_version_ = registry.layout_version();
}

void FlightRecorder::materialize() const {
    if (materialized_) return;
    materialized_ = true;
    snapshot_.counters.clear();
    snapshot_.gauges.clear();
    rates_.counters.clear();
    rates_.gauges.clear();
    for (std::size_t i = 0; i < counter_names_.size(); ++i) {
        // Names come from value_layout in map order, so end-hinted
        // inserts are O(1).
        snapshot_.counters.emplace_hint(snapshot_.counters.end(),
                                        counter_names_[i],
                                        counter_values_[i]);
        const std::uint64_t prev = prev_counters_[i];
        // Counter-reset rule: a value behind its baseline restarts the
        // interval at the current value.
        rates_.counters.emplace_hint(
            rates_.counters.end(), counter_names_[i],
            prev > counter_values_[i] ? counter_values_[i]
                                      : counter_values_[i] - prev);
    }
    for (std::size_t i = 0; i < gauge_names_.size(); ++i) {
        snapshot_.gauges.emplace_hint(snapshot_.gauges.end(),
                                      gauge_names_[i], gauge_values_[i]);
    }
    // Gauges are instantaneous; the interval view passes levels through.
    rates_.gauges = snapshot_.gauges;
}

const MetricsSnapshot& FlightRecorder::last_snapshot() const {
    materialize();
    return snapshot_;
}

const MetricsDelta& FlightRecorder::last_rates() const {
    materialize();
    return rates_;
}

void FlightRecorder::note_frontier(std::uint64_t epoch) {
    if (epoch <= frontier_) return;
    frontier_ = epoch;
    const auto it = epoch_entry_.find(epoch);
    if (it == epoch_entry_.end()) return;
    truncate_before(it->second);
    // Entry instants below the frontier can never be asked about again.
    epoch_entry_.erase(epoch_entry_.begin(), it);
}

void FlightRecorder::truncate_before(std::uint64_t virtual_time) {
    while (first_ < recorded_) {
        const TraceEvent& oldest =
            ring_[static_cast<std::size_t>(first_ % ring_.size())];
        if (oldest.virtual_time >= virtual_time) break;
        ++first_;
        ++truncated_;
    }
}

std::vector<TraceEvent> FlightRecorder::events() const {
    std::vector<TraceEvent> out;
    out.reserve(retained());
    for (std::uint64_t i = first_; i < recorded_; ++i) {
        out.push_back(ring_[static_cast<std::size_t>(i % ring_.size())]);
    }
    return out;
}

void FlightRecorder::dump(PostmortemReason reason, std::uint32_t process,
                          std::uint64_t step, std::uint64_t epoch,
                          std::uint64_t wal_lsn, std::uint64_t virtual_time,
                          const MetricsRegistry* registry) {
    if (registry != nullptr) {
        // Fold the in-flight interval in so the dump reflects the crash
        // instant, not the last periodic snapshot.
        refresh_snapshot(*registry);
        since_snapshot_ = 0;
    }
    Postmortem pm;
    pm.reason = reason;
    pm.process = process;
    pm.step = step;
    pm.epoch = epoch;
    pm.frontier_epoch = frontier_;
    pm.wal_lsn = wal_lsn;
    pm.virtual_time = virtual_time;
    pm.snapshots = snapshots_;
    materialize();
    pm.metrics = snapshot_;
    pm.rates = rates_;
    pm.events = events();

    last_dump_.clear();
    encode_postmortem_into(pm, last_dump_);
    ++dumps_;

    if (!dump_path_.empty()) {
        if (std::FILE* f = std::fopen(dump_path_.c_str(), "wb")) {
            std::fwrite(last_dump_.data(), 1, last_dump_.size(), f);
            std::fclose(f);
        }
    }
}

void FlightRecorder::publish_metrics(MetricsRegistry& registry) const {
    registry.counter("flight_dumps").inc(dumps_);
    registry.gauge("flight_retained_events")
        .set(static_cast<std::int64_t>(retained()));
    registry.gauge("flight_truncated_events")
        .set(static_cast<std::int64_t>(truncated_));
    registry.gauge("flight_snapshots")
        .set(static_cast<std::int64_t>(snapshots_));
}

}  // namespace syncts::obs
