#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

/// \file trace_sink.hpp
/// Typed causal trace events captured into a fixed-capacity ring buffer.
///
/// Every event carries both timebases the system has: the simulated
/// (virtual) clock of the discrete-event network and a logical time (the
/// total of the recording process's clock vector, or the commit index),
/// so a trace answers *where* retransmissions and waits sit relative to
/// causal progress, not just relative to wall time.
///
/// Capture is steady-state zero-allocation: the ring is sized once at
/// construction and `record()` overwrites the oldest event when full
/// (`recorded()` vs `size()` tells you how much wrapped away). Export
/// formats:
///   - Chrome trace-event JSON (`write_chrome_trace`) — loadable in
///     chrome://tracing and Perfetto; every event emits the required
///     `name`/`ph`/`ts`/`pid`/`tid` fields.
///   - A compact little-endian binary frame (`write_binary` /
///     `read_binary`) for when the JSON would dwarf the run.
/// See docs/OBSERVABILITY.md for the schema.

namespace syncts::obs {

enum class TraceEventKind : std::uint8_t {
    send = 0,        ///< first transmission of a REQ
    receive,         ///< fresh REQ delivered (buffered for the program)
    ack,             ///< ACK accepted by the sender (rendezvous complete)
    commit,          ///< receiver committed the rendezvous (clock stamped)
    retransmit,      ///< REQ re-sent after a timeout
    timeout,         ///< retransmission timer fired live
    duplicate_drop,  ///< duplicate/stale frame suppressed without reply
    ack_replay,      ///< cached ACK re-sent for a committed sequence
    corrupt_reject,  ///< frame failed wire validation and was discarded
    drop,            ///< packet lost in the network (injected fault)
    stamp,           ///< a clock engine stamped a message
    phase,           ///< a named phase span (duration in arg_a)
    internal,        ///< internal event ticked a clock
    epoch_reject,    ///< frame from another topology epoch rejected
    nack,            ///< NACK sent/handled for an epoch-stale REQ
    epoch,           ///< topology epoch barrier crossed (arg_a = epoch id)
    crash,           ///< process crashed, volatile state lost (arg_a = step)
    restart,         ///< process restarted from snapshot + WAL replay
    hello,           ///< rejoin HELLO sent/answered (arg_a = sequence)
    park,            ///< out-of-order frame parked ahead of the commit point
    batch,           ///< batch container flushed (arg_a = frames, arg_b = bytes)
    coalesce,        ///< queued ACK superseded by a newer one (same rendezvous)
    delta_resync,    ///< delta frame dropped awaiting a full-vector resync
    bsched_defer,    ///< flush deferred by the bandwidth scheduler (arg_b = ticks)
};

const char* to_string(TraceEventKind kind) noexcept;

/// One fixed-size trace record. `arg_a`/`arg_b` are kind-specific
/// (sequence number and message id for protocol events, duration for
/// phase events).
struct TraceEvent {
    std::uint64_t virtual_time = 0;  ///< simulated-clock ticks
    std::uint64_t logical = 0;       ///< clock-vector total / commit index
    std::uint64_t arg_a = 0;
    std::uint64_t arg_b = 0;
    std::uint32_t process = 0;
    std::uint32_t peer = 0;
    TraceEventKind kind = TraceEventKind::send;

    friend bool operator==(const TraceEvent&, const TraceEvent&) = default;
};

/// Bytes one packed event occupies in the SYTR/SYFR binary formats:
/// 4 x u64 + 2 x u32 + the kind byte, little-endian throughout.
inline constexpr std::size_t kTraceEventBytes = 4 * 8 + 2 * 4 + 1;

/// Appends the packed little-endian form of `event` (kTraceEventBytes).
/// Shared by the SYTR trace frame and the SYFR post-mortem dump so the
/// two stay bit-compatible per event.
void encode_trace_event_into(const TraceEvent& event,
                             std::vector<std::uint8_t>& out);

/// Decodes one packed event starting at `at` (caller guarantees
/// kTraceEventBytes readable). Does not validate the kind byte — callers
/// with untrusted input check it against the enum range themselves.
TraceEvent decode_trace_event(const std::uint8_t* at);

class TraceSink {
public:
    /// Ring buffer holding up to `capacity` events (>= 1).
    explicit TraceSink(std::size_t capacity);

    std::size_t capacity() const noexcept { return ring_.size(); }

    /// Events currently retained (min(recorded(), capacity())).
    std::size_t size() const noexcept {
        return recorded_ < ring_.size() ? static_cast<std::size_t>(recorded_)
                                        : ring_.size();
    }

    /// Events ever recorded, including ones the ring overwrote.
    std::uint64_t recorded() const noexcept { return recorded_; }

    /// Events lost to wraparound.
    std::uint64_t dropped() const noexcept {
        return recorded_ - static_cast<std::uint64_t>(size());
    }

    /// High-water mark of retained events since construction or the last
    /// clear() — `capacity()` once the ring has ever filled. Surfaced as
    /// the `trace_peak_events` gauge so wraparound pressure is visible
    /// in every syncts_stats report.
    std::size_t peak_size() const noexcept { return peak_; }

    /// O(1), allocation-free; overwrites the oldest event when full.
    /// Inline, division-free (head_ tracks recorded_ % capacity): this
    /// sits on the protocol's hot path for every traced event.
    void record(const TraceEvent& event) noexcept {
        ring_[head_] = event;
        if (++head_ == ring_.size()) head_ = 0;
        ++recorded_;
        if (size() > peak_) peak_ = size();
    }

    void clear() noexcept;

    /// Visits retained events oldest-first.
    void for_each(const std::function<void(const TraceEvent&)>& fn) const;

    /// Retained events oldest-first as an owning vector (test/tool path).
    std::vector<TraceEvent> events() const;

    /// Appends the retained events as a Chrome trace-event JSON document:
    /// {"displayTimeUnit":"ms","traceEvents":[{"name":...,"ph":...,
    ///  "ts":...,"pid":...,"tid":...,"args":{...}}, ...]}.
    /// Protocol events are instants (ph "i"); phase events are complete
    /// spans (ph "X" with dur = arg_a). pid 1 is the simulation, tid is
    /// the recording process.
    void write_chrome_trace(std::string& out) const;
    std::string to_chrome_trace() const;

    /// Compact binary form: magic "SYTR", version, count, then packed
    /// little-endian events.
    void write_binary(std::vector<std::uint8_t>& out) const;

    /// Parses `write_binary` output; throws std::invalid_argument on a
    /// malformed buffer.
    static std::vector<TraceEvent> read_binary(
        const std::vector<std::uint8_t>& bytes);

private:
    std::vector<TraceEvent> ring_;
    std::uint64_t recorded_ = 0;
    std::size_t head_ = 0;  ///< next write slot (== recorded_ % capacity)
    std::size_t peak_ = 0;
};

}  // namespace syncts::obs
