#include "obs/metrics.hpp"

#include <algorithm>
#include <cstdio>
#include <stdexcept>

namespace syncts::obs {

namespace {

void append_escaped(std::string& out, std::string_view text) {
    for (const char c : text) {
        switch (c) {
            case '"': out += "\\\""; break;
            case '\\': out += "\\\\"; break;
            case '\n': out += "\\n"; break;
            case '\t': out += "\\t"; break;
            default:
                if (static_cast<unsigned char>(c) < 0x20) {
                    char buf[8];
                    std::snprintf(buf, sizeof buf, "\\u%04x",
                                  static_cast<unsigned>(
                                      static_cast<unsigned char>(c)));
                    out += buf;
                } else {
                    out += c;
                }
        }
    }
}

void append_key(std::string& out, std::string_view name) {
    out += '"';
    append_escaped(out, name);
    out += "\":";
}

// Lockstep merge of a sorted source range into a sorted value map:
// matching keys are overwritten in place, stale keys erased, new keys
// inserted at the hint. When the key sets already agree (the steady
// state for registries, which never unregister) this touches no
// allocator. `value(entry)` extracts the value for a source entry.
template <typename Source, typename Map, typename Value>
void merge_values_into(const Source& source, Map& out, Value value) {
    auto it = out.begin();
    for (const auto& entry : source) {
        const auto& name = entry.first;
        while (it != out.end() && it->first < name) it = out.erase(it);
        if (it != out.end() && it->first == name) {
            it->second = value(entry);
            ++it;
        } else {
            it = out.emplace_hint(it, name, value(entry));
            ++it;
        }
    }
    out.erase(it, out.end());
}

}  // namespace

// ---- Histogram ---------------------------------------------------------

Histogram::Histogram(std::span<const std::uint64_t> bounds)
    : bounds_(bounds.begin(), bounds.end()) {
    if (bounds_.empty()) {
        bounds_ = exponential_bounds(32);
    }
    for (std::size_t i = 1; i < bounds_.size(); ++i) {
        if (bounds_[i - 1] >= bounds_[i]) {
            throw std::invalid_argument(
                "histogram bounds must be strictly increasing");
        }
    }
    buckets_ = std::make_unique<std::atomic<std::uint64_t>[]>(
        bounds_.size() + 1);
    for (std::size_t i = 0; i <= bounds_.size(); ++i) {
        buckets_[i].store(0, std::memory_order_relaxed);
    }
}

std::vector<std::uint64_t> Histogram::exponential_bounds(std::size_t count) {
    std::vector<std::uint64_t> bounds;
    bounds.reserve(count);
    std::uint64_t bound = 1;
    for (std::size_t i = 0; i < count; ++i) {
        bounds.push_back(bound);
        if (bound > (std::numeric_limits<std::uint64_t>::max() >> 1)) break;
        bound <<= 1;
    }
    return bounds;
}

void Histogram::record(std::uint64_t value) noexcept {
    const auto it =
        std::lower_bound(bounds_.begin(), bounds_.end(), value);
    const std::size_t bucket =
        static_cast<std::size_t>(it - bounds_.begin());
    buckets_[bucket].fetch_add(1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(value, std::memory_order_relaxed);
    // Relaxed CAS min/max: fine for the "lock-free-ish" contract — the
    // final quiescent values are exact, transient reads may lag.
    std::uint64_t seen = min_.load(std::memory_order_relaxed);
    while (value < seen &&
           !min_.compare_exchange_weak(seen, value,
                                       std::memory_order_relaxed)) {
    }
    seen = max_.load(std::memory_order_relaxed);
    while (value > seen &&
           !max_.compare_exchange_weak(seen, value,
                                       std::memory_order_relaxed)) {
    }
}

std::uint64_t Histogram::quantile_bound(
    std::uint64_t target, std::uint64_t observed_max) const noexcept {
    std::uint64_t cumulative = 0;
    for (std::size_t i = 0; i < bounds_.size(); ++i) {
        cumulative += buckets_[i].load(std::memory_order_relaxed);
        if (cumulative >= target) {
            return std::min(bounds_[i], observed_max);
        }
    }
    return observed_max;
}

Histogram::Summary Histogram::summary() const noexcept {
    Summary s;
    s.count = count();
    s.sum = sum();
    if (s.count == 0) return s;
    s.min = min_.load(std::memory_order_relaxed);
    s.max = max_.load(std::memory_order_relaxed);
    const auto target = [&](std::uint64_t pct) {
        // ceil(count * pct / 100), >= 1
        return std::max<std::uint64_t>(1, (s.count * pct + 99) / 100);
    };
    s.p50 = quantile_bound(target(50), s.max);
    s.p95 = quantile_bound(target(95), s.max);
    s.p99 = quantile_bound(target(99), s.max);
    return s;
}

void Histogram::reset() noexcept {
    for (std::size_t i = 0; i <= bounds_.size(); ++i) {
        buckets_[i].store(0, std::memory_order_relaxed);
    }
    count_.store(0, std::memory_order_relaxed);
    sum_.store(0, std::memory_order_relaxed);
    min_.store(std::numeric_limits<std::uint64_t>::max(),
               std::memory_order_relaxed);
    max_.store(0, std::memory_order_relaxed);
}

// ---- Snapshots ---------------------------------------------------------

MetricsDelta snapshot_delta(const MetricsSnapshot& before,
                            const MetricsSnapshot& after) {
    MetricsDelta delta;
    snapshot_delta_into(before, after, delta);
    return delta;
}

void snapshot_delta_into(const MetricsSnapshot& before,
                         const MetricsSnapshot& after, MetricsDelta& delta) {
    // `before` walks in lockstep with `after` (both are name-ordered),
    // so the whole diff is one linear pass with no per-name lookups.
    auto prev = before.counters.begin();
    merge_values_into(
        after.counters, delta.counters, [&](const auto& entry) {
            const auto& [name, value] = entry;
            while (prev != before.counters.end() && prev->first < name) {
                ++prev;
            }
            if (prev == before.counters.end() || prev->first != name ||
                prev->second > value) {
                // New counter, or the registry was reset mid-interval:
                // the interval restarts at the counter's current value.
                return value;
            }
            return value - prev->second;
        });
    delta.gauges = after.gauges;
}

// ---- MetricsRegistry ---------------------------------------------------

void MetricsRegistry::check_unique(std::string_view name) const {
    const int hits = (counters_.count(name) ? 1 : 0) +
                     (gauges_.count(name) ? 1 : 0) +
                     (histograms_.count(name) ? 1 : 0);
    if (hits != 0) {
        throw std::invalid_argument("metric name '" + std::string(name) +
                                    "' is already registered as a "
                                    "different kind");
    }
}

Counter& MetricsRegistry::counter(std::string_view name) {
    if (const auto it = counters_.find(name); it != counters_.end()) {
        return *it->second;
    }
    check_unique(name);
    ++layout_version_;
    return *counters_.emplace(std::string(name), std::make_unique<Counter>())
                .first->second;
}

Gauge& MetricsRegistry::gauge(std::string_view name) {
    if (const auto it = gauges_.find(name); it != gauges_.end()) {
        return *it->second;
    }
    check_unique(name);
    ++layout_version_;
    return *gauges_.emplace(std::string(name), std::make_unique<Gauge>())
                .first->second;
}

Histogram& MetricsRegistry::histogram(std::string_view name,
                                      std::span<const std::uint64_t> bounds) {
    if (const auto it = histograms_.find(name); it != histograms_.end()) {
        return *it->second;
    }
    check_unique(name);
    ++layout_version_;
    return *histograms_
                .emplace(std::string(name),
                         std::make_unique<Histogram>(bounds))
                .first->second;
}

MetricsSnapshot MetricsRegistry::snapshot() const {
    MetricsSnapshot snap;
    snapshot_into(snap);
    return snap;
}

void MetricsRegistry::snapshot_into(MetricsSnapshot& out) const {
    merge_values_into(counters_, out.counters,
                      [](const auto& entry) { return entry.second->value(); });
    merge_values_into(gauges_, out.gauges,
                      [](const auto& entry) { return entry.second->value(); });
}

void MetricsRegistry::value_layout(std::vector<std::string>& counter_names,
                                   std::vector<std::string>& gauge_names)
    const {
    counter_names.clear();
    counter_names.reserve(counters_.size());
    for (const auto& [name, c] : counters_) counter_names.push_back(name);
    gauge_names.clear();
    gauge_names.reserve(gauges_.size());
    for (const auto& [name, g] : gauges_) gauge_names.push_back(name);
}

void MetricsRegistry::read_values(std::span<std::uint64_t> counter_values,
                                  std::span<std::int64_t> gauge_values) const {
    if (counter_values.size() != counters_.size() ||
        gauge_values.size() != gauges_.size()) {
        throw std::invalid_argument(
            "read_values: span sizes do not match the registry layout");
    }
    std::size_t i = 0;
    for (const auto& [name, c] : counters_) counter_values[i++] = c->value();
    i = 0;
    for (const auto& [name, g] : gauges_) gauge_values[i++] = g->value();
}

void MetricsRegistry::reset() noexcept {
    for (auto& [name, c] : counters_) c->reset();
    for (auto& [name, g] : gauges_) g->reset();
    for (auto& [name, h] : histograms_) h->reset();
}

void MetricsRegistry::write_json(std::string& out) const {
    out += "{\"counters\":{";
    bool first = true;
    for (const auto& [name, c] : counters_) {
        if (!first) out += ',';
        first = false;
        append_key(out, name);
        out += std::to_string(c->value());
    }
    out += "},\"gauges\":{";
    first = true;
    for (const auto& [name, g] : gauges_) {
        if (!first) out += ',';
        first = false;
        append_key(out, name);
        out += std::to_string(g->value());
    }
    out += "},\"histograms\":{";
    first = true;
    for (const auto& [name, h] : histograms_) {
        if (!first) out += ',';
        first = false;
        append_key(out, name);
        const Histogram::Summary s = h->summary();
        out += "{\"count\":" + std::to_string(s.count) +
               ",\"sum\":" + std::to_string(s.sum) +
               ",\"min\":" + std::to_string(s.min) +
               ",\"max\":" + std::to_string(s.max) +
               ",\"p50\":" + std::to_string(s.p50) +
               ",\"p95\":" + std::to_string(s.p95) +
               ",\"p99\":" + std::to_string(s.p99) + "}";
    }
    out += "}}";
}

std::string MetricsRegistry::to_json() const {
    std::string out;
    write_json(out);
    return out;
}

}  // namespace syncts::obs
