#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/trace_sink.hpp"

/// \file flight_recorder.hpp
/// The always-on black box: a bounded ring of recent trace events plus
/// periodic metrics snapshots, dumped as a checksummed `SYFR`
/// post-mortem when a crash rule fires or the runtime throws a typed
/// error (docs/PROFILING.md).
///
/// Retention follows the Drummond–Barbosa stability rule the region
/// store and WAL already obey: state that is durably folded into a
/// checkpoint everywhere it matters need not be kept. The runtime feeds
/// the recorder its stability frontier (the lowest epoch any process
/// could still rewind into), and the recorder discards retained events
/// older than that epoch's entry — a post-mortem never carries history
/// that recovery could not need, which bounds the dump on long runs
/// independently of the ring capacity.
///
/// The recorder is deterministic: it never reads wall clocks, so under
/// the same seed the dumped bytes are bit-identical — the event suffix
/// of a crash-at-step-k dump equals the crash-free run's trace prefix
/// (pinned in tests/profiler_test.cpp).

namespace syncts::obs {

enum class PostmortemReason : std::uint8_t {
    crash = 1,   ///< an injected CrashRule fired
    error = 2,   ///< a typed runtime error (stall, wire, recovery)
    manual = 3,  ///< caller-requested dump
};

const char* to_string(PostmortemReason reason) noexcept;

/// Typed decode failure for SYFR bytes — fuzzed alongside the WAL and
/// snapshot codecs (tests/fuzz_parsers_test.cpp).
class PostmortemError : public std::runtime_error {
public:
    enum class Code {
        bad_magic,
        bad_version,
        truncated,
        trailing_bytes,
        bad_checksum,
        malformed,
    };

    PostmortemError(Code code, const std::string& what)
        : std::runtime_error(what), code_(code) {}

    Code code() const noexcept { return code_; }

private:
    Code code_;
};

/// Decoded SYFR dump (see docs/FORMATS.md section 7 for the byte
/// layout).
struct Postmortem {
    PostmortemReason reason = PostmortemReason::manual;
    std::uint32_t process = 0;        ///< crashed / faulting process
    std::uint64_t step = 0;           ///< its protocol step count
    std::uint64_t epoch = 0;          ///< its epoch at the dump
    std::uint64_t frontier_epoch = 0; ///< stability frontier at the dump
    std::uint64_t wal_lsn = 0;        ///< durable WAL position (next LSN)
    std::uint64_t virtual_time = 0;   ///< dump instant
    std::uint64_t snapshots = 0;      ///< metrics snapshots taken so far
    MetricsSnapshot metrics;          ///< last periodic snapshot
    MetricsDelta rates;               ///< delta over the last interval
    std::vector<TraceEvent> events;   ///< retained ring, oldest first

    friend bool operator==(const Postmortem&, const Postmortem&) = default;
};

/// Appends the SYFR binary form: magic + version + header + the last
/// metrics snapshot/delta + packed events, trailed by an 8-byte
/// little-endian FNV-1a 64 checksum over everything before it.
void encode_postmortem_into(const Postmortem& postmortem,
                            std::vector<std::uint8_t>& out);

/// Strict parse of `encode_postmortem_into` output. Throws
/// PostmortemError (never UB) on truncated, bit-flipped, or otherwise
/// malformed input.
Postmortem decode_postmortem(std::span<const std::uint8_t> bytes);

class FlightRecorder {
public:
    /// `capacity` bounds the event ring (>= 1); `snapshot_interval` is
    /// the number of tick() calls (protocol steps) between metrics
    /// snapshots (>= 1).
    explicit FlightRecorder(std::size_t capacity = 4096,
                            std::uint64_t snapshot_interval = 64);

    std::size_t capacity() const noexcept { return ring_.size(); }
    std::uint64_t snapshot_interval() const noexcept { return interval_; }

    /// O(1) ring capture; also notes epoch entry times (kind::epoch) so
    /// frontier truncation can map epochs to event times. Inline and
    /// division-free — the recorder mirrors every hot-path trace event.
    void record(const TraceEvent& event) {
        if (event.kind == TraceEventKind::epoch) [[unlikely]] {
            epoch_entry_.try_emplace(event.arg_a, event.virtual_time);
        }
        if (retained() == ring_.size()) {
            ++first_;
            ++wrapped_;
        }
        ring_[head_] = event;
        if (++head_ == ring_.size()) head_ = 0;
        ++recorded_;
    }

    /// Called once per protocol step with the live registry; every
    /// `snapshot_interval` calls it stores a snapshot and the delta
    /// (interval rates) against the previous one. The periodic refresh
    /// is raw value loads against a cached name layout
    /// (`MetricsRegistry::read_values`) — no strings, maps, or
    /// allocations on the protocol path; the name-keyed snapshot and
    /// rate maps are materialized lazily at dump or accessor time.
    void tick(const MetricsRegistry& registry) {
        if (++since_snapshot_ < interval_) return;
        since_snapshot_ = 0;
        refresh_snapshot(registry);
    }

    /// Advances the stability frontier: retained events older than the
    /// frontier epoch's entry are discarded (Drummond–Barbosa rule — no
    /// surviving rewind can need them).
    void note_frontier(std::uint64_t epoch);

    /// Builds, retains (last_dump()) and — when set_dump_path() was
    /// called — writes one SYFR post-mortem.
    void dump(PostmortemReason reason, std::uint32_t process,
              std::uint64_t step, std::uint64_t epoch,
              std::uint64_t wal_lsn, std::uint64_t virtual_time,
              const MetricsRegistry* registry = nullptr);

    /// Dumps overwrite; empty before the first dump.
    const std::vector<std::uint8_t>& last_dump() const noexcept {
        return last_dump_;
    }
    std::uint64_t dumps() const noexcept { return dumps_; }

    /// Events currently retained / discarded at the frontier / lost to
    /// ring wraparound.
    std::size_t retained() const noexcept {
        return static_cast<std::size_t>(recorded_ - first_);
    }
    std::uint64_t truncated() const noexcept { return truncated_; }
    std::uint64_t wrapped() const noexcept { return wrapped_; }
    std::uint64_t frontier() const noexcept { return frontier_; }
    std::uint64_t snapshots() const noexcept { return snapshots_; }
    const MetricsSnapshot& last_snapshot() const;
    const MetricsDelta& last_rates() const;

    /// Retained events oldest first.
    std::vector<TraceEvent> events() const;

    /// When set, every dump is also written to this file (overwriting —
    /// black-box semantics keep the latest incident).
    void set_dump_path(std::string path) { dump_path_ = std::move(path); }

    /// Publishes recorder health into `registry` (`flight_*` metrics —
    /// see docs/OBSERVABILITY.md).
    void publish_metrics(MetricsRegistry& registry) const;

private:
    void truncate_before(std::uint64_t virtual_time);
    void refresh_snapshot(const MetricsRegistry& registry);
    void rekey(const MetricsRegistry& registry);
    void materialize() const;

    std::vector<TraceEvent> ring_;
    std::uint64_t recorded_ = 0;  ///< total events ever recorded
    std::size_t head_ = 0;        ///< next write slot (recorded_ % capacity)
    std::uint64_t first_ = 0;     ///< logical index of the oldest retained
    std::uint64_t truncated_ = 0;
    std::uint64_t wrapped_ = 0;
    std::uint64_t frontier_ = 0;
    /// First virtual time seen for each epoch id (entry instant).
    std::map<std::uint64_t, std::uint64_t> epoch_entry_;

    std::uint64_t interval_;
    std::uint64_t since_snapshot_ = 0;
    std::uint64_t snapshots_ = 0;

    /// Positional value store for the periodic refresh: names are
    /// cached once per registry layout (layout_version gates staleness)
    /// and the interval refresh is two vectors of relaxed loads. A
    /// counter's previous value doubles as its interval baseline —
    /// zero means "count from zero", exactly the new-counter rule.
    const MetricsRegistry* source_ = nullptr;
    std::uint64_t layout_version_ = 0;
    std::vector<std::string> counter_names_;
    std::vector<std::string> gauge_names_;
    std::vector<std::uint64_t> counter_values_;
    std::vector<std::uint64_t> prev_counters_;
    std::vector<std::int64_t> gauge_values_;

    /// Name-keyed views, rebuilt from the vectors only when read
    /// (last_snapshot / last_rates / dump).
    mutable bool materialized_ = true;
    mutable MetricsSnapshot snapshot_;
    mutable MetricsDelta rates_;

    std::uint64_t dumps_ = 0;
    std::vector<std::uint8_t> last_dump_;
    std::string dump_path_;
};

}  // namespace syncts::obs
