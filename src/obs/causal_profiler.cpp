#include "obs/causal_profiler.hpp"

#include <algorithm>
#include <map>
#include <tuple>
#include <utility>

namespace syncts::obs {

namespace {

/// Per-process streaming state for the one-pass PERT recurrence.
struct ProcessState {
    std::uint64_t last_time = 0;  ///< time of the last timeline-cutting event
    std::uint64_t depth = 0;      ///< longest chain ending at the last step
    std::size_t last_rv = kNoRendezvous;
    std::uint64_t epoch = 0;
    bool down = false;
    /// The (single, protocol-enforced) outstanding send, if any.
    bool send_pending = false;
    std::uint32_t send_peer = 0;
    std::uint64_t send_message = 0;
    std::uint64_t send_time = 0;
};

std::pair<std::uint32_t, std::uint32_t> channel_key(std::uint32_t x,
                                                    std::uint32_t y) {
    return x < y ? std::make_pair(x, y) : std::make_pair(y, x);
}

}  // namespace

Profile build_profile(std::span<const TraceEvent> events,
                      std::size_t num_processes) {
    Profile profile;
    profile.processes.resize(num_processes);
    profile.events_consumed = events.size();

    std::vector<ProcessState> state(num_processes);
    // Realized rendezvous by (epoch, receiver, message): replayed commits
    // after a crash re-trace the same key and must not re-advance the
    // chain — the realized computation keeps the first commit.
    std::map<std::tuple<std::uint64_t, std::uint32_t, std::uint64_t>,
             std::size_t>
        committed;
    std::map<std::pair<std::uint32_t, std::uint32_t>, ChannelWait> channels;

    const auto charge_blocked = [&](std::uint32_t p, std::uint32_t peer,
                                    std::uint64_t gap) {
        profile.processes[p].blocked += gap;
        ChannelWait& wait = channels[channel_key(p, peer)];
        wait.wait += gap;
    };

    for (const TraceEvent& e : events) {
        profile.span = std::max(profile.span, e.virtual_time);
        if (e.kind == TraceEventKind::epoch && e.process == 0 &&
            e.peer == num_processes) {
            // Global barrier marker: every live process stalled from its
            // last completion until the barrier crossed.
            for (std::size_t p = 0; p < num_processes; ++p) {
                ProcessState& ps = state[p];
                if (ps.down) continue;
                const std::uint64_t stall = e.virtual_time - ps.last_time;
                profile.processes[p].barrier_stall += stall;
                profile.epoch_stalls[e.arg_a] += stall;
                ps.last_time = e.virtual_time;
                ps.epoch = e.arg_a;
            }
            continue;
        }
        if (e.process >= num_processes) continue;
        ProcessState& ps = state[e.process];
        const std::uint64_t gap = e.virtual_time - ps.last_time;
        switch (e.kind) {
            case TraceEventKind::send:
                profile.processes[e.process].working += gap;
                ps.send_pending = true;
                ps.send_peer = e.peer;
                ps.send_message = e.arg_b;
                ps.send_time = e.virtual_time;
                ps.last_time = e.virtual_time;
                break;
            case TraceEventKind::commit: {
                const auto key = std::make_tuple(
                    ps.epoch, e.process, e.arg_b);
                charge_blocked(e.process, e.peer, gap);
                if (committed.contains(key)) break;  // crash-replay re-commit
                if (e.peer >= num_processes) break;
                ProcessState& sender = state[e.peer];
                // Channel match suffices: the protocol allows one
                // outstanding send per process, so a pending send to this
                // receiver is necessarily this commit's message. (The
                // threaded runtime cannot name the message at send time —
                // the global sequence is assigned at commit.)
                const bool sender_known = sender.send_pending &&
                                          sender.send_peer == e.process;
                RendezvousSpan rv;
                rv.sender = e.peer;
                rv.receiver = e.process;
                rv.message = e.arg_b;
                rv.epoch = ps.epoch;
                rv.sequence = e.arg_a;
                rv.send_time =
                    sender_known ? sender.send_time : ps.last_time;
                rv.commit_time = e.virtual_time;
                const std::uint64_t ready_s = rv.send_time;
                const std::uint64_t ready_r = ps.last_time;
                rv.slack = ready_s > ready_r ? ready_s - ready_r
                                             : ready_r - ready_s;
                rv.depth = 1 + std::max(sender.depth, ps.depth);
                rv.parent = sender.depth >= ps.depth ? sender.last_rv
                                                     : ps.last_rv;
                const std::size_t idx = profile.rendezvous.size();
                profile.rendezvous.push_back(rv);
                committed.emplace(key, idx);
                ChannelWait& wait =
                    channels[channel_key(e.process, e.peer)];
                ++wait.rendezvous;
                ps.depth = rv.depth;
                ps.last_rv = idx;
                ps.last_time = e.virtual_time;
                break;
            }
            case TraceEventKind::ack: {
                charge_blocked(e.process, e.peer, gap);
                const auto it = committed.find(
                    std::make_tuple(ps.epoch, e.peer, e.arg_b));
                if (it != committed.end()) {
                    RendezvousSpan& rv = profile.rendezvous[it->second];
                    if (rv.ack_time == 0) rv.ack_time = e.virtual_time;
                    // A replayed ACK after a sender rewind re-completes a
                    // rendezvous the chain already contains; max() keeps
                    // the realized (non-rewinding) order monotone.
                    if (rv.depth >= ps.depth) {
                        ps.depth = rv.depth;
                        ps.last_rv = it->second;
                    }
                }
                ps.send_pending = false;
                ps.last_time = e.virtual_time;
                break;
            }
            case TraceEventKind::epoch:
                // Per-process crossing (restart fast-forward).
                profile.processes[e.process].barrier_stall += gap;
                profile.epoch_stalls[e.arg_a] += gap;
                ps.epoch = e.arg_a;
                ps.last_time = e.virtual_time;
                break;
            case TraceEventKind::crash:
                // Executing until the crash instant; the following gap
                // (until restart) is down time.
                profile.processes[e.process].working += gap;
                ps.down = true;
                ps.last_time = e.virtual_time;
                break;
            case TraceEventKind::restart:
                profile.processes[e.process].down += gap;
                ps.down = false;
                ps.epoch = e.arg_b;
                ps.last_time = e.virtual_time;
                break;
            default:
                // Network-level noise (receives, retransmits, drops...)
                // does not cut the process timeline.
                break;
        }
    }

    for (std::size_t p = 0; p < num_processes; ++p) {
        ProcessBreakdown& b = profile.processes[p];
        b.total = state[p].last_time;
        const std::uint64_t attributed =
            b.working + b.blocked + b.down + b.barrier_stall;
        b.working += b.total > attributed ? b.total - attributed : 0;
    }

    profile.channels.reserve(channels.size());
    for (const auto& [key, wait] : channels) {
        ChannelWait out = wait;
        out.a = key.first;
        out.b = key.second;
        profile.channels.push_back(out);
    }

    // Critical path: the first deepest element (commit order breaks
    // ties deterministically), chain recovered through parent links.
    std::size_t tail = kNoRendezvous;
    for (std::size_t i = 0; i < profile.rendezvous.size(); ++i) {
        if (tail == kNoRendezvous ||
            profile.rendezvous[i].depth > profile.rendezvous[tail].depth) {
            tail = i;
        }
    }
    if (tail != kNoRendezvous) {
        for (std::size_t at = tail; at != kNoRendezvous;
             at = profile.rendezvous[at].parent) {
            profile.rendezvous[at].on_critical_path = true;
            profile.critical_path.push_back(at);
            profile.critical_slack += profile.rendezvous[at].slack;
        }
        std::ranges::reverse(profile.critical_path);
        profile.critical_length = profile.critical_path.size();
        const RendezvousSpan& head =
            profile.rendezvous[profile.critical_path.front()];
        const RendezvousSpan& last = profile.rendezvous[tail];
        profile.critical_span = last.commit_time - head.send_time;
    }
    return profile;
}

void write_profile_json(const Profile& profile, std::string& out) {
    out += "{\"channels\":[";
    bool first = true;
    for (const ChannelWait& c : profile.channels) {
        if (!first) out += ',';
        first = false;
        out += "{\"a\":" + std::to_string(c.a) +
               ",\"b\":" + std::to_string(c.b) +
               ",\"rendezvous\":" + std::to_string(c.rendezvous) +
               ",\"wait\":" + std::to_string(c.wait) + "}";
    }
    out += "],\"critical_path\":{\"length\":" +
           std::to_string(profile.critical_length);
    out += ",\"messages\":[";
    first = true;
    for (const std::size_t idx : profile.critical_path) {
        const RendezvousSpan& rv = profile.rendezvous[idx];
        if (!first) out += ',';
        first = false;
        out += "{\"commit\":" + std::to_string(rv.commit_time) +
               ",\"depth\":" + std::to_string(rv.depth) +
               ",\"epoch\":" + std::to_string(rv.epoch) +
               ",\"message\":" + std::to_string(rv.message) +
               ",\"receiver\":" + std::to_string(rv.receiver) +
               ",\"send\":" + std::to_string(rv.send_time) +
               ",\"sender\":" + std::to_string(rv.sender) +
               ",\"sequence\":" + std::to_string(rv.sequence) +
               ",\"slack\":" + std::to_string(rv.slack) + "}";
    }
    out += "],\"slack\":" + std::to_string(profile.critical_slack);
    out += ",\"span\":" + std::to_string(profile.critical_span) + "}";
    out += ",\"epoch_stalls\":{";
    first = true;
    for (const auto& [epoch, stall] : profile.epoch_stalls) {
        if (!first) out += ',';
        first = false;
        out += "\"" + std::to_string(epoch) + "\":" + std::to_string(stall);
    }
    out += "},\"events_consumed\":" +
           std::to_string(profile.events_consumed);
    out += ",\"processes\":[";
    first = true;
    for (const ProcessBreakdown& b : profile.processes) {
        if (!first) out += ',';
        first = false;
        out += "{\"barrier_stall\":" + std::to_string(b.barrier_stall) +
               ",\"blocked\":" + std::to_string(b.blocked) +
               ",\"down\":" + std::to_string(b.down) +
               ",\"total\":" + std::to_string(b.total) +
               ",\"working\":" + std::to_string(b.working) + "}";
    }
    out += "],\"rendezvous\":" + std::to_string(profile.rendezvous.size());
    out += ",\"span\":" + std::to_string(profile.span) + "}";
}

std::string to_profile_json(const Profile& profile) {
    std::string out;
    write_profile_json(profile, out);
    return out;
}

void write_critical_path_trace(std::span<const TraceEvent> events,
                               const Profile& profile, std::string& out) {
    out += "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
    out += "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":2,\"tid\":0,"
           "\"args\":{\"name\":\"critical path\"}}";
    for (const TraceEvent& e : events) {
        out += ",{\"name\":\"";
        out += to_string(e.kind);
        out += "\",\"ph\":\"";
        out += e.kind == TraceEventKind::phase ? 'X' : 'i';
        out += "\",\"ts\":" + std::to_string(e.virtual_time);
        if (e.kind == TraceEventKind::phase) {
            out += ",\"dur\":" + std::to_string(e.arg_a);
        }
        out += ",\"pid\":1,\"tid\":" + std::to_string(e.process);
        if (e.kind != TraceEventKind::phase) {
            out += ",\"s\":\"t\"";
        }
        out += ",\"args\":{\"peer\":" + std::to_string(e.peer) +
               ",\"logical\":" + std::to_string(e.logical) +
               ",\"a\":" + std::to_string(e.arg_a) +
               ",\"b\":" + std::to_string(e.arg_b) + "}}";
    }
    for (const std::size_t idx : profile.critical_path) {
        const RendezvousSpan& rv = profile.rendezvous[idx];
        const std::uint64_t dur = rv.commit_time > rv.send_time
                                      ? rv.commit_time - rv.send_time
                                      : 1;
        out += ",{\"name\":\"rendezvous\",\"ph\":\"X\",\"ts\":" +
               std::to_string(rv.send_time) +
               ",\"dur\":" + std::to_string(dur) +
               ",\"pid\":2,\"tid\":" + std::to_string(rv.receiver) +
               ",\"args\":{\"depth\":" + std::to_string(rv.depth) +
               ",\"epoch\":" + std::to_string(rv.epoch) +
               ",\"message\":" + std::to_string(rv.message) +
               ",\"sender\":" + std::to_string(rv.sender) +
               ",\"sequence\":" + std::to_string(rv.sequence) +
               ",\"slack\":" + std::to_string(rv.slack) + "}}";
    }
    out += "]}";
}

}  // namespace syncts::obs
