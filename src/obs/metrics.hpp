#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <limits>
#include <map>
#include <memory>
#include <span>
#include <string>
#include <string_view>
#include <vector>

/// \file metrics.hpp
/// The instrumentation registry: named counters, gauges, and fixed-bucket
/// histograms shared by every layer of the stack (arena, clock engines,
/// synchronizer, decomposers, tools).
///
/// Design constraints, in order:
///   1. The *disabled* path must be near-free. Instrumented components
///      hold plain `Counter*` members that default to nullptr; the hot
///      path is one predictable branch and no call.
///   2. The *enabled* path must be allocation-free. Registration
///      (`registry.counter("name")`) allocates; `inc()`/`record()` are a
///      relaxed atomic add on pre-sized storage — safe to call from the
///      arena hot path without breaking its zero-allocation guarantee
///      (asserted in tests/arena_test.cpp).
///   3. Snapshots must be deterministic. Metrics live in sorted maps and
///      `write_json()` emits them in name order, so two runs with the
///      same seed produce byte-identical reports (the syncts_stats
///      determinism gate relies on this).
///
/// Metrics are "lock-free-ish": increments are relaxed atomics so
/// concurrent writers (the threaded TimestampedNetwork) never lock or
/// tear, but cross-metric consistency of a snapshot taken mid-run is not
/// guaranteed — take snapshots at quiescent points.

namespace syncts::obs {

/// Monotonic event count.
class Counter {
public:
    void inc(std::uint64_t by = 1) noexcept {
        value_.fetch_add(by, std::memory_order_relaxed);
    }
    std::uint64_t value() const noexcept {
        return value_.load(std::memory_order_relaxed);
    }
    void reset() noexcept { value_.store(0, std::memory_order_relaxed); }

private:
    std::atomic<std::uint64_t> value_{0};
};

/// Instantaneous level (slab bytes, vector width, group counts).
class Gauge {
public:
    void set(std::int64_t v) noexcept {
        value_.store(v, std::memory_order_relaxed);
    }
    void add(std::int64_t by) noexcept {
        value_.fetch_add(by, std::memory_order_relaxed);
    }
    /// Raises the gauge to `v` when it is currently lower — lossless
    /// high-water tracking (peak slab bytes, peak live regions) even
    /// with concurrent writers.
    void set_max(std::int64_t v) noexcept {
        std::int64_t cur = value_.load(std::memory_order_relaxed);
        while (cur < v && !value_.compare_exchange_weak(
                              cur, v, std::memory_order_relaxed)) {
        }
    }
    std::int64_t value() const noexcept {
        return value_.load(std::memory_order_relaxed);
    }
    void reset() noexcept { value_.store(0, std::memory_order_relaxed); }

private:
    std::atomic<std::int64_t> value_{0};
};

/// Fixed-bucket histogram for latency/size distributions. Bucket bounds
/// are upper bounds (inclusive), strictly increasing; values above the
/// last bound land in an overflow bucket. Percentile summaries report the
/// upper bound of the bucket containing the quantile (the observed
/// maximum for the overflow bucket) — coarse but allocation-free and
/// deterministic.
class Histogram {
public:
    explicit Histogram(std::span<const std::uint64_t> bounds);

    /// Power-of-two bounds 1, 2, 4, ... (`count` buckets) — the default
    /// spec for tick/byte distributions.
    static std::vector<std::uint64_t> exponential_bounds(std::size_t count);

    void record(std::uint64_t value) noexcept;

    std::uint64_t count() const noexcept {
        return count_.load(std::memory_order_relaxed);
    }
    std::uint64_t sum() const noexcept {
        return sum_.load(std::memory_order_relaxed);
    }

    struct Summary {
        std::uint64_t count = 0;
        std::uint64_t sum = 0;
        std::uint64_t min = 0;  ///< 0 when empty
        std::uint64_t max = 0;
        std::uint64_t p50 = 0;
        std::uint64_t p95 = 0;
        std::uint64_t p99 = 0;
    };
    Summary summary() const noexcept;

    void reset() noexcept;

private:
    std::uint64_t quantile_bound(std::uint64_t target,
                                 std::uint64_t observed_max) const noexcept;

    std::vector<std::uint64_t> bounds_;
    /// bucket_[i] counts values <= bounds_[i]; bucket_[bounds_.size()] is
    /// the overflow bucket. unique_ptr arrays because atomics are not
    /// movable; sized once at construction.
    std::unique_ptr<std::atomic<std::uint64_t>[]> buckets_;
    std::atomic<std::uint64_t> count_{0};
    std::atomic<std::uint64_t> sum_{0};
    std::atomic<std::uint64_t> min_{std::numeric_limits<std::uint64_t>::max()};
    std::atomic<std::uint64_t> max_{0};
};

/// A point-in-time copy of every counter and gauge in a registry, in
/// name order. Snapshots are plain value maps — cheap to diff, encode
/// (flight recorder) and ship (future syncts_serve scrape endpoint).
/// Histograms are summarized at dump time instead of snapshotted; their
/// bucket arrays are too heavy for the periodic path.
struct MetricsSnapshot {
    std::map<std::string, std::uint64_t, std::less<>> counters;
    std::map<std::string, std::int64_t, std::less<>> gauges;

    friend bool operator==(const MetricsSnapshot&,
                           const MetricsSnapshot&) = default;
};

/// The change between two snapshots of the *same* registry:
/// per-counter increments over the interval (rates once divided by the
/// interval length) and the gauges' current levels (gauges are
/// instantaneous — a delta of levels is meaningless, so they pass
/// through).
struct MetricsDelta {
    /// Counter increments over (before, after]. Counters are monotonic;
    /// a counter that appears to have moved backwards (the registry was
    /// reset between snapshots) restarts the interval at its new value,
    /// the standard counter-reset rule.
    std::map<std::string, std::uint64_t, std::less<>> counters;

    /// Gauge levels at the `after` snapshot.
    std::map<std::string, std::int64_t, std::less<>> gauges;

    friend bool operator==(const MetricsDelta&,
                           const MetricsDelta&) = default;
};

/// Diffs two snapshots taken from one registry, `before` first.
/// Counters present only in `after` (registered mid-interval) count
/// from zero; counters present only in `before` are dropped (the
/// registry never unregisters, so this only happens across resets).
MetricsDelta snapshot_delta(const MetricsSnapshot& before,
                            const MetricsSnapshot& after);

/// In-place variant of `snapshot_delta` for periodic callers: `delta`'s
/// existing map nodes are reused, so a steady-state refresh performs no
/// allocations. (The flight recorder goes further and diffs positional
/// value vectors — see `MetricsRegistry::read_values`.)
void snapshot_delta_into(const MetricsSnapshot& before,
                         const MetricsSnapshot& after, MetricsDelta& delta);

/// Creates-or-returns metrics by name. Returned references are stable for
/// the registry's lifetime (metrics are heap-allocated once and never
/// moved), so components cache raw pointers at attach time and never pay
/// a map lookup on the hot path.
class MetricsRegistry {
public:
    MetricsRegistry() = default;
    MetricsRegistry(const MetricsRegistry&) = delete;
    MetricsRegistry& operator=(const MetricsRegistry&) = delete;

    /// Throws std::invalid_argument if `name` is already a different kind.
    Counter& counter(std::string_view name);
    Gauge& gauge(std::string_view name);
    /// `bounds` applies on first registration only (later calls return
    /// the existing histogram); empty means exponential_bounds(32).
    Histogram& histogram(std::string_view name,
                         std::span<const std::uint64_t> bounds = {});

    std::size_t size() const noexcept {
        return counters_.size() + gauges_.size() + histograms_.size();
    }

    /// Zeroes every metric (registrations are kept).
    void reset() noexcept;

    /// Copies every counter and gauge value (relaxed reads — take
    /// snapshots at quiescent points for cross-metric consistency).
    MetricsSnapshot snapshot() const;

    /// Refreshes `out` to the current values, reusing its map nodes:
    /// when the registered names have not changed since the last call
    /// (the steady state — registration is create-once), this performs
    /// no allocations.
    void snapshot_into(MetricsSnapshot& out) const;

    /// Bumped on every new registration, never by reset(): a caller
    /// holding a cached `value_layout()` may keep reading values
    /// position-for-position as long as this is unchanged.
    std::uint64_t layout_version() const noexcept { return layout_version_; }

    /// Copies the registered counter and gauge names, in name order —
    /// the positional key for `read_values`.
    void value_layout(std::vector<std::string>& counter_names,
                      std::vector<std::string>& gauge_names) const;

    /// Reads every counter/gauge value into the spans, in name order
    /// (relaxed loads, no allocation, no string work — the flight
    /// recorder's per-interval path). Both spans must exactly match the
    /// current registration counts; throws std::invalid_argument
    /// otherwise (the caller's cached layout is stale).
    void read_values(std::span<std::uint64_t> counter_values,
                     std::span<std::int64_t> gauge_values) const;

    /// Appends the full registry as one deterministic JSON object:
    ///   {"counters":{...},"gauges":{...},"histograms":{"h":{"count":...,
    ///    "sum":...,"min":...,"max":...,"p50":...,"p95":...,"p99":...}}}
    void write_json(std::string& out) const;
    std::string to_json() const;

private:
    void check_unique(std::string_view name) const;

    std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_;
    std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_;
    std::map<std::string, std::unique_ptr<Histogram>, std::less<>>
        histograms_;
    std::uint64_t layout_version_ = 0;
};

}  // namespace syncts::obs
