#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <span>
#include <string>
#include <vector>

#include "obs/trace_sink.hpp"

/// \file causal_profiler.hpp
/// Causal profiling over the rendezvous trace: which chain of rendezvous
/// bounds end-to-end latency, and why each process sat blocked.
///
/// The paper's observation is that synchronous rendezvous induce a poset
/// on messages; this profiler exploits the same structure. Each realized
/// rendezvous is one poset element joining its sender's and receiver's
/// histories, so the longest chain through the computation — the
/// critical path — is computable in one pass over the `TraceSink` event
/// stream with the classic PERT recurrence
///
///     depth(m) = 1 + max(depth(prev_sender), depth(prev_receiver))
///
/// where prev_* is each participant's previous completed rendezvous.
/// Because commits are recorded in a linearization consistent with the
/// causal order (the simulator processes events in virtual-time order),
/// the streaming recurrence computes exactly the longest chain of the
/// transitively-closed poset — tests/profiler_test.cpp pins this against
/// an O(M²) closure-based oracle on 500 seeded schedules.
///
/// Timebases: in the deterministic simulator the event times are virtual
/// ticks, so every profile field is bit-reproducible under the same-seed
/// gate. The threaded runtime records the same event kinds with
/// wall-clock nanosecond offsets; the identical build_profile() then
/// yields wall-span attribution (non-deterministic, reported but
/// stripped under determinism gates like `wall_ms` today).
///
/// Attribution model (docs/PROFILING.md): each process's timeline is cut
/// at its own completion events, and the gap *ending* at an event is
/// classified by the event's kind — a commit or accepted ACK closes a
/// blocked-on-partner gap (charged to the channel), an epoch crossing
/// closes a barrier-stall gap (charged to the new epoch), a restart
/// closes a down gap, and everything else is working time.

namespace syncts::obs {

/// One realized rendezvous reconstructed from its send/commit/ack events.
struct RendezvousSpan {
    std::uint32_t sender = 0;
    std::uint32_t receiver = 0;
    std::uint64_t message = 0;   ///< script MessageId within its epoch
    std::uint64_t epoch = 0;     ///< receiver's epoch at commit
    std::uint64_t sequence = 0;  ///< channel sequence number
    std::uint64_t send_time = 0;    ///< first REQ transmission
    std::uint64_t commit_time = 0;  ///< receiver committed (poset instant)
    std::uint64_t ack_time = 0;     ///< sender unblocked (0 = ack unseen)
    /// Longest rendezvous chain ending at this element (>= 1).
    std::uint64_t depth = 0;
    /// How long the early partner waited at the join: |sender ready -
    /// receiver ready|. The profiler's per-rendezvous slack — 0 means
    /// both sides arrived together and neither could have been later
    /// without delaying the commit.
    std::uint64_t slack = 0;
    /// Index into Profile::rendezvous of the chain predecessor
    /// (kNoRendezvous for chain heads).
    std::size_t parent = 0;
    bool on_critical_path = false;
};

inline constexpr std::size_t kNoRendezvous =
    static_cast<std::size_t>(-1);

/// Where one process's time went, in event-stream time units. The
/// categories partition [0, total]: total is the time of the process's
/// last observed event and working is the unattributed remainder.
struct ProcessBreakdown {
    std::uint64_t total = 0;
    std::uint64_t working = 0;
    std::uint64_t blocked = 0;        ///< waiting on a rendezvous partner
    std::uint64_t down = 0;           ///< crashed, awaiting restart
    std::uint64_t barrier_stall = 0;  ///< waiting at an epoch barrier
};

/// Blocked time charged to one undirected channel {a, b} (a < b).
struct ChannelWait {
    std::uint32_t a = 0;
    std::uint32_t b = 0;
    std::uint64_t wait = 0;
    std::uint64_t rendezvous = 0;  ///< completions observed on the channel
};

struct Profile {
    /// Time of the last event in the stream (virtual ticks or wall ns).
    std::uint64_t span = 0;

    /// Every realized rendezvous, in commit order.
    std::vector<RendezvousSpan> rendezvous;

    /// Indices into `rendezvous` along the critical path, chain order
    /// (head first). critical_length == critical_path.size().
    std::vector<std::size_t> critical_path;
    std::uint64_t critical_length = 0;
    /// Event-stream time between the chain head's send and the chain
    /// tail's completion — the latency the chain bounds.
    std::uint64_t critical_span = 0;
    /// Total slack along the critical path (how much co-scheduling
    /// headroom the binding chain itself still had at its joins).
    std::uint64_t critical_slack = 0;

    std::vector<ProcessBreakdown> processes;

    /// Sorted by (a, b) — deterministic iteration for the JSON export.
    std::vector<ChannelWait> channels;

    /// Barrier-stall time per epoch id (sorted map for determinism).
    std::map<std::uint64_t, std::uint64_t> epoch_stalls;

    /// Dropped-event diagnostics copied from the input: a wrapped ring
    /// profiles only the retained window.
    std::uint64_t events_consumed = 0;
};

/// Builds the profile from a trace event stream (oldest first) as
/// recorded by either runtime. `num_processes` bounds the per-process
/// tables; events naming processes outside it are ignored.
Profile build_profile(std::span<const TraceEvent> events,
                      std::size_t num_processes);

/// Appends the profile as one deterministic sorted-key JSON object:
/// {"channels":[...],"critical_path":{...},"epoch_stalls":{...},
///  "events_consumed":N,"processes":[...],"span":N}.
/// Contains no wall-clock fields of its own — when the input events are
/// wall-timed the *values* are wall-derived, which is exactly what the
/// determinism gate strips by regenerating from virtual-time traces.
void write_profile_json(const Profile& profile, std::string& out);
std::string to_profile_json(const Profile& profile);

/// Chrome trace-event JSON of the raw events plus a highlighted critical
/// path: pid 1 carries the per-process instant events exactly like
/// TraceSink::write_chrome_trace, pid 2 ("critical path" via a process
/// metadata record) carries one complete-span ("X") slice per critical
/// rendezvous, so Perfetto renders the binding chain as its own track.
void write_critical_path_trace(std::span<const TraceEvent> events,
                               const Profile& profile, std::string& out);

}  // namespace syncts::obs
