#include "obs/trace_sink.hpp"

#include <algorithm>
#include <stdexcept>

namespace syncts::obs {

const char* to_string(TraceEventKind kind) noexcept {
    switch (kind) {
        case TraceEventKind::send: return "send";
        case TraceEventKind::receive: return "receive";
        case TraceEventKind::ack: return "ack";
        case TraceEventKind::commit: return "commit";
        case TraceEventKind::retransmit: return "retransmit";
        case TraceEventKind::timeout: return "timeout";
        case TraceEventKind::duplicate_drop: return "duplicate_drop";
        case TraceEventKind::ack_replay: return "ack_replay";
        case TraceEventKind::corrupt_reject: return "corrupt_reject";
        case TraceEventKind::drop: return "drop";
        case TraceEventKind::stamp: return "stamp";
        case TraceEventKind::phase: return "phase";
        case TraceEventKind::internal: return "internal";
        case TraceEventKind::epoch_reject: return "epoch_reject";
        case TraceEventKind::nack: return "nack";
        case TraceEventKind::epoch: return "epoch";
        case TraceEventKind::crash: return "crash";
        case TraceEventKind::restart: return "restart";
        case TraceEventKind::hello: return "hello";
        case TraceEventKind::park: return "park";
        case TraceEventKind::batch: return "batch";
        case TraceEventKind::coalesce: return "coalesce";
        case TraceEventKind::delta_resync: return "delta_resync";
        case TraceEventKind::bsched_defer: return "bsched_defer";
    }
    return "unknown";
}

TraceSink::TraceSink(std::size_t capacity) {
    if (capacity == 0) {
        throw std::invalid_argument("trace sink capacity must be >= 1");
    }
    ring_.resize(capacity);
}

void TraceSink::clear() noexcept {
    recorded_ = 0;
    head_ = 0;
    peak_ = 0;
}

void TraceSink::for_each(
    const std::function<void(const TraceEvent&)>& fn) const {
    const std::size_t kept = size();
    const std::uint64_t first = recorded_ - kept;
    for (std::size_t i = 0; i < kept; ++i) {
        fn(ring_[static_cast<std::size_t>((first + i) % ring_.size())]);
    }
}

std::vector<TraceEvent> TraceSink::events() const {
    std::vector<TraceEvent> out;
    out.reserve(size());
    for_each([&](const TraceEvent& e) { out.push_back(e); });
    return out;
}

void TraceSink::write_chrome_trace(std::string& out) const {
    out += "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
    bool first = true;
    for_each([&](const TraceEvent& e) {
        if (!first) out += ',';
        first = false;
        out += "{\"name\":\"";
        out += to_string(e.kind);
        out += "\",\"ph\":\"";
        out += e.kind == TraceEventKind::phase ? 'X' : 'i';
        out += "\",\"ts\":" + std::to_string(e.virtual_time);
        if (e.kind == TraceEventKind::phase) {
            out += ",\"dur\":" + std::to_string(e.arg_a);
        }
        out += ",\"pid\":1,\"tid\":" + std::to_string(e.process);
        if (e.kind != TraceEventKind::phase) {
            out += ",\"s\":\"t\"";
        }
        out += ",\"args\":{\"peer\":" + std::to_string(e.peer) +
               ",\"logical\":" + std::to_string(e.logical) +
               ",\"a\":" + std::to_string(e.arg_a) +
               ",\"b\":" + std::to_string(e.arg_b) + "}}";
    });
    out += "]}";
}

std::string TraceSink::to_chrome_trace() const {
    std::string out;
    write_chrome_trace(out);
    return out;
}

namespace {

constexpr std::uint8_t kMagic[4] = {'S', 'Y', 'T', 'R'};
constexpr std::uint32_t kVersion = 1;
constexpr std::size_t kEventBytes = kTraceEventBytes;

void put_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
    for (int i = 0; i < 4; ++i) {
        out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
    }
}

void put_u64(std::vector<std::uint8_t>& out, std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
        out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
    }
}

std::uint32_t get_u32(const std::vector<std::uint8_t>& in, std::size_t at) {
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) {
        v |= static_cast<std::uint32_t>(in[at + static_cast<std::size_t>(i)])
             << (8 * i);
    }
    return v;
}

std::uint64_t get_u64(const std::vector<std::uint8_t>& in, std::size_t at) {
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i) {
        v |= static_cast<std::uint64_t>(in[at + static_cast<std::size_t>(i)])
             << (8 * i);
    }
    return v;
}

std::uint64_t load_u64(const std::uint8_t* at) {
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i) {
        v |= static_cast<std::uint64_t>(at[i]) << (8 * i);
    }
    return v;
}

std::uint32_t load_u32(const std::uint8_t* at) {
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) {
        v |= static_cast<std::uint32_t>(at[i]) << (8 * i);
    }
    return v;
}

}  // namespace

void encode_trace_event_into(const TraceEvent& event,
                             std::vector<std::uint8_t>& out) {
    put_u64(out, event.virtual_time);
    put_u64(out, event.logical);
    put_u64(out, event.arg_a);
    put_u64(out, event.arg_b);
    put_u32(out, event.process);
    put_u32(out, event.peer);
    out.push_back(static_cast<std::uint8_t>(event.kind));
}

TraceEvent decode_trace_event(const std::uint8_t* at) {
    TraceEvent e;
    e.virtual_time = load_u64(at);
    e.logical = load_u64(at + 8);
    e.arg_a = load_u64(at + 16);
    e.arg_b = load_u64(at + 24);
    e.process = load_u32(at + 32);
    e.peer = load_u32(at + 36);
    e.kind = static_cast<TraceEventKind>(at[40]);
    return e;
}

void TraceSink::write_binary(std::vector<std::uint8_t>& out) const {
    out.clear();
    out.reserve(4 + 4 + 8 + size() * kEventBytes);
    out.insert(out.end(), std::begin(kMagic), std::end(kMagic));
    put_u32(out, kVersion);
    put_u64(out, static_cast<std::uint64_t>(size()));
    for_each([&](const TraceEvent& e) { encode_trace_event_into(e, out); });
}

std::vector<TraceEvent> TraceSink::read_binary(
    const std::vector<std::uint8_t>& bytes) {
    if (bytes.size() < 16 || !std::equal(std::begin(kMagic),
                                         std::end(kMagic), bytes.begin())) {
        throw std::invalid_argument("not a syncts binary trace");
    }
    if (get_u32(bytes, 4) != kVersion) {
        throw std::invalid_argument("unsupported binary trace version");
    }
    const std::uint64_t count = get_u64(bytes, 8);
    if (bytes.size() != 16 + count * kEventBytes) {
        throw std::invalid_argument("binary trace length mismatch");
    }
    std::vector<TraceEvent> events;
    events.reserve(static_cast<std::size_t>(count));
    std::size_t at = 16;
    for (std::uint64_t i = 0; i < count; ++i) {
        events.push_back(decode_trace_event(bytes.data() + at));
        at += kEventBytes;
    }
    return events;
}

}  // namespace syncts::obs
