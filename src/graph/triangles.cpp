#include "graph/triangles.hpp"

#include <algorithm>

namespace syncts {

Triangle Triangle::make(ProcessId a, ProcessId b, ProcessId c) {
    SYNCTS_REQUIRE(a != b && b != c && a != c,
                   "triangle corners must be distinct");
    Triangle t{{a, b, c}};
    std::ranges::sort(t.corners);
    return t;
}

std::vector<Triangle> all_triangles(const Graph& g) {
    std::vector<Triangle> result;
    for (const Edge& e : g.edges()) {
        // Scan the smaller endpoint's neighborhood; report each triangle
        // once by requiring the third corner to exceed both endpoints.
        const ProcessId low_deg_end =
            g.degree(e.u) <= g.degree(e.v) ? e.u : e.v;
        const ProcessId other_end = e.other(low_deg_end);
        for (const ProcessId w : g.neighbors(low_deg_end)) {
            if (w > e.u && w > e.v && g.has_edge(w, other_end)) {
                result.push_back(Triangle::make(e.u, e.v, w));
            }
        }
    }
    std::ranges::sort(result);
    return result;
}

std::vector<Triangle> triangles_containing(const Graph& g, ProcessId u,
                                           ProcessId v) {
    std::vector<Triangle> result;
    if (!g.has_edge(u, v)) return result;
    const ProcessId low_deg_end = g.degree(u) <= g.degree(v) ? u : v;
    const ProcessId other_end = low_deg_end == u ? v : u;
    for (const ProcessId w : g.neighbors(low_deg_end)) {
        if (w != other_end && g.has_edge(w, other_end)) {
            result.push_back(Triangle::make(u, v, w));
        }
    }
    std::ranges::sort(result);
    return result;
}

}  // namespace syncts
