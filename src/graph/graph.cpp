#include "graph/graph.hpp"

#include <algorithm>
#include <sstream>
#include <vector>

namespace syncts {

Graph::Graph(std::size_t num_vertices) : adjacency_(num_vertices) {}

std::uint64_t Graph::key_of(ProcessId a, ProcessId b) noexcept {
    const auto lo = static_cast<std::uint64_t>(a < b ? a : b);
    const auto hi = static_cast<std::uint64_t>(a < b ? b : a);
    return (hi << 32) | lo;
}

std::size_t Graph::add_edge(ProcessId a, ProcessId b) {
    SYNCTS_REQUIRE(a < num_vertices() && b < num_vertices(),
                   "edge endpoint out of range");
    const Edge e = Edge::make(a, b);
    const auto [it, inserted] = edge_lookup_.emplace(key_of(a, b), edges_.size());
    SYNCTS_REQUIRE(inserted, "duplicate edge");
    edges_.push_back(e);
    adjacency_[a].push_back(b);
    adjacency_[b].push_back(a);
    return it->second;
}

ProcessId Graph::add_vertex() {
    const auto id = static_cast<ProcessId>(adjacency_.size());
    adjacency_.emplace_back();
    return id;
}

bool Graph::has_edge(ProcessId a, ProcessId b) const noexcept {
    if (a == b || a >= num_vertices() || b >= num_vertices()) return false;
    return edge_lookup_.contains(key_of(a, b));
}

std::optional<std::size_t> Graph::edge_index(ProcessId a,
                                             ProcessId b) const noexcept {
    if (a == b || a >= num_vertices() || b >= num_vertices()) {
        return std::nullopt;
    }
    const auto it = edge_lookup_.find(key_of(a, b));
    if (it == edge_lookup_.end()) return std::nullopt;
    return it->second;
}

std::span<const ProcessId> Graph::neighbors(ProcessId p) const {
    SYNCTS_REQUIRE(p < num_vertices(), "vertex out of range");
    return adjacency_[p];
}

std::size_t Graph::degree(ProcessId p) const {
    SYNCTS_REQUIRE(p < num_vertices(), "vertex out of range");
    return adjacency_[p].size();
}

bool Graph::is_acyclic() const {
    // Iterative DFS over each component; a back edge to a non-parent vertex
    // witnesses a cycle. Parallel edges are impossible by construction.
    const std::size_t n = num_vertices();
    std::vector<char> visited(n, 0);
    std::vector<std::pair<ProcessId, ProcessId>> stack;  // (vertex, parent)
    for (ProcessId root = 0; root < n; ++root) {
        if (visited[root]) continue;
        stack.emplace_back(root, kNoProcess);
        visited[root] = 1;
        while (!stack.empty()) {
            const auto [v, parent] = stack.back();
            stack.pop_back();
            bool parent_skipped = false;
            for (const ProcessId w : adjacency_[v]) {
                if (w == parent && !parent_skipped) {
                    // Skip the tree edge back to the parent exactly once.
                    parent_skipped = true;
                    continue;
                }
                if (visited[w]) return false;
                visited[w] = 1;
                stack.emplace_back(w, v);
            }
        }
    }
    return true;
}

bool Graph::is_connected() const {
    const std::size_t n = num_vertices();
    if (n <= 1) return true;
    std::vector<char> visited(n, 0);
    std::vector<ProcessId> stack{0};
    visited[0] = 1;
    std::size_t seen = 1;
    while (!stack.empty()) {
        const ProcessId v = stack.back();
        stack.pop_back();
        for (const ProcessId w : adjacency_[v]) {
            if (!visited[w]) {
                visited[w] = 1;
                ++seen;
                stack.push_back(w);
            }
        }
    }
    return seen == n;
}

bool Graph::is_star() const {
    if (edges_.empty()) return true;
    // Candidate centers are the endpoints of the first edge; every other
    // edge must share whichever candidate survives.
    for (const ProcessId center : {edges_[0].u, edges_[0].v}) {
        if (std::ranges::all_of(edges_, [center](const Edge& e) {
                return e.touches(center);
            })) {
            return true;
        }
    }
    return false;
}

bool Graph::is_triangle() const {
    if (edges_.size() != 3) return false;
    const Edge& a = edges_[0];
    const Edge& b = edges_[1];
    const Edge& c = edges_[2];
    // Three distinct normalized edges form a triangle iff they span exactly
    // three vertices.
    std::vector<ProcessId> vertices{a.u, a.v, b.u, b.v, c.u, c.v};
    std::ranges::sort(vertices);
    const auto [first, last] = std::ranges::unique(vertices);
    vertices.erase(first, last);
    return vertices.size() == 3;
}

std::string Graph::to_string() const {
    std::ostringstream os;
    os << "Graph(n=" << num_vertices() << ", m=" << num_edges() << ')';
    return os.str();
}

}  // namespace syncts
