#pragma once

#include <cstddef>

#include "common/rng.hpp"
#include "graph/graph.hpp"

/// \file generators.hpp
/// Topology families used throughout the paper and the benchmark harness.
///
/// The paper's motivating topologies: complete graphs (worst case, Fig. 3),
/// trees (Fig. 4), stars/triangles (Lemma 1), client–server systems
/// (Section 3.3), plus the concrete graphs of Fig. 2(b)/Fig. 8 and the
/// disjoint-triangle family that makes the β(G) ≤ 2α(G) bound tight.

namespace syncts::topology {

/// Complete graph K_n.
Graph complete(std::size_t n);

/// Star on n vertices rooted at vertex 0 (n >= 1).
Graph star(std::size_t n);

/// Simple path P_n: 0-1-2-..-(n-1).
Graph path(std::size_t n);

/// Cycle C_n (n >= 3).
Graph ring(std::size_t n);

/// Single triangle on 3 vertices.
Graph triangle();

/// `count` vertex-disjoint triangles (3*count vertices). This family makes
/// the vertex-cover-vs-decomposition bound β(G) = 2α(G) tight (Section 3.3).
Graph disjoint_triangles(std::size_t count);

/// Uniform random labelled tree on n vertices (Prüfer-style attachment:
/// vertex i attaches to a uniformly random earlier vertex).
Graph random_tree(std::size_t n, Rng& rng);

/// Complete k-ary tree on n vertices: vertex i's parent is (i-1)/k.
Graph kary_tree(std::size_t n, std::size_t arity);

/// Client–server topology: vertices [0, servers) are servers, the rest are
/// clients. Every client is connected to every server; servers are also
/// connected to each other when `connect_servers` is set. This models the
/// synchronous-RPC systems of Section 3.3: a decomposition of one star per
/// server always exists, so d == servers regardless of client count.
Graph client_server(std::size_t servers, std::size_t clients,
                    bool connect_servers = false);

/// 2-D grid of width x height vertices.
Graph grid(std::size_t width, std::size_t height);

/// Hypercube Q_d on 2^dimension vertices.
Graph hypercube(std::size_t dimension);

/// Erdős–Rényi G(n, p): each possible edge present independently with
/// probability p.
Graph random_gnp(std::size_t n, double p, Rng& rng);

/// Random graph with exactly m distinct edges, uniform over edge sets.
Graph random_gnm(std::size_t n, std::size_t m, Rng& rng);

/// Random connected graph: a random tree plus `extra_edges` additional
/// distinct random edges.
Graph random_connected(std::size_t n, std::size_t extra_edges, Rng& rng);

/// The 11-vertex topology of the paper's Fig. 2(b), whose greedy
/// decomposition run is traced in Fig. 8. Vertices map to the paper's
/// labels a..k as 0..10.
Graph paper_fig2b();

/// The 20-process tree of the paper's Fig. 4, which decomposes into three
/// stars E1, E2, E3.
Graph paper_fig4_tree();

}  // namespace syncts::topology
