#pragma once

#include <cstddef>
#include <optional>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/check.hpp"
#include "common/ids.hpp"

/// \file graph.hpp
/// Undirected communication topology of a synchronous system.
///
/// The paper models the system as an undirected graph G = (V, E) where
/// vertices are processes and (Pi, Pj) ∈ E when Pi and Pj can communicate
/// directly (Section 3.1). Edge decompositions, vertex covers, and the size
/// of the online algorithm's vectors are all derived from this graph.

namespace syncts {

/// An undirected edge, stored normalized with u < v.
struct Edge {
    ProcessId u = 0;
    ProcessId v = 0;

    /// Builds a normalized edge; a == b is rejected (no self-loops: a process
    /// does not send synchronous messages to itself).
    static Edge make(ProcessId a, ProcessId b) {
        SYNCTS_REQUIRE(a != b, "self-loop edges are not allowed");
        return a < b ? Edge{a, b} : Edge{b, a};
    }

    /// True when `p` is one of the two endpoints.
    bool touches(ProcessId p) const noexcept { return u == p || v == p; }

    /// The endpoint that is not `p`; requires touches(p).
    ProcessId other(ProcessId p) const {
        SYNCTS_REQUIRE(touches(p), "process is not an endpoint of this edge");
        return u == p ? v : u;
    }

    friend bool operator==(const Edge&, const Edge&) = default;
    friend auto operator<=>(const Edge&, const Edge&) = default;
};

/// Simple undirected graph over a fixed vertex set {0, .., n-1}.
///
/// Vertices are created up front; edges are added incrementally. Parallel
/// edges and self-loops are rejected. Edges are indexed densely 0..m-1 in
/// insertion order; that index is stable and used by the decomposition
/// module to map edges to groups.
class Graph {
public:
    Graph() = default;

    /// Creates an edgeless graph on `num_vertices` vertices.
    explicit Graph(std::size_t num_vertices);

    std::size_t num_vertices() const noexcept { return adjacency_.size(); }
    std::size_t num_edges() const noexcept { return edges_.size(); }

    /// Adds edge {a, b}; returns its dense index. Throws on self-loops,
    /// out-of-range endpoints, or duplicates.
    std::size_t add_edge(ProcessId a, ProcessId b);

    /// Adds an isolated vertex; returns its id. Supports growing systems
    /// (e.g. a new client joining a client-server topology).
    ProcessId add_vertex();

    bool has_edge(ProcessId a, ProcessId b) const noexcept;

    /// Dense index of edge {a, b}, or nullopt when absent.
    std::optional<std::size_t> edge_index(ProcessId a, ProcessId b) const noexcept;

    /// The edge with dense index `index`.
    const Edge& edge(std::size_t index) const {
        SYNCTS_REQUIRE(index < edges_.size(), "edge index out of range");
        return edges_[index];
    }

    /// All edges in insertion order.
    std::span<const Edge> edges() const noexcept { return edges_; }

    /// Neighbors of `p` in insertion order of the incident edges.
    std::span<const ProcessId> neighbors(ProcessId p) const;

    std::size_t degree(ProcessId p) const;

    /// True when the graph has no cycles (i.e., it is a forest).
    bool is_acyclic() const;

    /// True when every vertex is reachable from every other (n <= 1 counts
    /// as connected).
    bool is_connected() const;

    /// True when there is a vertex incident to every edge (Section 3.1).
    /// Edgeless graphs are vacuously stars.
    bool is_star() const;

    /// True when the graph has exactly 3 edges forming a triangle.
    bool is_triangle() const;

    /// Human-readable summary, e.g. "Graph(n=5, m=10)".
    std::string to_string() const;

private:
    static std::uint64_t key_of(ProcessId a, ProcessId b) noexcept;

    std::vector<Edge> edges_;
    std::vector<std::vector<ProcessId>> adjacency_;
    std::unordered_map<std::uint64_t, std::size_t> edge_lookup_;
};

}  // namespace syncts
