#pragma once

#include <cstddef>
#include <vector>

#include "common/ids.hpp"
#include "graph/graph.hpp"

/// \file vertex_cover.hpp
/// Vertex covers of the communication topology.
///
/// Theorem 5 of the paper bounds the timestamp size by min(β(G), N−2) where
/// β(G) is the optimal vertex-cover size: assigning each edge to one cover
/// vertex partitions E into stars. Minimum vertex cover is NP-hard, so we
/// provide the classic maximal-matching 2-approximation for production use
/// and an exact branch-and-bound solver for the benchmark/ratio studies.

namespace syncts {

/// 2-approximate vertex cover via maximal matching: repeatedly take an
/// uncovered edge and add both endpoints. Deterministic (scans edges in
/// insertion order). Size ≤ 2·β(G).
std::vector<ProcessId> approx_vertex_cover(const Graph& g);

/// Exact minimum vertex cover via branch-and-bound with degree-1 reduction
/// and a matching lower bound. Intended for graphs small enough for the
/// ratio experiments (tens of vertices); cost is exponential in β(G).
std::vector<ProcessId> exact_vertex_cover(const Graph& g);

/// True when `cover` touches every edge of `g`.
bool is_vertex_cover(const Graph& g, const std::vector<ProcessId>& cover);

}  // namespace syncts
