#include "graph/generators.hpp"

#include <unordered_set>
#include <vector>

namespace syncts::topology {

Graph complete(std::size_t n) {
    Graph g(n);
    for (ProcessId i = 0; i < n; ++i) {
        for (ProcessId j = i + 1; j < n; ++j) g.add_edge(i, j);
    }
    return g;
}

Graph star(std::size_t n) {
    SYNCTS_REQUIRE(n >= 1, "star needs at least one vertex");
    Graph g(n);
    for (ProcessId leaf = 1; leaf < n; ++leaf) g.add_edge(0, leaf);
    return g;
}

Graph path(std::size_t n) {
    Graph g(n);
    for (ProcessId i = 0; i + 1 < n; ++i) g.add_edge(i, i + 1);
    return g;
}

Graph ring(std::size_t n) {
    SYNCTS_REQUIRE(n >= 3, "ring needs at least three vertices");
    Graph g(n);
    for (ProcessId i = 0; i + 1 < n; ++i) g.add_edge(i, i + 1);
    g.add_edge(static_cast<ProcessId>(n - 1), 0);
    return g;
}

Graph triangle() {
    Graph g(3);
    g.add_edge(0, 1);
    g.add_edge(1, 2);
    g.add_edge(0, 2);
    return g;
}

Graph disjoint_triangles(std::size_t count) {
    Graph g(3 * count);
    for (std::size_t t = 0; t < count; ++t) {
        const auto base = static_cast<ProcessId>(3 * t);
        g.add_edge(base, base + 1);
        g.add_edge(base + 1, base + 2);
        g.add_edge(base, base + 2);
    }
    return g;
}

Graph random_tree(std::size_t n, Rng& rng) {
    Graph g(n);
    for (ProcessId i = 1; i < n; ++i) {
        const auto parent = static_cast<ProcessId>(rng.below(i));
        g.add_edge(parent, i);
    }
    return g;
}

Graph kary_tree(std::size_t n, std::size_t arity) {
    SYNCTS_REQUIRE(arity >= 1, "arity must be positive");
    Graph g(n);
    for (ProcessId i = 1; i < n; ++i) {
        const auto parent = static_cast<ProcessId>((i - 1) / arity);
        g.add_edge(parent, i);
    }
    return g;
}

Graph client_server(std::size_t servers, std::size_t clients,
                    bool connect_servers) {
    SYNCTS_REQUIRE(servers >= 1, "need at least one server");
    Graph g(servers + clients);
    if (connect_servers) {
        for (ProcessId i = 0; i < servers; ++i) {
            for (ProcessId j = i + 1; j < servers; ++j) g.add_edge(i, j);
        }
    }
    for (std::size_t c = 0; c < clients; ++c) {
        const auto client = static_cast<ProcessId>(servers + c);
        for (ProcessId s = 0; s < servers; ++s) g.add_edge(s, client);
    }
    return g;
}

Graph grid(std::size_t width, std::size_t height) {
    Graph g(width * height);
    const auto at = [width](std::size_t x, std::size_t y) {
        return static_cast<ProcessId>(y * width + x);
    };
    for (std::size_t y = 0; y < height; ++y) {
        for (std::size_t x = 0; x < width; ++x) {
            if (x + 1 < width) g.add_edge(at(x, y), at(x + 1, y));
            if (y + 1 < height) g.add_edge(at(x, y), at(x, y + 1));
        }
    }
    return g;
}

Graph hypercube(std::size_t dimension) {
    SYNCTS_REQUIRE(dimension < 20, "hypercube dimension too large");
    const std::size_t n = std::size_t{1} << dimension;
    Graph g(n);
    for (std::size_t v = 0; v < n; ++v) {
        for (std::size_t bit = 0; bit < dimension; ++bit) {
            const std::size_t w = v ^ (std::size_t{1} << bit);
            if (v < w) {
                g.add_edge(static_cast<ProcessId>(v),
                           static_cast<ProcessId>(w));
            }
        }
    }
    return g;
}

Graph random_gnp(std::size_t n, double p, Rng& rng) {
    SYNCTS_REQUIRE(p >= 0.0 && p <= 1.0, "probability out of range");
    Graph g(n);
    for (ProcessId i = 0; i < n; ++i) {
        for (ProcessId j = i + 1; j < n; ++j) {
            if (rng.uniform01() < p) g.add_edge(i, j);
        }
    }
    return g;
}

Graph random_gnm(std::size_t n, std::size_t m, Rng& rng) {
    const std::size_t max_edges = n * (n - 1) / 2;
    SYNCTS_REQUIRE(m <= max_edges, "too many edges requested");
    Graph g(n);
    while (g.num_edges() < m) {
        const auto a = static_cast<ProcessId>(rng.below(n));
        const auto b = static_cast<ProcessId>(rng.below(n));
        if (a != b && !g.has_edge(a, b)) g.add_edge(a, b);
    }
    return g;
}

Graph random_connected(std::size_t n, std::size_t extra_edges, Rng& rng) {
    Graph g = random_tree(n, rng);
    const std::size_t max_edges = n * (n - 1) / 2;
    const std::size_t target =
        std::min(max_edges, g.num_edges() + extra_edges);
    while (g.num_edges() < target) {
        const auto a = static_cast<ProcessId>(rng.below(n));
        const auto b = static_cast<ProcessId>(rng.below(n));
        if (a != b && !g.has_edge(a, b)) g.add_edge(a, b);
    }
    return g;
}

Graph paper_fig2b() {
    // Reconstruction of the paper's Fig. 2(b) topology. The figure image is
    // not part of the provided text, so this graph is built to reproduce the
    // Fig. 8 trace exactly as described in Section 3.3:
    //   step 1 emits one star (a pendant vertex exists),
    //   step 2 emits the triangle (e, f, g) whose corners e, f have degree 2,
    //   step 3 picks the edge with the most adjacent edges and emits two
    //          stars, leaving exactly the edge (j, k),
    //   the loop re-enters step 1 and emits (j, k) as a star,
    // for a total of 4 stars + 1 triangle — which equals the optimal
    // decomposition reported for Fig. 8(f). Vertices a..k map to 0..10.
    constexpr ProcessId a = 0, b = 1, c = 2, d = 3, e = 4, f = 5, g = 6,
                        h = 7, i = 8, j = 9, k = 10;
    Graph graph(11);
    graph.add_edge(a, b);
    graph.add_edge(b, c);
    graph.add_edge(b, d);
    graph.add_edge(e, f);
    graph.add_edge(f, g);
    graph.add_edge(e, g);
    graph.add_edge(g, h);
    graph.add_edge(h, j);
    graph.add_edge(h, i);
    graph.add_edge(j, k);
    graph.add_edge(i, k);
    graph.add_edge(g, i);
    return graph;
}

Graph paper_fig4_tree() {
    // Reconstruction of the paper's Fig. 4: a 20-process tree whose edges
    // decompose into three stars E1, E2, E3. Three hub processes 0, 1, 2
    // form a path; the remaining 17 processes are leaves split across the
    // hubs. The optimal decomposition (three stars rooted at the hubs) is
    // found by the greedy algorithm per Theorem 7.
    Graph g(20);
    g.add_edge(0, 1);
    g.add_edge(1, 2);
    for (ProcessId leaf = 3; leaf <= 8; ++leaf) g.add_edge(0, leaf);
    for (ProcessId leaf = 9; leaf <= 13; ++leaf) g.add_edge(1, leaf);
    for (ProcessId leaf = 14; leaf <= 19; ++leaf) g.add_edge(2, leaf);
    return g;
}

}  // namespace syncts::topology
