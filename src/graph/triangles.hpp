#pragma once

#include <array>
#include <vector>

#include "common/ids.hpp"
#include "graph/graph.hpp"

/// \file triangles.hpp
/// Triangle enumeration used by the decomposition algorithms: the greedy
/// decomposer's step 2 looks for triangles whose two corners have degree 2,
/// and the exact decomposer branches over triangles containing a chosen edge.

namespace syncts {

/// A triangle identified by its three corners, stored sorted ascending.
struct Triangle {
    std::array<ProcessId, 3> corners{};

    static Triangle make(ProcessId a, ProcessId b, ProcessId c);

    friend bool operator==(const Triangle&, const Triangle&) = default;
    friend auto operator<=>(const Triangle&, const Triangle&) = default;
};

/// All triangles of `g`, each listed once, in lexicographic corner order.
/// Runs in O(sum over edges of min-degree endpoint's degree).
std::vector<Triangle> all_triangles(const Graph& g);

/// All triangles containing the edge {u, v} (i.e., common neighbors of u
/// and v). Returns an empty vector when {u, v} is not an edge.
std::vector<Triangle> triangles_containing(const Graph& g, ProcessId u,
                                           ProcessId v);

}  // namespace syncts
