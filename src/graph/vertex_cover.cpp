#include "graph/vertex_cover.hpp"

#include <algorithm>
#include <vector>

namespace syncts {

std::vector<ProcessId> approx_vertex_cover(const Graph& g) {
    std::vector<char> in_cover(g.num_vertices(), 0);
    std::vector<ProcessId> cover;
    for (const Edge& e : g.edges()) {
        if (!in_cover[e.u] && !in_cover[e.v]) {
            in_cover[e.u] = in_cover[e.v] = 1;
            cover.push_back(e.u);
            cover.push_back(e.v);
        }
    }
    return cover;
}

bool is_vertex_cover(const Graph& g, const std::vector<ProcessId>& cover) {
    std::vector<char> in_cover(g.num_vertices(), 0);
    for (const ProcessId v : cover) {
        if (v >= g.num_vertices()) return false;
        in_cover[v] = 1;
    }
    return std::ranges::all_of(g.edges(), [&](const Edge& e) {
        return in_cover[e.u] || in_cover[e.v];
    });
}

namespace {

/// Mutable working state for the branch-and-bound search. Vertices are
/// "removed" when placed in the cover or when isolated; adjacency is kept as
/// per-vertex neighbor vectors with lazily checked liveness.
class CoverSearch {
public:
    explicit CoverSearch(const Graph& g)
        : adjacency_(g.num_vertices()), alive_(g.num_vertices(), 1) {
        for (const Edge& e : g.edges()) {
            adjacency_[e.u].push_back(e.v);
            adjacency_[e.v].push_back(e.u);
        }
        best_.resize(g.num_vertices());
        for (ProcessId v = 0; v < g.num_vertices(); ++v) best_[v] = v;
    }

    std::vector<ProcessId> run() {
        std::vector<ProcessId> current;
        branch(current);
        return best_;
    }

private:
    std::size_t live_degree(ProcessId v) const {
        std::size_t d = 0;
        for (const ProcessId w : adjacency_[v]) d += alive_[w] ? 1 : 0;
        return d;
    }

    /// Greedy matching on the live graph: every matched edge needs a
    /// distinct cover vertex, so |matching| lower-bounds the remaining cost.
    std::size_t matching_lower_bound() const {
        std::vector<char> used(alive_.size(), 0);
        std::size_t matched = 0;
        for (ProcessId v = 0; v < alive_.size(); ++v) {
            if (!alive_[v] || used[v]) continue;
            for (const ProcessId w : adjacency_[v]) {
                if (alive_[w] && !used[w] && w != v) {
                    used[v] = used[w] = 1;
                    ++matched;
                    break;
                }
            }
        }
        return matched;
    }

    void take(ProcessId v, std::vector<ProcessId>& current) {
        alive_[v] = 0;
        current.push_back(v);
    }

    void untake(ProcessId v, std::vector<ProcessId>& current) {
        alive_[v] = 1;
        current.pop_back();
    }

    void branch(std::vector<ProcessId>& current) {
        if (current.size() + matching_lower_bound() >= best_.size()) return;

        // Degree-1 reduction: if v has exactly one live neighbor w, some
        // optimal extension takes w. Applied exhaustively before branching.
        for (ProcessId v = 0; v < alive_.size(); ++v) {
            if (!alive_[v] || live_degree(v) != 1) continue;
            ProcessId w = kNoProcess;
            for (const ProcessId candidate : adjacency_[v]) {
                if (alive_[candidate]) {
                    w = candidate;
                    break;
                }
            }
            take(w, current);
            branch(current);
            untake(w, current);
            return;
        }

        // Branch on a maximum-live-degree vertex.
        ProcessId pivot = kNoProcess;
        std::size_t pivot_degree = 0;
        for (ProcessId v = 0; v < alive_.size(); ++v) {
            if (!alive_[v]) continue;
            const std::size_t d = live_degree(v);
            if (d > pivot_degree) {
                pivot_degree = d;
                pivot = v;
            }
        }
        if (pivot == kNoProcess || pivot_degree == 0) {
            // No live edges remain: `current` is a cover.
            if (current.size() < best_.size()) best_ = current;
            return;
        }

        // Option A: pivot joins the cover.
        take(pivot, current);
        branch(current);
        untake(pivot, current);

        // Option B: pivot stays out, so all its live neighbors join.
        std::vector<ProcessId> taken;
        for (const ProcessId w : adjacency_[pivot]) {
            if (alive_[w]) {
                take(w, current);
                taken.push_back(w);
            }
        }
        branch(current);
        for (auto it = taken.rbegin(); it != taken.rend(); ++it) {
            untake(*it, current);
        }
    }

    std::vector<std::vector<ProcessId>> adjacency_;
    std::vector<char> alive_;
    std::vector<ProcessId> best_;
};

}  // namespace

std::vector<ProcessId> exact_vertex_cover(const Graph& g) {
    if (g.num_edges() == 0) return {};
    CoverSearch search(g);
    std::vector<ProcessId> cover = search.run();
    std::ranges::sort(cover);
    SYNCTS_ENSURE(is_vertex_cover(g, cover),
                  "exact_vertex_cover produced a non-cover");
    return cover;
}

}  // namespace syncts
