#include "runtime/async_sim.hpp"

#include <utility>

#include "common/check.hpp"

namespace syncts {

AsyncSimulator::AsyncSimulator(std::size_t num_processes, std::uint64_t seed)
    : handlers_(num_processes), down_(num_processes, false), rng_(seed) {
    set_fixed_latency(1);
}

void AsyncSimulator::set_down(ProcessId p, bool down) {
    SYNCTS_REQUIRE(p < down_.size(), "process out of range");
    down_[p] = down;
}

bool AsyncSimulator::is_down(ProcessId p) const noexcept {
    return p < down_.size() && down_[p];
}

void AsyncSimulator::set_fixed_latency(std::uint64_t latency) {
    SYNCTS_REQUIRE(latency > 0, "latency must be positive");
    latency_ = [latency](const Packet&, Rng&) { return latency; };
}

void AsyncSimulator::set_uniform_latency(std::uint64_t lo, std::uint64_t hi) {
    SYNCTS_REQUIRE(lo > 0 && lo <= hi, "invalid latency range");
    latency_ = [lo, hi](const Packet&, Rng& rng) {
        return rng.between(lo, hi);
    };
}

void AsyncSimulator::set_latency_model(LatencyModel model) {
    SYNCTS_REQUIRE(model != nullptr, "latency model must be callable");
    latency_ = std::move(model);
}

void AsyncSimulator::set_fault_plan(FaultPlan plan) {
    injector_ = FaultInjector(std::move(plan));
}

void AsyncSimulator::on_deliver(ProcessId p, Handler handler) {
    SYNCTS_REQUIRE(p < handlers_.size(), "process out of range");
    handlers_[p] = std::move(handler);
}

void AsyncSimulator::send(std::uint64_t now, Packet packet) {
    SYNCTS_REQUIRE(packet.destination < handlers_.size(),
                   "packet destination out of range");
    const std::vector<FaultInjector::Copy> copies = injector_.disposition(
        packet.source, packet.destination, packet.kind);
    for (const FaultInjector::Copy& copy : copies) {
        const std::uint64_t latency = latency_(packet, rng_);
        SYNCTS_REQUIRE(latency > 0, "latency model returned zero");
        Packet delivered = packet;  // last copy could move, but keep it simple
        if (copy.corrupt) injector_.corrupt_body(delivered.body);
        queue_.push({now + latency + copy.extra_delay, next_seq_++,
                     std::move(delivered), nullptr});
    }
}

void AsyncSimulator::schedule(std::uint64_t when, TimerCallback callback) {
    SYNCTS_REQUIRE(callback != nullptr, "timer callback must be callable");
    queue_.push({when, next_seq_++, Packet{}, std::move(callback)});
}

std::uint64_t AsyncSimulator::run(std::uint64_t max_events) {
    std::uint64_t now = 0;
    while (!queue_.empty()) {
        SYNCTS_REQUIRE(delivered_ + timers_fired_ < max_events,
                       "event budget exhausted: protocol livelock?");
        const Scheduled next = queue_.top();
        queue_.pop();
        now = next.time;
        if (next.timer != nullptr) {
            ++timers_fired_;
            next.timer(now);
            continue;
        }
        if (down_[next.packet.destination]) {
            // The destination is crashed: the packet reaches a dead NIC.
            ++crash_stats_.down_drops;
            continue;
        }
        ++delivered_;
        const Handler& handler = handlers_[next.packet.destination];
        SYNCTS_ENSURE(handler != nullptr,
                      "packet delivered to a process with no handler");
        handler(now, next.packet);
    }
    return now;
}

}  // namespace syncts
