#include "runtime/failure_detector.hpp"

#include <algorithm>
#include <cmath>

#include "common/check.hpp"

namespace syncts {

namespace {

/// EWMA smoothing for the interval estimate: new observations count for
/// an eighth, so one outlier cannot swing the suspicion scale.
constexpr double kAlpha = 0.125;

/// ln 10 — converts the exponential survival exponent to a base-10
/// suspicion level.
constexpr double kLn10 = 2.302585092994046;

/// Interval floor so a peer first observed at sub-millisecond cadence
/// does not produce infinite suspicion on its first silent stretch.
constexpr double kMinMeanMs = 0.01;

}  // namespace

FailureDetector::FailureDetector(double phi_threshold)
    : threshold_(phi_threshold) {
    SYNCTS_REQUIRE(phi_threshold > 0,
                   "failure detector threshold must be positive");
}

void FailureDetector::record_success(ProcessId peer, double interval_ms) {
    const double interval = std::max(interval_ms, 0.0);
    const std::lock_guard lock(mutex_);
    PeerStats& stats = stats_[peer];
    if (stats.samples == 0) {
        stats.mean_interval_ms = interval;
    } else {
        stats.mean_interval_ms += kAlpha * (interval - stats.mean_interval_ms);
    }
    ++stats.samples;
    stats.silence_ms = 0;
    ++successes_;
}

void FailureDetector::record_timeout(ProcessId peer, double waited_ms) {
    const std::lock_guard lock(mutex_);
    stats_[peer].silence_ms += std::max(waited_ms, 0.0);
    ++timeouts_;
}

double FailureDetector::phi_locked(const PeerStats& stats) const {
    if (stats.silence_ms <= 0) return 0;
    const double mean = std::max(stats.mean_interval_ms, kMinMeanMs);
    return stats.silence_ms / (mean * kLn10);
}

double FailureDetector::phi(ProcessId peer) const {
    const std::lock_guard lock(mutex_);
    const auto it = stats_.find(peer);
    return it == stats_.end() ? 0 : phi_locked(it->second);
}

bool FailureDetector::suspected(ProcessId peer) const {
    return phi(peer) >= threshold_;
}

std::vector<ProcessId> FailureDetector::suspects() const {
    std::vector<ProcessId> out;
    {
        const std::lock_guard lock(mutex_);
        for (const auto& [peer, stats] : stats_) {
            if (phi_locked(stats) >= threshold_) out.push_back(peer);
        }
    }
    std::sort(out.begin(), out.end());
    return out;
}

void FailureDetector::clear(ProcessId peer) {
    const std::lock_guard lock(mutex_);
    stats_.erase(peer);
}

std::uint64_t FailureDetector::successes() const {
    const std::lock_guard lock(mutex_);
    return successes_;
}

std::uint64_t FailureDetector::timeouts() const {
    const std::lock_guard lock(mutex_);
    return timeouts_;
}

}  // namespace syncts
