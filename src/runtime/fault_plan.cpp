#include "runtime/fault_plan.hpp"

#include <utility>

#include "common/check.hpp"

namespace syncts {

std::string FaultStats::to_string() const {
    std::string text = "dropped=" + std::to_string(dropped) +
                       " targeted=" + std::to_string(targeted_drops) +
                       " duplicated=" + std::to_string(duplicated) +
                       " corrupted=" + std::to_string(corrupted) +
                       " delayed=" + std::to_string(delayed);
    if (crashes > 0 || down_drops > 0) {
        text += " crashes=" + std::to_string(crashes) +
                " down_drops=" + std::to_string(down_drops);
    }
    return text;
}

namespace {

void require_probability(double p, const char* name) {
    SYNCTS_REQUIRE(p >= 0.0 && p <= 1.0,
                   std::string(name) + " must be a probability in [0, 1]");
}

}  // namespace

FaultInjector::FaultInjector(FaultPlan plan)
    : plan_(std::move(plan)),
      rng_(plan_.seed),
      rule_hits_(plan_.targeted_drops.size(), 0) {
    require_probability(plan_.drop_probability, "drop_probability");
    require_probability(plan_.duplicate_probability, "duplicate_probability");
    require_probability(plan_.corrupt_probability, "corrupt_probability");
    require_probability(plan_.delay_probability, "delay_probability");
    for (const TargetedDrop& rule : plan_.targeted_drops) {
        SYNCTS_REQUIRE(rule.occurrence >= 1,
                       "targeted drop occurrences are 1-based");
    }
    for (const CrashRule& rule : plan_.crashes) {
        SYNCTS_REQUIRE(rule.at_step >= 1, "crash rule steps are 1-based");
    }
}

std::vector<FaultInjector::Copy> FaultInjector::disposition(
    ProcessId source, ProcessId destination, std::uint32_t kind) {
    if (!active()) return {Copy{}};

    // Targeted rules fire regardless of the probabilistic dice so test
    // scenarios stay exact.
    for (std::size_t r = 0; r < plan_.targeted_drops.size(); ++r) {
        const TargetedDrop& rule = plan_.targeted_drops[r];
        if (rule.source != source || rule.destination != destination) continue;
        if (rule.kind != TargetedDrop::kAnyKind && rule.kind != kind) continue;
        if (++rule_hits_[r] == rule.occurrence) {
            ++stats_.targeted_drops;
            return {};
        }
    }

    if (plan_.drop_probability > 0.0 &&
        rng_.uniform01() < plan_.drop_probability) {
        ++stats_.dropped;
        return {};
    }

    std::size_t copies = 1;
    if (plan_.duplicate_probability > 0.0 &&
        rng_.uniform01() < plan_.duplicate_probability) {
        ++stats_.duplicated;
        copies = 2;
    }

    std::vector<Copy> result(copies);
    for (Copy& copy : result) {
        if (plan_.corrupt_probability > 0.0 &&
            rng_.uniform01() < plan_.corrupt_probability) {
            ++stats_.corrupted;
            copy.corrupt = true;
        }
        if (plan_.delay_probability > 0.0 && plan_.max_extra_delay > 0 &&
            rng_.uniform01() < plan_.delay_probability) {
            ++stats_.delayed;
            copy.extra_delay = rng_.between(1, plan_.max_extra_delay);
        }
    }
    return result;
}

void FaultInjector::corrupt_body(std::vector<std::uint8_t>& body) {
    if (body.empty()) {
        body.push_back(static_cast<std::uint8_t>(rng_.below(256)));
        return;
    }
    switch (rng_.below(3)) {
        case 0: {  // flip one bit
            const std::size_t byte = rng_.below(body.size());
            body[byte] ^= static_cast<std::uint8_t>(1u << rng_.below(8));
            break;
        }
        case 1:  // truncate the tail
            body.resize(rng_.below(body.size()));
            break;
        default:  // append garbage
            body.push_back(static_cast<std::uint8_t>(rng_.below(256)));
            break;
    }
}

}  // namespace syncts
