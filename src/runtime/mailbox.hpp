#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <mutex>
#include <optional>
#include <stdexcept>
#include <string>
#include <utility>

#include "clocks/vector_timestamp.hpp"
#include "common/ids.hpp"

/// \file mailbox.hpp
/// The rendezvous primitive underneath the synchronous runtime.
///
/// A synchronous send is an offer posted to the receiver's mailbox; the
/// sender then blocks until the receiver accepts the offer and completes it
/// with an acknowledgement vector (Fig. 5's acknowledgement message) plus
/// the rendezvous' global sequence number. The receiver blocks in `accept`
/// until a matching offer arrives. This is the blocking-send semantics of
/// CSP / Ada rendezvous / synchronous RPC that the paper assumes,
/// implemented with a mutex + condition variables.

namespace syncts {

/// Thrown by blocked senders/receivers when the network shuts down.
class MailboxClosed : public std::runtime_error {
public:
    MailboxClosed() : std::runtime_error("mailbox closed") {}
};

class Mailbox {
public:
    /// The sender-visible half of one rendezvous. Lives on the sending
    /// thread's stack for the duration of the rendezvous.
    struct Offer {
        ProcessId sender = 0;
        std::string payload;
        VectorTimestamp piggyback;

        // Completion slot.
        std::mutex done_mutex;
        std::condition_variable done_cv;
        std::optional<VectorTimestamp> acknowledgement;
        std::uint64_t seq = 0;
        bool aborted = false;
    };

    /// Receiver-visible view of an accepted offer. Move-only RAII: the
    /// receiver should call complete() exactly once to release the sender;
    /// if the handle is destroyed without completing (receiver unwound by
    /// an exception), the sender is released with MailboxClosed instead of
    /// hanging. payload()/piggyback() must not be touched after complete().
    class Accepted {
    public:
        explicit Accepted(Offer* offer) : offer_(offer) {}
        Accepted(Accepted&& other) noexcept
            : offer_(std::exchange(other.offer_, nullptr)) {}
        Accepted& operator=(Accepted&& other) noexcept;
        Accepted(const Accepted&) = delete;
        Accepted& operator=(const Accepted&) = delete;
        ~Accepted();

        ProcessId sender() const noexcept { return offer_->sender; }
        const std::string& payload() const noexcept { return offer_->payload; }
        const VectorTimestamp& piggyback() const noexcept {
            return offer_->piggyback;
        }

        /// Sends the acknowledgement (and the rendezvous' global sequence
        /// number) back, unblocking the sender.
        void complete(VectorTimestamp acknowledgement, std::uint64_t seq);

    private:
        void abandon() noexcept;

        Offer* offer_;
    };

    /// Sender side: posts the offer and blocks until the receiver completes
    /// it. Returns (acknowledgement vector, global sequence number). Throws
    /// MailboxClosed when the mailbox shuts down while waiting.
    std::pair<VectorTimestamp, std::uint64_t> offer_and_wait(
        ProcessId sender, std::string payload,
        const VectorTimestamp& piggyback);

    /// Timed variant of offer_and_wait: gives up after `timeout` and
    /// returns nullopt, *withdrawing* the offer so a receiver cannot
    /// accept it afterwards. If the receiver accepted within the race
    /// window the rendezvous is honoured — the call blocks until the
    /// in-progress completion and returns it. Throws MailboxClosed on
    /// shutdown.
    std::optional<std::pair<VectorTimestamp, std::uint64_t>>
    offer_and_wait_for(ProcessId sender, std::string payload,
                       const VectorTimestamp& piggyback,
                       std::chrono::milliseconds timeout);

    /// Receiver side: blocks until an offer (from `from`, or from anyone
    /// when nullopt) is available, removes it from the queue and returns
    /// it. Throws MailboxClosed on shutdown.
    Accepted accept(std::optional<ProcessId> from);

    /// Timed variant of accept: nullopt when no matching offer arrives
    /// within `timeout`.
    std::optional<Accepted> accept_for(std::optional<ProcessId> from,
                                       std::chrono::milliseconds timeout);

    /// Non-blocking probe: true when a matching offer is queued.
    bool has_offer(std::optional<ProcessId> from);

    /// Wakes all blocked parties with MailboxClosed and rejects future
    /// traffic. Pending unaccepted offers are aborted.
    void close();

private:
    std::mutex mutex_;
    std::condition_variable offer_cv_;
    std::deque<Offer*> queue_;
    bool closed_ = false;
};

}  // namespace syncts
