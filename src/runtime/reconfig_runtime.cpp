#include "runtime/reconfig_runtime.hpp"

#include <algorithm>
#include <functional>
#include <limits>
#include <map>
#include <optional>
#include <unordered_map>
#include <utility>

#include "clocks/engine_stock.hpp"
#include "clocks/wire.hpp"
#include "common/check.hpp"
#include "common/region.hpp"
#include "common/timestamp_arena.hpp"
#include "common/ts_kernels.hpp"
#include "obs/flight_recorder.hpp"
#include "recover/recovery_manager.hpp"
#include "runtime/async_sim.hpp"
#include "runtime/bandwidth.hpp"

namespace syncts {

namespace {

constexpr std::uint32_t kReq = 0;
constexpr std::uint32_t kAck = 1;
constexpr std::uint32_t kNack = 2;      ///< epoch-stale REQ rejected
constexpr std::uint32_t kHello = 3;     ///< rejoin handshake (restarted peer)
constexpr std::uint32_t kHelloAck = 4;  ///< rejoin handshake acknowledged
constexpr std::uint32_t kBatch = 5;     ///< v4 container of REQ/ACK frames

/// One side's memory of the last timestamp that crossed a directed
/// channel — the base both ends of the delta codec agree on
/// (docs/PROTOCOL.md). Volatile by design: a crash clears the channel
/// maps and with them every shadow, and the epoch tag plus the exact
/// sequence-continuity check make a stale shadow unusable rather than
/// wrong — any break (gap, retransmit rewind, barrier, rejoin) simply
/// forces the next frame back to a full vector.
struct ShadowVector {
    std::vector<std::uint64_t> stamp;
    std::uint64_t sequence = 0;
    EpochId epoch = 0;
    bool valid = false;
};

/// Sender-side state of the one in-flight rendezvous (a process's script
/// is sequential, so it blocks on at most one send at a time).
struct Outstanding {
    ProcessId receiver = 0;
    MessageId mid = 0;
    std::uint64_t sequence = 0;
    std::vector<std::uint8_t> frame;  // encoded REQ, byte-identical resends
    std::uint32_t retransmits = 0;
    std::uint64_t rto = 0;              // current backoff interval
    std::uint64_t first_send_time = 0;  // for the rendezvous-ticks histogram
};

/// Plain tallies kept unconditionally; they back the registry counters.
/// These never count one event twice: a cached-ACK replay is an
/// ack_replay only, not also a duplicate drop.
struct Tally {
    std::uint64_t req_sent = 0;
    std::uint64_t commits = 0;
    std::uint64_t retransmits = 0;
    std::uint64_t timeouts = 0;
    std::uint64_t req_duplicates = 0;  ///< dup/stale REQs dropped, no reply
    std::uint64_t ack_duplicates = 0;  ///< dup/stale ACKs dropped
    std::uint64_t ack_replays = 0;     ///< cached ACK re-sent
    std::uint64_t corrupt_rejects = 0;
    std::uint64_t epoch_rejects = 0;      ///< frames from a stale epoch
    std::uint64_t nacks_sent = 0;         ///< NACKs answering stale REQs
    std::uint64_t nack_drops = 0;         ///< NACKs with no matching send
    std::uint64_t nack_retransmits = 0;   ///< sends re-encoded after a NACK
    // Crash-recovery tallies (docs/RECOVERY.md), published as recover_*.
    std::uint64_t restarts = 0;
    std::uint64_t replayed_records = 0;   ///< WAL records re-applied
    std::uint64_t snapshots = 0;
    std::uint64_t recommits = 0;          ///< commits re-executed after rewind
    std::uint64_t window_ack_replays = 0; ///< old ACKs served from the window
    std::uint64_t window_retransmits = 0; ///< REQs replayed after a HELLO
    std::uint64_t hellos = 0;             ///< rejoin HELLOs sent
    std::uint64_t hello_acks = 0;         ///< rejoin HELLO_ACKs sent
    std::uint64_t future_buffered = 0;    ///< out-of-order frames parked
    std::uint64_t fast_forwards = 0;      ///< barriers caught up after restart
    // Wire-path tallies (docs/PROTOCOL.md), published as sync_batch_*,
    // wire_delta_*, and bsched_*; bytes/packets back ProtocolStats.
    std::uint64_t bytes_sent = 0;         ///< payload bytes handed to the net
    std::uint64_t wire_packets = 0;       ///< packets handed to the net
    std::uint64_t batch_packets = 0;      ///< v4 containers flushed
    std::uint64_t batch_frames = 0;       ///< frames carried inside containers
    std::uint64_t acks_coalesced = 0;     ///< queued ACKs superseded pre-wire
    std::uint64_t delta_frames = 0;       ///< v3 frames sent
    std::uint64_t full_frames = 0;        ///< full-vector REQ/ACK frames sent
    std::uint64_t delta_resyncs = 0;      ///< delta frames dropped, shadow miss
    std::uint64_t bsched_deferrals = 0;   ///< flushes deferred past deadline
};

/// Receiver-side state of one directed channel (peer -> self). Survives
/// epoch transitions: sequences are continuous across the barrier.
struct InChannel {
    /// Sequence of the last committed rendezvous on this channel; fresh
    /// REQs must carry last_committed + 1 (sequences are 1-based).
    std::uint64_t last_committed = 0;
    /// Fresh REQ waiting for the program to reach the matching receive.
    std::optional<SyncFrame> pending;
    /// Raw REQ frames ahead of the commit point, keyed by sequence. Only
    /// a rewound channel sees these: HELLO-driven window replays go out
    /// as a burst that the network can reorder (and may span epoch
    /// barriers the rejoiner has not crossed yet), while the sender
    /// re-times only the one frame it still considers outstanding —
    /// dropping a reordered middle frame would lose it forever. Parked
    /// frames promote into `pending` as the commit point (and, for
    /// later-epoch frames, the engine's own epoch) reaches them. Empty
    /// in crash-free runs.
    std::map<std::uint64_t, std::vector<std::uint8_t>> future;
    /// Encoded ACKs of recent committed rendezvous, replayed when a
    /// duplicate REQ reveals the ACK was lost, or when a restarted
    /// sender rewinds and re-executes an already-committed send. The
    /// newest entry is always the last commit, so the classic lost-ACK
    /// replay never misses; older entries serve crash rewinds.
    FrameWindow ack_window;
    /// Highest sequence the peer reports having assigned on this
    /// channel (from its HELLO_ACK). While last_committed lags it, the
    /// missing frames can only arrive by window replay — the peer
    /// re-times nothing it considers complete — so a watchdog re-HELLOs
    /// until the gap closes.
    std::uint64_t replay_target = 0;
    /// Watchdog rounds spent chasing replay_target without a commit
    /// landing (bounded by max_retransmits; commits reset it).
    std::uint32_t replay_attempts = 0;
    /// One watchdog chain per channel at a time.
    bool watchdog_armed = false;
    /// Delta shadows (extended wire path only): the last REQ stamp
    /// decoded off this channel and the last ACK stamp encoded onto its
    /// reverse direction. Trailing members so the aggregate
    /// initializers elsewhere keep value-initializing them (= invalid).
    ShadowVector rx_shadow{};
    ShadowVector ack_sent_shadow{};
};

/// Sender-side state of one directed channel (self -> peer).
struct OutChannel {
    /// Last sequence assigned on this channel (the next send takes +1).
    std::uint64_t next_sequence = 0;
    /// Original encoded REQ frames of recent sends, replayed verbatim
    /// when a restarted receiver's HELLO reveals it lost them.
    FrameWindow req_window;
    /// Delta shadows (extended wire path only): the last REQ stamp sent
    /// on this channel and the last ACK stamp decoded off its reverse
    /// direction. Trailing members — see InChannel.
    ShadowVector req_shadow{};
    ShadowVector ack_rx_shadow{};
};

/// Per-process protocol engine: walks the process's script for its
/// current epoch, issuing REQs for sends and consuming buffered REQs for
/// receives. Channel state persists across epochs; clock and scratch are
/// rebuilt at each barrier. `epoch` is the engine's own epoch — equal to
/// the global barrier epoch except while the process is catching up
/// after a crash.
struct Engine {
    ProcessId self = 0;
    EpochId epoch = 0;
    std::vector<ProcessEvent> script;  // current epoch's message events
    std::size_t cursor = 0;
    std::unique_ptr<OnlineProcessClock> clock;
    std::optional<Outstanding> outstanding;
    /// Outgoing-channel state by receiver.
    std::unordered_map<ProcessId, OutChannel> out;
    /// Incoming-channel state by sender.
    std::unordered_map<ProcessId, InChannel> in;
    /// Width-d scratch for the span protocol hooks: decoded inbound
    /// stamp, outbound acknowledgement, committed timestamp. Resized at
    /// each epoch barrier so the per-packet path allocates nothing.
    std::vector<std::uint64_t> rx_stamp;
    std::vector<std::uint64_t> ack_scratch;
    std::vector<std::uint64_t> stamp_scratch;
    /// Encoded-frame scratch (ACK sent at commit, re-encoded REQ for the
    /// WAL record, delta-encoded wire body when the shadow applies).
    std::vector<std::uint8_t> ack_bytes;
    std::vector<std::uint8_t> req_bytes;
    std::vector<std::uint8_t> delta_bytes;

    // --- crash-recovery state (docs/RECOVERY.md) ---
    /// Lifetime protocol steps (commits + accepted ACKs); rewinds with
    /// the durable state and re-advances through re-executed steps.
    std::uint64_t steps = 0;
    std::uint64_t steps_since_snapshot = 0;
    /// Next unfired crash rule for this process (harness state: survives
    /// the crash it triggers).
    std::size_t next_crash = 0;
    /// Bumped at every crash; timers capture it and no-op on mismatch,
    /// so a restarted incarnation never executes a dead one's timers.
    std::uint64_t incarnation = 0;
    bool down = false;
    bool rejoining = false;
    /// Peers whose HELLO_ACK the rejoin handshake still waits for.
    std::vector<ProcessId> awaiting_hello;
    /// Handshake rounds attempted; bounded by max_retransmits.
    std::uint32_t hello_attempts = 0;
};

/// A process's stable storage: the latest encoded snapshot plus the WAL
/// suffix behind it. Crashes lose only the WAL's unflushed tail.
struct DurableStore {
    std::vector<std::uint8_t> snapshot;
    Wal wal;
};

/// One per-destination TX queue of the extended wire path: the frames a
/// process has queued toward one peer, the earliest deadline any of
/// them carries, and the queue's deficit-round-robin service credit
/// with the bandwidth scheduler. The BatchFrame doubles as the queue
/// storage — supersede() retires coalesced ACKs in place.
struct TxQueue {
    explicit TxQueue(SlabPool* pool) : batch(pool) {}
    BatchFrame batch;
    std::uint64_t deadline = 0;  ///< meaningful only while !batch.empty()
    std::uint64_t deficit = 0;   ///< DRR credit accrued over refusals
};

/// A process's TX state: queues by destination plus the
/// deficit-round-robin ring (insertion order, rotated one slot per
/// flush round so no destination is structurally first).
struct TxProc {
    std::unordered_map<ProcessId, TxQueue> queues;
    std::vector<ProcessId> ring;
    std::size_t cursor = 0;
};

/// Per-epoch accumulation: the realized computation, the committed
/// stamps (slot = realized-message index, held by the epoch's region),
/// and the script-id mapping. Created lazily at the epoch's first
/// commit and destroyed when the stability frontier passes the epoch —
/// the stamps are materialized into the result and the region's slab
/// returns to the pool wholesale (docs/MEMORY.md).
struct SegmentState {
    SyncComputation computation;
    /// The epoch's region arena, owned by the run's RegionStore; cached
    /// here so the commit hot path skips the epoch → region lookup.
    TimestampArena* arena = nullptr;
    std::vector<TsHandle> handle_by_script;
    std::vector<MessageId> script_message;

    SegmentState(const Graph& graph, std::size_t messages)
        : computation(graph), handle_by_script(messages, kNoTimestamp) {}
};

}  // namespace

ReconfigurableRunResult run_reconfigurable_protocol(
    const TopologyManager& topology, std::span<const SyncComputation> scripts,
    const SynchronizerOptions& options) {
    const std::size_t num_epochs = topology.num_epochs();
    SYNCTS_REQUIRE(scripts.size() == num_epochs,
                   "need exactly one script per topology epoch");
    SYNCTS_REQUIRE(options.max_retransmits > 0,
                   "max_retransmits must be positive");
    SYNCTS_REQUIRE(options.max_backoff_exponent <= 32,
                   "max_backoff_exponent out of range");
    const std::size_t n_max = topology.max_num_processes();
    for (EpochId e = 0; e < num_epochs; ++e) {
        const Graph& graph = topology.epoch(e).graph();
        SYNCTS_REQUIRE(scripts[e].num_processes() == graph.num_vertices(),
                       "script and epoch disagree on process count");
        for (const SyncMessage& m : scripts[e].messages()) {
            SYNCTS_REQUIRE(graph.has_edge(m.sender, m.receiver),
                           "script uses a channel its epoch does not have");
        }
    }

    // The crash-recovery layer is armed by crash rules or explicitly.
    const bool recovery_active =
        options.recovery.enabled || !options.faults.crashes.empty();
    SYNCTS_REQUIRE(options.recovery.wal_flush_interval >= 1,
                   "wal_flush_interval must be >= 1");
    SYNCTS_REQUIRE(options.recovery.snapshot_interval >= 1,
                   "snapshot_interval must be >= 1");
    if (recovery_active) {
        // A restarted peer rewinds at most one flush interval of
        // rendezvous per channel, so this bound is what guarantees every
        // rejoin replay hits the window (docs/RECOVERY.md).
        SYNCTS_REQUIRE(
            options.recovery.window >= options.recovery.wal_flush_interval,
            "the frame window must be at least as deep as the WAL flush "
            "interval");
    }
    for (const CrashRule& rule : options.faults.crashes) {
        SYNCTS_REQUIRE(rule.process < n_max,
                       "crash rule names an unknown process");
    }
    std::vector<std::vector<CrashRule>> crash_rules(n_max);
    for (const CrashRule& rule : options.faults.crashes) {
        crash_rules[rule.process].push_back(rule);
    }
    for (std::vector<CrashRule>& rules : crash_rules) {
        std::stable_sort(rules.begin(), rules.end(),
                         [](const CrashRule& a, const CrashRule& b) {
                             return a.at_step < b.at_step;
                         });
    }

    Tally tally;
    obs::TraceSink* const sink = options.trace;
    obs::FlightRecorder* const recorder = options.recorder;
    // Ring losses charged to *this* run: a caller reusing one sink
    // across runs carries its cumulative dropped() in, so the counter
    // publishes the delta.
    const std::uint64_t sink_dropped_before =
        sink != nullptr ? sink->dropped() : 0;
    obs::Histogram* rendezvous_hist = nullptr;
    obs::Histogram* attempts_hist = nullptr;
    obs::Histogram* snapshot_bytes_hist = nullptr;
    obs::Histogram* replay_hist = nullptr;
    if (options.metrics != nullptr) {
        rendezvous_hist = &options.metrics->histogram("sync_rendezvous_ticks");
        attempts_hist =
            &options.metrics->histogram("sync_attempts_per_message");
        if (recovery_active) {
            snapshot_bytes_hist =
                &options.metrics->histogram("recover_snapshot_bytes");
            replay_hist =
                &options.metrics->histogram("recover_replay_records");
        }
    }
    // One line per protocol event; `logical` is the acting process's
    // clock-vector total at record time, tying wire activity to causal
    // progress. Only evaluated when tracing or the flight recorder is
    // on; the recorder mirrors every event into its own bounded ring so
    // the black box works with full tracing off.
    const auto trace = [&](obs::TraceEventKind kind, std::uint64_t now,
                           ProcessId process, ProcessId peer,
                           std::uint64_t a, std::uint64_t b,
                           std::uint64_t logical) {
        if (sink == nullptr && recorder == nullptr) return;
        obs::TraceEvent event;
        event.virtual_time = now;
        event.logical = logical;
        event.arg_a = a;
        event.arg_b = b;
        event.process = process;
        event.peer = peer;
        event.kind = kind;
        if (sink != nullptr) sink->record(event);
        if (recorder != nullptr) recorder->record(event);
    };
    // Logical-time argument for trace records. Null-safe: with crash
    // rules armed, a frame can reach an engine that currently has no
    // clock (its process is absent from its epoch's graph, or it is
    // mid-restart).
    const auto logical = [](const Engine& engine) -> std::uint64_t {
        return engine.clock ? ts::total(engine.clock->current_span()) : 0;
    };

    AsyncSimulator network(n_max, options.seed);
    network.set_uniform_latency(options.latency_lo, options.latency_hi);
    network.set_fault_plan(options.faults);

    // Retransmission is armed whenever the network can lose or corrupt a
    // packet (or the caller asks for it explicitly); on a reliable network
    // it stays off so the wire profile is exactly 2 packets per message.
    const bool retransmission = options.retransmit_timeout > 0 ||
                                options.faults.active();
    const std::uint64_t base_rto =
        options.retransmit_timeout > 0
            ? options.retransmit_timeout
            : 4 * (options.latency_hi + options.faults.max_extra_delay) + 1;
    const std::uint64_t max_rto = base_rto << options.max_backoff_exponent;

    std::vector<Engine> engines(n_max);
    for (ProcessId p = 0; p < n_max; ++p) engines[p].self = p;

    std::vector<DurableStore> stores;
    stores.reserve(n_max);
    for (ProcessId p = 0; p < n_max; ++p) {
        stores.push_back(
            DurableStore{{}, Wal(options.recovery.wal_flush_interval)});
    }

    // ---- Epoch-region memory (docs/MEMORY.md) -------------------------
    // Every epoch's committed stamps live in a region drawn from one
    // slab pool, and per-process clocks are leased from one engine
    // stock. A caller running many protocols in sequence can pass both
    // in through the options so even cross-run churn reuses capacity;
    // by default each gets a run-local instance. External pools/stocks
    // are attached to a registry (or not) by their owner.
    SlabPool local_pool;
    SlabPool& pool =
        options.slab_pool != nullptr ? *options.slab_pool : local_pool;
    EngineStock local_stock;
    EngineStock& stock = options.engine_stock != nullptr
                             ? *options.engine_stock
                             : local_stock;
    if (options.metrics != nullptr) {
        if (options.slab_pool == nullptr) {
            local_pool.attach_metrics(*options.metrics);
        }
        if (options.engine_stock == nullptr) {
            local_stock.attach_metrics(*options.metrics);
        }
    }
    RegionStore regions(pool);
    if (options.metrics != nullptr) {
        regions.attach_metrics(*options.metrics);
    }

    // ---- Extended wire path (docs/PROTOCOL.md) ------------------------
    // Batching, ACK coalescing, delta vectors, and bandwidth scheduling
    // all route sends through per-destination TX queues flushed by
    // same-tick (REQ) or bounded-delay (coalesced ACK) timers. With
    // every knob off, tx_send degenerates to a direct network.send plus
    // byte accounting — the classic one-frame-per-packet profile,
    // bit-for-bit. Timestamps are identical either way: they depend
    // only on script order, never on packet count or delivery schedule.
    const ProtocolOptions& proto = options.protocol;
    const bool wire_ext = proto.active();
    std::optional<BandwidthScheduler> bsched;
    if (proto.bandwidth.enabled) bsched.emplace(proto.bandwidth, n_max);
    std::vector<TxProc> tx;
    if (wire_ext) tx.resize(n_max);
    // ACKs wait at most this long for a ride; well under any RTO
    // (base_rto >= 4 * latency_hi + 1), so coalescing never races a
    // peer's retransmission timer.
    const std::uint64_t coalesce_delay =
        proto.max_coalesce_delay != 0
            ? proto.max_coalesce_delay
            : std::max<std::uint64_t>(options.latency_hi, 1);

    /// Every packet leaves through here: wire accounting, then the
    /// network. (The network's fault injector sits underneath, so these
    /// tallies count *sent* traffic — under drops they exceed the
    /// delivered-packet count.)
    const auto post = [&](std::uint64_t now, Packet&& packet) {
        ++tally.wire_packets;
        tally.bytes_sent += packet.body.size();
        network.send(now, std::move(packet));
    };

    /// Flushes every due queue of `src` in deficit-round-robin order: a
    /// single live entry goes out as a bare frame packet (no container
    /// overhead, v1/v2-compatible), several go out as one v4 batch. A
    /// flush the bandwidth buckets refuse earns the queue quantum
    /// deficit and is deferred to the buckets' ready time (std::function
    /// so the deferral timer can re-enter it).
    std::function<void(std::uint64_t, ProcessId)> tx_flush =
        [&](std::uint64_t when, ProcessId src) {
            TxProc& proc = tx[src];
            const std::size_t count = proc.ring.size();
            if (count == 0) return;
            for (std::size_t step = 0; step < count; ++step) {
                const std::size_t slot = (proc.cursor + step) % count;
                const ProcessId dst = proc.ring[slot];
                TxQueue& q = proc.queues.at(dst);
                if (q.batch.empty() || q.deadline > when) continue;
                Packet pkt;
                pkt.source = src;
                pkt.destination = dst;
                const std::size_t frames = q.batch.size();
                if (frames == 1) {
                    const BatchFrame::Entry entry = q.batch.front();
                    pkt.kind = static_cast<std::uint32_t>(entry.kind);
                    pkt.tag = entry.tag;
                    pkt.body.assign(entry.body.begin(), entry.body.end());
                } else {
                    pkt.kind = kBatch;
                    pkt.tag = frames;
                    q.batch.encode_batch_into(pkt.body);
                }
                if (bsched && !bsched->admit(src, dst, pkt.body.size(), when,
                                             q.deficit)) {
                    q.deficit += proto.bandwidth.quantum;
                    const std::uint64_t ready =
                        bsched->ready_time(src, dst, pkt.body.size(), when);
                    q.deadline = ready;
                    ++tally.bsched_deferrals;
                    trace(obs::TraceEventKind::bsched_defer, when, src, dst,
                          frames, ready - when, 0);
                    const std::uint64_t incarnation =
                        engines[src].incarnation;
                    network.schedule(
                        ready, [&, src, incarnation](std::uint64_t at) {
                            if (engines[src].incarnation != incarnation ||
                                engines[src].down) {
                                return;
                            }
                            tx_flush(at, src);
                        });
                    continue;
                }
                if (frames > 1) {
                    ++tally.batch_packets;
                    tally.batch_frames += frames;
                    trace(obs::TraceEventKind::batch, when, src, dst, frames,
                          pkt.body.size(), 0);
                }
                q.batch.clear();
                post(when, std::move(pkt));
            }
            proc.cursor = (proc.cursor + 1) % count;
        };

    /// Routes a REQ/ACK through the TX queues (extended path) or sends
    /// it directly (classic path). `delay` is how long the frame may
    /// wait for companions — 0 for REQs and replays (flushed at the end
    /// of the current tick, so same-tick traffic to one peer still
    /// shares a packet), `coalesce_delay` for coalescible ACKs. A newer
    /// ACK for the same rendezvous supersedes a queued one — and *only*
    /// the same rendezvous: a crash-rewound sender can legitimately
    /// need ACK(s) while ACK(s+1) sits queued, so distinct sequences
    /// all ship (docs/PROTOCOL.md).
    const auto tx_send = [&](std::uint64_t now, Packet&& packet,
                             std::uint64_t delay) {
        if (!wire_ext) {
            post(now, std::move(packet));
            return;
        }
        TxProc& proc = tx[packet.source];
        const auto [it, inserted] =
            proc.queues.try_emplace(packet.destination, &pool);
        TxQueue& q = it->second;
        if (inserted) proc.ring.push_back(packet.destination);
        if (proto.coalesce_acks && packet.kind == kAck &&
            q.batch.supersede(kAck, packet.tag)) {
            ++tally.acks_coalesced;
            trace(obs::TraceEventKind::coalesce, now, packet.source,
                  packet.destination, packet.tag, 0, 0);
        }
        const bool was_empty = q.batch.empty();
        q.batch.add(packet.kind, packet.tag, packet.body);
        const std::uint64_t deadline = now + delay;
        if (was_empty || deadline < q.deadline) q.deadline = deadline;
        // Timers cannot be cancelled; arm one per enqueue and let stale
        // ones find an empty or not-yet-due queue. The incarnation
        // check keeps a pre-crash timer from flushing a reborn queue.
        const ProcessId src = packet.source;
        const std::uint64_t incarnation = engines[src].incarnation;
        network.schedule(q.deadline,
                         [&, src, incarnation](std::uint64_t when) {
                             if (engines[src].incarnation != incarnation ||
                                 engines[src].down) {
                                 return;
                             }
                             tx_flush(when, src);
                         });
    };

    /// Whether `shadow` is the base the delta codec needs for the next
    /// frame: same epoch, exactly the previous sequence, same width.
    const auto delta_ready = [](const ShadowVector& shadow, EpochId epoch,
                                std::uint64_t sequence, std::size_t width) {
        return shadow.valid && shadow.epoch == epoch &&
               shadow.sequence + 1 == sequence &&
               shadow.stamp.size() == width;
    };

    /// Monotone shadow update: a frame older than what the shadow holds
    /// (a window replay of a pre-rewind sequence) never regresses it.
    const auto update_shadow = [](ShadowVector& shadow, EpochId epoch,
                                  std::uint64_t sequence,
                                  std::span<const std::uint64_t> stamp) {
        if (shadow.valid && shadow.epoch == epoch &&
            sequence < shadow.sequence) {
            return;
        }
        shadow.stamp.assign(stamp.begin(), stamp.end());
        shadow.sequence = sequence;
        shadow.epoch = epoch;
        shadow.valid = true;
    };

    // The barrier state: every live, caught-up engine stamps, frames, and
    // validates against this one epoch. A restarted engine may lag behind
    // it until its rejoin fast-forwards.
    EpochId current_epoch = 0;

    // Segments are created lazily (a message-free epoch never opens a
    // region) and retired eagerly: once the stability frontier passes an
    // epoch, its results are materialized and its region's slabs return
    // to the pool, so a 1000-epoch run holds O(live width) arena bytes,
    // not O(epochs).
    std::vector<std::unique_ptr<SegmentState>> segments(num_epochs);
    const auto segment_for = [&](EpochId e) -> SegmentState& {
        std::unique_ptr<SegmentState>& slot = segments[e];
        if (slot == nullptr) {
            const Epoch& epoch = topology.epoch(e);
            slot = std::make_unique<SegmentState>(epoch.graph(),
                                                  scripts[e].num_messages());
            slot->arena = &regions.open(e, epoch.width(),
                                        scripts[e].num_messages());
        }
        return *slot;
    };

    // Drummond–Barbosa stability frontier: the lowest epoch any process
    // could still rewind into. With recovery armed that is the lowest
    // durable-snapshot epoch across processes — a crashed process
    // restarts from its snapshot and re-executes forward, and every
    // recommit verifies bit-identity against the original stamp, so
    // regions at or above a durable epoch must stay live. Without
    // recovery nothing ever rewinds and the frontier is the barrier
    // epoch itself. Each process holds a region pin on its durable
    // epoch as defense in depth: were the frontier arithmetic ever
    // wrong, close() would defer instead of dangling a replay read.
    constexpr EpochId kNoDurableEpoch = std::numeric_limits<EpochId>::max();
    std::vector<EpochId> durable_epoch(n_max, kNoDurableEpoch);

    std::vector<EpochSegmentResult> flushed;
    flushed.reserve(num_epochs);
    EpochId flushed_below = 0;

    /// Materializes epoch `e`'s results and retires its region — every
    /// slab returns to the pool in O(1). Only called once the frontier
    /// has passed `e`, so no engine, late frame, or recovery replay can
    /// touch the segment again (the region analogue of WAL truncation
    /// at a snapshot: both discard exactly the state no surviving
    /// rewind can reach).
    const auto flush_segment = [&](EpochId e) {
        if (segments[e] == nullptr) {
            // Never touched: only legal for a message-free epoch.
            SYNCTS_ENSURE(scripts[e].num_messages() == 0,
                          "epoch flushed with unrealized messages");
            flushed.push_back(EpochSegmentResult{
                e, SyncComputation(topology.epoch(e).graph()), {}, {}});
            return;
        }
        SegmentState& segment = *segments[e];
        SYNCTS_ENSURE(segment.computation.num_messages() ==
                          scripts[e].num_messages(),
                      "epoch flushed with unrealized messages");
        std::vector<VectorTimestamp> stamps;
        stamps.reserve(segment.arena->size());
        for (std::size_t i = 0; i < segment.arena->size(); ++i) {
            stamps.emplace_back(segment.arena->span(static_cast<TsHandle>(i)));
        }
        flushed.push_back(EpochSegmentResult{
            e, std::move(segment.computation), std::move(stamps),
            std::move(segment.script_message)});
        segments[e].reset();
        regions.close(e);
    };

    /// Retires every epoch the stability frontier has passed.
    /// `barrier_bound` is the non-recovery frontier (the current barrier
    /// epoch); durable snapshots can only pull it down, never past it.
    const auto retire_stable = [&](EpochId barrier_bound) {
        EpochId frontier = barrier_bound;
        if (recovery_active) {
            for (ProcessId p = 0; p < n_max; ++p) {
                if (durable_epoch[p] != kNoDurableEpoch) {
                    frontier = std::min(frontier, durable_epoch[p]);
                }
            }
        }
        while (flushed_below < frontier) {
            flush_segment(flushed_below);
            ++flushed_below;
        }
        // The flight recorder tracks the same frontier: retained events
        // older than the last stably-retired epoch's entry cannot matter
        // to any surviving rewind, so the black box sheds them too.
        if (recorder != nullptr) recorder->note_frontier(frontier);
    };

    // Without recovery a single cached ACK per channel suffices (the
    // classic lost-ACK replay); a capacity-1 window keeps that exact
    // behaviour. With recovery the window must absorb crash rewinds.
    const std::size_t window_capacity =
        recovery_active ? options.recovery.window : 1;
    const auto in_channel = [&](Engine& engine,
                                ProcessId peer) -> InChannel& {
        auto it = engine.in.find(peer);
        if (it == engine.in.end()) {
            it = engine.in
                     .emplace(peer, InChannel{0, std::nullopt, {},
                                              FrameWindow(window_capacity)})
                     .first;
        }
        return it->second;
    };
    const auto out_channel = [&](Engine& engine,
                                 ProcessId peer) -> OutChannel& {
        auto it = engine.out.find(peer);
        if (it == engine.out.end()) {
            it = engine.out
                     .emplace(peer,
                              OutChannel{0, FrameWindow(window_capacity)})
                     .first;
        }
        return it->second;
    };

    /// (Re)loads per-process state for epoch `e`: the epoch's script
    /// slice, a clock leased from the stock (a recycled one rebound to
    /// the epoch's decomposition when available — bit-identical to a
    /// fresh construction), and width-d scratch. Channel maps are
    /// deliberately left alone.
    const auto load_engine = [&](ProcessId p, EpochId e) {
        Engine& engine = engines[p];
        const std::shared_ptr<const EdgeDecomposition> decomposition =
            topology.decomposition(e);
        const std::size_t n = decomposition->graph().num_vertices();
        const std::size_t d = decomposition->size();
        engine.epoch = e;
        engine.script.clear();
        engine.cursor = 0;
        if (p >= n) {
            // Not a member of this epoch: park the clock for whoever
            // loads next.
            stock.restock_clock(std::move(engine.clock));
            return;
        }
        for (const ProcessEvent& event : scripts[e].process_events(p)) {
            if (event.kind == ProcessEvent::Kind::message) {
                engine.script.push_back(event);
            }
        }
        stock.restock_clock(std::move(engine.clock));
        engine.clock = stock.lease_clock(p, decomposition);
        engine.rx_stamp.resize(d);
        engine.ack_scratch.resize(d);
        engine.stamp_scratch.resize(d);
    };
    for (ProcessId p = 0; p < n_max; ++p) load_engine(p, 0);

    /// Serializes the engine's full durable state (docs/RECOVERY.md).
    /// Channels are sorted by peer so the snapshot bytes are a pure
    /// function of the protocol state, never of map iteration order.
    const auto capture_state = [&](ProcessId p) {
        const Engine& engine = engines[p];
        ProcessState state;
        state.self = p;
        state.epoch = engine.epoch;
        state.cursor = engine.cursor;
        state.steps = engine.steps;
        const std::span<const std::uint64_t> clock =
            engine.clock->current_span();
        state.clock.assign(clock.begin(), clock.end());
        for (const auto& [peer, channel] : engine.out) {
            state.out.push_back(OutChannelState{peer, channel.next_sequence,
                                                channel.req_window});
        }
        std::sort(state.out.begin(), state.out.end(),
                  [](const OutChannelState& a, const OutChannelState& b) {
                      return a.peer < b.peer;
                  });
        for (const auto& [peer, channel] : engine.in) {
            state.in.push_back(InChannelState{peer, channel.last_committed,
                                              channel.ack_window});
        }
        std::sort(state.in.begin(), state.in.end(),
                  [](const InChannelState& a, const InChannelState& b) {
                      return a.peer < b.peer;
                  });
        if (engine.outstanding) {
            state.outstanding.active = true;
            state.outstanding.receiver = engine.outstanding->receiver;
            state.outstanding.sequence = engine.outstanding->sequence;
            state.outstanding.message = engine.outstanding->mid;
            state.outstanding.frame = engine.outstanding->frame;
        }
        return state;
    };

    /// Checkpoint: flush the WAL (a snapshot is a flush point), write the
    /// snapshot, then truncate the log prefix it folded in — the
    /// Drummond–Barbosa stability rule, which bounds log growth. The
    /// region side mirrors it exactly: the process's durable epoch
    /// advances, its region pin moves with it, and every epoch the
    /// frontier has now passed is retired to the pool.
    const auto take_snapshot = [&](ProcessId p) {
        if (!recovery_active) return;
        Engine& engine = engines[p];
        if (engine.clock == nullptr) return;  // not part of this epoch
        DurableStore& store = stores[p];
        store.wal.flush();
        Snapshot snapshot;
        snapshot.state = capture_state(p);
        snapshot.wal_lsn = store.wal.next_lsn();
        store.snapshot.clear();  // the encoder appends
        encode_snapshot_into(snapshot, store.snapshot);
        store.wal.truncate(snapshot.wal_lsn);
        engine.steps_since_snapshot = 0;
        ++tally.snapshots;
        if (snapshot_bytes_hist != nullptr) {
            snapshot_bytes_hist->record(store.snapshot.size());
        }
        if (durable_epoch[p] != engine.epoch) {
            // This snapshot is now the process's rewind floor: pin its
            // epoch's region (a crash replays into it and recommits
            // verify against the original stamps), release the previous
            // floor, and retire whatever became stable.
            segment_for(engine.epoch);
            regions.pin(engine.epoch);
            if (durable_epoch[p] != kNoDurableEpoch) {
                regions.unpin(durable_epoch[p]);
            }
            durable_epoch[p] = engine.epoch;
            retire_stable(current_epoch);
        }
    };

    const auto wal_append = [&](ProcessId p, WalRecord record) {
        if (recovery_active) stores[p].wal.append(std::move(record));
    };

    // restart_process is assigned below; crash timers capture it by
    // reference through the enclosing scope.
    std::function<void(std::uint64_t, ProcessId)> restart_process;

    /// Executes one crash rule: the process loses everything volatile
    /// (clock, channels, buffered and in-flight protocol state) and its
    /// WAL loses the unflushed tail. A timer restarts it after the
    /// rule's downtime.
    const auto crash_now = [&](std::uint64_t now, ProcessId p,
                               const CrashRule& rule) {
        Engine& engine = engines[p];
        network.note_crash();
        ++engine.incarnation;
        trace(obs::TraceEventKind::crash, now, p, p, engine.steps,
              engine.incarnation, logical(engine));
        stores[p].wal.drop_unflushed();
        if (recorder != nullptr) {
            // The black box captures the crash instant: WAL position
            // *after* the unflushed tail is gone (what recovery will
            // actually see) and the ring ending at the crash event just
            // traced. Recovery replay cross-checks both.
            recorder->dump(obs::PostmortemReason::crash, p, engine.steps,
                           engine.epoch, stores[p].wal.next_lsn(), now,
                           options.metrics);
        }
        // The crash wipes the clock's *state*; its buffers are reusable,
        // so park it for the next lease (rebind() resets it in full).
        stock.restock_clock(std::move(engine.clock));
        engine.outstanding.reset();
        engine.in.clear();
        engine.out.clear();
        engine.script.clear();
        engine.cursor = 0;
        engine.steps = 0;
        engine.steps_since_snapshot = 0;
        engine.rejoining = false;
        engine.awaiting_hello.clear();
        if (wire_ext) {
            // Queued-but-unflushed frames are volatile state too: they
            // die with the process, exactly like frames lost in flight
            // — peers recover them through retransmission and rejoin.
            for (auto& [dst, q] : tx[p].queues) q.batch.clear();
        }
        engine.down = true;
        network.set_down(p, true);
        const std::uint64_t downtime = std::max<std::uint64_t>(rule.downtime, 1);
        const std::uint64_t incarnation = engine.incarnation;
        network.schedule(now + downtime,
                         [&, p, incarnation](std::uint64_t when) {
                             if (engines[p].incarnation != incarnation) return;
                             restart_process(when, p);
                         });
    };

    /// Fires the next crash rule once the process's step counter reaches
    /// it. Rules fire in at_step order; the rewound counter re-advancing
    /// through an already-fired step does not re-fire its rule.
    const auto maybe_crash = [&](std::uint64_t now, ProcessId p) -> bool {
        Engine& engine = engines[p];
        if (engine.down) return false;
        const std::vector<CrashRule>& rules = crash_rules[p];
        if (engine.next_crash >= rules.size()) return false;
        if (engine.steps < rules[engine.next_crash].at_step) return false;
        const CrashRule rule = rules[engine.next_crash++];
        crash_now(now, p, rule);
        return true;
    };

    /// Bookkeeping after one protocol step (a commit or an accepted
    /// ACK): interval snapshots, then crash rules. Returns true when the
    /// step ended in a crash — the caller must stop touching the engine.
    const auto after_step = [&](std::uint64_t now, ProcessId p) -> bool {
        Engine& engine = engines[p];
        ++engine.steps;
        if (recovery_active &&
            ++engine.steps_since_snapshot >=
                options.recovery.snapshot_interval) {
            take_snapshot(p);
        }
        if (recorder != nullptr && options.metrics != nullptr) {
            recorder->tick(*options.metrics);
        }
        return maybe_crash(now, p);
    };

    // Re-arms the retransmission timer for the sender's current
    // outstanding REQ. Timers are never cancelled; a fired timer checks
    // that the exact (receiver, sequence) it was armed for is still
    // outstanding — which also neutralizes timers armed in an earlier
    // epoch — and that the process has not crashed since (incarnation).
    std::function<void(std::uint64_t, ProcessId)> arm_timer =
        [&](std::uint64_t now, ProcessId p) {
            const Engine& armed = engines[p];
            const Outstanding& out = *armed.outstanding;
            const ProcessId receiver = out.receiver;
            const std::uint64_t sequence = out.sequence;
            const std::uint64_t incarnation = armed.incarnation;
            network.schedule(now + out.rto, [&, p, receiver, sequence,
                                             incarnation](std::uint64_t when) {
                Engine& engine = engines[p];
                if (engine.incarnation != incarnation) return;  // crashed
                if (!engine.outstanding ||
                    engine.outstanding->receiver != receiver ||
                    engine.outstanding->sequence != sequence) {
                    return;  // ACK arrived; stale timer
                }
                Outstanding& out_now = *engine.outstanding;
                ++tally.timeouts;
                trace(obs::TraceEventKind::timeout, when, p, receiver,
                      sequence, out_now.mid,
                      logical(engine));
                if (out_now.retransmits >= options.max_retransmits) {
                    if (recorder != nullptr) {
                        recorder->dump(obs::PostmortemReason::error, p,
                                       engine.steps, engine.epoch,
                                       recovery_active
                                           ? stores[p].wal.next_lsn()
                                           : 0,
                                       when, options.metrics);
                    }
                    throw SynchronizerStalled(
                        "message " + std::to_string(out_now.mid) +
                        " from P" + std::to_string(p) + " to P" +
                        std::to_string(receiver) + " exhausted " +
                        std::to_string(options.max_retransmits) +
                        " retransmissions");
                }
                ++out_now.retransmits;
                ++tally.retransmits;
                trace(obs::TraceEventKind::retransmit, when, p, receiver,
                      sequence, out_now.mid,
                      logical(engine));
                Packet req;
                req.source = p;
                req.destination = receiver;
                req.kind = kReq;
                req.tag = out_now.mid;
                // Always the canonical full frame, even with delta on:
                // a retransmission doubles as the shadow resync the
                // receiver may be waiting for.
                req.body = out_now.frame;
                ++tally.full_frames;
                tx_send(when, std::move(req), 0);
                out_now.rto = std::min(out_now.rto * 2, max_rto);
                arm_timer(when, p);
            });
        };

    // Forward declaration dance: progress() sends packets and is called
    // from the delivery handler.
    std::function<void(std::uint64_t, ProcessId)> progress =
        [&](std::uint64_t now, ProcessId p) {
            Engine& engine = engines[p];
            if (engine.down) return;
            const SyncComputation& script = scripts[engine.epoch];
            while (engine.cursor < engine.script.size()) {
                const MessageId mid = engine.script[engine.cursor].index;
                const SyncMessage& m = script.message(mid);
                if (m.sender == p) {
                    if (engine.outstanding) return;  // blocked on the wire
                    // Sequences are 1-based per directed channel. Clock
                    // and sequence rewind together after a crash, so a
                    // re-executed send reproduces this frame byte for
                    // byte under the same sequence — the receiver's
                    // duplicate suppression stays sound.
                    OutChannel& channel = out_channel(engine, m.receiver);
                    const std::uint64_t sequence = ++channel.next_sequence;
                    Packet req;
                    req.source = p;
                    req.destination = m.receiver;
                    req.kind = kReq;
                    req.tag = mid;
                    encode_epoch_frame_into(engine.epoch, sequence, mid,
                                            engine.clock->current_span(),
                                            req.body);
                    channel.req_window.put(sequence, req.body);
                    if (recovery_active) {
                        WalRecord record;
                        record.type = WalRecordType::send;
                        record.peer = m.receiver;
                        record.sequence = sequence;
                        record.message = mid;
                        record.epoch = engine.epoch;
                        record.frame = req.body;
                        wal_append(p, std::move(record));
                    }
                    engine.outstanding = Outstanding{
                        .receiver = m.receiver,
                        .mid = mid,
                        .sequence = sequence,
                        .frame = req.body,
                        .retransmits = 0,
                        .rto = base_rto,
                        .first_send_time = now};
                    ++tally.req_sent;
                    trace(obs::TraceEventKind::send, now, p, m.receiver,
                          sequence, mid,
                          logical(engine));
                    // The window, WAL, and outstanding record above all
                    // hold the canonical full encoding; only the wire
                    // body may shrink to a delta against the channel's
                    // last-sent shadow. Every resend/replay path sends
                    // full frames, so any shadow break converges.
                    if (wire_ext && proto.delta &&
                        delta_ready(channel.req_shadow, engine.epoch,
                                    sequence,
                                    engine.clock->current_span().size()) &&
                        encode_delta_frame_into(engine.epoch, sequence, mid,
                                                channel.req_shadow.stamp,
                                                engine.clock->current_span(),
                                                engine.delta_bytes)) {
                        req.body = engine.delta_bytes;
                        ++tally.delta_frames;
                    } else {
                        ++tally.full_frames;
                    }
                    if (wire_ext) {
                        update_shadow(channel.req_shadow, engine.epoch,
                                      sequence,
                                      engine.clock->current_span());
                    }
                    tx_send(now, std::move(req), 0);
                    if (retransmission) arm_timer(now, p);
                    return;
                }
                // Receive action: consume the buffered fresh REQ if any.
                InChannel& channel = in_channel(engine, m.sender);
                if (!channel.pending && !channel.future.empty()) {
                    // Earlier commits (or a barrier this engine just
                    // crossed) may have brought the commit point and the
                    // epoch up to a parked out-of-order frame: promote it
                    // as if it had just arrived.
                    channel.future.erase(
                        channel.future.begin(),
                        channel.future.upper_bound(channel.last_committed));
                    const auto next =
                        channel.future.find(channel.last_committed + 1);
                    if (next != channel.future.end() &&
                        peek_epoch_frame_header(next->second).epoch ==
                            engine.epoch) {
                        const FrameHeader header = decode_epoch_frame_into(
                            next->second, engine.rx_stamp);
                        channel.pending = SyncFrame{
                            header.sequence, header.message,
                            VectorTimestamp(std::span<const std::uint64_t>(
                                engine.rx_stamp))};
                        channel.future.erase(next);
                        trace(obs::TraceEventKind::receive, now, p,
                              m.sender, header.sequence, header.message,
                              logical(engine));
                    }
                }
                if (!channel.pending) return;  // wait for the REQ packet
                const SyncFrame req = *std::move(channel.pending);
                channel.pending.reset();
                SYNCTS_ENSURE(req.message == mid,
                              "REQ does not match the scripted receive");
                engine.clock->on_receive_into(m.sender,
                                              req.stamp.components(),
                                              engine.ack_scratch,
                                              engine.stamp_scratch);
                // Commit: the rendezvous instant, exactly once per
                // sequence — duplicates never reach this line. A
                // restarted process re-executing a commit it lost must
                // reproduce the original stamp exactly; the realized
                // computation keeps the first commit's record.
                channel.last_committed = req.sequence;
                channel.replay_attempts = 0;  // the watchdog saw progress
                encode_epoch_frame_into(engine.epoch, req.sequence, mid,
                                        engine.ack_scratch,
                                        engine.ack_bytes);
                SegmentState& segment = segment_for(engine.epoch);
                if (segment.handle_by_script[mid] == kNoTimestamp) {
                    ++tally.commits;
                    trace(obs::TraceEventKind::commit, now, p, m.sender,
                          req.sequence, mid,
                          ts::total(engine.stamp_scratch));
                    segment.computation.add_message(m.sender, m.receiver);
                    segment.script_message.push_back(mid);
                    segment.handle_by_script[mid] =
                        segment.arena->allocate(engine.stamp_scratch);
                } else {
                    // A replayed commit validates against the original
                    // stamp through the region store: the {epoch, index}
                    // read throws a typed RegionError rather than
                    // returning a dangling span if stability-driven
                    // retirement were ever wrong about this epoch.
                    SYNCTS_ENSURE(
                        ts::equal(engine.stamp_scratch,
                                  regions.span(RegionHandle{
                                      engine.epoch,
                                      segment.handle_by_script[mid]})),
                        "recovered replay diverged from the original commit");
                    ++tally.recommits;
                    trace(obs::TraceEventKind::commit, now, p, m.sender,
                          req.sequence, mid,
                          ts::total(engine.stamp_scratch));
                }
                channel.ack_window.put(req.sequence, engine.ack_bytes);
                if (recovery_active) {
                    WalRecord record;
                    record.type = WalRecordType::commit;
                    record.peer = m.sender;
                    record.sequence = req.sequence;
                    record.message = mid;
                    record.epoch = engine.epoch;
                    // Canonical re-encoding of the REQ — byte-identical
                    // to the frame the sender put on the wire.
                    encode_epoch_frame_into(engine.epoch, req.sequence, mid,
                                            req.stamp.components(),
                                            engine.req_bytes);
                    record.frame = engine.req_bytes;
                    record.aux = engine.ack_bytes;
                    wal_append(p, std::move(record));
                }
                Packet ack;
                ack.source = p;
                ack.destination = m.sender;
                ack.kind = kAck;
                ack.tag = mid;
                // ack_window and the WAL keep the canonical full ACK
                // (recovery byte-verifies against it); only the wire
                // body may be a delta.
                if (wire_ext && proto.delta &&
                    delta_ready(channel.ack_sent_shadow, engine.epoch,
                                req.sequence, engine.ack_scratch.size()) &&
                    encode_delta_frame_into(engine.epoch, req.sequence, mid,
                                            channel.ack_sent_shadow.stamp,
                                            engine.ack_scratch,
                                            engine.delta_bytes)) {
                    ack.body = engine.delta_bytes;
                    ++tally.delta_frames;
                } else {
                    ack.body = engine.ack_bytes;
                    ++tally.full_frames;
                }
                if (wire_ext) {
                    update_shadow(channel.ack_sent_shadow, engine.epoch,
                                  req.sequence, engine.ack_scratch);
                }
                tx_send(now, std::move(ack),
                        proto.coalesce_acks ? coalesce_delay : 0);
                ++engine.cursor;
                if (after_step(now, p)) return;  // crashed on this step
            }
        };

    /// True when every live engine has discharged its
    /// epoch-`current_epoch` obligations: caught up to the barrier
    /// epoch, script done, nothing on the wire, no rejoin in flight.
    /// Down engines are exempt — they rejoin into the new epoch later
    /// (their unfinished steps are re-executions of already-realized
    /// messages; maybe_transition checks that).
    const auto epoch_complete = [&] {
        for (const Engine& engine : engines) {
            if (engine.down) continue;
            if (engine.rejoining || engine.epoch != current_epoch) {
                return false;
            }
            if (engine.cursor != engine.script.size()) return false;
            if (engine.outstanding) return false;
        }
        return true;
    };

    /// Crosses as many barriers as are due at virtual time `now`
    /// (several in a row when later epochs script no messages). Live
    /// engines checkpoint at each barrier, so a later crash never
    /// rewinds across it.
    const auto maybe_transition = [&](std::uint64_t now) {
        while (current_epoch + 1 < num_epochs && epoch_complete()) {
            const bool realized =
                scripts[current_epoch].num_messages() == 0 ||
                (segments[current_epoch] != nullptr &&
                 segments[current_epoch]->computation.num_messages() ==
                     scripts[current_epoch].num_messages());
            if (!realized) {
                SYNCTS_ENSURE(recovery_active,
                              "epoch barrier crossed with unrealized "
                              "messages");
                // A down process still owes commits; the barrier waits
                // for its restart to realize them.
                return;
            }
            for (const Engine& engine : engines) {
                for (const auto& [peer, channel] : engine.in) {
                    SYNCTS_ENSURE(!channel.pending,
                                  "epoch barrier crossed with a buffered REQ");
                }
            }
            const EpochTransition& transition =
                topology.transition_into(current_epoch + 1);
            ++current_epoch;
            // The global barrier event uses the out-of-range peer n_max
            // as its marker, distinguishing it from the per-process
            // fast-forward epoch events (process == peer) — the causal
            // profiler keys barrier-stall attribution off this shape.
            trace(obs::TraceEventKind::epoch, now, 0,
                  static_cast<ProcessId>(n_max), current_epoch,
                  transition.preserved_groups, 0);
            for (ProcessId p = 0; p < n_max; ++p) {
                if (engines[p].down) continue;  // fast-forwards on restart
                if (recovery_active) {
                    WalRecord record;
                    record.type = WalRecordType::epoch;
                    record.epoch = current_epoch;
                    wal_append(p, std::move(record));
                }
                load_engine(p, current_epoch);
                take_snapshot(p);
            }
            // The barrier is the stability point: without recovery every
            // earlier epoch is unreachable now; with recovery the
            // per-process snapshots above advanced the durable frontier.
            retire_stable(current_epoch);
            const std::size_t n =
                topology.epoch(current_epoch).num_processes();
            for (ProcessId p = 0; p < n; ++p) {
                if (!engines[p].down) progress(now, p);
            }
        }
    };

    /// Walks a lagging (restarted) engine through the barriers the
    /// system crossed while it was down, one epoch at a time, with a
    /// WAL record and a checkpoint at each — exactly what the engine
    /// would have done live.
    const auto fast_forward = [&](std::uint64_t now, ProcessId p) {
        Engine& engine = engines[p];
        bool moved = false;
        while (engine.epoch < current_epoch && !engine.rejoining &&
               engine.cursor == engine.script.size() &&
               !engine.outstanding) {
            const EpochId next = engine.epoch + 1;
            WalRecord record;
            record.type = WalRecordType::epoch;
            record.epoch = next;
            wal_append(p, std::move(record));
            load_engine(p, next);
            take_snapshot(p);
            ++tally.fast_forwards;
            trace(obs::TraceEventKind::epoch, now, p, p, next, 0, 0);
            moved = true;
        }
        if (moved) {
            progress(now, p);
            maybe_transition(now);
        }
    };

    /// The rejoin handshake is settled: resume the interrupted
    /// rendezvous (original bytes) or the script, then catch up to the
    /// barrier epoch.
    const auto complete_rejoin = [&](std::uint64_t now, ProcessId p) {
        Engine& engine = engines[p];
        engine.rejoining = false;
        engine.awaiting_hello.clear();
        if (engine.outstanding) {
            Outstanding& out = *engine.outstanding;
            ++tally.retransmits;
            trace(obs::TraceEventKind::retransmit, now, p, out.receiver,
                  out.sequence, out.mid,
                  logical(engine));
            Packet req;
            req.source = p;
            req.destination = out.receiver;
            req.kind = kReq;
            req.tag = out.mid;
            req.body = out.frame;  // canonical full frame, restored
            ++tally.full_frames;
            tx_send(now, std::move(req), 0);
            if (retransmission) arm_timer(now, p);
        } else {
            progress(now, p);
        }
        fast_forward(now, p);
        maybe_transition(now);
    };

    /// Sends (or re-sends) rejoin HELLOs. A HELLO is an epoch frame at
    /// the rejoiner's recovered epoch whose width-1 "stamp" carries its
    /// committed high-water mark on the channel from the addressee, so
    /// the peer can replay exactly the REQs the rejoiner lost. The
    /// sequence field numbers handshake attempts.
    std::function<void(std::uint64_t, ProcessId)> send_hellos =
        [&](std::uint64_t now, ProcessId p) {
            Engine& engine = engines[p];
            if (engine.awaiting_hello.empty()) {
                const Graph& graph = topology.epoch(engine.epoch).graph();
                if (p < graph.num_vertices()) {
                    const std::span<const ProcessId> neighbors =
                        graph.neighbors(p);
                    engine.awaiting_hello.assign(neighbors.begin(),
                                                 neighbors.end());
                }
                if (engine.awaiting_hello.empty()) {
                    complete_rejoin(now, p);
                    return;
                }
                engine.hello_attempts = 0;
            }
            if (engine.hello_attempts >= options.max_retransmits) {
                throw SynchronizerStalled(
                    "process P" + std::to_string(p) +
                    " exhausted its rejoin handshake attempts");
            }
            ++engine.hello_attempts;
            const std::uint64_t sequence = engine.hello_attempts;
            for (const ProcessId q : engine.awaiting_hello) {
                std::uint64_t last = 0;
                if (const auto it = engine.in.find(q);
                    it != engine.in.end()) {
                    last = it->second.last_committed;
                }
                Packet hello;
                hello.source = p;
                hello.destination = q;
                hello.kind = kHello;
                encode_epoch_frame_into(
                    engine.epoch, sequence, 0,
                    std::span<const std::uint64_t>(&last, 1), hello.body);
                ++tally.hellos;
                trace(obs::TraceEventKind::hello, now, p, q, sequence, last,
                      logical(engine));
                post(now, std::move(hello));
            }
            const std::uint64_t incarnation = engine.incarnation;
            network.schedule(now + base_rto,
                             [&, p, incarnation](std::uint64_t when) {
                                 Engine& e = engines[p];
                                 if (e.incarnation != incarnation) return;
                                 if (!e.rejoining) return;
                                 send_hellos(when, p);
                             });
        };

    /// Chases a replay gap: while `last_committed` on the channel from
    /// `peer` lags the frontier its HELLO_ACK announced, the owed frames
    /// can only come from the peer's one-shot window replay — which the
    /// network may drop, and which the peer never re-times (it considers
    /// those rendezvous complete). So the *receiver* drives: re-HELLO
    /// the peer until the gap closes, bounded like a retransmission.
    std::function<void(std::uint64_t, ProcessId, ProcessId)>
        arm_replay_watchdog = [&](std::uint64_t now, ProcessId p,
                                  ProcessId peer) {
            const std::uint64_t incarnation = engines[p].incarnation;
            network.schedule(
                now + base_rto,
                [&, p, peer, incarnation](std::uint64_t when) {
                    Engine& e = engines[p];
                    if (e.incarnation != incarnation || e.down) return;
                    const auto it = e.in.find(peer);
                    if (it == e.in.end()) return;
                    InChannel& channel = it->second;
                    if (channel.last_committed >= channel.replay_target) {
                        channel.watchdog_armed = false;
                        return;  // caught up; the watchdog retires
                    }
                    if (channel.replay_attempts >= options.max_retransmits) {
                        throw SynchronizerStalled(
                            "process P" + std::to_string(p) +
                            " exhausted its replay requests to P" +
                            std::to_string(peer));
                    }
                    ++channel.replay_attempts;
                    std::uint64_t last = channel.last_committed;
                    Packet hello;
                    hello.source = p;
                    hello.destination = peer;
                    hello.kind = kHello;
                    encode_epoch_frame_into(
                        e.epoch, channel.replay_attempts, 0,
                        std::span<const std::uint64_t>(&last, 1), hello.body);
                    ++tally.hellos;
                    trace(obs::TraceEventKind::hello, when, p, peer,
                          channel.replay_attempts, last,
                          logical(e));
                    post(when, std::move(hello));
                    arm_replay_watchdog(when, p, peer);
                });
        };

    /// Brings a crashed process back: recover the durable state, rebuild
    /// the live engine from it, then either rejoin (handshake with the
    /// neighbors so lost frames are replayed) or, when every step of the
    /// recovered epoch was durable, fast-forward straight to the barrier
    /// epoch.
    restart_process = [&](std::uint64_t now, ProcessId p) {
        Engine& engine = engines[p];
        engine.down = false;
        network.set_down(p, false);
        RecoverOutcome outcome = RecoveryManager::recover(
            stores[p].snapshot, stores[p].wal,
            [&](EpochId e) { return topology.decomposition(e); });
        ProcessState& state = outcome.state;
        // The snapshot's epoch is the rewind floor the durable pin has
        // been holding since the snapshot was taken; replay can only
        // have moved the live epoch forward from it, so every region
        // the re-execution will touch is still live.
        SYNCTS_ENSURE(durable_epoch[p] == outcome.stable_epoch,
                      "recovered snapshot epoch disagrees with the durable "
                      "frontier");
        SYNCTS_ENSURE(state.epoch >= outcome.stable_epoch,
                      "WAL replay rewound past the snapshot epoch");
        // The replayed history must land exactly on the live log's tail:
        // the snapshot's stability point plus every replayed record is
        // the next LSN the WAL will assign. This is also the position
        // the flight recorder dumped at the crash instant, so a SYFR
        // post-mortem and the recovery that follows it cross-validate.
        SYNCTS_ENSURE(outcome.wal_next_lsn == stores[p].wal.next_lsn(),
                      "recovery replay disagrees with the WAL position");
        load_engine(p, state.epoch);
        SYNCTS_ENSURE(engine.clock != nullptr &&
                          state.clock.size() == engine.clock->width(),
                      "recovered clock does not match the epoch topology");
        engine.clock->restore_from(state.clock);
        engine.cursor = static_cast<std::size_t>(state.cursor);
        SYNCTS_ENSURE(engine.cursor <= engine.script.size(),
                      "recovered cursor beyond the epoch script");
        engine.steps = state.steps;
        engine.steps_since_snapshot = 0;
        engine.out.clear();
        for (OutChannelState& channel : state.out) {
            engine.out.emplace(channel.peer,
                               OutChannel{channel.next_sequence,
                                          std::move(channel.req_window)});
        }
        engine.in.clear();
        for (InChannelState& channel : state.in) {
            engine.in.emplace(channel.peer,
                              InChannel{channel.last_committed, std::nullopt,
                                        {}, std::move(channel.ack_window)});
        }
        engine.outstanding.reset();
        if (state.outstanding.active) {
            SYNCTS_ENSURE(state.outstanding.message <=
                              std::numeric_limits<MessageId>::max(),
                          "recovered message id out of range");
            engine.outstanding = Outstanding{
                .receiver = state.outstanding.receiver,
                .mid = static_cast<MessageId>(state.outstanding.message),
                .sequence = state.outstanding.sequence,
                .frame = std::move(state.outstanding.frame),
                .retransmits = 0,
                .rto = base_rto,
                .first_send_time = now};
        }
        ++tally.restarts;
        tally.replayed_records += outcome.replayed_records;
        if (replay_hist != nullptr) {
            replay_hist->record(outcome.replayed_records);
        }
        trace(obs::TraceEventKind::restart, now, p, p,
              outcome.replayed_records, engine.epoch,
              logical(engine));
        if (engine.cursor == engine.script.size() && !engine.outstanding) {
            // Every step of the recovered epoch was durable: nothing to
            // re-execute, so no handshake — just catch up to the barrier.
            fast_forward(now, p);
            maybe_transition(now);
            return;
        }
        engine.rejoining = true;
        send_hellos(now, p);
    };

    const auto handle_req = [&](std::uint64_t now, ProcessId p,
                                const Packet& packet,
                                const FrameHeader& header) {
        Engine& engine = engines[p];
        InChannel& channel = in_channel(engine, packet.source);
        if (header.sequence == channel.last_committed + 1) {
            if (channel.pending) {
                // Duplicate of a REQ already buffered for the program.
                SYNCTS_ENSURE(channel.pending->sequence == header.sequence,
                              "two distinct uncommitted REQs on one channel");
                ++tally.req_duplicates;
                trace(obs::TraceEventKind::duplicate_drop, now, p,
                      packet.source, header.sequence, header.message,
                      logical(engine));
                return;
            }
            // The program may not have reached the matching receive yet,
            // so the stamp is copied out of the scratch into an owning
            // buffered frame — the only copy on the fresh-REQ path.
            channel.pending = SyncFrame{
                header.sequence, header.message,
                VectorTimestamp(
                    std::span<const std::uint64_t>(engine.rx_stamp))};
            trace(obs::TraceEventKind::receive, now, p, packet.source,
                  header.sequence, header.message,
                  logical(engine));
            progress(now, p);
            fast_forward(now, p);
            maybe_transition(now);
            return;
        }
        if (header.sequence <= channel.last_committed &&
            channel.last_committed > 0) {
            // The sender retransmitted after commit: its ACK was lost, or
            // this REQ copy was duplicated in flight — or a restarted
            // sender rewound and re-executed the send. Replay the ACK as
            // originally encoded; the clock is not touched, so no double
            // increment, and the sender's re-merge is bit-identical.
            const std::vector<std::uint8_t>* cached =
                channel.ack_window.find(header.sequence);
            if (cached != nullptr) {
                // Counted once: the REQ copy is answered (with the cached
                // ACK), not suppressed, so it is an ack_replay and *not*
                // also a req_duplicate. Replays of pre-rewind sequences
                // are counted separately.
                if (header.sequence == channel.last_committed) {
                    ++tally.ack_replays;
                } else {
                    ++tally.window_ack_replays;
                }
                trace(obs::TraceEventKind::ack_replay, now, p, packet.source,
                      header.sequence, header.message,
                      logical(engine));
                Packet ack;
                ack.source = p;
                ack.destination = packet.source;
                ack.kind = kAck;
                ack.tag = packet.tag;
                ack.body = *cached;  // original full bytes — the resync
                ++tally.full_frames;
                tx_send(now, std::move(ack), 0);
                return;
            }
            // The newest commit's ACK is always retained, so only
            // sequences older than the window can miss.
            SYNCTS_ENSURE(header.sequence < channel.last_committed,
                          "committed channel has no cached ACK");
            ++tally.req_duplicates;
            trace(obs::TraceEventKind::duplicate_drop, now, p, packet.source,
                  header.sequence, header.message,
                  logical(engine));
            return;
        }
        // A sender never advances past an unacknowledged sequence — but a
        // *rejoining* receiver's channel state is rewound, so a live
        // sender's current traffic (and the HELLO-driven window replay
        // that fills the gap) can run ahead of the commit point. Park the
        // frame rather than drop it: the sender re-times only the frame
        // it still considers outstanding, so a reordered middle frame
        // would otherwise never be sent again.
        SYNCTS_ENSURE(recovery_active, "REQ sequence from the future");
        if (channel.future.try_emplace(header.sequence, packet.body).second) {
            ++tally.future_buffered;
            trace(obs::TraceEventKind::park, now, p, packet.source,
                  header.sequence, header.message,
                  logical(engine));
        } else {
            ++tally.req_duplicates;
            trace(obs::TraceEventKind::duplicate_drop, now, p, packet.source,
                  header.sequence, header.message,
                  logical(engine));
        }
    };

    const auto handle_ack = [&](std::uint64_t now, ProcessId p,
                                const Packet& packet,
                                const FrameHeader& header) {
        Engine& engine = engines[p];
        if (!engine.outstanding ||
            engine.outstanding->receiver != packet.source ||
            engine.outstanding->sequence != header.sequence) {
            // Duplicate or replayed ACK for a rendezvous already finished.
            ++tally.ack_duplicates;
            trace(obs::TraceEventKind::duplicate_drop, now, p, packet.source,
                  header.sequence, header.message,
                  logical(engine));
            return;
        }
        const MessageId mid = engine.outstanding->mid;
        SegmentState& segment = segment_for(engine.epoch);
        SYNCTS_ENSURE(header.message == mid,
                      "ACK does not match the pending send");
        engine.clock->on_ack_into(packet.source, engine.rx_stamp,
                                  engine.stamp_scratch);
        SYNCTS_ENSURE(
            segment.handle_by_script[mid] != kNoTimestamp &&
                ts::equal(engine.stamp_scratch,
                          segment.arena->span(segment.handle_by_script[mid])),
            "sender and receiver disagree on a timestamp");
        trace(obs::TraceEventKind::ack, now, p, packet.source,
              header.sequence, mid, ts::total(engine.stamp_scratch));
        if (rendezvous_hist != nullptr) {
            rendezvous_hist->record(now -
                                    engine.outstanding->first_send_time);
            attempts_hist->record(engine.outstanding->retransmits + 1);
        }
        if (recovery_active) {
            WalRecord record;
            record.type = WalRecordType::ack;
            record.peer = packet.source;
            record.sequence = header.sequence;
            record.message = mid;
            record.epoch = engine.epoch;
            // Canonical full re-encoding of the ACK: the wire body may
            // be a delta (v3), but replay feeds record.aux to the
            // full-frame reader. Deterministic encoding makes this
            // byte-identical to the body on the classic path.
            encode_epoch_frame_into(engine.epoch, header.sequence, mid,
                                    engine.rx_stamp, engine.ack_bytes);
            record.aux = engine.ack_bytes;
            wal_append(p, std::move(record));
        }
        engine.outstanding.reset();
        ++engine.cursor;
        if (after_step(now, p)) return;  // crashed on this step
        progress(now, p);
        fast_forward(now, p);
        // Accepting an ACK can unblock the last sender of the epoch, so
        // this is one place barriers become due (re-executed commits
        // after a restart are the other).
        maybe_transition(now);
    };

    /// A checksum-valid frame from an epoch other than the engine's own.
    /// Frames from *ahead* are legitimate only while this engine is
    /// itself behind the barrier epoch (catching up after a restart);
    /// they are dropped and re-delivered by the sender's timer. Stale
    /// REQs are first checked against the ACK window — a restarted peer
    /// re-executing pre-barrier sends must receive the *original* ACK
    /// bytes — and otherwise answered with a NACK naming this engine's
    /// epoch. Stale ACKs and NACKs are dropped.
    const auto handle_epoch_mismatch = [&](std::uint64_t now, ProcessId p,
                                           const Packet& packet,
                                           const FrameHeader& header) {
        Engine& engine = engines[p];
        if (header.epoch > engine.epoch) {
            SYNCTS_ENSURE(engine.epoch < current_epoch,
                          "frame from a future epoch");
            trace(obs::TraceEventKind::epoch_reject, now, p, packet.source,
                  header.sequence, header.message, header.epoch);
            // A window replay answering this engine's HELLO can span
            // barriers it has not crossed yet; park later-epoch REQs just
            // like same-epoch out-of-order ones — the sender will not
            // re-send a frame it no longer considers outstanding.
            if (packet.kind == kReq) {
                InChannel& channel = in_channel(engine, packet.source);
                if (header.sequence > channel.last_committed &&
                    channel.future.try_emplace(header.sequence, packet.body)
                        .second) {
                    ++tally.future_buffered;
                    trace(obs::TraceEventKind::park, now, p, packet.source,
                          header.sequence, header.message, header.epoch);
                }
            }
            return;
        }
        ++tally.epoch_rejects;
        trace(obs::TraceEventKind::epoch_reject, now, p, packet.source,
              header.sequence, header.message, header.epoch);
        if (packet.kind != kReq) return;
        if (const auto it = engine.in.find(packet.source);
            it != engine.in.end()) {
            if (header.sequence <= it->second.last_committed) {
                if (const std::vector<std::uint8_t>* cached =
                        it->second.ack_window.find(header.sequence)) {
                    ++tally.window_ack_replays;
                    trace(obs::TraceEventKind::ack_replay, now, p,
                          packet.source, header.sequence, header.message,
                          logical(engine));
                    Packet ack;
                    ack.source = p;
                    ack.destination = packet.source;
                    ack.kind = kAck;
                    ack.tag = packet.tag;
                    ack.body = *cached;
                    ++tally.full_frames;
                    tx_send(now, std::move(ack), 0);
                    return;
                }
            }
        }
        Packet nack;
        nack.source = p;
        nack.destination = packet.source;
        nack.kind = kNack;
        nack.tag = packet.tag;
        // A NACK is a header-only frame: this engine's epoch plus the
        // rejected (sequence, message), no timestamp payload.
        encode_epoch_frame_into(engine.epoch, header.sequence,
                                header.message, {}, nack.body);
        ++tally.nacks_sent;
        trace(obs::TraceEventKind::nack, now, p, packet.source,
              header.sequence, header.message, engine.epoch);
        post(now, std::move(nack));
    };

    /// NACK at the sender: if the rejected (channel, sequence) is still
    /// the in-flight send, re-encode it at the engine's epoch and resend
    /// immediately (the retransmission timer stays armed for it).
    /// Otherwise the rendezvous already completed — the NACK answered a
    /// duplicate copy — and it is dropped.
    const auto handle_nack = [&](std::uint64_t now, ProcessId p,
                                 const Packet& packet,
                                 const FrameHeader& header) {
        Engine& engine = engines[p];
        if (header.epoch != engine.epoch || !engine.outstanding ||
            engine.outstanding->receiver != packet.source ||
            engine.outstanding->sequence != header.sequence) {
            ++tally.nack_drops;
            trace(obs::TraceEventKind::nack, now, p, packet.source,
                  header.sequence, header.message, header.epoch);
            return;
        }
        Outstanding& out = *engine.outstanding;
        encode_epoch_frame_into(engine.epoch, out.sequence, out.mid,
                                engine.clock->current_span(), out.frame);
        if (wire_ext) {
            // Full-vector resync on NACK: the channel just crossed an
            // epoch boundary under the sender's feet, so the old-epoch
            // shadow (and any claim to sequence continuity) is void.
            out_channel(engine, packet.source).req_shadow.valid = false;
        }
        ++tally.nack_retransmits;
        trace(obs::TraceEventKind::retransmit, now, p, packet.source,
              out.sequence, out.mid,
              logical(engine));
        Packet req;
        req.source = p;
        req.destination = out.receiver;
        req.kind = kReq;
        req.tag = out.mid;
        req.body = out.frame;
        ++tally.full_frames;
        tx_send(now, std::move(req), 0);
    };

    /// A restarted neighbor announced itself: replay every REQ in the
    /// send window beyond its committed high-water mark (original bytes,
    /// original epoch tags) and acknowledge the handshake.
    const auto handle_hello = [&](std::uint64_t now, ProcessId p,
                                  const Packet& packet) {
        Engine& engine = engines[p];
        std::uint64_t peer_committed = 0;
        FrameHeader header;
        try {
            header = decode_epoch_frame_into(
                packet.body, std::span<std::uint64_t>(&peer_committed, 1));
        } catch (const WireError&) {
            ++tally.corrupt_rejects;
            trace(obs::TraceEventKind::corrupt_reject, now, p, packet.source,
                  packet.kind, packet.tag,
                  logical(engine));
            return;
        }
        trace(obs::TraceEventKind::hello, now, p, packet.source,
              header.sequence, peer_committed,
              logical(engine));
        if (const auto it = engine.out.find(packet.source);
            it != engine.out.end()) {
            for (const FrameWindow::Entry& entry :
                 it->second.req_window.entries()) {
                if (entry.sequence <= peer_committed) continue;
                FrameHeader cached = peek_epoch_frame_header(entry.frame);
                Packet req;
                req.source = p;
                req.destination = packet.source;
                req.kind = kReq;
                req.tag = cached.message;
                req.body = entry.frame;
                ++tally.window_retransmits;
                trace(obs::TraceEventKind::retransmit, now, p, packet.source,
                      entry.sequence, cached.message,
                      logical(engine));
                // A replay burst to one destination batches naturally:
                // every frame here shares the rejoiner's address.
                ++tally.full_frames;
                tx_send(now, std::move(req), 0);
            }
        }
        Packet reply;
        reply.source = p;
        reply.destination = packet.source;
        reply.kind = kHelloAck;
        // Echo of the handshake attempt whose width-1 "stamp" carries
        // this engine's send frontier toward the rejoiner — the highest
        // sequence it has assigned on that channel. The rejoiner is owed
        // every frame up to it and uses the figure to watchdog the
        // (droppable, never re-timed) window replay above.
        std::uint64_t frontier = 0;
        if (const auto it = engine.out.find(packet.source);
            it != engine.out.end()) {
            frontier = it->second.next_sequence;
        }
        encode_epoch_frame_into(engine.epoch, header.sequence, 0,
                                std::span<const std::uint64_t>(&frontier, 1),
                                reply.body);
        ++tally.hello_acks;
        post(now, std::move(reply));
    };

    const auto handle_hello_ack = [&](std::uint64_t now, ProcessId p,
                                      const Packet& packet) {
        Engine& engine = engines[p];
        FrameHeader header;
        std::uint64_t frontier = 0;
        try {
            header = decode_epoch_frame_into(
                packet.body, std::span<std::uint64_t>(&frontier, 1));
        } catch (const WireError&) {
            ++tally.corrupt_rejects;
            trace(obs::TraceEventKind::corrupt_reject, now, p, packet.source,
                  packet.kind, packet.tag,
                  logical(engine));
            return;
        }
        // Record the peer's frontier even on a late/duplicate ACK: the
        // owed-frame gap it reveals is real regardless of handshake
        // bookkeeping, and only a watchdog will close it if the window
        // replay is lost.
        InChannel& channel = in_channel(engine, packet.source);
        if (frontier > channel.replay_target) {
            channel.replay_target = frontier;
        }
        if (channel.last_committed < channel.replay_target &&
            !channel.watchdog_armed) {
            channel.watchdog_armed = true;
            arm_replay_watchdog(now, p, packet.source);
        }
        if (!engine.rejoining) return;  // late copy of a settled handshake
        const auto it = std::find(engine.awaiting_hello.begin(),
                                  engine.awaiting_hello.end(),
                                  packet.source);
        if (it == engine.awaiting_hello.end()) return;
        engine.awaiting_hello.erase(it);
        trace(obs::TraceEventKind::hello, now, p, packet.source,
              header.sequence, 1,
              logical(engine));
        if (engine.awaiting_hello.empty()) complete_rejoin(now, p);
    };

    /// Extended-path dispatch of one REQ/ACK/NACK frame — a bare packet
    /// or a batch entry. Classifies with peek_frame_info (checksum +
    /// header, no component decode), validates the kind *semantically*
    /// (a batch entry's kind/tag varints sit outside the inner frame
    /// checksum, so a flipped kind bit could present an ACK as a REQ —
    /// message ids are globally unique, so the script is the
    /// authority), decodes full or delta against the channel shadow,
    /// and hands the existing handlers a pre-filled rx_stamp exactly
    /// like the classic dispatcher. Delta frames whose shadow does not
    /// apply (or that would have to be parked for later) are dropped as
    /// resync misses — the sender's retransmission path always carries
    /// the full frame that re-seeds the shadow.
    const auto deliver_frame = [&](std::uint64_t now, ProcessId p,
                                   const Packet& packet) {
        Engine& engine = engines[p];
        const auto reject = [&] {
            ++tally.corrupt_rejects;
            trace(obs::TraceEventKind::corrupt_reject, now, p, packet.source,
                  packet.kind, packet.tag,
                  logical(engine));
        };
        FrameInfo info;
        try {
            info = peek_frame_info(packet.body);
        } catch (const WireError&) {
            reject();
            return;
        }
        const FrameHeader& header = info.header;
        if (packet.kind == kNack) {
            if (info.delta) {
                reject();  // NACKs are header-only, never delta
                return;
            }
            handle_nack(now, p, packet, header);
            return;
        }
        if (packet.kind == kReq) {
            // The scripted message must exist and run source -> p; a
            // mislabeled ACK always fails this (its message's sender is
            // p itself), as does any corrupted kind/tag.
            if (header.epoch >= num_epochs ||
                header.message >= scripts[header.epoch].num_messages()) {
                reject();
                return;
            }
            const SyncMessage& m = scripts[header.epoch].message(
                static_cast<MessageId>(header.message));
            if (m.sender != packet.source || m.receiver != p) {
                reject();
                return;
            }
        } else if (packet.kind == kAck) {
            // A mislabeled REQ could match the outstanding (receiver,
            // sequence) by coincidence — the sequence spaces of the two
            // directions are independent — but never its message id;
            // pre-check it gracefully where handle_ack would ENSURE.
            if (engine.outstanding &&
                engine.outstanding->receiver == packet.source &&
                engine.outstanding->sequence == header.sequence &&
                engine.outstanding->mid != header.message) {
                reject();
                return;
            }
        } else {
            reject();  // damaged batch-entry kind
            return;
        }
        if (header.epoch != engine.epoch) {
            if (info.delta && header.epoch > engine.epoch) {
                // Would have to be parked for a later epoch, but a
                // parked delta has no decodable base by promotion time.
                ++tally.delta_resyncs;
                trace(obs::TraceEventKind::delta_resync, now, p,
                      packet.source, header.sequence, header.message,
                      logical(engine));
                return;
            }
            // Stale frames never need their stamp decoded (window
            // replay and NACK are header-driven), so delta and full
            // take the same path here.
            handle_epoch_mismatch(now, p, packet, header);
            return;
        }
        if (packet.kind == kReq) {
            InChannel& channel = in_channel(engine, packet.source);
            const bool fresh =
                header.sequence == channel.last_committed + 1 &&
                !channel.pending;
            if (fresh) {
                // Pre-fill engine.rx_stamp for handle_req's fresh path.
                if (info.delta) {
                    if (!delta_ready(channel.rx_shadow, header.epoch,
                                     header.sequence,
                                     engine.rx_stamp.size())) {
                        ++tally.delta_resyncs;
                        trace(obs::TraceEventKind::delta_resync, now, p,
                              packet.source, header.sequence,
                              header.message, logical(engine));
                        return;
                    }
                    try {
                        decode_delta_frame_into(packet.body,
                                                channel.rx_shadow.stamp,
                                                engine.rx_stamp);
                    } catch (const WireError&) {
                        reject();
                        return;
                    }
                } else {
                    try {
                        decode_epoch_frame_into(packet.body,
                                                engine.rx_stamp);
                    } catch (const WireError&) {
                        reject();
                        return;
                    }
                }
                update_shadow(channel.rx_shadow, header.epoch,
                              header.sequence, engine.rx_stamp);
            } else if (info.delta &&
                       header.sequence > channel.last_committed + 1) {
                // Parking a delta body would strand it (see above).
                ++tally.delta_resyncs;
                trace(obs::TraceEventKind::delta_resync, now, p,
                      packet.source, header.sequence, header.message,
                      logical(engine));
                return;
            }
            // Duplicate/stale/park branches never read rx_stamp.
            handle_req(now, p, packet, header);
            return;
        }
        // kAck: decode (pre-filling rx_stamp for on_ack_into), then let
        // handle_ack match or drop exactly as the classic path does.
        OutChannel& channel = out_channel(engine, packet.source);
        if (info.delta) {
            if (!delta_ready(channel.ack_rx_shadow, header.epoch,
                             header.sequence, engine.rx_stamp.size())) {
                ++tally.delta_resyncs;
                trace(obs::TraceEventKind::delta_resync, now, p,
                      packet.source, header.sequence, header.message,
                      logical(engine));
                return;
            }
            try {
                decode_delta_frame_into(packet.body,
                                        channel.ack_rx_shadow.stamp,
                                        engine.rx_stamp);
            } catch (const WireError&) {
                reject();
                return;
            }
        } else {
            try {
                decode_epoch_frame_into(packet.body, engine.rx_stamp);
            } catch (const WireError&) {
                reject();
                return;
            }
        }
        update_shadow(channel.ack_rx_shadow, header.epoch, header.sequence,
                      engine.rx_stamp);
        handle_ack(now, p, packet, header);
    };

    for (ProcessId p = 0; p < n_max; ++p) {
        network.on_deliver(p, [&, p](std::uint64_t now, const Packet& packet) {
            Engine& engine = engines[p];
            if (engine.down) return;  // the network already drops these
            if (packet.kind == kHello) {
                handle_hello(now, p, packet);
                return;
            }
            if (packet.kind == kHelloAck) {
                handle_hello_ack(now, p, packet);
                return;
            }
            if (wire_ext) {
                if (packet.kind == kBatch) {
                    // Unpack the container and run each entry through
                    // the frame dispatcher as its own sub-packet. The
                    // outer checksum is advisory — per-entry inner
                    // checksums decide survival — but a structural
                    // break (corrupted length/varint) loses the
                    // remainder; retransmission recovers it like a
                    // lost packet.
                    try {
                        BatchReader reader(packet.body);
                        BatchFrame::Entry entry;
                        Packet sub;
                        sub.source = packet.source;
                        sub.destination = packet.destination;
                        while (reader.next(entry)) {
                            if (engines[p].down) return;  // mid-batch crash
                            if (entry.kind > kHelloAck) {
                                // Damaged kind varint (could alias a
                                // valid kind after u32 truncation).
                                ++tally.corrupt_rejects;
                                trace(obs::TraceEventKind::corrupt_reject,
                                      now, p, packet.source, packet.kind,
                                      entry.kind, logical(engines[p]));
                                continue;
                            }
                            sub.kind = static_cast<std::uint32_t>(entry.kind);
                            sub.tag = entry.tag;
                            sub.body.assign(entry.body.begin(),
                                            entry.body.end());
                            deliver_frame(now, p, sub);
                        }
                    } catch (const WireError&) {
                        ++tally.corrupt_rejects;
                        trace(obs::TraceEventKind::corrupt_reject, now, p,
                              packet.source, packet.kind, packet.tag,
                              logical(engines[p]));
                    }
                    return;
                }
                deliver_frame(now, p, packet);
                return;
            }
            FrameHeader header;
            if (packet.kind == kNack) {
                // NACKs carry no timestamp; read the header only.
                try {
                    header = peek_epoch_frame_header(packet.body);
                } catch (const WireError&) {
                    ++tally.corrupt_rejects;
                    trace(obs::TraceEventKind::corrupt_reject, now, p,
                          packet.source, packet.kind, packet.tag,
                          logical(engine));
                    return;
                }
                handle_nack(now, p, packet, header);
                return;
            }
            try {
                header = decode_epoch_frame_into(packet.body, engine.rx_stamp);
            } catch (const WireError&) {
                // Either corrupted in flight, or a healthy frame from
                // another epoch whose width no longer matches — the
                // checksum-validated header tells the two apart.
                try {
                    header = peek_epoch_frame_header(packet.body);
                } catch (const WireError&) {
                    ++tally.corrupt_rejects;
                    trace(obs::TraceEventKind::corrupt_reject, now, p,
                          packet.source, packet.kind, packet.tag,
                          logical(engine));
                    return;
                }
                if (header.epoch == engine.epoch) {
                    // Same epoch, bad payload: genuinely malformed.
                    ++tally.corrupt_rejects;
                    trace(obs::TraceEventKind::corrupt_reject, now, p,
                          packet.source, packet.kind, packet.tag,
                          logical(engine));
                    return;
                }
                handle_epoch_mismatch(now, p, packet, header);
                return;
            }
            if (header.epoch != engine.epoch) {
                handle_epoch_mismatch(now, p, packet, header);
                return;
            }
            if (packet.kind == kReq) {
                handle_req(now, p, packet, header);
            } else {
                handle_ack(now, p, packet, header);
            }
        });
    }

    // Kick off every epoch-0 process at time 0; leading message-free
    // epochs transition immediately. With recovery armed, every process
    // checkpoints its initial state first, so even a crash on the very
    // first step has a snapshot to restart from.
    {
        if (recovery_active) {
            for (ProcessId p = 0; p < n_max; ++p) take_snapshot(p);
        }
        const std::size_t n = topology.epoch(0).num_processes();
        for (ProcessId p = 0; p < n; ++p) progress(0, p);
        maybe_transition(0);
    }
    ReconfigurableRunResult result;
    result.virtual_duration = network.run();
    result.packets = network.packets_delivered();
    result.network_faults = network.fault_stats();
    result.protocol = ProtocolStats{
        .bytes_sent = tally.bytes_sent,
        .wire_packets = tally.wire_packets,
        .batch_packets = tally.batch_packets,
        .batch_frames = tally.batch_frames,
        .acks_coalesced = tally.acks_coalesced,
        .delta_frames = tally.delta_frames,
        .full_frames = tally.full_frames,
        .delta_resyncs = tally.delta_resyncs,
        .bsched_deferrals = tally.bsched_deferrals};

    if (options.metrics != nullptr) {
        obs::MetricsRegistry& m = *options.metrics;
        m.counter("sync_req_sent").inc(tally.req_sent);
        m.counter("sync_commits").inc(tally.commits);
        m.counter("sync_retransmits").inc(tally.retransmits);
        m.counter("sync_timeouts").inc(tally.timeouts);
        m.counter("sync_req_duplicates").inc(tally.req_duplicates);
        m.counter("sync_ack_duplicates").inc(tally.ack_duplicates);
        m.counter("sync_ack_replays").inc(tally.ack_replays);
        m.counter("sync_frames_corrupt_rejected").inc(tally.corrupt_rejects);
        m.counter("sync_packets_delivered").inc(result.packets);
        m.counter("sync_runs").inc();
        m.counter("sync_epoch_transitions").inc(num_epochs - 1);
        m.counter("sync_epoch_rejects").inc(tally.epoch_rejects);
        m.counter("sync_nacks_sent").inc(tally.nacks_sent);
        m.counter("sync_nack_drops").inc(tally.nack_drops);
        m.counter("sync_nack_retransmits").inc(tally.nack_retransmits);
        m.gauge("sync_virtual_ticks")
            .set(static_cast<std::int64_t>(result.virtual_duration));
        m.counter("sync_bytes_sent").inc(tally.bytes_sent);
        m.counter("sync_wire_packets").inc(tally.wire_packets);
        if (wire_ext) {
            m.counter("sync_batch_packets").inc(tally.batch_packets);
            m.counter("sync_batch_frames").inc(tally.batch_frames);
            m.counter("sync_acks_coalesced").inc(tally.acks_coalesced);
            m.counter("wire_delta_frames").inc(tally.delta_frames);
            m.counter("wire_full_frames").inc(tally.full_frames);
            m.counter("wire_delta_resyncs").inc(tally.delta_resyncs);
        }
        if (bsched) {
            m.counter("bsched_admitted").inc(bsched->counters().admitted);
            m.counter("bsched_refused").inc(bsched->counters().refused);
            m.counter("bsched_bytes_admitted")
                .inc(bsched->counters().bytes_admitted);
            m.counter("bsched_deferrals").inc(tally.bsched_deferrals);
        }
        m.counter("net_packets_dropped")
            .inc(result.network_faults.dropped +
                 result.network_faults.targeted_drops);
        m.counter("net_packets_duplicated")
            .inc(result.network_faults.duplicated);
        m.counter("net_packets_corrupted")
            .inc(result.network_faults.corrupted);
        m.counter("net_packets_delayed").inc(result.network_faults.delayed);
        if (recovery_active) {
            m.counter("recover_crashes").inc(result.network_faults.crashes);
            m.counter("recover_restarts").inc(tally.restarts);
            m.counter("recover_replayed_records").inc(tally.replayed_records);
            m.counter("recover_snapshots").inc(tally.snapshots);
            m.counter("recover_recommits").inc(tally.recommits);
            m.counter("recover_window_ack_replays")
                .inc(tally.window_ack_replays);
            m.counter("recover_window_retransmits")
                .inc(tally.window_retransmits);
            m.counter("recover_hellos").inc(tally.hellos);
            m.counter("recover_hello_acks").inc(tally.hello_acks);
            m.counter("recover_future_buffered").inc(tally.future_buffered);
            m.counter("recover_fast_forwards").inc(tally.fast_forwards);
            m.counter("net_down_drops").inc(result.network_faults.down_drops);
            std::uint64_t wal_appends = 0;
            std::uint64_t wal_flushes = 0;
            std::uint64_t wal_truncated = 0;
            std::uint64_t wal_dropped = 0;
            for (const DurableStore& store : stores) {
                wal_appends += store.wal.appends();
                wal_flushes += store.wal.flushes();
                wal_truncated += store.wal.truncated_records();
                wal_dropped += store.wal.dropped_records();
            }
            m.counter("recover_wal_appends").inc(wal_appends);
            m.counter("recover_wal_flushes").inc(wal_flushes);
            m.counter("recover_wal_truncated").inc(wal_truncated);
            m.counter("recover_wal_dropped").inc(wal_dropped);
        }
        if (sink != nullptr) {
            // Ring-pressure diagnostics: how many events wrapped away and
            // the retention high-water mark, so an undersized sink is
            // visible in every report instead of silently profiling a
            // truncated window.
            m.counter("trace_dropped")
                .inc(sink->dropped() - sink_dropped_before);
            m.gauge("trace_peak_events")
                .set_max(static_cast<std::int64_t>(sink->peak_size()));
        }
        if (recorder != nullptr) recorder->publish_metrics(m);
    }

    SYNCTS_ENSURE(current_epoch == num_epochs - 1,
                  "protocol finished before the last epoch");
    for (const Engine& engine : engines) {
        SYNCTS_ENSURE(!engine.down, "protocol finished with a process down");
        SYNCTS_ENSURE(!engine.rejoining, "protocol finished mid-rejoin");
        SYNCTS_ENSURE(engine.epoch == current_epoch,
                      "protocol finished with a lagging process");
        SYNCTS_ENSURE(engine.cursor == engine.script.size(),
                      "protocol finished with unexecuted script actions");
        SYNCTS_ENSURE(!engine.outstanding, "protocol finished mid-rendezvous");
    }
    for (const TxProc& proc : tx) {
        for (const auto& [dst, q] : proc.queues) {
            SYNCTS_ENSURE(q.batch.empty(),
                          "protocol finished with queued frames");
        }
    }

    // The run finished cleanly, so nothing can rewind anymore: release
    // every durable pin, then flush whatever the frontier had not yet
    // retired, in epoch order behind the already-retired prefix.
    if (recovery_active) {
        for (ProcessId p = 0; p < n_max; ++p) {
            if (durable_epoch[p] != kNoDurableEpoch) {
                regions.unpin(durable_epoch[p]);
                durable_epoch[p] = kNoDurableEpoch;
            }
        }
    }
    while (flushed_below < num_epochs) {
        flush_segment(flushed_below);
        ++flushed_below;
    }
    SYNCTS_ENSURE(regions.live_regions() == 0,
                  "run finished with live regions");
    // Park every live process clock so a caller-owned stock carries the
    // engines into the next run (a run-local stock dies here anyway).
    for (Engine& engine : engines) {
        stock.restock_clock(std::move(engine.clock));
    }
    result.segments = std::move(flushed);
    return result;
}

}  // namespace syncts
