#include "runtime/reconfig_runtime.hpp"

#include <algorithm>
#include <functional>
#include <optional>
#include <unordered_map>
#include <utility>

#include "clocks/wire.hpp"
#include "common/check.hpp"
#include "common/timestamp_arena.hpp"
#include "common/ts_kernels.hpp"
#include "runtime/async_sim.hpp"

namespace syncts {

namespace {

constexpr std::uint32_t kReq = 0;
constexpr std::uint32_t kAck = 1;
constexpr std::uint32_t kNack = 2;  ///< epoch-stale REQ rejected

/// Sender-side state of the one in-flight rendezvous (a process's script
/// is sequential, so it blocks on at most one send at a time).
struct Outstanding {
    ProcessId receiver = 0;
    MessageId mid = 0;
    std::uint64_t sequence = 0;
    std::vector<std::uint8_t> frame;  // encoded REQ, byte-identical resends
    std::uint32_t retransmits = 0;
    std::uint64_t rto = 0;              // current backoff interval
    std::uint64_t first_send_time = 0;  // for the rendezvous-ticks histogram
};

/// Plain tallies kept unconditionally; they back the registry counters
/// (and, through legacy_protocol_stats, the deprecated ProtocolStats
/// view). These never count one event twice: a cached-ACK replay is an
/// ack_replay only, not also a duplicate drop.
struct Tally {
    std::uint64_t req_sent = 0;
    std::uint64_t commits = 0;
    std::uint64_t retransmits = 0;
    std::uint64_t timeouts = 0;
    std::uint64_t req_duplicates = 0;  ///< dup/stale REQs dropped, no reply
    std::uint64_t ack_duplicates = 0;  ///< dup/stale ACKs dropped
    std::uint64_t ack_replays = 0;     ///< cached ACK re-sent
    std::uint64_t corrupt_rejects = 0;
    std::uint64_t epoch_rejects = 0;      ///< frames from a stale epoch
    std::uint64_t nacks_sent = 0;         ///< NACKs answering stale REQs
    std::uint64_t nack_drops = 0;         ///< NACKs with no matching send
    std::uint64_t nack_retransmits = 0;   ///< sends re-encoded after a NACK
};

/// Receiver-side state of one directed channel (peer -> self). Survives
/// epoch transitions: sequences are continuous across the barrier.
struct InChannel {
    /// Sequence of the last committed rendezvous on this channel; fresh
    /// REQs must carry last_committed + 1 (sequences are 1-based).
    std::uint64_t last_committed = 0;
    /// Fresh REQ waiting for the program to reach the matching receive.
    std::optional<SyncFrame> pending;
    /// Encoded ACK of the last committed rendezvous, replayed when a
    /// duplicate REQ reveals the ACK was lost. Only replayed for frames
    /// of the current epoch — stale-epoch duplicates get a NACK.
    std::vector<std::uint8_t> cached_ack;
};

/// Per-process protocol engine: walks the process's script for the
/// current epoch, issuing REQs for sends and consuming buffered REQs for
/// receives. Channel state persists across epochs; clock and scratch are
/// rebuilt at each barrier.
struct Engine {
    ProcessId self = 0;
    std::vector<ProcessEvent> script;  // current epoch's message events
    std::size_t cursor = 0;
    std::unique_ptr<OnlineProcessClock> clock;
    std::optional<Outstanding> outstanding;
    /// next_sequence[q] — next sequence to assign on channel (self, q).
    std::unordered_map<ProcessId, std::uint64_t> next_sequence;
    /// Incoming-channel state by sender.
    std::unordered_map<ProcessId, InChannel> in;
    /// Width-d scratch for the span protocol hooks: decoded inbound
    /// stamp, outbound acknowledgement, committed timestamp. Resized at
    /// each epoch barrier so the per-packet path allocates nothing.
    std::vector<std::uint64_t> rx_stamp;
    std::vector<std::uint64_t> ack_scratch;
    std::vector<std::uint64_t> stamp_scratch;
};

/// Per-epoch accumulation: the realized computation, the committed
/// stamps (slot = realized-message index), and the script-id mapping.
struct SegmentState {
    SyncComputation computation;
    TimestampArena arena;
    std::vector<TsHandle> handle_by_script;
    std::vector<MessageId> script_message;

    SegmentState(const Graph& graph, std::size_t width, std::size_t messages)
        : computation(graph),
          arena(width, messages),
          handle_by_script(messages, kNoTimestamp) {}
};

}  // namespace

ReconfigurableRunResult run_reconfigurable_protocol(
    const TopologyManager& topology, std::span<const SyncComputation> scripts,
    const SynchronizerOptions& options) {
    const std::size_t num_epochs = topology.num_epochs();
    SYNCTS_REQUIRE(scripts.size() == num_epochs,
                   "need exactly one script per topology epoch");
    SYNCTS_REQUIRE(options.max_retransmits > 0,
                   "max_retransmits must be positive");
    SYNCTS_REQUIRE(options.max_backoff_exponent <= 32,
                   "max_backoff_exponent out of range");
    std::size_t n_max = 0;
    for (EpochId e = 0; e < num_epochs; ++e) {
        const Graph& graph = topology.epoch(e).graph();
        SYNCTS_REQUIRE(scripts[e].num_processes() == graph.num_vertices(),
                       "script and epoch disagree on process count");
        for (const SyncMessage& m : scripts[e].messages()) {
            SYNCTS_REQUIRE(graph.has_edge(m.sender, m.receiver),
                           "script uses a channel its epoch does not have");
        }
        n_max = std::max(n_max, graph.num_vertices());
    }

    Tally tally;
    obs::TraceSink* const sink = options.trace;
    obs::Histogram* rendezvous_hist = nullptr;
    obs::Histogram* attempts_hist = nullptr;
    if (options.metrics != nullptr) {
        rendezvous_hist = &options.metrics->histogram("sync_rendezvous_ticks");
        attempts_hist =
            &options.metrics->histogram("sync_attempts_per_message");
    }
    // One line per protocol event; `logical` is the acting process's
    // clock-vector total at record time, tying wire activity to causal
    // progress. Only evaluated when tracing is on.
    const auto trace = [&](obs::TraceEventKind kind, std::uint64_t now,
                           ProcessId process, ProcessId peer,
                           std::uint64_t a, std::uint64_t b,
                           std::uint64_t logical) {
        if (sink == nullptr) return;
        obs::TraceEvent event;
        event.virtual_time = now;
        event.logical = logical;
        event.arg_a = a;
        event.arg_b = b;
        event.process = process;
        event.peer = peer;
        event.kind = kind;
        sink->record(event);
    };

    AsyncSimulator network(n_max, options.seed);
    network.set_uniform_latency(options.latency_lo, options.latency_hi);
    network.set_fault_plan(options.faults);

    // Retransmission is armed whenever the network can lose or corrupt a
    // packet (or the caller asks for it explicitly); on a reliable network
    // it stays off so the wire profile is exactly 2 packets per message.
    const bool retransmission = options.retransmit_timeout > 0 ||
                                options.faults.active();
    const std::uint64_t base_rto =
        options.retransmit_timeout > 0
            ? options.retransmit_timeout
            : 4 * (options.latency_hi + options.faults.max_extra_delay) + 1;
    const std::uint64_t max_rto = base_rto << options.max_backoff_exponent;

    std::vector<Engine> engines(n_max);
    for (ProcessId p = 0; p < n_max; ++p) engines[p].self = p;

    std::vector<SegmentState> segments;
    segments.reserve(num_epochs);
    for (EpochId e = 0; e < num_epochs; ++e) {
        segments.emplace_back(topology.epoch(e).graph(),
                              topology.epoch(e).width(),
                              scripts[e].num_messages());
    }

    // The barrier state: every engine stamps, frames, and validates
    // against this one epoch. Stale frames are classified by the epoch
    // carried in their header.
    EpochId current_epoch = 0;

    /// (Re)loads per-process state for epoch `e`: the epoch's script
    /// slice, a fresh clock on the epoch's decomposition, and width-d
    /// scratch. Channel maps are deliberately left alone.
    const auto load_epoch = [&](EpochId e) {
        const std::shared_ptr<const EdgeDecomposition> decomposition =
            topology.decomposition(e);
        const std::size_t n = decomposition->graph().num_vertices();
        const std::size_t d = decomposition->size();
        for (ProcessId p = 0; p < n_max; ++p) {
            Engine& engine = engines[p];
            engine.script.clear();
            engine.cursor = 0;
            if (p >= n) {
                engine.clock.reset();
                continue;
            }
            for (const ProcessEvent& event : scripts[e].process_events(p)) {
                if (event.kind == ProcessEvent::Kind::message) {
                    engine.script.push_back(event);
                }
            }
            engine.clock =
                std::make_unique<OnlineProcessClock>(p, decomposition);
            engine.rx_stamp.resize(d);
            engine.ack_scratch.resize(d);
            engine.stamp_scratch.resize(d);
        }
    };
    load_epoch(0);

    // Re-arms the retransmission timer for the sender's current
    // outstanding REQ. Timers are never cancelled; a fired timer checks
    // that the exact (receiver, sequence) it was armed for is still
    // outstanding and otherwise does nothing — which also neutralizes
    // timers armed in an earlier epoch.
    std::function<void(std::uint64_t, ProcessId)> arm_timer =
        [&](std::uint64_t now, ProcessId p) {
            const Outstanding& out = *engines[p].outstanding;
            const ProcessId receiver = out.receiver;
            const std::uint64_t sequence = out.sequence;
            network.schedule(now + out.rto, [&, p, receiver,
                                             sequence](std::uint64_t when) {
                Engine& engine = engines[p];
                if (!engine.outstanding ||
                    engine.outstanding->receiver != receiver ||
                    engine.outstanding->sequence != sequence) {
                    return;  // ACK arrived; stale timer
                }
                Outstanding& out_now = *engine.outstanding;
                ++tally.timeouts;
                trace(obs::TraceEventKind::timeout, when, p, receiver,
                      sequence, out_now.mid,
                      ts::total(engine.clock->current_span()));
                if (out_now.retransmits >= options.max_retransmits) {
                    throw SynchronizerStalled(
                        "message " + std::to_string(out_now.mid) +
                        " from P" + std::to_string(p) + " to P" +
                        std::to_string(receiver) + " exhausted " +
                        std::to_string(options.max_retransmits) +
                        " retransmissions");
                }
                ++out_now.retransmits;
                ++tally.retransmits;
                trace(obs::TraceEventKind::retransmit, when, p, receiver,
                      sequence, out_now.mid,
                      ts::total(engine.clock->current_span()));
                Packet req;
                req.source = p;
                req.destination = receiver;
                req.kind = kReq;
                req.tag = out_now.mid;
                req.body = out_now.frame;
                network.send(when, std::move(req));
                out_now.rto = std::min(out_now.rto * 2, max_rto);
                arm_timer(when, p);
            });
        };

    // Forward declaration dance: progress() sends packets and is called
    // from the delivery handler.
    std::function<void(std::uint64_t, ProcessId)> progress =
        [&](std::uint64_t now, ProcessId p) {
            Engine& engine = engines[p];
            SegmentState& segment = segments[current_epoch];
            const SyncComputation& script = scripts[current_epoch];
            while (engine.cursor < engine.script.size()) {
                const MessageId mid = engine.script[engine.cursor].index;
                const SyncMessage& m = script.message(mid);
                if (m.sender == p) {
                    if (engine.outstanding) return;  // blocked on the wire
                    // Sequences are 1-based per directed channel.
                    const std::uint64_t sequence =
                        ++engine.next_sequence[m.receiver];
                    Packet req;
                    req.source = p;
                    req.destination = m.receiver;
                    req.kind = kReq;
                    encode_epoch_frame_into(current_epoch, sequence, mid,
                                            engine.clock->current_span(),
                                            req.body);
                    engine.outstanding = Outstanding{
                        .receiver = m.receiver,
                        .mid = mid,
                        .sequence = sequence,
                        .frame = req.body,
                        .retransmits = 0,
                        .rto = base_rto,
                        .first_send_time = now};
                    ++tally.req_sent;
                    trace(obs::TraceEventKind::send, now, p, m.receiver,
                          sequence, mid,
                          ts::total(engine.clock->current_span()));
                    network.send(now, std::move(req));
                    if (retransmission) arm_timer(now, p);
                    return;
                }
                // Receive action: consume the buffered fresh REQ if any.
                InChannel& channel = engine.in[m.sender];
                if (!channel.pending) return;  // wait for the REQ packet
                const SyncFrame req = *std::move(channel.pending);
                channel.pending.reset();
                SYNCTS_ENSURE(req.message == mid,
                              "REQ does not match the scripted receive");
                engine.clock->on_receive_into(m.sender,
                                              req.stamp.components(),
                                              engine.ack_scratch,
                                              engine.stamp_scratch);
                // Commit: the rendezvous instant, exactly once per
                // sequence — duplicates never reach this line.
                channel.last_committed = req.sequence;
                ++tally.commits;
                trace(obs::TraceEventKind::commit, now, p, m.sender,
                      req.sequence, mid, ts::total(engine.stamp_scratch));
                segment.computation.add_message(m.sender, m.receiver);
                segment.script_message.push_back(mid);
                segment.handle_by_script[mid] =
                    segment.arena.allocate(engine.stamp_scratch);
                encode_epoch_frame_into(current_epoch, req.sequence, mid,
                                        engine.ack_scratch,
                                        channel.cached_ack);
                Packet ack;
                ack.source = p;
                ack.destination = m.sender;
                ack.kind = kAck;
                ack.tag = mid;
                ack.body = channel.cached_ack;
                network.send(now, std::move(ack));
                ++engine.cursor;
            }
        };

    /// True when every epoch-`current_epoch` obligation is discharged:
    /// all scripted actions executed and no sender blocked on the wire.
    /// (Late duplicate frames may still be in flight; they are stale by
    /// construction and the epoch filter handles them.)
    const auto epoch_complete = [&] {
        for (const Engine& engine : engines) {
            if (engine.cursor != engine.script.size()) return false;
            if (engine.outstanding) return false;
        }
        return true;
    };

    /// Crosses as many barriers as are due at virtual time `now`
    /// (several in a row when later epochs script no messages).
    const auto maybe_transition = [&](std::uint64_t now) {
        while (current_epoch + 1 < num_epochs && epoch_complete()) {
            SYNCTS_ENSURE(segments[current_epoch].computation.num_messages() ==
                              scripts[current_epoch].num_messages(),
                          "epoch barrier crossed with unrealized messages");
            for (const Engine& engine : engines) {
                for (const auto& [peer, channel] : engine.in) {
                    SYNCTS_ENSURE(!channel.pending,
                                  "epoch barrier crossed with a buffered REQ");
                }
            }
            const EpochTransition& transition =
                topology.transition_into(current_epoch + 1);
            ++current_epoch;
            trace(obs::TraceEventKind::epoch, now, 0, 0, current_epoch,
                  transition.preserved_groups, 0);
            load_epoch(current_epoch);
            const std::size_t n =
                topology.epoch(current_epoch).num_processes();
            for (ProcessId p = 0; p < n; ++p) progress(now, p);
        }
    };

    const auto handle_req = [&](std::uint64_t now, ProcessId p,
                                const Packet& packet,
                                const FrameHeader& header) {
        Engine& engine = engines[p];
        InChannel& channel = engine.in[packet.source];
        if (header.sequence == channel.last_committed + 1) {
            if (channel.pending) {
                // Duplicate of a REQ already buffered for the program.
                SYNCTS_ENSURE(channel.pending->sequence == header.sequence,
                              "two distinct uncommitted REQs on one channel");
                ++tally.req_duplicates;
                trace(obs::TraceEventKind::duplicate_drop, now, p,
                      packet.source, header.sequence, header.message,
                      ts::total(engine.clock->current_span()));
                return;
            }
            // The program may not have reached the matching receive yet,
            // so the stamp is copied out of the scratch into an owning
            // buffered frame — the only copy on the fresh-REQ path.
            channel.pending = SyncFrame{
                header.sequence, header.message,
                VectorTimestamp(
                    std::span<const std::uint64_t>(engine.rx_stamp))};
            trace(obs::TraceEventKind::receive, now, p, packet.source,
                  header.sequence, header.message,
                  ts::total(engine.clock->current_span()));
            progress(now, p);
            return;
        }
        if (header.sequence == channel.last_committed &&
            channel.last_committed > 0) {
            // The sender retransmitted after commit: its ACK was lost (or
            // this REQ copy was duplicated in flight). Replay the cached
            // ACK; the clock is not touched, so no double increment.
            SYNCTS_ENSURE(!channel.cached_ack.empty(),
                          "committed channel has no cached ACK");
            // Counted once: the REQ copy is answered (with the cached
            // ACK), not suppressed, so it is an ack_replay and *not* also
            // a req_duplicate. The deprecated ProtocolStats shim still
            // folds replays into dup_drops for legacy callers.
            ++tally.ack_replays;
            trace(obs::TraceEventKind::ack_replay, now, p, packet.source,
                  header.sequence, header.message,
                  ts::total(engine.clock->current_span()));
            Packet ack;
            ack.source = p;
            ack.destination = packet.source;
            ack.kind = kAck;
            ack.tag = packet.tag;
            ack.body = channel.cached_ack;
            network.send(now, std::move(ack));
            return;
        }
        // A sender never advances past an unacknowledged sequence, so
        // anything else is a stale copy from an older rendezvous.
        SYNCTS_ENSURE(header.sequence < channel.last_committed,
                      "REQ sequence from the future");
        ++tally.req_duplicates;
        trace(obs::TraceEventKind::duplicate_drop, now, p, packet.source,
              header.sequence, header.message,
              ts::total(engine.clock->current_span()));
    };

    const auto handle_ack = [&](std::uint64_t now, ProcessId p,
                                const Packet& packet,
                                const FrameHeader& header) {
        Engine& engine = engines[p];
        if (!engine.outstanding ||
            engine.outstanding->receiver != packet.source ||
            engine.outstanding->sequence != header.sequence) {
            // Duplicate or replayed ACK for a rendezvous already finished.
            ++tally.ack_duplicates;
            trace(obs::TraceEventKind::duplicate_drop, now, p, packet.source,
                  header.sequence, header.message,
                  ts::total(engine.clock->current_span()));
            return;
        }
        const MessageId mid = engine.outstanding->mid;
        SegmentState& segment = segments[current_epoch];
        SYNCTS_ENSURE(header.message == mid,
                      "ACK does not match the pending send");
        engine.clock->on_ack_into(packet.source, engine.rx_stamp,
                                  engine.stamp_scratch);
        SYNCTS_ENSURE(
            segment.handle_by_script[mid] != kNoTimestamp &&
                ts::equal(engine.stamp_scratch,
                          segment.arena.span(segment.handle_by_script[mid])),
            "sender and receiver disagree on a timestamp");
        trace(obs::TraceEventKind::ack, now, p, packet.source,
              header.sequence, mid, ts::total(engine.stamp_scratch));
        if (rendezvous_hist != nullptr) {
            rendezvous_hist->record(now -
                                    engine.outstanding->first_send_time);
            attempts_hist->record(engine.outstanding->retransmits + 1);
        }
        engine.outstanding.reset();
        ++engine.cursor;
        progress(now, p);
        // Accepting an ACK is the only step that can unblock the last
        // sender of the epoch, so this is where barriers become due.
        maybe_transition(now);
    };

    /// A checksum-valid frame from an epoch other than the current one.
    /// Under the barrier model only *older* epochs can appear (a frame
    /// from the future would mean some process crossed the barrier
    /// early). Stale REQs are answered with a NACK naming the current
    /// epoch — the cached ACK they would otherwise earn belongs to a
    /// topology that no longer exists; stale ACKs/NACKs are dropped.
    const auto handle_epoch_mismatch = [&](std::uint64_t now, ProcessId p,
                                           const Packet& packet,
                                           const FrameHeader& header) {
        SYNCTS_ENSURE(header.epoch < current_epoch,
                      "frame from a future epoch");
        ++tally.epoch_rejects;
        trace(obs::TraceEventKind::epoch_reject, now, p, packet.source,
              header.sequence, header.message, header.epoch);
        if (packet.kind != kReq) return;
        Packet nack;
        nack.source = p;
        nack.destination = packet.source;
        nack.kind = kNack;
        nack.tag = packet.tag;
        // A NACK is a header-only frame: the current epoch plus the
        // rejected (sequence, message), no timestamp payload.
        encode_epoch_frame_into(current_epoch, header.sequence,
                                header.message, {}, nack.body);
        ++tally.nacks_sent;
        trace(obs::TraceEventKind::nack, now, p, packet.source,
              header.sequence, header.message, current_epoch);
        network.send(now, std::move(nack));
    };

    /// NACK at the sender: if the rejected (channel, sequence) is still
    /// the in-flight send, re-encode it at the current epoch and resend
    /// immediately (the retransmission timer stays armed for it).
    /// Otherwise the rendezvous already completed — the NACK answered a
    /// duplicate copy — and it is dropped.
    const auto handle_nack = [&](std::uint64_t now, ProcessId p,
                                 const Packet& packet,
                                 const FrameHeader& header) {
        Engine& engine = engines[p];
        if (header.epoch != current_epoch || !engine.outstanding ||
            engine.outstanding->receiver != packet.source ||
            engine.outstanding->sequence != header.sequence) {
            ++tally.nack_drops;
            trace(obs::TraceEventKind::nack, now, p, packet.source,
                  header.sequence, header.message, header.epoch);
            return;
        }
        Outstanding& out = *engine.outstanding;
        encode_epoch_frame_into(current_epoch, out.sequence, out.mid,
                                engine.clock->current_span(), out.frame);
        ++tally.nack_retransmits;
        trace(obs::TraceEventKind::retransmit, now, p, packet.source,
              out.sequence, out.mid,
              ts::total(engine.clock->current_span()));
        Packet req;
        req.source = p;
        req.destination = out.receiver;
        req.kind = kReq;
        req.tag = out.mid;
        req.body = out.frame;
        network.send(now, std::move(req));
    };

    for (ProcessId p = 0; p < n_max; ++p) {
        network.on_deliver(p, [&, p](std::uint64_t now, const Packet& packet) {
            Engine& engine = engines[p];
            FrameHeader header;
            if (packet.kind == kNack) {
                // NACKs carry no timestamp; read the header only.
                try {
                    header = peek_epoch_frame_header(packet.body);
                } catch (const WireError&) {
                    ++tally.corrupt_rejects;
                    trace(obs::TraceEventKind::corrupt_reject, now, p,
                          packet.source, packet.kind, packet.tag,
                          ts::total(engine.clock->current_span()));
                    return;
                }
                handle_nack(now, p, packet, header);
                return;
            }
            try {
                header = decode_epoch_frame_into(packet.body, engine.rx_stamp);
            } catch (const WireError&) {
                // Either corrupted in flight, or a healthy frame from an
                // earlier epoch whose width no longer matches — the
                // checksum-validated header tells the two apart.
                try {
                    header = peek_epoch_frame_header(packet.body);
                } catch (const WireError&) {
                    ++tally.corrupt_rejects;
                    trace(obs::TraceEventKind::corrupt_reject, now, p,
                          packet.source, packet.kind, packet.tag,
                          ts::total(engine.clock->current_span()));
                    return;
                }
                if (header.epoch == current_epoch) {
                    // Same epoch, bad payload: genuinely malformed.
                    ++tally.corrupt_rejects;
                    trace(obs::TraceEventKind::corrupt_reject, now, p,
                          packet.source, packet.kind, packet.tag,
                          ts::total(engine.clock->current_span()));
                    return;
                }
                handle_epoch_mismatch(now, p, packet, header);
                return;
            }
            if (header.epoch != current_epoch) {
                handle_epoch_mismatch(now, p, packet, header);
                return;
            }
            if (packet.kind == kReq) {
                handle_req(now, p, packet, header);
            } else {
                handle_ack(now, p, packet, header);
            }
        });
    }

    // Kick off every epoch-0 process at time 0; leading message-free
    // epochs transition immediately.
    {
        const std::size_t n = topology.epoch(0).num_processes();
        for (ProcessId p = 0; p < n; ++p) progress(0, p);
        maybe_transition(0);
    }
    ReconfigurableRunResult result;
    result.virtual_duration = network.run();
    result.packets = network.packets_delivered();
    result.network_faults = network.fault_stats();

    if (options.metrics != nullptr) {
        obs::MetricsRegistry& m = *options.metrics;
        m.counter("sync_req_sent").inc(tally.req_sent);
        m.counter("sync_commits").inc(tally.commits);
        m.counter("sync_retransmits").inc(tally.retransmits);
        m.counter("sync_timeouts").inc(tally.timeouts);
        m.counter("sync_req_duplicates").inc(tally.req_duplicates);
        m.counter("sync_ack_duplicates").inc(tally.ack_duplicates);
        m.counter("sync_ack_replays").inc(tally.ack_replays);
        m.counter("sync_frames_corrupt_rejected").inc(tally.corrupt_rejects);
        m.counter("sync_packets_delivered").inc(result.packets);
        m.counter("sync_runs").inc();
        m.counter("sync_epoch_transitions").inc(num_epochs - 1);
        m.counter("sync_epoch_rejects").inc(tally.epoch_rejects);
        m.counter("sync_nacks_sent").inc(tally.nacks_sent);
        m.counter("sync_nack_drops").inc(tally.nack_drops);
        m.counter("sync_nack_retransmits").inc(tally.nack_retransmits);
        m.gauge("sync_virtual_ticks")
            .set(static_cast<std::int64_t>(result.virtual_duration));
        m.counter("net_packets_dropped")
            .inc(result.network_faults.dropped +
                 result.network_faults.targeted_drops);
        m.counter("net_packets_duplicated")
            .inc(result.network_faults.duplicated);
        m.counter("net_packets_corrupted")
            .inc(result.network_faults.corrupted);
        m.counter("net_packets_delayed").inc(result.network_faults.delayed);
    }

    SYNCTS_ENSURE(current_epoch == num_epochs - 1,
                  "protocol finished before the last epoch");
    for (const Engine& engine : engines) {
        SYNCTS_ENSURE(engine.cursor == engine.script.size(),
                      "protocol finished with unexecuted script actions");
        SYNCTS_ENSURE(!engine.outstanding, "protocol finished mid-rendezvous");
    }

    result.segments.reserve(num_epochs);
    for (EpochId e = 0; e < num_epochs; ++e) {
        SegmentState& segment = segments[e];
        SYNCTS_ENSURE(segment.computation.num_messages() ==
                          scripts[e].num_messages(),
                      "not every scripted message was realized");
        // Materialize each record once, in commit order (arena slot
        // order).
        std::vector<VectorTimestamp> stamps;
        stamps.reserve(segment.arena.size());
        for (std::size_t i = 0; i < segment.arena.size(); ++i) {
            stamps.emplace_back(segment.arena.span(static_cast<TsHandle>(i)));
        }
        result.segments.push_back(EpochSegmentResult{
            e, std::move(segment.computation), std::move(stamps),
            std::move(segment.script_message)});
    }
    return result;
}

}  // namespace syncts
