#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "clocks/event_timestamp.hpp"
#include "common/timestamp_arena.hpp"
#include "decomp/edge_decomposition.hpp"
#include "obs/metrics.hpp"
#include "obs/trace_sink.hpp"
#include "runtime/failure_detector.hpp"
#include "runtime/process.hpp"
#include "trace/computation.hpp"

/// \file network.hpp
/// The threaded synchronous network: one thread per process, pairwise
/// rendezvous restricted to topology edges, Fig. 5 piggybacking on every
/// message and acknowledgement, and a post-run record that reconstructs
/// the computation for offline analysis (ground truth, Section 5 event
/// timestamps, offline retimestamping).
///
/// A watchdog detects whole-system deadlocks (every unfinished process
/// blocked, no rendezvous progress for a grace period), closes all
/// mailboxes and fails the run — synchronous programs deadlock easily and
/// a hung harness is worse than an exception.

namespace syncts {

/// Thrown by run() when the watchdog trips.
class NetworkDeadlock : public std::runtime_error {
public:
    NetworkDeadlock()
        : std::runtime_error(
              "synchronous network deadlock: all unfinished processes are "
              "blocked and no rendezvous is progressing") {}
};

/// Thrown by run() when a send's channel watchdog expires: the receiver
/// did not accept the rendezvous within the channel's timeout. Typed so
/// callers can tell a slow/crashed *peer* (degrade, consult the failure
/// detector) from a whole-system deadlock (NetworkDeadlock) or a wire
/// problem.
class ChannelTimeoutError : public std::runtime_error {
public:
    ChannelTimeoutError(ProcessId sender, ProcessId receiver,
                        std::chrono::milliseconds timeout)
        : std::runtime_error("send from P" + std::to_string(sender) +
                             " to P" + std::to_string(receiver) +
                             " timed out after " +
                             std::to_string(timeout.count()) +
                             "ms on the channel watchdog"),
          sender_(sender),
          receiver_(receiver),
          timeout_(timeout) {}

    ProcessId sender() const noexcept { return sender_; }
    ProcessId receiver() const noexcept { return receiver_; }
    std::chrono::milliseconds timeout() const noexcept { return timeout_; }

private:
    ProcessId sender_;
    ProcessId receiver_;
    std::chrono::milliseconds timeout_;
};

/// Per-directed-channel override of the send watchdog timeout.
struct ChannelTimeoutRule {
    ProcessId sender = 0;
    ProcessId receiver = 0;
    std::chrono::milliseconds timeout{0};  ///< 0 = wait forever
};

/// Tunables for TimestampedNetwork. The watchdog declares deadlock after
/// `watchdog_grace_polls` consecutive polls (every `watchdog_poll`) during
/// which every unfinished process is blocked and no rendezvous completed,
/// so the grace period is roughly watchdog_poll * watchdog_grace_polls.
/// Tests shrink it to fail fast; slow CI machines can stretch it.
struct TimestampedNetworkOptions {
    std::chrono::milliseconds watchdog_poll{10};
    int watchdog_grace_polls = 20;

    /// Default per-send watchdog: a sender blocked longer than this on
    /// one rendezvous withdraws its offer and run() fails with
    /// ChannelTimeoutError. 0 (the default) waits forever — the classic
    /// synchronous-send semantics, policed only by the whole-system
    /// deadlock watchdog above.
    std::chrono::milliseconds send_timeout{0};

    /// Per-directed-channel overrides of send_timeout (last matching
    /// rule wins; timeout 0 restores wait-forever for that channel).
    std::vector<ChannelTimeoutRule> channel_timeouts;

    /// When set, every completed rendezvous records a heartbeat for the
    /// receiver and every channel-watchdog expiry records silence, so
    /// suspicion accrues per peer (see failure_detector.hpp). Must
    /// outlive the call.
    FailureDetector* detector = nullptr;

    /// When set, run() publishes `net_rendezvous`, `net_internal_events`,
    /// `net_watchdog_polls`, `net_watchdog_idle_polls` (polls with every
    /// unfinished process blocked and no progress), `net_deadlocks`,
    /// `net_channel_timeouts` (send watchdogs expired), and
    /// `net_suspicions` (timeouts that tipped a peer over the detector
    /// threshold) into this registry. Must outlive the call. The
    /// watchdog and the process threads write concurrently — the metrics
    /// are relaxed atomics, so no additional synchronization is needed.
    obs::MetricsRegistry* metrics = nullptr;

    /// When set, every rendezvous records send/commit/ack trace events
    /// with wall-clock nanosecond offsets from run() start as the
    /// timebase, the same event shapes the simulated runtime emits —
    /// causal_profiler.hpp consumes either stream unchanged. The sink is
    /// not thread-safe, so recording takes an internal mutex (off the
    /// mailbox fast path; enable for profiling runs, not throughput
    /// benchmarks). Must outlive the call.
    obs::TraceSink* trace = nullptr;
};

/// Post-run results.
struct RunRecord {
    std::vector<MessageRecord> messages;  // in global rendezvous order

    /// The run reconstructed as a SyncComputation (messages in rendezvous
    /// order, internal events at their per-process positions).
    SyncComputation computation;

    /// message_stamps[m] for the reconstructed computation (same order).
    std::vector<VectorTimestamp> message_stamps;

    /// Section 5 timestamps for the internal events recorded via
    /// ProcessContext::internal_event, indexed by InternalId of
    /// `computation`.
    std::vector<EventTimestamp> internal_stamps;

    /// notes[i] — the user note attached to internal event i.
    std::vector<std::string> internal_notes;

    /// The message stamps packed into one flat arena (slot m = message m)
    /// for the batch precedence kernels / TimestampedTrace.
    TimestampArena stamp_arena() const;
};

class TimestampedNetwork {
public:
    /// Network over a shared decomposition (which fixes the topology).
    explicit TimestampedNetwork(
        std::shared_ptr<const EdgeDecomposition> decomposition,
        TimestampedNetworkOptions options = {});

    /// Convenience: default decomposition of `topology`.
    explicit TimestampedNetwork(const Graph& topology,
                                TimestampedNetworkOptions options = {});

    std::size_t num_processes() const noexcept;
    std::size_t width() const noexcept { return decomposition_->size(); }
    const EdgeDecomposition& decomposition() const noexcept {
        return *decomposition_;
    }

    /// Runs one program per process to completion on its own thread and
    /// returns the reconstructed record. Throws the first user exception
    /// (after closing all mailboxes so every blocked process unwinds), or
    /// NetworkDeadlock when the watchdog trips. `programs.size()` must
    /// equal the number of processes.
    RunRecord run(const std::vector<ProcessProgram>& programs);

private:
    friend class ProcessContext;

    /// Sender-side rendezvous (blocking): returns (ack vector, seq).
    std::pair<VectorTimestamp, std::uint64_t> rendezvous_send(
        ProcessId from, ProcessId to, std::string payload,
        const VectorTimestamp& piggyback);

    /// Receiver-side accept (blocking), with blocked-state tracking.
    Mailbox::Accepted accept_for(ProcessId self,
                                 std::optional<ProcessId> from);

    Mailbox& mailbox(ProcessId p);
    std::uint64_t next_seq() noexcept { return seq_.fetch_add(1) + 1; }

    /// Records one wall-timed trace event (no-op without a sink). The
    /// mutex serializes process threads into the single-writer ring.
    void trace_event(obs::TraceEventKind kind, ProcessId process,
                     ProcessId peer, std::uint64_t a, std::uint64_t b,
                     std::uint64_t logical);

    /// Effective send watchdog for the directed channel from -> to.
    std::chrono::milliseconds channel_timeout(ProcessId from,
                                              ProcessId to) const;

    void close_all();

    std::shared_ptr<const EdgeDecomposition> decomposition_;
    TimestampedNetworkOptions options_;
    std::vector<std::unique_ptr<Mailbox>> mailboxes_;
    std::atomic<std::uint64_t> seq_{0};
    std::atomic<std::size_t> blocked_{0};
    std::atomic<std::size_t> finished_{0};
    std::atomic<bool> deadlocked_{false};
    /// Registered once in run() before the process threads start, so the
    /// hot path never mutates the registry concurrently.
    obs::Counter* timeout_counter_ = nullptr;
    obs::Counter* suspicion_counter_ = nullptr;
    /// Trace timebase origin, reset at each run() entry.
    std::chrono::steady_clock::time_point trace_start_{};
    std::mutex trace_mutex_;
};

}  // namespace syncts
