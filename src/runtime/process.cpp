#include "runtime/process.hpp"

#include <utility>

#include "runtime/network.hpp"

namespace syncts {

ProcessContext::ProcessContext(
    ProcessId self, TimestampedNetwork& network,
    std::shared_ptr<const EdgeDecomposition> decomposition)
    : network_(network), clock_(self, std::move(decomposition)) {}

std::size_t ProcessContext::num_processes() const noexcept {
    return network_.num_processes();
}

VectorTimestamp ProcessContext::send(ProcessId to, std::string payload) {
    const VectorTimestamp piggyback = clock_.prepare_send();
    // The global sequence is assigned at commit, so the send event
    // carries 0 — the profiler pairs it with the ACK by channel order.
    network_.trace_event(obs::TraceEventKind::send, self(), to, 0, 0,
                         piggyback.total());
    const auto [ack, seq] = network_.rendezvous_send(
        self(), to, std::move(payload), piggyback);
    VectorTimestamp timestamp = clock_.on_acknowledgement(to, ack);
    network_.trace_event(obs::TraceEventKind::ack, self(), to, seq, seq,
                         timestamp.total());
    journal_.push_back({JournalEntry::Kind::send, to, seq, {}, timestamp});
    return timestamp;
}

ReceivedMessage ProcessContext::receive_impl(std::optional<ProcessId> from) {
    Mailbox::Accepted accepted = network_.accept_for(self(), from);
    const ProcessId sender = accepted.sender();
    std::string payload = accepted.payload();
    auto [acknowledgement, timestamp] =
        clock_.on_receive(sender, accepted.piggyback());
    const std::uint64_t seq = network_.next_seq();
    // Trace the commit before complete() unblocks the sender, so the
    // sender's ack event can never precede its commit in the ring.
    network_.trace_event(obs::TraceEventKind::commit, self(), sender, seq,
                         seq, timestamp.total());
    accepted.complete(std::move(acknowledgement), seq);

    journal_.push_back(
        {JournalEntry::Kind::receive, sender, seq, {}, timestamp});
    received_.push_back({seq, sender, self(), payload, timestamp});
    return {sender, std::move(payload), std::move(timestamp)};
}

ReceivedMessage ProcessContext::receive() { return receive_impl(std::nullopt); }

ReceivedMessage ProcessContext::receive_from(ProcessId from) {
    return receive_impl(from);
}

bool ProcessContext::poll(std::optional<ProcessId> from) {
    return network_.mailbox(self()).has_offer(from);
}

void ProcessContext::internal_event(std::string note) {
    journal_.push_back({JournalEntry::Kind::internal, kNoProcess, 0,
                        std::move(note), VectorTimestamp{}});
}

}  // namespace syncts
