#pragma once

#include <cstddef>
#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/ids.hpp"

/// \file bandwidth.hpp
/// Fair per-channel bandwidth limiting for the batched TX path
/// (docs/PROTOCOL.md), in the spirit of gtk-gnutella's bsched: every
/// directed channel owns a token bucket, all of a process's channels
/// share one global bucket, and the synchronizer's flush loop walks the
/// due queues in deficit-round-robin order.
///
/// Buckets refill linearly with virtual time (tokens = rate *
/// elapsed_ticks, capped at `burst`), so `ready_time()` is exact: the
/// first tick at which a refused flush will be admitted. Charges are
/// clamped to the burst capacity — a frame larger than the bucket can
/// ever hold is admitted once the bucket is full rather than stalling
/// forever (the progress guarantee the retransmission layer relies on).
///
/// The deficit parameter implements DRR service credit: a refused queue
/// accrues quantum bytes per scheduling round (the caller's policy) and
/// may overdraw its *channel* bucket by its deficit. The global bucket
/// is never overdrawn — it is the actual budget; the deficit only
/// arbitrates which starved channel goes first once budget exists.
///
/// Deterministic: no wall clock, no randomness — state advances only
/// with the virtual `now` the caller passes in. Single-threaded, like
/// the discrete-event simulator that drives it.

namespace syncts {

struct BandwidthOptions;

/// Running totals the scheduler keeps about itself; published as
/// `bsched_*` metrics by the runtime when a registry is attached.
struct BandwidthCounters {
    std::uint64_t admitted = 0;        ///< flushes admitted
    std::uint64_t refused = 0;         ///< flushes refused (deferred)
    std::uint64_t bytes_admitted = 0;  ///< clamped bytes charged
};

class BandwidthScheduler {
public:
    /// `options.enabled` must be true; rates are validated >= 1 (a
    /// zero rate would make ready_time() infinite). `n` is the process
    /// count — one global bucket per process, channel buckets created
    /// lazily on first use.
    BandwidthScheduler(const BandwidthOptions& options, std::size_t n);

    /// True when the buckets can pay for `bytes` from `src` to `dst` at
    /// virtual time `now` — charging them and counting the admission.
    /// `deficit` is the caller-maintained DRR credit for this queue:
    /// the channel bucket may be overdrawn by up to `deficit` (the
    /// global bucket may not), and an admission consumes the credit.
    /// The charge is min(bytes, burst), so oversize packets pass once
    /// the buckets are full.
    bool admit(ProcessId src, ProcessId dst, std::uint64_t bytes,
               std::uint64_t now, std::uint64_t& deficit);

    /// Earliest virtual time >= now at which `admit` with the same
    /// arguments (and any deficit) could succeed — when both buckets
    /// will have refilled to the clamped charge. Callers re-arm their
    /// flush timer here after a refusal.
    std::uint64_t ready_time(ProcessId src, ProcessId dst,
                             std::uint64_t bytes, std::uint64_t now) const;

    const BandwidthCounters& counters() const noexcept { return counters_; }

private:
    struct Bucket {
        std::uint64_t tokens = 0;
        std::uint64_t last_refill = 0;  ///< virtual time of last refill
    };

    /// Refills `bucket` up to `now` at `rate` tokens/tick, capped at
    /// `burst`.
    static void refill(Bucket& bucket, std::uint64_t rate,
                       std::uint64_t burst, std::uint64_t now);

    /// Ticks until a bucket holding `tokens` reaches `need` at `rate`.
    static std::uint64_t ticks_until(std::uint64_t tokens,
                                     std::uint64_t need, std::uint64_t rate);

    Bucket& channel_bucket(ProcessId src, ProcessId dst);

    std::uint64_t global_rate_;
    std::uint64_t channel_rate_;
    std::uint64_t global_burst_;
    std::uint64_t channel_burst_;
    std::vector<Bucket> global_;  ///< one per process (by ProcessId)
    std::unordered_map<std::uint64_t, Bucket> channels_;  ///< src<<32|dst
    BandwidthCounters counters_;
};

}  // namespace syncts
