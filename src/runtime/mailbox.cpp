#include "runtime/mailbox.hpp"

#include <algorithm>

#include "common/check.hpp"

namespace syncts {

void Mailbox::Accepted::complete(VectorTimestamp acknowledgement,
                                 std::uint64_t seq) {
    SYNCTS_REQUIRE(offer_ != nullptr, "offer already completed or moved-from");
    Offer* offer = std::exchange(offer_, nullptr);
    // Notify *while holding* the mutex: the waiting sender owns the Offer
    // and destroys it the moment it unblocks, so the notify must complete
    // before the waiter can re-acquire the lock and leave wait().
    const std::lock_guard lock(offer->done_mutex);
    offer->seq = seq;
    offer->acknowledgement = std::move(acknowledgement);
    offer->done_cv.notify_one();
}

void Mailbox::Accepted::abandon() noexcept {
    Offer* offer = std::exchange(offer_, nullptr);
    if (offer == nullptr) return;
    // Same destruction-race discipline as complete().
    const std::lock_guard lock(offer->done_mutex);
    offer->aborted = true;
    offer->done_cv.notify_one();
}

Mailbox::Accepted& Mailbox::Accepted::operator=(Accepted&& other) noexcept {
    if (this != &other) {
        abandon();
        offer_ = std::exchange(other.offer_, nullptr);
    }
    return *this;
}

Mailbox::Accepted::~Accepted() { abandon(); }

std::pair<VectorTimestamp, std::uint64_t> Mailbox::offer_and_wait(
    ProcessId sender, std::string payload, const VectorTimestamp& piggyback) {
    Offer offer;
    offer.sender = sender;
    offer.payload = std::move(payload);
    offer.piggyback = piggyback;
    {
        const std::lock_guard lock(mutex_);
        if (closed_) throw MailboxClosed();
        queue_.push_back(&offer);
    }
    offer_cv_.notify_all();

    std::unique_lock done_lock(offer.done_mutex);
    offer.done_cv.wait(done_lock, [&] {
        return offer.acknowledgement.has_value() || offer.aborted;
    });
    if (offer.aborted) throw MailboxClosed();
    return {std::move(*offer.acknowledgement), offer.seq};
}

std::optional<std::pair<VectorTimestamp, std::uint64_t>>
Mailbox::offer_and_wait_for(ProcessId sender, std::string payload,
                            const VectorTimestamp& piggyback,
                            std::chrono::milliseconds timeout) {
    Offer offer;
    offer.sender = sender;
    offer.payload = std::move(payload);
    offer.piggyback = piggyback;
    {
        const std::lock_guard lock(mutex_);
        if (closed_) throw MailboxClosed();
        queue_.push_back(&offer);
    }
    offer_cv_.notify_all();

    const auto ready = [&] {
        return offer.acknowledgement.has_value() || offer.aborted;
    };
    std::unique_lock done_lock(offer.done_mutex);
    if (!offer.done_cv.wait_for(done_lock, timeout, ready)) {
        // Timed out: withdraw the offer if it is still queued, so the
        // receiver can never accept a rendezvous the sender abandoned.
        // The queue and the completion slot use different mutexes —
        // release the slot before touching the queue.
        done_lock.unlock();
        {
            const std::lock_guard lock(mutex_);
            const auto it = std::ranges::find(queue_, &offer);
            if (it != queue_.end()) {
                queue_.erase(it);
                return std::nullopt;
            }
        }
        // The receiver accepted within the race window and now owns the
        // offer: the rendezvous is happening, so honour it — completion
        // (or abandonment on receiver unwind) is imminent.
        done_lock.lock();
        offer.done_cv.wait(done_lock, ready);
    }
    if (offer.aborted) throw MailboxClosed();
    return std::make_pair(std::move(*offer.acknowledgement), offer.seq);
}

Mailbox::Accepted Mailbox::accept(std::optional<ProcessId> from) {
    std::unique_lock lock(mutex_);
    for (;;) {
        const auto it = std::ranges::find_if(queue_, [&](Offer* o) {
            return !from.has_value() || o->sender == *from;
        });
        if (it != queue_.end()) {
            Offer* offer = *it;
            queue_.erase(it);
            return Accepted(offer);
        }
        if (closed_) throw MailboxClosed();
        offer_cv_.wait(lock);
    }
}

std::optional<Mailbox::Accepted> Mailbox::accept_for(
    std::optional<ProcessId> from, std::chrono::milliseconds timeout) {
    const auto deadline = std::chrono::steady_clock::now() + timeout;
    std::unique_lock lock(mutex_);
    const auto match = [&] {
        return std::ranges::find_if(queue_, [&](Offer* o) {
            return !from.has_value() || o->sender == *from;
        });
    };
    for (;;) {
        const auto it = match();
        if (it != queue_.end()) {
            Offer* offer = *it;
            queue_.erase(it);
            return Accepted(offer);
        }
        if (closed_) throw MailboxClosed();
        if (!offer_cv_.wait_until(lock, deadline, [&] {
                return closed_ || match() != queue_.end();
            })) {
            return std::nullopt;
        }
    }
}

bool Mailbox::has_offer(std::optional<ProcessId> from) {
    const std::lock_guard lock(mutex_);
    return std::ranges::any_of(queue_, [&](Offer* o) {
        return !from.has_value() || o->sender == *from;
    });
}

void Mailbox::close() {
    std::deque<Offer*> orphaned;
    {
        const std::lock_guard lock(mutex_);
        closed_ = true;
        orphaned.swap(queue_);
    }
    offer_cv_.notify_all();
    for (Offer* offer : orphaned) {
        // Notify under the lock — see Accepted::complete().
        const std::lock_guard lock(offer->done_mutex);
        offer->aborted = true;
        offer->done_cv.notify_one();
    }
}

}  // namespace syncts
