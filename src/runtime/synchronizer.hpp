#pragma once

#include <cstdint>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "clocks/online_clock.hpp"
#include "decomp/edge_decomposition.hpp"
#include "obs/metrics.hpp"
#include "obs/trace_sink.hpp"
#include "runtime/fault_plan.hpp"
#include "trace/computation.hpp"

/// \file synchronizer.hpp
/// Synchronous messages implemented over an *unreliable* asynchronous
/// packet network — the layer the paper assumes exists ("implementation of
/// synchronous messages requires that the sender wait for an
/// acknowledgment from the receiver", Section 1, citing Murty & Garg),
/// hardened against the faults a production transport actually exhibits:
/// loss, duplication, reordering, and payload corruption.
///
/// Protocol, per message m from Pi to Pj (see docs/FAULTS.md for the full
/// recovery state machine):
///   1. Pi assigns the next sequence number s on directed channel (i, j)
///      and sends REQ(s, m) carrying its current clock vector inside a
///      checksummed frame, then blocks. A retransmission timer re-sends
///      the identical REQ on timeout with capped exponential backoff.
///   2. Pj, when its program reaches the matching receive and holds a
///      *fresh* REQ (s == last committed sequence on (i, j) plus one),
///      merges, increments the channel's group component — the message is
///      committed exactly once here; Fig. 5's merge+increment is not
///      idempotent, so the commit is guarded by the sequence state — and
///      replies ACK(s, m) carrying its pre-merge vector. The encoded ACK
///      is cached per channel.
///   3. A duplicate REQ (s == last committed sequence: the ACK was lost,
///      or the REQ itself was duplicated in flight after commit) re-sends
///      the cached ACK without touching the clock. Older sequences are
///      dropped.
///   4. Pi accepts the ACK only while blocked on that exact (channel,
///      sequence); duplicate or stale ACKs are dropped. On accept it
///      performs the identical merge + increment and resumes. Both sides
///      hold the same timestamp.
/// Frames failing checksum / length / width validation are counted and
/// discarded — recovery is retransmission, never a garbage timestamp.
///
/// The driver replays a recorded computation's per-process event orders as
/// the programs, so any realizable schedule can be pushed through the
/// protocol; commit order then forms a valid instant order of the same
/// computation, and the resulting timestamps are bit-identical to the
/// direct Fig. 5 simulator's regardless of network latencies *and* of any
/// fault schedule the plan injects.

namespace syncts {

class SlabPool;
class EngineStock;

namespace obs {
class FlightRecorder;
}

/// Thrown when a message exhausts its retransmission budget (e.g. a
/// targeted fault rule swallows every attempt). Distinct from
/// NetworkDeadlock: the program is fine, the network is unusable.
class SynchronizerStalled : public std::runtime_error {
public:
    explicit SynchronizerStalled(const std::string& what)
        : std::runtime_error(what) {}
};

/// Configuration of the crash-recovery layer (docs/RECOVERY.md): how
/// often each process checkpoints, how the rendezvous WAL batches its
/// flush points, and how many cached frames each directed channel keeps
/// for rejoin replay. Recovery is armed automatically whenever the fault
/// plan contains crash rules; `enabled` forces it on for crash-free runs
/// (checkpointing overhead only — timestamps are unchanged either way).
struct RecoveryOptions {
    bool enabled = false;

    /// WAL records per group flush (>= 1). A crash loses at most the
    /// unflushed tail — flush points model batched fsyncs.
    std::uint64_t wal_flush_interval = 4;

    /// Protocol steps between automatic snapshots (>= 1). Every epoch
    /// barrier also snapshots and truncates the WAL.
    std::uint64_t snapshot_interval = 16;

    /// Cached frames retained per directed channel for rejoin replay.
    /// Must be >= wal_flush_interval so a restarted peer's rewind (at
    /// most one flush interval) always hits the window.
    std::size_t window = 8;
};

/// Fair per-channel bandwidth limiting for the batched TX path
/// (docs/PROTOCOL.md): a token bucket per directed channel under one
/// global budget, refilled per virtual tick, with deficit-round-robin
/// ordering when several queues of one process are due together. A
/// flush that the buckets cannot admit is deferred to the bucket's
/// ready time — bounded, so coalescing never stalls a quiet channel.
struct BandwidthOptions {
    bool enabled = false;

    /// Global budget: bytes admitted per virtual tick across all of a
    /// process's channels (>= 1 when enabled).
    std::uint64_t bytes_per_tick = 256;

    /// Per-channel rate: bytes per virtual tick each directed channel
    /// may consume (>= 1 when enabled; defaults to the global budget).
    std::uint64_t channel_bytes_per_tick = 0;

    /// Bucket capacity — the largest burst a channel (and the global
    /// budget) can admit at once. 0 = auto: 8x the refill rate, floored
    /// at 4096 so a single full-vector frame always fits.
    std::uint64_t burst = 0;

    /// Deficit-round-robin quantum in bytes (>= 1): how much service
    /// credit a due queue earns per scheduling round.
    std::uint64_t quantum = 512;
};

/// The batched wire path (docs/PROTOCOL.md): all knobs default off, in
/// which case the synchronizer keeps the classic one-frame-per-packet
/// profile bit-for-bit. Timestamps are bit-identical either way — only
/// packet count, bytes, and delivery schedule change.
struct ProtocolOptions {
    /// Collect frames bound for the same destination within a tick (and
    /// coalesced ACKs) into one v4 batch container per packet.
    bool batching = false;

    /// Hold ACKs up to `max_coalesce_delay` ticks so they ride the next
    /// outbound packet to the same peer; a newer ACK for the same
    /// rendezvous supersedes a queued one (cumulative-ack rule).
    bool coalesce_acks = false;

    /// Delta-encode timestamp vectors against per-channel shadows of the
    /// last frame each peer saw; full-vector resync on every shadow
    /// break (retransmit gap, NACK, epoch transition, crash rejoin).
    bool delta = false;

    /// Longest time a coalesced ACK may wait for a ride, in virtual
    /// ticks. 0 = auto: latency_hi (well under any retransmission
    /// timeout, so coalescing never races a peer's RTO).
    std::uint64_t max_coalesce_delay = 0;

    /// Optional fair bandwidth scheduler over the batched TX queues.
    BandwidthOptions bandwidth;

    /// Whether any extension is on (the synchronizer's dispatch gate).
    bool active() const noexcept {
        return batching || coalesce_acks || delta || bandwidth.enabled;
    }
};

struct SynchronizerOptions {
    std::uint64_t seed = 1;
    /// Per-packet latency drawn uniformly from [latency_lo, latency_hi].
    std::uint64_t latency_lo = 1;
    std::uint64_t latency_hi = 1;

    /// Faults injected underneath the protocol (default: reliable network).
    FaultPlan faults;

    /// Crash-recovery layer configuration; see RecoveryOptions. Armed
    /// automatically when `faults.crashes` is non-empty.
    RecoveryOptions recovery;

    /// Initial retransmission timeout in virtual-time units. 0 = auto:
    /// 4 * (latency_hi + faults.max_extra_delay) + 1 when the fault plan
    /// is active, and retransmission disabled on a reliable network (so
    /// lossless runs keep the exact 2-packets-per-message wire profile).
    std::uint64_t retransmit_timeout = 0;

    /// Backoff doubles per attempt, capped at
    /// initial_timeout << max_backoff_exponent.
    std::uint32_t max_backoff_exponent = 6;

    /// Batched wire path: batching / ACK coalescing / delta vectors /
    /// bandwidth scheduling. All off by default — the classic profile.
    ProtocolOptions protocol;

    /// Retransmissions per message before SynchronizerStalled is thrown.
    std::uint32_t max_retransmits = 64;

    /// When set, the run publishes its counters into this registry
    /// (`sync_*` and `net_*` metrics — see docs/OBSERVABILITY.md for the
    /// catalog) plus latency/attempt histograms. Must outlive the call.
    obs::MetricsRegistry* metrics = nullptr;

    /// When set, every protocol event (send/receive/commit/ack/
    /// retransmit/timeout/duplicate_drop/ack_replay/corrupt_reject) is
    /// recorded with its virtual time and the acting process's logical
    /// clock total. Must outlive the call.
    obs::TraceSink* trace = nullptr;

    /// When set, the run feeds the flight recorder (obs/flight_recorder
    /// .hpp): every trace event is mirrored into its bounded ring, the
    /// metrics registry is snapshotted every `snapshot_interval` steps,
    /// and a SYFR post-mortem is dumped when a crash rule fires or the
    /// run throws SynchronizerStalled. Independent of `trace` — the
    /// black box stays on when full tracing is off. Must outlive the
    /// call.
    obs::FlightRecorder* recorder = nullptr;

    /// When set, the run's per-epoch timestamp regions draw their slabs
    /// from this pool instead of a run-local one, so slab capacity is
    /// recycled *across* runs too (docs/MEMORY.md). Must outlive the
    /// call. Not thread-safe: one pool per concurrent run. The caller
    /// owns its metrics attachment.
    SlabPool* slab_pool = nullptr;

    /// When set, per-process online clocks are leased from / restocked
    /// into this stock across epoch loads and crash rejoins instead of
    /// a run-local one. Same lifetime and threading rules as
    /// `slab_pool`.
    EngineStock* engine_stock = nullptr;
};

/// Wire-level accounting for one run: what the batched path saved (or
/// would have saved) in packets and bytes. All fields count *sent*
/// traffic, before the network injects faults; `wire_packets` therefore
/// exceeds the delivered-packet count under drops. Populated on every
/// run — with ProtocolOptions all-off, batch/coalesce/delta fields stay
/// zero and `full_frames` counts every frame.
struct ProtocolStats {
    /// Payload bytes handed to the network (frame + batch container
    /// bytes; per-packet transport overhead is the bench's concern).
    std::uint64_t bytes_sent = 0;

    /// Packets handed to the network (batch containers count once).
    std::uint64_t wire_packets = 0;

    /// Packets that were v4 batch containers (>= 2 frames each).
    std::uint64_t batch_packets = 0;

    /// Frames carried inside batch containers.
    std::uint64_t batch_frames = 0;

    /// Queued ACKs superseded by a newer ACK of the same rendezvous
    /// before they hit the wire (each one is a packet that never flew).
    std::uint64_t acks_coalesced = 0;

    /// Frames sent delta-encoded (v3) against a channel shadow.
    std::uint64_t delta_frames = 0;

    /// Frames sent as full vectors (v1/v2) — first contact, resyncs,
    /// retransmits, replays, and everything when `delta` is off.
    std::uint64_t full_frames = 0;

    /// Delta frames a receiver had to discard because its shadow did
    /// not match (gap, epoch change, rejoin); each converges to a
    /// full-vector resend via the normal retransmission machinery.
    std::uint64_t delta_resyncs = 0;

    /// Flushes the bandwidth scheduler deferred past their deadline.
    std::uint64_t bsched_deferrals = 0;
};

struct SynchronizerResult {
    /// The realized computation: same messages and per-process orders as
    /// the script, instants renumbered to commit order. (Internal events
    /// are not part of the wire protocol and are dropped.)
    SyncComputation computation;

    /// message_stamps[m] — timestamp of realized message m (commit order).
    std::vector<VectorTimestamp> message_stamps;

    /// For each realized message, the script MessageId it corresponds to.
    std::vector<MessageId> script_message;

    /// Total virtual time until the last packet was delivered.
    std::uint64_t virtual_duration = 0;

    /// Packets delivered off the wire — exactly 2 per message (REQ + ACK)
    /// on a lossless network; more under faults (retransmits, duplicates).
    std::uint64_t packets = 0;

    /// What the network injected (drops, dups, corruption, delays). How
    /// the protocol coped is published to SynchronizerOptions::metrics
    /// (the non-overlapping `sync_*` counters).
    FaultStats network_faults;

    /// Wire-level accounting of the sent traffic: bytes, packets, batch
    /// and coalesce savings, delta/full frame split (docs/PROTOCOL.md).
    ProtocolStats protocol;
};

/// Replays `script` through the REQ/ACK protocol over an asynchronous
/// network. The script's topology must match the decomposition's. This
/// is the single-epoch wrapper over the reconfigurable driver
/// (runtime/reconfig_runtime.hpp); on one epoch the two are
/// bit-identical, frames included (epoch 0 uses the v1 wire layout).
SynchronizerResult run_rendezvous_protocol(
    std::shared_ptr<const EdgeDecomposition> decomposition,
    const SyncComputation& script, const SynchronizerOptions& options);

}  // namespace syncts
