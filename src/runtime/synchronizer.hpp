#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "clocks/online_clock.hpp"
#include "decomp/edge_decomposition.hpp"
#include "trace/computation.hpp"

/// \file synchronizer.hpp
/// Synchronous messages implemented over the asynchronous packet network —
/// the layer the paper assumes exists ("implementation of synchronous
/// messages requires that the sender wait for an acknowledgment from the
/// receiver", Section 1, citing Murty & Garg).
///
/// Protocol, per message m from Pi to Pj:
///   1. Pi sends REQ(m) carrying its current clock vector and blocks.
///   2. Pj, when its program reaches the matching receive, processes
///      REQ(m): merges, increments the channel's group component (the
///      message is *committed* here — this is the rendezvous instant) and
///      replies ACK(m) carrying its pre-merge vector.
///   3. Pi receives ACK(m), performs the identical merge + increment and
///      resumes. Both sides hold the same timestamp.
/// REQs arriving before the receiver's program is ready are buffered —
/// exactly the blocking-send / explicit-receive semantics of the threaded
/// runtime, but over packets with arbitrary (seeded) latencies.
///
/// The driver replays a recorded computation's per-process event orders as
/// the programs, so any realizable schedule can be pushed through the
/// protocol; commit order then forms a valid instant order of the same
/// computation, and the resulting timestamps are bit-identical to the
/// direct Fig. 5 simulator's regardless of network latencies.

namespace syncts {

struct SynchronizerOptions {
    std::uint64_t seed = 1;
    /// Per-packet latency drawn uniformly from [latency_lo, latency_hi].
    std::uint64_t latency_lo = 1;
    std::uint64_t latency_hi = 1;
};

struct SynchronizerResult {
    /// The realized computation: same messages and per-process orders as
    /// the script, instants renumbered to commit order. (Internal events
    /// are not part of the wire protocol and are dropped.)
    SyncComputation computation;

    /// message_stamps[m] — timestamp of realized message m (commit order).
    std::vector<VectorTimestamp> message_stamps;

    /// For each realized message, the script MessageId it corresponds to.
    std::vector<MessageId> script_message;

    /// Total virtual time until the last packet was delivered.
    std::uint64_t virtual_duration = 0;

    /// Packets on the wire — exactly 2 per message (REQ + ACK).
    std::uint64_t packets = 0;
};

/// Replays `script` through the REQ/ACK protocol over an asynchronous
/// network. The script's topology must match the decomposition's.
SynchronizerResult run_rendezvous_protocol(
    std::shared_ptr<const EdgeDecomposition> decomposition,
    const SyncComputation& script, const SynchronizerOptions& options);

}  // namespace syncts
